// Cross-module integration tests: mode equivalence on exhaustively
// explorable systems, fault-injected subjects, and end-to-end workflows that
// tie the proxy, session, pruners, datalog store, kv lock and subjects
// together.
#include <gtest/gtest.h>

#include "bugs/registry.hpp"
#include "core/session.hpp"
#include "kvstore/server.hpp"
#include "subjects/crdt_collection.hpp"
#include "subjects/town.hpp"

namespace erpi {
namespace {

util::Json jobj(std::initializer_list<std::pair<const char*, util::Json>> kv) {
  util::Json out = util::Json::object();
  for (const auto& [k, v] : kv) out[k] = v;
  return out;
}

void small_workload(proxy::RdlProxy& proxy) {
  proxy.update(0, "set_add", jobj({{"element", "x"}}));
  proxy.sync_req(0, 1);
  proxy.exec_sync(0, 1);
  proxy.update(1, "set_remove", jobj({{"element", "x"}}));
  proxy.sync_req(1, 0);
  proxy.exec_sync(1, 0);
}

// Property: on a system small enough for exhaustive exploration, the set of
// violating CANONICAL outcomes agrees between the raw-space baselines — and
// ER-pi's pruned space preserves reproduction.
TEST(ModeEquivalence, AllModesAgreeOnViolationExistence) {
  std::map<std::string, bool> reproduced;
  for (const auto mode : {core::ExplorationMode::ErPi, core::ExplorationMode::Dfs,
                          core::ExplorationMode::Rand}) {
    subjects::CrdtCollection app(2);
    proxy::RdlProxy proxy(app);
    core::Session::Config config;
    config.mode = mode;
    config.replay.max_interleavings = 100'000;
    config.replay.stop_on_violation = false;
    core::Session session(proxy, config);
    session.start();
    small_workload(proxy);
    const auto report = session.end(
        {core::converge_if_same_witness({0, 1}, {"seen"}, {"set"})});
    reproduced[core::exploration_mode_name(mode)] = report.reproduced;
    EXPECT_TRUE(report.exhausted) << core::exploration_mode_name(mode);
  }
  EXPECT_EQ(reproduced["er-pi"], reproduced["dfs"]);
  EXPECT_EQ(reproduced["dfs"], reproduced["rand"]);
}

TEST(ModeEquivalence, PrunedSpaceIsSubsetOfRawSpace) {
  subjects::CrdtCollection app(2);
  proxy::RdlProxy proxy(app);
  core::Session::Config config;
  config.replay.max_interleavings = 100'000;
  config.replay.stop_on_violation = false;
  core::ReplicaSpecificPruner::Options rs;
  rs.replica = 0;
  config.replica_specific = rs;
  core::Session session(proxy, config);
  session.start();
  small_workload(proxy);
  const auto report = session.end({});
  const auto pruning = session.pruning_report();
  EXPECT_TRUE(report.exhausted);
  EXPECT_LT(report.explored, pruning.unit_universe);
  EXPECT_EQ(pruning.pipeline.admitted, report.explored);
}

TEST(FaultInjection, DroppedSyncsSurfaceAsFailedOpsNotCrashes) {
  subjects::TownApp town(2);
  town.network().set_faults({.drop_probability = 1.0, .duplicate_probability = 0.0});
  proxy::RdlProxy proxy(town);
  const auto sent = proxy.sync_req(0, 1);
  ASSERT_FALSE(sent);
  EXPECT_NE(sent.error().message.find("dropped"), std::string::npos);
  const auto exec = proxy.exec_sync(0, 1);
  EXPECT_FALSE(exec);
}

TEST(FaultInjection, PartitionedReplicasDivergeUntilHealed) {
  subjects::TownApp town(2);
  proxy::RdlProxy proxy(town);
  town.network().partition(0, 1);
  proxy.update(0, "report", jobj({{"problem", "x"}}));
  EXPECT_FALSE(proxy.sync_req(0, 1));
  town.network().heal_all();
  EXPECT_TRUE(proxy.sync(0, 1));
  EXPECT_EQ(town.replica_state(1)["problems"].size(), 1u);
}

TEST(FaultInjection, DuplicatedSyncDeliveriesAreIdempotent) {
  subjects::TownApp town(2);
  town.network().set_faults({.drop_probability = 0.0, .duplicate_probability = 1.0});
  proxy::RdlProxy proxy(town);
  proxy.update(0, "report", jobj({{"problem", "x"}}));
  proxy.sync_req(0, 1);
  proxy.exec_sync(0, 1);  // delivers the original
  proxy.exec_sync(0, 1);  // delivers the network-duplicated copy
  EXPECT_EQ(town.replica_state(1)["problems"].size(), 1u);
}

// End-to-end: a full bug hunt through the public Session API with the
// threaded replay engine — proxy, grouping, pruning, kv lock, assertions.
TEST(EndToEnd, ThreadedBugHuntReproducesYorkie1) {
  const auto& bug = bugs::find_bug("Yorkie-1");
  auto subject = bug.make_subject();
  proxy::RdlProxy proxy(*subject);
  kv::Server lock_server;
  core::Session::Config config;
  config.replay.max_interleavings = 300;
  config.replay.threaded = true;
  config.replay.lock_server = &lock_server;
  if (bug.configure) bug.configure(config);
  core::Session session(proxy, config);
  session.start();
  bug.workload(proxy);
  const auto report = session.end(bug.assertions());
  EXPECT_TRUE(report.reproduced);
}

TEST(EndToEnd, PruningReportAccountsForTheWholeUniverse) {
  subjects::TownApp town(2);
  proxy::RdlProxy proxy(town);
  core::Session::Config config;
  config.generation_order = core::GroupedEnumerator::Order::Lexicographic;
  config.replay.stop_on_violation = false;
  config.replay.max_interleavings = 100'000;
  core::ReplicaSpecificPruner::Options rs;
  rs.replica = 0;
  config.replica_specific = rs;
  core::Session session(proxy, config);
  session.start();
  proxy.update(0, "report", jobj({{"problem", "a"}}));
  proxy.update(1, "report", jobj({{"problem", "b"}}));
  proxy.sync(1, 0);
  const auto report = session.end({});
  const auto pruning = session.pruning_report();
  EXPECT_EQ(pruning.pipeline.admitted + pruning.pipeline.pruned, pruning.unit_universe);
  EXPECT_EQ(pruning.pipeline.admitted, report.explored);
}


TEST(EndToEnd, ThreeReplicaRingUnderThreadedReplay) {
  // Roshi-3's three-replica ring through the threaded engine: three worker
  // threads sequenced by the distributed lock must agree with fast mode.
  const auto& bug = bugs::find_bug("Roshi-3");
  auto subject = bug.make_subject();
  proxy::RdlProxy proxy(*subject);
  kv::Server lock_server;
  core::Session::Config config;
  config.replay.max_interleavings = 40;
  config.replay.stop_on_violation = false;
  config.replay.threaded = true;
  config.replay.lock_server = &lock_server;
  if (bug.configure) bug.configure(config);
  core::Session session(proxy, config);
  session.start();
  bug.workload(proxy);
  const auto threaded = session.end(bug.assertions());

  auto fast = bugs::run_bug(bug, core::ExplorationMode::ErPi, 40);
  // (run_bug uses stop_on_violation=true; compare on explored counts only
  // when neither run reproduced, otherwise on the violation index)
  if (threaded.reproduced) {
    EXPECT_TRUE(fast.report.reproduced);
  }
  EXPECT_EQ(threaded.explored, 40u);
}

TEST(FaultInjection, ReplayToleratesLossyNetwork) {
  // With a lossy network every sync can fail, but the engine must keep
  // exploring and report failures as failed ops, never crash.
  subjects::TownApp town(2);
  proxy::RdlProxy proxy(town);
  core::Session::Config config;
  config.replay.max_interleavings = 60;
  config.replay.stop_on_violation = false;
  core::Session session(proxy, config);
  session.start();
  proxy.update(0, "report", jobj({{"problem", "x"}}));
  proxy.sync_req(0, 1);
  proxy.exec_sync(0, 1);
  proxy.update(1, "report", jobj({{"problem", "y"}}));
  // inject faults for the replay phase (capture ran clean)
  town.network().set_faults({.drop_probability = 0.5, .duplicate_probability = 0.2});
  const auto report = session.end({});
  EXPECT_TRUE(report.exhausted);  // 3 units -> 3! = 6 interleavings, all run
  EXPECT_EQ(report.explored, 6u);
  EXPECT_FALSE(report.crashed);
}

TEST(EndToEnd, SessionsAreReusableAcrossRuns) {
  subjects::TownApp town(2);
  proxy::RdlProxy proxy(town);
  core::Session::Config config;
  config.replay.max_interleavings = 50;
  config.replay.stop_on_violation = false;

  for (int round = 0; round < 2; ++round) {
    core::Session session(proxy, config);
    session.start();
    proxy.update(0, "report", jobj({{"problem", "p" + std::to_string(round)}}));
    proxy.sync(0, 1);
    const auto report = session.end({core::replicas_converge({0, 1})});
    EXPECT_TRUE(report.exhausted);
    EXPECT_EQ(session.events().size(), 3u) << "capture leaked across sessions";
  }
}

}  // namespace
}  // namespace erpi
