// CRDT substrate tests: clocks, counters, registers, sets — including
// property-style merge commutativity/idempotence sweeps.
#include <gtest/gtest.h>

#include "crdt/common.hpp"
#include "crdt/counters.hpp"
#include "crdt/registers.hpp"
#include "crdt/sets.hpp"
#include "util/rng.hpp"

namespace erpi::crdt {
namespace {

// ---------------------------------------------------------------------------
// Clocks
// ---------------------------------------------------------------------------

TEST(LamportClock, TickAndReceive) {
  LamportClock clock;
  EXPECT_EQ(clock.tick(), 1);
  EXPECT_EQ(clock.tick(), 2);
  EXPECT_EQ(clock.receive(10), 11);  // max(local, remote) + 1
  EXPECT_EQ(clock.receive(3), 12);
  clock.reset();
  EXPECT_EQ(clock.now(), 0);
}

TEST(Timestamp, TotalOrderWithReplicaTieBreak) {
  EXPECT_LT((Timestamp{1, 5}), (Timestamp{2, 0}));
  EXPECT_LT((Timestamp{2, 0}), (Timestamp{2, 1}));
  EXPECT_EQ((Timestamp{3, 3}), (Timestamp{3, 3}));
  const auto round_tripped = Timestamp::from_json(Timestamp{7, 2}.to_json());
  EXPECT_EQ(round_tripped, (Timestamp{7, 2}));
}

TEST(VectorClock, HappensBeforeAndConcurrency) {
  VectorClock a;
  VectorClock b;
  a.tick(0);
  EXPECT_TRUE(b.before(a));
  b = a;
  b.tick(1);
  EXPECT_TRUE(a.before(b));
  EXPECT_FALSE(b.before(a));

  VectorClock c;
  c.tick(2);
  EXPECT_TRUE(b.concurrent(c));
  EXPECT_TRUE(c.concurrent(b));

  VectorClock merged = b;
  merged.merge(c);
  EXPECT_TRUE(b.before(merged));
  EXPECT_TRUE(c.before(merged));
  EXPECT_FALSE(merged.concurrent(b));
}

TEST(VectorClock, JsonRoundTrip) {
  VectorClock vc;
  vc.tick(0);
  vc.tick(0);
  vc.tick(3);
  EXPECT_TRUE(VectorClock::from_json(vc.to_json()) == vc);
}

// ---------------------------------------------------------------------------
// Counters
// ---------------------------------------------------------------------------

TEST(GCounter, SumsComponentsAndMergesByMax) {
  GCounter a;
  GCounter b;
  a.increment(0, 3);
  b.increment(1, 4);
  b.increment(0, 1);  // b has a stale view of replica 0
  a.merge(b);
  EXPECT_EQ(a.value(), 7);  // max(3,1) + 4
  EXPECT_THROW(a.increment(0, -1), std::invalid_argument);
}

TEST(GCounter, MergeIsIdempotent) {
  GCounter a;
  a.increment(0, 2);
  GCounter b = a;
  a.merge(b);
  a.merge(b);
  EXPECT_EQ(a.value(), 2);
}

TEST(PNCounter, IncrementAndDecrement) {
  PNCounter c;
  c.increment(0, 10);
  c.decrement(1, 4);
  EXPECT_EQ(c.value(), 6);
  const auto round_tripped = PNCounter::from_json(c.to_json());
  EXPECT_EQ(round_tripped.value(), 6);
  EXPECT_TRUE(round_tripped == c);
}

// Property: merging per-replica counter shards in any order gives the total.
class CounterMergeOrder : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CounterMergeOrder, OrderIndependent) {
  util::Rng rng(GetParam());
  std::vector<PNCounter> shards(4);
  int64_t expected = 0;
  for (int replica = 0; replica < 4; ++replica) {
    const int64_t incs = static_cast<int64_t>(rng.below(20));
    const int64_t decs = static_cast<int64_t>(rng.below(10));
    shards[static_cast<size_t>(replica)].increment(replica, incs);
    shards[static_cast<size_t>(replica)].decrement(replica, decs);
    expected += incs - decs;
  }
  std::vector<size_t> order{0, 1, 2, 3};
  rng.shuffle(order);
  PNCounter merged;
  for (const size_t i : order) merged.merge(shards[i]);
  EXPECT_EQ(merged.value(), expected);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CounterMergeOrder, ::testing::Range<uint64_t>(1, 9));

// ---------------------------------------------------------------------------
// LWW register
// ---------------------------------------------------------------------------

TEST(LwwRegister, LaterTimestampWins) {
  LwwRegister r;
  r.set("old", {1, 0});
  r.set("new", {2, 0});
  EXPECT_EQ(r.value(), "new");
  r.set("stale", {1, 9});
  EXPECT_EQ(r.value(), "new");
}

TEST(LwwRegister, StrictTieBreakIsOrderIndependent) {
  LwwRegister ab;
  ab.set("from0", {5, 0});
  ab.set("from1", {5, 1});
  LwwRegister ba;
  ba.set("from1", {5, 1});
  ba.set("from0", {5, 0});
  EXPECT_EQ(ab.value(), ba.value());
  EXPECT_EQ(ab.value(), "from1");  // higher replica id wins ties
}

TEST(LwwRegister, BuggyTieBreakDependsOnArrival) {
  LwwRegister ab(/*strict_tiebreak=*/false);
  ab.set("from0", {5, 0});
  ab.set("from1", {5, 1});
  LwwRegister ba(false);
  ba.set("from1", {5, 1});
  ba.set("from0", {5, 0});
  EXPECT_NE(ab.value(), ba.value());  // the Roshi #11 anomaly
}

TEST(LwwRegister, MergeTakesNewest) {
  LwwRegister a;
  a.set("a", {3, 0});
  LwwRegister b;
  b.set("b", {4, 1});
  a.merge(b);
  EXPECT_EQ(a.value(), "b");
  LwwRegister empty;
  a.merge(empty);  // merging an empty register is a no-op
  EXPECT_EQ(a.value(), "b");
}

// ---------------------------------------------------------------------------
// MV register
// ---------------------------------------------------------------------------

TEST(MvRegister, ConcurrentWritesBothSurvive) {
  MvRegister a;
  MvRegister b;
  a.set(0, "alpha");
  b.set(1, "beta");
  a.merge(b);
  EXPECT_EQ(a.conflict_count(), 2u);
  EXPECT_EQ(a.values(), (std::vector<std::string>{"alpha", "beta"}));
}

TEST(MvRegister, LaterWriteSubsumesBoth) {
  MvRegister a;
  MvRegister b;
  a.set(0, "alpha");
  b.set(1, "beta");
  a.merge(b);
  a.set(0, "resolved");  // causally after both
  b.merge(a);
  EXPECT_EQ(b.values(), std::vector<std::string>{"resolved"});
  EXPECT_EQ(b.conflict_count(), 1u);
}

TEST(MvRegister, RemoteApplyIsIdempotent) {
  MvRegister a;
  const auto clock = a.set(0, "x");
  MvRegister b;
  b.apply_remote("x", clock);
  b.apply_remote("x", clock);
  EXPECT_EQ(b.conflict_count(), 1u);
}

// ---------------------------------------------------------------------------
// LWW set
// ---------------------------------------------------------------------------

TEST(LwwSet, AddRemoveMembership) {
  LwwSet s;
  EXPECT_TRUE(s.add("x", {1, 0}));
  EXPECT_TRUE(s.contains("x"));
  EXPECT_TRUE(s.remove("x", {2, 0}));
  EXPECT_FALSE(s.contains("x"));
  EXPECT_TRUE(s.deleted("x"));
  EXPECT_FALSE(s.add("x", {1, 5}));  // stale add loses
  EXPECT_EQ(s.size(), 0u);
}

TEST(LwwSet, StrictModeRemoveWinsTies) {
  LwwSet ab;
  ab.add("x", {5, 0});
  ab.remove("x", {5, 1});
  LwwSet ba;
  ba.remove("x", {5, 1});
  ba.add("x", {5, 0});
  EXPECT_EQ(ab.contains("x"), ba.contains("x"));
  EXPECT_FALSE(ab.contains("x"));  // remove bias
}

TEST(LwwSet, MergeCommutes) {
  LwwSet a;
  a.add("x", {1, 0});
  a.add("y", {3, 0});
  LwwSet b;
  b.remove("x", {2, 1});
  b.add("z", {1, 1});
  LwwSet ab = a;
  ab.merge(b);
  LwwSet ba = b;
  ba.merge(a);
  EXPECT_EQ(ab.elements(), ba.elements());
  EXPECT_EQ(ab.elements(), (std::vector<std::string>{"y", "z"}));
}

TEST(LwwSet, LastOpTimestampExposed) {
  LwwSet s;
  s.add("x", {4, 2});
  EXPECT_EQ(*s.last_op("x"), (Timestamp{4, 2}));
  EXPECT_FALSE(s.last_op("missing"));
}

// ---------------------------------------------------------------------------
// OR set
// ---------------------------------------------------------------------------

TEST(OrSet, AddWinsOverConcurrentRemove) {
  OrSet a;
  OrSet b;
  const auto add_a = a.add(0, "x");
  b.apply(add_a);
  // concurrently: b removes x (observing only a's tag), a re-adds x
  const auto remove_b = b.remove("x");
  ASSERT_TRUE(remove_b);
  const auto add_a2 = a.add(0, "x");
  // exchange
  a.apply(*remove_b);
  b.apply(add_a2);
  EXPECT_TRUE(a.contains("x"));  // re-add's fresh tag survives
  EXPECT_TRUE(b.contains("x"));
  EXPECT_EQ(a.elements(), b.elements());
}

TEST(OrSet, RemoveOfAbsentElementIsNoOp) {
  OrSet s;
  EXPECT_FALSE(s.remove("ghost"));
}

TEST(OrSet, TombstoneBlocksLateAdd) {
  OrSet a;
  const auto add = a.add(0, "x");
  const auto remove = a.remove("x");
  OrSet b;
  b.apply(*remove);  // remove arrives before the add
  b.apply(add);
  EXPECT_FALSE(b.contains("x"));
}

TEST(OrSet, StateMergeCommutesAndIsIdempotent) {
  OrSet a;
  OrSet b;
  a.add(0, "x");
  a.add(0, "y");
  b.add(1, "y");
  b.add(1, "z");
  b.remove("z");
  OrSet ab = a;
  ab.merge(b);
  OrSet ba = b;
  ba.merge(a);
  EXPECT_EQ(ab.elements(), ba.elements());
  EXPECT_EQ(ab.elements(), (std::vector<std::string>{"x", "y"}));
  ab.merge(b);
  EXPECT_EQ(ab.elements(), (std::vector<std::string>{"x", "y"}));
}

TEST(OrSet, FreshTagsAfterMerge) {
  OrSet a;
  a.add(0, "x");
  OrSet b;
  b.merge(a);
  // b's next local add at replica 0 must not reuse a's tag
  const auto op = b.add(0, "w");
  EXPECT_GT(op.tag.counter, 0);
  a.apply(op);
  EXPECT_TRUE(a.contains("w"));
}

// ---------------------------------------------------------------------------
// 2P set
// ---------------------------------------------------------------------------

TEST(TwoPSet, RemovedElementsNeverReturn) {
  TwoPSet s;
  EXPECT_TRUE(s.add("x"));
  EXPECT_FALSE(s.add("x"));  // duplicate add fails (the §3.5 constraint)
  EXPECT_TRUE(s.remove("x"));
  EXPECT_FALSE(s.remove("x"));
  EXPECT_FALSE(s.add("x"));  // removal is permanent
  EXPECT_FALSE(s.contains("x"));
}

TEST(TwoPSet, MergeUnionsBothPhases) {
  TwoPSet a;
  a.add("x");
  a.add("y");
  TwoPSet b;
  b.merge_add("y");
  b.merge_remove("y");
  a.merge(b);
  EXPECT_EQ(a.elements(), std::vector<std::string>{"x"});
}

}  // namespace
}  // namespace erpi::crdt
