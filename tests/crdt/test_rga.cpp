// RGA list CRDT tests: insertion, removal, CRDT vs naive moves, op-based and
// state-based convergence, plus a randomized convergence property sweep.
#include <gtest/gtest.h>

#include "crdt/rga.hpp"
#include "util/rng.hpp"

namespace erpi::crdt {
namespace {

TEST(Rga, InsertAtPositions) {
  Rga list;
  list.insert_at(0, 0, "b");
  list.insert_at(0, 0, "a");   // prepend
  list.insert_at(0, 2, "c");   // append
  list.insert_at(0, 1, "ab");  // middle
  EXPECT_EQ(list.values(), (std::vector<std::string>{"a", "ab", "b", "c"}));
  EXPECT_THROW(list.insert_at(0, 99, "x"), std::out_of_range);
}

TEST(Rga, RemoveTombstones) {
  Rga list;
  list.insert_at(0, 0, "a");
  list.insert_at(0, 1, "b");
  ASSERT_TRUE(list.remove_at(0));
  EXPECT_EQ(list.values(), std::vector<std::string>{"b"});
  EXPECT_FALSE(list.remove_at(5));
  EXPECT_EQ(list.size(), 1u);
}

TEST(Rga, IdLookupHelpers) {
  Rga list;
  const auto op = list.insert_at(0, 0, "x");
  EXPECT_EQ(*list.id_at(0), op.id);
  EXPECT_EQ(*list.value_of(op.id), "x");
  list.remove_at(0);
  EXPECT_FALSE(list.value_of(op.id));
  EXPECT_FALSE(list.id_at(0));
}

TEST(Rga, OpBasedReplicationConverges) {
  Rga a;
  Rga b;
  const auto i1 = a.insert_at(0, 0, "one");
  const auto i2 = a.insert_at(0, 1, "two");
  b.apply(i1);
  b.apply(i2);
  EXPECT_EQ(a.values(), b.values());
  const auto r = b.remove_at(0);
  a.apply(*r);
  EXPECT_EQ(a.values(), b.values());
  // duplicate delivery is idempotent
  a.apply(i2);
  a.apply(*r);
  EXPECT_EQ(a.values(), std::vector<std::string>{"two"});
}

TEST(Rga, ConcurrentSameAnchorInsertsConverge) {
  Rga a;
  Rga b;
  const auto base = a.insert_at(0, 0, "base");
  b.apply(base);
  const auto from_a = a.insert_at(0, 1, "fromA");
  const auto from_b = b.insert_at(1, 1, "fromB");
  a.apply(from_b);
  b.apply(from_a);
  EXPECT_EQ(a.values(), b.values());
  EXPECT_EQ(a.size(), 3u);
}

TEST(Rga, LwwMoveConvergesUnderConcurrentMoves) {
  Rga a;
  Rga b;
  std::vector<Rga::InsertOp> inserts;
  for (int i = 0; i < 4; ++i) {
    inserts.push_back(a.insert_at(0, static_cast<size_t>(i), std::string(1, 'a' + i)));
  }
  for (const auto& op : inserts) b.apply(op);

  const auto move_a = a.move(0, 0, 2);
  const auto move_b = b.move(1, 0, 3);
  ASSERT_TRUE(move_a && move_b);
  a.apply(*move_b);
  b.apply(*move_a);
  EXPECT_EQ(a.values(), b.values());  // the higher stamp won on both sides
}

TEST(Rga, ArrivalOrderMovesDiverge) {
  Rga a;
  a.set_lww_moves(false);
  Rga b;
  b.set_lww_moves(false);
  std::vector<Rga::InsertOp> inserts;
  for (int i = 0; i < 4; ++i) {
    inserts.push_back(a.insert_at(0, static_cast<size_t>(i), std::string(1, 'a' + i)));
  }
  for (const auto& op : inserts) b.apply(op);
  const auto move_a = a.move(0, 0, 2);
  const auto move_b = b.move(1, 0, 3);
  a.apply(*move_b);
  b.apply(*move_a);
  EXPECT_NE(a.values(), b.values());  // Yorkie #676's divergence
}

TEST(Rga, NaiveMoveDuplicatesUnderConcurrency) {
  Rga a;
  Rga b;
  std::vector<Rga::InsertOp> inserts;
  for (int i = 0; i < 3; ++i) {
    inserts.push_back(a.insert_at(0, static_cast<size_t>(i), std::string(1, 'a' + i)));
  }
  for (const auto& op : inserts) b.apply(op);

  const auto naive_a = a.naive_move(0, 0, 2);
  const auto naive_b = b.naive_move(1, 0, 1);
  ASSERT_TRUE(naive_a && naive_b);
  a.apply(naive_b->first);
  a.apply(naive_b->second);
  b.apply(naive_a->first);
  b.apply(naive_a->second);
  // both replicas now hold TWO copies of "a" — misconception #3
  const auto values = a.values();
  EXPECT_EQ(std::count(values.begin(), values.end(), "a"), 2);
  EXPECT_EQ(a.values(), b.values());
}

TEST(Rga, StateMergeConverges) {
  Rga a;
  a.insert_at(0, 0, "x");
  a.insert_at(0, 1, "y");
  Rga b;
  b.insert_at(1, 0, "z");
  Rga ab = a;
  ab.merge(b);
  Rga ba = b;
  ba.merge(a);
  EXPECT_EQ(ab.values(), ba.values());
  EXPECT_EQ(ab.size(), 3u);
  ab.merge(b);  // idempotent
  EXPECT_EQ(ab.size(), 3u);
}

TEST(Rga, StateMergePropagatesTombstones) {
  Rga a;
  a.insert_at(0, 0, "x");
  Rga b = a;
  b.remove_at(0);
  a.merge(b);
  EXPECT_EQ(a.size(), 0u);
}

// Property: two replicas that exchange all their insert/remove ops converge,
// across randomized op sequences.
class RgaConvergence : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RgaConvergence, InsertRemoveOpsConverge) {
  util::Rng rng(GetParam());
  Rga a;
  Rga b;
  std::vector<Rga::InsertOp> a_inserts;
  std::vector<Rga::RemoveOp> a_removes;
  std::vector<Rga::InsertOp> b_inserts;
  std::vector<Rga::RemoveOp> b_removes;

  for (int step = 0; step < 24; ++step) {
    Rga& target = rng.chance(0.5) ? a : b;
    const ReplicaId replica = (&target == &a) ? 0 : 1;
    auto& inserts = (&target == &a) ? a_inserts : b_inserts;
    auto& removes = (&target == &a) ? a_removes : b_removes;
    if (target.size() == 0 || rng.chance(0.7)) {
      inserts.push_back(target.insert_at(
          replica, rng.below(target.size() + 1), "v" + std::to_string(step)));
    } else {
      const auto op = target.remove_at(rng.below(target.size()));
      if (op) removes.push_back(*op);
    }
  }
  for (const auto& op : a_inserts) b.apply(op);
  for (const auto& op : a_removes) b.apply(op);
  for (const auto& op : b_inserts) a.apply(op);
  for (const auto& op : b_removes) a.apply(op);
  EXPECT_EQ(a.values(), b.values()) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, RgaConvergence, ::testing::Range<uint64_t>(1, 17));

TEST(NaiveList, AppendAndRemove) {
  NaiveList list;
  list.append("a");
  list.append("b");
  list.remove_value("a");
  list.remove_value("ghost");
  EXPECT_EQ(list.values(), std::vector<std::string>{"b"});
}

}  // namespace
}  // namespace erpi::crdt
