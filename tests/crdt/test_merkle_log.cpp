// Merkle-DAG log tests: content addressing, join semantics, total order,
// access control, and the three seeded OrbitDB defect modes.
#include <gtest/gtest.h>

#include "crdt/merkle_log.hpp"

namespace erpi::crdt {
namespace {

TEST(MerkleLog, AppendChainsParents) {
  MerkleLog log("id0");
  const auto first = log.append("one").take();
  EXPECT_TRUE(first.parents.empty());
  const auto second = log.append("two").take();
  ASSERT_EQ(second.parents.size(), 1u);
  EXPECT_EQ(second.parents[0], first.hash);
  EXPECT_EQ(log.heads(), std::vector<std::string>{second.hash});
  EXPECT_EQ(log.length(), 2u);
  EXPECT_EQ(log.clock(), 2);
}

TEST(MerkleLog, HashCoversContent) {
  MerkleLog a("id0");
  MerkleLog b("id0");
  const auto ha = a.append("same").take().hash;
  const auto hb = b.append("same").take().hash;
  EXPECT_EQ(ha, hb);  // identical content, identical address
  const auto hc = b.append("same").take().hash;
  EXPECT_NE(hb, hc);  // different clock/parents -> different address
}

TEST(MerkleLog, JoinUnionsAndConverges) {
  MerkleLog a("id0");
  MerkleLog b("id1");
  a.append("a1");
  b.append("b1");
  ASSERT_TRUE(a.join(b));
  ASSERT_TRUE(b.join(a));
  EXPECT_EQ(a.payloads(), b.payloads());
  EXPECT_EQ(a.length(), 2u);
  // joining again is idempotent
  ASSERT_TRUE(a.join(b));
  EXPECT_EQ(a.length(), 2u);
  EXPECT_TRUE(a.verify());
}

TEST(MerkleLog, ConcurrentHeadsMergeOnNextAppend) {
  MerkleLog a("id0");
  MerkleLog b("id1");
  a.append("a1");
  b.append("b1");
  a.join(b);
  EXPECT_EQ(a.heads().size(), 2u);
  const auto merge_entry = a.append("merge").take();
  EXPECT_EQ(merge_entry.parents.size(), 2u);
  EXPECT_EQ(a.heads().size(), 1u);
}

TEST(MerkleLog, IdentityTieBreakGivesSameOrderEverywhere) {
  MerkleLog a("id0");
  MerkleLog b("id1");
  a.append("pa");  // clock 1 at both: a genuine tie
  b.append("pb");
  a.join(b);
  b.join(a);
  std::vector<std::string> order_a = a.payloads();
  std::vector<std::string> order_b = b.payloads();
  EXPECT_EQ(order_a, order_b);
}

TEST(MerkleLog, ArrivalOrderTiesDiverge) {
  MerkleLog::Flags flags;
  flags.identity_tiebreak = false;  // OrbitDB #513
  MerkleLog a("id0", flags);
  MerkleLog b("id1", flags);
  a.append("pa");
  b.append("pb");
  a.join(b);  // a sees pa then pb
  b.join(a);  // b sees pb then pa
  EXPECT_NE(a.payloads(), b.payloads());
}

TEST(MerkleLog, RejectFutureClocksWedgesReplication) {
  MerkleLog::Flags flags;
  flags.reject_future_clocks = true;  // OrbitDB #512
  flags.max_clock_drift = 100;
  MerkleLog a("id0", flags);
  MerkleLog b("id1", flags);
  a.append_with_clock("poison", 1'000'000);
  const auto status = b.join(a);
  EXPECT_FALSE(status);
  EXPECT_NE(status.error().message.find("too far ahead"), std::string::npos);
  EXPECT_EQ(b.length(), 0u);
}

TEST(MerkleLog, ClampModeAcceptsFutureClocks) {
  MerkleLog a("id0");
  MerkleLog b("id1");
  a.append_with_clock("poison", 1'000'000);
  EXPECT_TRUE(b.join(a));
  EXPECT_EQ(b.clock(), 1'000'000);
  // progress continues: the next local append just ratchets past it
  EXPECT_TRUE(b.append("more"));
}

TEST(MerkleLog, PartialHashModeFailsVerification) {
  MerkleLog::Flags flags;
  flags.hash_includes_parents = false;  // OrbitDB #583 family
  MerkleLog log("id0", flags);
  log.append("one");
  log.append("two");  // has a parent the minted hash ignores
  EXPECT_FALSE(log.verify());

  MerkleLog sound("id0");
  sound.append("one");
  sound.append("two");
  EXPECT_TRUE(sound.verify());
}

TEST(MerkleLog, AccessControlDeniesUngrantedWriters) {
  MerkleLog log("writer");
  EXPECT_TRUE(log.append("open access"));  // empty ACL = open
  log.grant("someone-else");
  const auto denied = log.append("now closed");
  EXPECT_FALSE(denied);
  EXPECT_NE(denied.error().message.find("write access denied"), std::string::npos);
  log.grant("writer");
  EXPECT_TRUE(log.append("granted"));
  log.revoke("writer");
  EXPECT_FALSE(log.append("revoked"));
}

TEST(MerkleLog, ApplyRejectsEntriesFromUngrantedIdentity) {
  MerkleLog a("id0");
  const auto entry = a.append("hello").take();
  MerkleLog b("id1");
  b.grant("id1");  // ACL that excludes id0
  EXPECT_FALSE(b.apply(entry));
  b.grant("id0");
  EXPECT_TRUE(b.apply(entry));
  EXPECT_TRUE(b.apply(entry));  // idempotent re-apply
  EXPECT_EQ(b.length(), 1u);
}

TEST(MerkleLog, TraverseOrderedByClock) {
  MerkleLog a("id0");
  a.append("first");
  a.append("second");
  MerkleLog b("id1");
  b.join(a);
  b.append("third");
  const auto entries = b.traverse();
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_LE(entries[0].clock, entries[1].clock);
  EXPECT_LE(entries[1].clock, entries[2].clock);
  EXPECT_EQ(entries[2].payload, "third");
}

}  // namespace
}  // namespace erpi::crdt
