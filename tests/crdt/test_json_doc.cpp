// JSON document CRDT tests: object LWW, nested values, list operations, op
// serialization round-trips, convergence, and the two seeded Yorkie defects.
#include <gtest/gtest.h>

#include "crdt/json_doc.hpp"
#include "util/rng.hpp"

namespace erpi::crdt {
namespace {

util::Json obj(std::initializer_list<std::pair<const char*, util::Json>> kv) {
  util::Json out = util::Json::object();
  for (const auto& [k, v] : kv) out[k] = v;
  return out;
}

TEST(JsonDoc, SetAndGetPrimitives) {
  JsonDoc doc(0);
  doc.set({}, "title", util::Json("hello"));
  doc.set({}, "count", util::Json(3));
  EXPECT_EQ(doc.get({}, "title")->as_string(), "hello");
  EXPECT_EQ(doc.get({}, "count")->as_int(), 3);
  EXPECT_FALSE(doc.get({}, "missing"));
  EXPECT_EQ(doc.snapshot().dump(), R"({"count":3,"title":"hello"})");
}

TEST(JsonDoc, NestedObjectsViaPathsAndValues) {
  JsonDoc doc(0);
  doc.set({}, "meta", obj({{"author", "ada"}}));
  doc.set({"meta"}, "year", util::Json(1843));
  EXPECT_EQ(doc.get({"meta"}, "author")->as_string(), "ada");
  EXPECT_EQ(doc.get({"meta"}, "year")->as_int(), 1843);
}

TEST(JsonDoc, EraseHidesKey) {
  JsonDoc doc(0);
  doc.set({}, "k", util::Json("v"));
  doc.erase({}, "k");
  EXPECT_FALSE(doc.get({}, "k"));
  EXPECT_EQ(doc.snapshot().dump(), "{}");
  // a later set resurrects the slot
  doc.set({}, "k", util::Json("v2"));
  EXPECT_EQ(doc.get({}, "k")->as_string(), "v2");
}

TEST(JsonDoc, ListPushInsertRemoveMove) {
  JsonDoc doc(0);
  doc.list_push({}, "l", util::Json("a"));
  doc.list_push({}, "l", util::Json("c"));
  doc.list_insert({}, "l", 1, util::Json("b"));
  EXPECT_EQ(doc.list_values({}, "l"),
            (std::vector<std::string>{"\"a\"", "\"b\"", "\"c\""}));
  ASSERT_TRUE(doc.list_move({}, "l", 0, 2));
  EXPECT_EQ(doc.list_values({}, "l"),
            (std::vector<std::string>{"\"b\"", "\"c\"", "\"a\""}));
  ASSERT_TRUE(doc.list_remove({}, "l", 1));
  EXPECT_EQ(doc.list_values({}, "l"), (std::vector<std::string>{"\"b\"", "\"a\""}));
  EXPECT_FALSE(doc.list_remove({}, "l", 9));
  EXPECT_FALSE(doc.list_move({}, "missing", 0, 1));
}

TEST(JsonDoc, SnapshotRendersListsAsArrays) {
  JsonDoc doc(0);
  doc.list_push({}, "l", util::Json(1));
  doc.list_push({}, "l", util::Json("two"));
  EXPECT_EQ(doc.snapshot().dump(), R"({"l":[1,"two"]})");
}

TEST(JsonDocOp, JsonRoundTripAllKinds) {
  JsonDoc doc(0);
  std::vector<JsonDoc::Op> ops;
  ops.push_back(doc.set({}, "k", obj({{"x", 1}})));
  ops.push_back(doc.erase({}, "k"));
  ops.push_back(doc.list_push({}, "l", util::Json("a")));
  ops.push_back(doc.list_insert({}, "l", 0, util::Json("b")));
  ops.push_back(*doc.list_remove({}, "l", 0));
  doc.list_push({}, "l", util::Json("c"));
  ops.push_back(*doc.list_move({}, "l", 0, 1));

  JsonDoc replica(1);
  for (const auto& op : ops) {
    const auto decoded = JsonDoc::Op::from_json(op.to_json());
    ASSERT_TRUE(decoded) << decoded.error().message;
    EXPECT_EQ(decoded.value().to_json().dump(), op.to_json().dump());
  }
}

TEST(JsonDoc, OpReplicationConverges) {
  JsonDoc a(0);
  JsonDoc b(1);
  std::vector<JsonDoc::Op> ops;
  ops.push_back(a.set({}, "title", util::Json("doc")));
  ops.push_back(a.list_push({}, "items", util::Json("x")));
  ops.push_back(a.list_push({}, "items", util::Json("y")));
  for (const auto& op : ops) b.apply(op);
  EXPECT_EQ(a.snapshot().dump(), b.snapshot().dump());

  const auto move = b.list_move({}, "items", 0, 1);
  a.apply(*move);
  EXPECT_EQ(a.snapshot().dump(), b.snapshot().dump());
}

TEST(JsonDoc, ConcurrentSetsResolveByLww) {
  JsonDoc a(0);
  JsonDoc b(1);
  const auto from_a = a.set({}, "k", util::Json("A"));
  const auto from_b = b.set({}, "k", util::Json("B"));
  a.apply(from_b);
  b.apply(from_a);
  EXPECT_EQ(a.get({}, "k")->dump(), b.get({}, "k")->dump());
  // equal Lamport times: higher replica id wins
  EXPECT_EQ(a.get({}, "k")->as_string(), "B");
}

TEST(JsonDoc, FixedModeReplacesNestedObjects) {
  JsonDoc a(0);
  JsonDoc b(1);
  const auto seed = b.set({}, "k", obj({{"y", 2}}));
  a.apply(seed);
  const auto overwrite = a.set({}, "k", obj({{"x", 1}}));
  b.apply(overwrite);
  EXPECT_EQ(b.get({}, "k")->dump(), R"({"x":1})");
  EXPECT_EQ(a.snapshot().dump(), b.snapshot().dump());
}

TEST(JsonDoc, BuggyModeMergesNestedObjects) {
  JsonDoc::Flags flags;
  flags.replace_nested_on_set = false;  // Yorkie #663
  JsonDoc a(0, flags);
  JsonDoc b(1, flags);
  const auto seed = b.set({}, "k", obj({{"y", 2}}));
  a.apply(seed);
  const auto overwrite = a.set({}, "k", obj({{"x", 1}}));
  b.apply(overwrite);
  // the remote side merged instead of replacing
  EXPECT_EQ(b.get({}, "k")->dump(), R"({"x":1,"y":2})");
  EXPECT_NE(a.snapshot().dump(), b.snapshot().dump());
}

TEST(JsonDoc, BuggyMoveModeDiverges) {
  JsonDoc::Flags flags;
  flags.lww_move = false;  // Yorkie #676
  JsonDoc a(0, flags);
  JsonDoc b(1, flags);
  std::vector<JsonDoc::Op> setup;
  for (const char* v : {"a", "b", "c", "d"}) {
    setup.push_back(a.list_push({}, "l", util::Json(v)));
  }
  for (const auto& op : setup) b.apply(op);
  const auto move_a = a.list_move({}, "l", 0, 2);
  const auto move_b = b.list_move({}, "l", 0, 3);
  a.apply(*move_b);
  b.apply(*move_a);
  EXPECT_NE(a.list_values({}, "l"), b.list_values({}, "l"));
}

// Property: replicas applying each other's object-level sets in any order
// converge (LWW), across randomized write sequences.
class JsonDocLwwProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(JsonDocLwwProperty, ObjectWritesConverge) {
  util::Rng rng(GetParam());
  JsonDoc a(0);
  JsonDoc b(1);
  std::vector<JsonDoc::Op> from_a;
  std::vector<JsonDoc::Op> from_b;
  const char* keys[] = {"k1", "k2", "k3"};
  for (int step = 0; step < 20; ++step) {
    const char* key = keys[rng.below(3)];
    if (rng.chance(0.5)) {
      from_a.push_back(a.set({}, key, util::Json(static_cast<int64_t>(rng.below(100)))));
    } else {
      from_b.push_back(b.set({}, key, util::Json(static_cast<int64_t>(rng.below(100)))));
    }
  }
  rng.shuffle(from_a);
  rng.shuffle(from_b);
  for (const auto& op : from_a) b.apply(op);
  for (const auto& op : from_b) a.apply(op);
  EXPECT_EQ(a.snapshot().dump(), b.snapshot().dump()) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, JsonDocLwwProperty, ::testing::Range<uint64_t>(1, 13));

}  // namespace
}  // namespace erpi::crdt
