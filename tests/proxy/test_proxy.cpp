// RdlProxy and event-model tests: capture, event numbering, classification,
// replay invocation, JSON round-trips.
#include <gtest/gtest.h>

#include "proxy/proxy.hpp"
#include "subjects/town.hpp"

namespace erpi::proxy {
namespace {

util::Json problem(const char* name) {
  util::Json j = util::Json::object();
  j["problem"] = name;
  return j;
}

TEST(Event, JsonRoundTrip) {
  Event e;
  e.id = 3;
  e.kind = EventKind::SyncReq;
  e.replica = 0;
  e.from = 0;
  e.to = 1;
  e.op = kSyncReqOp;
  e.args = problem("x");
  e.label = "ship it";
  const Event decoded = Event::from_json(e.to_json());
  EXPECT_EQ(decoded.id, 3);
  EXPECT_EQ(decoded.kind, EventKind::SyncReq);
  EXPECT_EQ(decoded.from, 0);
  EXPECT_EQ(decoded.to, 1);
  EXPECT_EQ(decoded.label, "ship it");
  EXPECT_TRUE(decoded.args == e.args);
}

TEST(Event, DescribeIsHumanReadable) {
  Event e;
  e.id = 2;
  e.kind = EventKind::ExecSync;
  e.from = 1;
  e.to = 0;
  e.op = kExecSyncOp;
  EXPECT_EQ(e.describe(), "ev2:exec_sync(1->0):exec_sync");
}

TEST(RdlProxy, CaptureAssignsDenseIds) {
  subjects::TownApp town(2);
  RdlProxy proxy(town);
  proxy.start_capture();
  ASSERT_TRUE(proxy.capturing());
  EXPECT_TRUE(proxy.update(0, "report", problem("a")));
  EXPECT_TRUE(proxy.sync_req(0, 1));
  EXPECT_TRUE(proxy.exec_sync(0, 1));
  EXPECT_TRUE(proxy.query(1, "transmit"));
  const auto events = proxy.end_capture();
  ASSERT_EQ(events.size(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(events[static_cast<size_t>(i)].id, i);
  EXPECT_EQ(events[0].kind, EventKind::Update);
  EXPECT_EQ(events[1].kind, EventKind::SyncReq);
  EXPECT_EQ(events[1].replica, 0);  // send executes at the sender
  EXPECT_EQ(events[2].kind, EventKind::ExecSync);
  EXPECT_EQ(events[2].replica, 1);  // execution happens at the receiver
  EXPECT_EQ(events[3].kind, EventKind::Query);
}

TEST(RdlProxy, CallsForwardWhenNotCapturing) {
  subjects::TownApp town(2);
  RdlProxy proxy(town);
  EXPECT_TRUE(proxy.update(0, "report", problem("a")));
  EXPECT_TRUE(proxy.captured().empty());
  EXPECT_EQ(town.replica_state(0)["problems"].size(), 1u);
}

TEST(RdlProxy, SyncHelperSendsAndExecutes) {
  subjects::TownApp town(2);
  RdlProxy proxy(town);
  proxy.start_capture();
  proxy.update(0, "report", problem("a"));
  EXPECT_TRUE(proxy.sync(0, 1));
  const auto events = proxy.end_capture();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(town.replica_state(1)["problems"].size(), 1u);
}

TEST(RdlProxy, InvokeReplaysCapturedEvents) {
  subjects::TownApp town(2);
  RdlProxy proxy(town);
  proxy.start_capture();
  proxy.update(0, "report", problem("a"));
  proxy.sync(0, 1);
  const auto events = proxy.end_capture();

  town.reset();
  EXPECT_EQ(town.replica_state(1)["problems"].size(), 0u);
  for (const auto& event : events) EXPECT_TRUE(proxy.invoke(event));
  EXPECT_EQ(town.replica_state(1)["problems"].size(), 1u);
}

TEST(RdlProxy, ExecBeforeReqFailsGracefully) {
  subjects::TownApp town(2);
  RdlProxy proxy(town);
  const auto result = proxy.exec_sync(0, 1);
  ASSERT_FALSE(result);
  EXPECT_NE(result.error().message.find("no pending sync"), std::string::npos);
}

TEST(RdlProxy, StartCaptureClearsPreviousTrace) {
  subjects::TownApp town(2);
  RdlProxy proxy(town);
  proxy.start_capture();
  proxy.update(0, "report", problem("a"));
  proxy.end_capture();
  proxy.start_capture();
  proxy.update(0, "report", problem("b"));
  const auto events = proxy.end_capture();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].id, 0);
}

}  // namespace
}  // namespace erpi::proxy
