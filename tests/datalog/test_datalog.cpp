// Datalog engine tests: database, parser, semi-naive evaluator.
#include <gtest/gtest.h>

#include "datalog/database.hpp"
#include "datalog/evaluator.hpp"
#include "datalog/parser.hpp"

namespace erpi::datalog {
namespace {

// ---------------------------------------------------------------------------
// Database
// ---------------------------------------------------------------------------

TEST(Database, InsertDeduplicates) {
  Database db;
  EXPECT_TRUE(db.insert_fact("p", {Database::num(1), Database::num(2)}));
  EXPECT_FALSE(db.insert_fact("p", {Database::num(1), Database::num(2)}));
  EXPECT_TRUE(db.insert_fact("p", {Database::num(1), Database::num(3)}));
  EXPECT_EQ(db.find("p")->size(), 2u);
}

TEST(Database, ArityMismatchThrows) {
  Database db;
  db.insert_fact("p", {Database::num(1)});
  EXPECT_THROW(db.insert_fact("p", {Database::num(1), Database::num(2)}),
               std::invalid_argument);
  EXPECT_THROW(db.relation("p", 3), std::invalid_argument);
}

TEST(Database, ColumnIndexFindsRows) {
  Database db;
  for (int i = 0; i < 10; ++i) {
    db.insert_fact("edge", {Database::num(i % 3), Database::num(i)});
  }
  const auto& rows = db.find("edge")->rows_with(0, Value::integer(1));
  EXPECT_EQ(rows.size(), 3u);  // i = 1, 4, 7
  for (const size_t row : rows) {
    EXPECT_EQ(db.find("edge")->tuples()[row][0], Value::integer(1));
  }
}

TEST(Database, IndexExtendsAfterBuild) {
  Database db;
  db.insert_fact("p", {Database::num(1)});
  EXPECT_EQ(db.find("p")->rows_with(0, Value::integer(1)).size(), 1u);  // builds index
  db.insert_fact("p", {Database::num(1)});  // dedup: no change
  db.relation("p", 1).insert({Database::num(2)});
  db.relation("p", 1).insert({Database::num(1)});  // dedup again
  EXPECT_EQ(db.find("p")->rows_with(0, Value::integer(2)).size(), 1u);
}

TEST(Database, SymbolsInterned) {
  Database db;
  const Value a1 = db.sym("alpha");
  const Value a2 = db.sym("alpha");
  EXPECT_EQ(a1, a2);
  EXPECT_NE(a1, db.sym("beta"));
  EXPECT_EQ(db.render(a1), "alpha");
  EXPECT_EQ(db.render(Database::num(-4)), "-4");
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

TEST(Parser, ParsesFactsRulesAndComments) {
  SymbolTable symbols;
  const auto program = parse_program(
      "% a comment\n"
      "edge(1, 2).\n"
      "edge(2, 3).  // another comment\n"
      "label(1, \"start node\").\n"
      "path(X, Y) :- edge(X, Y).\n"
      "path(X, Z) :- edge(X, Y), path(Y, Z), X != Z.\n",
      symbols);
  ASSERT_TRUE(program) << program.error().message;
  EXPECT_EQ(program.value().rules.size(), 5u);
  EXPECT_TRUE(program.value().rules[0].is_fact());
  EXPECT_FALSE(program.value().rules[4].is_fact());
  EXPECT_EQ(program.value().rules[4].constraints.size(), 1u);
}

TEST(Parser, LowercaseIsSymbolUppercaseIsVariable) {
  SymbolTable symbols;
  const auto atom = parse_atom("likes(alice, X)", symbols).take();
  EXPECT_FALSE(atom.terms[0].is_variable());
  EXPECT_TRUE(atom.terms[1].is_variable());
}

TEST(Parser, RejectsMalformedPrograms) {
  SymbolTable symbols;
  for (const char* bad : {"p(", "p() .", "p(1)", "p(1) :- .", "p(1) :- q(1),.",
                          "p(X) :- X.", ":- q(1).", "p(1"}) {
    EXPECT_FALSE(parse_program(bad, symbols)) << bad;
  }
}

TEST(Parser, ReportsLineNumbers) {
  SymbolTable symbols;
  const auto result = parse_program("p(1).\nq(,).\n", symbols);
  ASSERT_FALSE(result);
  EXPECT_NE(result.error().message.find("line 2"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Evaluator
// ---------------------------------------------------------------------------

Program parse_ok(const std::string& source, SymbolTable& symbols) {
  auto program = parse_program(source, symbols);
  EXPECT_TRUE(program) << (program ? "" : program.error().message);
  return std::move(program).take();
}

TEST(Evaluator, TransitiveClosureOnChain) {
  Database db;
  const auto program = parse_ok(
      "edge(1,2). edge(2,3). edge(3,4).\n"
      "path(X,Y) :- edge(X,Y).\n"
      "path(X,Z) :- edge(X,Y), path(Y,Z).\n",
      db.symbols());
  evaluate(db, program);
  // chain of 4 nodes -> 3 + 2 + 1 = 6 paths
  EXPECT_EQ(db.find("path")->size(), 6u);
  EXPECT_TRUE(db.find("path")->contains({Value::integer(1), Value::integer(4)}));
  EXPECT_FALSE(db.find("path")->contains({Value::integer(4), Value::integer(1)}));
}

TEST(Evaluator, CycleTerminates) {
  Database db;
  const auto program = parse_ok(
      "edge(1,2). edge(2,1).\n"
      "path(X,Y) :- edge(X,Y).\n"
      "path(X,Z) :- edge(X,Y), path(Y,Z).\n",
      db.symbols());
  const auto stats = evaluate(db, program);
  EXPECT_EQ(db.find("path")->size(), 4u);  // 1->2, 2->1, 1->1, 2->2
  EXPECT_GE(stats.iterations, 2u);
}

TEST(Evaluator, ConstraintsFilterJoins) {
  Database db;
  const auto program = parse_ok(
      "n(1). n(2). n(3).\n"
      "less(X,Y) :- n(X), n(Y), X < Y.\n"
      "diag(X,X) :- n(X).\n",
      db.symbols());
  evaluate(db, program);
  EXPECT_EQ(db.find("less")->size(), 3u);  // (1,2) (1,3) (2,3)
  EXPECT_EQ(db.find("diag")->size(), 3u);
  EXPECT_TRUE(db.find("diag")->contains({Value::integer(2), Value::integer(2)}));
}

TEST(Evaluator, SymbolsJoinAcrossRelations) {
  Database db;
  const auto program = parse_ok(
      "parent(alice, bob). parent(bob, carol).\n"
      "grandparent(X, Z) :- parent(X, Y), parent(Y, Z).\n",
      db.symbols());
  evaluate(db, program);
  ASSERT_EQ(db.find("grandparent")->size(), 1u);
  EXPECT_EQ(db.render(db.find("grandparent")->tuples()[0]), "(alice, carol)");
}

TEST(Evaluator, EmptyHeadRelationCreated) {
  Database db;
  const auto program = parse_ok("p(X) :- q(X).", db.symbols());
  evaluate(db, program);
  ASSERT_NE(db.find("p"), nullptr);
  EXPECT_TRUE(db.find("p")->empty());
}

TEST(Evaluator, FactWithVariableRejected) {
  Database db;
  Program program;
  Rule fact;
  fact.head = Atom{"p", {Term::var("X")}};
  program.rules.push_back(fact);
  EXPECT_THROW(Evaluator(db, program), std::invalid_argument);
}

TEST(Query, BindsVariablesAndFiltersConstants) {
  Database db;
  db.insert_fact("edge", {Database::num(1), Database::num(2)});
  db.insert_fact("edge", {Database::num(1), Database::num(3)});
  db.insert_fact("edge", {Database::num(2), Database::num(3)});

  const auto from1 = query(db, Atom{"edge", {Term::constant_int(1), Term::var("Y")}});
  EXPECT_EQ(from1.size(), 2u);

  // repeated variable joins within the atom
  db.insert_fact("edge", {Database::num(5), Database::num(5)});
  const auto self = query(db, Atom{"edge", {Term::var("X"), Term::var("X")}});
  ASSERT_EQ(self.size(), 1u);
  EXPECT_EQ(self[0].at("X").payload, 5);

  // wildcard matches anything without binding
  const auto all = query(db, Atom{"edge", {Term::var("_"), Term::var("_")}});
  EXPECT_EQ(all.size(), 4u);
}

// Property: semi-naive evaluation computes the same closure as a reference
// all-pairs reachability, across several graph shapes.
class ClosureEquivalence : public ::testing::TestWithParam<std::vector<std::pair<int, int>>> {
};

TEST_P(ClosureEquivalence, MatchesReferenceReachability) {
  const auto& edges = GetParam();
  Database db;
  for (const auto& [from, to] : edges) {
    db.insert_fact("edge", {Database::num(from), Database::num(to)});
  }
  const auto program = parse_ok(
      "path(X,Y) :- edge(X,Y).\n"
      "path(X,Z) :- edge(X,Y), path(Y,Z).\n",
      db.symbols());
  evaluate(db, program);

  // reference: Floyd-Warshall style reachability over ids 0..7
  bool reach[8][8] = {};
  for (const auto& [from, to] : edges) reach[from][to] = true;
  for (int k = 0; k < 8; ++k) {
    for (int i = 0; i < 8; ++i) {
      for (int j = 0; j < 8; ++j) {
        reach[i][j] = reach[i][j] || (reach[i][k] && reach[k][j]);
      }
    }
  }
  size_t expected = 0;
  for (int i = 0; i < 8; ++i) {
    for (int j = 0; j < 8; ++j) {
      if (!reach[i][j]) continue;
      ++expected;
      EXPECT_TRUE(db.find("path")->contains({Value::integer(i), Value::integer(j)}))
          << i << "->" << j;
    }
  }
  EXPECT_EQ(db.find("path")->size(), expected);
}

INSTANTIATE_TEST_SUITE_P(
    Graphs, ClosureEquivalence,
    ::testing::Values(std::vector<std::pair<int, int>>{},
                      std::vector<std::pair<int, int>>{{0, 1}},
                      std::vector<std::pair<int, int>>{{0, 1}, {1, 2}, {2, 0}},
                      std::vector<std::pair<int, int>>{{0, 1}, {0, 2}, {1, 3}, {2, 3}},
                      std::vector<std::pair<int, int>>{
                          {0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 6}, {6, 7}, {7, 0}},
                      std::vector<std::pair<int, int>>{
                          {1, 1}, {1, 2}, {2, 1}, {3, 4}, {5, 4}, {4, 6}, {6, 5}}));


// ---------------------------------------------------------------------------
// Stratified negation
// ---------------------------------------------------------------------------

TEST(Negation, UnreachableNodesViaNegatedClosure) {
  Database db;
  const auto program = parse_ok(
      "node(1). node(2). node(3). node(4).\n"
      "edge(1,2). edge(2,3).\n"
      "reach(X) :- edge(1, X).\n"
      "reach(Y) :- reach(X), edge(X, Y).\n"
      "unreach(X) :- node(X), !reach(X).\n",
      db.symbols());
  evaluate(db, program);
  EXPECT_EQ(db.find("reach")->size(), 2u);    // 2, 3
  EXPECT_EQ(db.find("unreach")->size(), 2u);  // 1, 4
  EXPECT_TRUE(db.find("unreach")->contains({Value::integer(4)}));
  EXPECT_TRUE(db.find("unreach")->contains({Value::integer(1)}));
}

TEST(Negation, SetDifferenceOverEdb) {
  Database db;
  const auto program = parse_ok(
      "a(1). a(2). a(3). b(2).\n"
      "only_a(X) :- a(X), !b(X).\n",
      db.symbols());
  evaluate(db, program);
  EXPECT_EQ(db.find("only_a")->size(), 2u);
  EXPECT_FALSE(db.find("only_a")->contains({Value::integer(2)}));
}

TEST(Negation, NegatedPredicateMayBeEntirelyAbsent) {
  Database db;
  const auto program = parse_ok(
      "a(1).\n"
      "keep(X) :- a(X), !blocked(X, X).\n",
      db.symbols());
  evaluate(db, program);
  EXPECT_EQ(db.find("keep")->size(), 1u);
}

TEST(Negation, StratificationOrdersDependencies) {
  SymbolTable symbols;
  const auto program = parse_program(
      "p(X) :- e(X).\n"
      "q(X) :- e(X), !p(X).\n"
      "r(X) :- q(X).\n"
      "s(X) :- e(X), !r(X).\n",
      symbols).take();
  const auto strata = stratify(program);
  EXPECT_EQ(strata.at("p"), 0);
  EXPECT_EQ(strata.at("q"), 1);
  EXPECT_EQ(strata.at("r"), 1);
  EXPECT_EQ(strata.at("s"), 2);
}

TEST(Negation, CycleThroughNegationRejected) {
  Database db;
  const auto program = parse_ok(
      "e(1).\n"
      "p(X) :- e(X), !q(X).\n"
      "q(X) :- e(X), !p(X).\n",
      db.symbols());
  EXPECT_THROW(evaluate(db, program), std::invalid_argument);
}

TEST(Negation, UnboundNegatedVariableRejected) {
  Database db;
  const auto program = parse_ok("p(X) :- e(X), !q(Y).\n", db.symbols());
  EXPECT_THROW(evaluate(db, program), std::invalid_argument);
}

TEST(Negation, ParserAcceptsBangAtoms) {
  SymbolTable symbols;
  const auto program = parse_program("p(X) :- q(X), !r(X), X != 3.\n", symbols);
  ASSERT_TRUE(program) << program.error().message;
  EXPECT_EQ(program.value().rules[0].negated_body.size(), 1u);
  EXPECT_EQ(program.value().rules[0].constraints.size(), 1u);
}

// ---------------------------------------------------------------------------
// Bridge relation shapes (corpus::DatalogBridge exports outcome/5,
// violation/4, plan_fault/3 — wide tuples, string-heavy keys, negation over
// the outcome relation; see DESIGN.md §11)
// ---------------------------------------------------------------------------

/// Insert an outcome/5 fact the way the corpus bridge does: four interned
/// symbols and one integer column.
void insert_outcome(Database& db, const char* fp, const char* plan, const char* il,
                    const char* kind, int64_t sig) {
  db.relation("outcome", 5);
  db.insert_fact("outcome", {db.sym(fp), db.sym(plan), db.sym(il), db.sym(kind),
                             Database::num(sig)});
}

TEST(BridgeShapes, WideTuplesJoinAcrossSharedColumns) {
  Database db;
  insert_outcome(db, "aa", "none", "0,1,2", "pass", 0);
  insert_outcome(db, "aa", "drop:1", "0,1,2", "violation", 0);
  insert_outcome(db, "aa", "drop:1", "2,1,0", "crashed", 11);
  insert_outcome(db, "bb", "drop:1", "0,1,2", "pass", 0);
  // Same class under two fingerprints with different outcomes — the arity-5
  // self-join that diff-style queries lean on.
  const auto program = parse_ok(
      "disagrees(Plan, Il) :- outcome(F1, Plan, Il, K1, S1),\n"
      "                       outcome(F2, Plan, Il, K2, S2), F1 != F2, K1 != K2.\n",
      db.symbols());
  evaluate(db, program);
  const auto rows = query(db, {"disagrees", {Term::var("Plan"), Term::var("Il")}});
  // Derived from both join directions, deduplicated to the one real class.
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(db.symbols().name(rows[0].at("Plan").payload), "drop:1");
  EXPECT_EQ(db.symbols().name(rows[0].at("Il").payload), "0,1,2");
}

TEST(BridgeShapes, QuotedStringConstantsMatchBridgeKeys) {
  // Plan and interleaving keys ("part:0-1@2..4", "0,1,2") are not bare
  // identifiers — the parser must take them as quoted symbol constants and
  // join them against programmatically interned facts.
  Database db;
  insert_outcome(db, "aa", "part:0-1@2..4", "0,1,2", "violation", 0);
  insert_outcome(db, "aa", "part:0-1@2..4", "2,1,0", "pass", 0);
  insert_outcome(db, "aa", "crash:r1@1->3", "0,1,2", "pass", 0);
  const auto program = parse_ok(
      "partition_outcome(Il, K) :- outcome(Fp, \"part:0-1@2..4\", Il, K, S).\n"
      "this_il(Plan) :- outcome(Fp, Plan, \"0,1,2\", K, S).\n",
      db.symbols());
  evaluate(db, program);
  EXPECT_EQ(db.find("partition_outcome")->size(), 2u);
  EXPECT_EQ(db.find("this_il")->size(), 2u);
  const auto viol = query(db, {"partition_outcome",
                               {Term::var("Il"),
                                Term::constant_sym(db.symbols().intern("violation"))}});
  ASSERT_EQ(viol.size(), 1u);
  EXPECT_EQ(db.symbols().name(viol[0].at("Il").payload), "0,1,2");
}

TEST(BridgeShapes, StratifiedNegationOverOutcome) {
  // "Plans with a pass but no violation anywhere" — negation over the wide
  // relation through a projected helper (negated atoms must be safe: every
  // variable bound by the positive body).
  Database db;
  insert_outcome(db, "aa", "none", "0,1", "pass", 0);
  insert_outcome(db, "aa", "none", "1,0", "pass", 0);
  insert_outcome(db, "aa", "drop:1", "0,1", "pass", 0);
  insert_outcome(db, "aa", "drop:1", "1,0", "violation", 0);
  insert_outcome(db, "aa", "dup:2", "0,1", "crashed", 6);
  const auto program = parse_ok(
      "violating_plan(Plan) :- outcome(Fp, Plan, Il, violation, S).\n"
      "clean_plan(Plan) :- outcome(Fp, Plan, Il, pass, S), !violating_plan(Plan).\n",
      db.symbols());
  evaluate(db, program);
  const auto strata = stratify(program);
  EXPECT_LT(strata.at("violating_plan"), strata.at("clean_plan"));
  const auto clean = query(db, {"clean_plan", {Term::var("Plan")}});
  ASSERT_EQ(clean.size(), 1u);
  EXPECT_EQ(db.symbols().name(clean[0].at("Plan").payload), "none");
}

}  // namespace
}  // namespace erpi::datalog
