// Mini-Redis tests: store commands, TTL semantics (fake clock), the server
// thread, and the Redlock-style distributed mutex (mutual exclusion under
// contention, token-checked release).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "kvstore/lock.hpp"
#include "kvstore/server.hpp"
#include "kvstore/store.hpp"

namespace erpi::kv {
namespace {

class StoreTest : public ::testing::Test {
 protected:
  StoreTest() : store_([this] { return now_; }) {}

  int64_t now_ = 0;
  Store store_;
};

TEST_F(StoreTest, GetSetDel) {
  EXPECT_FALSE(store_.get("k"));
  store_.set("k", "v");
  EXPECT_EQ(store_.get("k"), "v");
  EXPECT_TRUE(store_.del("k"));
  EXPECT_FALSE(store_.del("k"));
  EXPECT_FALSE(store_.get("k"));
}

TEST_F(StoreTest, SetNxOnlyWhenAbsent) {
  EXPECT_TRUE(store_.setnx("k", "first"));
  EXPECT_FALSE(store_.setnx("k", "second"));
  EXPECT_EQ(store_.get("k"), "first");
}

TEST_F(StoreTest, TtlExpiresByClock) {
  store_.set("k", "v", /*ttl_ms=*/100);
  now_ = 99;
  EXPECT_TRUE(store_.get("k"));
  now_ = 100;
  EXPECT_FALSE(store_.get("k"));
  // an expired key is absent for SETNX
  EXPECT_TRUE(store_.setnx("k", "fresh"));
}

TEST_F(StoreTest, ExpireCommandAndExists) {
  EXPECT_FALSE(store_.expire("missing", 10));
  store_.set("k", "v");
  EXPECT_TRUE(store_.expire("k", 10));
  EXPECT_TRUE(store_.exists("k"));
  now_ = 11;
  EXPECT_FALSE(store_.exists("k"));
}

TEST_F(StoreTest, IncrStartsAtZero) {
  EXPECT_EQ(store_.incr("counter"), 1);
  EXPECT_EQ(store_.incr("counter"), 2);
  store_.set("pre", "41");
  EXPECT_EQ(store_.incr("pre"), 42);
}

TEST_F(StoreTest, CompareAndDelete) {
  store_.set("lock", "token-a");
  EXPECT_FALSE(store_.compare_and_delete("lock", "token-b"));
  EXPECT_TRUE(store_.exists("lock"));
  EXPECT_TRUE(store_.compare_and_delete("lock", "token-a"));
  EXPECT_FALSE(store_.exists("lock"));
}

TEST_F(StoreTest, KeysWithPrefixSorted) {
  store_.set("a:1", "x");
  store_.set("a:2", "x");
  store_.set("b:1", "x");
  store_.zadd("a:3", 1, "m");
  const auto keys = store_.keys_with_prefix("a:");
  EXPECT_EQ(keys, (std::vector<std::string>{"a:1", "a:2", "a:3"}));
}

TEST_F(StoreTest, SortedSetOrderAndScores) {
  store_.zadd("z", 3, "c");
  store_.zadd("z", 1, "a");
  store_.zadd("z", 2, "b");
  EXPECT_EQ(store_.zrange("z", 0, -1), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(store_.zrange("z", 1, 1), (std::vector<std::string>{"b"}));
  EXPECT_EQ(store_.zrange("z", -2, -1), (std::vector<std::string>{"b", "c"}));
  EXPECT_EQ(store_.zcard("z"), 3);
  EXPECT_DOUBLE_EQ(*store_.zscore("z", "b"), 2);
  // score update re-sorts, does not duplicate
  EXPECT_FALSE(store_.zadd("z", 9, "a"));
  EXPECT_EQ(store_.zrange("z", 0, -1), (std::vector<std::string>{"b", "c", "a"}));
  EXPECT_TRUE(store_.zrem("z", "b"));
  EXPECT_FALSE(store_.zrem("z", "b"));
  EXPECT_EQ(store_.zcard("z"), 2);
}

TEST_F(StoreTest, ZRangeEdgeCases) {
  EXPECT_TRUE(store_.zrange("missing", 0, -1).empty());
  store_.zadd("z", 1, "a");
  EXPECT_TRUE(store_.zrange("z", 5, 9).empty());
  EXPECT_TRUE(store_.zrange("z", 1, 0).empty());
}

TEST_F(StoreTest, WireProtocolDispatch) {
  EXPECT_EQ(store_.execute({"PING", {}}).value, "PONG");
  EXPECT_TRUE(store_.execute({"SET", {"k", "v"}}).ok);
  EXPECT_EQ(store_.execute({"GET", {"k"}}).value, "v");
  EXPECT_FALSE(store_.execute({"GET", {"missing"}}).found);
  EXPECT_FALSE(store_.execute({"BOGUS", {}}).ok);
  EXPECT_FALSE(store_.execute({"SET", {"only-key"}}).ok);
  // SET ... NX PX ttl
  EXPECT_TRUE(store_.execute({"SET", {"n", "1", "NX", "PX", "50"}}).found);
  EXPECT_FALSE(store_.execute({"SET", {"n", "2", "NX"}}).found);
  now_ = 51;
  EXPECT_TRUE(store_.execute({"SET", {"n", "3", "NX"}}).found);
  EXPECT_EQ(store_.execute({"DBSIZE", {}}).integer, 2);
  store_.execute({"FLUSHALL", {}});
  EXPECT_EQ(store_.execute({"DBSIZE", {}}).integer, 0);
}

// ---------------------------------------------------------------------------
// Server
// ---------------------------------------------------------------------------

TEST(Server, ServesConcurrentClients) {
  Server server;
  constexpr int kThreads = 8;
  constexpr int kIncrements = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&server] {
      Client client(server);
      for (int i = 0; i < kIncrements; ++i) client.incr("shared");
    });
  }
  for (auto& thread : threads) thread.join();
  Client client(server);
  EXPECT_EQ(client.get("shared"), std::to_string(kThreads * kIncrements));
  EXPECT_GE(server.commands_served(), static_cast<uint64_t>(kThreads * kIncrements));
}

TEST(Server, StopRejectsFurtherCalls) {
  Server server;
  server.stop();
  const auto response = server.call({"PING", {}});
  EXPECT_FALSE(response.ok);
}

TEST(Server, TypedClientWrappers) {
  Server server;
  Client client(server);
  EXPECT_FALSE(client.get("x"));
  client.set("x", "1");
  EXPECT_EQ(client.get("x"), "1");
  EXPECT_TRUE(client.exists("x"));
  EXPECT_TRUE(client.zadd("z", 1.5, "m"));
  EXPECT_DOUBLE_EQ(*client.zscore("z", "m"), 1.5);
  EXPECT_EQ(client.zcard("z"), 1);
  EXPECT_EQ(client.zrange("z", 0, -1), std::vector<std::string>{"m"});
  EXPECT_TRUE(client.zrem("z", "m"));
  client.flush_all();
  EXPECT_FALSE(client.exists("x"));
}

// ---------------------------------------------------------------------------
// DistributedMutex
// ---------------------------------------------------------------------------

TEST(DistributedMutex, TryLockExcludesSecondHolder) {
  Server server;
  DistributedMutex first(server, "lock");
  DistributedMutex second(server, "lock", DistributedMutex::Options{}, 999);
  EXPECT_TRUE(first.try_lock());
  EXPECT_FALSE(second.try_lock());
  EXPECT_TRUE(first.unlock());
  EXPECT_TRUE(second.try_lock());
  EXPECT_TRUE(second.unlock());
}

TEST(DistributedMutex, UnlockWithoutHoldIsFalse) {
  Server server;
  DistributedMutex mutex(server, "lock");
  EXPECT_FALSE(mutex.unlock());
}

TEST(DistributedMutex, ExpiredLeaseCannotReleaseNewHolder) {
  // Use a server with a controllable clock so the lease can expire.
  int64_t now = 0;
  Server server([&now] { return now; });
  DistributedMutex::Options short_lease;
  short_lease.ttl_ms = 10;
  DistributedMutex first(server, "lock", short_lease, 1);
  DistributedMutex second(server, "lock", short_lease, 2);

  EXPECT_TRUE(first.try_lock());
  now = 11;  // first's lease expires
  EXPECT_TRUE(second.try_lock());
  // first's release must NOT free second's lock (token mismatch)
  EXPECT_FALSE(first.unlock());
  Client client(server);
  EXPECT_TRUE(client.exists("lock"));
  EXPECT_TRUE(second.unlock());
}

TEST(DistributedMutex, ExpiredLeaseUnlockLeavesNewHoldersTokenIntact) {
  // Regression for the compare-and-delete race in full: after the first
  // holder's TTL lapses and a second client takes the lock, the first
  // holder's unlock must not only return false — the key must still hold the
  // *second* holder's token verbatim, and the expired holder must come back
  // with a fresh token that round-trips its own lock/unlock.
  int64_t now = 0;
  Server server([&now] { return now; });
  DistributedMutex::Options short_lease;
  short_lease.ttl_ms = 10;
  DistributedMutex first(server, "lock", short_lease, 1);
  DistributedMutex second(server, "lock", short_lease, 2);
  Client client(server);

  ASSERT_TRUE(first.try_lock());
  const std::string first_token = client.get("lock").value();

  now += 11;  // first's lease lapses; nothing has touched the key since
  ASSERT_TRUE(second.try_lock());
  const std::string second_token = client.get("lock").value();
  ASSERT_NE(second_token, first_token);

  // The stale release must be a no-op on the new holder's lease.
  EXPECT_FALSE(first.unlock());
  EXPECT_EQ(client.get("lock"), second_token);
  EXPECT_FALSE(first.held());

  // The expired holder can contend again — with a fresh token, so its new
  // acquisition (after second releases) is independently releasable.
  EXPECT_FALSE(first.try_lock());  // second still holds
  EXPECT_TRUE(second.unlock());
  EXPECT_TRUE(first.try_lock());
  const std::string reacquired_token = client.get("lock").value();
  EXPECT_NE(reacquired_token, first_token);
  EXPECT_TRUE(first.unlock());
  EXPECT_FALSE(client.exists("lock"));
}

TEST(DistributedMutex, MutualExclusionUnderContention) {
  Server server;
  std::atomic<int> inside{0};
  std::atomic<bool> violation{false};
  std::atomic<int> total{0};
  constexpr int kThreads = 6;
  constexpr int kRounds = 50;

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      DistributedMutex mutex(server, "critical", DistributedMutex::Options{},
                             static_cast<uint64_t>(t + 1));
      for (int round = 0; round < kRounds; ++round) {
        ASSERT_TRUE(mutex.lock());
        if (inside.fetch_add(1) != 0) violation = true;
        total.fetch_add(1);
        inside.fetch_sub(1);
        mutex.unlock();
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_FALSE(violation.load());
  EXPECT_EQ(total.load(), kThreads * kRounds);
}

}  // namespace
}  // namespace erpi::kv
