// Footprint-recording coverage across all six subjects (DESIGN.md §15.1):
// each instrumented op reports exactly the replica keys it reads and writes,
// sync traffic carries the channel keys and the sync flag, uninstrumented ops
// fall back to the conservative whole-replica wildcard, durable logging adds
// the log key, and snapshot/restore round-trips leave the installed recorder
// intact (it is wiring, not state).
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "core/dpor.hpp"
#include "subjects/crdt_collection.hpp"
#include "subjects/orbitdb.hpp"
#include "subjects/replicadb.hpp"
#include "subjects/roshi.hpp"
#include "subjects/town.hpp"
#include "subjects/yorkie.hpp"

namespace erpi::subjects {
namespace {

using core::Footprint;
using core::FootprintRecorder;

util::Json jobj(std::initializer_list<std::pair<const char*, util::Json>> kv) {
  util::Json j = util::Json::object();
  for (const auto& [key, value] : kv) j[key] = value;
  return j;
}

using Keys = std::vector<std::string>;

/// Runs ops against one subject and returns the footprint recorded per call.
class Probe {
 public:
  explicit Probe(proxy::Rdl& subject)
      : subject_(&subject), recorder_([this](int id, Footprint&& fp) {
          captured_[id] = std::move(fp);
        }) {
    subject_->set_footprint_recorder(&recorder_);
  }
  ~Probe() { subject_->set_footprint_recorder(nullptr); }

  Footprint invoke(int event_id, int replica, const std::string& op,
                   const util::Json& args = util::Json::object()) {
    recorder_.begin_event(event_id);
    (void)subject_->invoke(replica, op, args);
    recorder_.end_event();
    return captured_[event_id];
  }

 private:
  proxy::Rdl* subject_;
  std::map<int, Footprint> captured_;
  FootprintRecorder recorder_;
};

TEST(DporFootprints, TownReadWriteSetsPerOpKind) {
  TownApp town(2);
  Probe probe(town);
  const Footprint report = probe.invoke(0, 0, "report", jobj({{"problem", "otb"}}));
  EXPECT_EQ(report.reads, Keys{});
  EXPECT_EQ(report.writes, (Keys{"r0/oplog", "r0/problems"}));
  EXPECT_FALSE(report.sync);
  const Footprint resolve = probe.invoke(1, 0, "resolve", jobj({{"problem", "otb"}}));
  EXPECT_EQ(resolve.reads, (Keys{"r0/problems"}));
  EXPECT_EQ(resolve.writes, (Keys{"r0/oplog", "r0/problems"}));
  const Footprint transmit = probe.invoke(2, 1, "transmit");
  EXPECT_EQ(transmit.reads, (Keys{"r1/problems"}));
  EXPECT_EQ(transmit.writes, Keys{});
}

TEST(DporFootprints, SyncTrafficCarriesChannelKeysAndSyncFlag) {
  TownApp town(2);
  Probe probe(town);
  (void)probe.invoke(0, 0, "report", jobj({{"problem", "x"}}));
  const Footprint req = probe.invoke(1, 0, proxy::kSyncReqOp, jobj({{"peer", 1}}));
  EXPECT_TRUE(req.sync);
  EXPECT_EQ(req.reads, (Keys{"r0/*"}));
  EXPECT_EQ(req.writes, (Keys{"chan/0->1"}));
  const Footprint exec = probe.invoke(2, 1, proxy::kExecSyncOp, jobj({{"peer", 0}}));
  EXPECT_TRUE(exec.sync);
  EXPECT_EQ(exec.reads, (Keys{"chan/0->1", "r1/*"}));
  EXPECT_EQ(exec.writes, (Keys{"chan/0->1", "r1/*"}));
}

TEST(DporFootprints, RoshiPerKeyStreamsAndWildcardScan) {
  Roshi roshi(2);
  Probe probe(roshi);
  const Footprint insert = probe.invoke(
      0, 0, "insert", jobj({{"key", "s"}, {"member", "m"}, {"ts", 1.0}}));
  EXPECT_EQ(insert.reads, (Keys{"r0/arrival", "r0/stream/s"}));
  EXPECT_EQ(insert.writes, (Keys{"r0/arrival", "r0/stream/s"}));
  const Footprint select = probe.invoke(1, 0, "select", jobj({{"key", "s"}}));
  EXPECT_EQ(select.reads, (Keys{"r0/stream/s"}));
  EXPECT_EQ(select.writes, Keys{});
  const Footprint select_all = probe.invoke(2, 0, "select_all");
  EXPECT_EQ(select_all.reads, (Keys{"r0/*"}));
  // Wildcard conflicts with the per-key stream but not with another replica.
  EXPECT_TRUE(core::footprint_keys_conflict("r0/*", "r0/stream/s"));
  EXPECT_FALSE(core::footprint_keys_conflict("r0/*", "r1/stream/s"));
}

TEST(DporFootprints, OrbitDbOplogAclAndHeads) {
  OrbitDb db(2);
  Probe probe(db);
  const Footprint add = probe.invoke(0, 1, "add", jobj({{"payload", "a1"}}));
  EXPECT_EQ(add.reads, (Keys{"r1/oplog"}));
  EXPECT_EQ(add.writes, (Keys{"r1/oplog"}));
  const Footprint grant =
      probe.invoke(1, 1, "grant", jobj({{"identity", OrbitDb::identity_of(0)}}));
  EXPECT_EQ(grant.reads, (Keys{"r1/oplog"}));
  EXPECT_EQ(grant.writes, (Keys{"r1/acl", "r1/oplog"}));
  const Footprint check = probe.invoke(2, 1, "check_head", jobj({{"peer", 0}}));
  EXPECT_EQ(check.reads, (Keys{"r1/heads", "r1/oplog"}));
  EXPECT_EQ(check.writes, Keys{});
}

TEST(DporFootprints, ReplicaDbSourceRowsAndTransferRegisters) {
  ReplicaDb db(1);
  Probe probe(db);
  const Footprint insert = probe.invoke(
      0, 0, "insert_source", jobj({{"id", "r1"}, {"value", "v"}, {"ts", 1}}));
  EXPECT_EQ(insert.reads, (Keys{"r0/source/r1"}));
  EXPECT_EQ(insert.writes, (Keys{"r0/history", "r0/source/r1"}));
  const Footprint transfer = probe.invoke(1, 0, "transfer", jobj({{"mode", "complete"}}));
  EXPECT_EQ(transfer.reads, (Keys{"r0/last_transfer", "r0/source/*"}));
  EXPECT_EQ(transfer.writes, (Keys{"r0/last_transfer", "r0/sink"}));
  const Footprint count = probe.invoke(2, 0, "sink_count");
  EXPECT_EQ(count.reads, (Keys{"r0/sink"}));
  EXPECT_EQ(count.writes, Keys{});
}

TEST(DporFootprints, YorkieDocAndOplog) {
  Yorkie yorkie(1);
  Probe probe(yorkie);
  const Footprint set =
      probe.invoke(0, 0, "set", jobj({{"key", "title"}, {"value", "doc"}}));
  EXPECT_EQ(set.reads, (Keys{"r0/doc"}));
  EXPECT_EQ(set.writes, (Keys{"r0/doc", "r0/oplog"}));
  const Footprint push =
      probe.invoke(1, 0, "list_push", jobj({{"key", "items"}, {"value", "a"}}));
  EXPECT_EQ(push.writes, (Keys{"r0/doc", "r0/oplog"}));
  const Footprint snapshot = probe.invoke(2, 0, "snapshot");
  EXPECT_EQ(snapshot.reads, (Keys{"r0/doc"}));
  EXPECT_EQ(snapshot.writes, Keys{});
}

TEST(DporFootprints, CrdtCollectionPerStructureKeys) {
  CrdtCollection app(1);
  Probe probe(app);
  const Footprint set_add = probe.invoke(0, 0, "set_add", jobj({{"element", "s1"}}));
  EXPECT_EQ(set_add.reads, (Keys{"r0/set"}));
  EXPECT_EQ(set_add.writes, (Keys{"r0/oplog", "r0/set"}));
  const Footprint inc = probe.invoke(1, 0, "counter_inc", jobj({{"by", 5}}));
  EXPECT_EQ(inc.reads, (Keys{"r0/counter"}));
  EXPECT_EQ(inc.writes, (Keys{"r0/counter", "r0/oplog"}));
  const Footprint todo = probe.invoke(2, 0, "todo_create", jobj({{"text", "task"}}));
  EXPECT_EQ(todo.reads, (Keys{"r0/todos"}));
  EXPECT_EQ(todo.writes, (Keys{"r0/oplog", "r0/todos"}));
  const Footprint ids = probe.invoke(3, 0, "todo_ids");
  EXPECT_EQ(ids.reads, (Keys{"r0/todos"}));
  EXPECT_EQ(ids.writes, Keys{});
}

TEST(DporFootprints, UnknownOpFallsBackToWholeReplicaWildcard) {
  CrdtCollection app(1);
  Probe probe(app);
  // The op fails, but the conservative footprint is still recorded — an
  // uninstrumented or unknown op must conflict with everything on its replica.
  const Footprint bogus = probe.invoke(0, 0, "no_such_op");
  EXPECT_EQ(bogus.reads, (Keys{"r0/*"}));
  EXPECT_EQ(bogus.writes, (Keys{"r0/*"}));
}

TEST(DporFootprints, DurableLoggingAddsTheLogKey) {
  Roshi plain(1);
  Probe plain_probe(plain);
  const Footprint without = plain_probe.invoke(
      0, 0, "insert", jobj({{"key", "s"}, {"member", "m"}, {"ts", 1.0}}));
  EXPECT_EQ(without.writes, (Keys{"r0/arrival", "r0/stream/s"}));

  Roshi durable(1);
  durable.set_durable_logging(true);
  ASSERT_TRUE(durable.durable_logging());
  Probe durable_probe(durable);
  const Footprint with = durable_probe.invoke(
      0, 0, "insert", jobj({{"key", "s"}, {"member", "m"}, {"ts", 1.0}}));
  EXPECT_EQ(with.writes, (Keys{"r0/arrival", "r0/log", "r0/stream/s"}));
}

TEST(DporFootprints, SnapshotRestoreLeavesTheRecorderInstalled) {
  TownApp town(1);
  Probe probe(town);
  (void)probe.invoke(0, 0, "report", jobj({{"problem", "a"}}));
  const proxy::Snapshot snap = town.snapshot();
  ASSERT_TRUE(snap.valid());
  (void)probe.invoke(1, 0, "report", jobj({{"problem", "b"}}));
  ASSERT_TRUE(town.restore(snap));
  // The recorder is wiring, not state: an invoke after restore still records.
  const Footprint after = probe.invoke(2, 0, "report", jobj({{"problem", "c"}}));
  EXPECT_EQ(after.writes, (Keys{"r0/oplog", "r0/problems"}));
}

}  // namespace
}  // namespace erpi::subjects
