// Subject snapshot/restore round-trips (incremental prefix replay).
//
// Every subject in src/subjects/ overrides clone_replicas/adopt_replicas, so
// snapshot() must checkpoint replica state AND the simulated network
// (in-flight sync traffic) such that restore() reproduces both exactly — and
// reproduces them repeatedly, since the prefix cache restores one snapshot
// many times.
#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "proxy/proxy.hpp"
#include "subjects/crdt_collection.hpp"
#include "subjects/orbitdb.hpp"
#include "subjects/replicadb.hpp"
#include "subjects/roshi.hpp"
#include "subjects/town.hpp"
#include "subjects/yorkie.hpp"

namespace erpi::subjects {
namespace {

util::Json jobj(std::initializer_list<std::pair<const char*, util::Json>> kv) {
  util::Json j = util::Json::object();
  for (auto& [key, value] : kv) j[key] = value;
  return j;
}

struct SnapshotCase {
  const char* name;
  std::function<std::unique_ptr<SubjectBase>()> make;
  /// First workload phase; must leave at least one sync_req pending on the
  /// network so the checkpoint covers in-flight traffic.
  std::function<void(SubjectBase&)> phase1;
  /// Second phase: consumes the pending sync and mutates further.
  std::function<void(SubjectBase&)> phase2;
};

void must(util::Result<util::Json> r) { ASSERT_TRUE(r.has_value()) << r.error().message; }

std::vector<SnapshotCase> snapshot_cases() {
  std::vector<SnapshotCase> cases;
  cases.push_back({"town",
                   [] { return std::make_unique<TownApp>(2); },
                   [](SubjectBase& s) {
                     must(s.invoke(0, "report", jobj({{"problem", "otb"}})));
                     must(s.invoke(0, proxy::kSyncReqOp, jobj({{"peer", 1}})));
                   },
                   [](SubjectBase& s) {
                     must(s.invoke(1, proxy::kExecSyncOp, jobj({{"peer", 0}})));
                     must(s.invoke(1, "report", jobj({{"problem", "ph"}})));
                   }});
  cases.push_back({"roshi",
                   [] { return std::make_unique<Roshi>(2); },
                   [](SubjectBase& s) {
                     must(s.invoke(0, "insert",
                                   jobj({{"key", "k"}, {"member", "m"}, {"ts", 1.0}})));
                     must(s.invoke(0, proxy::kSyncReqOp, jobj({{"peer", 1}})));
                   },
                   [](SubjectBase& s) {
                     must(s.invoke(1, proxy::kExecSyncOp, jobj({{"peer", 0}})));
                     must(s.invoke(1, "delete",
                                   jobj({{"key", "k"}, {"member", "m"}, {"ts", 2.0}})));
                   }});
  cases.push_back({"orbitdb",
                   [] { return std::make_unique<OrbitDb>(2); },
                   [](SubjectBase& s) {
                     must(s.invoke(0, "add", jobj({{"payload", "p0"}})));
                     must(s.invoke(0, proxy::kSyncReqOp, jobj({{"peer", 1}})));
                   },
                   [](SubjectBase& s) {
                     must(s.invoke(1, proxy::kExecSyncOp, jobj({{"peer", 0}})));
                     must(s.invoke(1, "add", jobj({{"payload", "p1"}})));
                   }});
  cases.push_back({"replicadb",
                   [] { return std::make_unique<ReplicaDb>(2); },
                   [](SubjectBase& s) {
                     must(s.invoke(0, "insert_source",
                                   jobj({{"id", "r1"}, {"value", "v"}, {"ts", 1}})));
                     must(s.invoke(0, proxy::kSyncReqOp, jobj({{"peer", 1}})));
                   },
                   [](SubjectBase& s) {
                     must(s.invoke(1, proxy::kExecSyncOp, jobj({{"peer", 0}})));
                     must(s.invoke(0, "delete_source", jobj({{"id", "r1"}, {"ts", 2}})));
                   }});
  cases.push_back({"yorkie",
                   [] { return std::make_unique<Yorkie>(2); },
                   [](SubjectBase& s) {
                     must(s.invoke(0, "set", jobj({{"key", "a"}, {"value", 1}})));
                     must(s.invoke(0, "list_push", jobj({{"key", "l"}, {"value", "x"}})));
                     must(s.invoke(0, proxy::kSyncReqOp, jobj({{"peer", 1}})));
                   },
                   [](SubjectBase& s) {
                     must(s.invoke(1, proxy::kExecSyncOp, jobj({{"peer", 0}})));
                     must(s.invoke(1, "set", jobj({{"key", "a"}, {"value", 2}})));
                   }});
  cases.push_back({"crdt_collection",
                   [] { return std::make_unique<CrdtCollection>(2); },
                   [](SubjectBase& s) {
                     must(s.invoke(0, "set_add", jobj({{"element", "s1"}})));
                     must(s.invoke(0, "counter_inc", jobj({{"by", 3}})));
                     must(s.invoke(0, proxy::kSyncReqOp, jobj({{"peer", 1}})));
                   },
                   [](SubjectBase& s) {
                     must(s.invoke(1, proxy::kExecSyncOp, jobj({{"peer", 0}})));
                     must(s.invoke(1, "set_remove", jobj({{"element", "s1"}})));
                   }});
  return cases;
}

std::vector<std::string> states(SubjectBase& subject) {
  std::vector<std::string> out;
  for (int r = 0; r < subject.replica_count(); ++r) {
    out.push_back(subject.replica_state(static_cast<net::ReplicaId>(r)).dump());
  }
  return out;
}

class SubjectSnapshot : public ::testing::TestWithParam<SnapshotCase> {};

TEST_P(SubjectSnapshot, RoundTripsReplicaStateAndNetwork) {
  const auto& c = GetParam();
  auto subject = c.make();
  c.phase1(*subject);

  const auto checkpoint_states = states(*subject);
  const size_t checkpoint_pending = subject->network().total_pending();
  ASSERT_GT(checkpoint_pending, 0u) << "phase1 must leave a sync in flight";

  const proxy::Snapshot snap = subject->snapshot();
  ASSERT_TRUE(snap.valid());
  EXPECT_GT(snap.bytes, 0u);

  c.phase2(*subject);
  EXPECT_EQ(subject->network().total_pending(), checkpoint_pending - 1);
  const auto mutated_states = states(*subject);

  ASSERT_TRUE(subject->restore(snap));
  EXPECT_EQ(states(*subject), checkpoint_states);
  EXPECT_EQ(subject->network().total_pending(), checkpoint_pending);

  // The same snapshot must be restorable repeatedly with identical results —
  // re-running phase2 from the restored state reproduces the mutated states.
  c.phase2(*subject);
  EXPECT_EQ(states(*subject), mutated_states);
  ASSERT_TRUE(subject->restore(snap));
  EXPECT_EQ(states(*subject), checkpoint_states);
  EXPECT_EQ(subject->network().total_pending(), checkpoint_pending);
}

TEST_P(SubjectSnapshot, RejectsForeignAndInvalidSnapshots) {
  const auto& c = GetParam();
  auto subject = c.make();
  auto other = c.make();
  c.phase1(*subject);
  const proxy::Snapshot snap = subject->snapshot();
  ASSERT_TRUE(snap.valid());

  // A snapshot only restores into the instance that produced it.
  EXPECT_FALSE(other->restore(snap));
  EXPECT_FALSE(subject->restore(proxy::Snapshot{}));
}

INSTANTIATE_TEST_SUITE_P(AllSubjects, SubjectSnapshot,
                         ::testing::ValuesIn(snapshot_cases()),
                         [](const auto& info) { return std::string(info.param.name); });

TEST(SnapshotSurface, BaseRdlReportsUnsupported) {
  // The Rdl default keeps snapshots opt-in; SubjectBase without overridden
  // clone hooks would return an invalid snapshot, which the replay engine
  // treats as "fall back to full resets".
  proxy::Snapshot empty;
  EXPECT_FALSE(empty.valid());
  EXPECT_EQ(empty.bytes, 0u);
}

}  // namespace
}  // namespace erpi::subjects
