// Evaluation-subject tests: each subject's operations, synchronization,
// reset semantics, state/witness exposure, and seeded-defect flags.
#include <gtest/gtest.h>

#include "proxy/proxy.hpp"
#include "subjects/crdt_collection.hpp"
#include "subjects/orbitdb.hpp"
#include "subjects/replicadb.hpp"
#include "subjects/roshi.hpp"
#include "subjects/town.hpp"
#include "subjects/yorkie.hpp"

namespace erpi::subjects {
namespace {

util::Json jobj(std::initializer_list<std::pair<const char*, util::Json>> kv) {
  util::Json out = util::Json::object();
  for (const auto& [k, v] : kv) out[k] = v;
  return out;
}

// ---------------------------------------------------------------------------
// Common base behaviour
// ---------------------------------------------------------------------------

TEST(SubjectBase, UnknownOpAndBadReplicaAreErrors) {
  TownApp town(2);
  EXPECT_FALSE(town.invoke(0, "no_such_op", util::Json::object()));
  EXPECT_THROW(town.invoke(7, "report", jobj({{"problem", "x"}})), std::out_of_range);
}

TEST(SubjectBase, ExecWithoutPendingSyncFails) {
  TownApp town(2);
  const auto result = town.invoke(1, proxy::kExecSyncOp, jobj({{"peer", 0}}));
  ASSERT_FALSE(result);
  EXPECT_NE(result.error().message.find("no pending sync"), std::string::npos);
}

TEST(SubjectBase, ResetClearsStateAndNetwork) {
  TownApp town(2);
  proxy::RdlProxy proxy(town);
  proxy.update(0, "report", jobj({{"problem", "x"}}));
  proxy.sync_req(0, 1);  // leaves an undelivered message in flight
  town.reset();
  EXPECT_EQ(town.replica_state(0)["problems"].size(), 0u);
  EXPECT_FALSE(town.invoke(1, proxy::kExecSyncOp, jobj({{"peer", 0}})));
}

// ---------------------------------------------------------------------------
// TownApp
// ---------------------------------------------------------------------------

TEST(TownApp, ReportResolveTransmit) {
  TownApp town(2);
  proxy::RdlProxy proxy(town);
  proxy.update(0, "report", jobj({{"problem", "otb"}}));
  proxy.sync(0, 1);
  proxy.update(1, "report", jobj({{"problem", "ph"}}));
  proxy.update(1, "resolve", jobj({{"problem", "otb"}}));
  proxy.sync(1, 0);
  const auto transmitted = proxy.query(0, "transmit");
  ASSERT_TRUE(transmitted);
  EXPECT_EQ(transmitted.value().dump(), R"(["ph"])");
  // resolving an unseen problem is a harmless no-op
  const auto noop = proxy.update(1, "resolve", jobj({{"problem", "ghost"}}));
  EXPECT_TRUE(noop);
  EXPECT_FALSE(noop.value().as_bool());
}

// ---------------------------------------------------------------------------
// Roshi
// ---------------------------------------------------------------------------

TEST(Roshi, LwwInsertDeleteSelect) {
  Roshi roshi(2);
  proxy::RdlProxy proxy(roshi);
  proxy.update(0, "insert", jobj({{"key", "s"}, {"member", "m"}, {"ts", 1.0}}));
  proxy.update(0, "delete", jobj({{"key", "s"}, {"member", "m"}, {"ts", 2.0}}));
  // stale re-insert loses against the newer delete
  const auto stale = proxy.update(0, "insert",
                                  jobj({{"key", "s"}, {"member", "m"}, {"ts", 1.5}}));
  EXPECT_FALSE(stale.value().as_bool());
  const auto rows = proxy.query(0, "select", jobj({{"key", "s"}}));
  EXPECT_EQ(rows.value().size(), 0u);
  proxy.update(0, "insert", jobj({{"key", "s"}, {"member", "m"}, {"ts", 3.0}}));
  const auto rows2 = proxy.query(0, "select", jobj({{"key", "s"}}));
  ASSERT_EQ(rows2.value().size(), 1u);
  EXPECT_FALSE(rows2.value().at(0)["deleted"].as_bool());
}

TEST(Roshi, SelectRespectsOffsetAndLimit) {
  Roshi roshi(1);
  proxy::RdlProxy proxy(roshi);
  for (int i = 0; i < 5; ++i) {
    proxy.update(0, "insert", jobj({{"key", "s"},
                                    {"member", "m" + std::to_string(i)},
                                    {"ts", static_cast<double>(i)}}));
  }
  const auto rows =
      proxy.query(0, "select", jobj({{"key", "s"}, {"offset", 1}, {"limit", 2}}));
  ASSERT_EQ(rows.value().size(), 2u);
  EXPECT_EQ(rows.value().at(0)["member"].as_string(), "m1");
  EXPECT_EQ(rows.value().at(1)["member"].as_string(), "m2");
}

TEST(Roshi, StateSyncMergesLww) {
  Roshi roshi(2);
  proxy::RdlProxy proxy(roshi);
  proxy.update(0, "insert", jobj({{"key", "s"}, {"member", "m"}, {"ts", 1.0}}));
  proxy.update(1, "delete", jobj({{"key", "s"}, {"member", "m"}, {"ts", 2.0}}));
  proxy.sync(0, 1);
  proxy.sync(1, 0);
  // histories equal, and the newer delete wins at both replicas
  EXPECT_TRUE(roshi.replica_state(0) == roshi.replica_state(1));
  const auto rows = proxy.query(0, "select", jobj({{"key", "s"}}));
  EXPECT_EQ(rows.value().size(), 0u);
}

TEST(Roshi, BuggyDeletedFieldLeaksDeletedMembers) {
  Roshi::Flags flags;
  flags.deleted_field_fixed = false;
  Roshi roshi(1, flags);
  proxy::RdlProxy proxy(roshi);
  proxy.update(0, "insert", jobj({{"key", "s"}, {"member", "m"}, {"ts", 1.0}}));
  proxy.update(0, "delete", jobj({{"key", "s"}, {"member", "m"}, {"ts", 2.0}}));
  const auto rows = proxy.query(0, "select", jobj({{"key", "s"}}));
  ASSERT_EQ(rows.value().size(), 1u);  // issue #18: the deleted member leaks
  EXPECT_FALSE(rows.value().at(0)["deleted"].as_bool());
}

TEST(Roshi, SelectAllOrderStableWhenFixed) {
  Roshi roshi(2);
  proxy::RdlProxy proxy(roshi);
  proxy.update(0, "insert", jobj({{"key", "k2"}, {"member", "a"}, {"ts", 1.0}}));
  proxy.update(0, "insert", jobj({{"key", "k1"}, {"member", "b"}, {"ts", 2.0}}));
  const auto all = proxy.query(0, "select_all", util::Json::object());
  ASSERT_EQ(all.value().size(), 2u);
  EXPECT_EQ(all.value().at(0)["key"].as_string(), "k1");  // sorted
}

// ---------------------------------------------------------------------------
// OrbitDb
// ---------------------------------------------------------------------------

TEST(OrbitDb, AddPutGetAndSync) {
  OrbitDb db(2);
  proxy::RdlProxy proxy(db);
  proxy.update(0, "put", jobj({{"key", "color"}, {"value", "red"}}));
  proxy.update(0, "put", jobj({{"key", "color"}, {"value", "blue"}}));
  proxy.sync(0, 1);
  const auto got = proxy.query(1, "get", jobj({{"key", "color"}}));
  EXPECT_EQ(got.value().as_string(), "blue");  // latest put wins
  EXPECT_TRUE(proxy.query(1, "verify", util::Json::object()).value().as_bool());
}

TEST(OrbitDb, OpenCloseLockLifecycle) {
  OrbitDb db(1);
  proxy::RdlProxy proxy(db);
  EXPECT_TRUE(proxy.update(0, "open", util::Json::object()).value().as_bool());
  // re-open while open is a benign no-op, not a stale lock
  EXPECT_FALSE(proxy.update(0, "open", util::Json::object()).value().as_bool());
  EXPECT_TRUE(proxy.update(0, "close", util::Json::object()).value().as_bool());
  EXPECT_TRUE(proxy.update(0, "open", util::Json::object()).value().as_bool());
}

TEST(OrbitDb, BuggyLockLeaksAfterTwoFreshSyncsWhileOpen) {
  OrbitDb::Flags flags;
  flags.release_lock_on_sync_fixed = false;
  OrbitDb db(2, flags);
  proxy::RdlProxy proxy(db);
  proxy.update(0, "add", jobj({{"payload", "a1"}}));
  proxy.sync_req(0, 1);
  proxy.update(0, "add", jobj({{"payload", "a2"}}));
  proxy.sync_req(0, 1);
  proxy.update(1, "open", util::Json::object());
  proxy.exec_sync(0, 1);  // fresh entries while open (1)
  proxy.exec_sync(0, 1);  // fresh entries while open (2)
  proxy.update(1, "close", util::Json::object());
  const auto reopened = proxy.update(1, "open", util::Json::object());
  ASSERT_FALSE(reopened);
  EXPECT_NE(reopened.error().message.find("stale lock"), std::string::npos);
}

TEST(OrbitDb, GrantBuffersUnauthorizedEntriesWhenFixed) {
  OrbitDb db(2);  // buffer_unauthorized = true
  proxy::RdlProxy proxy(db);
  proxy.update(1, "grant", jobj({{"identity", OrbitDb::identity_of(1)}}));
  proxy.update(0, "add", jobj({{"payload", "pre-grant"}}));
  proxy.sync(0, 1);  // id0 not yet granted at replica 1 -> buffered
  EXPECT_EQ(db.replica_state(1)["pending"].as_int(), 1);
  proxy.update(1, "grant", jobj({{"identity", OrbitDb::identity_of(0)}}));
  EXPECT_EQ(db.replica_state(1)["pending"].as_int(), 0);
  EXPECT_EQ(db.replica_state(1)["log"].size(), 1u);
}

TEST(OrbitDb, HeadsOnlySyncAnnouncesWithoutEntries) {
  OrbitDb db(2);
  proxy::RdlProxy proxy(db);
  proxy.update(0, "add", jobj({{"payload", "x"}}));
  proxy.sync_req(0, 1, jobj({{"mode", "heads"}}));
  proxy.exec_sync(0, 1);
  EXPECT_EQ(db.replica_state(1)["log"].size(), 0u);
  const auto check = proxy.query(1, "check_head", jobj({{"peer", 0}}));
  ASSERT_FALSE(check);  // announced head unresolvable
  EXPECT_NE(check.error().message.find("didn't match the contents"), std::string::npos);
  // shipping the entries repairs it
  proxy.sync_req(0, 1, jobj({{"mode", "entries"}}));
  proxy.exec_sync(0, 1);
  EXPECT_TRUE(proxy.query(1, "check_head", jobj({{"peer", 0}})));
}

// ---------------------------------------------------------------------------
// ReplicaDb
// ---------------------------------------------------------------------------

TEST(ReplicaDb, CompleteTransferCopiesLiveRows) {
  ReplicaDb db(1);
  proxy::RdlProxy proxy(db);
  proxy.update(0, "insert_source", jobj({{"id", "r1"}, {"value", "v1"}, {"ts", 1}}));
  proxy.update(0, "insert_source", jobj({{"id", "r2"}, {"value", "v2"}, {"ts", 2}}));
  proxy.update(0, "delete_source", jobj({{"id", "r2"}, {"ts", 3}}));
  const auto moved = proxy.update(0, "transfer", jobj({{"mode", "complete"}}));
  EXPECT_EQ(moved.value().as_int(), 1);
  EXPECT_EQ(proxy.query(0, "sink_count", util::Json::object()).value().as_int(), 1);
}

TEST(ReplicaDb, IncrementalTransferPropagatesDeletesWhenFixed) {
  ReplicaDb db(1);
  proxy::RdlProxy proxy(db);
  proxy.update(0, "insert_source", jobj({{"id", "r1"}, {"value", "v"}, {"ts", 1}}));
  proxy.update(0, "transfer", jobj({{"mode", "incremental"}}));
  EXPECT_EQ(proxy.query(0, "sink_count", util::Json::object()).value().as_int(), 1);
  proxy.update(0, "delete_source", jobj({{"id", "r1"}, {"ts", 2}}));
  proxy.update(0, "transfer", jobj({{"mode", "incremental"}}));
  EXPECT_EQ(proxy.query(0, "sink_count", util::Json::object()).value().as_int(), 0);
}

TEST(ReplicaDb, BuggyIncrementalKeepsDeletedRows) {
  ReplicaDb::Flags flags;
  flags.incremental_deletes_fixed = false;
  ReplicaDb db(1, flags);
  proxy::RdlProxy proxy(db);
  proxy.update(0, "insert_source", jobj({{"id", "r1"}, {"value", "v"}, {"ts", 1}}));
  proxy.update(0, "transfer", jobj({{"mode", "incremental"}}));
  proxy.update(0, "delete_source", jobj({{"id", "r1"}, {"ts", 2}}));
  proxy.update(0, "transfer", jobj({{"mode", "incremental"}}));
  EXPECT_EQ(proxy.query(0, "sink_count", util::Json::object()).value().as_int(), 1);
}

TEST(ReplicaDb, BuggyBufferedTransferHitsMemoryBudget) {
  ReplicaDb::Flags flags;
  flags.streaming_fetch_fixed = false;
  flags.memory_budget_rows = 2;
  ReplicaDb db(1, flags);
  proxy::RdlProxy proxy(db);
  for (int i = 0; i < 3; ++i) {
    proxy.update(0, "insert_source",
                 jobj({{"id", "r" + std::to_string(i)}, {"value", "v"}, {"ts", i + 1}}));
  }
  const auto oom = proxy.update(0, "transfer", jobj({{"mode", "complete"}}));
  ASSERT_FALSE(oom);
  EXPECT_NE(oom.error().message.find("OutOfMemoryError"), std::string::npos);
}

TEST(ReplicaDb, SourceSyncResolvesByVersion) {
  ReplicaDb db(2);
  proxy::RdlProxy proxy(db);
  proxy.update(0, "insert_source", jobj({{"id", "r"}, {"value", "old"}, {"ts", 1}}));
  proxy.update(1, "insert_source", jobj({{"id", "r"}, {"value", "new"}, {"ts", 2}}));
  proxy.sync(0, 1);
  proxy.sync(1, 0);
  EXPECT_TRUE(db.replica_state(0)["source"] == db.replica_state(1)["source"]);
  EXPECT_EQ(db.replica_state(0)["source"]["r"].as_string(), "\"new\"");
}

// ---------------------------------------------------------------------------
// Yorkie
// ---------------------------------------------------------------------------

TEST(Yorkie, DocumentOpsAndTransitiveSync) {
  Yorkie yorkie(3);
  proxy::RdlProxy proxy(yorkie);
  proxy.update(0, "set", jobj({{"key", "title"}, {"value", "doc"}}));
  proxy.update(0, "list_push", jobj({{"key", "items"}, {"value", "a"}}));
  proxy.sync(0, 1);   // 0 -> 1
  proxy.sync(1, 2);   // 1 relays 0's ops to 2
  EXPECT_TRUE(yorkie.replica_state(2)["doc"] == yorkie.replica_state(0)["doc"]);
}

TEST(Yorkie, MoveAfterAndRemove) {
  Yorkie yorkie(1);
  proxy::RdlProxy proxy(yorkie);
  for (const char* v : {"a", "b", "c"}) {
    proxy.update(0, "list_push", jobj({{"key", "l"}, {"value", v}}));
  }
  proxy.update(0, "move_after", jobj({{"key", "l"}, {"from", 0}, {"to", 2}}));
  EXPECT_EQ(yorkie.replica_state(0)["doc"]["l"].dump(), R"(["b","c","a"])");
  proxy.update(0, "list_remove", jobj({{"key", "l"}, {"index", 1}}));
  EXPECT_EQ(yorkie.replica_state(0)["doc"]["l"].dump(), R"(["b","a"])");
  EXPECT_FALSE(proxy.update(0, "move_after", jobj({{"key", "l"}, {"from", 9}, {"to", 0}})));
  EXPECT_FALSE(proxy.update(0, "list_remove", jobj({{"key", "l"}, {"index", 9}})));
}

TEST(Yorkie, WitnessCarriesContentDigests) {
  // two different single-op histories must have different witnesses even
  // though both ops get (origin=0, seq=0)
  Yorkie first(1);
  proxy::RdlProxy p1(first);
  p1.update(0, "set", jobj({{"key", "k"}, {"value", "a"}}));
  Yorkie second(1);
  proxy::RdlProxy p2(second);
  p2.update(0, "set", jobj({{"key", "k"}, {"value", "b"}}));
  EXPECT_FALSE(first.replica_state(0)["seen"] == second.replica_state(0)["seen"]);
}

// ---------------------------------------------------------------------------
// CrdtCollection
// ---------------------------------------------------------------------------

TEST(CrdtCollection, AllStructuresRoundTripThroughSync) {
  CrdtCollection app(2);
  proxy::RdlProxy proxy(app);
  proxy.update(0, "set_add", jobj({{"element", "s1"}}));
  proxy.update(0, "twopset_add", jobj({{"element", "t1"}}));
  proxy.update(0, "counter_inc", jobj({{"by", 5}}));
  proxy.update(0, "counter_dec", jobj({{"by", 2}}));
  proxy.update(0, "list_insert", jobj({{"index", 0}, {"value", "l1"}}));
  proxy.update(0, "naive_append", jobj({{"value", "n1"}}));
  proxy.update(0, "reg_set", jobj({{"value", "r1"}, {"ts", 1}}));
  proxy.update(0, "mv_set", jobj({{"value", "m1"}}));
  proxy.update(0, "todo_create", jobj({{"text", "task"}}));
  proxy.sync(0, 1);
  const auto s0 = app.replica_state(0);
  const auto s1 = app.replica_state(1);
  EXPECT_TRUE(s0 == s1);
  EXPECT_EQ(s1["counter"].as_int(), 3);
  EXPECT_EQ(s1["set"].dump(), R"(["s1"])");
  EXPECT_EQ(s1["todos"]["1"].as_string(), "task");
}

TEST(CrdtCollection, TwoPSetConstraintsSurfaceAsFailedOps) {
  CrdtCollection app(1);
  proxy::RdlProxy proxy(app);
  EXPECT_TRUE(proxy.update(0, "twopset_add", jobj({{"element", "x"}})));
  EXPECT_FALSE(proxy.update(0, "twopset_add", jobj({{"element", "x"}})));
  EXPECT_TRUE(proxy.update(0, "twopset_remove", jobj({{"element", "x"}})));
  EXPECT_FALSE(proxy.update(0, "twopset_remove", jobj({{"element", "x"}})));
  EXPECT_FALSE(proxy.update(0, "twopset_add", jobj({{"element", "x"}})));
}

TEST(CrdtCollection, SequentialTodoIdsClashConcurrently) {
  CrdtCollection app(2);
  proxy::RdlProxy proxy(app);
  proxy.update(0, "todo_create", jobj({{"text", "from-0"}}));
  proxy.update(1, "todo_create", jobj({{"text", "from-1"}}));  // same id 1!
  const auto ids0 = proxy.query(0, "todo_ids", util::Json::object());
  const auto ids1 = proxy.query(1, "todo_ids", util::Json::object());
  EXPECT_TRUE(ids0.value() == ids1.value());  // both minted id 1
  proxy.sync(0, 1);
  // the clash persists: replica 1 keeps its own text for id 1
  EXPECT_EQ(app.replica_state(1)["todos"]["1"].as_string(), "from-1");
  EXPECT_EQ(app.replica_state(0)["todos"]["1"].as_string(), "from-0");
}

TEST(CrdtCollection, RandomTodoIdsAvoidTheClash) {
  CrdtCollection::Flags flags;
  flags.random_todo_ids = true;
  CrdtCollection app(2, flags);
  proxy::RdlProxy proxy(app);
  proxy.update(0, "todo_create", jobj({{"text", "from-0"}}));
  proxy.update(1, "todo_create", jobj({{"text", "from-1"}}));
  proxy.sync(0, 1);
  proxy.sync(1, 0);
  EXPECT_EQ(app.replica_state(0)["todos"].size(), 2u);
  EXPECT_TRUE(app.replica_state(0)["todos"] == app.replica_state(1)["todos"]);
}

TEST(CrdtCollection, MvRegisterKeepsConcurrentWrites) {
  CrdtCollection app(2);
  proxy::RdlProxy proxy(app);
  proxy.update(0, "mv_set", jobj({{"value", "from-0"}}));
  proxy.update(1, "mv_set", jobj({{"value", "from-1"}}));
  proxy.sync(0, 1);
  proxy.sync(1, 0);
  EXPECT_EQ(app.replica_state(0)["mvreg"].size(), 2u);
  EXPECT_TRUE(app.replica_state(0)["mvreg"] == app.replica_state(1)["mvreg"]);
}

}  // namespace
}  // namespace erpi::subjects
