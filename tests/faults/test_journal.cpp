// Crash-safe run-journal tests: append/load round-trips, torn-tail and
// out-of-order truncation, checkpoint compaction — and the headline
// robustness property: a run resumed from a truncated journal (the on-disk
// state a SIGKILL leaves behind) reproduces the uninterrupted run's report,
// skipping at least the journaled pairs.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "core/persist.hpp"
#include "core/session.hpp"
#include "faults/explorer.hpp"
#include "subjects/town.hpp"

namespace erpi::faults {
namespace {

using core::ReplayReport;
using core::RunJournal;
using core::Session;

std::string tmp_journal(const char* name) {
  const std::string path = std::string(::testing::TempDir()) + "erpi_" + name + ".journal";
  std::remove(path.c_str());
  std::remove((path + ".tmp").c_str());
  return path;
}

RunJournal::Record make_record(const std::string& plan, uint64_t ordinal) {
  RunJournal::Record record;
  record.plan = plan;
  record.interleaving = ordinal;
  record.key = "0,1,2";
  return record;
}

std::vector<std::string> file_lines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

void write_lines(const std::string& path, const std::vector<std::string>& lines,
                 const std::string& tail = "") {
  std::ofstream out(path, std::ios::out | std::ios::trunc);
  for (const auto& line : lines) out << line << '\n';
  out << tail;
}

// ---------------------------------------------------------------------------
// RunJournal primitive
// ---------------------------------------------------------------------------

TEST(RunJournal, AppendLoadRoundTrip) {
  const std::string path = tmp_journal("roundtrip");
  {
    RunJournal journal = RunJournal::create(path, 0xabcdef0123456789ull);
    RunJournal::Record first = make_record("none", 1);
    RunJournal::Record second = make_record("none", 2);
    second.violations.push_back({"replicas_converge", "diverged at replica 1"});
    RunJournal::Record third = make_record("drop:1", 1);
    third.timed_out = true;
    journal.append(first);
    journal.append(second);
    journal.append(third);
    EXPECT_EQ(journal.appended(), 3u);
  }
  const auto loaded = RunJournal::load(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->fingerprint, 0xabcdef0123456789ull);
  ASSERT_EQ(loaded->records.size(), 3u);
  EXPECT_EQ(loaded->records[0], make_record("none", 1));
  EXPECT_EQ(loaded->records[1].violations.size(), 1u);
  EXPECT_EQ(loaded->records[1].violations[0].message, "diverged at replica 1");
  EXPECT_TRUE(loaded->records[2].timed_out);
}

TEST(RunJournal, LoadReturnsNulloptForMissingOrHeaderlessFile) {
  EXPECT_FALSE(RunJournal::load(tmp_journal("missing")).has_value());
  const std::string path = tmp_journal("headerless");
  write_lines(path, {"this is not a journal"});
  EXPECT_FALSE(RunJournal::load(path).has_value());
}

TEST(RunJournal, ToleratesTornTail) {
  const std::string path = tmp_journal("torn");
  {
    RunJournal journal = RunJournal::create(path, 42);
    journal.append(make_record("none", 1));
    journal.append(make_record("none", 2));
  }
  // A SIGKILL mid-write leaves a partial trailing line; the valid prefix
  // before it must load intact.
  auto lines = file_lines(path);
  write_lines(path, lines, R"({"plan":"none","il":3,"ke)");
  const auto loaded = RunJournal::load(path);
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->records.size(), 2u);
  EXPECT_EQ(loaded->records[1].interleaving, 2u);
}

TEST(RunJournal, TruncatesAtPerPlanOrdinalGap) {
  const std::string path = tmp_journal("gap");
  {
    RunJournal journal = RunJournal::create(path, 42);
    journal.append(make_record("none", 1));
  }
  auto lines = file_lines(path);
  // Hand-corrupt the tail: ordinal 3 skips 2, and everything after the gap
  // is discarded even if well-formed.
  lines.push_back(R"({"plan":"none","il":3,"key":"0,1","timed_out":false,"violations":[]})");
  lines.push_back(R"({"plan":"none","il":4,"key":"0,1","timed_out":false,"violations":[]})");
  write_lines(path, lines);
  const auto loaded = RunJournal::load(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->records.size(), 1u);
  // Per-plan sequences are independent: a second plan restarts at 1.
  lines = file_lines(path);
  lines.resize(2);  // header + none:1
  lines.push_back(R"({"plan":"drop:1","il":1,"key":"0,1","timed_out":false,"violations":[]})");
  write_lines(path, lines);
  const auto reloaded = RunJournal::load(path);
  ASSERT_TRUE(reloaded.has_value());
  EXPECT_EQ(reloaded->records.size(), 2u);
}

TEST(RunJournal, CheckpointCompactsAtomically) {
  const std::string path = tmp_journal("checkpoint");
  RunJournal journal = RunJournal::create(path, 7);
  for (uint64_t i = 1; i <= 3; ++i) journal.append(make_record("none", i));
  journal.checkpoint();
  // The tmp staging file never survives a successful checkpoint.
  EXPECT_FALSE(std::ifstream(path + ".tmp").good());
  EXPECT_EQ(file_lines(path).size(), 4u);  // header + 3 records
  // Appends keep working after the rename swapped the file out.
  journal.append(make_record("none", 4));
  const auto loaded = RunJournal::load(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->records.size(), 4u);
}

TEST(RunJournal, AutoCheckpointsEveryBatch) {
  const std::string path = tmp_journal("autocheckpoint");
  RunJournal journal = RunJournal::create(path, 7);
  for (uint64_t i = 1; i <= RunJournal::kCheckpointEvery + 5; ++i) {
    journal.append(make_record("none", i));
  }
  const auto loaded = RunJournal::load(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->records.size(), RunJournal::kCheckpointEvery + 5);
}

TEST(RunJournal, CheckpointIntervalIsConfigurable) {
  // The interval is clamped to >= 1 and drives when the atomic rewrite runs:
  // a checkpoint rebuilds the file from the in-memory lines, expunging
  // anything a crashed writer left behind, so external garbage is the
  // observable difference between a tight and a loose interval.
  EXPECT_EQ(RunJournal::create(tmp_journal("clamp"), 7, 0).checkpoint_every(), 1u);

  const std::string tight_path = tmp_journal("tight");
  RunJournal tight = RunJournal::create(tight_path, 7, 1);
  EXPECT_EQ(tight.checkpoint_every(), 1u);
  tight.append(make_record("none", 1));
  {
    std::ofstream out(tight_path, std::ios::app);
    out << "GARBAGE\n";
  }
  tight.append(make_record("none", 2));  // interval 1: checkpoint rewrites now
  for (const auto& line : file_lines(tight_path)) EXPECT_NE(line, "GARBAGE");

  const std::string loose_path = tmp_journal("loose");
  RunJournal loose = RunJournal::create(loose_path, 7, 100);
  loose.append(make_record("none", 1));
  {
    std::ofstream out(loose_path, std::ios::app);
    out << "GARBAGE\n";
  }
  loose.append(make_record("none", 2));  // interval 100: no checkpoint yet
  const auto lines = file_lines(loose_path);
  EXPECT_NE(std::find(lines.begin(), lines.end(), "GARBAGE"), lines.end());
  // load() still sees the valid prefix up to the garbage line.
  const auto loaded = RunJournal::load(loose_path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->records.size(), 1u);
}

// ---------------------------------------------------------------------------
// Kill + resume through the fault explorer
// ---------------------------------------------------------------------------

util::Json problem(const char* name) {
  util::Json j = util::Json::object();
  j["problem"] = name;
  return j;
}

void fault_workload(proxy::RdlProxy& proxy) {
  (void)proxy.update(0, "report", problem("lamp"));
  (void)proxy.sync_req(0, 1);
  (void)proxy.exec_sync(0, 1);
  (void)proxy.update(1, "report", problem("ph"));
  (void)proxy.sync_req(1, 0);
  (void)proxy.exec_sync(1, 0);
  (void)proxy.update(0, "report", problem("otb"));
  (void)proxy.sync_req(0, 1);
  (void)proxy.exec_sync(0, 1);
}

ReplayReport run_journaled(const std::string& journal_path, int parallelism,
                           uint64_t seed = 0, const CatalogOptions& catalog = {}) {
  Session::Config config;
  config.generation_order = core::GroupedEnumerator::Order::Lexicographic;
  config.spec_groups = {{0, 1, 2}, {3, 4, 5}, {6, 7, 8}};
  config.replay.stop_on_violation = false;
  config.replay.max_interleavings = 100'000;
  config.max_snapshot_depth = 16;
  config.parallelism = parallelism;
  config.random_seed = seed;
  config.resume_journal = journal_path;
  config.subject_factory = [] { return std::make_unique<subjects::TownApp>(2); };
  subjects::TownApp town(2);
  proxy::RdlProxy proxy(town);
  Session session(proxy, std::move(config));
  session.start();
  fault_workload(proxy);
  return explore_with_faults(
      session,
      [](proxy::Rdl&) -> core::AssertionList { return {core::replicas_converge({0, 1})}; },
      catalog);
}

void expect_same_outcome(const ReplayReport& resumed, const ReplayReport& full,
                         const std::string& label) {
  EXPECT_EQ(resumed.explored, full.explored) << label;
  EXPECT_EQ(resumed.violations, full.violations) << label;
  EXPECT_EQ(resumed.reproduced, full.reproduced) << label;
  EXPECT_EQ(resumed.first_violation_index, full.first_violation_index) << label;
  EXPECT_EQ(resumed.first_violation_plan, full.first_violation_plan) << label;
  EXPECT_EQ(resumed.first_violation_plan_interleaving,
            full.first_violation_plan_interleaving)
      << label;
  EXPECT_EQ(resumed.plans_explored, full.plans_explored) << label;
  EXPECT_EQ(resumed.quarantined, full.quarantined) << label;
  EXPECT_EQ(resumed.messages, full.messages) << label;
  EXPECT_EQ(resumed.exhausted, full.exhausted) << label;
  EXPECT_EQ(resumed.hit_cap, full.hit_cap) << label;
}

TEST(RunJournal, ResumeFromTruncatedJournalReproducesUninterruptedReport) {
  const std::string path = tmp_journal("resume");
  const ReplayReport full = run_journaled(path, 4);
  ASSERT_GT(full.explored, 20u);
  EXPECT_EQ(full.pairs_skipped_from_journal, 0u);
  const auto complete = RunJournal::load(path);
  ASSERT_TRUE(complete.has_value());
  ASSERT_EQ(complete->records.size(), full.explored);

  // Chop the journal to what a SIGKILL partway through would have durably
  // left behind (any line-aligned prefix is reachable: appends are
  // flushed per record).
  const auto lines = file_lines(path);
  for (const size_t keep : {size_t{5}, size_t{13}, lines.size() - 1}) {
    std::vector<std::string> prefix(lines.begin(), lines.begin() + 1 + keep);
    write_lines(path, prefix);
    const ReplayReport resumed = run_journaled(path, 4);
    expect_same_outcome(resumed, full, "keep=" + std::to_string(keep));
    EXPECT_EQ(resumed.pairs_skipped_from_journal, keep) << "keep=" << keep;
  }
}

TEST(RunJournal, ResumeIsParallelismIndependent) {
  // The fingerprint deliberately excludes parallelism: a run journaled at
  // p=1 may resume at p=8 and vice versa.
  const std::string path = tmp_journal("resume_par");
  const ReplayReport full = run_journaled(path, 1);
  const auto lines = file_lines(path);
  std::vector<std::string> prefix(lines.begin(), lines.begin() + 1 + 9);
  write_lines(path, prefix);
  const ReplayReport resumed = run_journaled(path, 8);
  expect_same_outcome(resumed, full, "p=1 -> p=8");
  EXPECT_EQ(resumed.pairs_skipped_from_journal, 9u);
}

TEST(RunJournal, FingerprintMismatchStartsFresh) {
  const std::string path = tmp_journal("mismatch");
  const ReplayReport full = run_journaled(path, 4, /*seed=*/0);
  ASSERT_GT(full.explored, 0u);
  // Same journal, different run configuration (seed feeds the fingerprint):
  // the stale journal must be ignored, not merged.
  const ReplayReport other = run_journaled(path, 4, /*seed=*/99);
  EXPECT_EQ(other.pairs_skipped_from_journal, 0u);
  EXPECT_EQ(other.explored, full.explored);  // same universe, fully re-explored
}

TEST(RunJournal, ChangedCatalogOptionsInvalidateTheJournal) {
  // Regression guard: two CatalogOptions can compose the *same* plan catalog
  // (partition_window_length is irrelevant while max_partition_windows == 0),
  // so hashing only the plan keys would let the second configuration silently
  // merge the first one's journal. The fingerprint hashes the options
  // themselves, so the stale journal must be ignored.
  CatalogOptions narrow;
  narrow.max_partition_windows = 0;
  narrow.partition_window_length = 2;
  CatalogOptions wide = narrow;
  wide.partition_window_length = 5;

  const std::string path = tmp_journal("catalog_options");
  const ReplayReport first = run_journaled(path, 4, 0, narrow);
  ASSERT_GT(first.explored, 0u);
  const ReplayReport second = run_journaled(path, 4, 0, wide);
  EXPECT_EQ(second.pairs_skipped_from_journal, 0u);  // not resumed
  EXPECT_EQ(second.explored, first.explored);        // same composed catalog
}

}  // namespace
}  // namespace erpi::faults
