// Storage-fault family tests (DESIGN.md §13): plan-key parse round-trips,
// fingerprint sensitivity to the storage CatalogOptions, report identity
// across parallelism × snapshot depth with durable-log recovery verdicts,
// composition with the CrashRestart sweep, prefix-cache round-trips of the
// durable log, journal/corpus recovery serde, journal resume of a storage
// sweep, and the planted log-recovery bugs that reproduce only when storage
// plans are in the catalog.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "bugs/registry.hpp"
#include "core/persist.hpp"
#include "core/session.hpp"
#include "corpus/store.hpp"
#include "faults/explorer.hpp"
#include "subjects/orbitdb.hpp"
#include "subjects/roshi.hpp"

namespace erpi::faults {
namespace {

using core::ReplayReport;
using core::RunJournal;
using core::Session;

constexpr net::ReplicaId A = 0;
constexpr net::ReplicaId B = 1;

util::Json member_args(const char* member, double ts) {
  util::Json j = util::Json::object();
  j["key"] = "s";
  j["member"] = member;
  j["ts"] = ts;
  return j;
}

// Two insert-then-sync units on A, one delete-then-sync unit on B. Every
// fault-free interleaving converges; the storage plans damage durable logs
// mid-replay and the honest default-flag Roshi recovers with structured
// verdicts — never a silent divergence.
void storage_workload(proxy::RdlProxy& proxy) {
  (void)proxy.update(A, "insert", member_args("x", 1.0));  // e0
  (void)proxy.update(A, "insert", member_args("y", 2.0));  // e1
  (void)proxy.sync_req(A, B);                              // e2
  (void)proxy.exec_sync(A, B);                             // e3
  (void)proxy.update(B, "delete", member_args("x", 3.0));  // e4
  (void)proxy.sync_req(B, A);                              // e5
  (void)proxy.exec_sync(B, A);                             // e6
}

CatalogOptions storage_catalog() {
  CatalogOptions catalog;
  catalog.max_drops = 0;
  catalog.max_duplicates = 0;
  catalog.max_partition_windows = 0;
  catalog.max_crash_restarts = 0;
  catalog.max_torn_tails = 2;
  catalog.torn_tail_entries = 1;
  catalog.max_drop_log_entries = 2;
  catalog.max_duplicate_segments = 2;
  catalog.duplicate_segment_entries = 1;
  catalog.max_stale_snapshot_recoveries = 2;
  catalog.stale_suffix_keep = 1;
  return catalog;
}

Session::Config storage_config(int parallelism, uint64_t snapshot_depth) {
  Session::Config config;
  config.generation_order = core::GroupedEnumerator::Order::Lexicographic;
  config.spec_groups = {{0, 1, 2, 3}, {4, 5, 6}};
  config.replay.stop_on_violation = false;
  config.replay.max_interleavings = 100'000;
  config.max_snapshot_depth = snapshot_depth;
  config.parallelism = parallelism;
  config.subject_factory = [] { return std::make_unique<subjects::Roshi>(2); };
  return config;
}

core::AssertionFactory convergence_assertions() {
  return [](proxy::Rdl&) -> core::AssertionList {
    return {core::replicas_converge({A, B})};
  };
}

struct StorageRun {
  ReplayReport report;
  std::vector<FaultPlan> catalog;
};

StorageRun run_storage(Session::Config config, const CatalogOptions& catalog) {
  subjects::Roshi roshi(2);
  proxy::RdlProxy proxy(roshi);
  Session session(proxy, std::move(config));
  session.start();
  storage_workload(proxy);
  FaultExplorer explorer(session, catalog);
  StorageRun run;
  run.report = explorer.run(convergence_assertions());
  run.catalog = explorer.catalog();
  return run;
}

core::EventSet captured_events() {
  subjects::Roshi roshi(2);
  proxy::RdlProxy proxy(roshi);
  Session session(proxy, storage_config(1, 16));
  session.start();
  storage_workload(proxy);
  session.finish_capture();
  return session.events();
}

void expect_reports_equal(const ReplayReport& a, const ReplayReport& b,
                          const std::string& label) {
  EXPECT_EQ(a.explored, b.explored) << label;
  EXPECT_EQ(a.violations, b.violations) << label;
  EXPECT_EQ(a.reproduced, b.reproduced) << label;
  EXPECT_EQ(a.first_violation_index, b.first_violation_index) << label;
  EXPECT_EQ(a.first_violation_assertion, b.first_violation_assertion) << label;
  ASSERT_EQ(a.first_violation.has_value(), b.first_violation.has_value()) << label;
  if (a.first_violation.has_value()) {
    EXPECT_EQ(a.first_violation->key(), b.first_violation->key()) << label;
  }
  EXPECT_EQ(a.first_violation_plan, b.first_violation_plan) << label;
  EXPECT_EQ(a.plans_explored, b.plans_explored) << label;
  EXPECT_EQ(a.messages, b.messages) << label;
  EXPECT_EQ(a.recoveries_clean, b.recoveries_clean) << label;
  EXPECT_EQ(a.recoveries_missing_entries, b.recoveries_missing_entries) << label;
  EXPECT_EQ(a.recoveries_diverged, b.recoveries_diverged) << label;
  EXPECT_EQ(a.exhausted, b.exhausted) << label;
  EXPECT_EQ(a.quarantined, b.quarantined) << label;
}

// ---------------------------------------------------------------------------
// Plan keys: parse is the exact inverse of key()
// ---------------------------------------------------------------------------

TEST(StorageFaults, PlanKeysRoundTripThroughParse) {
  std::vector<FaultPlan> plans;
  plans.push_back({});  // none
  plans.push_back({.kind = FaultPlan::Kind::DropSync, .sync_index = 2});
  plans.push_back({.kind = FaultPlan::Kind::DuplicateSync, .sync_index = 7});
  plans.push_back({.kind = FaultPlan::Kind::PartitionWindow,
                   .window_begin = 2,
                   .window_end = 4,
                   .replica_a = 0,
                   .replica_b = 1});
  plans.push_back({.kind = FaultPlan::Kind::CrashRestart,
                   .replica_a = 1,
                   .snapshot_pos = 1,
                   .crash_pos = 3});
  plans.push_back(
      {.kind = FaultPlan::Kind::TornTail, .replica_a = 0, .damage_pos = 3, .entry_count = 2});
  plans.push_back({.kind = FaultPlan::Kind::DropLogEntry, .replica_a = 1, .damage_pos = 2});
  plans.push_back({.kind = FaultPlan::Kind::DuplicateSegment,
                   .replica_a = 0,
                   .damage_pos = 5,
                   .entry_count = 1});
  plans.push_back({.kind = FaultPlan::Kind::StaleSnapshotRecovery,
                   .replica_a = 1,
                   .snapshot_pos = 1,
                   .crash_pos = 3,
                   .suffix_keep = 2});
  for (const auto& plan : plans) {
    const auto parsed = FaultPlan::parse(plan.key());
    ASSERT_TRUE(parsed.has_value()) << plan.key();
    EXPECT_EQ(*parsed, plan) << plan.key();
  }

  for (const char* bad :
       {"", "bogus", "torn:", "torn:r0", "torn:r0@3", "torn:r0@3-", "torn:r0@3-2x",
        "droplog:r1", "dupseg:r0@3x", "stale:r1@1->3", "stale:r1@1->3+", "crash:r1@1->",
        "drop:", "part:0-1@2..", "none2"}) {
    EXPECT_FALSE(FaultPlan::parse(bad).has_value()) << bad;
  }
}

TEST(StorageFaults, CatalogPlanKeysAllRoundTrip) {
  const core::EventSet events = captured_events();
  CatalogOptions everything;  // network + crash defaults, plus storage sweeps
  everything.max_torn_tails = 2;
  everything.max_drop_log_entries = 2;
  everything.max_duplicate_segments = 2;
  everything.max_stale_snapshot_recoveries = 2;
  const auto plans = build_catalog(events, 2, everything);
  ASSERT_FALSE(plans.empty());
  for (const auto& plan : plans) {
    const auto parsed = FaultPlan::parse(plan.key());
    ASSERT_TRUE(parsed.has_value()) << plan.key();
    EXPECT_EQ(*parsed, plan) << plan.key();
  }
}

// ---------------------------------------------------------------------------
// Catalog composition: storage sweeps are opt-in and deterministic
// ---------------------------------------------------------------------------

TEST(StorageFaults, StorageSweepsAreOffByDefaultAndBoundedWhenOn) {
  const core::EventSet events = captured_events();
  for (const auto& plan : build_catalog(events, 2)) {
    EXPECT_FALSE(plan.is_storage()) << plan.key();
  }

  const auto catalog = storage_catalog();
  const auto first = build_catalog(events, 2, catalog);
  EXPECT_EQ(first, build_catalog(events, 2, catalog));

  size_t torn = 0, droplog = 0, dupseg = 0, stale = 0;
  for (const auto& plan : first) {
    torn += plan.kind == FaultPlan::Kind::TornTail ? 1 : 0;
    droplog += plan.kind == FaultPlan::Kind::DropLogEntry ? 1 : 0;
    dupseg += plan.kind == FaultPlan::Kind::DuplicateSegment ? 1 : 0;
    stale += plan.kind == FaultPlan::Kind::StaleSnapshotRecovery ? 1 : 0;
  }
  EXPECT_EQ(torn, 2u);
  EXPECT_EQ(droplog, 2u);
  EXPECT_EQ(dupseg, 2u);
  EXPECT_EQ(stale, 2u);
  EXPECT_EQ(first.front().key(), "none");
}

// ---------------------------------------------------------------------------
// Fingerprints: every storage catalog knob feeds the run namespace
// ---------------------------------------------------------------------------

TEST(StorageFaults, FingerprintHashesStorageCatalogOptions) {
  // Same plan catalog (storage sweeps off in both), different options: like
  // the PR 6 partition_window_length guard, hashing only plan keys would
  // alias these runs, so the fingerprint must hash the options themselves.
  subjects::Roshi roshi(2);
  proxy::RdlProxy proxy(roshi);
  Session session(proxy, storage_config(1, 16));
  session.start();
  storage_workload(proxy);
  session.finish_capture();
  const auto plans = build_catalog(session.events(), 2, CatalogOptions{});

  const CatalogOptions base;
  auto variants = std::vector<CatalogOptions>(7, base);
  variants[0].max_torn_tails = 1;
  variants[1].torn_tail_entries = 3;
  variants[2].max_drop_log_entries = 1;
  variants[3].max_duplicate_segments = 1;
  variants[4].duplicate_segment_entries = 2;
  variants[5].max_stale_snapshot_recoveries = 1;
  variants[6].stale_suffix_keep = 2;

  for (const auto purpose : {FingerprintPurpose::Journal, FingerprintPurpose::Corpus}) {
    const uint64_t reference =
        run_fingerprint(session, plans, base, core::ReplayOptions{}, purpose);
    for (size_t i = 0; i < variants.size(); ++i) {
      EXPECT_NE(run_fingerprint(session, plans, variants[i], core::ReplayOptions{}, purpose),
                reference)
          << "variant " << i;
    }
  }
}

// ---------------------------------------------------------------------------
// Determinism: byte-identical reports at any parallelism × snapshot depth
// ---------------------------------------------------------------------------

TEST(StorageFaults, ReportIdenticalAcrossParallelismAndSnapshotDepth) {
  const StorageRun baseline = run_storage(storage_config(1, 0), storage_catalog());
  ASSERT_GT(baseline.report.explored, 0u);
  EXPECT_EQ(baseline.report.plans_explored, baseline.catalog.size());
  EXPECT_TRUE(baseline.report.exhausted);
  // The honest subject never silently diverges: torn entries are genuinely
  // lost (so replicas_converge may legitimately fire, like a dropped sync
  // would), but every loss is a structured missing_entries verdict — no
  // diverged recoveries and no durable-log-recovery violations.
  EXPECT_EQ(baseline.report.recoveries_diverged, 0u);
  for (const auto& message : baseline.report.messages) {
    EXPECT_EQ(message.find("durable-log-recovery"), std::string::npos) << message;
  }
  EXPECT_GT(baseline.report.recoveries_clean + baseline.report.recoveries_missing_entries,
            0u);
  EXPECT_GT(baseline.report.recoveries_missing_entries, 0u);  // torn tails are reported

  for (const int parallelism : {1, 4}) {
    for (const uint64_t depth : {uint64_t{0}, uint64_t{16}}) {
      if (parallelism == 1 && depth == 0) continue;  // the baseline itself
      const StorageRun run = run_storage(storage_config(parallelism, depth), storage_catalog());
      expect_reports_equal(run.report, baseline.report,
                           "p=" + std::to_string(parallelism) +
                               " depth=" + std::to_string(depth));
      EXPECT_EQ(run.catalog, baseline.catalog);
    }
  }
}

TEST(StorageFaults, TornTailComposesWithCrashRestartSweep) {
  CatalogOptions mixed = storage_catalog();
  mixed.max_crash_restarts = 2;
  const StorageRun sequential = run_storage(storage_config(1, 16), mixed);
  bool has_crash = false, has_torn = false;
  for (const auto& plan : sequential.catalog) {
    has_crash |= plan.kind == FaultPlan::Kind::CrashRestart;
    has_torn |= plan.kind == FaultPlan::Kind::TornTail;
  }
  EXPECT_TRUE(has_crash);
  EXPECT_TRUE(has_torn);
  EXPECT_EQ(sequential.report.recoveries_diverged, 0u);
  EXPECT_GT(sequential.report.recoveries_missing_entries, 0u);

  const StorageRun parallel = run_storage(storage_config(4, 16), mixed);
  expect_reports_equal(parallel.report, sequential.report, "crash+torn p=4");
}

// ---------------------------------------------------------------------------
// Prefix cache: the durable log is part of the snapshot state
// ---------------------------------------------------------------------------

TEST(StorageFaults, SnapshotRoundTripPreservesDurableLog) {
  subjects::Roshi roshi(2);
  roshi.set_durable_logging(true);
  ASSERT_TRUE(roshi.durable_logging());

  (void)roshi.invoke(A, "insert", member_args("x", 1.0));
  (void)roshi.invoke(A, "insert", member_args("y", 2.0));
  ASSERT_EQ(roshi.log_length(A), 2u);
  EXPECT_EQ(roshi.log_committed(A), 2u);
  const auto checkpoint = roshi.snapshot();
  ASSERT_TRUE(checkpoint.valid());

  (void)roshi.invoke(A, "delete", member_args("x", 3.0));
  (void)roshi.invoke(B, "insert", member_args("z", 4.0));
  ASSERT_EQ(roshi.log_length(A), 3u);
  ASSERT_EQ(roshi.log_length(B), 1u);
  const auto log_a_before = roshi.durable_log(A);

  // Restoring rewinds the logs exactly — a resume from this snapshot sees
  // the log a from-scratch replay of the prefix would have written.
  ASSERT_TRUE(roshi.restore(checkpoint));
  EXPECT_EQ(roshi.log_length(A), 2u);
  EXPECT_EQ(roshi.log_committed(A), 2u);
  EXPECT_EQ(roshi.log_length(B), 0u);
  EXPECT_NE(roshi.durable_log(A), log_a_before);

  // reset() clears the logs; a snapshot taken with logging off carries none.
  roshi.reset();
  EXPECT_EQ(roshi.log_length(A), 0u);
}

// ---------------------------------------------------------------------------
// Persistence: journal + corpus carry the recovery verdict
// ---------------------------------------------------------------------------

TEST(StorageFaults, JournalRecoveryFieldsRoundTrip) {
  const std::string path =
      std::string(::testing::TempDir()) + "erpi_storage_roundtrip.journal";
  std::remove(path.c_str());
  std::remove((path + ".tmp").c_str());
  {
    RunJournal journal = RunJournal::create(path, 0x1122334455667788ull);
    RunJournal::Record plain;
    plain.plan = "none";
    plain.interleaving = 1;
    plain.key = "0,1";
    journal.append(plain);

    RunJournal::Record missing = plain;
    missing.plan = "torn:r0@6-1";
    missing.interleaving = 1;
    missing.recovery = "missing_entries";
    missing.recovery_first = 1;
    missing.recovery_count = 1;
    journal.append(missing);

    RunJournal::Record diverged = plain;
    diverged.plan = "dupseg:r0@6x1";
    diverged.interleaving = 1;
    diverged.recovery = "diverged";
    diverged.violations.push_back({"durable-log-recovery", "replica 0 diverged"});
    journal.append(diverged);
  }
  const auto loaded = RunJournal::load(path);
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->records.size(), 3u);
  EXPECT_TRUE(loaded->records[0].recovery.empty());
  EXPECT_EQ(loaded->records[1].recovery, "missing_entries");
  EXPECT_EQ(loaded->records[1].recovery_first, 1u);
  EXPECT_EQ(loaded->records[1].recovery_count, 1u);
  EXPECT_EQ(loaded->records[2].recovery, "diverged");
  EXPECT_EQ(loaded->records[2].violations.size(), 1u);
  std::remove(path.c_str());
  std::remove((path + ".tmp").c_str());
}

TEST(StorageFaults, CorpusRecoveryFieldsRoundTrip) {
  const std::string dir = std::string(::testing::TempDir()) + "erpi_storage_corpus";
  std::filesystem::remove_all(dir);

  core::RecoveryVerdict verdict;
  verdict.status = core::RecoveryVerdict::Status::MissingEntries;
  verdict.first_missing = 2;
  verdict.missing_count = 3;

  corpus::Record record;
  record.fingerprint = 0xfeedull;
  record.plan = "torn:r0@6-1";
  record.il = "0,1";
  record.kind = corpus::OutcomeKind::Pass;
  record.recovery = verdict;
  {
    auto store = corpus::Store::open(dir);
    store.append(record);
  }
  auto reopened = corpus::Store::open(dir);
  const auto* loaded = reopened.lookup(record.fingerprint, record.plan, record.il);
  ASSERT_NE(loaded, nullptr);
  ASSERT_TRUE(loaded->recovery.has_value());
  EXPECT_EQ(loaded->recovery->status, core::RecoveryVerdict::Status::MissingEntries);
  EXPECT_EQ(loaded->recovery->first_missing, 2u);
  EXPECT_EQ(loaded->recovery->missing_count, 3u);

  // The verdict is part of the outcome identity diff mode compares, and it
  // survives the to_outcome/from_outcome round-trip reuse mode relies on.
  corpus::Record other = *loaded;
  other.recovery->missing_count = 4;
  EXPECT_FALSE(loaded->same_outcome(other));
  const auto outcome = loaded->to_outcome();
  ASSERT_TRUE(outcome.recovery.has_value());
  const auto rebuilt = corpus::Record::from_outcome(record.fingerprint, record.plan,
                                                    record.il, outcome);
  EXPECT_TRUE(loaded->same_outcome(rebuilt));
  std::filesystem::remove_all(dir);
}

TEST(StorageFaults, JournalResumeReproducesStorageSweep) {
  const std::string path = std::string(::testing::TempDir()) + "erpi_storage_resume.journal";
  std::remove(path.c_str());
  std::remove((path + ".tmp").c_str());

  auto journaled = [&](int parallelism) {
    Session::Config config = storage_config(parallelism, 16);
    config.resume_journal = path;
    return run_storage(std::move(config), storage_catalog());
  };
  const StorageRun full = journaled(1);
  ASSERT_GT(full.report.explored, 4u);
  ASSERT_GT(full.report.recoveries_missing_entries, 0u);

  // Truncate to a mid-run prefix (the state a SIGKILL leaves) and resume:
  // the merged report — recovery counters included — must be identical.
  std::vector<std::string> lines;
  {
    std::ifstream in(path);
    std::string line;
    while (std::getline(in, line)) lines.push_back(line);
  }
  ASSERT_GT(lines.size(), 5u);
  {
    std::ofstream out(path, std::ios::out | std::ios::trunc);
    for (size_t i = 0; i < 5; ++i) out << lines[i] << '\n';
  }
  const StorageRun resumed = journaled(4);
  expect_reports_equal(resumed.report, full.report, "storage resume");
  EXPECT_EQ(resumed.report.pairs_skipped_from_journal, 4u);
  std::remove(path.c_str());
  std::remove((path + ".tmp").c_str());
}

// ---------------------------------------------------------------------------
// Planted bugs: detected only with storage plans in the catalog
// ---------------------------------------------------------------------------

void expect_storage_bug_gated(const std::string& name) {
  const auto& bug = bugs::find_bug(name);
  ASSERT_TRUE(bug.storage_catalog.has_value());

  const auto seeded = bugs::run_bug(bug, core::ExplorationMode::ErPi);
  EXPECT_TRUE(seeded.report.reproduced) << name;
  EXPECT_EQ(seeded.report.first_violation_assertion, "durable-log-recovery") << name;
  EXPECT_GT(seeded.report.recoveries_diverged, 0u) << name;
  EXPECT_TRUE(seeded.report.first_violation_plan.find(':') != std::string::npos) << name;

  // Same seeded subject, storage sweeps stripped from the catalog: the bug
  // cannot manifest — recovery never runs.
  bugs::BugScenario no_storage = bug;
  no_storage.storage_catalog->max_torn_tails = 0;
  no_storage.storage_catalog->max_drop_log_entries = 0;
  no_storage.storage_catalog->max_duplicate_segments = 0;
  no_storage.storage_catalog->max_stale_snapshot_recoveries = 0;
  const auto clean = bugs::run_bug(no_storage, core::ExplorationMode::ErPi);
  EXPECT_FALSE(clean.report.reproduced) << name;
  EXPECT_EQ(clean.report.recoveries_diverged, 0u) << name;
  EXPECT_EQ(clean.report.recoveries_clean + clean.report.recoveries_missing_entries, 0u)
      << name;
}

TEST(StorageBugs, RoshiDuplicatedSegmentReplayGatedOnStoragePlans) {
  expect_storage_bug_gated("Roshi-S1");
}

TEST(StorageBugs, OrbitDbTornTailAcceptanceGatedOnStoragePlans) {
  expect_storage_bug_gated("OrbitDB-S1");
}

TEST(StorageBugs, FixedSubjectsRecoverWithStructuredVerdicts) {
  // The same workloads and catalogs against the *fixed* subjects: recovery
  // runs (verdicts are counted) but classifies as recovered / missing
  // entries — no violation, no silent divergence.
  {
    bugs::BugScenario fixed = bugs::find_bug("Roshi-S1");
    fixed.make_subject = [] { return std::make_unique<subjects::Roshi>(2); };
    const auto run = bugs::run_bug(fixed, core::ExplorationMode::ErPi);
    EXPECT_FALSE(run.report.reproduced);
    EXPECT_EQ(run.report.recoveries_diverged, 0u);
    EXPECT_GT(run.report.recoveries_clean + run.report.recoveries_missing_entries, 0u);
  }
  {
    bugs::BugScenario fixed = bugs::find_bug("OrbitDB-S1");
    fixed.make_subject = [] { return std::make_unique<subjects::OrbitDb>(2); };
    const auto run = bugs::run_bug(fixed, core::ExplorationMode::ErPi);
    EXPECT_FALSE(run.report.reproduced);
    EXPECT_EQ(run.report.recoveries_diverged, 0u);
    EXPECT_GT(run.report.recoveries_missing_entries, 0u);  // torn tail is reported
  }
}

}  // namespace
}  // namespace erpi::faults
