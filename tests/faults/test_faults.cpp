// Fault-schedule exploration tests: deterministic bounded catalogs, full
// report identity across parallelism × snapshot depth (the ISSUE's
// parallelism ∈ {1, 4, 8} × max_snapshot_depth ∈ {0, 16} matrix), violation
// naming by (interleaving, plan) pair, and graceful budget exhaustion.
#include <gtest/gtest.h>

#include <set>

#include "core/session.hpp"
#include "faults/explorer.hpp"
#include "subjects/town.hpp"

namespace erpi::faults {
namespace {

using core::ReplayReport;
using core::Session;

util::Json problem(const char* name) {
  util::Json j = util::Json::object();
  j["problem"] = name;
  return j;
}

// Three report-then-sync rounds across two replicas. Op-based OR-Set sync
// resends the sender's full op log, so every fault-free interleaving of the
// three units converges — which makes replicas_converge() the ideal oracle:
// a baseline pass is guaranteed, and only injected faults can violate it.
void fault_workload(proxy::RdlProxy& proxy) {
  (void)proxy.update(0, "report", problem("lamp"));  // e0
  (void)proxy.sync_req(0, 1);                        // e1
  (void)proxy.exec_sync(0, 1);                       // e2
  (void)proxy.update(1, "report", problem("ph"));    // e3
  (void)proxy.sync_req(1, 0);                        // e4
  (void)proxy.exec_sync(1, 0);                       // e5
  (void)proxy.update(0, "report", problem("otb"));   // e6
  (void)proxy.sync_req(0, 1);                        // e7
  (void)proxy.exec_sync(0, 1);                       // e8
}

Session::Config fault_config(int parallelism, uint64_t snapshot_depth) {
  Session::Config config;
  config.generation_order = core::GroupedEnumerator::Order::Lexicographic;
  config.spec_groups = {{0, 1, 2}, {3, 4, 5}, {6, 7, 8}};
  config.replay.stop_on_violation = false;
  config.replay.max_interleavings = 100'000;
  config.max_snapshot_depth = snapshot_depth;
  config.parallelism = parallelism;
  config.subject_factory = [] { return std::make_unique<subjects::TownApp>(2); };
  return config;
}

core::AssertionFactory convergence_assertions() {
  return [](proxy::Rdl&) -> core::AssertionList {
    return {core::replicas_converge({0, 1})};
  };
}

struct FaultRun {
  ReplayReport report;
  std::vector<FaultPlan> catalog;
};

FaultRun run_faults(Session::Config config, CatalogOptions catalog = {}) {
  subjects::TownApp town(2);
  proxy::RdlProxy proxy(town);
  Session session(proxy, std::move(config));
  session.start();
  fault_workload(proxy);
  FaultExplorer explorer(session, catalog);
  FaultRun run;
  run.report = explorer.run(convergence_assertions());
  run.catalog = explorer.catalog();
  return run;
}

core::EventSet captured_events() {
  subjects::TownApp town(2);
  proxy::RdlProxy proxy(town);
  Session session(proxy, fault_config(1, 16));
  session.start();
  fault_workload(proxy);
  session.finish_capture();
  return session.events();
}

void expect_reports_equal(const ReplayReport& a, const ReplayReport& b,
                          const std::string& label) {
  EXPECT_EQ(a.explored, b.explored) << label;
  EXPECT_EQ(a.violations, b.violations) << label;
  EXPECT_EQ(a.reproduced, b.reproduced) << label;
  EXPECT_EQ(a.first_violation_index, b.first_violation_index) << label;
  EXPECT_EQ(a.first_violation_assertion, b.first_violation_assertion) << label;
  ASSERT_EQ(a.first_violation.has_value(), b.first_violation.has_value()) << label;
  if (a.first_violation.has_value()) {
    EXPECT_EQ(a.first_violation->key(), b.first_violation->key()) << label;
  }
  EXPECT_EQ(a.first_violation_plan, b.first_violation_plan) << label;
  EXPECT_EQ(a.first_violation_plan_interleaving, b.first_violation_plan_interleaving)
      << label;
  EXPECT_EQ(a.plans_explored, b.plans_explored) << label;
  EXPECT_EQ(a.timed_out, b.timed_out) << label;
  EXPECT_EQ(a.quarantined, b.quarantined) << label;
  EXPECT_EQ(a.messages, b.messages) << label;
  EXPECT_EQ(a.exhausted, b.exhausted) << label;
  EXPECT_EQ(a.hit_cap, b.hit_cap) << label;
  EXPECT_EQ(a.crashed, b.crashed) << label;
  EXPECT_EQ(a.budget_exhausted, b.budget_exhausted) << label;
}

// ---------------------------------------------------------------------------
// Catalog composition
// ---------------------------------------------------------------------------

TEST(FaultSchedule, CatalogIsDeterministicAndBounded) {
  const core::EventSet events = captured_events();
  const auto first = build_catalog(events, 2);
  const auto second = build_catalog(events, 2);
  EXPECT_EQ(first, second);

  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first.front().kind, FaultPlan::Kind::None);
  EXPECT_EQ(first.front().key(), "none");

  std::set<std::string> keys;
  for (const auto& plan : first) EXPECT_TRUE(keys.insert(plan.key()).second);

  // The workload has 3 sync sends: drop/dup sweeps are bounded by that, not
  // by the (larger) configured caps.
  size_t drops = 0, dups = 0;
  for (const auto& plan : first) {
    drops += plan.kind == FaultPlan::Kind::DropSync ? 1 : 0;
    dups += plan.kind == FaultPlan::Kind::DuplicateSync ? 1 : 0;
  }
  EXPECT_EQ(drops, 3u);
  EXPECT_EQ(dups, 3u);

  CatalogOptions clipped;
  clipped.max_plans = 4;
  EXPECT_EQ(build_catalog(events, 2, clipped).size(), 4u);

  CatalogOptions baseline_only;
  baseline_only.max_drops = 0;
  baseline_only.max_duplicates = 0;
  baseline_only.max_partition_windows = 0;
  baseline_only.max_crash_restarts = 0;
  const auto minimal = build_catalog(events, 2, baseline_only);
  ASSERT_EQ(minimal.size(), 1u);
  EXPECT_EQ(minimal.front().key(), "none");
}

TEST(FaultSchedule, PlanKeysAreStable) {
  FaultPlan drop{.kind = FaultPlan::Kind::DropSync, .sync_index = 2};
  EXPECT_EQ(drop.key(), "drop:2");
  FaultPlan dup{.kind = FaultPlan::Kind::DuplicateSync, .sync_index = 1};
  EXPECT_EQ(dup.key(), "dup:1");
  FaultPlan part{.kind = FaultPlan::Kind::PartitionWindow,
                 .window_begin = 2,
                 .window_end = 4,
                 .replica_a = 0,
                 .replica_b = 1};
  EXPECT_EQ(part.key(), "part:0-1@2..4");
  FaultPlan crash{.kind = FaultPlan::Kind::CrashRestart,
                  .replica_a = 1,
                  .snapshot_pos = 1,
                  .crash_pos = 3};
  EXPECT_EQ(crash.key(), "crash:r1@1->3");
}

// ---------------------------------------------------------------------------
// Determinism across parallelism × snapshot depth
// ---------------------------------------------------------------------------

TEST(FaultSchedule, ReportIdenticalAcrossParallelismAndSnapshotDepth) {
  const FaultRun baseline = run_faults(fault_config(1, 0));
  ASSERT_GT(baseline.report.explored, 0u);
  ASSERT_GT(baseline.report.plans_explored, 1u);
  EXPECT_EQ(baseline.report.explored,
            baseline.report.plans_explored * 6);  // 3 units -> 6 interleavings/plan
  EXPECT_TRUE(baseline.report.exhausted);

  for (const int parallelism : {1, 4, 8}) {
    for (const uint64_t depth : {uint64_t{0}, uint64_t{16}}) {
      if (parallelism == 1 && depth == 0) continue;  // the baseline itself
      const FaultRun run = run_faults(fault_config(parallelism, depth));
      expect_reports_equal(run.report, baseline.report,
                           "p=" + std::to_string(parallelism) +
                               " depth=" + std::to_string(depth));
      EXPECT_EQ(run.catalog, baseline.catalog);
    }
  }
}

// ---------------------------------------------------------------------------
// Violation naming and baseline purity
// ---------------------------------------------------------------------------

TEST(FaultSchedule, ViolationsAreNamedByInterleavingPlanPair) {
  // The fault-free sweep is clean: every interleaving of the workload
  // converges, so any violation below is attributable to an injected fault.
  CatalogOptions baseline_only;
  baseline_only.max_drops = 0;
  baseline_only.max_duplicates = 0;
  baseline_only.max_partition_windows = 0;
  baseline_only.max_crash_restarts = 0;
  const FaultRun clean = run_faults(fault_config(4, 16), baseline_only);
  EXPECT_EQ(clean.report.violations, 0u);
  EXPECT_FALSE(clean.report.reproduced);

  const FaultRun faulted = run_faults(fault_config(4, 16));
  ASSERT_TRUE(faulted.report.reproduced);
  EXPECT_GT(faulted.report.violations, 0u);
  EXPECT_NE(faulted.report.first_violation_plan, "none");
  EXPECT_FALSE(faulted.report.first_violation_plan.empty());
  EXPECT_GE(faulted.report.first_violation_plan_interleaving, 1u);
  EXPECT_LE(faulted.report.first_violation_plan_interleaving, 6u);
  ASSERT_TRUE(faulted.report.first_violation.has_value());
  // The named plan is a real catalog entry.
  bool plan_in_catalog = false;
  for (const auto& plan : faulted.catalog) {
    plan_in_catalog |= plan.key() == faulted.report.first_violation_plan;
  }
  EXPECT_TRUE(plan_in_catalog);
  // Messages carry the plan key so a human can replay the exact pair.
  ASSERT_FALSE(faulted.report.messages.empty());
  EXPECT_NE(faulted.report.messages.front().find(
                "[plan " + faulted.report.first_violation_plan + "]"),
            std::string::npos);
}

TEST(FaultSchedule, StopOnViolationHaltsAtFirstPairDeterministically) {
  auto stopping = [](int parallelism) {
    Session::Config config = fault_config(parallelism, 16);
    config.replay.stop_on_violation = true;
    return run_faults(std::move(config));
  };
  const FaultRun sequential = stopping(1);
  ASSERT_TRUE(sequential.report.reproduced);
  EXPECT_EQ(sequential.report.first_violation_index, sequential.report.explored);
  EXPECT_FALSE(sequential.report.exhausted);
  for (const int parallelism : {4, 8}) {
    const FaultRun parallel = stopping(parallelism);
    expect_reports_equal(parallel.report, sequential.report,
                         "p=" + std::to_string(parallelism));
  }
}

// ---------------------------------------------------------------------------
// Graceful budget exhaustion
// ---------------------------------------------------------------------------

TEST(FaultSchedule, BudgetExhaustionSurfacesAsStructuredPartialReport) {
  auto budgeted = [](int parallelism) {
    Session::Config config = fault_config(parallelism, 0);
    config.replay.resource_budget_bytes = 3'000;
    return run_faults(std::move(config));
  };
  const FaultRun sequential = budgeted(1);
  ASSERT_TRUE(sequential.report.budget_exhausted);
  EXPECT_TRUE(sequential.report.crashed);
  EXPECT_GT(sequential.report.explored, 0u);  // partial results survive
  EXPECT_FALSE(sequential.report.exhausted);
  for (const int parallelism : {4, 8}) {
    const FaultRun parallel = budgeted(parallelism);
    EXPECT_TRUE(parallel.report.budget_exhausted) << "p=" << parallelism;
    EXPECT_EQ(parallel.report.explored, sequential.report.explored)
        << "p=" << parallelism;
    EXPECT_EQ(parallel.report.violations, sequential.report.violations)
        << "p=" << parallelism;
  }
}

}  // namespace
}  // namespace erpi::faults
