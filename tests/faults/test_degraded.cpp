// Graceful ENOSPC/EIO degradation of the durable side-channels (ISSUE 9
// satellite): a mid-run write failure in the run journal or the outcome
// corpus must not abort the exploration. The run completes, the report
// carries a structured journal_degraded / corpus_degraded flag, and the
// on-disk file keeps its last good prefix. Failing writes are simulated with
// stream stubs injected through the explorer's StreamFactory seams.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <ostream>
#include <streambuf>
#include <string>

#include "core/persist.hpp"
#include "core/session.hpp"
#include "corpus/store.hpp"
#include "faults/explorer.hpp"
#include "subjects/town.hpp"

namespace erpi::faults {
namespace {

using core::ReplayReport;
using core::RunJournal;
using core::Session;

/// streambuf that swallows `budget` bytes, then reports write failure —
/// exactly what an ENOSPC/EIO filesystem does to a buffered stream.
class FailAfterBuf : public std::streambuf {
 public:
  explicit FailAfterBuf(size_t budget) : budget_(budget) {}

 protected:
  int_type overflow(int_type ch) override {
    if (budget_ == 0) return traits_type::eof();
    --budget_;
    return traits_type::not_eof(ch);
  }
  std::streamsize xsputn(const char*, std::streamsize n) override {
    if (budget_ == 0) return 0;
    const std::streamsize take = std::min<std::streamsize>(
        n, static_cast<std::streamsize>(budget_));
    budget_ -= static_cast<size_t>(take);
    return take;
  }

 private:
  size_t budget_;
};

class FailAfterStream : public std::ostream {
 public:
  explicit FailAfterStream(size_t budget) : std::ostream(&buf_), buf_(budget) {}

 private:
  FailAfterBuf buf_;
};

std::string tmp_path(const char* name) {
  const std::string path = std::string(::testing::TempDir()) + "erpi_degraded_" + name;
  std::remove(path.c_str());
  std::remove((path + ".tmp").c_str());
  return path;
}

util::Json problem(const char* name) {
  util::Json j = util::Json::object();
  j["problem"] = name;
  return j;
}

void small_workload(proxy::RdlProxy& proxy) {
  (void)proxy.update(0, "report", problem("lamp"));
  (void)proxy.sync_req(0, 1);
  (void)proxy.exec_sync(0, 1);
  (void)proxy.update(1, "report", problem("pothole"));
  (void)proxy.sync_req(1, 0);
  (void)proxy.exec_sync(1, 0);
}

struct RunConfig {
  std::string journal_path;
  RunJournal::StreamFactory journal_factory;
  std::string corpus_path;
  corpus::Store::StreamFactory corpus_factory;
};

ReplayReport run_town(const RunConfig& rc) {
  Session::Config config;
  config.generation_order = core::GroupedEnumerator::Order::Lexicographic;
  config.spec_groups = {{0, 1, 2}, {3, 4, 5}};
  config.replay.stop_on_violation = false;
  config.replay.max_interleavings = 100'000;
  config.resume_journal = rc.journal_path;
  config.corpus_path = rc.corpus_path;
  config.subject_factory = [] { return std::make_unique<subjects::TownApp>(2); };
  subjects::TownApp town(2);
  proxy::RdlProxy proxy(town);
  Session session(proxy, std::move(config));
  session.start();
  small_workload(proxy);
  FaultExplorer explorer(session);
  if (rc.journal_factory) explorer.set_journal_stream_factory(rc.journal_factory);
  if (rc.corpus_factory) explorer.set_corpus_stream_factory(rc.corpus_factory);
  return explorer.run(
      [](proxy::Rdl&) -> core::AssertionList { return {core::replicas_converge({0, 1})}; });
}

// ---------------------------------------------------------------------------
// RunJournal primitive
// ---------------------------------------------------------------------------

TEST(DegradedWrites, JournalAppendDegradesInsteadOfThrowing) {
  const std::string path = tmp_path("journal_unit.journal");
  // Checkpoints (truncate=true) hit the real filesystem so the header and
  // rename commit; the append stream fails after ~one record's worth.
  auto factory = [](const std::string& p, bool truncate) -> std::unique_ptr<std::ostream> {
    if (truncate) {
      return std::make_unique<std::ofstream>(p, std::ios::out | std::ios::trunc);
    }
    return std::make_unique<FailAfterStream>(80);
  };
  RunJournal journal = RunJournal::create(path, 7, RunJournal::kCheckpointEvery, factory);
  EXPECT_FALSE(journal.degraded());
  RunJournal::Record record;
  record.plan = "none";
  record.key = "0,1,2";
  for (uint64_t i = 1; i <= 10; ++i) {
    record.interleaving = i;
    journal.append(record);  // must never throw, even once degraded
  }
  EXPECT_TRUE(journal.degraded());
  // The on-disk file keeps its committed prefix (at least the header).
  const auto loaded = RunJournal::load(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->fingerprint, 7u);
}

TEST(DegradedWrites, JournalCreateStillThrowsWhenHeaderCannotMaterialize) {
  // Degrade-don't-throw is for mid-run failures; an unusable path at create
  // time is a configuration error and must fail loudly.
  auto factory = [](const std::string&, bool) -> std::unique_ptr<std::ostream> {
    return std::make_unique<FailAfterStream>(0);
  };
  EXPECT_THROW(RunJournal::create(tmp_path("journal_nocreate.journal"), 7,
                                  RunJournal::kCheckpointEvery, factory),
               std::runtime_error);
}

// ---------------------------------------------------------------------------
// corpus::Store primitive
// ---------------------------------------------------------------------------

TEST(DegradedWrites, StoreDropsWritesAfterSegmentFailure) {
  const std::string dir = tmp_path("store_unit");
  std::filesystem::remove_all(dir);
  auto factory = [](const std::string&) -> std::unique_ptr<std::ostream> {
    return std::make_unique<FailAfterStream>(0);
  };
  corpus::Store store = corpus::Store::open(dir, {}, factory);
  corpus::Record record;
  record.fingerprint = 42;
  record.plan = "none";
  record.il = "0,1";
  store.append(record);  // segment write fails -> degraded, no throw
  EXPECT_TRUE(store.degraded());
  EXPECT_GE(store.stats().dropped_writes, 1u);
  record.il = "1,0";
  store.append(record);  // swallowed
  EXPECT_GE(store.stats().dropped_writes, 2u);
  // The in-memory view still serves this run.
  EXPECT_NE(store.lookup(42, "none", "1,0"), nullptr);
}

// ---------------------------------------------------------------------------
// Through the fault explorer: report flags, run completes
// ---------------------------------------------------------------------------

TEST(DegradedWrites, ExplorationCompletesWithJournalDegradedFlag) {
  const ReplayReport reference = run_town({});
  ASSERT_GT(reference.explored, 4u);
  EXPECT_FALSE(reference.journal_degraded);

  RunConfig rc;
  rc.journal_path = tmp_path("journal_flag.journal");
  rc.journal_factory = [](const std::string& p,
                          bool truncate) -> std::unique_ptr<std::ostream> {
    if (truncate) {
      return std::make_unique<std::ofstream>(p, std::ios::out | std::ios::trunc);
    }
    return std::make_unique<FailAfterStream>(100);
  };
  const ReplayReport degraded = run_town(rc);
  EXPECT_TRUE(degraded.journal_degraded);
  // Exploration itself is unaffected by the dead journal.
  EXPECT_EQ(degraded.explored, reference.explored);
  EXPECT_EQ(degraded.violations, reference.violations);
  EXPECT_EQ(degraded.plans_explored, reference.plans_explored);
}

TEST(DegradedWrites, ExplorationCompletesWithCorpusDegradedFlag) {
  const std::string dir = tmp_path("corpus_flag");
  std::filesystem::remove_all(dir);
  RunConfig rc;
  rc.corpus_path = dir;
  rc.corpus_factory = [](const std::string&) -> std::unique_ptr<std::ostream> {
    return std::make_unique<FailAfterStream>(0);
  };
  const ReplayReport degraded = run_town(rc);
  EXPECT_TRUE(degraded.corpus_degraded);
  EXPECT_FALSE(degraded.journal_degraded);
  EXPECT_GT(degraded.explored, 4u);

  // And the flag stays off on a healthy store over the same run.
  const std::string healthy_dir = tmp_path("corpus_healthy");
  std::filesystem::remove_all(healthy_dir);
  RunConfig healthy;
  healthy.corpus_path = healthy_dir;
  const ReplayReport ok = run_town(healthy);
  EXPECT_FALSE(ok.corpus_degraded);
  EXPECT_EQ(ok.explored, degraded.explored);
}

}  // namespace
}  // namespace erpi::faults
