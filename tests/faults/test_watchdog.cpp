// Replay-watchdog tests: a subject operation that deadlocks in threaded-lock
// mode must be cut off at the deadline, reported as a structured `timed_out`
// outcome, quarantined by key — and the remaining interleavings of the run
// must still complete. The hung replay thread blocks inside subject code, so
// the worker abandons its fixture (shared ownership keeps it alive) and
// rebuilds; the test's gate releases the hung threads at the end so nothing
// outlives the test binary.
#include <gtest/gtest.h>

#include <condition_variable>
#include <mutex>

#include "core/session.hpp"
#include "faults/explorer.hpp"
#include "subjects/town.hpp"

namespace erpi::faults {
namespace {

using core::ReplayReport;
using core::Session;

/// Test-global gate the deadlocking op blocks on. Opened (and drained) at
/// the end of each test so abandoned replay threads terminate.
struct HangGate {
  std::mutex mu;
  std::condition_variable cv;
  bool open = false;
  int waiters = 0;
};

HangGate& gate() {
  static HangGate g;
  return g;
}

void close_gate() {
  std::lock_guard lock(gate().mu);
  gate().open = false;
}

void release_hung_threads() {
  std::unique_lock lock(gate().mu);
  gate().open = true;
  gate().cv.notify_all();
  gate().cv.wait(lock, [] { return gate().waiters == 0; });
}

/// TownApp with two extra ops: "arm" flips a latch, "maybe_hang" deadlocks
/// unless the latch was flipped first. Interleavings that schedule
/// maybe_hang before arm model a lock-protocol deadlock in subject code.
class HangingTown : public subjects::TownApp {
 public:
  explicit HangingTown(int replica_count) : TownApp(replica_count) {}

 protected:
  util::Result<util::Json> do_invoke(net::ReplicaId replica, const std::string& op,
                                     const util::Json& args) override {
    if (op == "arm") {
      armed_ = true;
      return util::Json(true);
    }
    if (op == "maybe_hang") {
      if (!armed_) {
        auto& g = gate();
        std::unique_lock lock(g.mu);
        ++g.waiters;
        g.cv.notify_all();
        g.cv.wait(lock, [&] { return g.open; });
        --g.waiters;
        g.cv.notify_all();
      }
      return util::Json(true);
    }
    return TownApp::do_invoke(replica, op, args);
  }

  void do_reset() override {
    TownApp::do_reset();
    armed_ = false;
  }

 private:
  bool armed_ = false;
};

// Capture order arms before hanging, so recording never blocks; of the six
// unit permutations, the three that schedule maybe_hang before arm deadlock.
void hanging_workload(proxy::RdlProxy& proxy) {
  util::Json report_args = util::Json::object();
  report_args["problem"] = "pothole";
  (void)proxy.update(1, "arm", util::Json::object());         // e0 / unit 0
  (void)proxy.update(0, "maybe_hang", util::Json::object());  // e1 / unit 1
  (void)proxy.update(0, "report", report_args);               // e2 / unit 2
}

Session::Config watchdog_config(int parallelism) {
  Session::Config config;
  config.generation_order = core::GroupedEnumerator::Order::Lexicographic;
  config.replay.stop_on_violation = false;
  config.replay.max_interleavings = 100'000;
  config.replay.threaded = true;  // the lock-protocol mode the watchdog guards
  config.replay.watchdog_timeout_ms = 500;
  config.max_snapshot_depth = 0;
  config.parallelism = parallelism;
  config.subject_factory = [] { return std::make_unique<HangingTown>(2); };
  return config;
}

core::AssertionFactory ops_succeed() {
  return [](proxy::Rdl&) -> core::AssertionList { return {core::all_ops_succeed()}; };
}

TEST(ReplayWatchdog, DeadlockedThreadedReplayIsQuarantinedAndRunCompletes) {
  close_gate();
  Session::Config config = watchdog_config(2);
  HangingTown town(2);
  proxy::RdlProxy proxy(town);
  Session session(proxy, std::move(config));
  session.start();
  hanging_workload(proxy);
  const ReplayReport report = session.end(ops_succeed());
  release_hung_threads();

  // Three units permute six ways; maybe_hang-before-arm deadlocks in three.
  EXPECT_EQ(report.explored, 6u);
  EXPECT_EQ(report.timed_out, 3u);
  EXPECT_EQ(report.quarantined,
            (std::vector<std::string>{"1,0,2", "1,2,0", "2,1,0"}));
  // Quarantined replays contribute no violations; the clean ones all pass.
  EXPECT_EQ(report.violations, 0u);
  EXPECT_TRUE(report.exhausted);
}

TEST(ReplayWatchdog, QuarantineKeysNameThePlanUnderFaultExploration) {
  close_gate();
  Session::Config config = watchdog_config(2);
  HangingTown town(2);
  proxy::RdlProxy proxy(town);
  Session session(proxy, std::move(config));
  session.start();
  hanging_workload(proxy);
  CatalogOptions baseline_only;
  baseline_only.max_drops = 0;
  baseline_only.max_duplicates = 0;
  baseline_only.max_partition_windows = 0;
  baseline_only.max_crash_restarts = 0;
  const ReplayReport report = explore_with_faults(session, ops_succeed(), baseline_only);
  release_hung_threads();

  EXPECT_EQ(report.plans_explored, 1u);
  EXPECT_EQ(report.explored, 6u);
  EXPECT_EQ(report.timed_out, 3u);
  EXPECT_EQ(report.quarantined,
            (std::vector<std::string>{"none/1,0,2", "none/1,2,0", "none/2,1,0"}));
  EXPECT_EQ(report.violations, 0u);
  EXPECT_TRUE(report.exhausted);
}

}  // namespace
}  // namespace erpi::faults
