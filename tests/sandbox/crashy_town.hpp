// Misbehaving TownApp variants for the crash-isolation tests: subjects that
// segfault, exhaust memory, hang, or crash only transiently. All of them are
// only ever replayed under Isolation::Process — in-process replay of any of
// these would take the test binary down, which is exactly the failure mode
// the sandbox exists to contain.
#pragma once

#include <csignal>
#include <string>
#include <vector>

#include "subjects/town.hpp"

namespace erpi::sandbox::testing {

/// "boom" segfaults iff the replica's state contains problem "crashkey" but
/// not "guard". With the workload report(crashkey) / report(guard) / boom —
/// three single-event units — exactly one of the six interleavings
/// ("0,2,1": boom after crashkey, before guard) satisfies the condition, so
/// the crash is a deterministic property of the (plan, interleaving), not of
/// the child's history.
class CrashyTown : public subjects::TownApp {
 public:
  explicit CrashyTown(int replica_count) : TownApp(replica_count) {}

 protected:
  util::Result<util::Json> do_invoke(net::ReplicaId replica, const std::string& op,
                                     const util::Json& args) override {
    if (op == "boom") {
      const std::string state = replica_state(replica).dump();
      const bool has_crashkey = state.find("crashkey") != std::string::npos;
      const bool has_guard = state.find("guard") != std::string::npos;
      if (has_crashkey && !has_guard) std::raise(SIGSEGV);
      return util::Json(true);
    }
    return TownApp::do_invoke(replica, op, args);
  }
};

/// Crashes on "boom" during the second replay a given process performs — and
/// only then. Under depth-0 full-reset replay each interleaving resets
/// exactly once, so `resets` counts replays within one sandbox child; after
/// the crash the respawned child retries the item as its *first* replay and
/// succeeds. Every crash is therefore collateral (history-dependent), never
/// deterministic: the run must complete with nothing quarantined.
class CollateralTown : public subjects::TownApp {
 public:
  explicit CollateralTown(int replica_count) : TownApp(replica_count) {}

 protected:
  util::Result<util::Json> do_invoke(net::ReplicaId replica, const std::string& op,
                                     const util::Json& args) override {
    if (op == "boom") {
      if (resets_ == 2) std::raise(SIGSEGV);
      return util::Json(true);
    }
    return TownApp::do_invoke(replica, op, args);
  }

  void do_reset() override {
    TownApp::do_reset();
    ++resets_;
  }

 private:
  int resets_ = 0;  // per-process: each sandbox child starts from zero
};

/// "hog" tries to allocate far beyond any sane RLIMIT_AS cap — but only when
/// the replica has not yet seen problem "ready". The workload reports
/// "ready" before hogging, so capture (which runs unsandboxed in the parent)
/// never allocates; only the reordered interleaving does, inside a child,
/// where RLIMIT_AS fails the reservation with std::bad_alloc and the child
/// loop reports a structured oom before exiting.
class HungryTown : public subjects::TownApp {
 public:
  explicit HungryTown(int replica_count) : TownApp(replica_count) {}

 protected:
  util::Result<util::Json> do_invoke(net::ReplicaId replica, const std::string& op,
                                     const util::Json& args) override {
    if (op == "hog") {
      if (replica_state(replica).dump().find("ready") == std::string::npos) {
        // The reservation alone (8 GiB) trips the cap; nothing is committed.
        hoard_.resize(8ull << 30, 1);
      }
      return util::Json(static_cast<int64_t>(hoard_.size()));
    }
    return TownApp::do_invoke(replica, op, args);
  }

  void do_reset() override {
    TownApp::do_reset();
    hoard_.clear();
    hoard_.shrink_to_fit();
  }

 private:
  std::vector<char> hoard_;
};

/// "maybe_hang" spins forever unless "arm" ran first — a hang *inside*
/// subject code, unreachable by the in-process watchdog's cooperative
/// cancel. The sandbox supervisor SIGKILLs the child at the deadline, so the
/// stuck replay is fully reclaimed instead of leaking a hung thread.
class SleepyTown : public subjects::TownApp {
 public:
  explicit SleepyTown(int replica_count) : TownApp(replica_count) {}

 protected:
  util::Result<util::Json> do_invoke(net::ReplicaId replica, const std::string& op,
                                     const util::Json& args) override {
    if (op == "arm") {
      armed_ = true;
      return util::Json(true);
    }
    if (op == "maybe_hang") {
      while (!armed_) {
        // Busy-hang on purpose; only SIGKILL gets a replay out of here.
      }
      return util::Json(true);
    }
    return TownApp::do_invoke(replica, op, args);
  }

  void do_reset() override {
    TownApp::do_reset();
    armed_ = false;
  }

 private:
  volatile bool armed_ = false;
};

}  // namespace erpi::sandbox::testing
