// Crash-isolated replay sandbox tests (DESIGN.md §9): a subject that
// segfaults, hogs memory, or hangs inside a replay must surface as a
// structured crashed/oom/timed_out outcome with the (plan, interleaving)
// quarantined — while the exploration completes — and crash-free sandboxed
// runs must report byte-identically to in-process replay. These tests fork
// real children and SIGKILL some of them; they are excluded from the
// sanitizer CI matrices (RLIMIT_AS and ASan's shadow mappings don't mix).
#include <gtest/gtest.h>

#include <csignal>
#include <string>
#include <vector>

#include "core/session.hpp"
#include "faults/explorer.hpp"
#include "crashy_town.hpp"
#include "subjects/town.hpp"

namespace erpi::sandbox {
namespace {

using core::Isolation;
using core::ReplayReport;
using core::Session;
using testing::CollateralTown;
using testing::CrashyTown;
using testing::HungryTown;
using testing::SleepyTown;

util::Json problem(const char* name) {
  util::Json j = util::Json::object();
  j["problem"] = name;
  return j;
}

core::AssertionFactory ops_succeed() {
  return [](proxy::Rdl&) -> core::AssertionList { return {core::all_ops_succeed()}; };
}

Session::Config sandbox_config(int parallelism, size_t snapshot_depth) {
  Session::Config config;
  config.generation_order = core::GroupedEnumerator::Order::Lexicographic;
  config.replay.stop_on_violation = false;
  config.replay.max_interleavings = 100'000;
  config.max_snapshot_depth = snapshot_depth;
  config.parallelism = parallelism;
  config.isolation = Isolation::Process;
  return config;
}

// ---------------------------------------------------------------------------
// Deterministic crash: quarantined with the signal, run completes, identical
// across parallelism × snapshot depth
// ---------------------------------------------------------------------------

// report(crashkey) / report(guard) / boom — boom segfaults in exactly one of
// the six interleavings ("0,2,1", see CrashyTown).
ReplayReport run_crashy(int parallelism, size_t snapshot_depth) {
  Session::Config config = sandbox_config(parallelism, snapshot_depth);
  config.subject_factory = [] { return std::make_unique<CrashyTown>(2); };
  CrashyTown town(2);
  proxy::RdlProxy proxy(town);
  Session session(proxy, std::move(config));
  session.start();
  (void)proxy.update(0, "report", problem("crashkey"));  // e0
  (void)proxy.update(0, "report", problem("guard"));     // e1
  (void)proxy.update(0, "boom", util::Json::object());   // e2
  return session.end(ops_succeed());
}

TEST(SandboxCrash, SegfaultIsQuarantinedWithSignalAndRunCompletes) {
  const ReplayReport report = run_crashy(1, 0);

  EXPECT_EQ(report.explored, 6u);
  EXPECT_EQ(report.crashed_replays, 1u);
  EXPECT_EQ(report.quarantined, (std::vector<std::string>{"0,2,1"}));
  ASSERT_EQ(report.quarantine_records.size(), 1u);
  EXPECT_EQ(report.quarantine_records[0].key, "0,2,1");
  EXPECT_EQ(report.quarantine_records[0].reason, "crashed");
  EXPECT_EQ(report.quarantine_records[0].signal, SIGSEGV);
  // Quarantined replays contribute no violations; the clean five all pass.
  EXPECT_EQ(report.violations, 0u);
  EXPECT_TRUE(report.exhausted);
  // Two attempts (initial + one retry in a fresh child) both crashed, each
  // death triggered a respawn, and the retry did not come back clean.
  EXPECT_EQ(report.sandbox.crashes, 2u);
  EXPECT_EQ(report.sandbox.retries, 1u);
  EXPECT_EQ(report.sandbox.retry_successes, 0u);
  EXPECT_GE(report.sandbox.respawns, 2u);
  EXPECT_EQ(report.sandbox.oom_kills, 0u);
  EXPECT_EQ(report.sandbox.timeouts, 0u);
}

TEST(SandboxCrash, IdenticalOutcomeAcrossParallelismAndSnapshotDepth) {
  const ReplayReport baseline = run_crashy(1, 0);
  for (const int parallelism : {1, 4}) {
    for (const size_t depth : {size_t{0}, size_t{16}}) {
      if (parallelism == 1 && depth == 0) continue;
      const ReplayReport report = run_crashy(parallelism, depth);
      const std::string at = "p=" + std::to_string(parallelism) +
                             " depth=" + std::to_string(depth);
      EXPECT_EQ(report.explored, baseline.explored) << at;
      EXPECT_EQ(report.crashed_replays, baseline.crashed_replays) << at;
      EXPECT_EQ(report.quarantined, baseline.quarantined) << at;
      EXPECT_EQ(report.quarantine_records, baseline.quarantine_records) << at;
      EXPECT_EQ(report.violations, baseline.violations) << at;
      EXPECT_EQ(report.exhausted, baseline.exhausted) << at;
      EXPECT_EQ(report.sandbox.crashes, baseline.sandbox.crashes) << at;
      EXPECT_EQ(report.sandbox.retries, baseline.sandbox.retries) << at;
      EXPECT_EQ(report.sandbox.retry_successes, baseline.sandbox.retry_successes) << at;
    }
  }
}

// ---------------------------------------------------------------------------
// Collateral crash: retry in a fresh child succeeds, nothing quarantined
// ---------------------------------------------------------------------------

TEST(SandboxCrash, CollateralCrashRetriesCleanAndIsNotQuarantined) {
  // CollateralTown crashes on every child's *second* replay (depth 0 ⇒ one
  // reset per replay), so each crash vanishes on retry in a fresh child:
  //   child1: item1 ok, item2 crash → child2: item2 ok, item3 crash → ...
  // Six items ⇒ five collateral crashes, five clean retries, zero
  // quarantines.
  Session::Config config = sandbox_config(1, 0);
  config.subject_factory = [] { return std::make_unique<CollateralTown>(2); };
  CollateralTown town(2);
  proxy::RdlProxy proxy(town);
  Session session(proxy, std::move(config));
  session.start();
  (void)proxy.update(0, "report", problem("pothole"));  // e0
  (void)proxy.update(0, "report", problem("lamp"));     // e1
  (void)proxy.update(0, "boom", util::Json::object());  // e2
  const ReplayReport report = session.end(ops_succeed());

  EXPECT_EQ(report.explored, 6u);
  EXPECT_EQ(report.crashed_replays, 0u);
  EXPECT_TRUE(report.quarantined.empty());
  EXPECT_TRUE(report.quarantine_records.empty());
  EXPECT_EQ(report.violations, 0u);
  EXPECT_TRUE(report.exhausted);
  EXPECT_EQ(report.sandbox.crashes, 5u);
  EXPECT_EQ(report.sandbox.retries, 5u);
  EXPECT_EQ(report.sandbox.retry_successes, 5u);
  EXPECT_EQ(report.sandbox.respawns, 5u);
}

// ---------------------------------------------------------------------------
// Structured oom: RLIMIT_AS trip is reported, retried, quarantined as "oom"
// ---------------------------------------------------------------------------

TEST(SandboxOom, MemoryCapTripIsQuarantinedAsOom) {
  Session::Config config = sandbox_config(1, 0);
  config.subject_factory = [] { return std::make_unique<HungryTown>(2); };
  config.replay.sandbox_memory_limit_bytes = 512ull << 20;  // far below 8 GiB
  HungryTown town(2);
  proxy::RdlProxy proxy(town);
  Session session(proxy, std::move(config));
  session.start();
  (void)proxy.update(0, "report", problem("ready"));   // e0
  (void)proxy.update(0, "hog", util::Json::object());  // e1 — hogs before e0
  const ReplayReport report = session.end(ops_succeed());

  // Two interleavings; "1,0" hogs before "ready" is reported and blows the
  // cap deterministically (both attempts), so it is quarantined as oom.
  EXPECT_EQ(report.explored, 2u);
  EXPECT_EQ(report.oom_replays, 1u);
  EXPECT_EQ(report.crashed_replays, 0u);
  EXPECT_EQ(report.quarantined, (std::vector<std::string>{"1,0"}));
  ASSERT_EQ(report.quarantine_records.size(), 1u);
  EXPECT_EQ(report.quarantine_records[0].reason, "oom");
  EXPECT_EQ(report.quarantine_records[0].signal, 0);
  EXPECT_EQ(report.violations, 0u);
  EXPECT_TRUE(report.exhausted);
  EXPECT_EQ(report.sandbox.oom_kills, 2u);
  EXPECT_EQ(report.sandbox.retries, 1u);
  EXPECT_EQ(report.sandbox.retry_successes, 0u);
}

// ---------------------------------------------------------------------------
// Watchdog escalation: a hang inside subject code is SIGKILLed and
// quarantined as timed_out, exactly like the in-process watchdog would
// ---------------------------------------------------------------------------

TEST(SandboxWatchdog, HangInsideSubjectCodeIsKilledAndQuarantined) {
  Session::Config config = sandbox_config(2, 0);
  config.replay.watchdog_timeout_ms = 500;
  config.subject_factory = [] { return std::make_unique<SleepyTown>(2); };
  SleepyTown town(2);
  proxy::RdlProxy proxy(town);
  Session session(proxy, std::move(config));
  session.start();
  (void)proxy.update(1, "arm", util::Json::object());         // e0
  (void)proxy.update(0, "maybe_hang", util::Json::object());  // e1
  (void)proxy.update(0, "report", problem("pothole"));        // e2
  const ReplayReport report = session.end(ops_succeed());

  // Same shape as the in-process watchdog test (PR 3): of six interleavings
  // the three scheduling maybe_hang before arm hang — but here the hang is a
  // busy-loop in subject code that the cooperative cancel could never reach.
  EXPECT_EQ(report.explored, 6u);
  EXPECT_EQ(report.timed_out, 3u);
  EXPECT_EQ(report.quarantined,
            (std::vector<std::string>{"1,0,2", "1,2,0", "2,1,0"}));
  for (const auto& record : report.quarantine_records) {
    EXPECT_EQ(record.reason, "timed_out");
  }
  EXPECT_EQ(report.violations, 0u);
  EXPECT_TRUE(report.exhausted);
  EXPECT_EQ(report.sandbox.timeouts, 3u);
  EXPECT_EQ(report.sandbox.retries, 0u);  // timeouts quarantine immediately
}

// ---------------------------------------------------------------------------
// Crash-free parity: sandboxed reports are byte-identical to in-process ones
// ---------------------------------------------------------------------------

// report(x) / resolve(x) / transmit — some reorderings leave {x} transmitted,
// so the run exercises violations, messages and first_violation too.
ReplayReport run_clean(int parallelism, size_t snapshot_depth, Isolation isolation) {
  Session::Config config = sandbox_config(parallelism, snapshot_depth);
  config.isolation = isolation;
  config.subject_factory = [] { return std::make_unique<subjects::TownApp>(2); };
  subjects::TownApp town(2);
  proxy::RdlProxy proxy(town);
  Session session(proxy, std::move(config));
  session.start();
  (void)proxy.update(0, "report", problem("x"));   // e0
  (void)proxy.update(0, "resolve", problem("x"));  // e1
  (void)proxy.query(0, "transmit");                // e2
  return session.end([](proxy::Rdl&) -> core::AssertionList {
    return {core::query_result_equals(2, util::Json::array())};
  });
}

TEST(SandboxParity, CrashFreeReportsAreByteIdenticalToInProcess) {
  // Deterministic configurations: a single worker sees the whole stream in
  // order (any depth), and depth 0 makes prefix counters order-independent
  // (at p > 1 with snapshots, per-worker cache hits depend on batch pickup
  // timing in *both* modes, so byte equality is not even well-defined there).
  struct Case {
    int parallelism;
    size_t depth;
  };
  for (const Case c : {Case{1, 0}, Case{1, 16}, Case{4, 0}}) {
    ReplayReport in_process = run_clean(c.parallelism, c.depth, Isolation::None);
    ReplayReport sandboxed = run_clean(c.parallelism, c.depth, Isolation::Process);
    ASSERT_GT(in_process.violations, 0u);  // the workload really discriminates
    in_process.elapsed_seconds = 0.0;      // the only timing-dependent field
    sandboxed.elapsed_seconds = 0.0;
    EXPECT_EQ(sandboxed.to_json().dump(), in_process.to_json().dump())
        << "p=" << c.parallelism << " depth=" << c.depth;
  }
}

// ---------------------------------------------------------------------------
// Session API contract
// ---------------------------------------------------------------------------

TEST(SandboxSession, EndWithSharedAssertionListThrowsUnderProcessIsolation) {
  Session::Config config = sandbox_config(1, 0);
  config.subject_factory = [] { return std::make_unique<subjects::TownApp>(2); };
  subjects::TownApp town(2);
  proxy::RdlProxy proxy(town);
  Session session(proxy, std::move(config));
  session.start();
  (void)proxy.update(0, "report", problem("x"));
  EXPECT_THROW((void)session.end(core::AssertionList{core::all_ops_succeed()}),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Fault exploration + journal: crashes are journaled and resumed runs skip
// known-crashing pairs
// ---------------------------------------------------------------------------

ReplayReport run_crashy_faults(const std::string& journal_path) {
  Session::Config config = sandbox_config(1, 0);
  config.subject_factory = [] { return std::make_unique<CrashyTown>(2); };
  config.resume_journal = journal_path;
  CrashyTown town(2);
  proxy::RdlProxy proxy(town);
  Session session(proxy, std::move(config));
  session.start();
  (void)proxy.update(0, "report", problem("crashkey"));  // e0
  (void)proxy.update(0, "report", problem("guard"));     // e1
  (void)proxy.update(0, "boom", util::Json::object());   // e2
  faults::CatalogOptions baseline_only;
  baseline_only.max_drops = 0;
  baseline_only.max_duplicates = 0;
  baseline_only.max_partition_windows = 0;
  baseline_only.max_crash_restarts = 0;
  return faults::explore_with_faults(session, ops_succeed(), baseline_only);
}

TEST(SandboxJournal, ResumedRunSkipsKnownCrashingPairs) {
  const std::string journal_path =
      ::testing::TempDir() + "/erpi_sandbox_journal.jsonl";
  std::remove(journal_path.c_str());

  const ReplayReport first = run_crashy_faults(journal_path);
  EXPECT_EQ(first.explored, 6u);
  EXPECT_EQ(first.crashed_replays, 1u);
  EXPECT_EQ(first.quarantined, (std::vector<std::string>{"none/0,2,1"}));
  ASSERT_EQ(first.quarantine_records.size(), 1u);
  EXPECT_EQ(first.quarantine_records[0].reason, "crashed");
  EXPECT_EQ(first.quarantine_records[0].signal, SIGSEGV);
  EXPECT_EQ(first.sandbox.crashes, 2u);

  // Resume against the completed journal: every pair is merged back, the
  // crash outcome (including the signal) is rehydrated, and no child ever
  // crashes because the known-crashing pair is never re-executed.
  const ReplayReport second = run_crashy_faults(journal_path);
  EXPECT_EQ(second.explored, 6u);
  EXPECT_EQ(second.pairs_skipped_from_journal, 6u);
  EXPECT_EQ(second.crashed_replays, 1u);
  EXPECT_EQ(second.quarantined, (std::vector<std::string>{"none/0,2,1"}));
  ASSERT_EQ(second.quarantine_records.size(), 1u);
  EXPECT_EQ(second.quarantine_records[0].reason, "crashed");
  EXPECT_EQ(second.quarantine_records[0].signal, SIGSEGV);
  EXPECT_EQ(second.sandbox.crashes, 0u);
  EXPECT_EQ(second.sandbox.respawns, 0u);

  std::remove(journal_path.c_str());
}

}  // namespace
}  // namespace erpi::sandbox
