// Fork-server respawn backoff (ISSUE 9 satellite): a subject factory that
// fails the first k fixture builds must not hot-loop or kill the run — each
// failed spawn backs off exponentially (capped) and retries, the
// SandboxStats::respawn_failures counter records exactly k, and a factory
// that keeps failing past sandbox_spawn_max_retries surfaces the original
// error. The flaky factory counts attempts through a file because each build
// happens in a freshly forked runner: a static counter would reset with
// every child's copy-on-write image.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <string>

#include "core/session.hpp"
#include "subjects/town.hpp"

namespace erpi::sandbox {
namespace {

using core::Isolation;
using core::ReplayReport;
using core::Session;

util::Json problem(const char* name) {
  util::Json j = util::Json::object();
  j["problem"] = name;
  return j;
}

std::string counter_path(const char* name) {
  const std::string path =
      std::string(::testing::TempDir()) + "erpi_respawn_" + name + ".count";
  std::remove(path.c_str());
  return path;
}

/// Reads, increments and rewrites the attempt counter. Survives fork: every
/// runner child sees the attempts of all its predecessors.
int bump_counter(const std::string& path) {
  int count = 0;
  {
    std::ifstream in(path);
    in >> count;
  }
  std::ofstream out(path, std::ios::out | std::ios::trunc);
  out << (count + 1);
  out.flush();
  return count;
}

core::SubjectFactory flaky_factory(const std::string& path, int fail_first) {
  return [path, fail_first]() -> std::unique_ptr<proxy::Rdl> {
    if (bump_counter(path) < fail_first) {
      throw std::runtime_error("flaky fixture: warming up");
    }
    return std::make_unique<subjects::TownApp>(2);
  };
}

ReplayReport run_sandboxed(const core::SubjectFactory& factory, int max_retries) {
  Session::Config config;
  config.generation_order = core::GroupedEnumerator::Order::Lexicographic;
  config.replay.stop_on_violation = false;
  config.replay.max_interleavings = 100'000;
  config.parallelism = 1;
  config.isolation = Isolation::Process;
  config.replay.sandbox_spawn_max_retries = max_retries;
  config.replay.sandbox_spawn_backoff_ms = 1;  // keep the retry sleeps test-fast
  config.replay.sandbox_spawn_backoff_cap_ms = 8;
  config.subject_factory = factory;
  subjects::TownApp town(2);
  proxy::RdlProxy proxy(town);
  Session session(proxy, std::move(config));
  session.start();
  (void)proxy.update(0, "report", problem("lamp"));
  (void)proxy.update(1, "report", problem("pothole"));
  (void)proxy.sync_req(0, 1);
  return session.end(
      [](proxy::Rdl&) -> core::AssertionList { return {core::all_ops_succeed()}; });
}

TEST(SandboxRespawn, RetriesPastFirstKSpawnFailuresAndCountsThem) {
  const std::string path = counter_path("heals");
  constexpr int kFailFirst = 2;
  const ReplayReport report = run_sandboxed(flaky_factory(path, kFailFirst), 4);
  // The run completed on the healthy respawn...
  EXPECT_GT(report.explored, 0u);
  EXPECT_EQ(report.violations, 0u);
  // ...and the streak is visible, not silently healed.
  EXPECT_EQ(report.sandbox.respawn_failures, static_cast<uint64_t>(kFailFirst));
}

TEST(SandboxRespawn, CleanFactoryReportsZeroRespawnFailures) {
  // Guard for the omitted-when-zero to_json contract: a healthy run must not
  // grow a respawn_failures field.
  const ReplayReport report = run_sandboxed(
      [] { return std::make_unique<subjects::TownApp>(2); }, 4);
  EXPECT_GT(report.explored, 0u);
  EXPECT_EQ(report.sandbox.respawn_failures, 0u);
  const std::string dumped = report.to_json().dump();
  EXPECT_EQ(dumped.find("respawn_failures"), std::string::npos);
}

TEST(SandboxRespawn, DeterministicFactoryFailureSurfacesAfterRetryBudget) {
  const std::string path = counter_path("exhausts");
  // Fails far past the retry budget: the supervisor must give up with the
  // child's error instead of respawning forever.
  EXPECT_THROW((void)run_sandboxed(flaky_factory(path, 1000), 2), std::runtime_error);
}

}  // namespace
}  // namespace erpi::sandbox
