// Crash-isolation smoke binary for CI: drives a deliberately segfaulting
// subject (CrashyTown) through a full exploration under Isolation::Process
// and asserts the run completes with the crashing interleaving quarantined.
// Exits 0 on success, 1 with a diagnostic on any mismatch — no gtest
// dependency, so CI can run it standalone (see .github/workflows/ci.yml).
#include <csignal>
#include <cstdio>
#include <memory>

#include "core/session.hpp"
#include "crashy_town.hpp"

namespace {

erpi::util::Json problem(const char* name) {
  erpi::util::Json j = erpi::util::Json::object();
  j["problem"] = name;
  return j;
}

#define SMOKE_CHECK(cond)                                              \
  do {                                                                 \
    if (!(cond)) {                                                     \
      std::fprintf(stderr, "sandbox smoke FAILED: %s (%s:%d)\n", #cond, \
                   __FILE__, __LINE__);                                \
      return 1;                                                        \
    }                                                                  \
  } while (0)

}  // namespace

int main() {
  using erpi::sandbox::testing::CrashyTown;

  erpi::core::Session::Config config;
  config.generation_order = erpi::core::GroupedEnumerator::Order::Lexicographic;
  config.replay.stop_on_violation = false;
  config.parallelism = 2;
  config.isolation = erpi::core::Isolation::Process;
  config.subject_factory = [] { return std::make_unique<CrashyTown>(2); };

  CrashyTown town(2);
  erpi::proxy::RdlProxy proxy(town);
  erpi::core::Session session(proxy, std::move(config));
  session.start();
  (void)proxy.update(0, "report", problem("crashkey"));
  (void)proxy.update(0, "report", problem("guard"));
  (void)proxy.update(0, "boom", erpi::util::Json::object());
  const erpi::core::ReplayReport report =
      session.end([](erpi::proxy::Rdl&) -> erpi::core::AssertionList {
        return {erpi::core::all_ops_succeed()};
      });

  SMOKE_CHECK(report.explored == 6);
  SMOKE_CHECK(report.exhausted);
  SMOKE_CHECK(report.crashed_replays == 1);
  SMOKE_CHECK(report.quarantined.size() == 1);
  SMOKE_CHECK(report.quarantined[0] == "0,2,1");
  SMOKE_CHECK(report.quarantine_records.size() == 1);
  SMOKE_CHECK(report.quarantine_records[0].reason == "crashed");
  SMOKE_CHECK(report.quarantine_records[0].signal == SIGSEGV);
  SMOKE_CHECK(report.violations == 0);
  SMOKE_CHECK(report.sandbox.crashes == 2);
  SMOKE_CHECK(report.sandbox.retries == 1);

  std::printf(
      "sandbox smoke OK: explored=%llu quarantined=%s signal=%d "
      "crashes=%llu respawns=%llu\n",
      static_cast<unsigned long long>(report.explored),
      report.quarantined[0].c_str(), report.quarantine_records[0].signal,
      static_cast<unsigned long long>(report.sandbox.crashes),
      static_cast<unsigned long long>(report.sandbox.respawns));
  return 0;
}
