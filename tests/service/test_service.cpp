// Exploration-service lifecycle tests (DESIGN.md §14): admission control and
// rejection frame shapes, disconnect-cancels-only-that-job, per-tenant
// circuit breaking with healthy-tenant byte-identity, deadline timeouts,
// idempotent resubmission, and crash-restart resume reproducing the
// uninterrupted report. Long-running jobs are made deterministic with a
// *gated* subject: every update spins until the test opens a gate file, so
// "job is running right now" is a fact the test controls, not a race.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "service/client.hpp"
#include "service/daemon.hpp"
#include "subjects/town.hpp"

namespace erpi::service {
namespace {

namespace fs = std::filesystem;
using namespace std::chrono_literals;

// Opened in TearDown so a failing test can never wedge a gated job inside
// Daemon::stop().
std::atomic<bool> g_release_gates{false};

class GatedTown : public subjects::TownApp {
 public:
  GatedTown(int replicas, std::string gate_path)
      : TownApp(replicas), gate_path_(std::move(gate_path)) {}

 protected:
  util::Result<util::Json> do_invoke(net::ReplicaId replica, const std::string& op,
                                     const util::Json& args) override {
    const auto give_up = std::chrono::steady_clock::now() + 30s;
    while (!g_release_gates.load() && !fs::exists(gate_path_) &&
           std::chrono::steady_clock::now() < give_up) {
      std::this_thread::sleep_for(2ms);
    }
    return TownApp::do_invoke(replica, op, args);
  }

 private:
  std::string gate_path_;
};

util::Json problem(const char* name) {
  util::Json j = util::Json::object();
  j["problem"] = name;
  return j;
}

void town_workload(proxy::RdlProxy& proxy) {
  (void)proxy.update(0, "report", problem("lamp"));
  (void)proxy.sync_req(0, 1);
  (void)proxy.exec_sync(0, 1);
  (void)proxy.update(1, "report", problem("pothole"));
  (void)proxy.sync_req(1, 0);
  (void)proxy.exec_sync(1, 0);
}

Scenario gated_scenario(const std::string& gate_path) {
  Scenario s;
  s.make_subject = [gate_path] { return std::make_unique<GatedTown>(2, gate_path); };
  s.workload = town_workload;
  s.assertions = [] { return core::AssertionList{core::replicas_converge({0, 1})}; };
  s.configure = [](core::Session::Config& config) {
    config.generation_order = core::GroupedEnumerator::Order::Lexicographic;
    config.spec_groups = {{0, 1, 2}, {3, 4, 5}};
  };
  return s;
}

template <typename Pred>
bool eventually(Pred pred, std::chrono::milliseconds timeout = 20s) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (!pred()) {
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(5ms);
  }
  return true;
}

/// One daemon + temp dir + socket, torn down in order.
struct TestDaemon {
  explicit TestDaemon(const std::string& name,
                      const std::function<void(ServiceConfig&)>& tweak = {},
                      const std::function<void(Registry&)>& scenarios = {}) {
    dir = std::string(::testing::TempDir()) + "erpi_svc_" + name;
    fs::remove_all(dir);
    ServiceConfig config;
    config.socket_path = dir + ".sock";
    config.journal_dir = dir;
    config.retry_backoff_ms = 1;
    config.retry_backoff_cap_ms = 4;
    if (tweak) tweak(config);
    Registry registry = Registry::with_builtins();
    if (scenarios) scenarios(registry);
    daemon = std::make_unique<Daemon>(config, std::move(registry));
    daemon->start();
    socket_path = config.socket_path;
  }
  ~TestDaemon() { daemon->stop(); }

  Client connect() {
    Client client;
    EXPECT_TRUE(client.connect(socket_path));
    return client;
  }

  std::string dir;
  std::string socket_path;
  std::unique_ptr<Daemon> daemon;
};

JobSpec town_job(const std::string& id, const std::string& tenant = "default") {
  JobSpec spec;
  spec.id = id;
  spec.tenant = tenant;
  spec.scenario = "town-demo";
  return spec;
}

class ServiceTest : public ::testing::Test {
 protected:
  void SetUp() override { g_release_gates.store(false); }
  void TearDown() override { g_release_gates.store(true); }

  std::string gate_path(const char* name) {
    const std::string path = std::string(::testing::TempDir()) + "erpi_gate_" + name;
    std::remove(path.c_str());
    return path;
  }
  static void open_gate(const std::string& path) {
    std::ofstream out(path);
    out << "open\n";
  }
};

#define SERVICE_TEST(name) TEST_F(ServiceTest, name)

// ---------------------------------------------------------------------------
// Codec + journal primitives
// ---------------------------------------------------------------------------

SERVICE_TEST(JobSpecRoundTripsThroughJson) {
  JobSpec spec;
  spec.id = "j1";
  spec.tenant = "acme";
  spec.scenario = "town-demo";
  spec.mode = "dfs";
  spec.max_interleavings = 99;
  spec.stop_on_violation = false;
  spec.parallelism = 3;
  spec.seed = 7;
  spec.budget_bytes = 1234;
  spec.timeout_ms = 500;
  spec.max_drops = 2;
  spec.max_plans = 5;
  auto parsed = JobSpec::from_json(spec.to_json());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed.value(), spec);
}

SERVICE_TEST(JobSpecRejectsBadInput) {
  util::Json missing_id = util::Json::object();
  missing_id["scenario"] = "town-demo";
  EXPECT_FALSE(JobSpec::from_json(missing_id).has_value());

  util::Json bad_mode = town_job("j1").to_json();
  bad_mode["mode"] = "bogus";
  EXPECT_FALSE(JobSpec::from_json(bad_mode).has_value());

  util::Json bad_parallelism = town_job("j1").to_json();
  bad_parallelism["parallelism"] = 0;
  EXPECT_FALSE(JobSpec::from_json(bad_parallelism).has_value());

  EXPECT_FALSE(JobSpec::from_json(util::Json("not an object")).has_value());
}

SERVICE_TEST(StatsJsonOmitsZeroFields) {
  EXPECT_EQ(ServiceStats{}.to_json().dump(), "{}");
  ServiceStats stats;
  stats.accepted = 2;
  stats.tenants["acme"].failures = 1;
  const std::string dumped = stats.to_json().dump();
  EXPECT_NE(dumped.find("\"accepted\":2"), std::string::npos);
  EXPECT_NE(dumped.find("\"acme\""), std::string::npos);
  EXPECT_EQ(dumped.find("rejected"), std::string::npos);
}

SERVICE_TEST(QueueJournalLoadsPendingAcrossTornTail) {
  const std::string dir = std::string(::testing::TempDir()) + "erpi_svc_qj";
  fs::remove_all(dir);
  {
    QueueJournal journal(dir);
    journal.record_accepted(town_job("a"));
    journal.record_accepted(town_job("b"));
    journal.record_finished("a", "done");
  }
  {
    std::ofstream out(QueueJournal::queue_path(dir), std::ios::app);
    out << R"({"accepted":{"id":"torn)";  // SIGKILL mid-append
  }
  const auto pending = QueueJournal::load_pending(dir);
  ASSERT_EQ(pending.size(), 1u);
  EXPECT_EQ(pending[0].id, "b");
}

// ---------------------------------------------------------------------------
// Ops + happy path
// ---------------------------------------------------------------------------

SERVICE_TEST(PingStatsAndUnknownOp) {
  TestDaemon daemon("ops");
  Client client = daemon.connect();
  EXPECT_TRUE(client.ping());

  util::Json unknown = util::Json::object();
  unknown["op"] = "frobnicate";
  const auto reply = client.call(unknown);
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ((*reply)["status"].as_string(), "rejected");
  EXPECT_EQ((*reply)["reason"].as_string(), "unknown_op");

  const auto stats = client.stats();
  ASSERT_TRUE(stats.has_value());
  EXPECT_EQ((*stats)["status"].as_string(), "ok");
}

SERVICE_TEST(RunsJobStreamsProgressAndReport) {
  TestDaemon daemon("happy", [](ServiceConfig& config) { config.progress_every = 1; });
  Client client = daemon.connect();
  std::vector<uint64_t> progress;
  const auto final_frame = client.run(town_job("j1"), [&](const util::Json& frame) {
    progress.push_back(static_cast<uint64_t>(frame["progress"]["explored"].as_int()));
  });
  ASSERT_TRUE(final_frame.has_value());
  EXPECT_EQ((*final_frame)["status"].as_string(), "done");
  const util::Json& report = (*final_frame)["report"];
  EXPECT_GT(report["explored"].as_int(), 0);
  EXPECT_FALSE(progress.empty());
  // stable_report_json: the streamed report must not carry wall-clock noise.
  EXPECT_FALSE(report.contains("elapsed_seconds"));

  const auto stats = daemon.daemon->stats();
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_EQ(stats.accepted, 1u);
  EXPECT_EQ(stats.tenants.at("default").jobs, 1u);
}

SERVICE_TEST(IdempotentResubmitAndFetchReturnStoredReport) {
  TestDaemon daemon("idempotent");
  Client client = daemon.connect();
  const auto first = client.run(town_job("j1"));
  ASSERT_TRUE(first.has_value());
  ASSERT_EQ((*first)["status"].as_string(), "done");

  const auto again = client.submit(town_job("j1"));
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(again->dump(), first->dump());

  const auto fetched = client.fetch("j1");
  ASSERT_TRUE(fetched.has_value());
  EXPECT_EQ(fetched->dump(), first->dump());

  const auto missing = client.fetch("nope");
  ASSERT_TRUE(missing.has_value());
  EXPECT_EQ((*missing)["status"].as_string(), "not_found");
}

SERVICE_TEST(RejectsUnknownScenarioAndBadSpec) {
  TestDaemon daemon("badspec");
  Client client = daemon.connect();

  JobSpec unknown = town_job("j1");
  unknown.scenario = "no-such-scenario";
  const auto reply = client.submit(unknown);
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ((*reply)["status"].as_string(), "rejected");
  EXPECT_EQ((*reply)["reason"].as_string(), "unknown_scenario");

  util::Json submit = util::Json::object();
  submit["op"] = "submit";
  submit["job"] = util::Json::object();  // no id
  const auto bad = client.call(submit);
  ASSERT_TRUE(bad.has_value());
  EXPECT_EQ((*bad)["status"].as_string(), "rejected");
  EXPECT_EQ((*bad)["reason"].as_string(), "bad_request");

  EXPECT_EQ(daemon.daemon->stats().rejected_invalid, 2u);
}

SERVICE_TEST(WrongTypedFieldsRejectWithoutKillingDaemon) {
  TestDaemon daemon("hostile");
  Client client = daemon.connect();

  // Each hostile frame must come back as a structured rejection — never
  // escape the reader thread as an exception (which would std::terminate
  // the whole multi-tenant daemon).
  std::vector<util::Json> hostile;
  {
    util::Json f = util::Json::object();
    f["op"] = 123;  // wrong-typed op
    hostile.push_back(f);
  }
  {
    util::Json f = util::Json::object();
    f["op"] = "cancel";
    f["id"] = 7;  // wrong-typed id
    hostile.push_back(f);
  }
  {
    util::Json f = util::Json::object();
    f["op"] = "fetch";  // missing id
    hostile.push_back(f);
  }
  {
    util::Json job = town_job("j1").to_json();
    job["id"] = 42;  // non-string id
    util::Json f = util::Json::object();
    f["op"] = "submit";
    f["job"] = job;
    hostile.push_back(f);
  }
  {
    util::Json job = town_job("j1").to_json();
    job["seed"] = 1.5;  // double-typed seed
    util::Json f = util::Json::object();
    f["op"] = "submit";
    f["job"] = job;
    hostile.push_back(f);
  }
  {
    util::Json job = town_job("j1").to_json();
    job["stop_on_violation"] = "yes";  // non-bool
    util::Json f = util::Json::object();
    f["op"] = "submit";
    f["job"] = job;
    hostile.push_back(f);
  }
  for (const util::Json& frame : hostile) {
    const auto reply = client.call(frame);
    ASSERT_TRUE(reply.has_value()) << frame.dump();
    EXPECT_EQ((*reply)["status"].as_string(), "rejected") << frame.dump();
    EXPECT_EQ((*reply)["reason"].as_string(), "bad_request") << frame.dump();
  }

  // The daemon survived all of it, on this and fresh connections.
  EXPECT_TRUE(client.ping());
  Client fresh = daemon.connect();
  EXPECT_TRUE(fresh.ping());
}

SERVICE_TEST(PathTraversalJobIdIsRejected) {
  TestDaemon daemon("traversal");
  Client client = daemon.connect();
  // The id names files under journal_dir (job-<id>.journal / .report.json);
  // ids that could escape the directory or hide as dotfiles must bounce.
  for (const char* id : {"x/../../../../tmp/evil", "a/b", "..", ".hidden",
                         "sp ace", "nul\tbyte"}) {
    JobSpec spec = town_job(id);
    const auto reply = client.submit(spec);
    ASSERT_TRUE(reply.has_value()) << id;
    EXPECT_EQ((*reply)["status"].as_string(), "rejected") << id;
    EXPECT_EQ((*reply)["reason"].as_string(), "bad_request") << id;
  }
  EXPECT_FALSE(fs::exists("/tmp/evil.report.json"));
  EXPECT_FALSE(JobSpec::from_json(town_job("x/../y").to_json()).has_value());
  EXPECT_TRUE(JobSpec::from_json(town_job("ok-id_1.v2").to_json()).has_value());
}

// ---------------------------------------------------------------------------
// Admission control + backpressure
// ---------------------------------------------------------------------------

SERVICE_TEST(OverloadRejectionFrameShape) {
  const std::string gate = gate_path("overload");
  TestDaemon daemon(
      "overload", [](ServiceConfig& config) { config.max_concurrent_jobs = 1; },
      [&](Registry& registry) { registry.add("gated", gated_scenario(gate)); });

  Client busy = daemon.connect();
  JobSpec held = town_job("held");
  held.scenario = "gated";
  const auto admission = busy.submit(held);
  ASSERT_TRUE(admission.has_value());
  ASSERT_EQ((*admission)["status"].as_string(), "accepted");

  // The held job occupies the whole capacity: a second submit — any tenant,
  // any connection — must bounce with the structured overload frame.
  Client other = daemon.connect();
  const auto rejected = other.submit(town_job("bounced", "tenant-b"));
  ASSERT_TRUE(rejected.has_value());
  EXPECT_EQ((*rejected)["status"].as_string(), "rejected");
  EXPECT_EQ((*rejected)["reason"].as_string(), "overloaded");
  EXPECT_GT((*rejected)["retry_after_ms"].as_int(), 0);
  EXPECT_EQ(daemon.daemon->stats().rejected_overloaded, 1u);

  open_gate(gate);
  auto done = busy.next_frame(30'000);
  while (done.has_value() && !Client::is_terminal(*done)) {
    done = busy.next_frame(30'000);  // skip any progress frames
  }
  ASSERT_TRUE(done.has_value());
  EXPECT_EQ((*done)["status"].as_string(), "done");
  ASSERT_TRUE(eventually([&] { return daemon.daemon->stats().running == 0 &&
                                      daemon.daemon->stats().queued == 0; }));
  // Capacity freed: the same spec is admitted now.
  const auto retried = other.run(town_job("bounced", "tenant-b"));
  ASSERT_TRUE(retried.has_value());
  EXPECT_EQ((*retried)["status"].as_string(), "done");
}

SERVICE_TEST(BudgetExhaustionRejectsWithRetryAfter) {
  TestDaemon daemon("budget", [](ServiceConfig& config) {
    config.budget_bytes = 1ull << 20;
    config.max_concurrent_jobs = 8;
  });
  Client client = daemon.connect();
  JobSpec greedy = town_job("greedy");
  greedy.budget_bytes = 2ull << 20;  // over the whole service budget
  const auto reply = client.submit(greedy);
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ((*reply)["status"].as_string(), "rejected");
  EXPECT_EQ((*reply)["reason"].as_string(), "overloaded");
  EXPECT_EQ((*reply)["detail"].as_string(), "budget");
  EXPECT_GT((*reply)["retry_after_ms"].as_int(), 0);

  // Within budget: admitted and completed, and the reservation is released
  // afterwards so a second within-budget job also fits.
  JobSpec modest = town_job("modest");
  modest.budget_bytes = 1ull << 19;
  const auto done = client.run(modest);
  ASSERT_TRUE(done.has_value());
  EXPECT_EQ((*done)["status"].as_string(), "done");
  JobSpec modest2 = town_job("modest2");
  modest2.budget_bytes = 1ull << 19;
  const auto done2 = client.run(modest2);
  ASSERT_TRUE(done2.has_value());
  EXPECT_EQ((*done2)["status"].as_string(), "done");
}

// ---------------------------------------------------------------------------
// Cancellation: disconnect, explicit op, deadline
// ---------------------------------------------------------------------------

SERVICE_TEST(DisconnectCancelsOnlyThatClientsJob) {
  const std::string gate = gate_path("disconnect");
  TestDaemon daemon(
      "disconnect",
      [](ServiceConfig& config) {
        config.max_concurrent_jobs = 2;
        config.executor_threads = 2;
      },
      [&](Registry& registry) { registry.add("gated", gated_scenario(gate)); });

  Client doomed = daemon.connect();
  JobSpec doomed_spec = town_job("doomed", "tenant-a");
  doomed_spec.scenario = "gated";
  ASSERT_EQ((*doomed.submit(doomed_spec))["status"].as_string(), "accepted");

  Client survivor = daemon.connect();
  JobSpec survivor_spec = town_job("survivor", "tenant-b");
  survivor_spec.scenario = "gated";
  ASSERT_EQ((*survivor.submit(survivor_spec))["status"].as_string(), "accepted");

  ASSERT_TRUE(eventually([&] { return daemon.daemon->stats().running == 2; }));
  doomed.close();  // disconnect flips only this connection's cancel tokens
  open_gate(gate);

  const auto final_frame = survivor.next_frame(30'000);
  ASSERT_TRUE(final_frame.has_value());
  EXPECT_EQ((*final_frame)["id"].as_string(), "survivor");
  EXPECT_EQ((*final_frame)["status"].as_string(), "done");

  ASSERT_TRUE(eventually([&] {
    const auto stats = daemon.daemon->stats();
    return stats.cancelled == 1 && stats.completed == 1;
  }));
}

SERVICE_TEST(CancelOpStopsARunningJob) {
  const std::string gate = gate_path("cancel");
  TestDaemon daemon(
      "cancel", {},
      [&](Registry& registry) { registry.add("gated", gated_scenario(gate)); });

  Client owner = daemon.connect();
  JobSpec spec = town_job("victim");
  spec.scenario = "gated";
  ASSERT_EQ((*owner.submit(spec))["status"].as_string(), "accepted");
  ASSERT_TRUE(eventually([&] { return daemon.daemon->stats().running == 1; }));

  Client controller = daemon.connect();
  EXPECT_TRUE(controller.cancel("victim"));
  EXPECT_FALSE(controller.cancel("no-such-job"));
  open_gate(gate);

  auto frame = owner.next_frame(30'000);
  while (frame.has_value() && !Client::is_terminal(*frame)) frame = owner.next_frame(30'000);
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ((*frame)["status"].as_string(), "cancelled");
  EXPECT_TRUE((*frame)["report"]["cancelled"].as_bool());
  EXPECT_EQ(daemon.daemon->stats().cancelled, 1u);
}

SERVICE_TEST(DeadlineMonitorTimesJobOut) {
  const std::string gate = gate_path("deadline");
  TestDaemon daemon(
      "deadline", [](ServiceConfig& config) { config.job_timeout_ms = 100; },
      [&](Registry& registry) { registry.add("gated", gated_scenario(gate)); });

  Client client = daemon.connect();
  JobSpec spec = town_job("late");
  spec.scenario = "gated";
  ASSERT_EQ((*client.submit(spec))["status"].as_string(), "accepted");
  // Hold the gate shut until the deadline has long passed, then let the job
  // wind down; the next cancel check turns it into timed_out.
  ASSERT_TRUE(eventually([&] { return daemon.daemon->stats().running == 1; }));
  std::this_thread::sleep_for(250ms);
  open_gate(gate);

  auto frame = client.next_frame(30'000);
  while (frame.has_value() && !Client::is_terminal(*frame)) frame = client.next_frame(30'000);
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ((*frame)["status"].as_string(), "timed_out");
  EXPECT_EQ(daemon.daemon->stats().timed_out, 1u);
}

// ---------------------------------------------------------------------------
// Retries, circuit breaker, tenant isolation
// ---------------------------------------------------------------------------

SERVICE_TEST(CrashyTenantTripsBreakerWhileHealthyTenantMatchesSoloRun) {
  // Reference: the healthy tenant's job on an idle daemon of its own.
  std::string solo_report;
  {
    TestDaemon solo("breaker_solo");
    Client client = solo.connect();
    const auto frame = client.run(town_job("good-1", "good"));
    ASSERT_TRUE(frame.has_value());
    ASSERT_EQ((*frame)["status"].as_string(), "done");
    solo_report = (*frame)["report"].dump();
  }

  TestDaemon daemon("breaker", [](ServiceConfig& config) {
    config.max_retries = 1;
    config.breaker_threshold = 2;
    config.breaker_cooldown_ms = 60'000;
    config.max_concurrent_jobs = 4;
  });
  Client evil = daemon.connect();
  JobSpec crashy = town_job("evil-1", "evil");
  crashy.scenario = "town-crashy";
  const auto first = evil.run(crashy);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ((*first)["status"].as_string(), "failed");
  EXPECT_NE((*first)["error"].as_string().find("wedged"), std::string::npos);

  crashy.id = "evil-2";
  const auto second = evil.run(crashy);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ((*second)["status"].as_string(), "failed");

  // Two consecutive exhausted-retry failures: the breaker is open.
  crashy.id = "evil-3";
  const auto third = evil.submit(crashy);
  ASSERT_TRUE(third.has_value());
  EXPECT_EQ((*third)["status"].as_string(), "rejected");
  EXPECT_EQ((*third)["reason"].as_string(), "quarantined");
  EXPECT_GT((*third)["retry_after_ms"].as_int(), 0);

  // The healthy tenant is untouched — admitted, completed, and its report
  // matches the solo daemon's byte-for-byte.
  Client good = daemon.connect();
  const auto healthy = good.run(town_job("good-1", "good"));
  ASSERT_TRUE(healthy.has_value());
  EXPECT_EQ((*healthy)["status"].as_string(), "done");
  EXPECT_EQ((*healthy)["report"].dump(), solo_report);

  const auto stats = daemon.daemon->stats();
  EXPECT_EQ(stats.failed, 2u);
  EXPECT_EQ(stats.retried, 2u);  // one retry per crashy job (max_retries=1)
  EXPECT_EQ(stats.quarantine_trips, 1u);
  EXPECT_EQ(stats.rejected_quarantined, 1u);
  EXPECT_TRUE(stats.tenants.at("evil").quarantined);
  EXPECT_EQ(stats.tenants.at("evil").failures, 2u);
  EXPECT_FALSE(stats.tenants.at("good").quarantined);
  EXPECT_EQ(stats.completed, 1u);
}

// ---------------------------------------------------------------------------
// Crash-restart resume
// ---------------------------------------------------------------------------

SERVICE_TEST(RestartResumesJournaledJobWithByteIdenticalReport) {
  JobSpec spec = town_job("resume-1");
  spec.max_drops = 2;  // several plans -> a meaningful journaled prefix
  spec.max_duplicates = 1;

  // Uninterrupted reference run.
  std::string reference_frame;
  std::string reference_dir;
  {
    TestDaemon daemon("resume_ref");
    reference_dir = daemon.dir;
    Client client = daemon.connect();
    const auto frame = client.run(spec);
    ASSERT_TRUE(frame.has_value());
    ASSERT_EQ((*frame)["status"].as_string(), "done");
    reference_frame = frame->dump();
  }

  // Fabricate the on-disk state a SIGKILL mid-job leaves behind: the queue
  // journal says accepted (never finished), and the job's run journal holds
  // a truncated prefix of the reference run's.
  // Named so no TestDaemon ctor (which remove_all's its own default dir)
  // can collide with this hand-built directory.
  const std::string dir = std::string(::testing::TempDir()) + "erpi_killed_state";
  fs::remove_all(dir);
  {
    QueueJournal journal(dir);
    journal.record_accepted(spec);
  }
  {
    std::ifstream in(QueueJournal::job_journal_path(reference_dir, spec.id));
    ASSERT_TRUE(in.is_open());
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(in, line)) lines.push_back(line);
    ASSERT_GT(lines.size(), 4u);  // header + a few records
    std::ofstream out(QueueJournal::job_journal_path(dir, spec.id));
    for (size_t i = 0; i < 4; ++i) out << lines[i] << '\n';
  }

  // Restart over the doctored directory: the job must resume, finish, and
  // persist a final frame identical to the uninterrupted one.
  {
    TestDaemon daemon("resume_kill", [&](ServiceConfig& config) {
      config.journal_dir = dir;
    });
    EXPECT_TRUE(eventually([&] { return daemon.daemon->stats().resumed == 1; }, 5s));
    Client client = daemon.connect();
    ASSERT_TRUE(eventually([&] {
      const auto fetched = client.fetch(spec.id);
      return fetched.has_value() && (*fetched)["status"].as_string() == "done";
    }));
    const auto fetched = client.fetch(spec.id);
    ASSERT_TRUE(fetched.has_value());
    EXPECT_EQ(fetched->dump(), reference_frame);
  }
}

SERVICE_TEST(UnpersistableReportDegradesAndStaysPending) {
  TestDaemon daemon("degraded");
  // Wedge the report path: write_report's rename onto a directory fails,
  // simulating the report not reaching disk (ENOSPC-style).
  fs::create_directories(QueueJournal::report_path(daemon.dir, "degraded-1"));

  Client client = daemon.connect();
  const auto frame = client.run(town_job("degraded-1"));
  ASSERT_TRUE(frame.has_value());
  // The in-process client still gets the full result, flagged unpersisted.
  EXPECT_EQ((*frame)["status"].as_string(), "done");
  EXPECT_TRUE((*frame)["report_degraded"].as_bool());

  // Not marked finished in queue.journal: a restart would re-run it instead
  // of treating a report-less job as done forever.
  const auto pending = QueueJournal::load_pending(daemon.dir);
  ASSERT_EQ(pending.size(), 1u);
  EXPECT_EQ(pending[0].id, "degraded-1");
}

// ---------------------------------------------------------------------------
// Shutdown op
// ---------------------------------------------------------------------------

SERVICE_TEST(ShutdownOpUnblocksWait) {
  TestDaemon daemon("shutdown");
  std::thread waiter([&] { daemon.daemon->wait(); });
  Client client = daemon.connect();
  EXPECT_TRUE(client.shutdown());
  waiter.join();
  // Torn down: fresh connections are refused.
  Client late;
  EXPECT_FALSE(late.connect(daemon.socket_path));
}

}  // namespace
}  // namespace erpi::service
