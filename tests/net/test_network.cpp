// SimNetwork tests: FIFO channels, global delivery order, partitions, fault
// injection, handlers, statistics.
#include <gtest/gtest.h>

#include "net/network.hpp"

namespace erpi::net {
namespace {

TEST(SimNetwork, FifoPerChannel) {
  SimNetwork net(2);
  net.send(0, 1, "t", "first");
  net.send(0, 1, "t", "second");
  net.send(0, 1, "t", "third");
  EXPECT_EQ(net.pending(0, 1), 3u);
  EXPECT_EQ(net.deliver_next(0, 1)->payload, "first");
  EXPECT_EQ(net.deliver_next(0, 1)->payload, "second");
  EXPECT_EQ(net.deliver_next(0, 1)->payload, "third");
  EXPECT_FALSE(net.deliver_next(0, 1));
}

TEST(SimNetwork, DeliverAnyUsesGlobalSendOrder) {
  SimNetwork net(3);
  net.send(0, 2, "t", "from0");
  net.send(1, 2, "t", "from1");
  net.send(0, 2, "t", "from0b");
  EXPECT_EQ(net.deliver_any(2)->payload, "from0");
  EXPECT_EQ(net.deliver_any(2)->payload, "from1");
  EXPECT_EQ(net.deliver_any(2)->payload, "from0b");
}

TEST(SimNetwork, DeliverAllDrainsEverything) {
  SimNetwork net(3);
  net.send(0, 1, "t", "a");
  net.send(1, 2, "t", "b");
  net.send(2, 0, "t", "c");
  EXPECT_EQ(net.deliver_all(), 3u);
  EXPECT_EQ(net.total_pending(), 0u);
}

TEST(SimNetwork, PartitionDropsAndHealRestores) {
  SimNetwork net(2);
  net.partition(0, 1);
  EXPECT_TRUE(net.partitioned(1, 0));  // symmetric
  EXPECT_FALSE(net.send(0, 1, "t", "lost"));
  EXPECT_FALSE(net.send(1, 0, "t", "lost"));
  net.heal(0, 1);
  EXPECT_TRUE(net.send(0, 1, "t", "delivered"));
  EXPECT_EQ(net.stats().dropped, 2u);
  EXPECT_EQ(net.stats().sent, 3u);
}

TEST(SimNetwork, HealAllClearsEveryPartition) {
  SimNetwork net(3);
  net.partition(0, 1);
  net.partition(1, 2);
  net.heal_all();
  EXPECT_FALSE(net.partitioned(0, 1));
  EXPECT_FALSE(net.partitioned(1, 2));
}

TEST(SimNetwork, DropFaultLosesRoughlyTheConfiguredFraction) {
  SimNetwork net(2, /*seed=*/7);
  net.set_faults({.drop_probability = 0.5, .duplicate_probability = 0.0});
  int delivered = 0;
  for (int i = 0; i < 400; ++i) {
    if (net.send(0, 1, "t", "x")) ++delivered;
  }
  EXPECT_GT(delivered, 120);
  EXPECT_LT(delivered, 280);
  EXPECT_EQ(net.stats().dropped + static_cast<uint64_t>(delivered), 400u);
}

TEST(SimNetwork, DuplicateFaultQueuesTwice) {
  SimNetwork net(2, /*seed=*/7);
  net.set_faults({.drop_probability = 0.0, .duplicate_probability = 1.0});
  net.send(0, 1, "t", "x");
  EXPECT_EQ(net.pending(0, 1), 2u);
  EXPECT_EQ(net.stats().duplicated, 1u);
}

TEST(SimNetwork, HandlersInvokedOnDelivery) {
  SimNetwork net(2);
  std::vector<std::string> received;
  net.set_handler(1, [&](const Message& m) { received.push_back(m.payload); });
  net.send(0, 1, "t", "a");
  net.send(0, 1, "t", "b");
  net.deliver_all();
  EXPECT_EQ(received, (std::vector<std::string>{"a", "b"}));
}

TEST(SimNetwork, ResetClearsChannelsAndStats) {
  SimNetwork net(2);
  net.send(0, 1, "t", "x");
  net.reset();
  EXPECT_EQ(net.total_pending(), 0u);
  EXPECT_EQ(net.stats().sent, 0u);
  EXPECT_FALSE(net.deliver_next(0, 1));
}

TEST(SimNetwork, ValidatesReplicaIds) {
  SimNetwork net(2);
  EXPECT_THROW(net.send(0, 5, "t", "x"), std::out_of_range);
  EXPECT_THROW(net.deliver_next(-1, 0), std::out_of_range);
  EXPECT_THROW(SimNetwork(0), std::invalid_argument);
}

TEST(SimNetwork, SequenceNumbersAreUniqueAndIncreasing) {
  SimNetwork net(2);
  const auto s1 = net.send(0, 1, "t", "a");
  const auto s2 = net.send(1, 0, "t", "b");
  ASSERT_TRUE(s1 && s2);
  EXPECT_LT(*s1, *s2);
}

// Regression: a send that is lost for two reasons at once (severed link AND a
// probability/scripted drop) is one loss, counted once — and a duplicate
// fault never conjures a copy across a severed link.
TEST(SimNetwork, CoincidingDropCausesCountOnce) {
  SimNetwork net(2, /*seed=*/7);
  net.set_faults({.drop_probability = 1.0, .duplicate_probability = 0.0});
  net.partition(0, 1);
  EXPECT_FALSE(net.send(0, 1, "t", "doomed twice over"));
  EXPECT_EQ(net.stats().sent, 1u);
  EXPECT_EQ(net.stats().dropped, 1u);
  EXPECT_EQ(net.stats().duplicated, 0u);
}

TEST(SimNetwork, DuplicateFaultNeverCrossesSeveredLink) {
  SimNetwork net(2, /*seed=*/7);
  net.set_faults({.drop_probability = 0.0, .duplicate_probability = 1.0});
  net.partition(0, 1);
  EXPECT_FALSE(net.send(0, 1, "t", "x"));
  EXPECT_EQ(net.total_pending(), 0u);
  EXPECT_EQ(net.stats().dropped, 1u);
  EXPECT_EQ(net.stats().duplicated, 0u);
  // Healing restores both delivery and the duplicate fault.
  net.heal(0, 1);
  EXPECT_TRUE(net.send(0, 1, "t", "y"));
  EXPECT_EQ(net.pending(0, 1), 2u);
  EXPECT_EQ(net.stats().duplicated, 1u);
}

TEST(SimNetwork, ScriptedDropAndDuplicateTargetSendOrdinals) {
  SimNetwork net(2);
  net.set_script({.drop = {2}, .duplicate = {3}});
  EXPECT_TRUE(net.send(0, 1, "t", "first"));
  EXPECT_FALSE(net.send(0, 1, "t", "second"));  // scripted drop of send #2
  EXPECT_TRUE(net.send(0, 1, "t", "third"));    // scripted duplicate of send #3
  EXPECT_EQ(net.pending(0, 1), 3u);
  EXPECT_EQ(net.stats().dropped, 1u);
  EXPECT_EQ(net.stats().duplicated, 1u);
  // reset() rewinds the ordinal counter but keeps the script installed, so
  // every interleaving of a fault-schedule replay sees the same faults.
  net.reset();
  EXPECT_TRUE(net.send(0, 1, "t", "first again"));
  EXPECT_FALSE(net.send(0, 1, "t", "second again"));
  EXPECT_EQ(net.script(), (SimNetwork::Script{.drop = {2}, .duplicate = {3}}));
}

// Snapshot/restore must round-trip every piece of fault state: live
// partitions, the fault RNG mid-stream, queued duplicates, and the scripted
// fault cursor. After restoring, the network must behave byte-for-byte like
// the original from the snapshot point.
TEST(SimNetwork, StateRoundTripPreservesFaultMachinery) {
  SimNetwork net(3, /*seed=*/42);
  net.set_faults({.drop_probability = 0.3, .duplicate_probability = 0.3});
  net.set_script({.drop = {9}, .duplicate = {10}});
  net.partition(1, 2);
  // Burn some RNG stream and queue traffic (including possible duplicates).
  for (int i = 0; i < 8; ++i) net.send(0, 1, "t", "warm" + std::to_string(i));

  const SimNetwork::State snapshot = net.save_state();

  // Drive the original forward and record everything observable.
  std::vector<std::pair<uint64_t, std::string>> first_run;
  for (int i = 0; i < 12; ++i) net.send(i % 2, (i % 2) ^ 1, "t", "m" + std::to_string(i));
  while (auto m = net.deliver_any(1)) first_run.push_back({m->seq, m->payload});
  const NetworkStats first_stats = net.stats();
  const bool first_partitioned = net.partitioned(1, 2);

  // Rewind and repeat: identical sends must produce identical deliveries.
  net.restore_state(snapshot);
  EXPECT_TRUE(net.partitioned(1, 2));
  std::vector<std::pair<uint64_t, std::string>> second_run;
  for (int i = 0; i < 12; ++i) net.send(i % 2, (i % 2) ^ 1, "t", "m" + std::to_string(i));
  while (auto m = net.deliver_any(1)) second_run.push_back({m->seq, m->payload});

  EXPECT_EQ(first_run, second_run);
  EXPECT_EQ(net.stats().sent, first_stats.sent);
  EXPECT_EQ(net.stats().dropped, first_stats.dropped);
  EXPECT_EQ(net.stats().duplicated, first_stats.duplicated);
  EXPECT_EQ(net.stats().delivered, first_stats.delivered);
  EXPECT_EQ(net.partitioned(1, 2), first_partitioned);
  EXPECT_EQ(net.script(), (SimNetwork::Script{.drop = {9}, .duplicate = {10}}));
}

TEST(SimNetwork, DropInboundDiscardsOnlyThatReplicasQueues) {
  SimNetwork net(3);
  net.send(0, 1, "t", "a");
  net.send(2, 1, "t", "b");
  net.send(0, 2, "t", "c");
  EXPECT_EQ(net.drop_inbound(1), 2u);
  EXPECT_EQ(net.pending(0, 1), 0u);
  EXPECT_EQ(net.pending(2, 1), 0u);
  EXPECT_EQ(net.pending(0, 2), 1u);
  EXPECT_EQ(net.stats().dropped, 2u);
}

}  // namespace
}  // namespace erpi::net
