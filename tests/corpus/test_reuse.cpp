// End-to-end corpus integration through the fault explorer: warm reruns skip
// already-proven (interleaving, plan) classes while reproducing the cold
// run's ReplayReport byte-for-byte (at every parallelism × snapshot depth),
// fingerprints namespace incompatible configurations apart, and diff mode
// surfaces exactly the outcome flips an injected bug causes.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "core/session.hpp"
#include "corpus/store.hpp"
#include "faults/explorer.hpp"
#include "subjects/town.hpp"

namespace erpi::faults {
namespace {

using core::ReplayReport;
using core::Session;

std::string tmp_corpus(const char* name) {
  const std::string dir = std::string(::testing::TempDir()) + "erpi_reuse_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

util::Json problem(const char* name) {
  util::Json j = util::Json::object();
  j["problem"] = name;
  return j;
}

void fault_workload(proxy::RdlProxy& proxy) {
  (void)proxy.update(0, "report", problem("lamp"));
  (void)proxy.sync_req(0, 1);
  (void)proxy.exec_sync(0, 1);
  (void)proxy.update(1, "report", problem("ph"));
  (void)proxy.sync_req(1, 0);
  (void)proxy.exec_sync(1, 0);
  (void)proxy.update(0, "report", problem("otb"));
  (void)proxy.sync_req(0, 1);
  (void)proxy.exec_sync(0, 1);
}

/// TownApp with an injectable integration bug: sync payloads carrying problem
/// "ph" are acknowledged but never applied, so interleavings that relied on
/// that sync now diverge. Capture always runs on a clean TownApp — only the
/// replay fixtures change — so the captured events (and the corpus
/// fingerprint) are identical with the bug on or off.
class BuggyTown : public subjects::TownApp {
 public:
  explicit BuggyTown(int replica_count) : TownApp(replica_count) {}

 protected:
  util::Status apply_sync_payload(net::ReplicaId from, net::ReplicaId to,
                                  const std::string& payload) override {
    if (payload.find("ph") != std::string::npos) return util::Status::ok();
    return TownApp::apply_sync_payload(from, to, payload);
  }
};

struct SweepResult {
  ReplayReport report;
  corpus::ReuseStats stats;
  corpus::OutcomeDiff diff;
};

SweepResult run_sweep(const std::string& corpus_dir, int parallelism, size_t depth,
                      core::CorpusMode mode = core::CorpusMode::Reuse,
                      bool buggy = false, uint64_t seed = 0,
                      bool stop_on_violation = false) {
  Session::Config config;
  config.generation_order = core::GroupedEnumerator::Order::Lexicographic;
  config.spec_groups = {{0, 1, 2}, {3, 4, 5}, {6, 7, 8}};
  config.replay.stop_on_violation = stop_on_violation;
  config.replay.max_interleavings = 100'000;
  config.max_snapshot_depth = depth;
  config.parallelism = parallelism;
  config.random_seed = seed;
  config.corpus_path = corpus_dir;
  config.corpus_mode = mode;
  config.subject_factory = [buggy]() -> std::unique_ptr<proxy::Rdl> {
    if (buggy) return std::make_unique<BuggyTown>(2);
    return std::make_unique<subjects::TownApp>(2);
  };
  subjects::TownApp town(2);
  proxy::RdlProxy proxy(town);
  Session session(proxy, std::move(config));
  session.start();
  fault_workload(proxy);
  FaultExplorer explorer(session);
  SweepResult result;
  result.report = explorer.run([](proxy::Rdl&) -> core::AssertionList {
    return {core::replicas_converge({0, 1})};
  });
  result.stats = explorer.corpus_stats();
  result.diff = explorer.outcome_diff();
  return result;
}

/// The byte-identity form: elapsed time is wall-clock noise and the prefix
/// telemetry necessarily differs when replays are skipped (a cache hit
/// never touches the snapshot caches), so both are canonicalized before
/// serializing — every semantic field of the report participates.
std::string normalized(ReplayReport report) {
  report.elapsed_seconds = 0.0;
  report.prefix = {};
  report.sandbox = {};
  return report.to_json().dump();
}

// ---------------------------------------------------------------------------
// Reuse mode
// ---------------------------------------------------------------------------

TEST(CorpusReuse, WarmRerunSkipsEverythingWithByteIdenticalReport) {
  const std::string dir = tmp_corpus("warm");
  const SweepResult cold = run_sweep(dir, /*parallelism=*/1, /*depth=*/16);
  ASSERT_GT(cold.report.explored, 20u);
  EXPECT_EQ(cold.stats.hits, 0u);
  EXPECT_EQ(cold.stats.misses, cold.report.explored);
  EXPECT_EQ(cold.stats.appended, cold.report.explored);

  // The corpus fingerprint excludes parallelism and snapshot depth, so every
  // combination reuses the p=1/depth=16 cold run's records.
  for (const int parallelism : {1, 4}) {
    for (const size_t depth : {size_t{0}, size_t{16}}) {
      const std::string label =
          "p=" + std::to_string(parallelism) + " d=" + std::to_string(depth);
      const SweepResult warm = run_sweep(dir, parallelism, depth);
      EXPECT_EQ(normalized(warm.report), normalized(cold.report)) << label;
      EXPECT_EQ(warm.stats.hits, cold.report.explored) << label;
      EXPECT_EQ(warm.stats.misses, 0u) << label;
      EXPECT_EQ(warm.stats.appended, 0u) << label;
      // The acceptance floor (>= 95% skipped) holds with margin: 100%.
      EXPECT_GE(warm.stats.hits * 100, (warm.stats.hits + warm.stats.misses) * 95)
          << label;
    }
  }
}

TEST(CorpusReuse, StopOnViolationWarmRunMatchesCold) {
  const std::string dir = tmp_corpus("stop");
  const SweepResult cold =
      run_sweep(dir, 4, 16, core::CorpusMode::Reuse, false, 0, /*stop=*/true);
  ASSERT_TRUE(cold.report.reproduced);
  const SweepResult warm =
      run_sweep(dir, 4, 16, core::CorpusMode::Reuse, false, 0, /*stop=*/true);
  EXPECT_EQ(normalized(warm.report), normalized(cold.report));
  // A stopped run commits exactly first_violation_index pairs; the warm run
  // resolves all of them from the corpus.
  EXPECT_EQ(warm.stats.hits, cold.report.explored);
  EXPECT_EQ(warm.stats.appended, 0u);
}

TEST(CorpusReuse, IncompatibleFingerprintMissesTheCorpus) {
  const std::string dir = tmp_corpus("mismatch");
  const SweepResult cold = run_sweep(dir, 1, 16, core::CorpusMode::Reuse, false, /*seed=*/0);
  ASSERT_GT(cold.stats.appended, 0u);
  // Same store, different run configuration (the seed feeds the fingerprint):
  // nothing may be reused, and the store now holds both namespaces.
  const SweepResult other = run_sweep(dir, 1, 16, core::CorpusMode::Reuse, false, /*seed=*/99);
  EXPECT_EQ(other.stats.hits, 0u);
  EXPECT_EQ(other.stats.misses, other.report.explored);
  EXPECT_EQ(other.stats.appended, other.report.explored);
  corpus::Store store = corpus::Store::open(dir);
  EXPECT_EQ(store.size(), cold.stats.appended + other.stats.appended);
}

TEST(CorpusReuse, FingerprintPurposesDivergeOnlyOnSnapshotDepth) {
  Session::Config config;
  config.generation_order = core::GroupedEnumerator::Order::Lexicographic;
  config.spec_groups = {{0, 1, 2}, {3, 4, 5}, {6, 7, 8}};
  config.subject_factory = [] { return std::make_unique<subjects::TownApp>(2); };
  subjects::TownApp town(2);
  proxy::RdlProxy proxy(town);
  Session session(proxy, std::move(config));
  session.start();
  fault_workload(proxy);
  session.finish_capture();
  const auto plans = build_catalog(session.events(), 2);

  core::ReplayOptions shallow;
  shallow.max_snapshot_depth = 0;
  core::ReplayOptions deep;
  deep.max_snapshot_depth = 16;
  const CatalogOptions catalog;
  // Journal fingerprints must not match across depths (the resumed budget
  // trajectory depends on snapshot caches); corpus fingerprints must.
  EXPECT_NE(run_fingerprint(session, plans, catalog, shallow, FingerprintPurpose::Journal),
            run_fingerprint(session, plans, catalog, deep, FingerprintPurpose::Journal));
  EXPECT_EQ(run_fingerprint(session, plans, catalog, shallow, FingerprintPurpose::Corpus),
            run_fingerprint(session, plans, catalog, deep, FingerprintPurpose::Corpus));
}

// ---------------------------------------------------------------------------
// Diff mode
// ---------------------------------------------------------------------------

TEST(CorpusDiff, SurfacesExactlyTheInjectedOutcomeFlips) {
  const std::string dir = tmp_corpus("diff");
  // Cold clean sweep seeds the corpus.
  const SweepResult cold = run_sweep(dir, 4, 16);
  ASSERT_GT(cold.report.explored, 20u);

  // Diff sweep with the bug injected: every pair is replayed (never skipped),
  // every pair has a stored record, and the flipped pairs surface as changes.
  const SweepResult flipped =
      run_sweep(dir, 4, 16, core::CorpusMode::Diff, /*buggy=*/true);
  EXPECT_EQ(flipped.report.explored, cold.report.explored);
  EXPECT_EQ(flipped.stats.hits, 0u);  // diff mode replays everything
  EXPECT_EQ(flipped.diff.missing, 0u);
  EXPECT_EQ(flipped.diff.compared, flipped.report.explored);
  EXPECT_EQ(flipped.diff.unchanged + flipped.diff.changed.size(), flipped.diff.compared);
  ASSERT_TRUE(flipped.diff.any());
  // Every reported change is a genuine behavior difference, and the bug
  // produced at least one outright pass -> violation flip.
  bool saw_pass_to_violation = false;
  for (const auto& change : flipped.diff.changed) {
    EXPECT_FALSE(change.before.same_outcome(change.after)) << change.plan;
    saw_pass_to_violation |= change.before.kind == corpus::OutcomeKind::Pass &&
                             change.after.kind == corpus::OutcomeKind::Violation;
  }
  EXPECT_TRUE(saw_pass_to_violation);
  EXPECT_GT(flipped.report.violations, cold.report.violations);

  // Diff mode persists last-wins, so a second buggy diff run is all-quiet...
  const SweepResult settled =
      run_sweep(dir, 4, 16, core::CorpusMode::Diff, /*buggy=*/true);
  EXPECT_FALSE(settled.diff.any());
  EXPECT_EQ(settled.diff.unchanged, settled.diff.compared);
  // ...and reverting the bug reports exactly the same classes flipping back —
  // the mirror property that pins the diff to the injected change and nothing
  // else.
  const SweepResult reverted = run_sweep(dir, 4, 16, core::CorpusMode::Diff);
  auto change_keys = [](const corpus::OutcomeDiff& diff) {
    std::vector<std::string> keys;
    for (const auto& change : diff.changed) keys.push_back(change.plan + "/" + change.il);
    return keys;
  };
  EXPECT_EQ(change_keys(reverted.diff), change_keys(flipped.diff));
  for (size_t i = 0; i < reverted.diff.changed.size() && i < flipped.diff.changed.size();
       ++i) {
    // Each reverted change is the forward change with before/after swapped.
    EXPECT_TRUE(
        reverted.diff.changed[i].before.same_outcome(flipped.diff.changed[i].after));
    EXPECT_TRUE(
        reverted.diff.changed[i].after.same_outcome(flipped.diff.changed[i].before));
  }
  // The diff serializes for CI artifacts.
  const util::Json j = reverted.diff.to_json();
  EXPECT_EQ(j["changed"].as_array().size(), reverted.diff.changed.size());
}

}  // namespace
}  // namespace erpi::faults
