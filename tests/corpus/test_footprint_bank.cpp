// FootprintBank persistence (DESIGN.md §15.5): export/absorb/save/load/seed
// round-trips preserve the learned relation bit-for-bit, torn tail lines are
// tolerated like the store's segments, absorb is monotone, and the fault
// explorer's cold-then-warm cycle through a corpus directory opens the
// sync-trust gate on the second run.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <string>

#include "core/session.hpp"
#include "corpus/footprints.hpp"
#include "faults/explorer.hpp"
#include "subjects/town.hpp"

namespace erpi::corpus {
namespace {

using core::Footprint;
using core::IndependenceLearner;

std::string tmp_dir(const char* name) {
  const std::string dir = std::string(::testing::TempDir()) + "erpi_fpbank_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

Footprint fp_writes(std::initializer_list<const char*> keys, bool sync = false) {
  Footprint fp;
  for (const char* key : keys) Footprint::insert_key(fp.writes, key);
  fp.sync = sync;
  return fp;
}

void train(IndependenceLearner& learner) {
  learner.observe("none", 0, fp_writes({"r0/x"}, /*sync=*/true));
  learner.observe("none", 1, fp_writes({"r1/x"}));
  learner.observe("drop", 1, fp_writes({"r1/y"}));
  learner.note_training_run();
  learner.record_verdict(0, 1, true);
  learner.record_verdict(1, 2, false);
}

TEST(DporBank, SaveLoadSeedRoundTripPreservesTheRelation) {
  const std::string dir = tmp_dir("roundtrip");
  const uint64_t fp = 0x5eedf00dULL;
  IndependenceLearner original;
  train(original);

  FootprintBank bank;
  EXPECT_TRUE(bank.absorb(original, fp));
  EXPECT_EQ(bank.entry_count(), 3u);  // (none,0), (none,1), (drop,1)
  EXPECT_EQ(bank.verdict_count(), 2u);
  ASSERT_TRUE(bank.save(dir));

  const FootprintBank loaded = FootprintBank::load(dir);
  EXPECT_EQ(loaded.entry_count(), bank.entry_count());
  EXPECT_EQ(loaded.verdict_count(), bank.verdict_count());
  EXPECT_EQ(loaded.torn_lines(), 0u);

  IndependenceLearner restored;
  EXPECT_EQ(loaded.seed_learner(restored, fp), 3u);
  EXPECT_EQ(restored.relation_digest(), original.relation_digest());
  EXPECT_EQ(restored.runs_observed(0), original.runs_observed(0));
  EXPECT_EQ(restored.verdict(1, 2), std::optional<bool>(false));

  // A different workload fingerprint seeds nothing — banks are namespaced.
  IndependenceLearner other;
  EXPECT_EQ(loaded.seed_learner(other, fp + 1), 0u);
  EXPECT_FALSE(other.trained());
}

TEST(DporBank, TornTailLinesAreSkippedNotFatal) {
  const std::string dir = tmp_dir("torn");
  IndependenceLearner learner;
  train(learner);
  FootprintBank bank;
  (void)bank.absorb(learner, 7);
  ASSERT_TRUE(bank.save(dir));
  {
    std::ofstream out(FootprintBank::path_in(dir), std::ios::app);
    out << "{\"fp\":\"zz\",\"ev\":bad\n";  // torn mid-write
    out << "not json at all\n";
    out << "{\"fp\":\"7\",\"ctx\":\"none\"";  // truncated record
  }
  const FootprintBank reloaded = FootprintBank::load(dir);
  EXPECT_EQ(reloaded.entry_count(), 3u);
  EXPECT_EQ(reloaded.verdict_count(), 2u);
  EXPECT_GT(reloaded.torn_lines(), 0u);
}

TEST(DporBank, AbsorbIsMonotoneAndReportsChange) {
  IndependenceLearner learner;
  train(learner);
  FootprintBank bank;
  EXPECT_TRUE(bank.absorb(learner, 7));
  EXPECT_FALSE(bank.absorb(learner, 7));  // nothing new: save() skippable
  // Widening the learner makes the next absorb report change again.
  IndependenceLearner wider;
  train(wider);
  wider.observe("none", 0, fp_writes({"r0/extra"}));
  EXPECT_TRUE(bank.absorb(wider, 7));
  EXPECT_FALSE(bank.absorb(learner, 7));  // narrower state: union already held
}

// ---------------------------------------------------------------------------
// Cold-then-warm through the fault explorer
// ---------------------------------------------------------------------------

util::Json problem(const char* name) {
  util::Json j = util::Json::object();
  j["problem"] = name;
  return j;
}

struct SweepResult {
  core::ReplayReport report;
  uint32_t runs_of_event0 = 0;
};

SweepResult run_corpus_sweep(const std::string& corpus_dir) {
  core::Session::Config config;
  // DFS over raw events: ER-pi's event grouping would fold the sync ops into
  // their update's unit and leave nothing for the dynamic oracle to cut.
  config.mode = core::ExplorationMode::Dfs;
  config.replay.stop_on_violation = false;
  config.replay.max_interleavings = 100'000;
  config.corpus_path = corpus_dir;
  config.dynamic_pruning.enabled = true;
  config.subject_factory = [] { return std::make_unique<subjects::TownApp>(2); };
  subjects::TownApp town(2);
  proxy::RdlProxy proxy(town);
  core::Session session(proxy, std::move(config));
  session.start();
  (void)proxy.update(0, "report", problem("a"));  // e0
  (void)proxy.sync_req(0, 1);                     // e1
  (void)proxy.exec_sync(0, 1);                    // e2
  (void)proxy.update(1, "report", problem("b"));  // e3
  faults::CatalogOptions catalog;  // baseline "none" plan only
  catalog.max_drops = 0;
  catalog.max_duplicates = 0;
  catalog.max_partition_windows = 0;
  catalog.max_crash_restarts = 0;
  faults::FaultExplorer explorer(session, catalog);
  SweepResult result;
  result.report = explorer.run([](proxy::Rdl&) -> core::AssertionList {
    return {core::replicas_converge({0, 1})};
  });
  if (session.dpor_learner() != nullptr) {
    result.runs_of_event0 = session.dpor_learner()->runs_observed(0);
  }
  return result;
}

TEST(DporBank, FaultExplorerColdThenWarmOpensTheSyncTrustGate) {
  const std::string dir = tmp_dir("sweep");

  const SweepResult cold = run_corpus_sweep(dir);
  EXPECT_EQ(cold.runs_of_event0, 1u);  // the priming replay only
  ASSERT_TRUE(std::filesystem::exists(FootprintBank::path_in(dir)));
  const FootprintBank saved = FootprintBank::load(dir);
  EXPECT_EQ(saved.entry_count(), 4u);  // every event, context "none"

  const SweepResult warm = run_corpus_sweep(dir);
  // Bank-seeded run count + this run's priming replay.
  EXPECT_EQ(warm.runs_of_event0, 2u);
  // The sync-trust gate opened: sync-flavoured pairs (e1 with e3) become
  // cuttable, so the warm stream is strictly smaller than the cold one.
  EXPECT_LT(warm.report.explored, cold.report.explored);
  EXPECT_GT(warm.report.explored, 0u);
  // Convergence is a property of the final state, which every member of a
  // trace class shares — cutting commuting duplicates never loses the bug.
  EXPECT_EQ(cold.report.reproduced, warm.report.reproduced);
}

}  // namespace
}  // namespace erpi::corpus
