// corpus::DatalogBridge tests: plan-key decomposition (cross-checked against
// the real catalog's keys), relation export shapes, idempotent re-export,
// run_meta aggregates, a worked query over the bridge schema, and an
// end-to-end sweep whose corpus answers the same counts as its ReplayReport.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include "core/session.hpp"
#include "corpus/bridge.hpp"
#include "corpus/store.hpp"
#include "datalog/evaluator.hpp"
#include "datalog/parser.hpp"
#include "faults/explorer.hpp"
#include "faults/plan.hpp"
#include "subjects/town.hpp"

namespace erpi::corpus {
namespace {

std::string tmp_dir(const char* name) {
  const std::string dir = std::string(::testing::TempDir()) + "erpi_bridge_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

Record make_record(uint64_t fp, std::string plan, std::string il,
                   OutcomeKind kind = OutcomeKind::Pass) {
  Record record;
  record.fingerprint = fp;
  record.plan = std::move(plan);
  record.il = std::move(il);
  record.kind = kind;
  return record;
}

// ---------------------------------------------------------------------------
// Plan-key decomposition
// ---------------------------------------------------------------------------

TEST(DatalogBridge, PlanFaultEntriesCoverEveryKeyShape) {
  using Entries = std::vector<std::pair<std::string, int>>;
  EXPECT_EQ(DatalogBridge::plan_fault_entries("none"), (Entries{{"none", -1}}));
  EXPECT_EQ(DatalogBridge::plan_fault_entries("drop:2"), (Entries{{"drop", -1}}));
  EXPECT_EQ(DatalogBridge::plan_fault_entries("dup:1"), (Entries{{"dup", -1}}));
  EXPECT_EQ(DatalogBridge::plan_fault_entries("part:0-1@2..4"),
            (Entries{{"part", 0}, {"part", 1}}));
  EXPECT_EQ(DatalogBridge::plan_fault_entries("part:2-10@0..2"),
            (Entries{{"part", 2}, {"part", 10}}));
  EXPECT_EQ(DatalogBridge::plan_fault_entries("crash:r1@1->3"),
            (Entries{{"crash", 1}}));
  // Unrecognized keys decompose totally instead of being dropped.
  EXPECT_EQ(DatalogBridge::plan_fault_entries("mystery:9"),
            (Entries{{"unknown", -1}}));
  EXPECT_EQ(DatalogBridge::plan_fault_entries("drop:x"), (Entries{{"unknown", -1}}));
  EXPECT_EQ(DatalogBridge::plan_fault_entries(""), (Entries{{"unknown", -1}}));
}

TEST(DatalogBridge, PlanFaultEntriesAgreeWithTheRealCatalog) {
  // Compose a real catalog and check the string-level parser against the
  // structured plans it came from — the guard that keeps the bridge's
  // decomposition honest without a corpus -> faults dependency.
  core::EventSet events;
  for (int i = 0; i < 6; ++i) {
    core::Event event;
    event.id = i;
    event.kind = i % 3 == 1 ? core::EventKind::SyncReq : core::EventKind::Update;
    event.replica = i % 3;
    if (event.kind == core::EventKind::SyncReq) {
      event.from = i % 3;
      event.to = (i + 1) % 3;
    }
    events.push_back(event);
  }
  const auto plans = faults::build_catalog(events, 3);
  ASSERT_GT(plans.size(), 4u);
  for (const auto& plan : plans) {
    const auto entries = DatalogBridge::plan_fault_entries(plan.key());
    ASSERT_FALSE(entries.empty()) << plan.key();
    switch (plan.kind) {
      case faults::FaultPlan::Kind::None:
        EXPECT_EQ(entries, (std::vector<std::pair<std::string, int>>{{"none", -1}}));
        break;
      case faults::FaultPlan::Kind::DropSync:
        EXPECT_EQ(entries, (std::vector<std::pair<std::string, int>>{{"drop", -1}}));
        break;
      case faults::FaultPlan::Kind::DuplicateSync:
        EXPECT_EQ(entries, (std::vector<std::pair<std::string, int>>{{"dup", -1}}));
        break;
      case faults::FaultPlan::Kind::PartitionWindow:
        ASSERT_EQ(entries.size(), 2u) << plan.key();
        EXPECT_EQ(entries[0], (std::pair<std::string, int>{"part", plan.replica_a}));
        EXPECT_EQ(entries[1], (std::pair<std::string, int>{"part", plan.replica_b}));
        break;
      case faults::FaultPlan::Kind::CrashRestart:
        EXPECT_EQ(entries,
                  (std::vector<std::pair<std::string, int>>{{"crash", plan.replica_a}}));
        break;
    }
  }
}

// ---------------------------------------------------------------------------
// Relation export
// ---------------------------------------------------------------------------

Store seeded_store(const std::string& dir) {
  Store store = Store::open(dir);
  Record viol = make_record(1, "part:0-2@1..3", "0,1", OutcomeKind::Violation);
  viol.violations.push_back({"replicas_converge", "diverged at 2"});
  store.append(viol);
  Record viol2 = make_record(1, "drop:1", "1,0", OutcomeKind::Violation);
  viol2.violations.push_back({"replicas_converge", "diverged at 1"});
  store.append(viol2);
  store.append(make_record(1, "none", "0,1"));
  Record crash = make_record(1, "crash:r2@1->3", "2,0", OutcomeKind::Crashed);
  crash.signal = 11;
  store.append(crash);
  store.append(make_record(2, "none", "0,1"));  // a second namespace
  return store;
}

TEST(DatalogBridge, ExportsAllFourRelations) {
  const std::string dir = tmp_dir("relations");
  Store store = seeded_store(dir);
  datalog::Database db;
  DatalogBridge bridge(db);
  const auto stats = bridge.export_store(store);
  EXPECT_EQ(stats.outcome_facts, 5u);
  EXPECT_EQ(stats.violation_facts, 2u);
  // plan_fault is keyed by plan, not by record: none appears once even
  // though two namespaces hold a "none" record; part contributes two rows.
  EXPECT_EQ(stats.plan_fault_facts, 5u);  // part×2, drop, none, crash
  EXPECT_EQ(stats.run_meta_facts, 6u);    // 3 keys × 2 fingerprints

  // outcome/5 carries the crash signal as its integer column.
  const auto crashed = datalog::query(
      db, {"outcome",
           {datalog::Term::var("Fp"), datalog::Term::var("Plan"), datalog::Term::var("Il"),
            datalog::Term::constant_sym(db.symbols().intern("crashed")),
            datalog::Term::var("Sig")}});
  ASSERT_EQ(crashed.size(), 1u);
  EXPECT_EQ(crashed[0].at("Sig"), datalog::Value::integer(11));

  // Re-export is idempotent: relations deduplicate, nothing new is inserted.
  const auto again = bridge.export_store(store);
  EXPECT_EQ(again.outcome_facts, 0u);
  EXPECT_EQ(again.violation_facts, 0u);
  EXPECT_EQ(again.plan_fault_facts, 0u);
  EXPECT_EQ(again.run_meta_facts, 0u);
}

TEST(DatalogBridge, FingerprintFilterScopesTheExport) {
  const std::string dir = tmp_dir("filter");
  Store store = seeded_store(dir);
  datalog::Database db;
  DatalogBridge bridge(db);
  const auto stats = bridge.export_store(store, /*fingerprint=*/2);
  EXPECT_EQ(stats.outcome_facts, 1u);
  EXPECT_EQ(stats.violation_facts, 0u);
  EXPECT_EQ(stats.run_meta_facts, 3u);  // one fingerprint's aggregates only
}

TEST(DatalogBridge, RunMetaAggregatesPerFingerprint) {
  const std::string dir = tmp_dir("meta");
  Store store = seeded_store(dir);
  datalog::Database db;
  DatalogBridge bridge(db);
  bridge.export_store(store);
  const auto records = datalog::query(
      db, {"run_meta",
           {datalog::Term::constant_sym(db.symbols().intern("0000000000000001")),
            datalog::Term::constant_sym(db.symbols().intern("records")),
            datalog::Term::var("N")}});
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].at("N"), datalog::Value::integer(4));
  const auto violations = datalog::query(
      db, {"run_meta",
           {datalog::Term::constant_sym(db.symbols().intern("0000000000000001")),
            datalog::Term::constant_sym(db.symbols().intern("violations")),
            datalog::Term::var("N")}});
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].at("N"), datalog::Value::integer(2));
}

TEST(DatalogBridge, WorkedQueryPartitionViolationsInvolvingReplica) {
  // The DESIGN.md §11 worked example: violations under partition plans that
  // involve replica 2 — a rule joining violation/4 against plan_fault/3.
  const std::string dir = tmp_dir("worked");
  Store store = seeded_store(dir);
  datalog::Database db;
  DatalogBridge bridge(db);
  bridge.export_store(store);

  const auto program = datalog::parse_program(
      "part_viol(Plan, Il) :- violation(Fp, Plan, Il, A), plan_fault(Plan, part, 2).",
      db.symbols());
  ASSERT_TRUE(program.has_value()) << program.error().message;
  datalog::evaluate(db, program.value());

  const auto rows = datalog::query(
      db, {"part_viol", {datalog::Term::var("Plan"), datalog::Term::var("Il")}});
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(db.symbols().name(rows[0].at("Plan").payload), "part:0-2@1..3");
  EXPECT_EQ(db.symbols().name(rows[0].at("Il").payload), "0,1");
}

// ---------------------------------------------------------------------------
// End-to-end: sweep -> corpus -> bridge counts match the report
// ---------------------------------------------------------------------------

TEST(DatalogBridge, EndToEndSweepCorpusAnswersReportCounts) {
  const std::string dir = tmp_dir("sweep");
  core::Session::Config config;
  config.generation_order = core::GroupedEnumerator::Order::Lexicographic;
  config.spec_groups = {{0, 1, 2}, {3, 4, 5}};
  config.replay.stop_on_violation = false;
  config.replay.max_interleavings = 100'000;
  config.corpus_path = dir;
  config.subject_factory = [] { return std::make_unique<subjects::TownApp>(2); };
  subjects::TownApp town(2);
  proxy::RdlProxy proxy(town);
  core::Session session(proxy, std::move(config));
  session.start();
  (void)proxy.update(0, "report", [] {
    util::Json j = util::Json::object();
    j["problem"] = std::string("lamp");
    return j;
  }());
  (void)proxy.sync_req(0, 1);
  (void)proxy.exec_sync(0, 1);
  (void)proxy.update(1, "report", [] {
    util::Json j = util::Json::object();
    j["problem"] = std::string("ph");
    return j;
  }());
  (void)proxy.sync_req(1, 0);
  (void)proxy.exec_sync(1, 0);
  faults::FaultExplorer explorer(session);
  const core::ReplayReport report =
      explorer.run([](proxy::Rdl&) -> core::AssertionList {
        return {core::replicas_converge({0, 1})};
      });
  ASSERT_GT(report.explored, 0u);

  Store store = Store::open(dir);
  EXPECT_EQ(store.size(), report.explored);
  datalog::Database db;
  DatalogBridge bridge(db);
  const auto stats = bridge.export_store(store);
  EXPECT_EQ(stats.outcome_facts, report.explored);
  EXPECT_EQ(stats.violation_facts, report.violations);
  EXPECT_EQ(db.find("outcome")->size(), report.explored);
}

}  // namespace
}  // namespace erpi::corpus
