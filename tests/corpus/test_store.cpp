// corpus::Store tests: outcome taxonomy round-trips, append/lookup/reopen
// durability, segment rolling, last-wins overwrite, compaction (sorted index,
// segments deleted, torn tails tolerated), recency-based eviction, and
// fingerprint namespacing.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "corpus/store.hpp"

namespace erpi::corpus {
namespace {

namespace fs = std::filesystem;

std::string tmp_store(const char* name) {
  const std::string dir = std::string(::testing::TempDir()) + "erpi_corpus_" + name;
  fs::remove_all(dir);
  return dir;
}

Record make_record(uint64_t fp, std::string plan, std::string il,
                   OutcomeKind kind = OutcomeKind::Pass) {
  Record record;
  record.fingerprint = fp;
  record.plan = std::move(plan);
  record.il = std::move(il);
  record.kind = kind;
  return record;
}

std::vector<std::string> file_lines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

// ---------------------------------------------------------------------------
// Outcome taxonomy
// ---------------------------------------------------------------------------

TEST(CorpusRecord, KindNamesRoundTrip) {
  for (const OutcomeKind kind :
       {OutcomeKind::Pass, OutcomeKind::Violation, OutcomeKind::Crashed,
        OutcomeKind::Oom, OutcomeKind::TimedOut, OutcomeKind::BudgetExhausted}) {
    const auto back = outcome_kind_from_name(outcome_kind_name(kind));
    ASSERT_TRUE(back.has_value()) << outcome_kind_name(kind);
    EXPECT_EQ(*back, kind);
  }
  EXPECT_FALSE(outcome_kind_from_name("nonsense").has_value());
  EXPECT_FALSE(outcome_kind_from_name("").has_value());
}

TEST(CorpusRecord, OutcomeRoundTripsForEveryPerPairKind) {
  core::InterleavingOutcome pass;
  core::InterleavingOutcome violation;
  violation.violations.push_back({"replicas_converge", "diverged at replica 1"});
  violation.violations.push_back({"query_result", "lamp missing"});
  core::InterleavingOutcome crashed;
  crashed.crashed = true;
  crashed.term_signal = 11;
  core::InterleavingOutcome oom;
  oom.oom = true;
  core::InterleavingOutcome timed_out;
  timed_out.timed_out = true;

  for (const auto* original : {&pass, &violation, &crashed, &oom, &timed_out}) {
    const Record record = Record::from_outcome(7, "none", "0,1,2", *original);
    const core::InterleavingOutcome back = record.to_outcome();
    EXPECT_EQ(back.timed_out, original->timed_out);
    EXPECT_EQ(back.crashed, original->crashed);
    EXPECT_EQ(back.term_signal, original->term_signal);
    EXPECT_EQ(back.oom, original->oom);
    ASSERT_EQ(back.violations.size(), original->violations.size());
    for (size_t i = 0; i < back.violations.size(); ++i) {
      EXPECT_EQ(back.violations[i].assertion, original->violations[i].assertion);
      EXPECT_EQ(back.violations[i].message, original->violations[i].message);
    }
  }
}

TEST(CorpusRecord, BudgetExhaustedCarriesNoReplayOutcome) {
  Record record = make_record(1, "none", "0,1", OutcomeKind::BudgetExhausted);
  EXPECT_THROW(record.to_outcome(), std::logic_error);
}

TEST(CorpusRecord, SameOutcomeIgnoresRecency) {
  Record a = make_record(1, "none", "0,1", OutcomeKind::Crashed);
  a.signal = 11;
  Record b = a;
  b.seq = 99;
  EXPECT_TRUE(a.same_outcome(b));
  b.signal = 6;
  EXPECT_FALSE(a.same_outcome(b));
  Record c = make_record(1, "none", "0,1", OutcomeKind::Violation);
  c.violations.push_back({"conv", "diverged"});
  Record d = c;
  EXPECT_TRUE(c.same_outcome(d));
  d.violations[0].message = "diverged differently";
  EXPECT_FALSE(c.same_outcome(d));
}

// ---------------------------------------------------------------------------
// Store durability
// ---------------------------------------------------------------------------

TEST(CorpusStore, AppendLookupReopen) {
  const std::string dir = tmp_store("roundtrip");
  {
    Store store = Store::open(dir);
    EXPECT_EQ(store.size(), 0u);
    store.append(make_record(1, "none", "0,1,2"));
    Record crash = make_record(1, "drop:1", "0,1,2", OutcomeKind::Crashed);
    crash.signal = 11;
    store.append(crash);
    Record viol = make_record(2, "none", "2,1,0", OutcomeKind::Violation);
    viol.violations.push_back({"replicas_converge", "diverged"});
    store.append(viol);
    EXPECT_EQ(store.size(), 3u);
    EXPECT_EQ(store.stats().appended, 3u);
  }
  Store store = Store::open(dir);
  EXPECT_EQ(store.size(), 3u);
  EXPECT_EQ(store.stats().loaded, 3u);
  const Record* crash = store.lookup(1, "drop:1", "0,1,2");
  ASSERT_NE(crash, nullptr);
  EXPECT_EQ(crash->kind, OutcomeKind::Crashed);
  EXPECT_EQ(crash->signal, 11);
  const Record* viol = store.lookup(2, "none", "2,1,0");
  ASSERT_NE(viol, nullptr);
  ASSERT_EQ(viol->violations.size(), 1u);
  EXPECT_EQ(viol->violations[0].assertion, "replicas_converge");
  EXPECT_EQ(store.lookup(3, "none", "0,1,2"), nullptr);
}

TEST(CorpusStore, FingerprintsNamespaceRecords) {
  const std::string dir = tmp_store("namespace");
  Store store = Store::open(dir);
  store.append(make_record(0xaaa, "none", "0,1", OutcomeKind::Pass));
  Record other = make_record(0xbbb, "none", "0,1", OutcomeKind::Violation);
  other.violations.push_back({"conv", "diverged"});
  store.append(other);
  EXPECT_EQ(store.size(), 2u);
  ASSERT_NE(store.lookup(0xaaa, "none", "0,1"), nullptr);
  EXPECT_EQ(store.lookup(0xaaa, "none", "0,1")->kind, OutcomeKind::Pass);
  ASSERT_NE(store.lookup(0xbbb, "none", "0,1"), nullptr);
  EXPECT_EQ(store.lookup(0xbbb, "none", "0,1")->kind, OutcomeKind::Violation);
}

TEST(CorpusStore, LastAppendWins) {
  const std::string dir = tmp_store("lastwins");
  {
    Store store = Store::open(dir);
    store.append(make_record(1, "none", "0,1", OutcomeKind::Pass));
    Record flipped = make_record(1, "none", "0,1", OutcomeKind::Violation);
    flipped.violations.push_back({"conv", "diverged"});
    store.append(flipped);
    EXPECT_EQ(store.size(), 1u);
    EXPECT_EQ(store.lookup(1, "none", "0,1")->kind, OutcomeKind::Violation);
  }
  // The overwrite survives reload (segments replay in order, last wins).
  Store store = Store::open(dir);
  ASSERT_EQ(store.size(), 1u);
  EXPECT_EQ(store.lookup(1, "none", "0,1")->kind, OutcomeKind::Violation);
}

TEST(CorpusStore, RollsSegmentsAtConfiguredInterval) {
  const std::string dir = tmp_store("roll");
  StoreOptions options;
  options.segment_roll_records = 3;
  options.auto_compact_segments = 0;  // keep segments visible
  Store store = Store::open(dir, options);
  for (int i = 0; i < 8; ++i) {
    store.append(make_record(1, "none", "0," + std::to_string(i)));
  }
  EXPECT_EQ(store.segment_count(), 3u);  // 3 + 3 + 2
  Store reopened = Store::open(dir, options);
  EXPECT_EQ(reopened.size(), 8u);
}

TEST(CorpusStore, ToleratesTornSegmentTail) {
  const std::string dir = tmp_store("torn");
  StoreOptions options;
  options.auto_compact_segments = 0;
  std::string segment;
  {
    Store store = Store::open(dir, options);
    store.append(make_record(1, "none", "0,1"));
    store.append(make_record(1, "none", "1,0"));
    segment = dir + "/seg-000001.jsonl";
  }
  ASSERT_TRUE(fs::exists(segment));
  {
    // A SIGKILL mid-write leaves a partial trailing line.
    std::ofstream out(segment, std::ios::app);
    out << R"({"fp":"0000000000000001","plan":"none","il":"2,)";
  }
  Store store = Store::open(dir, options);
  EXPECT_EQ(store.size(), 2u);
  EXPECT_EQ(store.stats().torn_lines, 1u);
  ASSERT_NE(store.lookup(1, "none", "1,0"), nullptr);
}

// ---------------------------------------------------------------------------
// Compaction + eviction
// ---------------------------------------------------------------------------

TEST(CorpusStore, CompactFoldsSegmentsIntoSortedIndex) {
  const std::string dir = tmp_store("compact");
  StoreOptions options;
  options.segment_roll_records = 2;
  options.auto_compact_segments = 0;
  Store store = Store::open(dir, options);
  store.append(make_record(2, "none", "1,0"));
  store.append(make_record(1, "drop:1", "0,1"));
  store.append(make_record(1, "none", "0,1"));
  EXPECT_GE(store.segment_count(), 1u);
  store.compact();
  EXPECT_EQ(store.segment_count(), 0u);
  EXPECT_EQ(store.stats().compactions, 1u);
  EXPECT_FALSE(fs::exists(dir + "/index.jsonl.tmp"));
  // Index lines (after the header) are sorted by (fingerprint, plan, il).
  const auto lines = file_lines(dir + "/index.jsonl");
  ASSERT_EQ(lines.size(), 4u);
  EXPECT_LT(lines[1], lines[2]);
  EXPECT_LT(lines[2], lines[3]);
  // Everything is still there — in memory and after reopen.
  EXPECT_EQ(store.size(), 3u);
  store.append(make_record(3, "none", "0,1"));
  Store reopened = Store::open(dir, options);
  EXPECT_EQ(reopened.size(), 4u);
}

TEST(CorpusStore, ForEachSortedVisitsDeterministically) {
  const std::string dir = tmp_store("sorted");
  Store store = Store::open(dir);
  store.append(make_record(2, "none", "1,0"));
  store.append(make_record(1, "drop:1", "0,1"));
  store.append(make_record(1, "none", "0,1"));
  std::vector<std::string> visited;
  store.for_each_sorted([&](const Record& r) { visited.push_back(r.plan + "/" + r.il); });
  const std::vector<std::string> expected = {"drop:1/0,1", "none/0,1", "none/1,0"};
  EXPECT_EQ(visited, expected);
}

TEST(CorpusStore, AutoCompactsWhenSegmentsPileUp) {
  const std::string dir = tmp_store("autocompact");
  StoreOptions options;
  options.segment_roll_records = 1;  // one record per segment
  options.auto_compact_segments = 4;
  for (int run = 0; run < 4; ++run) {
    Store store = Store::open(dir, options);
    store.append(make_record(1, "none", "run," + std::to_string(run)));
  }
  // The 5th open sees >= 4 segments and folds them into the index.
  Store store = Store::open(dir, options);
  EXPECT_EQ(store.size(), 4u);
  EXPECT_EQ(store.segment_count(), 0u);
  EXPECT_TRUE(fs::exists(dir + "/index.jsonl"));
}

TEST(CorpusStore, CompactionEvictsLeastRecentlyConfirmedFirst) {
  const std::string dir = tmp_store("evict");
  StoreOptions options;
  options.max_records = 2;
  options.auto_compact_segments = 0;
  Store store = Store::open(dir, options);
  store.append(make_record(1, "none", "old"));
  store.begin_run();
  store.append(make_record(1, "none", "mid"));
  store.begin_run();
  // Re-confirm "old" in the newest epoch: recency refresh must spare it.
  ASSERT_NE(store.lookup(1, "none", "old"), nullptr);
  store.append(make_record(1, "none", "new"));
  store.compact();
  EXPECT_EQ(store.size(), 2u);
  EXPECT_EQ(store.stats().evicted, 1u);
  EXPECT_EQ(store.lookup(1, "none", "mid"), nullptr);  // least recently confirmed
  EXPECT_NE(store.lookup(1, "none", "old"), nullptr);
  EXPECT_NE(store.lookup(1, "none", "new"), nullptr);
  // The refreshed recency was persisted by the compaction.
  Store reopened = Store::open(dir, options);
  EXPECT_EQ(reopened.size(), 2u);
  EXPECT_NE(reopened.lookup(1, "none", "old"), nullptr);
}

TEST(CorpusStore, RunEpochsSurviveReopen) {
  const std::string dir = tmp_store("epochs");
  uint64_t first = 0;
  {
    Store store = Store::open(dir);
    first = store.current_seq();
    store.append(make_record(1, "none", "0,1"));
  }
  Store store = Store::open(dir);
  // A later run's epoch is strictly newer than anything persisted before.
  EXPECT_GT(store.current_seq(), first);
  store.for_each_sorted([&](const Record& record) {
    EXPECT_GT(store.current_seq(), record.seq);  // loaded, not yet re-confirmed
  });
}

}  // namespace
}  // namespace erpi::corpus
