// Tests for the remaining util pieces: Result/Status, Rng, hashing, strings.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "util/hash.hpp"
#include "util/result.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace erpi::util {
namespace {

// ---------------------------------------------------------------------------
// Result / Status
// ---------------------------------------------------------------------------

TEST(Result, ValueAccess) {
  Result<int> ok(7);
  EXPECT_TRUE(ok.has_value());
  EXPECT_EQ(ok.value(), 7);
  EXPECT_EQ(ok.value_or(0), 7);
}

TEST(Result, ErrorAccess) {
  Result<int> bad = Result<int>::fail("boom");
  EXPECT_FALSE(bad);
  EXPECT_EQ(bad.error().message, "boom");
  EXPECT_EQ(bad.value_or(9), 9);
  EXPECT_THROW(bad.value(), std::logic_error);
}

TEST(Result, TakeMovesValue) {
  Result<std::string> r(std::string("movable"));
  const std::string taken = std::move(r).take();
  EXPECT_EQ(taken, "movable");
}

TEST(Status, OkAndFail) {
  EXPECT_TRUE(Status::ok());
  const Status s = Status::fail("nope");
  EXPECT_FALSE(s);
  EXPECT_EQ(s.error().message, "nope");
  EXPECT_THROW(Status::ok().error(), std::logic_error);
}

// ---------------------------------------------------------------------------
// Rng
// ---------------------------------------------------------------------------

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next() == b.next() ? 1 : 0;
  EXPECT_LT(same, 4);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(7);
  for (uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.below(bound), bound);
  }
}

TEST(Rng, BelowCoversAllResidues) {
  Rng rng(99);
  std::set<uint64_t> seen;
  for (int i = 0; i < 300; ++i) seen.insert(rng.below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, ShuffleIsAPermutation) {
  Rng rng(5);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, Uniform01InRange) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform01();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, RangeInclusive) {
  Rng rng(13);
  std::set<int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    const int64_t x = rng.range(-2, 2);
    EXPECT_GE(x, -2);
    EXPECT_LE(x, 2);
    seen.insert(x);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, ReseedRestartsStream) {
  Rng rng(42);
  const uint64_t first = rng.next();
  rng.next();
  rng.reseed(42);
  EXPECT_EQ(rng.next(), first);
}

// ---------------------------------------------------------------------------
// Hashing
// ---------------------------------------------------------------------------

TEST(Fnv1a, KnownValues) {
  // standard FNV-1a 64 test vectors
  EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(fnv1a64("foobar"), 0x85944171f73967e8ULL);
}

TEST(Fnv1aHasher, ComposesDeterministically) {
  Fnv1aHasher h1;
  h1.bytes("abc").u64(42).i64(-1);
  Fnv1aHasher h2;
  h2.bytes("abc").u64(42).i64(-1);
  EXPECT_EQ(h1.digest(), h2.digest());
  Fnv1aHasher h3;
  h3.bytes("abc").u64(43).i64(-1);
  EXPECT_NE(h1.digest(), h3.digest());
}

TEST(Sha1, KnownVectors) {
  EXPECT_EQ(Sha1::hex(""), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
  EXPECT_EQ(Sha1::hex("abc"), "a9993e364706816aba3e25717850c26c9cd0d89d");
  EXPECT_EQ(Sha1::hex("The quick brown fox jumps over the lazy dog"),
            "2fd4e1c67a2d28fced849ee1bb76e7391b93eb12");
}

TEST(Sha1, IncrementalMatchesOneShot) {
  Sha1 s;
  s.update("The quick brown fox ");
  s.update("jumps over the lazy dog");
  EXPECT_EQ(to_hex(s.finish()), "2fd4e1c67a2d28fced849ee1bb76e7391b93eb12");
}

TEST(Sha1, LongInputCrossesBlockBoundaries) {
  const std::string block(1000, 'a');
  // SHA1 of 1000 'a' characters (verified against coreutils sha1sum)
  EXPECT_EQ(Sha1::hex(block), "291e9a6c66994949b57ba5e650361e98fc36b1ba");
}

// ---------------------------------------------------------------------------
// strings
// ---------------------------------------------------------------------------

TEST(Strings, SplitPreservesEmptyFields) {
  EXPECT_EQ(split("a,b,,c", ','), (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(split("solo", ','), (std::vector<std::string>{"solo"}));
}

TEST(Strings, JoinInvertsSplit) {
  const std::vector<std::string> parts{"x", "y", "z"};
  EXPECT_EQ(join(parts, "-"), "x-y-z");
  EXPECT_EQ(split(join(parts, ","), ','), parts);
}

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  a b \t\n"), "a b");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim(" \t "), "");
}

TEST(Strings, StartsEndsWith) {
  EXPECT_TRUE(starts_with("prefix-body", "prefix"));
  EXPECT_FALSE(starts_with("pre", "prefix"));
  EXPECT_TRUE(ends_with("body-suffix", "suffix"));
  EXPECT_FALSE(ends_with("fix", "suffix"));
}

TEST(Strings, PadNumber) {
  EXPECT_EQ(pad_number(7, 3), "007");
  EXPECT_EQ(pad_number(1234, 3), "1234");
}

}  // namespace
}  // namespace erpi::util
