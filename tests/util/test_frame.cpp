// Shared 4-byte length-prefixed framing (util/frame.hpp) — the wire format
// under both the sandbox control/data protocol and the exploration service.
// Malformed-input coverage: oversized length headers, truncated payloads,
// zero-length frames, and payloads dribbled across many read() boundaries.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <cstdint>
#include <cstring>
#include <string>
#include <thread>

#include "util/frame.hpp"

namespace erpi::util {
namespace {

struct SocketPair {
  int a = -1;
  int b = -1;
  SocketPair() {
    int fds[2] = {-1, -1};
    EXPECT_EQ(0, ::socketpair(AF_UNIX, SOCK_STREAM, 0, fds));
    a = fds[0];
    b = fds[1];
  }
  ~SocketPair() {
    close_a();
    if (b >= 0) ::close(b);
  }
  void close_a() {
    if (a >= 0) ::close(a);
    a = -1;
  }
};

void send_all_raw(int fd, const void* data, size_t len) {
  const char* p = static_cast<const char*>(data);
  while (len > 0) {
    const ssize_t n = ::send(fd, p, len, MSG_NOSIGNAL);
    ASSERT_GT(n, 0);
    p += n;
    len -= static_cast<size_t>(n);
  }
}

TEST(Frame, RoundTripsPayloads) {
  SocketPair pair;
  const std::string payloads[] = {"x", R"({"op":"ping"})", std::string(100'000, 'z')};
  for (const auto& payload : payloads) {
    ASSERT_TRUE(write_frame(pair.a, payload));
    const auto got = read_frame(pair.b);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, payload);
  }
}

TEST(Frame, ZeroLengthFrameRoundTrips) {
  SocketPair pair;
  ASSERT_TRUE(write_frame(pair.a, ""));
  const auto got = read_frame(pair.b);
  ASSERT_TRUE(got.has_value());
  EXPECT_TRUE(got->empty());
}

TEST(Frame, OversizedLengthHeaderIsRejected) {
  SocketPair pair;
  const uint32_t huge = kMaxFrameBytes + 1;
  send_all_raw(pair.a, &huge, sizeof(huge));
  EXPECT_FALSE(read_frame(pair.b).has_value());
}

TEST(Frame, TruncatedHeaderIsEof) {
  SocketPair pair;
  const char partial[2] = {0x10, 0x00};  // 2 of the 4 length bytes
  send_all_raw(pair.a, partial, sizeof(partial));
  pair.close_a();
  EXPECT_FALSE(read_frame(pair.b).has_value());
}

TEST(Frame, TruncatedPayloadIsEof) {
  SocketPair pair;
  const uint32_t claimed = 10;
  send_all_raw(pair.a, &claimed, sizeof(claimed));
  send_all_raw(pair.a, "abc", 3);  // 3 of the promised 10 bytes
  pair.close_a();
  EXPECT_FALSE(read_frame(pair.b).has_value());
}

TEST(Frame, ReassemblesAcrossManyPartialReads) {
  // Dribble the frame a byte at a time from another thread: read_frame must
  // keep recv()ing until the full length-prefixed payload arrives, no matter
  // where the kernel splits it.
  SocketPair pair;
  const std::string payload = "partial-read-reassembly-payload";
  uint32_t len = static_cast<uint32_t>(payload.size());
  std::string wire(reinterpret_cast<const char*>(&len), sizeof(len));
  wire += payload;
  std::thread dribbler([&] {
    for (const char byte : wire) {
      send_all_raw(pair.a, &byte, 1);
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });
  const auto got = read_frame(pair.b);
  dribbler.join();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, payload);
}

TEST(Frame, WaitReadableTimesOutThenSignals) {
  SocketPair pair;
  EXPECT_EQ(0, wait_readable(pair.b, 10));
  ASSERT_TRUE(write_frame(pair.a, "ready"));
  EXPECT_GT(wait_readable(pair.b, 1000), 0);
  EXPECT_EQ(read_frame(pair.b).value_or(""), "ready");
}

TEST(Frame, PeerCloseCountsAsReadableEof) {
  SocketPair pair;
  pair.close_a();
  // POLLHUP must count as readable so callers discover the EOF promptly...
  EXPECT_GT(wait_readable(pair.b, 1000), 0);
  // ...and the read then reports end-of-stream, not a frame.
  EXPECT_FALSE(read_frame(pair.b).has_value());
}

TEST(Frame, WriteToClosedPeerFails) {
  SocketPair pair;
  ::close(pair.b);
  pair.b = -1;
  // The first write may land in the (now orphaned) buffer; repeated writes
  // must surface the EPIPE as `false` instead of killing the process
  // (frames are sent with MSG_NOSIGNAL).
  bool failed = false;
  for (int i = 0; i < 64 && !failed; ++i) {
    failed = !write_frame(pair.a, std::string(4096, 'x'));
  }
  EXPECT_TRUE(failed);
}

}  // namespace
}  // namespace erpi::util
