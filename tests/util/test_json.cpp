#include "util/json.hpp"

#include <gtest/gtest.h>

namespace erpi::util {
namespace {

TEST(JsonValue, DefaultIsNull) {
  Json j;
  EXPECT_TRUE(j.is_null());
  EXPECT_EQ(j.dump(), "null");
}

TEST(JsonValue, Scalars) {
  EXPECT_EQ(Json(true).dump(), "true");
  EXPECT_EQ(Json(false).dump(), "false");
  EXPECT_EQ(Json(int64_t{42}).dump(), "42");
  EXPECT_EQ(Json(-7).dump(), "-7");
  EXPECT_EQ(Json("hi").dump(), "\"hi\"");
  EXPECT_EQ(Json(1.5).dump(), "1.5");
}

TEST(JsonValue, ObjectBuildingAndLookup) {
  Json j = Json::object();
  j["b"] = 2;
  j["a"] = 1;
  EXPECT_TRUE(j.contains("a"));
  EXPECT_FALSE(j.contains("zz"));
  EXPECT_EQ(j["a"].as_int(), 1);
  // deterministic (sorted) serialization
  EXPECT_EQ(j.dump(), "{\"a\":1,\"b\":2}");
  const Json& cj = j;
  EXPECT_TRUE(cj["missing"].is_null());
}

TEST(JsonValue, NullAutoVivifiesToObject) {
  Json j;
  j["x"] = "y";
  EXPECT_TRUE(j.is_object());
}

TEST(JsonValue, ArrayOperations) {
  Json j = Json::array();
  j.push_back(1);
  j.push_back("two");
  EXPECT_EQ(j.size(), 2u);
  EXPECT_EQ(j.at(0).as_int(), 1);
  EXPECT_EQ(j.at(1).as_string(), "two");
  EXPECT_THROW(j.at(5), std::out_of_range);
}

TEST(JsonValue, TypeMismatchThrows) {
  Json j(42);
  EXPECT_THROW(j.as_string(), std::logic_error);
  EXPECT_THROW(j.as_array(), std::logic_error);
  EXPECT_NO_THROW(j.as_double());  // int widens to double
}

TEST(JsonValue, EqualityIsDeep) {
  auto a = Json::parse(R"({"x":[1,2,{"y":null}],"z":true})").take();
  auto b = Json::parse(R"({"z":true,"x":[1,2,{"y":null}]})").take();
  EXPECT_TRUE(a == b);
  auto c = Json::parse(R"({"z":false,"x":[1,2,{"y":null}]})").take();
  EXPECT_FALSE(a == c);
}

TEST(JsonValue, NumericCrossRepresentationEquality) {
  EXPECT_TRUE(Json(2) == Json(2.0));
  EXPECT_FALSE(Json(2) == Json(2.5));
}

TEST(JsonParse, RejectsTrailingGarbage) {
  EXPECT_FALSE(Json::parse("{} x"));
  EXPECT_FALSE(Json::parse("1 2"));
}

TEST(JsonParse, RejectsMalformedDocuments) {
  for (const char* bad : {"", "{", "[1,", "{\"a\"}", "{\"a\":}", "tru", "nul",
                          "\"unterminated", "01x", "[1 2]", "{\"a\":1,}",
                          "\"bad \\q escape\""}) {
    EXPECT_FALSE(Json::parse(bad)) << bad;
  }
}

TEST(JsonParse, ErrorsCarryLineAndColumn) {
  const auto result = Json::parse("{\n  \"a\": ?\n}");
  ASSERT_FALSE(result);
  EXPECT_NE(result.error().message.find("line 2"), std::string::npos);
}

TEST(JsonParse, StringEscapes) {
  const auto j = Json::parse(R"("a\"b\\c\nd\teA")").take();
  EXPECT_EQ(j.as_string(), "a\"b\\c\nd\teA");
}

TEST(JsonParse, UnicodeSurrogatePairs) {
  const auto j = Json::parse(R"("😀")").take();  // emoji
  EXPECT_EQ(j.as_string(), "\xF0\x9F\x98\x80");
  EXPECT_FALSE(Json::parse(R"("\ud83d")"));    // lone high surrogate
  EXPECT_FALSE(Json::parse(R"("\ud83dxx")"));  // not followed by \u
}

TEST(JsonParse, Numbers) {
  EXPECT_EQ(Json::parse("0").take().as_int(), 0);
  EXPECT_EQ(Json::parse("-12345").take().as_int(), -12345);
  EXPECT_DOUBLE_EQ(Json::parse("0.25").take().as_double(), 0.25);
  EXPECT_DOUBLE_EQ(Json::parse("1e3").take().as_double(), 1000.0);
  EXPECT_DOUBLE_EQ(Json::parse("-2.5E-2").take().as_double(), -0.025);
  // int64 overflow falls back to double
  EXPECT_TRUE(Json::parse("99999999999999999999999").take().is_double());
}

TEST(JsonParse, NestedStructures) {
  const auto j = Json::parse(R"({"a":{"b":{"c":[1,[2,[3]]]}}})").take();
  EXPECT_EQ(j["a"]["b"]["c"].at(1).at(1).at(0).as_int(), 3);
}

// Round-trip property: dump(parse(dump(x))) == dump(x) across a corpus.
class JsonRoundTrip : public ::testing::TestWithParam<const char*> {};

TEST_P(JsonRoundTrip, DumpParseDumpIsStable) {
  const auto first = Json::parse(GetParam());
  ASSERT_TRUE(first) << first.error().message;
  const std::string once = first.value().dump();
  const auto second = Json::parse(once);
  ASSERT_TRUE(second);
  EXPECT_EQ(second.value().dump(), once);
  EXPECT_TRUE(second.value() == first.value());
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, JsonRoundTrip,
    ::testing::Values(R"(null)", R"(true)", R"(-3)", R"(3.25)", R"("")",
                      R"("x\ny")", R"([])", R"([[],[[]]])", R"({})",
                      R"({"k":"v"})", R"({"a":[1,2,3],"b":{"c":null}})",
                      R"([{"deep":{"er":[true,false,null,0.5]}}])"));

TEST(JsonPretty, IndentsNestedValues) {
  auto j = Json::parse(R"({"a":[1],"b":{}})").take();
  const std::string pretty = j.pretty(2);
  EXPECT_NE(pretty.find("\n  \"a\": [\n    1\n  ]"), std::string::npos);
}

TEST(JsonDump, ControlCharactersEscaped) {
  Json j(std::string("\x01 bell\x07"));
  EXPECT_EQ(j.dump(), "\"\\u0001 bell\\u0007\"");
}

}  // namespace
}  // namespace erpi::util
