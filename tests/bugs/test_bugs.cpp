// Bug-registry and misconception tests: Table-1 metadata integrity, ER-pi
// reproduction of every bug, clean identity interleavings, and Table-2
// misconception recognition.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <tuple>

#include "bugs/misconceptions.hpp"
#include "bugs/registry.hpp"
#include "subjects/crdt_collection.hpp"

namespace erpi::bugs {
namespace {

TEST(Registry, HasAllTwelveBugsWithPaperMetadata) {
  const auto& bugs = all_bugs();
  ASSERT_EQ(bugs.size(), 12u);
  // Table 1 rows, in order
  const std::vector<std::tuple<std::string, int, int>> expected = {
      {"Roshi-1", 18, 9},      {"Roshi-2", 11, 10},    {"Roshi-3", 40, 21},
      {"OrbitDB-1", 513, 12},  {"OrbitDB-2", 512, 8},  {"OrbitDB-3", 1153, 15},
      {"OrbitDB-4", 583, 18},  {"OrbitDB-5", 557, 24}, {"ReplicaDB-1", 79, 10},
      {"ReplicaDB-2", 23, 14}, {"Yorkie-1", 676, 17},  {"Yorkie-2", 663, 22},
  };
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(bugs[i].name, std::get<0>(expected[i]));
    EXPECT_EQ(bugs[i].issue_number, std::get<1>(expected[i]));
    EXPECT_EQ(bugs[i].event_count, std::get<2>(expected[i]));
  }
  EXPECT_THROW(find_bug("NoSuchBug"), std::invalid_argument);
  EXPECT_EQ(find_bug("Yorkie-2").issue_number, 663);
}

// Each scenario's workload must capture exactly the declared #Events, and
// the identity (captured) interleaving must satisfy the invariants — the
// bug only manifests under reordering.
class BugScenarioContract : public ::testing::TestWithParam<std::string> {};

TEST_P(BugScenarioContract, EventCountMatchesTable1) {
  const auto& bug = find_bug(GetParam());
  auto subject = bug.make_subject();
  proxy::RdlProxy proxy(*subject);
  proxy.start_capture();
  bug.workload(proxy);
  EXPECT_EQ(proxy.captured().size(), static_cast<size_t>(bug.event_count));
}

TEST_P(BugScenarioContract, IdentityInterleavingIsClean) {
  // DFS's first leaf is exactly the captured order; it must satisfy the
  // invariants — the bug only manifests under reordering. (ER-pi's grouped
  // first emission already reorders sync executions next to their sends, so
  // it may legitimately hit the bug immediately.)
  const auto& bug = find_bug(GetParam());
  const auto result = run_bug(bug, core::ExplorationMode::Dfs, /*max_interleavings=*/1);
  EXPECT_FALSE(result.report.reproduced)
      << "the captured order itself violates the invariant";
}

TEST_P(BugScenarioContract, ErPiReproducesWithinTheCap) {
  const auto& bug = find_bug(GetParam());
  const auto result = run_bug(bug, core::ExplorationMode::ErPi, 10'000);
  EXPECT_TRUE(result.report.reproduced);
  EXPECT_GT(result.report.first_violation_index, 0u);
  EXPECT_LE(result.report.first_violation_index, 10'000u);
}

INSTANTIATE_TEST_SUITE_P(AllBugs, BugScenarioContract,
                         ::testing::Values("Roshi-1", "Roshi-2", "Roshi-3", "OrbitDB-1",
                                           "OrbitDB-2", "OrbitDB-3", "OrbitDB-4",
                                           "OrbitDB-5", "ReplicaDB-1", "ReplicaDB-2",
                                           "Yorkie-1", "Yorkie-2"),
                         [](const auto& info) {
                           std::string name = info.param;
                           std::replace(name.begin(), name.end(), '-', '_');
                           return name;
                         });

TEST(Figure8Shape, BaselinesFailOnTheHardBugs) {
  // DFS misses Roshi-3, OrbitDB-4 and OrbitDB-5 within the 10 K cap
  for (const char* name : {"Roshi-3", "OrbitDB-4", "OrbitDB-5"}) {
    const auto dfs = run_bug(find_bug(name), core::ExplorationMode::Dfs, 10'000);
    EXPECT_FALSE(dfs.report.reproduced) << name << " (DFS)";
  }
  // Rand additionally misses Yorkie-2 (default seed)
  for (const char* name : {"Roshi-3", "OrbitDB-4", "OrbitDB-5", "Yorkie-2"}) {
    const auto rand = run_bug(find_bug(name), core::ExplorationMode::Rand, 10'000);
    EXPECT_FALSE(rand.report.reproduced) << name << " (Rand)";
  }
}

TEST(Figure8Shape, BaselinesSucceedOnTheEasyBugs) {
  for (const char* name : {"Roshi-1", "OrbitDB-1", "ReplicaDB-2", "Yorkie-1"}) {
    const auto dfs = run_bug(find_bug(name), core::ExplorationMode::Dfs, 10'000);
    EXPECT_TRUE(dfs.report.reproduced) << name << " (DFS)";
    const auto rand = run_bug(find_bug(name), core::ExplorationMode::Rand, 10'000);
    EXPECT_TRUE(rand.report.reproduced) << name << " (Rand)";
  }
}

TEST(Figure10Shape, ErPiSucceedsWithinTheResourceBudget) {
  const auto& bug = find_bug("OrbitDB-5");
  for (const uint64_t seed : {11ull, 22ull, 33ull}) {
    const auto result = run_bug(bug, core::ExplorationMode::ErPi, UINT64_MAX / 2, seed,
                                /*resource_budget_bytes=*/128 * 1024);
    EXPECT_TRUE(result.report.reproduced) << "seed " << seed;
    EXPECT_FALSE(result.report.crashed);
  }
  // the DFS baseline exhausts the same budget without reproducing
  const auto dfs = run_bug(bug, core::ExplorationMode::Dfs, UINT64_MAX / 2, 11,
                           /*resource_budget_bytes=*/128 * 1024);
  EXPECT_FALSE(dfs.report.reproduced);
  EXPECT_TRUE(dfs.report.crashed);
}

TEST(Misconceptions, Table2MatrixMatchesThePaper) {
  const std::map<std::string, std::set<int>> expected = {
      {"Roshi", {1, 2, 3, 5}}, {"OrbitDB", {1, 5}},         {"ReplicaDB", {1}},
      {"Yorkie", {1, 5}},      {"CRDTs", {1, 2, 3, 4, 5}},
  };
  std::map<std::string, std::set<int>> detected;
  for (const auto& cell : all_misconceptions()) {
    if (detect_misconception(cell)) {
      detected[cell.subject].insert(cell.misconception);
    }
  }
  EXPECT_EQ(detected, expected);
}

TEST(Misconceptions, FixedLibrariesPassTheSeededWorkloads) {
  // Sanity: running the CRDTs #4 detector against the FIXED library (random
  // ids) must not flag anything.
  for (const auto& cell : all_misconceptions()) {
    if (cell.subject != "CRDTs" || cell.misconception != 4) continue;
    MisconceptionScenario fixed = cell;
    fixed.scenario.make_subject = [] {
      subjects::CrdtCollection::Flags flags;
      flags.random_todo_ids = true;
      return std::make_unique<subjects::CrdtCollection>(2, flags);
    };
    EXPECT_FALSE(detect_misconception(fixed, 2000));
  }
}

}  // namespace
}  // namespace erpi::bugs
