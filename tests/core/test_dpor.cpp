// Dynamic partial-order reduction (DESIGN.md §15): footprint grammar and
// conflict rules, the independence learner's decline-when-unsure gates, the
// sleep-set oracle's exact universe accounting, byte-parity with the static
// chain on commuting-free workloads, the cold/warm candidate-reduction gates,
// fingerprint sensitivity to the DPOR options, the paranoid
// replay-and-compare verifier against a planted false independence, and an
// allocation regression on the oracle hot path.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <map>
#include <new>
#include <numeric>
#include <set>
#include <string>
#include <vector>

#include "core/dpor.hpp"
#include "core/enumerate.hpp"
#include "core/pruning.hpp"
#include "core/session.hpp"
#include "faults/explorer.hpp"
#include "proxy/proxy.hpp"
#include "subjects/town.hpp"
#include "util/rng.hpp"

// ---------------------------------------------------------------------------
// Allocation counter (the PR's reserve()d-buffers regression). Counting-only
// global overrides — skipped under sanitizers, whose runtimes own new/delete.
// ---------------------------------------------------------------------------
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define ERPI_ALLOC_COUNTER 0
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define ERPI_ALLOC_COUNTER 0
#else
#define ERPI_ALLOC_COUNTER 1
#endif
#else
#define ERPI_ALLOC_COUNTER 1
#endif

#if ERPI_ALLOC_COUNTER
namespace {
std::atomic<uint64_t> g_allocations{0};
}  // namespace

// The counting overrides forward to malloc/free as a pair; GCC cannot see
// that operator new is malloc-based and flags the free() as mismatched.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif
void* operator new(size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, size_t) noexcept { std::free(p); }
void operator delete[](void* p, size_t) noexcept { std::free(p); }
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif
#endif

namespace erpi::core {
namespace {

util::Json problem(const char* name) {
  util::Json j = util::Json::object();
  j["problem"] = name;
  return j;
}

Footprint fp_writes(std::initializer_list<const char*> keys) {
  Footprint fp;
  for (const char* key : keys) Footprint::insert_key(fp.writes, key);
  return fp;
}

Footprint fp_reads(std::initializer_list<const char*> keys) {
  Footprint fp;
  for (const char* key : keys) Footprint::insert_key(fp.reads, key);
  return fp;
}

proxy::Event update_event(int id, int replica, std::string op) {
  proxy::Event event;
  event.id = id;
  event.kind = proxy::EventKind::Update;
  event.replica = replica;
  event.op = std::move(op);
  event.args = util::Json::object();
  return event;
}

void seed_from_export(const IndependenceLearner::Export& exported,
                      IndependenceLearner& learner) {
  for (const auto& entry : exported.footprints) {
    learner.seed(entry.context, entry.event, entry.fp, entry.runs);
  }
  for (const auto& verdict : exported.verdicts) {
    learner.seed_verdict(verdict.a, verdict.b, verdict.independent);
  }
}

// ---------------------------------------------------------------------------
// Footprint grammar
// ---------------------------------------------------------------------------

TEST(Dpor, KeyConflictGrammar) {
  EXPECT_TRUE(footprint_keys_conflict("r0/problems", "r0/problems"));
  EXPECT_FALSE(footprint_keys_conflict("r0/problems", "r1/problems"));
  EXPECT_FALSE(footprint_keys_conflict("r0/problems", "r0/oplog"));
  // Trailing '*' is a prefix wildcard.
  EXPECT_TRUE(footprint_keys_conflict("r0/*", "r0/problems"));
  EXPECT_TRUE(footprint_keys_conflict("r0/problems", "r0/*"));
  EXPECT_FALSE(footprint_keys_conflict("r0/*", "r1/problems"));
  EXPECT_TRUE(footprint_keys_conflict("r0/*", "r0/*"));
  EXPECT_TRUE(footprint_keys_conflict("*", "chan/0->1"));
  EXPECT_FALSE(footprint_keys_conflict("chan/0->1", "chan/1->0"));
}

TEST(Dpor, FootprintMergeUnionsAndReportsWidening) {
  Footprint a = fp_writes({"r0/x"});
  EXPECT_FALSE(a.merge(fp_writes({"r0/x"})));  // no-op merge
  EXPECT_TRUE(a.merge(fp_writes({"r0/y"})));
  EXPECT_EQ(a.writes.size(), 2u);
  EXPECT_TRUE(std::is_sorted(a.writes.begin(), a.writes.end()));
  Footprint s;
  s.sync = true;
  EXPECT_TRUE(a.merge(s));
  EXPECT_TRUE(a.sync);
  EXPECT_FALSE(a.merge(s));  // sync already set
}

TEST(Dpor, FootprintsConflictOnlyThroughWrites) {
  const Footprint ra = fp_reads({"r0/x"});
  const Footprint rb = fp_reads({"r0/x"});
  EXPECT_FALSE(footprints_conflict(ra, rb));  // read/read commutes
  EXPECT_TRUE(footprints_conflict(ra, fp_writes({"r0/x"})));
  EXPECT_TRUE(footprints_conflict(fp_writes({"r0/x"}), fp_writes({"r0/x"})));
  EXPECT_FALSE(footprints_conflict(fp_writes({"r0/x"}), fp_writes({"r0/y"})));
}

TEST(Dpor, RecorderFlushesPerEventAndIgnoresStrayNotes) {
  std::map<int, Footprint> seen;
  FootprintRecorder recorder(
      [&](int id, Footprint&& fp) { seen[id] = std::move(fp); });
  recorder.note_write(0, "ghost");  // outside any event: dropped
  recorder.begin_event(7);
  recorder.note_read(0, "problems");
  recorder.note_write(0, "problems");
  recorder.note_write(0, "problems");  // deduplicated
  recorder.note_channel_write(0, 1);
  recorder.note_sync();
  EXPECT_EQ(recorder.note_count(), 4u);
  recorder.end_event();
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[7].reads, (std::vector<std::string>{"r0/problems"}));
  EXPECT_EQ(seen[7].writes, (std::vector<std::string>{"chan/0->1", "r0/problems"}));
  EXPECT_TRUE(seen[7].sync);
}

// ---------------------------------------------------------------------------
// IndependenceLearner gates
// ---------------------------------------------------------------------------

TEST(Dpor, LearnerDeclinesUnobservedPairs) {
  IndependenceLearner learner;
  learner.observe("none", 0, fp_writes({"r0/x"}));
  // Event 1 was never observed: decline even though nothing is known to
  // conflict.
  EXPECT_FALSE(learner.independent(0, 1));
  EXPECT_FALSE(learner.independent(0, 0));  // an event never commutes with itself
  learner.observe("none", 1, fp_writes({"r1/x"}));
  EXPECT_TRUE(learner.independent(0, 1));
  EXPECT_TRUE(learner.independent(1, 0));  // symmetric
}

TEST(Dpor, LearnerHappensBeforeOnSharedSyncChannel) {
  proxy::EventSet events;
  proxy::Event req = update_event(0, 0, proxy::kSyncReqOp);
  req.kind = proxy::EventKind::SyncReq;
  req.from = 0;
  req.to = 1;
  proxy::Event exec = update_event(1, 1, proxy::kExecSyncOp);
  exec.kind = proxy::EventKind::ExecSync;
  exec.from = 0;
  exec.to = 1;
  events.push_back(req);
  events.push_back(exec);
  IndependenceLearner learner;
  learner.set_events(events);
  // Even with disjoint (lying) footprints the channel edge wins.
  learner.observe("none", 0, fp_writes({"a"}));
  learner.observe("none", 1, fp_writes({"b"}));
  EXPECT_FALSE(learner.independent(0, 1));
}

TEST(Dpor, SyncTrustGateOpensAtTwoRuns) {
  Footprint synced = fp_writes({"chan/0->1"});
  synced.sync = true;
  IndependenceLearner cold;
  cold.observe("none", 0, synced);
  cold.observe("none", 1, fp_writes({"r1/x"}));
  cold.note_training_run();
  // Disjoint, but one side is sync-flavoured and only 1 run confirmed it.
  ASSERT_EQ(cold.runs_observed(0), 1u);
  EXPECT_FALSE(cold.independent(0, 1));
  // Non-sync pairs do not need the gate.
  cold.observe("none", 2, fp_writes({"r0/x"}));
  EXPECT_TRUE(cold.independent(1, 2));

  IndependenceLearner warm;
  seed_from_export(cold.export_state(), warm);
  warm.observe("none", 0, synced);
  warm.observe("none", 1, fp_writes({"r1/x"}));
  warm.note_training_run();
  ASSERT_GE(warm.runs_observed(0), kSyncTrustRuns);
  EXPECT_TRUE(warm.independent(0, 1));
}

TEST(Dpor, ContextsUnionConservatively) {
  IndependenceLearner learner;
  learner.observe("none", 0, fp_writes({"r0/x"}));
  learner.observe("none", 1, fp_writes({"r1/x"}));
  EXPECT_TRUE(learner.independent(0, 1));
  // Under a fault plan the same event touched the other replica too: the
  // combined view must widen and the pair must flip to dependent.
  learner.observe("drop", 0, fp_writes({"r1/x"}));
  EXPECT_FALSE(learner.independent(0, 1));
}

TEST(Dpor, ParanoidRequiresVerdictAndRefutationIsPermanent) {
  DporOptions options;
  options.paranoid = true;
  IndependenceLearner learner(options);
  learner.observe("none", 0, fp_writes({"r0/x"}));
  learner.observe("none", 1, fp_writes({"r1/x"}));
  EXPECT_FALSE(learner.independent(0, 1));  // no verdict yet
  EXPECT_EQ(learner.unverified_candidate_pairs(),
            (std::vector<std::pair<int, int>>{{0, 1}}));
  learner.record_verdict(0, 1, true);
  EXPECT_TRUE(learner.independent(0, 1));
  learner.record_verdict(0, 1, false);  // refutation wins...
  EXPECT_FALSE(learner.independent(0, 1));
  learner.record_verdict(0, 1, true);  // ...and can never be upgraded back
  EXPECT_FALSE(learner.independent(0, 1));
  EXPECT_TRUE(learner.unverified_candidate_pairs().empty());
}

TEST(Dpor, ExportSeedRoundTripPreservesTheRelation) {
  IndependenceLearner original;
  Footprint synced = fp_writes({"r0/x"});
  synced.sync = true;
  original.observe("none", 0, synced);
  original.observe("drop", 1, fp_reads({"r1/y"}));
  original.note_training_run();
  original.record_verdict(0, 1, true);

  IndependenceLearner restored;
  seed_from_export(original.export_state(), restored);
  EXPECT_EQ(original.relation_digest(), restored.relation_digest());
  EXPECT_EQ(original.runs_observed(0), restored.runs_observed(0));
}

TEST(Dpor, RelationDigestIsSensitive) {
  IndependenceLearner learner;
  learner.observe("none", 0, fp_writes({"r0/x"}));
  const uint64_t base = learner.relation_digest();
  learner.observe("none", 0, fp_writes({"r0/y"}));
  const uint64_t widened = learner.relation_digest();
  EXPECT_NE(base, widened);
  learner.record_verdict(0, 1, true);
  EXPECT_NE(widened, learner.relation_digest());
  DporOptions paranoid;
  paranoid.paranoid = true;
  EXPECT_NE(IndependenceLearner(DporOptions{}).relation_digest(),
            IndependenceLearner(paranoid).relation_digest());
}

// ---------------------------------------------------------------------------
// Sleep-set oracle: exact cuts and universe accounting
// ---------------------------------------------------------------------------

struct ExhaustTrace {
  std::vector<std::string> admitted;
  PruningPipeline::Stats stats;
};

ExhaustTrace exhaust_dfs_with_learner(int n, const std::shared_ptr<IndependenceLearner>& learner,
                                      uint64_t branch_seed = 0) {
  std::vector<int> ids(static_cast<size_t>(n));
  std::iota(ids.begin(), ids.end(), 0);
  PruningPipeline pipeline;
  pipeline.set_dynamic_oracle_factory([learner](const OracleDomain& domain) {
    return make_dpor_oracle(domain, learner);
  });
  PrunedEnumerator pruned(std::make_unique<DfsEnumerator>(std::move(ids), branch_seed),
                          std::move(pipeline));
  ExhaustTrace trace;
  while (auto il = pruned.next()) trace.admitted.push_back(il->key());
  trace.stats = pruned.pipeline().stats();
  return trace;
}

TEST(Dpor, SleepSetCutsOneRepresentativePerTraceClass) {
  // Events 0 and 1 commute; 2 conflicts with both. Trace classes of S_3:
  // {012,102} {021} {120} {201,210} — 4 classes out of 6 words.
  auto learner = std::make_shared<IndependenceLearner>();
  learner->observe("none", 0, fp_writes({"r0/x"}));
  learner->observe("none", 1, fp_writes({"r1/x"}));
  learner->observe("none", 2, fp_writes({"r0/x", "r1/x"}));
  const ExhaustTrace trace = exhaust_dfs_with_learner(3, learner);
  EXPECT_EQ(trace.admitted.size(), 4u);
  EXPECT_EQ(trace.stats.admitted + trace.stats.pruned, 6u);
  EXPECT_EQ(trace.stats.pruned_by.at(kDporOracleName), 2u);
}

TEST(Dpor, UntrainedLearnerYieldsNoOracleAndFullUniverse) {
  auto learner = std::make_shared<IndependenceLearner>();
  const ExhaustTrace trace = exhaust_dfs_with_learner(3, learner);
  EXPECT_EQ(trace.admitted.size(), 6u);
  EXPECT_EQ(trace.stats.pruned, 0u);
}

/// Number of Mazurkiewicz trace classes, by union-find over all n!
/// permutations connected by one adjacent independent swap.
size_t count_trace_classes(int n, const IndependenceLearner& learner) {
  std::vector<std::vector<int>> perms;
  std::vector<int> perm(static_cast<size_t>(n));
  std::iota(perm.begin(), perm.end(), 0);
  std::map<std::vector<int>, size_t> index;
  do {
    index[perm] = perms.size();
    perms.push_back(perm);
  } while (std::next_permutation(perm.begin(), perm.end()));
  std::vector<size_t> parent(perms.size());
  std::iota(parent.begin(), parent.end(), size_t{0});
  std::function<size_t(size_t)> find = [&](size_t x) {
    while (parent[x] != x) x = parent[x] = parent[parent[x]];
    return x;
  };
  for (size_t p = 0; p < perms.size(); ++p) {
    for (int i = 0; i + 1 < n; ++i) {
      if (!learner.independent(perms[p][static_cast<size_t>(i)],
                               perms[p][static_cast<size_t>(i) + 1])) {
        continue;
      }
      std::vector<int> swapped = perms[p];
      std::swap(swapped[static_cast<size_t>(i)], swapped[static_cast<size_t>(i) + 1]);
      parent[find(p)] = find(index.at(swapped));
    }
  }
  std::set<size_t> roots;
  for (size_t p = 0; p < perms.size(); ++p) roots.insert(find(p));
  return roots.size();
}

TEST(Dpor, UniverseAccountingFuzz) {
  // Random footprints over a small key pool; for every relation the oracle
  // must (a) account the universe exactly, (b) admit no duplicates, and
  // (c) admit exactly one representative per trace class — soundness AND
  // optimality of the sleep-set cut.
  util::Rng rng(0xd90a11ceULL);
  const char* pool[] = {"r0/a", "r0/b", "r1/a", "r1/b", "chan/0->1"};
  uint64_t total_cut = 0;
  for (int round = 0; round < 40; ++round) {
    const int n = 3 + static_cast<int>(rng() % 4);  // 3..6 events
    auto learner = std::make_shared<IndependenceLearner>();
    for (int id = 0; id < n; ++id) {
      Footprint fp;
      const int keys = 1 + static_cast<int>(rng() % 2);
      for (int k = 0; k < keys; ++k) {
        const char* key = pool[rng() % (sizeof(pool) / sizeof(pool[0]))];
        if (rng() % 2 == 0) {
          Footprint::insert_key(fp.writes, key);
        } else {
          Footprint::insert_key(fp.reads, key);
        }
      }
      fp.sync = rng() % 4 == 0;
      // Seed 2 runs so sync-flavoured footprints are sometimes trusted.
      learner->seed("none", id, fp, rng() % 2 == 0 ? 2u : 1u);
    }
    const uint64_t branch_seed = rng();
    const ExhaustTrace trace = exhaust_dfs_with_learner(n, learner, branch_seed);
    uint64_t universe = 1;
    for (int i = 2; i <= n; ++i) universe *= static_cast<uint64_t>(i);
    EXPECT_EQ(trace.stats.admitted + trace.stats.pruned, universe)
        << "round " << round << " n=" << n << " seed=" << branch_seed;
    const std::set<std::string> unique(trace.admitted.begin(), trace.admitted.end());
    EXPECT_EQ(unique.size(), trace.admitted.size()) << "round " << round;
    EXPECT_EQ(trace.admitted.size(), count_trace_classes(n, *learner))
        << "round " << round << " n=" << n << " seed=" << branch_seed;
    total_cut += trace.stats.pruned;
  }
  EXPECT_GT(total_cut, 0u);  // the fuzz actually exercised cuts
}

// ---------------------------------------------------------------------------
// Allocation regression: the oracle hot path is allocation-free after warmup
// ---------------------------------------------------------------------------

TEST(Dpor, OracleHotPathDoesNotAllocateAfterWarmup) {
#if !ERPI_ALLOC_COUNTER
  GTEST_SKIP() << "allocation counting disabled under sanitizers";
#else
  auto learner = std::make_shared<IndependenceLearner>();
  const int n = 6;
  for (int id = 0; id < n; ++id) {
    learner->observe("none", id, fp_writes({id % 2 == 0 ? "r0/x" : "r1/x"}));
  }
  OracleDomain domain;
  domain.unit_generation = false;
  domain.slot_count = static_cast<size_t>(n);
  domain.event_count = static_cast<size_t>(n);
  domain.rank_of_event.resize(static_cast<size_t>(n));
  std::iota(domain.rank_of_event.begin(), domain.rank_of_event.end(), 0);
  auto oracle = make_dpor_oracle(domain, learner);
  ASSERT_NE(oracle, nullptr);

  std::vector<bool> used(static_cast<size_t>(n), false);
  const std::function<void(int)> walk = [&](int depth) {
    for (int id = 0; id < n; ++id) {
      if (used[static_cast<size_t>(id)]) continue;
      used[static_cast<size_t>(id)] = true;
      const bool viable = oracle->push(id);
      if (viable && depth + 1 < n) walk(depth + 1);
      oracle->pop();
      used[static_cast<size_t>(id)] = false;
    }
  };
  oracle->reset();
  walk(0);  // warmup: frames and marker storage reach steady state
  oracle->reset();
  const uint64_t before = g_allocations.load(std::memory_order_relaxed);
  walk(0);
  const uint64_t after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(after, before) << "oracle push/pop allocated on the hot path";
#endif
}

// ---------------------------------------------------------------------------
// Byte parity with the static chain on a commuting-free workload
// ---------------------------------------------------------------------------

/// Byte-identity form: elapsed time is wall-clock noise; every semantic field
/// of the report participates (same normalization as the corpus reuse tests).
std::string report_digest(ReplayReport report) {
  report.elapsed_seconds = 0.0;
  return report.to_json().dump();
}

/// One replica, every event touching r0/problems: nothing commutes, so the
/// dynamic oracle must change nothing — byte-identical reports.
ReplayReport run_commuting_free(bool dynamic, int parallelism, size_t depth,
                                PruningPipeline::Stats* stats_out) {
  subjects::TownApp town(1);
  proxy::RdlProxy proxy(town);
  Session::Config config;
  config.generation_order = GroupedEnumerator::Order::Lexicographic;
  config.replay.stop_on_violation = false;
  config.replay.max_interleavings = 100'000;
  config.parallelism = parallelism;
  config.max_snapshot_depth = depth;
  config.dynamic_pruning.enabled = dynamic;
  config.subject_factory = [] { return std::make_unique<subjects::TownApp>(1); };
  Session session(proxy, config);
  session.start();
  (void)proxy.update(0, "report", problem("a"));   // e0
  (void)proxy.update(0, "resolve", problem("a"));  // e1
  (void)proxy.update(0, "report", problem("b"));   // e2
  (void)proxy.query(0, "transmit");                // e3
  util::Json expected = util::Json::array();
  expected.push_back("b");
  auto report = session.end([expected](proxy::Rdl&) -> AssertionList {
    return {query_result_equals(3, expected)};
  });
  if (stats_out != nullptr) *stats_out = session.pruning_report().pipeline;
  return report;
}

TEST(DporParity, ByteIdenticalReportsOnCommutingFreeWorkload) {
  for (const int parallelism : {1, 4}) {
    for (const size_t depth : {size_t{0}, size_t{16}}) {
      PruningPipeline::Stats static_stats;
      PruningPipeline::Stats dynamic_stats;
      const ReplayReport off =
          run_commuting_free(false, parallelism, depth, &static_stats);
      const ReplayReport on =
          run_commuting_free(true, parallelism, depth, &dynamic_stats);
      EXPECT_EQ(report_digest(off), report_digest(on))
          << "parallelism=" << parallelism << " depth=" << depth;
      EXPECT_EQ(static_stats.admitted, dynamic_stats.admitted);
      EXPECT_EQ(static_stats.pruned, dynamic_stats.pruned);
      EXPECT_EQ(dynamic_stats.pruned_by.count(kDporOracleName), 0u)
          << "a commuting-free workload must yield zero dynamic cuts";
      EXPECT_GT(off.explored, 0u);
      EXPECT_TRUE(off.reproduced);  // the parity is over a meaningful report
    }
  }
}

// ---------------------------------------------------------------------------
// Commuting-heavy sweep: the cold/warm reduction gates
// ---------------------------------------------------------------------------

struct SweepSession {
  subjects::TownApp town{2};
  proxy::RdlProxy proxy{town};
  std::unique_ptr<Session> session;

  explicit SweepSession(bool dynamic) {
    Session::Config config;
    config.mode = ExplorationMode::Dfs;
    config.dynamic_pruning.enabled = dynamic;
    session = std::make_unique<Session>(proxy, config);
    session->start();
    (void)proxy.update(0, "report", problem("a0"));
    (void)proxy.update(0, "report", problem("a1"));
    (void)proxy.update(0, "report", problem("a2"));
    (void)proxy.update(1, "report", problem("b0"));
    (void)proxy.update(1, "report", problem("b1"));
    (void)proxy.update(1, "report", problem("b2"));
    (void)proxy.sync_req(0, 1);
    (void)proxy.exec_sync(0, 1);
    session->finish_capture();
  }

  PruningPipeline::Stats last_stats;

  uint64_t exhaust() {
    auto enumerator = session->make_enumerator();
    uint64_t admitted = 0;
    while (enumerator->next()) ++admitted;
    if (auto* pruned = dynamic_cast<PrunedEnumerator*>(enumerator.get())) {
      last_stats = pruned->pipeline().stats();
    }
    return admitted;
  }
};

TEST(DporSweep, ColdCutsFiveFoldWarmTenFold) {
  constexpr uint64_t kUniverse = 40320;  // 8!

  SweepSession baseline(/*dynamic=*/false);
  const uint64_t static_admitted = baseline.exhaust();
  EXPECT_EQ(static_admitted, kUniverse);

  // Cold: the priming replay alone — non-sync cross-replica pairs commute,
  // sync-flavoured pairs stay dependent behind the kSyncTrustRuns gate.
  SweepSession cold(/*dynamic=*/true);
  const uint64_t cold_admitted = cold.exhaust();
  ASSERT_NE(cold.session->dpor_learner(), nullptr);
  EXPECT_GE(static_admitted, 5 * cold_admitted)
      << "cold reduction below the 5x gate: " << cold_admitted;

  // Warm: seeded from the cold run's exported footprints, the sync pairs
  // reach kSyncTrustRuns and unlock.
  const auto exported = cold.session->dpor_learner()->export_state();
  SweepSession warm(/*dynamic=*/true);
  warm.session->prepare_dynamic_pruning([&](IndependenceLearner& learner) {
    seed_from_export(exported, learner);
  });
  const uint64_t warm_admitted = warm.exhaust();
  EXPECT_GE(static_admitted, 10 * warm_admitted)
      << "warm reduction below the 10x gate: " << warm_admitted;
  EXPECT_LT(warm_admitted, cold_admitted);

  // Exact universe accounting holds for both dynamic runs.
  EXPECT_EQ(cold.last_stats.admitted + cold.last_stats.pruned, kUniverse);
  EXPECT_EQ(warm.last_stats.admitted + warm.last_stats.pruned, kUniverse);
  EXPECT_GT(cold.last_stats.pruned_by.at(kDporOracleName), 0u);
}

// ---------------------------------------------------------------------------
// Fingerprints hash the DPOR options (journal + corpus namespaces)
// ---------------------------------------------------------------------------

struct FingerprintFixture {
  subjects::TownApp town{2};
  proxy::RdlProxy proxy{town};
  std::unique_ptr<Session> session;

  explicit FingerprintFixture(const DporOptions& options) {
    Session::Config config;
    config.dynamic_pruning = options;
    session = std::make_unique<Session>(proxy, config);
    session->start();
    (void)proxy.update(0, "report", problem("x"));
    (void)proxy.sync_req(0, 1);
    (void)proxy.exec_sync(0, 1);
    session->finish_capture();
    session->prepare_dynamic_pruning();
  }

  std::pair<uint64_t, uint64_t> fingerprints() const {
    const core::ReplayOptions replay;
    return {faults::run_fingerprint(*session, {}, {}, replay,
                                    faults::FingerprintPurpose::Journal),
            faults::run_fingerprint(*session, {}, {}, replay,
                                    faults::FingerprintPurpose::Corpus)};
  }
};

TEST(Dpor, FingerprintsHashEveryDporOption) {
  const auto base = FingerprintFixture(DporOptions{}).fingerprints();

  DporOptions enabled;
  enabled.enabled = true;
  const auto with_enabled = FingerprintFixture(enabled).fingerprints();
  EXPECT_NE(base.first, with_enabled.first);
  EXPECT_NE(base.second, with_enabled.second);

  DporOptions paranoid;
  paranoid.paranoid = true;
  const auto with_paranoid = FingerprintFixture(paranoid).fingerprints();
  EXPECT_NE(base.first, with_paranoid.first);
  EXPECT_NE(base.second, with_paranoid.second);
  EXPECT_NE(with_enabled.first, with_paranoid.first);

  DporOptions schema;
  schema.footprint_schema = kFootprintSchemaVersion + 1;
  const auto with_schema = FingerprintFixture(schema).fingerprints();
  EXPECT_NE(base.first, with_schema.first);
  EXPECT_NE(base.second, with_schema.second);
}

TEST(Dpor, LearnedRelationPinsJournalButNotCorpusFingerprint) {
  DporOptions enabled;
  enabled.enabled = true;
  FingerprintFixture a(enabled);
  FingerprintFixture b(enabled);
  EXPECT_EQ(a.fingerprints(), b.fingerprints());  // priming is deterministic
  // Widen b's relation: the journal namespace must move (a resumed run would
  // regenerate a different stream), the corpus namespace must not (outcomes
  // remain valid under any relation — cuts only skip duplicates).
  b.session->dpor_learner()->observe("test", 0, fp_writes({"zz"}));
  EXPECT_NE(a.fingerprints().first, b.fingerprints().first);
  EXPECT_EQ(a.fingerprints().second, b.fingerprints().second);
}

// ---------------------------------------------------------------------------
// Paranoid replay-and-compare against a planted false independence
// ---------------------------------------------------------------------------

/// The planted lie: ops "a" and "b" claim disjoint footprint registers but
/// actually append to one shared order-sensitive tape. Ops "x" and "y" are
/// honestly disjoint counters.
class LyingPad final : public proxy::Rdl {
 public:
  std::string name() const override { return "lying_pad"; }
  int replica_count() const override { return 1; }

  util::Result<util::Json> invoke(net::ReplicaId, const std::string& op,
                                  const util::Json&) override {
    if (recorder_ != nullptr) recorder_->note_write(0, op);
    if (op == "a" || op == "b") {
      tape_ += op;
    } else if (op == "x") {
      ++x_;
    } else if (op == "y") {
      ++y_;
    }
    return util::Json(true);
  }

  util::Json replica_state(net::ReplicaId) const override {
    util::Json j = util::Json::object();
    j["tape"] = tape_;
    j["x"] = static_cast<int64_t>(x_);
    j["y"] = static_cast<int64_t>(y_);
    return j;
  }

  void reset() override {
    tape_.clear();
    x_ = 0;
    y_ = 0;
  }

  void set_footprint_recorder(core::FootprintRecorder* recorder) override {
    recorder_ = recorder;
  }

 private:
  core::FootprintRecorder* recorder_ = nullptr;
  std::string tape_;
  int x_ = 0;
  int y_ = 0;
};

TEST(DporParanoid, PlantedFalseIndependenceIsRefutedByReplayAndCompare) {
  proxy::EventSet events;
  events.push_back(update_event(0, 0, "a"));
  events.push_back(update_event(1, 0, "b"));
  events.push_back(update_event(2, 0, "x"));
  events.push_back(update_event(3, 0, "y"));

  DporOptions options;
  options.paranoid = true;
  IndependenceLearner learner(options);
  learner.set_events(events);

  // Train from one priming execution of the lying subject.
  LyingPad pad;
  FootprintRecorder recorder(
      [&](int id, Footprint&& fp) { learner.observe("none", id, std::move(fp)); });
  pad.set_footprint_recorder(&recorder);
  for (const auto& event : events) {
    recorder.begin_event(event.id);
    (void)pad.invoke(event.replica, event.op, event.args);
    recorder.end_event();
  }
  pad.set_footprint_recorder(nullptr);
  learner.note_training_run();

  // The footprints alone would cut on the lie — this is exactly what
  // paranoid mode exists to catch.
  IndependenceLearner credulous;
  seed_from_export(learner.export_state(), credulous);
  EXPECT_TRUE(credulous.independent(0, 1));

  const auto factory = [] { return std::unique_ptr<proxy::Rdl>(new LyingPad()); };
  const uint64_t refuted = verify_candidate_pairs(learner, events, factory);
  EXPECT_EQ(refuted, 1u);  // (a, b) — the tape order differs
  EXPECT_FALSE(learner.independent(0, 1));
  EXPECT_TRUE(learner.independent(2, 3));  // (x, y) verified commuting
  const DporStats stats = learner.stats();
  EXPECT_EQ(stats.pairs_refuted, 1u);
  EXPECT_GE(stats.pairs_verified, 1u);
  // No factory: nothing is verified and paranoid mode cuts nothing.
  IndependenceLearner unverified(options);
  seed_from_export(learner.export_state(), unverified);
  EXPECT_EQ(verify_candidate_pairs(unverified, events, nullptr), 0u);
}

}  // namespace
}  // namespace erpi::core
