// Replay-engine tests: reset-per-interleaving, violation reporting, caps,
// resource budget, fast-vs-threaded equivalence under the distributed lock.
#include <gtest/gtest.h>

#include "core/replay.hpp"
#include "core/session.hpp"
#include "kvstore/server.hpp"
#include "subjects/town.hpp"

namespace erpi::core {
namespace {

util::Json problem(const char* name) {
  util::Json j = util::Json::object();
  j["problem"] = name;
  return j;
}

struct Fixture {
  Fixture() : town(2), proxy(town) {
    proxy.start_capture();
    proxy.update(0, "report", problem("otb"));
    proxy.sync_req(0, 1);
    proxy.exec_sync(0, 1);
    proxy.update(1, "resolve", problem("otb"));
    proxy.sync_req(1, 0);
    proxy.exec_sync(1, 0);
    proxy.query(0, "transmit");
    events = proxy.end_capture();
    units = build_units(events);
  }

  std::unique_ptr<Enumerator> enumerator() {
    return std::make_unique<GroupedEnumerator>(units);
  }

  subjects::TownApp town;
  proxy::RdlProxy proxy;
  proxy::EventSet events;
  std::vector<EventUnit> units;
};

TEST(ReplayEngine, ExploresWholeUniverseWithoutStopOnViolation) {
  Fixture fx;
  ReplayOptions options;
  options.stop_on_violation = false;
  options.max_interleavings = 1000;
  ReplayEngine engine(fx.proxy, options);
  auto enumerator = fx.enumerator();
  util::Json expected = util::Json::array();  // empty transmission
  const auto report =
      engine.run(*enumerator, fx.events, {query_result_equals(6, expected)});
  EXPECT_TRUE(report.exhausted);
  EXPECT_EQ(report.explored, 120u);  // 5 units
  EXPECT_GT(report.violations, 0u);  // the synced interleavings transmit {otb}
  EXPECT_LT(report.violations, report.explored);
}

TEST(ReplayEngine, StopsAtFirstViolation) {
  Fixture fx;
  ReplayOptions options;
  ReplayEngine engine(fx.proxy, options);
  auto enumerator = fx.enumerator();
  // identity order transmits {} (otb resolved); expecting {otb} violates later
  util::Json expected = util::Json::array();
  expected.push_back("otb");
  const auto report =
      engine.run(*enumerator, fx.events, {query_result_equals(6, expected)});
  ASSERT_TRUE(report.reproduced);
  EXPECT_EQ(report.violations, 1u);
  EXPECT_EQ(report.first_violation_index, 1u);  // identity itself violates here
  ASSERT_TRUE(report.first_violation);
  EXPECT_FALSE(report.messages.empty());
  EXPECT_EQ(report.first_violation_assertion, "query_result_equals");
}

TEST(ReplayEngine, EachInterleavingStartsFromInitialState) {
  Fixture fx;
  ReplayOptions options;
  options.stop_on_violation = false;
  options.max_interleavings = 10;
  bool state_leak = false;
  options.on_interleaving_done = [&](uint64_t, const Interleaving&) {
    // after each interleaving, replica 0 holds at most one problem; if state
    // leaked across interleavings the set would accumulate
    const auto state = fx.town.replica_state(0);
    if (state["problems"].size() > 1) state_leak = true;
  };
  ReplayEngine engine(fx.proxy, options);
  auto enumerator = fx.enumerator();
  engine.run(*enumerator, fx.events, {});
  EXPECT_FALSE(state_leak);
}

TEST(ReplayEngine, HonorsInterleavingCap) {
  Fixture fx;
  ReplayOptions options;
  options.max_interleavings = 7;
  options.stop_on_violation = false;
  ReplayEngine engine(fx.proxy, options);
  auto enumerator = fx.enumerator();
  const auto report = engine.run(*enumerator, fx.events, {});
  EXPECT_EQ(report.explored, 7u);
  EXPECT_TRUE(report.hit_cap);
  EXPECT_FALSE(report.exhausted);
}

TEST(ReplayEngine, CrashesWhenResourceBudgetExceeded) {
  Fixture fx;
  ReplayOptions options;
  options.stop_on_violation = false;
  options.resource_budget_bytes = 600;  // a handful of explored-log entries
  ReplayEngine engine(fx.proxy, options);
  auto enumerator = fx.enumerator();
  const auto report = engine.run(*enumerator, fx.events, {});
  EXPECT_TRUE(report.crashed);
  EXPECT_LT(report.explored, 120u);
}

TEST(ReplayEngine, ThreadedModeMatchesFastMode) {
  Fixture fast_fx;
  ReplayOptions fast_options;
  fast_options.stop_on_violation = false;
  fast_options.max_interleavings = 24;
  ReplayEngine fast_engine(fast_fx.proxy, fast_options);
  auto fast_enum = fast_fx.enumerator();
  util::Json expected = util::Json::array();
  const auto fast_report =
      fast_engine.run(*fast_enum, fast_fx.events, {query_result_equals(6, expected)});

  Fixture threaded_fx;
  kv::Server lock_server;
  ReplayOptions threaded_options;
  threaded_options.stop_on_violation = false;
  threaded_options.max_interleavings = 24;
  threaded_options.threaded = true;
  threaded_options.lock_server = &lock_server;
  ReplayEngine threaded_engine(threaded_fx.proxy, threaded_options);
  auto threaded_enum = threaded_fx.enumerator();
  const auto threaded_report = threaded_engine.run(*threaded_enum, threaded_fx.events,
                                                   {query_result_equals(6, expected)});

  EXPECT_EQ(fast_report.explored, threaded_report.explored);
  EXPECT_EQ(fast_report.violations, threaded_report.violations);
}

TEST(ReplayReport, JsonSerialization) {
  Fixture fx;
  ReplayOptions options;
  ReplayEngine engine(fx.proxy, options);
  auto enumerator = fx.enumerator();
  util::Json expected = util::Json::array();
  expected.push_back("otb");
  const auto report =
      engine.run(*enumerator, fx.events, {query_result_equals(6, expected)});
  const auto j = report.to_json();
  EXPECT_EQ(j["reproduced"].as_bool(), report.reproduced);
  EXPECT_EQ(j["explored"].as_int(), static_cast<int64_t>(report.explored));
  EXPECT_EQ(j["first_violation"].as_string(), report.first_violation->key());
  EXPECT_FALSE(j["messages"].as_array().empty());
  // round-trips through the JSON layer
  EXPECT_TRUE(util::Json::parse(j.dump()).take() == j);
}

TEST(ReplayEngine, ThreadedModeRequiresLockServer) {
  Fixture fx;
  ReplayOptions options;
  options.threaded = true;
  EXPECT_THROW(ReplayEngine(fx.proxy, options), std::invalid_argument);
}

}  // namespace
}  // namespace erpi::core
