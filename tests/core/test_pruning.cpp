// Pruning-algorithm tests: the four algorithms' worked examples from §3,
// canonicalization soundness, pipeline accounting, Datalog cross-checks.
#include <gtest/gtest.h>

#include <numeric>

#include "core/persist.hpp"
#include "core/pruning.hpp"
#include "proxy/proxy.hpp"
#include "subjects/crdt_collection.hpp"

namespace erpi::core {
namespace {

util::Json jobj(std::initializer_list<std::pair<const char*, util::Json>> kv) {
  util::Json out = util::Json::object();
  for (const auto& [k, v] : kv) out[k] = v;
  return out;
}

/// Count distinct admitted interleavings over ALL permutations of n events.
uint64_t exhaustive_admitted(int n, PruningPipeline& pipeline) {
  std::vector<int> ids(static_cast<size_t>(n));
  std::iota(ids.begin(), ids.end(), 0);
  DfsEnumerator dfs(ids);
  uint64_t admitted = 0;
  while (auto il = dfs.next()) {
    if (pipeline.admit(*il)) ++admitted;
  }
  return admitted;
}

/// A trace matching paper Figure 3: two replicas, eight events, two sync
/// pairs (ev3/ev4 and ev7/ev8 in the paper's numbering).
proxy::EventSet figure3_events() {
  static subjects::CrdtCollection app(2);
  app.reset();
  proxy::RdlProxy proxy(app);
  proxy.start_capture();
  proxy.update(0, "counter_inc", jobj({}));              // ev1
  proxy.update(0, "set_add", jobj({{"element", "x"}}));  // ev2
  proxy.sync_req(0, 1);                                  // ev3
  proxy.exec_sync(0, 1);                                 // ev4
  proxy.update(1, "counter_inc", jobj({}));              // ev5
  proxy.update(1, "set_add", jobj({{"element", "y"}}));  // ev6
  proxy.sync_req(1, 0);                                  // ev7
  proxy.exec_sync(1, 0);                                 // ev8
  return proxy.end_capture();
}

// ---------------------------------------------------------------------------
// Event Grouping (Algorithm 1 / Figure 3)
// ---------------------------------------------------------------------------

TEST(EventGrouping, Figure3ReducesEightEventsToSixUnits) {
  const auto events = figure3_events();
  const auto units = build_units(events);
  EXPECT_EQ(units.size(), 6u);
  EXPECT_EQ(factorial_saturated(events.size()) / factorial_saturated(units.size()),
            56u);  // the paper's 56x
}

TEST(EventGrouping, GroupPrunerCanonicalizesRawSpaceToUnitSpace) {
  const auto events = figure3_events();
  const auto units = build_units(events);
  PruningPipeline pipeline;
  pipeline.add(std::make_unique<GroupPruner>(units));
  EXPECT_EQ(exhaustive_admitted(8, pipeline), 720u);  // 6!
  EXPECT_EQ(pipeline.stats().admitted + pipeline.stats().pruned, 40320u);
  EXPECT_EQ(pipeline.stats().pruned, 40320u - 720u);
  // attribution counts prunes where the pruner rewrote the candidate; the
  // few already-canonical duplicates (whose class representative was seen
  // earlier in rewritten form) fall outside it
  EXPECT_GE(pipeline.stats().pruned_by.at("event_grouping"), 38000u);
  EXPECT_LE(pipeline.stats().pruned_by.at("event_grouping"), 40320u - 720u);
}

TEST(EventGrouping, CanonicalFormKeepsFollowersAfterLeader) {
  const auto events = figure3_events();
  const auto units = build_units(events);
  GroupPruner pruner(units);
  Interleaving il;
  il.order = {3, 0, 2, 1, 4, 5, 7, 6};  // exec 3 before its req 2, etc.
  EXPECT_TRUE(pruner.canonicalize(il));
  // follower 3 sits right after leader 2; follower 7 right after 6
  const auto pos2 = *il.position_of(2);
  EXPECT_EQ(il.order[pos2 + 1], 3);
  const auto pos6 = *il.position_of(6);
  EXPECT_EQ(il.order[pos6 + 1], 7);
}

// ---------------------------------------------------------------------------
// Event Independence (Algorithm 3 / Figure 5)
// ---------------------------------------------------------------------------

TEST(EventIndependence, MergesEveryOrderOfIndependentEvents) {
  PruningPipeline pipeline;
  IndependencePruner::Spec spec;
  spec.independent_events = {0, 1, 2};
  pipeline.add(std::make_unique<IndependencePruner>(spec));
  // 3 independent events alone: 3! orders -> 1 class (paper: prunes 3!-1=5)
  EXPECT_EQ(exhaustive_admitted(3, pipeline), 1u);
}

TEST(EventIndependence, InterveningImpactingEventBlocksMerge) {
  IndependencePruner::Spec spec;
  spec.independent_events = {0, 2};
  IndependencePruner pruner(spec);
  Interleaving blocked;
  blocked.order = {2, 1, 0};  // event 1 sits between the independent pair
  EXPECT_FALSE(pruner.canonicalize(blocked));
  Interleaving adjacent;
  adjacent.order = {1, 2, 0};
  EXPECT_TRUE(pruner.canonicalize(adjacent));
  EXPECT_EQ(adjacent.order, (std::vector<int>{1, 0, 2}));
}

TEST(EventIndependence, NeutralEventsDoNotBlock) {
  PruningPipeline pipeline;
  IndependencePruner::Spec spec;
  spec.independent_events = {0, 2, 4};
  spec.neutral_events = {1, 3};
  pipeline.add(std::make_unique<IndependencePruner>(spec));
  // all 5 events: each position-pattern of {0,2,4} merges its 3! orders
  EXPECT_EQ(exhaustive_admitted(5, pipeline), 20u);  // 120 / 3!
}

// ---------------------------------------------------------------------------
// Failed Ops (Algorithm 4 / Figure 6)
// ---------------------------------------------------------------------------

TEST(FailedOps, MergesDoomedSuccessorOrders) {
  FailedOpsPruner::Spec spec;
  spec.predecessor_events = {0};
  spec.successor_events = {1, 2};
  FailedOpsPruner pruner(spec);
  Interleaving doomed;
  doomed.order = {0, 2, 1};  // predecessor first -> successors reorder freely
  EXPECT_TRUE(pruner.canonicalize(doomed));
  EXPECT_EQ(doomed.order, (std::vector<int>{0, 1, 2}));
  Interleaving live;
  live.order = {2, 0, 1};  // a successor precedes the predecessor: no merge
  EXPECT_FALSE(pruner.canonicalize(live));
}

TEST(FailedOps, ExhaustiveCountMatchesFigure6Arithmetic) {
  PruningPipeline pipeline;
  FailedOpsPruner::Spec spec;
  spec.predecessor_events = {0, 1};
  spec.successor_events = {2, 3, 4};
  pipeline.add(std::make_unique<FailedOpsPruner>(spec));
  // 5! = 120 total; the classes with both predecessors first (2! * 3! = 12
  // interleavings in 2 prefix arrangements) merge 3! -> 1 each: 120 - 2*5 = 110
  EXPECT_EQ(exhaustive_admitted(5, pipeline), 110u);
}

// ---------------------------------------------------------------------------
// Replica-Specific (Algorithm 2)
// ---------------------------------------------------------------------------

proxy::EventSet replica_specific_trace() {
  static subjects::CrdtCollection app(2);
  app.reset();
  proxy::RdlProxy proxy(app);
  proxy.start_capture();
  proxy.update(0, "set_add", jobj({{"element", "a"}}));  // e0 at replica 0
  proxy.sync_req(0, 1);                                  // e1
  proxy.exec_sync(0, 1);                                 // e2 into replica 1
  proxy.update(1, "set_add", jobj({{"element", "b"}}));  // e3 at replica 1
  proxy.update(0, "set_add", jobj({{"element", "c"}}));  // e4 at replica 0 (tail)
  proxy.update(0, "set_add", jobj({{"element", "d"}}));  // e5 at replica 0 (tail)
  return proxy.end_capture();
}

TEST(ReplicaSpecific, ImpactingPositionsFollowCausalClosure) {
  const auto events = replica_specific_trace();
  ReplicaSpecificPruner::Options options;
  options.replica = 1;
  options.observation_event = 3;
  ReplicaSpecificPruner pruner(events, options);
  Interleaving identity;
  identity.order = {0, 1, 2, 3, 4, 5};
  // causal past of e3: e2 (exec into replica 1) -> e1 (its req) -> e0
  const auto impacting = pruner.impacting_positions(identity);
  EXPECT_EQ(impacting, (std::vector<size_t>{0, 1, 2, 3}));
}

TEST(ReplicaSpecific, FreePermutingEventsOutsideTheCausalPast) {
  const auto events = replica_specific_trace();
  ReplicaSpecificPruner::Options options;
  options.replica = 1;
  options.observation_event = 3;
  ReplicaSpecificPruner pruner(events, options);

  Interleaving a;
  a.order = {0, 1, 2, 3, 4, 5};
  Interleaving b;
  b.order = {0, 1, 2, 3, 5, 4};  // only the replica-0 tail differs
  EXPECT_TRUE(pruner.canonicalize(a) | pruner.canonicalize(b));
  pruner.canonicalize(a);  // idempotent second call
  EXPECT_EQ(a.order, b.order);
}

TEST(ReplicaSpecific, DefaultObservationIsLastEventAtReplica) {
  const auto events = replica_specific_trace();
  ReplicaSpecificPruner::Options options;
  options.replica = 0;  // last replica-0 event is e5
  ReplicaSpecificPruner pruner(events, options);
  Interleaving identity;
  identity.order = {0, 1, 2, 3, 4, 5};
  const auto impacting = pruner.impacting_positions(identity);
  // e5's causal past at replica 0: e0, e1 (req at 0), e4 — not e2/e3
  EXPECT_EQ(impacting, (std::vector<size_t>{0, 1, 4, 5}));
}

TEST(ReplicaSpecific, ConservativeModeOnlyMergesObservationFirstClasses) {
  const auto events = replica_specific_trace();
  ReplicaSpecificPruner::Options options;
  options.replica = 1;
  options.observation_event = 3;
  options.conservative = true;
  ReplicaSpecificPruner pruner(events, options);
  Interleaving obs_mid;
  obs_mid.order = {0, 1, 2, 3, 5, 4};
  EXPECT_FALSE(pruner.canonicalize(obs_mid));  // causal past non-empty
  Interleaving obs_first;
  obs_first.order = {3, 5, 4, 0, 1, 2};
  EXPECT_TRUE(pruner.canonicalize(obs_first));
  EXPECT_EQ(obs_first.order, (std::vector<int>{3, 0, 1, 2, 4, 5}));
}

// ---------------------------------------------------------------------------
// Pipeline accounting + Datalog cross-check
// ---------------------------------------------------------------------------

TEST(PruningPipeline, StatsTrackAdmittedAndPruned) {
  PruningPipeline pipeline;
  IndependencePruner::Spec spec;
  spec.independent_events = {0, 1};
  pipeline.add(std::make_unique<IndependencePruner>(spec));
  Interleaving a;
  a.order = {0, 1, 2};
  Interleaving b;
  b.order = {1, 0, 2};  // same class as a
  EXPECT_TRUE(pipeline.admit(a));
  EXPECT_FALSE(pipeline.admit(b));
  EXPECT_FALSE(pipeline.admit(a));  // exact duplicate
  EXPECT_EQ(pipeline.stats().admitted, 1u);
  EXPECT_EQ(pipeline.stats().pruned, 2u);
  EXPECT_EQ(pipeline.stats().pruned_by.at("event_independence"), 1u);
  EXPECT_GT(pipeline.cache_bytes(), 0u);
  pipeline.reset();
  EXPECT_TRUE(pipeline.admit(b));
}

TEST(PruningPipeline, DatalogCrossCheckOnPrecedes) {
  // persist the admitted interleavings of a grouped universe and verify via
  // Datalog that sync_req precedes exec_sync in every admitted interleaving
  const auto events = figure3_events();
  const auto units = build_units(events);
  datalog::Database db;
  InterleavingStore store(db);
  store.persist_events(events);
  store.persist_units(units);

  GroupedEnumerator grouped(units);
  while (auto il = grouped.next()) store.persist(*il);
  store.derive_precedes();

  // req (event 2) precedes exec (event 3) in every grouped interleaving
  EXPECT_EQ(store.interleavings_where_precedes(2, 3).size(), store.interleaving_count());
  EXPECT_TRUE(store.interleavings_where_precedes(3, 2).empty());
  EXPECT_EQ(store.interleavings_where_precedes(6, 7).size(), store.interleaving_count());

  // the negation-derived complement agrees: exec never precedes its req,
  // and for two free updates the two relations partition the universe
  EXPECT_EQ(store.interleavings_where_not_precedes(3, 2).size(),
            store.interleaving_count());
  const auto before = store.interleavings_where_precedes(0, 4).size();
  const auto after = store.interleavings_where_not_precedes(0, 4).size();
  EXPECT_EQ(before + after, store.interleaving_count());
}

}  // namespace
}  // namespace erpi::core
