// Incremental prefix replay: equivalence + accounting tests.
//
// The contract of the prefix cache is that it is a pure performance
// optimisation — replaying with snapshots enabled must produce the same
// ReplayReport (explored counts, violations, messages, first-violation data,
// persisted log) as full-reset replay, across subjects, parallelism and
// snapshot-depth settings. These tests pin that contract, plus the resource
// accounting: retained snapshot bytes charge the Fig. 10 budget, depth 0
// reproduces the legacy engine's execution counts exactly, and the depth
// budget evicts.
#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "bugs/registry.hpp"
#include "core/session.hpp"
#include "kvstore/server.hpp"
#include "subjects/crdt_collection.hpp"
#include "subjects/town.hpp"

namespace erpi::core {
namespace {

util::Json jobj(std::initializer_list<std::pair<const char*, util::Json>> kv) {
  util::Json j = util::Json::object();
  for (auto& [key, value] : kv) j[key] = value;
  return j;
}

struct Scenario {
  std::string name;
  std::function<std::unique_ptr<proxy::Rdl>()> make_subject;
  std::function<void(proxy::RdlProxy&)> workload;
  AssertionFactory assertions;
  std::function<void(Session::Config&)> configure;  // optional
  /// True when the assertion list carries cross-interleaving state. Such
  /// assertions see only the interleavings their own worker replayed, and
  /// batch->worker assignment is timing-dependent, so at parallelism > 1 their
  /// violation messages are not comparable across runs (independent of the
  /// prefix cache). Only scheduling-invariant report fields are compared then.
  bool stateful_assertions = false;
};

Scenario town_scenario() {
  Scenario sc;
  sc.name = "town";
  sc.make_subject = [] { return std::make_unique<subjects::TownApp>(2); };
  sc.workload = [](proxy::RdlProxy& proxy) {
    (void)proxy.update(0, "report", jobj({{"problem", "otb"}}));
    (void)proxy.sync_req(0, 1);
    (void)proxy.exec_sync(0, 1);
    (void)proxy.update(1, "report", jobj({{"problem", "ph"}}));
    (void)proxy.sync_req(1, 0);
    (void)proxy.exec_sync(1, 0);
    (void)proxy.update(1, "resolve", jobj({{"problem", "otb"}}));
    (void)proxy.sync_req(1, 0);
    (void)proxy.exec_sync(1, 0);
    (void)proxy.update(0, "report", jobj({{"problem", "lamp"}}));
    (void)proxy.query(0, "transmit");
  };
  sc.assertions = [](proxy::Rdl&) -> AssertionList {
    util::Json expected = util::Json::array();
    expected.push_back("lamp");
    expected.push_back("ph");
    return {query_result_equals(10, expected)};
  };
  sc.configure = [](Session::Config& config) {
    config.generation_order = GroupedEnumerator::Order::Lexicographic;
    config.spec_groups = {{0, 1, 2}, {3, 4, 5}};
  };
  return sc;
}

Scenario collection_scenario() {
  Scenario sc;
  sc.name = "crdt_collection";
  sc.make_subject = [] { return std::make_unique<subjects::CrdtCollection>(2); };
  sc.workload = [](proxy::RdlProxy& proxy) {
    (void)proxy.update(0, "set_add", jobj({{"element", "a"}}));
    (void)proxy.sync_req(0, 1);
    (void)proxy.exec_sync(0, 1);
    (void)proxy.update(1, "set_remove", jobj({{"element", "a"}}));
    (void)proxy.sync_req(1, 0);
    (void)proxy.exec_sync(1, 0);
    (void)proxy.update(0, "counter_inc", jobj({{"by", 2}}));
  };
  sc.assertions = [](proxy::Rdl&) -> AssertionList {
    return {converge_if_same_witness({0, 1}, {"seen"}, {"set"})};
  };
  return sc;
}

std::vector<Scenario> all_scenarios() {
  std::vector<Scenario> scenarios{town_scenario(), collection_scenario()};
  // One registry bug per remaining subject: real workloads, real pruning
  // config (so the PrunedEnumerator hint path is exercised too).
  // Roshi-1/ReplicaDB-1 use stateless per-interleaving custom assertions;
  // OrbitDB-1/Yorkie-1 include consistent_across_interleavings_if_same_witness.
  for (const auto& [name, stateful] :
       std::vector<std::pair<const char*, bool>>{{"Roshi-1", false},
                                                 {"OrbitDB-1", true},
                                                 {"ReplicaDB-1", false},
                                                 {"Yorkie-1", true}}) {
    const auto& bug = bugs::find_bug(name);
    Scenario sc;
    sc.name = bug.name;
    sc.make_subject = bug.make_subject;
    sc.workload = bug.workload;
    auto make_assertions = bug.assertions;
    sc.assertions = [make_assertions](proxy::Rdl&) { return make_assertions(); };
    sc.configure = bug.configure;
    sc.stateful_assertions = stateful;
    scenarios.push_back(std::move(sc));
  }
  return scenarios;
}

struct RunOutput {
  ReplayReport report;
  std::vector<std::string> persisted;
};

RunOutput run_scenario(const Scenario& sc, size_t max_snapshot_depth, int parallelism,
                       bool persist = false) {
  auto subject = sc.make_subject();
  proxy::RdlProxy proxy(*subject);
  Session::Config config;
  config.replay.stop_on_violation = false;
  config.replay.max_interleavings = 300;
  if (sc.configure) sc.configure(config);
  config.parallelism = parallelism;
  config.subject_factory = sc.make_subject;
  config.max_snapshot_depth = max_snapshot_depth;
  config.persist = persist;
  Session session(proxy, std::move(config));
  session.start();
  sc.workload(proxy);
  RunOutput out;
  out.report = session.end(sc.assertions);
  if (persist) {
    for (size_t i = 0; i < session.store().interleaving_count(); ++i) {
      out.persisted.push_back(session.store().load(i).key());
    }
  }
  return out;
}

/// The report fields that stay fixed no matter how batches land on workers.
void expect_invariant_fields_equal(const ReplayReport& got, const ReplayReport& want,
                                   const std::string& label) {
  EXPECT_EQ(got.explored, want.explored) << label;
  EXPECT_EQ(got.exhausted, want.exhausted) << label;
  EXPECT_EQ(got.hit_cap, want.hit_cap) << label;
  EXPECT_EQ(got.crashed, want.crashed) << label;
}

/// Everything observable except timing and the prefix counters themselves.
void expect_reports_equal(const ReplayReport& got, const ReplayReport& want,
                          const std::string& label) {
  expect_invariant_fields_equal(got, want, label);
  EXPECT_EQ(got.violations, want.violations) << label;
  EXPECT_EQ(got.reproduced, want.reproduced) << label;
  EXPECT_EQ(got.first_violation_index, want.first_violation_index) << label;
  EXPECT_EQ(got.first_violation_assertion, want.first_violation_assertion) << label;
  EXPECT_EQ(got.first_violation.has_value(), want.first_violation.has_value()) << label;
  if (got.first_violation && want.first_violation) {
    EXPECT_EQ(got.first_violation->key(), want.first_violation->key()) << label;
  }
  EXPECT_EQ(got.messages, want.messages) << label;
}

// ---------------------------------------------------------------------------
// Report equivalence: incremental == full-reset, everywhere
// ---------------------------------------------------------------------------

class PrefixEquivalence : public ::testing::TestWithParam<Scenario> {};

TEST_P(PrefixEquivalence, IncrementalReplayIsReportIdenticalToFullReset) {
  const Scenario& sc = GetParam();
  for (const int parallelism : {1, 4}) {
    const RunOutput baseline = run_scenario(sc, /*max_snapshot_depth=*/0, parallelism);
    ASSERT_GT(baseline.report.explored, 0u);
    for (const size_t depth : {size_t{2}, size_t{SIZE_MAX}}) {
      const RunOutput incremental = run_scenario(sc, depth, parallelism);
      const std::string label = sc.name + " p=" + std::to_string(parallelism) +
                                " depth=" + std::to_string(depth);
      if (parallelism > 1 && sc.stateful_assertions) {
        expect_invariant_fields_equal(incremental.report, baseline.report, label);
      } else {
        expect_reports_equal(incremental.report, baseline.report, label);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllSubjects, PrefixEquivalence,
                         ::testing::ValuesIn(all_scenarios()), [](const auto& info) {
                           std::string name = info.param.name;
                           for (auto& ch : name) {
                             if (ch == '-') ch = '_';
                           }
                           return name;
                         });

TEST(PrefixEquivalence, PersistedLogIdenticalWithAndWithoutSnapshots) {
  const Scenario sc = town_scenario();
  const RunOutput baseline = run_scenario(sc, 0, 1, /*persist=*/true);
  ASSERT_FALSE(baseline.persisted.empty());
  for (const int parallelism : {1, 4}) {
    const RunOutput incremental = run_scenario(sc, SIZE_MAX, parallelism, /*persist=*/true);
    EXPECT_EQ(incremental.persisted, baseline.persisted) << "p=" << parallelism;
  }
}

TEST(PrefixEquivalence, ThreadedModeMatchesWithSnapshotsOnAndOff) {
  // Threaded replay drives the distributed-lock protocol per event; snapshots
  // ride the turn-ownership discipline. Keep the cap small: every threaded
  // interleaving spins up one thread per replica.
  auto run_threaded = [](size_t depth, int parallelism) {
    static kv::Server lock_server;  // sequential path needs an explicit server
    Scenario sc = town_scenario();
    auto base_configure = sc.configure;
    sc.configure = [base_configure, parallelism](Session::Config& config) {
      base_configure(config);
      config.replay.max_interleavings = 24;
      config.replay.threaded = true;
      if (parallelism == 1) config.replay.lock_server = &lock_server;
    };
    return run_scenario(sc, depth, parallelism);
  };
  for (const int parallelism : {1, 4}) {
    const RunOutput baseline = run_threaded(0, parallelism);
    ASSERT_EQ(baseline.report.explored, 24u);
    const RunOutput incremental = run_threaded(SIZE_MAX, parallelism);
    expect_reports_equal(incremental.report, baseline.report,
                         "threaded p=" + std::to_string(parallelism));
  }
}

// ---------------------------------------------------------------------------
// Counters and accounting
// ---------------------------------------------------------------------------

TEST(PrefixReplay, DepthZeroReproducesLegacyExecutionExactly) {
  const Scenario sc = town_scenario();
  const RunOutput out = run_scenario(sc, 0, 1);
  const auto& prefix = out.report.prefix;
  // 11 events per interleaving, every one executed from a full reset.
  EXPECT_EQ(prefix.events_executed, out.report.explored * 11);
  EXPECT_EQ(prefix.events_skipped, 0u);
  EXPECT_EQ(prefix.snapshots_taken, 0u);
  EXPECT_EQ(prefix.snapshots_restored, 0u);
  EXPECT_EQ(prefix.snapshots_evicted, 0u);
  EXPECT_EQ(prefix.cache_bytes_peak, 0u);
}

TEST(PrefixReplay, LexicographicSweepSkipsMostPrefixWork) {
  const Scenario sc = town_scenario();
  const RunOutput full = run_scenario(sc, 0, 1);
  const RunOutput incremental = run_scenario(sc, SIZE_MAX, 1);
  ASSERT_EQ(incremental.report.explored, full.report.explored);
  const uint64_t total = full.report.prefix.events_executed;
  const uint64_t executed = incremental.report.prefix.events_executed;
  EXPECT_EQ(executed + incremental.report.prefix.events_skipped, total);
  // ISSUE acceptance: >= 40% fewer events executed on a lexicographic sweep.
  EXPECT_LE(executed * 10, total * 6)
      << "only " << (100.0 - 100.0 * static_cast<double>(executed) / static_cast<double>(total))
      << "% reduction";
  EXPECT_GT(incremental.report.prefix.snapshots_taken, 0u);
  EXPECT_GT(incremental.report.prefix.snapshots_restored, 0u);
  EXPECT_GT(incremental.report.prefix.cache_bytes_peak, 0u);
}

TEST(PrefixReplay, DepthBudgetEvicts) {
  const Scenario sc = town_scenario();
  const RunOutput out = run_scenario(sc, 2, 1);
  // Each 11-event replay takes up to 9 snapshots but only 2 may stay.
  EXPECT_GT(out.report.prefix.snapshots_evicted, 0u);
  EXPECT_GT(out.report.prefix.snapshots_restored, 0u);
}

TEST(PrefixReplay, SnapshotMemoryAloneCrashesTheBudget) {
  const Scenario sc = town_scenario();
  constexpr uint64_t kCap = 40;
  // explored_log_entry_bytes for 11 events = 11*3 + 48 = 81. With the other
  // live-cache charge pinned to zero below, a budget of exactly cap * 81 is
  // never *exceeded* by the log, so any crash is attributable to retained
  // snapshot bytes alone.
  constexpr uint64_t kBudget = kCap * 81;
  auto run_budgeted = [&](size_t depth) {
    Scenario budgeted = sc;
    auto base_configure = sc.configure;
    budgeted.configure = [base_configure](Session::Config& config) {
      base_configure(config);
      config.replay.max_interleavings = kCap;
      config.replay.resource_budget_bytes = kBudget;
      // Suppress the session's default pruning-pipeline charge; this test
      // isolates log bytes vs snapshot bytes.
      config.replay.extra_cache_bytes = [] { return uint64_t{0}; };
    };
    return run_scenario(budgeted, depth, 1);
  };
  const RunOutput without = run_budgeted(0);
  EXPECT_FALSE(without.report.crashed);
  EXPECT_EQ(without.report.explored, kCap);

  const RunOutput with_snapshots = run_budgeted(SIZE_MAX);
  EXPECT_TRUE(with_snapshots.report.crashed);
  EXPECT_LT(with_snapshots.report.explored, kCap);
}

// ---------------------------------------------------------------------------
// Snapshot allocation failure: degrade, don't die
// ---------------------------------------------------------------------------

/// TownApp with a snapshot() that throws std::bad_alloc — every call, or
/// every call after the first `succeed_first` — standing in for a subject
/// whose checkpoint needs more heap than is left. Composition around TownApp
/// because SubjectBase::snapshot() is final.
class AllocFailingSnapshotTown : public proxy::Rdl {
 public:
  AllocFailingSnapshotTown(int replicas, int succeed_first)
      : inner_(replicas), succeed_first_(succeed_first) {}

  std::string name() const override { return inner_.name(); }
  int replica_count() const override { return inner_.replica_count(); }
  util::Result<util::Json> invoke(net::ReplicaId replica, const std::string& op,
                                  const util::Json& args) override {
    return inner_.invoke(replica, op, args);
  }
  util::Json replica_state(net::ReplicaId replica) const override {
    return inner_.replica_state(replica);
  }
  void reset() override { inner_.reset(); }
  proxy::Snapshot snapshot() override {
    if (calls_++ >= succeed_first_) throw std::bad_alloc();
    return inner_.snapshot();
  }
  bool restore(const proxy::Snapshot& snap) override { return inner_.restore(snap); }

 private:
  subjects::TownApp inner_;
  int succeed_first_;
  int calls_ = 0;  // per-fixture, like any real memory pressure would be
};

TEST(PrefixReplay, SnapshotBadAllocFallsBackToFullResetAndLatchesCounter) {
  const Scenario baseline_sc = town_scenario();
  auto failing_sc = [&](int succeed_first) {
    Scenario sc = baseline_sc;
    sc.make_subject = [succeed_first] {
      return std::make_unique<AllocFailingSnapshotTown>(2, succeed_first);
    };
    return sc;
  };
  const RunOutput baseline = run_scenario(baseline_sc, 0, 1);
  ASSERT_GT(baseline.report.explored, 0u);

  for (const int parallelism : {1, 4}) {
    // Every snapshot() call fails: the run must behave exactly like
    // depth 0 (all events executed from full resets), latch the counter,
    // and never let the bad_alloc escape a worker.
    const RunOutput out =
        run_scenario(failing_sc(0), /*max_snapshot_depth=*/SIZE_MAX, parallelism);
    const std::string label = "always-failing p=" + std::to_string(parallelism);
    if (parallelism > 1) {
      expect_invariant_fields_equal(out.report, baseline.report, label);
    } else {
      expect_reports_equal(out.report, baseline.report, label);
    }
    EXPECT_GT(out.report.prefix.snapshot_alloc_failures, 0u) << label;
    EXPECT_EQ(out.report.prefix.snapshots_taken, 0u) << label;
    EXPECT_EQ(out.report.prefix.snapshots_restored, 0u) << label;
    EXPECT_EQ(out.report.prefix.events_skipped, 0u) << label;
    EXPECT_EQ(out.report.prefix.cache_bytes_peak, 0u) << label;
  }

  // Memory pressure arriving mid-run: the first few snapshots land, later
  // ones fail. Cached prefixes keep getting reused; the report still matches.
  const RunOutput degraded = run_scenario(failing_sc(4), SIZE_MAX, 1);
  expect_reports_equal(degraded.report, baseline.report, "degrading");
  EXPECT_GT(degraded.report.prefix.snapshot_alloc_failures, 0u);
  EXPECT_GT(degraded.report.prefix.snapshots_taken, 0u);
}

}  // namespace
}  // namespace erpi::core
