// Session (Start/End) workflow tests: end-to-end capture -> generate ->
// prune -> replay -> assert, Datalog persistence, runtime constraints intake,
// the motivating example's exact §3.1 arithmetic, and the constraints parser.
#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <fstream>

#include "core/constraints.hpp"
#include "core/session.hpp"
#include "subjects/town.hpp"

namespace erpi::core {
namespace {

namespace fs = std::filesystem;

util::Json problem(const char* name) {
  util::Json j = util::Json::object();
  j["problem"] = name;
  return j;
}

void town_workload(proxy::RdlProxy& proxy) {
  proxy.update(0, "report", problem("otb"));  // e0  ev_I
  proxy.sync_req(0, 1);                       // e1
  proxy.exec_sync(0, 1);                      // e2
  proxy.update(1, "report", problem("ph"));   // e3  ev_II
  proxy.sync_req(1, 0);                       // e4
  proxy.exec_sync(1, 0);                      // e5
  proxy.update(1, "resolve", problem("otb")); // e6  ev_III
  proxy.sync_req(1, 0);                       // e7
  proxy.exec_sync(1, 0);                      // e8
  proxy.query(0, "transmit");                 // e9  ev_IV
}

Session::Config motivating_config(bool conservative) {
  Session::Config config;
  config.generation_order = GroupedEnumerator::Order::Lexicographic;
  config.spec_groups = {{0, 1, 2}, {3, 4, 5}, {6, 7, 8}};
  ReplicaSpecificPruner::Options rs;
  rs.replica = 0;
  rs.observation_event = 9;
  rs.conservative = conservative;
  config.replica_specific = rs;
  config.replay.stop_on_violation = false;
  config.replay.max_interleavings = 100'000;
  return config;
}

// ---------------------------------------------------------------------------
// The motivating example (§2.3 / §3.1): 5040 -> 24 -> 19 exactly.
// ---------------------------------------------------------------------------

TEST(MotivatingExample, PaperArithmeticReproducedExactly) {
  subjects::TownApp town(2);
  proxy::RdlProxy proxy(town);
  Session session(proxy, motivating_config(/*conservative=*/true));
  session.start();
  town_workload(proxy);
  util::Json expected = util::Json::array();
  expected.push_back("ph");
  const auto report = session.end({query_result_equals(9, expected)});
  const auto pruning = session.pruning_report();

  EXPECT_EQ(pruning.event_count, 10u);      // 7 paper-level events
  EXPECT_EQ(pruning.unit_count, 4u);        // (ev_I,sync) (ev_II,sync) (ev_III,sync) ev_IV
  EXPECT_EQ(pruning.unit_universe, 24u);    // 4!
  EXPECT_EQ(report.explored, 19u);          // the paper's 19
  EXPECT_TRUE(report.reproduced);           // interleaving_2 of the paper exists
  EXPECT_GT(report.violations, 0u);
}

TEST(MotivatingExample, DependencyClosureModePrunesHarder) {
  subjects::TownApp town(2);
  proxy::RdlProxy proxy(town);
  Session session(proxy, motivating_config(/*conservative=*/false));
  session.start();
  town_workload(proxy);
  util::Json expected = util::Json::array();
  expected.push_back("ph");
  const auto report = session.end({query_result_equals(9, expected)});
  EXPECT_LT(report.explored, 19u);
  EXPECT_GE(report.explored, 10u);
  EXPECT_TRUE(report.reproduced);
}

TEST(MotivatingExample, IdentityInterleavingSatisfiesTheInvariant) {
  subjects::TownApp town(2);
  proxy::RdlProxy proxy(town);
  auto config = motivating_config(true);
  config.replay.max_interleavings = 1;  // identity only
  Session session(proxy, config);
  session.start();
  town_workload(proxy);
  util::Json expected = util::Json::array();
  expected.push_back("ph");
  const auto report = session.end({query_result_equals(9, expected)});
  EXPECT_FALSE(report.reproduced);
}

// ---------------------------------------------------------------------------
// Exploration modes through the Session
// ---------------------------------------------------------------------------

TEST(Session, AllThreeModesFindTheViolation) {
  for (const auto mode : {ExplorationMode::ErPi, ExplorationMode::Dfs,
                          ExplorationMode::Rand}) {
    subjects::TownApp town(2);
    proxy::RdlProxy proxy(town);
    Session::Config config;
    config.mode = mode;
    config.replay.max_interleavings = 10'000;
    Session session(proxy, config);
    session.start();
    town_workload(proxy);
    util::Json expected = util::Json::array();
    expected.push_back("ph");
    const auto report = session.end({query_result_equals(9, expected)});
    EXPECT_TRUE(report.reproduced) << exploration_mode_name(mode);
  }
}

// ---------------------------------------------------------------------------
// Datalog persistence via the Session
// ---------------------------------------------------------------------------

TEST(Session, PersistsEventsUnitsAndReplayedInterleavings) {
  subjects::TownApp town(2);
  proxy::RdlProxy proxy(town);
  auto config = motivating_config(true);
  config.persist = true;
  Session session(proxy, config);
  session.start();
  town_workload(proxy);
  (void)session.end({});

  auto& store = session.store();
  EXPECT_EQ(store.interleaving_count(), 19u);
  EXPECT_EQ(store.database().find("event")->size(), 10u);
  EXPECT_EQ(store.database().find("group")->size(), 6u);  // 3 chains of 3
  // load an interleaving back and check it is a permutation of 0..9
  auto il = store.load(0);
  std::sort(il.order.begin(), il.order.end());
  EXPECT_EQ(il.order, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}));
}

// ---------------------------------------------------------------------------
// Constraints: parser + watcher + runtime intake
// ---------------------------------------------------------------------------

TEST(Constraints, ParserAcceptsFullSchema) {
  const auto doc = util::Json::parse(R"({
    "groups": [[2, 3]],
    "independent_events": [4, 5, 6],
    "neutral_events": [1],
    "failed_ops": {"predecessors": [0], "successors": [7, 8]}
  })").take();
  const auto parsed = parse_constraints(doc);
  ASSERT_TRUE(parsed) << parsed.error().message;
  EXPECT_EQ(parsed.value().groups.size(), 1u);
  ASSERT_EQ(parsed.value().independence.size(), 1u);
  EXPECT_EQ(parsed.value().independence[0].independent_events.size(), 3u);
  EXPECT_EQ(parsed.value().independence[0].neutral_events.count(1), 1u);
  ASSERT_EQ(parsed.value().failed_ops.size(), 1u);
  EXPECT_FALSE(parsed.value().empty());
}

TEST(Constraints, ParserRejectsMalformedDocuments) {
  for (const char* bad :
       {R"([1,2])", R"({"groups": [[1]]})", R"({"groups": "nope"})",
        R"({"independent_events": ["x"]})"}) {
    EXPECT_FALSE(parse_constraints(util::Json::parse(bad).take())) << bad;
  }
}

TEST(Constraints, ParserIgnoresDegenerateSpecs) {
  // a single independent event or missing successors are not usable specs
  const auto doc = util::Json::parse(
      R"({"independent_events": [3], "failed_ops": {"predecessors": [1], "successors": [2]}})")
      .take();
  const auto parsed = parse_constraints(doc).take();
  EXPECT_TRUE(parsed.independence.empty());
  EXPECT_TRUE(parsed.failed_ops.empty());
}

TEST(ConstraintWatcher, ConsumesEachFileOnce) {
  const auto dir = fs::temp_directory_path() / "erpi-watcher-test";
  fs::remove_all(dir);
  fs::create_directories(dir);
  ConstraintWatcher watcher(dir.string());
  EXPECT_TRUE(watcher.poll().empty());

  std::ofstream(dir / "c1.json") << R"({"independent_events": [1, 2]})";
  auto first = watcher.poll();
  ASSERT_EQ(first.independence.size(), 1u);
  EXPECT_TRUE(watcher.poll().empty());  // already consumed

  std::ofstream(dir / "ignored.txt") << "not json";
  std::ofstream(dir / "broken.json") << "{nope";
  EXPECT_TRUE(watcher.poll().empty());  // non-json + malformed skipped

  std::ofstream(dir / "c2.json") << R"({"groups": [[0, 1]]})";
  auto second = watcher.poll();
  EXPECT_EQ(second.groups.size(), 1u);
  fs::remove_all(dir);
}

TEST(ConstraintWatcher, MissingDirectoryIsHarmless) {
  ConstraintWatcher watcher("/nonexistent/erpi-nowhere");
  EXPECT_TRUE(watcher.poll().empty());
  ConstraintWatcher disabled("");
  EXPECT_TRUE(disabled.poll().empty());
}

TEST(ConstraintWatcher, SameSizeInPlaceEditIsReconsumed) {
  const auto dir = fs::temp_directory_path() / "erpi-watcher-mtime-test";
  fs::remove_all(dir);
  fs::create_directories(dir);
  ConstraintWatcher watcher(dir.string());

  const auto path = dir / "c.json";
  std::ofstream(path) << R"({"independent_events": [1, 2]})";
  ASSERT_EQ(watcher.poll().independence.size(), 1u);

  // Same byte count, different content: the old path:size key would treat
  // this as already consumed and silently drop the edit. Bump the mtime
  // explicitly so the test doesn't depend on filesystem timestamp
  // granularity.
  std::ofstream(path) << R"({"independent_events": [1, 3]})";
  fs::last_write_time(path, fs::last_write_time(path) + std::chrono::seconds(2));
  const auto reread = watcher.poll();
  ASSERT_EQ(reread.independence.size(), 1u);
  EXPECT_EQ(reread.independence[0].independent_events, (std::vector<int>{1, 3}));
  EXPECT_TRUE(watcher.poll().empty());  // unchanged file stays consumed
  fs::remove_all(dir);
}

TEST(ConstraintWatcher, LastErrorsReportsSkippedFilesStructured) {
  const auto dir = fs::temp_directory_path() / "erpi-watcher-errors-test";
  fs::remove_all(dir);
  fs::create_directories(dir);
  ConstraintWatcher watcher(dir.string());
  EXPECT_TRUE(watcher.last_errors().empty());

  std::ofstream(dir / "broken.json") << "{nope";
  std::ofstream(dir / "invalid.json") << R"({"groups": [[1]]})";
  std::ofstream(dir / "good.json") << R"({"groups": [[0, 1]]})";
  const auto merged = watcher.poll();
  EXPECT_EQ(merged.groups.size(), 1u);  // the good file still lands

  ASSERT_EQ(watcher.last_errors().size(), 2u);
  for (const auto& error : watcher.last_errors()) {
    EXPECT_FALSE(error.error.message.empty());
    if (error.path == (dir / "broken.json").string()) {
      EXPECT_NE(error.error.message.find("malformed JSON"), std::string::npos);
    } else {
      EXPECT_EQ(error.path, (dir / "invalid.json").string());
      EXPECT_EQ(error.error.message, "a group needs at least two events");
    }
  }

  // Errors describe the most recent poll only; a clean scan resets them.
  EXPECT_TRUE(watcher.poll().empty());
  EXPECT_TRUE(watcher.last_errors().empty());
  fs::remove_all(dir);
}

TEST(Session, RuntimeConstraintsExtendThePipeline) {
  const auto dir = fs::temp_directory_path() / "erpi-session-constraints";
  fs::remove_all(dir);
  fs::create_directories(dir);

  subjects::TownApp town(2);
  proxy::RdlProxy proxy(town);
  Session::Config config;
  config.generation_order = GroupedEnumerator::Order::Lexicographic;
  config.constraints_dir = dir.string();
  config.replay.stop_on_violation = false;
  config.replay.max_interleavings = 100'000;
  // drop a constraint file after the 5th interleaving
  config.replay.on_interleaving_done = [&](uint64_t index, const Interleaving&) {
    if (index == 5) {
      // events 0 and 3 are the two reports — declaring them independent is a
      // developer-provided §3.4 constraint
      std::ofstream(dir / "indep.json") << R"({"independent_events": [0, 3]})";
    }
  };
  Session session(proxy, config);
  session.start();
  town_workload(proxy);
  const auto without = [] {
    subjects::TownApp t(2);
    proxy::RdlProxy p(t);
    Session::Config c;
    c.generation_order = GroupedEnumerator::Order::Lexicographic;
    c.replay.stop_on_violation = false;
    c.replay.max_interleavings = 100'000;
    Session s(p, c);
    s.start();
    town_workload(p);
    return s.end({}).explored;
  }();
  const auto with = session.end({}).explored;
  EXPECT_LT(with, without);  // the runtime constraint pruned something
  fs::remove_all(dir);
}

}  // namespace
}  // namespace erpi::core
