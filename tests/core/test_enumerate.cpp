// Enumerator tests: exhaustiveness, distinctness, ordering, dedup caches.
#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "core/enumerate.hpp"

namespace erpi::core {
namespace {

std::vector<int> ids(int n) {
  std::vector<int> out(static_cast<size_t>(n));
  std::iota(out.begin(), out.end(), 0);
  return out;
}

std::set<std::string> drain_keys(Enumerator& e, uint64_t cap = UINT64_MAX) {
  std::set<std::string> keys;
  uint64_t count = 0;
  while (count++ < cap) {
    const auto il = e.next();
    if (!il) break;
    EXPECT_TRUE(keys.insert(il->key()).second) << "duplicate " << il->key();
  }
  return keys;
}

// Every enumerator must cover all n! distinct permutations exactly once.
class ExhaustivenessTest : public ::testing::TestWithParam<int> {};

TEST_P(ExhaustivenessTest, DfsCoversAllPermutations) {
  DfsEnumerator dfs(ids(GetParam()));
  EXPECT_EQ(drain_keys(dfs).size(), factorial_saturated(GetParam()));
  EXPECT_EQ(dfs.emitted(), factorial_saturated(GetParam()));
}

TEST_P(ExhaustivenessTest, RandomCoversAllPermutations) {
  RandomEnumerator rand(ids(GetParam()), 99);
  EXPECT_EQ(drain_keys(rand).size(), factorial_saturated(GetParam()));
}

TEST_P(ExhaustivenessTest, GroupedLexicographicCoversUnitPermutations) {
  std::vector<EventUnit> units;
  for (int i = 0; i < GetParam(); ++i) units.push_back({{i}});
  GroupedEnumerator grouped(units);
  EXPECT_EQ(drain_keys(grouped).size(), factorial_saturated(GetParam()));
}

TEST_P(ExhaustivenessTest, GroupedShuffledCoversUnitPermutations) {
  std::vector<EventUnit> units;
  for (int i = 0; i < GetParam(); ++i) units.push_back({{i}});
  GroupedEnumerator grouped(units, GroupedEnumerator::Order::Shuffled, 5);
  EXPECT_EQ(drain_keys(grouped).size(), factorial_saturated(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(SmallN, ExhaustivenessTest, ::testing::Values(1, 2, 3, 4, 5));

TEST(DfsEnumerator, FirstLeafIsIdentityAndOrderIsLexicographic) {
  DfsEnumerator dfs(ids(3));
  EXPECT_EQ(dfs.next()->key(), "0,1,2");
  EXPECT_EQ(dfs.next()->key(), "0,2,1");
  EXPECT_EQ(dfs.next()->key(), "1,0,2");
  EXPECT_GT(dfs.nodes_expanded(), 0u);
}

TEST(DfsEnumerator, BranchSeedPermutesChildOrder) {
  DfsEnumerator plain(ids(5));
  DfsEnumerator seeded(ids(5), 1234);
  EXPECT_NE(plain.next()->key(), seeded.next()->key());
  // still exhaustive and duplicate-free
  seeded.reset();
  EXPECT_EQ(drain_keys(seeded).size(), 120u);
}

TEST(DfsEnumerator, EmptyInputExhaustsImmediately) {
  DfsEnumerator dfs({});
  EXPECT_FALSE(dfs.next());
}

TEST(RandomEnumerator, DeterministicPerSeed) {
  RandomEnumerator a(ids(6), 7);
  RandomEnumerator b(ids(6), 7);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(a.next()->key(), b.next()->key());
  RandomEnumerator c(ids(6), 8);
  a.reset();
  EXPECT_NE(a.next()->key(), c.next()->key());
}

TEST(RandomEnumerator, ShuffleCountGrowsWithCoverage) {
  RandomEnumerator rand(ids(4), 3);
  drain_keys(rand);
  // must have shuffled strictly more times than it emitted (rejected dups)
  EXPECT_GT(rand.shuffles(), 24u);
  EXPECT_GT(rand.cache_bytes(), 0u);
}

TEST(GroupedEnumerator, FlattensGroupsContiguously) {
  std::vector<EventUnit> units{{{0, 1}}, {{2}}, {{3, 4}}};
  GroupedEnumerator grouped(units);
  const auto keys = drain_keys(grouped);
  EXPECT_EQ(keys.size(), 6u);  // 3 units -> 3!
  for (const auto& key : keys) {
    // "0,1" always contiguous, "3,4" always contiguous
    EXPECT_NE(key.find("0,1"), std::string::npos) << key;
    EXPECT_NE(key.find("3,4"), std::string::npos) << key;
  }
}

TEST(GroupedEnumerator, ShuffledEmitsCapturedOrderFirst) {
  std::vector<EventUnit> units{{{0}}, {{1}}, {{2}}, {{3}}};
  GroupedEnumerator grouped(units, GroupedEnumerator::Order::Shuffled, 17);
  EXPECT_EQ(grouped.next()->key(), "0,1,2,3");
}

TEST(GroupedEnumerator, UniverseSizeIsUnitFactorial) {
  std::vector<EventUnit> units{{{0, 1, 2}}, {{3}}, {{4, 5}}};
  GroupedEnumerator grouped(units);
  EXPECT_EQ(grouped.universe_size(), 6u);
}

TEST(Enumerators, ResetRestartsFromScratch) {
  DfsEnumerator dfs(ids(4));
  const auto first = dfs.next()->key();
  dfs.next();
  dfs.reset();
  EXPECT_EQ(dfs.next()->key(), first);
  EXPECT_EQ(dfs.emitted(), 1u);
}

}  // namespace
}  // namespace erpi::core
