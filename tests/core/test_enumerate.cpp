// Enumerator tests: exhaustiveness, distinctness, ordering, dedup caches.
#include <gtest/gtest.h>

#include <memory>
#include <numeric>
#include <set>

#include "core/enumerate.hpp"
#include "core/pruning.hpp"

namespace erpi::core {
namespace {

std::vector<int> ids(int n) {
  std::vector<int> out(static_cast<size_t>(n));
  std::iota(out.begin(), out.end(), 0);
  return out;
}

std::set<std::string> drain_keys(Enumerator& e, uint64_t cap = UINT64_MAX) {
  std::set<std::string> keys;
  uint64_t count = 0;
  while (count++ < cap) {
    const auto il = e.next();
    if (!il) break;
    EXPECT_TRUE(keys.insert(il->key()).second) << "duplicate " << il->key();
  }
  return keys;
}

// Every enumerator must cover all n! distinct permutations exactly once.
class ExhaustivenessTest : public ::testing::TestWithParam<int> {};

TEST_P(ExhaustivenessTest, DfsCoversAllPermutations) {
  DfsEnumerator dfs(ids(GetParam()));
  EXPECT_EQ(drain_keys(dfs).size(), factorial_saturated(GetParam()));
  EXPECT_EQ(dfs.emitted(), factorial_saturated(GetParam()));
}

TEST_P(ExhaustivenessTest, RandomCoversAllPermutations) {
  RandomEnumerator rand(ids(GetParam()), 99);
  EXPECT_EQ(drain_keys(rand).size(), factorial_saturated(GetParam()));
}

TEST_P(ExhaustivenessTest, GroupedLexicographicCoversUnitPermutations) {
  std::vector<EventUnit> units;
  for (int i = 0; i < GetParam(); ++i) units.push_back({{i}});
  GroupedEnumerator grouped(units);
  EXPECT_EQ(drain_keys(grouped).size(), factorial_saturated(GetParam()));
}

TEST_P(ExhaustivenessTest, GroupedShuffledCoversUnitPermutations) {
  std::vector<EventUnit> units;
  for (int i = 0; i < GetParam(); ++i) units.push_back({{i}});
  GroupedEnumerator grouped(units, GroupedEnumerator::Order::Shuffled, 5);
  EXPECT_EQ(drain_keys(grouped).size(), factorial_saturated(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(SmallN, ExhaustivenessTest, ::testing::Values(1, 2, 3, 4, 5));

TEST(DfsEnumerator, FirstLeafIsIdentityAndOrderIsLexicographic) {
  DfsEnumerator dfs(ids(3));
  EXPECT_EQ(dfs.next()->key(), "0,1,2");
  EXPECT_EQ(dfs.next()->key(), "0,2,1");
  EXPECT_EQ(dfs.next()->key(), "1,0,2");
  EXPECT_GT(dfs.nodes_expanded(), 0u);
}

TEST(DfsEnumerator, BranchSeedPermutesChildOrder) {
  DfsEnumerator plain(ids(5));
  DfsEnumerator seeded(ids(5), 1234);
  EXPECT_NE(plain.next()->key(), seeded.next()->key());
  // still exhaustive and duplicate-free
  seeded.reset();
  EXPECT_EQ(drain_keys(seeded).size(), 120u);
}

TEST(DfsEnumerator, EmptyInputExhaustsImmediately) {
  DfsEnumerator dfs({});
  EXPECT_FALSE(dfs.next());
}

TEST(RandomEnumerator, DeterministicPerSeed) {
  RandomEnumerator a(ids(6), 7);
  RandomEnumerator b(ids(6), 7);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(a.next()->key(), b.next()->key());
  RandomEnumerator c(ids(6), 8);
  a.reset();
  EXPECT_NE(a.next()->key(), c.next()->key());
}

TEST(RandomEnumerator, ShuffleCountGrowsWithCoverage) {
  RandomEnumerator rand(ids(4), 3);
  drain_keys(rand);
  // must have shuffled strictly more times than it emitted (rejected dups)
  EXPECT_GT(rand.shuffles(), 24u);
  EXPECT_GT(rand.cache_bytes(), 0u);
}

TEST(GroupedEnumerator, FlattensGroupsContiguously) {
  std::vector<EventUnit> units{{{0, 1}}, {{2}}, {{3, 4}}};
  GroupedEnumerator grouped(units);
  const auto keys = drain_keys(grouped);
  EXPECT_EQ(keys.size(), 6u);  // 3 units -> 3!
  for (const auto& key : keys) {
    // "0,1" always contiguous, "3,4" always contiguous
    EXPECT_NE(key.find("0,1"), std::string::npos) << key;
    EXPECT_NE(key.find("3,4"), std::string::npos) << key;
  }
}

TEST(GroupedEnumerator, ShuffledEmitsCapturedOrderFirst) {
  std::vector<EventUnit> units{{{0}}, {{1}}, {{2}}, {{3}}};
  GroupedEnumerator grouped(units, GroupedEnumerator::Order::Shuffled, 17);
  EXPECT_EQ(grouped.next()->key(), "0,1,2,3");
}

TEST(GroupedEnumerator, UniverseSizeIsUnitFactorial) {
  std::vector<EventUnit> units{{{0, 1, 2}}, {{3}}, {{4, 5}}};
  GroupedEnumerator grouped(units);
  EXPECT_EQ(grouped.universe_size(), 6u);
}

TEST(Enumerators, ResetRestartsFromScratch) {
  DfsEnumerator dfs(ids(4));
  const auto first = dfs.next()->key();
  dfs.next();
  dfs.reset();
  EXPECT_EQ(dfs.next()->key(), first);
  EXPECT_EQ(dfs.emitted(), 1u);
}

// ---------------------------------------------------------------------------
// Shared-prefix hints (incremental prefix replay)
// ---------------------------------------------------------------------------

TEST(PrefixHints, GroupedLexicographicHintIsExactInEventPositions) {
  // Multi-event units: the hint must count *events*, not units.
  std::vector<EventUnit> units{{{0, 1}}, {{2}}, {{3, 4, 5}}, {{6}}};
  GroupedEnumerator grouped(units);
  auto prev = grouped.next();
  ASSERT_TRUE(prev);
  EXPECT_FALSE(grouped.last_common_prefix().has_value());  // nothing before first
  size_t emissions = 1;
  while (auto il = grouped.next()) {
    const auto hint = grouped.last_common_prefix();
    ASSERT_TRUE(hint.has_value());
    // Units partition distinct event ids, so the shared unit-prefix measured
    // in events IS the exact shared event-prefix.
    EXPECT_EQ(*hint, common_prefix_len(*prev, *il)) << "emission " << emissions;
    prev = il;
    ++emissions;
  }
  EXPECT_EQ(emissions, 24u);  // 4! permutations
}

TEST(PrefixHints, DfsHintIsExact) {
  DfsEnumerator dfs(ids(4));
  auto prev = dfs.next();
  ASSERT_TRUE(prev);
  EXPECT_FALSE(dfs.last_common_prefix().has_value());
  while (auto il = dfs.next()) {
    const auto hint = dfs.last_common_prefix();
    ASSERT_TRUE(hint.has_value());
    EXPECT_EQ(*hint, common_prefix_len(*prev, *il));
    prev = il;
  }
}

TEST(PrefixHints, ShuffledAndRandomProvideNoHint) {
  std::vector<EventUnit> units{{{0}}, {{1}}, {{2}}};
  GroupedEnumerator shuffled(units, GroupedEnumerator::Order::Shuffled, 7);
  while (shuffled.next()) EXPECT_FALSE(shuffled.last_common_prefix().has_value());

  RandomEnumerator rand(ids(3), 7);
  while (rand.next()) EXPECT_FALSE(rand.last_common_prefix().has_value());
}

TEST(PrefixHints, PrunedEnumeratorHintIsLowerBoundAcrossSkippedPulls) {
  // When the pipeline rejects inner emissions, the hint must hold between the
  // two interleavings actually *emitted*, i.e. the min over the skipped chain.
  std::vector<EventUnit> units{{{0}}, {{1}}, {{2}}, {{3}}};
  auto inner = std::make_unique<GroupedEnumerator>(units);
  PruningPipeline pipeline;
  pipeline.add(std::make_unique<IndependencePruner>(
      IndependencePruner::Spec{{2, 3}, {}}));
  PrunedEnumerator pruned(std::move(inner), std::move(pipeline));

  std::optional<Interleaving> prev;
  size_t checked = 0;
  while (auto il = pruned.next()) {
    const auto hint = pruned.last_common_prefix();
    if (prev) {
      ASSERT_TRUE(hint.has_value());  // grouped-lex inner always hints
      EXPECT_LE(*hint, common_prefix_len(*prev, *il));
      ++checked;
    }
    prev = il;
  }
  EXPECT_GT(checked, 0u);
  EXPECT_GT(pruned.pipeline().stats().pruned, 0u) << "pruner never skipped a pull";
}

// ---------------------------------------------------------------------------
// Packed dedup keys
// ---------------------------------------------------------------------------

TEST(PackedDedupKeys, WidthScalesWithMaxId) {
  EXPECT_EQ(packed_key_width(0), 1);
  EXPECT_EQ(packed_key_width(255), 1);
  EXPECT_EQ(packed_key_width(256), 2);
  EXPECT_EQ(packed_key_width(65535), 2);
  EXPECT_EQ(packed_key_width(65536), 4);
}

TEST(PackedDedupKeys, DistinctSequencesPackToDistinctKeys) {
  const std::vector<size_t> a{0, 1, 2};
  const std::vector<size_t> b{0, 2, 1};
  EXPECT_NE(packed_dedup_key(a, 1), packed_dedup_key(b, 1));
  EXPECT_EQ(packed_dedup_key(a, 1).size(), 3u);
  EXPECT_EQ(packed_dedup_key(a, 2).size(), 6u);
  // Multi-byte little-endian encoding keeps ids > 255 distinct.
  const std::vector<int> c{256, 1};
  const std::vector<int> d{0, 1};
  EXPECT_NE(packed_dedup_key(c, 2), packed_dedup_key(d, 2));
}

TEST(PackedDedupKeys, CacheBytesTracksEmittedCount) {
  // Every shuffled emission inserts exactly one new key, so cache_bytes is an
  // exact linear function of the emitted count: n * width + 48 per key.
  std::vector<EventUnit> units{{{0}}, {{1}}, {{2}}, {{3}}};
  GroupedEnumerator shuffled(units, GroupedEnumerator::Order::Shuffled, 11);
  uint64_t emitted = 0;
  while (shuffled.next()) {
    ++emitted;
    EXPECT_EQ(shuffled.cache_bytes(), emitted * (4 * 1 + 48));
  }
  EXPECT_EQ(emitted, 24u);

  RandomEnumerator rand(ids(4), 11);
  emitted = 0;
  while (rand.next()) {
    ++emitted;
    EXPECT_EQ(rand.cache_bytes(), emitted * (4 * 1 + 48));
  }
  EXPECT_EQ(emitted, 24u);
}

}  // namespace
}  // namespace erpi::core
