// Generation-time subtree pruning (DESIGN.md §10) parity suite: the oracle
// chain must produce a byte-identical run — admitted sequence, prefix hints,
// Stats (including pruned_by multi-attribution), dedup cache bytes and the
// full ReplayReport — versus the legacy generate-then-test path, across all
// four pruners, their guarded combinations, every tree-shaped enumerator,
// parallelism and snapshot depth. Plus a seeded fuzz loop random-walking
// pruner specs with universe accounting cross-checks.
#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <numeric>
#include <set>
#include <string>
#include <vector>

#include "core/pruning.hpp"
#include "core/session.hpp"
#include "proxy/proxy.hpp"
#include "subjects/town.hpp"
#include "util/rng.hpp"

namespace erpi::core {
namespace {

using EnumeratorFactory = std::function<std::unique_ptr<Enumerator>()>;
using PipelineFactory = std::function<PruningPipeline()>;

EnumeratorFactory dfs(int n, uint64_t branch_seed = 0) {
  return [n, branch_seed] {
    std::vector<int> ids(static_cast<size_t>(n));
    std::iota(ids.begin(), ids.end(), 0);
    return std::make_unique<DfsEnumerator>(std::move(ids), branch_seed);
  };
}

EnumeratorFactory grouped_lex(std::vector<EventUnit> units) {
  return [units] {
    return std::make_unique<GroupedEnumerator>(units, GroupedEnumerator::Order::Lexicographic);
  };
}

/// Everything observable about one exhaustive PrunedEnumerator run.
struct RunTrace {
  std::vector<std::string> admitted;
  std::vector<std::string> hints;  // last_common_prefix per emission, "-" = none
  PruningPipeline::Stats stats;
  uint64_t cache_bytes = 0;
  bool oracle_attached = false;
  OracleChain::Telemetry telemetry;
};

RunTrace run_exhaustive(const EnumeratorFactory& make_inner,
                        const PipelineFactory& make_pipeline, bool generation_pruning) {
  PrunedEnumerator pruned(make_inner(), make_pipeline());
  pruned.set_generation_pruning(generation_pruning);
  RunTrace trace;
  while (auto il = pruned.next()) {
    trace.admitted.push_back(il->key());
    const auto hint = pruned.last_common_prefix();
    trace.hints.push_back(hint ? std::to_string(*hint) : "-");
  }
  trace.stats = pruned.pipeline().stats();
  trace.cache_bytes = pruned.pipeline().cache_bytes();
  if (const auto* chain = pruned.oracle_chain()) {
    trace.oracle_attached = true;
    trace.telemetry = chain->telemetry();
  }
  return trace;
}

/// The parity property: oracles on vs. off must be indistinguishable in every
/// observable output. `expect_cuts` additionally demands the oracle chain
/// actually attached and skipped generation work (so these tests cannot pass
/// vacuously through a refused chain).
void expect_parity(const EnumeratorFactory& make_inner, const PipelineFactory& make_pipeline,
                   bool expect_cuts) {
  const RunTrace legacy = run_exhaustive(make_inner, make_pipeline, false);
  const RunTrace oracle = run_exhaustive(make_inner, make_pipeline, true);
  EXPECT_FALSE(legacy.oracle_attached);
  EXPECT_EQ(oracle.admitted, legacy.admitted);
  EXPECT_EQ(oracle.hints, legacy.hints);
  EXPECT_EQ(oracle.stats.admitted, legacy.stats.admitted);
  EXPECT_EQ(oracle.stats.pruned, legacy.stats.pruned);
  EXPECT_EQ(oracle.stats.pruned_by, legacy.stats.pruned_by);
  EXPECT_EQ(oracle.cache_bytes, legacy.cache_bytes);
  if (expect_cuts) {
    ASSERT_TRUE(oracle.oracle_attached);
    EXPECT_GT(oracle.telemetry.subtrees_cut, 0u);
    EXPECT_GT(oracle.telemetry.candidates_skipped, 0u);
    EXPECT_EQ(oracle.telemetry.blocked_cuts, 0u);
  }
}

PipelineFactory independence(std::vector<int> independent, std::set<int> neutral) {
  return [independent, neutral] {
    PruningPipeline pipeline;
    IndependencePruner::Spec spec;
    spec.independent_events = independent;
    spec.neutral_events = neutral;
    pipeline.add(std::make_unique<IndependencePruner>(spec));
    return pipeline;
  };
}

PipelineFactory failed_ops(std::vector<int> preds, std::vector<int> succs) {
  return [preds, succs] {
    PruningPipeline pipeline;
    FailedOpsPruner::Spec spec;
    spec.predecessor_events = preds;
    spec.successor_events = succs;
    pipeline.add(std::make_unique<FailedOpsPruner>(spec));
    return pipeline;
  };
}

// ---------------------------------------------------------------------------
// Single-pruner parity, DFS event domain
// ---------------------------------------------------------------------------

TEST(GenerationPruning, IndependenceAllNeutralDfs) {
  expect_parity(dfs(6), independence({1, 3, 5}, {0, 2, 4}), /*expect_cuts=*/true);
}

TEST(GenerationPruning, IndependenceWithBlockersDfs) {
  expect_parity(dfs(6), independence({0, 2, 4}, {}), /*expect_cuts=*/true);
}

TEST(GenerationPruning, IndependencePairDfs) {
  expect_parity(dfs(5), independence({1, 4}, {2}), /*expect_cuts=*/true);
}

TEST(GenerationPruning, FailedOpsDfs) {
  expect_parity(dfs(6), failed_ops({0, 1}, {3, 4, 5}), /*expect_cuts=*/true);
}

TEST(GenerationPruning, FailedOpsNoPredecessorsPlacedLateDfs) {
  expect_parity(dfs(5), failed_ops({4}, {0, 2}), /*expect_cuts=*/true);
}

TEST(GenerationPruning, GroupPrunerDfs) {
  std::vector<EventUnit> units;
  units.push_back({{0, 1}});
  units.push_back({{2}});
  units.push_back({{3}});
  units.push_back({{4, 5}});
  const auto make_pipeline = [units] {
    PruningPipeline pipeline;
    pipeline.add(std::make_unique<GroupPruner>(units));
    return pipeline;
  };
  expect_parity(dfs(6), make_pipeline, /*expect_cuts=*/true);
}

TEST(GenerationPruning, GroupPrunerLongChainDfs) {
  std::vector<EventUnit> units;
  units.push_back({{0, 1, 2}});
  units.push_back({{3}});
  units.push_back({{4, 5}});
  units.push_back({{6}});
  const auto make_pipeline = [units] {
    PruningPipeline pipeline;
    pipeline.add(std::make_unique<GroupPruner>(units));
    return pipeline;
  };
  expect_parity(dfs(7), make_pipeline, /*expect_cuts=*/true);
}

// A shuffled DFS branch order breaks the rank==id guard for Independence: the
// chain must refuse to attach (never cut unsoundly) and the run must still be
// identical to the legacy path.
TEST(GenerationPruning, ShuffledBranchOrderRefusesUnsoundOracle) {
  const RunTrace legacy = run_exhaustive(dfs(5, 7), independence({0, 2, 4}, {}), false);
  const RunTrace oracle = run_exhaustive(dfs(5, 7), independence({0, 2, 4}, {}), true);
  EXPECT_EQ(oracle.admitted, legacy.admitted);
  EXPECT_EQ(oracle.stats.pruned_by, legacy.stats.pruned_by);
  if (oracle.oracle_attached) {
    // if a future guard relaxation attaches, it must still be parity-exact
    EXPECT_EQ(oracle.stats.pruned, legacy.stats.pruned);
  }
}

// Group pruning is branch-order independent (rank-lex-minimality is defined
// in rank space), so a shuffled DFS still gets cuts — and stays exact.
TEST(GenerationPruning, GroupPrunerShuffledBranchOrderDfs) {
  std::vector<EventUnit> units;
  units.push_back({{0, 1}});
  units.push_back({{2}});
  units.push_back({{3, 4}});
  units.push_back({{5}});
  const auto make_pipeline = [units] {
    PruningPipeline pipeline;
    pipeline.add(std::make_unique<GroupPruner>(units));
    return pipeline;
  };
  expect_parity(dfs(6, 1234), make_pipeline, /*expect_cuts=*/true);
}

// ---------------------------------------------------------------------------
// Pruner combinations (composition guards must admit these)
// ---------------------------------------------------------------------------

TEST(GenerationPruning, IndependencePlusFailedOpsDfs) {
  const auto make_pipeline = [] {
    PruningPipeline pipeline;
    IndependencePruner::Spec ind;
    ind.independent_events = {1, 2};
    ind.neutral_events = {0, 3, 4, 5, 6};
    pipeline.add(std::make_unique<IndependencePruner>(ind));
    FailedOpsPruner::Spec fo;
    fo.predecessor_events = {4};
    fo.successor_events = {5, 6};
    pipeline.add(std::make_unique<FailedOpsPruner>(fo));
    return pipeline;
  };
  expect_parity(dfs(7), make_pipeline, /*expect_cuts=*/true);
}

TEST(GenerationPruning, GroupPlusIndependenceDfs) {
  const auto make_pipeline = [] {
    std::vector<EventUnit> units;
    units.push_back({{0, 1}});
    for (int id = 2; id <= 5; ++id) units.push_back({{id}});
    PruningPipeline pipeline;
    pipeline.add(std::make_unique<GroupPruner>(units));
    IndependencePruner::Spec ind;
    ind.independent_events = {2, 4};
    ind.neutral_events = {1, 3, 5};  // guard: followers must be neutral
    pipeline.add(std::make_unique<IndependencePruner>(ind));
    return pipeline;
  };
  expect_parity(dfs(6), make_pipeline, /*expect_cuts=*/true);
}

TEST(GenerationPruning, TwoIndependenceSpecsDfs) {
  const auto make_pipeline = [] {
    PruningPipeline pipeline;
    IndependencePruner::Spec a;
    a.independent_events = {0, 1};
    a.neutral_events = {2, 3, 4, 5};
    pipeline.add(std::make_unique<IndependencePruner>(a));
    IndependencePruner::Spec b;
    b.independent_events = {4, 5};
    b.neutral_events = {0, 1, 2, 3};
    pipeline.add(std::make_unique<IndependencePruner>(b));
    return pipeline;
  };
  expect_parity(dfs(6), make_pipeline, /*expect_cuts=*/true);
}

// ---------------------------------------------------------------------------
// Grouped-lex unit domain
// ---------------------------------------------------------------------------

std::vector<EventUnit> stress_units() {
  // the 6-unit shape of the parallel stress workload: two 3-event groups,
  // one auto-paired sync, three singletons
  std::vector<EventUnit> units;
  units.push_back({{0, 1, 2}});
  units.push_back({{3, 4, 5}});
  units.push_back({{6}});
  units.push_back({{7, 8}});
  units.push_back({{9}});
  units.push_back({{10}});
  return units;
}

TEST(GenerationPruning, IndependenceGroupedLex) {
  expect_parity(grouped_lex(stress_units()), independence({6, 9}, {10}),
                /*expect_cuts=*/true);
}

TEST(GenerationPruning, FailedOpsGroupedLex) {
  expect_parity(grouped_lex(stress_units()), failed_ops({6}, {9, 10}),
                /*expect_cuts=*/true);
}

// An independence spec hosted on a multi-event unit has no per-unit prefix
// form — the chain must refuse, and refusal must be invisible in the output.
TEST(GenerationPruning, MultiEventHostRefusesUnitOracle) {
  const auto make_pipeline = independence({0, 9}, {10});  // 0 lives in unit {0,1,2}
  const RunTrace legacy = run_exhaustive(grouped_lex(stress_units()), make_pipeline, false);
  const RunTrace oracle = run_exhaustive(grouped_lex(stress_units()), make_pipeline, true);
  EXPECT_EQ(oracle.admitted, legacy.admitted);
  EXPECT_EQ(oracle.stats.pruned_by, legacy.stats.pruned_by);
  if (oracle.oracle_attached) EXPECT_EQ(oracle.telemetry.subtrees_cut, 0u);
}

// ---------------------------------------------------------------------------
// No tree structure / runtime mutation fallbacks
// ---------------------------------------------------------------------------

TEST(GenerationPruning, RandomEnumeratorHasNoOracle) {
  const auto make_inner = [] {
    std::vector<int> ids(5);
    std::iota(ids.begin(), ids.end(), 0);
    return std::make_unique<RandomEnumerator>(std::move(ids), 77);
  };
  const auto make_pipeline = independence({0, 2}, {1, 3, 4});
  const RunTrace legacy = run_exhaustive(make_inner, make_pipeline, false);
  const RunTrace oracle = run_exhaustive(make_inner, make_pipeline, true);
  EXPECT_FALSE(oracle.oracle_attached);
  EXPECT_EQ(oracle.admitted, legacy.admitted);
  EXPECT_EQ(oracle.stats.pruned, legacy.stats.pruned);
}

// Mid-run pipeline mutation (the runtime-constraints flow): the oracle chain
// detaches at the version bump and the run must continue exactly like a
// legacy run mutated at the same emission index.
TEST(GenerationPruning, MidRunPipelineMutationDetachesExactly) {
  const auto make_pipeline = independence({1, 3, 5}, {0, 2, 4});
  const auto run_with_mutation = [&](bool generation_pruning) {
    PrunedEnumerator pruned(dfs(6)(), make_pipeline());
    pruned.set_generation_pruning(generation_pruning);
    RunTrace trace;
    while (auto il = pruned.next()) {
      trace.admitted.push_back(il->key());
      if (trace.admitted.size() == 3) {
        FailedOpsPruner::Spec fo;
        fo.predecessor_events = {0};
        fo.successor_events = {2, 4};
        pruned.pipeline().add(std::make_unique<FailedOpsPruner>(fo));
      }
    }
    trace.stats = pruned.pipeline().stats();
    trace.cache_bytes = pruned.pipeline().cache_bytes();
    return trace;
  };
  const RunTrace legacy = run_with_mutation(false);
  const RunTrace oracle = run_with_mutation(true);
  EXPECT_EQ(oracle.admitted, legacy.admitted);
  EXPECT_EQ(oracle.stats.admitted, legacy.stats.admitted);
  EXPECT_EQ(oracle.stats.pruned, legacy.stats.pruned);
  EXPECT_EQ(oracle.stats.pruned_by, legacy.stats.pruned_by);
  EXPECT_EQ(oracle.cache_bytes, legacy.cache_bytes);
}

// ---------------------------------------------------------------------------
// Full-stack ReplayReport parity (Session), parallelism x snapshot depth
// ---------------------------------------------------------------------------

util::Json problem(const char* name) {
  util::Json j = util::Json::object();
  j["problem"] = name;
  return j;
}

void stress_workload(proxy::RdlProxy& proxy) {
  (void)proxy.update(0, "report", problem("otb"));   // e0
  (void)proxy.sync_req(0, 1);                        // e1
  (void)proxy.exec_sync(0, 1);                       // e2
  (void)proxy.update(1, "report", problem("ph"));    // e3
  (void)proxy.sync_req(1, 0);                        // e4
  (void)proxy.exec_sync(1, 0);                       // e5
  (void)proxy.update(1, "resolve", problem("otb"));  // e6
  (void)proxy.sync_req(1, 0);                        // e7
  (void)proxy.exec_sync(1, 0);                       // e8
  (void)proxy.update(0, "report", problem("lamp"));  // e9
  (void)proxy.query(0, "transmit");                  // e10
}

struct SessionRun {
  ReplayReport report;
  PruningPipeline::Stats stats;
};

SessionRun run_session(bool generation_pruning, int parallelism, size_t snapshot_depth) {
  Session::Config config;
  config.generation_order = GroupedEnumerator::Order::Lexicographic;
  config.generation_pruning = generation_pruning;
  config.spec_groups = {{0, 1, 2}, {3, 4, 5}};
  config.independence.push_back({{6, 9}, {10}});
  config.replay.stop_on_violation = false;
  config.replay.max_interleavings = 100'000;
  config.parallelism = parallelism;
  config.max_snapshot_depth = snapshot_depth;
  config.subject_factory = [] { return std::make_unique<subjects::TownApp>(2); };

  subjects::TownApp town(2);
  proxy::RdlProxy proxy(town);
  Session session(proxy, std::move(config));
  session.start();
  stress_workload(proxy);
  SessionRun run;
  run.report = session.end([](proxy::Rdl&) -> AssertionList {
    util::Json expected = util::Json::array();
    expected.push_back("lamp");
    expected.push_back("ph");
    return {query_result_equals(10, expected)};
  });
  run.stats = session.pruning_report().pipeline;
  return run;
}

TEST(GenerationPruning, SessionReportParityAcrossParallelismAndSnapshotDepth) {
  const SessionRun baseline = run_session(false, 1, 16);
  ASSERT_GT(baseline.report.explored, 0u);
  ASSERT_GT(baseline.stats.pruned, 0u);  // the independence spec engages
  for (const int parallelism : {1, 4}) {
    for (const size_t depth : {size_t{0}, size_t{16}}) {
      SCOPED_TRACE("parallelism=" + std::to_string(parallelism) +
                   " depth=" + std::to_string(depth));
      const SessionRun on = run_session(true, parallelism, depth);
      EXPECT_EQ(on.report.explored, baseline.report.explored);
      EXPECT_EQ(on.report.violations, baseline.report.violations);
      EXPECT_EQ(on.report.reproduced, baseline.report.reproduced);
      EXPECT_EQ(on.report.first_violation_index, baseline.report.first_violation_index);
      EXPECT_EQ(on.report.first_violation_assertion,
                baseline.report.first_violation_assertion);
      ASSERT_TRUE(on.report.first_violation.has_value());
      ASSERT_TRUE(baseline.report.first_violation.has_value());
      EXPECT_EQ(on.report.first_violation->key(), baseline.report.first_violation->key());
      EXPECT_EQ(on.stats.admitted, baseline.stats.admitted);
      EXPECT_EQ(on.stats.pruned, baseline.stats.pruned);
      EXPECT_EQ(on.stats.pruned_by, baseline.stats.pruned_by);
    }
  }
}

// ---------------------------------------------------------------------------
// Fuzz: random-walk pruner specs, cross-check universe accounting
// ---------------------------------------------------------------------------

TEST(GenerationPruning, FuzzRandomSpecsUniverseAccounting) {
  util::Rng rng(0x9120e5);
  uint64_t total_cuts = 0;
  for (int round = 0; round < 40; ++round) {
    SCOPED_TRACE("round=" + std::to_string(round));
    const int n = 5 + static_cast<int>(rng.next() % 3);  // 5..7 events
    std::vector<int> pool(static_cast<size_t>(n));
    std::iota(pool.begin(), pool.end(), 0);
    for (size_t i = pool.size(); i > 1; --i) {
      std::swap(pool[i - 1], pool[rng.next() % i]);
    }
    size_t cursor = 0;
    const auto take = [&](size_t count) {
      std::vector<int> out;
      while (out.size() < count && cursor < pool.size()) out.push_back(pool[cursor++]);
      std::sort(out.begin(), out.end());
      return out;
    };

    // Randomly assemble a pipeline from disjoint event pools so the
    // composition guards can accept it; leftovers stay unconstrained.
    const uint64_t shape = rng.next();
    std::vector<EventUnit> group_units;
    std::vector<int> ind, fo_preds, fo_succs;
    std::set<int> ind_neutral;
    if (shape & 1) {
      const auto pair = take(2);
      if (pair.size() == 2) {
        for (int id = 0; id < n; ++id) {
          if (id != pair[0] && id != pair[1]) group_units.push_back({{id}});
        }
        group_units.push_back({{pair[0], pair[1]}});
      }
    }
    if (shape & 2) {
      ind = take(2 + static_cast<size_t>(rng.next() % 2));
      // all remaining events neutral: keeps group followers inside the
      // neutral set whenever both pruners are active
      for (int id = 0; id < n; ++id) {
        if (std::find(ind.begin(), ind.end(), id) == ind.end()) ind_neutral.insert(id);
      }
    }
    if (shape & 4) {
      fo_preds = take(1);
      fo_succs = take(2);
    }

    const auto make_pipeline = [&] {
      PruningPipeline pipeline;
      if (!group_units.empty()) pipeline.add(std::make_unique<GroupPruner>(group_units));
      if (ind.size() >= 2) {
        IndependencePruner::Spec spec;
        spec.independent_events = ind;
        spec.neutral_events = ind_neutral;
        pipeline.add(std::make_unique<IndependencePruner>(spec));
      }
      if (!fo_preds.empty() && fo_succs.size() >= 2) {
        FailedOpsPruner::Spec spec;
        spec.predecessor_events = fo_preds;
        spec.successor_events = fo_succs;
        pipeline.add(std::make_unique<FailedOpsPruner>(spec));
      }
      return pipeline;
    };

    const RunTrace legacy = run_exhaustive(dfs(n), make_pipeline, false);
    const RunTrace oracle = run_exhaustive(dfs(n), make_pipeline, true);
    EXPECT_EQ(oracle.admitted, legacy.admitted);
    EXPECT_EQ(oracle.hints, legacy.hints);
    EXPECT_EQ(oracle.stats.admitted, legacy.stats.admitted);
    EXPECT_EQ(oracle.stats.pruned, legacy.stats.pruned);
    EXPECT_EQ(oracle.stats.pruned_by, legacy.stats.pruned_by);
    EXPECT_EQ(oracle.cache_bytes, legacy.cache_bytes);
    // universe accounting: every candidate is admitted or pruned, exactly
    EXPECT_EQ(oracle.stats.admitted + oracle.stats.pruned,
              factorial_saturated(static_cast<uint64_t>(n)));
    total_cuts += oracle.telemetry.subtrees_cut;
  }
  EXPECT_GT(total_cuts, 0u);  // the fuzz must actually exercise cuts
}

}  // namespace
}  // namespace erpi::core
