// Event grouping (Algorithm 1), unit flattening, interleaving helpers.
#include <gtest/gtest.h>

#include <numeric>

#include "core/interleaving.hpp"
#include "proxy/proxy.hpp"
#include "subjects/town.hpp"

namespace erpi::core {
namespace {

proxy::EventSet capture_town_trace() {
  static subjects::TownApp town(3);
  town.reset();
  proxy::RdlProxy proxy(town);
  proxy.start_capture();
  util::Json arg = util::Json::object();
  arg["problem"] = "x";
  proxy.update(0, "report", arg);   // e0
  proxy.sync_req(0, 1);             // e1
  proxy.exec_sync(0, 1);            // e2
  proxy.update(1, "report", arg);   // e3
  proxy.sync_req(1, 0);             // e4
  proxy.sync_req(0, 2);             // e5
  proxy.exec_sync(1, 0);            // e6
  proxy.exec_sync(0, 2);            // e7
  return proxy.end_capture();
}

TEST(BuildUnits, PairsSyncReqWithMatchingExec) {
  const auto events = capture_town_trace();
  const auto units = build_units(events);
  // pairs: (1,2), (4,6), (5,7); singletons: 0, 3
  ASSERT_EQ(units.size(), 5u);
  std::vector<std::vector<int>> got;
  for (const auto& unit : units) got.push_back(unit.events);
  EXPECT_EQ(got, (std::vector<std::vector<int>>{{0}, {1, 2}, {3}, {4, 6}, {5, 7}}));
}

TEST(BuildUnits, PairsByChannelNotJustKind) {
  const auto events = capture_town_trace();
  const auto units = build_units(events);
  // e4 is (1->0), e5 is (0->2): each pairs with its own channel's exec even
  // though e5 was sent before e6 executed
  for (const auto& unit : units) {
    if (unit.events.size() == 2 && unit.events[0] == 4) EXPECT_EQ(unit.events[1], 6);
    if (unit.events.size() == 2 && unit.events[0] == 5) EXPECT_EQ(unit.events[1], 7);
  }
}

TEST(BuildUnits, SpecGroupsChainEvents) {
  const auto events = capture_town_trace();
  const auto units = build_units(events, {{0, 1, 2}});
  // events 0,1,2 form one chain; pairing for e1/e2 is preempted by the group
  ASSERT_EQ(units.size(), 4u);
  EXPECT_EQ(units[0].events, (std::vector<int>{0, 1, 2}));
}

TEST(BuildUnits, RejectsUnknownEventIds) {
  const auto events = capture_town_trace();
  EXPECT_THROW(build_units(events, {{0, 99}}), std::out_of_range);
}

TEST(BuildUnits, FirstPairingWinsOnConflict) {
  const auto events = capture_town_trace();
  // group (3,1): event 1 already pairs with 2? pairing happens first in id
  // order, but a spec group can only claim events that are not yet followers
  const auto units = build_units(events, {{3, 2}});
  // e2 already follows e1, so the spec group (3,2) is ignored for e2
  bool found_pair_1_2 = false;
  for (const auto& unit : units) {
    if (unit.events == std::vector<int>{1, 2}) found_pair_1_2 = true;
  }
  EXPECT_TRUE(found_pair_1_2);
}

TEST(Flatten, ConcatenatesUnitsInOrder) {
  std::vector<EventUnit> units{{{0}}, {{1, 2}}, {{3}}};
  const auto il = flatten(units, {2, 0, 1});
  EXPECT_EQ(il.order, (std::vector<int>{3, 0, 1, 2}));
}

TEST(Interleaving, PositionAndKeyAndLamport) {
  Interleaving il;
  il.order = {3, 0, 2, 1};
  EXPECT_EQ(il.key(), "3,0,2,1");
  EXPECT_EQ(*il.position_of(2), 2u);
  EXPECT_FALSE(il.position_of(9));
  EXPECT_EQ(il.lamport(0), 1);
  EXPECT_EQ(il.lamport(3), 4);
}

TEST(Interleaving, AppendKeyMatchesKeyIncludingMultiDigitIds) {
  Interleaving il;
  il.order = {10, 3, 0, 127, 9};
  std::string out = "prefix:";
  il.append_key(out);
  EXPECT_EQ(out, "prefix:" + il.key());
  EXPECT_EQ(il.key(), "10,3,0,127,9");
  Interleaving empty;
  std::string untouched = "x";
  empty.append_key(untouched);
  EXPECT_EQ(untouched, "x");
}

// Allocation regression for the hot dedup/persistence path: appending into a
// buffer with enough spare capacity must not reallocate (capacity and data
// pointer unchanged), unlike key() which builds a fresh string per call.
TEST(Interleaving, AppendKeyReusesCallerBuffer) {
  Interleaving il;
  il.order.resize(32);
  std::iota(il.order.begin(), il.order.end(), 0);
  std::string buffer;
  buffer.reserve(256);
  const char* data_before = buffer.data();
  const size_t capacity_before = buffer.capacity();
  for (int round = 0; round < 8; ++round) {
    buffer.clear();
    il.append_key(buffer);
    EXPECT_EQ(buffer.data(), data_before) << "round " << round;
    EXPECT_EQ(buffer.capacity(), capacity_before) << "round " << round;
  }
  EXPECT_EQ(buffer, il.key());
}

TEST(Factorial, SaturatesInsteadOfOverflowing) {
  EXPECT_EQ(factorial_saturated(0), 1u);
  EXPECT_EQ(factorial_saturated(5), 120u);
  EXPECT_EQ(factorial_saturated(20), 2432902008176640000ull);
  EXPECT_EQ(factorial_saturated(21), UINT64_MAX);
  EXPECT_EQ(factorial_saturated(100), UINT64_MAX);
}

}  // namespace
}  // namespace erpi::core
