// Tests for the future-work extensions: workload fuzzing and resource
// profiling (paper §8).
#include <gtest/gtest.h>

#include "core/fuzz.hpp"
#include "core/profile.hpp"
#include "core/session.hpp"
#include "subjects/crdt_collection.hpp"
#include "subjects/town.hpp"

namespace erpi::core {
namespace {

util::Json jobj(std::initializer_list<std::pair<const char*, util::Json>> kv) {
  util::Json out = util::Json::object();
  for (const auto& [k, v] : kv) out[k] = v;
  return out;
}

// ---------------------------------------------------------------------------
// WorkloadFuzzer
// ---------------------------------------------------------------------------

FuzzConfig small_fuzz_config() {
  FuzzConfig config;
  config.workloads = 8;
  config.min_ops = 3;
  config.max_ops = 6;
  config.max_interleavings = 120;
  return config;
}

TEST(WorkloadFuzzer, FixedLibrarySurvivesConvergenceFuzzing) {
  WorkloadFuzzer fuzzer(
      [] { return std::make_unique<subjects::CrdtCollection>(2); },
      WorkloadFuzzer::crdt_collection_schema(),
      [] {
        // the OR-set, counter and register views must converge whenever both
        // replicas saw the same ops (list moves are excluded: naive moves
        // are intentionally unsafe and fuzzed separately below)
        return AssertionList{converge_if_same_witness({0, 1}, {"seen"}, {"set"}),
                             converge_if_same_witness({0, 1}, {"seen"}, {"counter"}),
                             converge_if_same_witness({0, 1}, {"seen"}, {"reg"})};
      },
      small_fuzz_config());
  const auto report = fuzzer.run();
  EXPECT_EQ(report.workloads_run, 8);
  EXPECT_GT(report.interleavings_replayed, 0u);
  for (const auto& finding : report.findings) {
    ADD_FAILURE() << "unexpected violation: " << finding.message;
  }
}

TEST(WorkloadFuzzer, FindsSeededSequentialIdClashes) {
  // fuzz the buggy (sequential to-do ids) library with a schema that only
  // creates to-dos; the id-clash misconception must surface
  std::vector<FuzzOp> schema;
  schema.push_back({"todo_create",
                    [](util::Rng&, int step) {
                      return jobj({{"text", "task " + std::to_string(step)}});
                    },
                    1.0});
  FuzzConfig config = small_fuzz_config();
  config.workloads = 12;
  WorkloadFuzzer fuzzer(
      [] { return std::make_unique<subjects::CrdtCollection>(2); }, schema,
      [] {
        return AssertionList{converge_if_same_witness({0, 1}, {"seen"}, {"todos"})};
      },
      config);
  const auto report = fuzzer.run();
  EXPECT_FALSE(report.clean());
  const auto& finding = report.findings.front();
  EXPECT_GE(finding.workload_index, 0);
  EXPECT_FALSE(finding.workload.empty());
  EXPECT_FALSE(finding.interleaving.order.empty());
  EXPECT_NE(finding.message.find("diverge"), std::string::npos);
}

TEST(WorkloadFuzzer, DeterministicForSameSeed) {
  const auto run_once = [] {
    WorkloadFuzzer fuzzer(
        [] { return std::make_unique<subjects::CrdtCollection>(2); },
        WorkloadFuzzer::crdt_collection_schema(),
        [] {
          return AssertionList{
              converge_if_same_witness({0, 1}, {"seen"}, {"naive_list"})};
        },
        small_fuzz_config());
    return fuzzer.run();
  };
  const auto first = run_once();
  const auto second = run_once();
  EXPECT_EQ(first.findings.size(), second.findings.size());
  EXPECT_EQ(first.interleavings_replayed, second.interleavings_replayed);
  if (!first.findings.empty()) {
    EXPECT_EQ(first.findings[0].workload_seed, second.findings[0].workload_seed);
    EXPECT_EQ(first.findings[0].interleaving.key(),
              second.findings[0].interleaving.key());
  }
}

// ---------------------------------------------------------------------------
// ResourceProfiler
// ---------------------------------------------------------------------------

TEST(ResourceProfiler, MeasuresEveryInterleaving) {
  subjects::TownApp town(2);
  proxy::RdlProxy proxy(town);
  Session::Config config;
  // raw-event DFS exploration: impossible orders (exec before its send)
  // surface as failed ops for the profiler to count
  config.mode = ExplorationMode::Dfs;
  config.replay.stop_on_violation = false;
  config.replay.max_interleavings = 50;
  Session session(proxy, config);
  session.start();
  proxy.update(0, "report", jobj({{"problem", "a"}}));
  proxy.sync(0, 1);
  proxy.update(1, "resolve", jobj({{"problem", "a"}}));
  proxy.sync(1, 0);

  auto profiler = std::make_shared<ResourceProfiler>(&town.network());
  const auto report = session.end({profiler});
  EXPECT_FALSE(report.reproduced);  // the profiler never fails
  EXPECT_EQ(profiler->profiles().size(), report.explored);

  const auto summary = profiler->summary();
  EXPECT_EQ(summary.interleavings, report.explored);
  EXPECT_EQ(summary.total_ops, report.explored * 6);  // 6 events each
  EXPECT_GT(summary.total_failed_ops, 0u);  // some orders exec before req
  EXPECT_GT(summary.mean_state_bytes, 0.0);
  EXPECT_LE(summary.min_state_bytes, summary.max_state_bytes);
  ASSERT_TRUE(summary.heaviest_state.has_value());
  EXPECT_EQ(summary.heaviest_state->state_bytes, summary.max_state_bytes);
  ASSERT_TRUE(summary.heaviest_traffic.has_value());
  EXPECT_LE(summary.heaviest_traffic->messages_delivered,
            summary.heaviest_traffic->messages_sent);
}

TEST(ResourceProfiler, DetectsTrafficVariationAcrossInterleavings) {
  // whether a sync_req is sent before or after updates changes payloads and
  // delivery counts; the profiler must surface the spread
  subjects::TownApp town(2);
  proxy::RdlProxy proxy(town);
  Session::Config config;
  config.replay.stop_on_violation = false;
  config.replay.max_interleavings = 200;
  Session session(proxy, config);
  session.start();
  proxy.update(0, "report", jobj({{"problem", "a"}}));
  proxy.update(0, "report", jobj({{"problem", "b"}}));
  proxy.sync(0, 1);
  auto profiler = std::make_shared<ResourceProfiler>(&town.network());
  (void)session.end({profiler});
  const auto summary = profiler->summary();
  // state size varies: interleavings where the sync ran before the reports
  // leave replica 1 empty
  EXPECT_LT(summary.min_state_bytes, summary.max_state_bytes);
}

TEST(ResourceProfiler, WorksWithoutANetworkPointer) {
  subjects::TownApp town(2);
  proxy::RdlProxy proxy(town);
  Session::Config config;
  config.replay.max_interleavings = 5;
  config.replay.stop_on_violation = false;
  Session session(proxy, config);
  session.start();
  proxy.update(0, "report", jobj({{"problem", "a"}}));
  auto profiler = std::make_shared<ResourceProfiler>();
  (void)session.end({profiler});
  ASSERT_FALSE(profiler->profiles().empty());
  EXPECT_EQ(profiler->profiles()[0].messages_sent, 0u);
  EXPECT_GT(profiler->profiles()[0].state_bytes, 0u);
}

}  // namespace
}  // namespace erpi::core
