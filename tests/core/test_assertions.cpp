// Assertion-library tests against a real subject.
#include <gtest/gtest.h>

#include "core/assertions.hpp"
#include "proxy/proxy.hpp"
#include "subjects/crdt_collection.hpp"

namespace erpi::core {
namespace {

util::Json jobj(std::initializer_list<std::pair<const char*, util::Json>> kv) {
  util::Json out = util::Json::object();
  for (const auto& [k, v] : kv) out[k] = v;
  return out;
}

struct Harness {
  Harness() : app(2), proxy(app) {}

  TestContext context() {
    return TestContext{app, interleaving, events, results};
  }

  subjects::CrdtCollection app;
  proxy::RdlProxy proxy;
  Interleaving interleaving;
  proxy::EventSet events;
  std::vector<util::Result<util::Json>> results;
};

TEST(JsonAt, WalksPathsAndToleratesMissing) {
  const auto doc = util::Json::parse(R"({"a":{"b":[1,2]}})").take();
  EXPECT_TRUE(json_at(doc, {}).is_object());
  EXPECT_TRUE(json_at(doc, {"a", "b"}).is_array());
  EXPECT_TRUE(json_at(doc, {"a", "zz"}).is_null());
  EXPECT_TRUE(json_at(doc, {"a", "b", "c"}).is_null());
}

TEST(Assertions, ReplicasConvergeDetectsDivergence) {
  Harness h;
  auto converge = replicas_converge({0, 1});
  EXPECT_TRUE(converge->check(h.context()).is_ok());
  h.proxy.update(0, "set_add", jobj({{"element", "only-at-0"}}));
  EXPECT_FALSE(converge->check(h.context()).is_ok());
  h.proxy.sync(0, 1);
  EXPECT_TRUE(converge->check(h.context()).is_ok());
}

TEST(Assertions, WitnessConvergenceSkipsDifferentHistories) {
  Harness h;
  auto witnessed = converge_if_same_witness({0, 1}, {"seen"}, {"set"});
  h.proxy.update(0, "set_add", jobj({{"element", "x"}}));
  // replica 1 has not seen the op: different witness, no violation
  EXPECT_TRUE(witnessed->check(h.context()).is_ok());
  h.proxy.sync(0, 1);
  EXPECT_TRUE(witnessed->check(h.context()).is_ok());
}

TEST(Assertions, CrossInterleavingDetectsDivergentReruns) {
  Harness h;
  auto stable = state_consistent_across_interleavings(0);
  stable->on_run_start();
  h.proxy.update(0, "set_add", jobj({{"element", "x"}}));
  EXPECT_TRUE(stable->check(h.context()).is_ok());  // sets the baseline
  EXPECT_TRUE(stable->check(h.context()).is_ok());  // same state: fine
  h.proxy.update(0, "set_add", jobj({{"element", "y"}}));
  EXPECT_FALSE(stable->check(h.context()).is_ok());
  // a new run resets the baseline
  stable->on_run_start();
  EXPECT_TRUE(stable->check(h.context()).is_ok());
}

TEST(Assertions, WitnessedCrossInterleavingKeysOnWitness) {
  Harness h;
  auto stable = consistent_across_interleavings_if_same_witness(0, {"seen"}, {"set"});
  stable->on_run_start();
  h.proxy.update(0, "set_add", jobj({{"element", "x"}}));
  EXPECT_TRUE(stable->check(h.context()).is_ok());
  // growing the witness creates a NEW baseline class: no violation
  h.proxy.update(0, "set_add", jobj({{"element", "y"}}));
  EXPECT_TRUE(stable->check(h.context()).is_ok());
}

TEST(Assertions, NoDuplicatesFlagsRepeatedListValues) {
  Harness h;
  auto unique = no_duplicates({0}, {"list"});
  h.proxy.update(0, "list_insert", jobj({{"index", 0}, {"value", "a"}}));
  h.proxy.update(0, "list_insert", jobj({{"index", 1}, {"value", "b"}}));
  EXPECT_TRUE(unique->check(h.context()).is_ok());
  h.proxy.update(0, "list_insert", jobj({{"index", 2}, {"value", "a"}}));
  const auto status = unique->check(h.context());
  ASSERT_FALSE(status.is_ok());
  EXPECT_NE(status.error().message.find("duplicated"), std::string::npos);
}

TEST(Assertions, ListOrderConsistentComparesReplicas) {
  Harness h;
  auto order = list_order_consistent({0, 1}, {"naive_list"});
  h.proxy.update(0, "naive_append", jobj({{"value", "x"}}));
  h.proxy.update(1, "naive_append", jobj({{"value", "y"}}));
  h.proxy.sync(0, 1);
  h.proxy.sync(1, 0);
  // replica 0: [x, y]; replica 1: [y, x] — the misconception #2 signal
  EXPECT_FALSE(order->check(h.context()).is_ok());
}

TEST(Assertions, IdsUniqueAcrossReplicasFlagsClashes) {
  Harness h;
  auto unique_ids = ids_unique_across_replicas({0, 1}, {"todo_ids"});
  h.proxy.update(0, "todo_create", jobj({{"text", "one"}}));
  EXPECT_TRUE(unique_ids->check(h.context()).is_ok());
  // concurrent creation mints the same sequential id on both replicas
  h.proxy.update(1, "todo_create", jobj({{"text", "uno"}}));
  const auto status = unique_ids->check(h.context());
  ASSERT_FALSE(status.is_ok());
  EXPECT_NE(status.error().message.find("minted by both"), std::string::npos);
}

TEST(Assertions, QueryResultEqualsInspectsInvocationResults) {
  Harness h;
  proxy::Event query_event;
  query_event.id = 0;
  query_event.kind = proxy::EventKind::Query;
  query_event.replica = 0;
  query_event.op = "todo_ids";
  h.events.push_back(query_event);
  h.interleaving.order = {0};
  h.results.emplace_back(util::Json(util::Json::array()));

  util::Json expected = util::Json::array();
  auto equals = query_result_equals(0, expected);
  EXPECT_TRUE(equals->check(h.context()).is_ok());

  util::Json other = util::Json::array();
  other.push_back(int64_t{1});
  auto not_equals = query_result_equals(0, other);
  EXPECT_FALSE(not_equals->check(h.context()).is_ok());

  auto absent = query_result_equals(7, expected);
  EXPECT_FALSE(absent->check(h.context()).is_ok());
}

TEST(Assertions, AllOpsSucceedAndNeedleMatching) {
  Harness h;
  proxy::Event e;
  e.id = 0;
  e.kind = proxy::EventKind::Update;
  e.replica = 0;
  e.op = "twopset_add";
  h.events.push_back(e);
  h.interleaving.order = {0};
  h.results.emplace_back(util::Error{"crdts: twopset_add failed (already added or removed)"});

  EXPECT_FALSE(all_ops_succeed()->check(h.context()).is_ok());
  EXPECT_FALSE(no_failure_matching("twopset_add failed")->check(h.context()).is_ok());
  EXPECT_TRUE(no_failure_matching("unrelated message")->check(h.context()).is_ok());
}

TEST(Assertions, CustomWrapsArbitraryPredicate) {
  Harness h;
  int calls = 0;
  auto probe = custom("probe", [&](const TestContext&) {
    ++calls;
    return util::Status::fail("always");
  });
  EXPECT_EQ(probe->name(), "probe");
  EXPECT_FALSE(probe->check(h.context()).is_ok());
  EXPECT_EQ(calls, 1);
}

TEST(Assertions, QueryStableDetectsOrderFlip) {
  Harness h;
  proxy::Event query_event;
  query_event.id = 0;
  query_event.kind = proxy::EventKind::Query;
  query_event.replica = 0;
  query_event.op = "select_all";
  h.events.push_back(query_event);
  h.interleaving.order = {0};

  auto stable = query_stable_given_witness(0, 0, {"history"});
  stable->on_run_start();
  util::Json first = util::Json::array();
  first.push_back("a");
  first.push_back("b");
  h.results.emplace_back(first);
  EXPECT_TRUE(stable->check(h.context()).is_ok());

  // same content, different order -> violation
  util::Json flipped = util::Json::array();
  flipped.push_back("b");
  flipped.push_back("a");
  h.results.clear();
  h.results.emplace_back(flipped);
  EXPECT_FALSE(stable->check(h.context()).is_ok());

  // different content -> a different class, no violation
  util::Json richer = util::Json::array();
  richer.push_back("a");
  richer.push_back("b");
  richer.push_back("c");
  h.results.clear();
  h.results.emplace_back(richer);
  EXPECT_TRUE(stable->check(h.context()).is_ok());
}

}  // namespace
}  // namespace erpi::core
