// Parallel exploration scheduler tests: deterministic result semantics
// across worker counts (the ISSUE's parallelism ∈ {1, 4, 8} stress test),
// lowest-index violation under stop_on_violation, serialized callback
// delivery, persisted-log equality, shared budget accounting, distributed-
// lock threaded mode under a parallel outer loop, profiler shard merging,
// and the BoundedQueue primitive itself.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "core/profile.hpp"
#include "core/session.hpp"
#include "sched/explorer.hpp"
#include "sched/queue.hpp"
#include "subjects/town.hpp"

namespace erpi::sched {
namespace {

using core::AssertionList;
using core::ReplayReport;
using core::Session;

util::Json problem(const char* name) {
  util::Json j = util::Json::object();
  j["problem"] = name;
  return j;
}

// Two replicas reporting and resolving with syncs, ending in the transmit
// query. With the two spec groups below plus the auto-paired (e7,e8) sync,
// this builds 6 units -> a 720-interleaving universe.
void stress_workload(proxy::RdlProxy& proxy) {
  (void)proxy.update(0, "report", problem("otb"));   // e0
  (void)proxy.sync_req(0, 1);                        // e1
  (void)proxy.exec_sync(0, 1);                       // e2
  (void)proxy.update(1, "report", problem("ph"));    // e3
  (void)proxy.sync_req(1, 0);                        // e4
  (void)proxy.exec_sync(1, 0);                       // e5
  (void)proxy.update(1, "resolve", problem("otb"));  // e6
  (void)proxy.sync_req(1, 0);                        // e7
  (void)proxy.exec_sync(1, 0);                       // e8
  (void)proxy.update(0, "report", problem("lamp"));  // e9
  (void)proxy.query(0, "transmit");                  // e10
}

Session::Config stress_config(int parallelism) {
  Session::Config config;
  config.generation_order = core::GroupedEnumerator::Order::Lexicographic;
  config.spec_groups = {{0, 1, 2}, {3, 4, 5}};
  config.replay.stop_on_violation = false;
  config.replay.max_interleavings = 100'000;
  config.parallelism = parallelism;
  config.subject_factory = [] { return std::make_unique<subjects::TownApp>(2); };
  return config;
}

core::AssertionFactory transmit_assertions() {
  return [](proxy::Rdl&) -> AssertionList {
    // what the identity interleaving transmits (OrSet elements are sorted);
    // reorderings that skip the resolve or a sync violate this
    util::Json expected = util::Json::array();
    expected.push_back("lamp");
    expected.push_back("ph");
    return {core::query_result_equals(10, expected)};
  };
}

ReplayReport run_stress(int parallelism, Session::Config config = {}) {
  if (config.subject_factory == nullptr) config = stress_config(parallelism);
  subjects::TownApp town(2);
  proxy::RdlProxy proxy(town);
  Session session(proxy, std::move(config));
  session.start();
  stress_workload(proxy);
  return session.end(transmit_assertions());
}

// ---------------------------------------------------------------------------
// Deterministic result semantics across worker counts
// ---------------------------------------------------------------------------

TEST(ParallelExplorer, IdenticalReportsAtParallelism148) {
  const ReplayReport sequential = run_stress(1);
  ASSERT_GT(sequential.explored, 100u);  // a real universe, not a toy
  ASSERT_GT(sequential.violations, 0u);
  ASSERT_TRUE(sequential.reproduced);

  for (const int parallelism : {4, 8}) {
    const ReplayReport parallel = run_stress(parallelism);
    EXPECT_EQ(parallel.explored, sequential.explored) << "p=" << parallelism;
    EXPECT_EQ(parallel.violations, sequential.violations) << "p=" << parallelism;
    EXPECT_EQ(parallel.reproduced, sequential.reproduced) << "p=" << parallelism;
    EXPECT_EQ(parallel.first_violation_index, sequential.first_violation_index)
        << "p=" << parallelism;
    EXPECT_EQ(parallel.first_violation_assertion, sequential.first_violation_assertion)
        << "p=" << parallelism;
    ASSERT_TRUE(parallel.first_violation.has_value());
    EXPECT_EQ(parallel.first_violation->key(), sequential.first_violation->key())
        << "p=" << parallelism;
    EXPECT_EQ(parallel.messages, sequential.messages) << "p=" << parallelism;
    EXPECT_EQ(parallel.exhausted, sequential.exhausted) << "p=" << parallelism;
    EXPECT_EQ(parallel.hit_cap, sequential.hit_cap) << "p=" << parallelism;
  }
}

TEST(ParallelExplorer, IdenticalReportsUnderSeededShuffledOrder) {
  auto seeded_config = [](int parallelism) {
    Session::Config config = stress_config(parallelism);
    config.generation_order = core::GroupedEnumerator::Order::Shuffled;
    config.random_seed = 1234;
    return config;
  };
  const ReplayReport sequential = run_stress(1, seeded_config(1));
  for (const int parallelism : {4, 8}) {
    const ReplayReport parallel = run_stress(parallelism, seeded_config(parallelism));
    EXPECT_EQ(parallel.explored, sequential.explored) << "p=" << parallelism;
    EXPECT_EQ(parallel.violations, sequential.violations) << "p=" << parallelism;
    EXPECT_EQ(parallel.first_violation_index, sequential.first_violation_index)
        << "p=" << parallelism;
  }
}

TEST(ParallelExplorer, StopOnViolationReportsLowestIndexViolation) {
  for (const int parallelism : {1, 4, 8}) {
    Session::Config config = stress_config(parallelism);
    config.replay.stop_on_violation = true;
    const ReplayReport report = run_stress(parallelism, std::move(config));
    const ReplayReport baseline = [] {
      Session::Config c = stress_config(1);
      c.replay.stop_on_violation = true;
      return run_stress(1, std::move(c));
    }();
    ASSERT_TRUE(report.reproduced) << "p=" << parallelism;
    EXPECT_EQ(report.first_violation_index, baseline.first_violation_index)
        << "p=" << parallelism;
    EXPECT_EQ(report.explored, baseline.explored) << "p=" << parallelism;
    EXPECT_EQ(report.first_violation->key(), baseline.first_violation->key())
        << "p=" << parallelism;
    EXPECT_FALSE(report.exhausted) << "p=" << parallelism;
  }
}

TEST(ParallelExplorer, CallbacksAreSerializedInAscendingIndexOrder) {
  Session::Config config = stress_config(8);
  std::vector<uint64_t> indices;
  std::atomic<int> concurrent{0};
  std::atomic<bool> overlapped{false};
  config.replay.on_interleaving_done = [&](uint64_t index, const core::Interleaving&) {
    if (concurrent.fetch_add(1) != 0) overlapped.store(true);
    indices.push_back(index);
    concurrent.fetch_sub(1);
  };
  const ReplayReport report = run_stress(8, std::move(config));
  EXPECT_FALSE(overlapped.load());
  ASSERT_EQ(indices.size(), report.explored);
  for (size_t i = 0; i < indices.size(); ++i) {
    EXPECT_EQ(indices[i], static_cast<uint64_t>(i) + 1);
  }
}

TEST(ParallelExplorer, PersistedLogIdenticalAcrossParallelism) {
  auto persisted_keys = [](int parallelism) {
    Session::Config config = stress_config(parallelism);
    config.persist = true;
    config.replay.max_interleavings = 150;  // keep the Datalog store small
    subjects::TownApp town(2);
    proxy::RdlProxy proxy(town);
    Session session(proxy, std::move(config));
    session.start();
    stress_workload(proxy);
    (void)session.end(transmit_assertions());
    std::vector<std::string> keys;
    for (size_t i = 0; i < session.store().interleaving_count(); ++i) {
      keys.push_back(session.store().load(i).key());
    }
    return keys;
  };
  const auto sequential = persisted_keys(1);
  const auto parallel = persisted_keys(4);
  ASSERT_FALSE(sequential.empty());
  EXPECT_EQ(parallel, sequential);
}

TEST(ParallelExplorer, HonorsInterleavingCap) {
  Session::Config config = stress_config(4);
  config.replay.max_interleavings = 17;
  const ReplayReport report = run_stress(4, std::move(config));
  EXPECT_EQ(report.explored, 17u);
  EXPECT_TRUE(report.hit_cap);
  EXPECT_FALSE(report.exhausted);
}

TEST(ParallelExplorer, SharedBudgetCrashesDeterministically) {
  auto budgeted = [](int parallelism) {
    Session::Config config = stress_config(parallelism);
    config.replay.resource_budget_bytes = 4'000;  // a few dozen log entries
    // Exact crash parity is only guaranteed for the deterministic budget
    // components (explored log + enumerator caches): live prefix-snapshot
    // bytes are scheduling-dependent across worker counts, so pin the cache
    // off here. Snapshot-memory crashes have their own deterministic
    // sequential test (test_prefix_replay.cpp).
    config.max_snapshot_depth = 0;
    return run_stress(parallelism, std::move(config));
  };
  const ReplayReport sequential = budgeted(1);
  ASSERT_TRUE(sequential.crashed);
  for (const int parallelism : {4, 8}) {
    const ReplayReport parallel = budgeted(parallelism);
    EXPECT_TRUE(parallel.crashed) << "p=" << parallelism;
    EXPECT_EQ(parallel.explored, sequential.explored) << "p=" << parallelism;
    EXPECT_EQ(parallel.violations, sequential.violations) << "p=" << parallelism;
  }
}

// ---------------------------------------------------------------------------
// Distributed-lock threaded mode under the parallel outer loop
// ---------------------------------------------------------------------------

TEST(ParallelExplorer, ThreadedLockModeValidatesUnderParallelOuterLoop) {
  auto threaded_config = [](int parallelism) {
    Session::Config config = stress_config(parallelism);
    config.replay.threaded = true;  // workers each get a private kv::Server
    config.replay.max_interleavings = 24;
    if (parallelism <= 1) {
      // the sequential engine needs an explicit lock server
      static kv::Server sequential_lock_server;
      config.replay.lock_server = &sequential_lock_server;
    }
    return config;
  };
  const ReplayReport sequential = run_stress(1, threaded_config(1));
  const ReplayReport parallel = run_stress(4, threaded_config(4));
  EXPECT_EQ(parallel.explored, sequential.explored);
  EXPECT_EQ(parallel.violations, sequential.violations);
  EXPECT_EQ(parallel.first_violation_index, sequential.first_violation_index);
}

// ---------------------------------------------------------------------------
// Profiler shard merging
// ---------------------------------------------------------------------------

TEST(ParallelExplorer, ProfilerSamplesMergeAcrossWorkers) {
  Session::Config config = stress_config(4);
  subjects::TownApp town(2);
  proxy::RdlProxy proxy(town);
  Session session(proxy, std::move(config));
  session.start();
  stress_workload(proxy);
  const ReplayReport report = session.end([](proxy::Rdl& subject) -> AssertionList {
    auto* base = dynamic_cast<subjects::SubjectBase*>(&subject);
    return {std::make_shared<core::ResourceProfiler>(base ? &base->network() : nullptr)};
  });

  ASSERT_EQ(session.worker_assertions().size(), 4u);
  const auto merged = core::collect_profiles(session.worker_assertions());
  EXPECT_EQ(merged.size(), report.explored);
  const auto summary = core::summarize_profiles(merged);
  EXPECT_EQ(summary.interleavings, report.explored);
  EXPECT_EQ(summary.total_ops, report.explored * 11);  // 11 events per interleaving
  EXPECT_GT(summary.max_state_bytes, 0u);
}

// ---------------------------------------------------------------------------
// Config surface
// ---------------------------------------------------------------------------

TEST(ParallelExplorer, ParallelEndRequiresSubjectFactory) {
  Session::Config config = stress_config(4);
  config.subject_factory = nullptr;
  subjects::TownApp town(2);
  proxy::RdlProxy proxy(town);
  Session session(proxy, std::move(config));
  session.start();
  stress_workload(proxy);
  EXPECT_THROW((void)session.end(transmit_assertions()), std::invalid_argument);
}

TEST(ParallelExplorer, SharedAssertionListRejectedWhenParallel) {
  Session::Config config = stress_config(4);
  subjects::TownApp town(2);
  proxy::RdlProxy proxy(town);
  Session session(proxy, std::move(config));
  session.start();
  stress_workload(proxy);
  EXPECT_THROW((void)session.end(AssertionList{}), std::invalid_argument);
}

TEST(ParallelExplorer, StartOverloadRegistersTheFactory) {
  Session::Config config = stress_config(4);
  config.subject_factory = nullptr;
  subjects::TownApp town(2);
  proxy::RdlProxy proxy(town);
  Session session(proxy, std::move(config));
  session.start([] { return std::make_unique<subjects::TownApp>(2); });
  stress_workload(proxy);
  const ReplayReport report = session.end(transmit_assertions());
  EXPECT_GT(report.explored, 0u);
}

// ---------------------------------------------------------------------------
// BoundedQueue primitive
// ---------------------------------------------------------------------------

TEST(BoundedQueue, FifoAndDrainAfterClose) {
  BoundedQueue<int> queue(4);
  EXPECT_EQ(queue.push(1), QueuePush::Pushed);
  EXPECT_EQ(queue.push(2), QueuePush::Pushed);
  queue.close();
  EXPECT_EQ(queue.push(3), QueuePush::Closed);  // closed: refused, item dropped
  EXPECT_EQ(queue.pop(), 1);                    // remaining items still drain
  EXPECT_EQ(queue.pop(), 2);
  EXPECT_EQ(queue.pop(), std::nullopt);
}

TEST(BoundedQueue, CloseWhileFullWakesBlockedPushAsClosed) {
  // Regression: a push blocked on a full queue must observe a concurrent
  // close() as QueuePush::Closed — under the old bool return the drop was
  // indistinguishable from a successful push, so the dispatcher could
  // silently lose a batch on stop_on_violation shutdown.
  BoundedQueue<int> queue(1);
  ASSERT_EQ(queue.push(1), QueuePush::Pushed);  // queue now full
  std::atomic<bool> blocked_result_ready{false};
  QueuePush blocked_result = QueuePush::Pushed;
  std::thread pusher([&] {
    blocked_result = queue.push(2);  // blocks: capacity 1, nothing popped
    blocked_result_ready.store(true);
  });
  // Give the pusher time to block, then close while the queue is still full.
  while (queue.size() != 1) std::this_thread::yield();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(blocked_result_ready.load());
  queue.close();
  pusher.join();
  EXPECT_EQ(blocked_result, QueuePush::Closed);
  EXPECT_EQ(queue.pop(), 1);  // the accepted item drains; the dropped one doesn't
  EXPECT_EQ(queue.pop(), std::nullopt);
}

TEST(BoundedQueue, BlockingProducersAndConsumersSeeEveryItem) {
  BoundedQueue<int> queue(2);  // tiny bound forces producer blocking
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 250;
  std::atomic<long> sum{0};
  std::atomic<int> popped{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < 3; ++c) {
    threads.emplace_back([&] {
      while (auto item = queue.pop()) {
        sum.fetch_add(*item);
        popped.fetch_add(1);
      }
    });
  }
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_EQ(queue.push(p * kPerProducer + i), QueuePush::Pushed);
      }
    });
  }
  for (size_t t = 3; t < threads.size(); ++t) threads[t].join();  // producers
  queue.close();
  for (size_t t = 0; t < 3; ++t) threads[t].join();  // consumers
  const int total = kProducers * kPerProducer;
  EXPECT_EQ(popped.load(), total);
  EXPECT_EQ(sum.load(), static_cast<long>(total) * (total - 1) / 2);
}

}  // namespace
}  // namespace erpi::sched
