// Guided exploration tests (DESIGN.md §12): the work-stealing Frontier, the
// split_tree_order subtree partition, the searcher strategies, and the
// report-determinism guarantees of the guided engine — same (stream,
// SearchOptions) ⇒ same ReplayReport at parallelism ∈ {1, 4, 8} × snapshot
// depth ∈ {0, 16}, with and without fault plans — plus the ViolationFirst
// prior-guided speedup gate and the corpus prior loader.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <set>
#include <thread>
#include <vector>

#include "core/session.hpp"
#include "corpus/store.hpp"
#include "faults/explorer.hpp"
#include "sched/frontier.hpp"
#include "sched/searcher.hpp"
#include "subjects/town.hpp"

namespace erpi::sched {
namespace {

using core::Interleaving;
using core::ReplayReport;
using core::SearchOptions;
using core::SearchStrategy;
using core::Session;
using core::SubtreeSpan;

// ---------------------------------------------------------------------------
// Frontier
// ---------------------------------------------------------------------------

std::vector<Frontier::Handle> ranges(std::initializer_list<std::pair<size_t, size_t>> rs) {
  std::vector<Frontier::Handle> out;
  for (const auto& [next, end] : rs) out.push_back({next, end});
  return out;
}

TEST(Frontier, HandsOutEveryOrdinalExactlyOnceSingleThreaded) {
  Frontier frontier(ranges({{0, 7}, {7, 8}, {8, 20}, {20, 20}, {20, 33}}), 3);
  std::multiset<size_t> seen;
  // Round-robin the workers so claims, own-deque drains and steals all mix.
  bool any = true;
  while (any) {
    any = false;
    for (int w = 0; w < 3; ++w) {
      if (auto slot = frontier.take(w)) {
        seen.insert(*slot);
        any = true;
      }
    }
  }
  ASSERT_EQ(seen.size(), 33u);
  for (size_t i = 0; i < 33; ++i) EXPECT_EQ(seen.count(i), 1u) << "ordinal " << i;
  EXPECT_FALSE(frontier.take(0).has_value());
}

TEST(Frontier, HandsOutEveryOrdinalExactlyOnceUnderContention) {
  constexpr size_t kTotal = 10'000;
  Frontier frontier(ranges({{0, kTotal}}), 4);
  std::vector<std::vector<size_t>> per_worker(4);
  std::vector<std::thread> threads;
  for (int w = 0; w < 4; ++w) {
    threads.emplace_back([&, w] {
      while (auto slot = frontier.take(w)) per_worker[static_cast<size_t>(w)].push_back(*slot);
    });
  }
  for (auto& t : threads) t.join();

  std::vector<size_t> all;
  for (const auto& v : per_worker) all.insert(all.end(), v.begin(), v.end());
  ASSERT_EQ(all.size(), kTotal);
  std::sort(all.begin(), all.end());
  for (size_t i = 0; i < kTotal; ++i) ASSERT_EQ(all[i], i);
}

TEST(Frontier, StealSplitsLargestRemainingHandleVictimKeepsFront) {
  // Worker 0 owns [0, 10); worker 1 drains its own [10, 12) then must steal.
  Frontier frontier(ranges({{0, 10}, {10, 12}}), 2);
  EXPECT_EQ(frontier.take(0), std::optional<size_t>(0));  // w0 claims [0,10)
  EXPECT_EQ(frontier.take(1), std::optional<size_t>(10)); // w1 claims [10,12)
  EXPECT_EQ(frontier.take(1), std::optional<size_t>(11));
  EXPECT_EQ(frontier.steals(), 0u);

  // w1 is empty; the only victim handle is w0's [1, 10) (9 remaining). The
  // split hands the thief the tail [5, 10) and leaves the victim the
  // contiguous front [1, 5).
  EXPECT_EQ(frontier.take(1), std::optional<size_t>(5));
  EXPECT_EQ(frontier.steals(), 1u);
  EXPECT_EQ(frontier.splits(), 1u);

  // Alternate takes so neither side runs dry and steals back: the victim
  // walks its contiguous front, the thief its tail half.
  std::vector<size_t> victim, thief;
  for (int round = 0; round < 4; ++round) {
    victim.push_back(*frontier.take(0));
    thief.push_back(*frontier.take(1));
  }
  EXPECT_EQ(victim, (std::vector<size_t>{1, 2, 3, 4}));
  EXPECT_EQ(thief, (std::vector<size_t>{6, 7, 8, 9}));
  EXPECT_EQ(frontier.steals(), 1u);
  EXPECT_FALSE(frontier.take(0).has_value());
  EXPECT_FALSE(frontier.take(1).has_value());
}

TEST(Frontier, StealOfSingleItemHandleMovesItWholeWithoutSplit) {
  Frontier frontier(ranges({{0, 2}}), 2);
  EXPECT_EQ(frontier.take(0), std::optional<size_t>(0));  // w0 claims, 1 left
  EXPECT_EQ(frontier.take(1), std::optional<size_t>(1));  // w1 steals it whole
  EXPECT_EQ(frontier.steals(), 1u);
  EXPECT_EQ(frontier.splits(), 0u);
  EXPECT_FALSE(frontier.take(0).has_value());
  EXPECT_FALSE(frontier.take(1).has_value());
}

TEST(Frontier, DropsEmptyRangesAndClampsWorkerIndex) {
  Frontier frontier(ranges({{3, 3}, {5, 6}}), 1);
  EXPECT_EQ(frontier.take(7), std::optional<size_t>(5));  // out-of-range worker
  EXPECT_FALSE(frontier.take(-2).has_value());
}

// ---------------------------------------------------------------------------
// split_tree_order
// ---------------------------------------------------------------------------

std::vector<Interleaving> lex_permutations_of_three() {
  return {{{0, 1, 2}}, {{0, 2, 1}}, {{1, 0, 2}}, {{1, 2, 0}}, {{2, 0, 1}}, {{2, 1, 0}}};
}

void expect_tiles(const std::vector<SubtreeSpan>& spans, size_t total) {
  size_t next = 0;
  for (const auto& span : spans) {
    EXPECT_EQ(span.begin, next);
    EXPECT_GT(span.end, span.begin);
    next = span.end;
  }
  EXPECT_EQ(next, total);
}

TEST(SplitTreeOrder, PartitionsLexStreamByFirstEvent) {
  const auto items = lex_permutations_of_three();
  const auto spans = core::split_tree_order(items, 2);
  expect_tiles(spans, items.size());
  ASSERT_EQ(spans.size(), 3u);
  for (const auto& span : spans) {
    EXPECT_EQ(span.size(), 2u);
    EXPECT_EQ(span.prefix_len, 1u);  // split one level below the root
    EXPECT_EQ(items[span.begin].order[0], items[span.end - 1].order[0]);
  }
}

TEST(SplitTreeOrder, WholeStreamFitsInOneSpan) {
  const auto items = lex_permutations_of_three();
  const auto spans = core::split_tree_order(items, 100);
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0], (SubtreeSpan{0, items.size(), 0}));
}

TEST(SplitTreeOrder, ChunksStructurelessStreams) {
  // Adjacent items never agree on order[0]: a run per item. The splitter must
  // fall back to fixed-size chunks instead of shattering into singletons.
  std::vector<Interleaving> items;
  for (int i = 0; i < 24; ++i) items.push_back({{i % 2 == 0 ? 100 + i : -i, i}});
  const auto spans = core::split_tree_order(items, 8);
  expect_tiles(spans, items.size());
  ASSERT_EQ(spans.size(), 3u);
  for (const auto& span : spans) EXPECT_EQ(span.size(), 8u);
}

TEST(SplitTreeOrder, EmptyAndZeroMaxAreSafe) {
  EXPECT_TRUE(core::split_tree_order({}, 4).empty());
  // max_items 0 is clamped to 1; every span is a singleton tile.
  const auto spans = core::split_tree_order(lex_permutations_of_three(), 0);
  expect_tiles(spans, 6);
  for (const auto& span : spans) EXPECT_EQ(span.size(), 1u);
}

// ---------------------------------------------------------------------------
// Searchers (unit level)
// ---------------------------------------------------------------------------

bool is_permutation_of_all(const std::vector<size_t>& order, size_t n) {
  if (order.size() != n) return false;
  std::set<size_t> seen(order.begin(), order.end());
  return seen.size() == n && (n == 0 || *seen.rbegin() == n - 1);
}

TEST(Searchers, RandomPathIsSeedDeterministic) {
  const auto items = lex_permutations_of_three();
  const auto spans = core::split_tree_order(items, 2);

  SearchOptions options;
  options.strategy = SearchStrategy::RandomPath;
  options.seed = 7;
  auto a = make_searcher(options, {})->select(items, spans);
  auto b = make_searcher(options, {})->select(items, spans);
  EXPECT_EQ(a, b);
  EXPECT_TRUE(is_permutation_of_all(a, spans.size()));

  options.seed = 8;
  auto c = make_searcher(options, {})->select(items, spans);
  EXPECT_TRUE(is_permutation_of_all(c, spans.size()));
  // Distinct seeds hash every subtree differently; identical rankings would
  // defeat the strategy's point. (Deterministic inputs, so no flake risk.)
  EXPECT_NE(a, c);
}

TEST(Searchers, ViolationFirstRanksPriorSubtreeFirstAndDegeneratesWithout) {
  const auto items = lex_permutations_of_three();
  const auto spans = core::split_tree_order(items, 2);
  SearchOptions options;
  options.strategy = SearchStrategy::ViolationFirst;

  SearcherDeps no_priors;
  EXPECT_EQ(make_searcher(options, no_priors)->select(items, spans),
            (std::vector<size_t>{0, 1, 2}));

  SearcherDeps deps;
  deps.violation_priors = std::make_shared<const std::vector<Interleaving>>(
      std::vector<Interleaving>{{{2, 1, 0}}});
  const auto order = make_searcher(options, deps)->select(items, spans);
  ASSERT_TRUE(is_permutation_of_all(order, spans.size()));
  // The prior lives in the third span ([4,6): first event 2); it must lead.
  EXPECT_EQ(order[0], 2u);
}

TEST(Searchers, CoverageWeightedSharedStateFallsBackToStreamOrderWhenSaturated) {
  const auto items = lex_permutations_of_three();
  const auto spans = core::split_tree_order(items, 2);
  SearchOptions options;
  options.strategy = SearchStrategy::CoverageWeighted;

  SearcherDeps deps;
  deps.coverage = std::make_shared<CoverageState>();
  auto searcher = make_searcher(options, deps);
  const auto first = searcher->select(items, spans);
  EXPECT_TRUE(is_permutation_of_all(first, spans.size()));
  EXPECT_GT(deps.coverage->size(), 0u);

  // Every feature is now covered: the greedy pass sees zero freshness
  // everywhere and ties break in stream order.
  const auto second = searcher->select(items, spans);
  EXPECT_EQ(second, (std::vector<size_t>{0, 1, 2}));
}

TEST(Searchers, InterleavedRotationIsDeterministicAndComplete) {
  const auto items = lex_permutations_of_three();
  const auto spans = core::split_tree_order(items, 1);  // 6 singleton spans
  SearchOptions options;
  options.strategy = SearchStrategy::Interleaved;
  options.seed = 11;

  SearcherDeps deps;
  deps.violation_priors = std::make_shared<const std::vector<Interleaving>>(
      std::vector<Interleaving>{{{1, 2, 0}}});
  auto a = make_searcher(options, deps)->select(items, spans);
  auto b = make_searcher(options, deps)->select(items, spans);
  EXPECT_EQ(a, b);
  EXPECT_TRUE(is_permutation_of_all(a, spans.size()));
  // The default trio leads with ViolationFirst: the prior's span first.
  EXPECT_EQ(a[0], 3u);
}

// ---------------------------------------------------------------------------
// Guided engine: report determinism across parallelism × depth
// ---------------------------------------------------------------------------

util::Json problem(const char* name) {
  util::Json j = util::Json::object();
  j["problem"] = name;
  return j;
}

// The test_parallel stress workload: 11 events, two spec groups plus the
// auto-paired (e7,e8) sync -> 6 units -> a 720-interleaving universe whose
// lex-last block (first event = e10, the last unit's leader) is 120 items.
void stress_workload(proxy::RdlProxy& proxy) {
  (void)proxy.update(0, "report", problem("otb"));   // e0
  (void)proxy.sync_req(0, 1);                        // e1
  (void)proxy.exec_sync(0, 1);                       // e2
  (void)proxy.update(1, "report", problem("ph"));    // e3
  (void)proxy.sync_req(1, 0);                        // e4
  (void)proxy.exec_sync(1, 0);                       // e5
  (void)proxy.update(1, "resolve", problem("otb"));  // e6
  (void)proxy.sync_req(1, 0);                        // e7
  (void)proxy.exec_sync(1, 0);                       // e8
  (void)proxy.update(0, "report", problem("lamp"));  // e9
  (void)proxy.query(0, "transmit");                  // e10
}

Session::Config guided_config(int parallelism, size_t snapshot_depth) {
  Session::Config config;
  config.generation_order = core::GroupedEnumerator::Order::Lexicographic;
  config.spec_groups = {{0, 1, 2}, {3, 4, 5}};
  config.replay.stop_on_violation = false;
  config.replay.max_interleavings = 100'000;
  config.max_snapshot_depth = snapshot_depth;
  config.parallelism = parallelism;
  config.subject_factory = [] { return std::make_unique<subjects::TownApp>(2); };
  return config;
}

// The planted bug: any schedule that runs the final unit (leader e10) first
// "violates". Purely order-dependent, so it is cheap, deterministic, and its
// violating set is exactly the lex-LAST 120 of the 720 interleavings — the
// worst case for lex order, the natural target for guided strategies.
core::AssertionFactory planted_assertions() {
  return [](proxy::Rdl&) -> core::AssertionList {
    return {core::custom("planted-tail-block", [](const core::TestContext& ctx) {
      if (!ctx.interleaving.order.empty() && ctx.interleaving.order.front() == 10) {
        return util::Status::fail("planted: last unit scheduled first");
      }
      return util::Status::ok();
    })};
  };
}

ReplayReport run_guided(Session::Config config) {
  subjects::TownApp town(2);
  proxy::RdlProxy proxy(town);
  Session session(proxy, std::move(config));
  session.start();
  stress_workload(proxy);
  return session.end(planted_assertions());
}

void expect_reports_equal(const ReplayReport& a, const ReplayReport& b,
                          const std::string& label) {
  EXPECT_EQ(a.explored, b.explored) << label;
  EXPECT_EQ(a.violations, b.violations) << label;
  EXPECT_EQ(a.reproduced, b.reproduced) << label;
  EXPECT_EQ(a.first_violation_index, b.first_violation_index) << label;
  EXPECT_EQ(a.first_violation_assertion, b.first_violation_assertion) << label;
  ASSERT_EQ(a.first_violation.has_value(), b.first_violation.has_value()) << label;
  if (a.first_violation.has_value()) {
    EXPECT_EQ(a.first_violation->key(), b.first_violation->key()) << label;
  }
  EXPECT_EQ(a.messages, b.messages) << label;
  EXPECT_EQ(a.exhausted, b.exhausted) << label;
  EXPECT_EQ(a.hit_cap, b.hit_cap) << label;
  EXPECT_EQ(a.crashed, b.crashed) << label;
  EXPECT_EQ(a.budget_exhausted, b.budget_exhausted) << label;
}

TEST(GuidedSearch, ReportsIdenticalAcrossParallelismAndDepthPerStrategy) {
  for (const SearchStrategy strategy :
       {SearchStrategy::RandomPath, SearchStrategy::ViolationFirst,
        SearchStrategy::CoverageWeighted, SearchStrategy::Interleaved}) {
    auto config_for = [&](int parallelism, size_t depth) {
      Session::Config config = guided_config(parallelism, depth);
      config.search.strategy = strategy;
      config.search.seed = 99;
      config.violation_priors = {Interleaving{{10, 9, 7, 8, 6, 3, 4, 5, 0, 1, 2}}};
      return config;
    };
    const std::string name = core::search_strategy_name(strategy);
    const ReplayReport baseline = run_guided(config_for(1, 16));
    EXPECT_EQ(baseline.explored, 720u) << name;
    EXPECT_EQ(baseline.violations, 120u) << name;
    ASSERT_TRUE(baseline.reproduced) << name;

    for (const int parallelism : {4, 8}) {
      for (const size_t depth : {size_t{0}, size_t{16}}) {
        const ReplayReport report = run_guided(config_for(parallelism, depth));
        expect_reports_equal(report, baseline,
                             name + " p=" + std::to_string(parallelism) +
                                 " depth=" + std::to_string(depth));
      }
    }
  }
}

TEST(GuidedSearch, LexFrontierMatchesStreamingByteForByte) {
  // LexOrder through the frontier engine (deterministic_order = false) must
  // reproduce the streaming dispatcher's report exactly — same commit order,
  // same counters — modulo wall-clock noise.
  auto normalized = [](ReplayReport report) {
    report.elapsed_seconds = 0.0;
    report.prefix = {};
    return report.to_json().dump();
  };
  const std::string streaming = normalized(run_guided(guided_config(4, 16)));
  for (const int parallelism : {1, 4, 8}) {
    Session::Config config = guided_config(parallelism, 16);
    config.search.deterministic_order = false;  // LexOrder, frontier engine
    EXPECT_EQ(normalized(run_guided(std::move(config))), streaming)
        << "p=" << parallelism;
  }
}

TEST(GuidedSearch, ViolationFirstPriorFindsPlantedBugTenTimesFaster) {
  // Lex order meets the planted tail block only after the first 600 passing
  // interleavings. A single corpus-style prior steers ViolationFirst's first
  // ranked subtree into the violating block: first commit ordinal violates.
  Session::Config lex = guided_config(1, 16);
  lex.replay.stop_on_violation = true;
  const ReplayReport lex_report = run_guided(std::move(lex));
  ASSERT_TRUE(lex_report.reproduced);
  ASSERT_EQ(lex_report.first_violation_index, 601u);

  Session::Config vf = guided_config(4, 16);
  vf.replay.stop_on_violation = true;
  vf.search.strategy = SearchStrategy::ViolationFirst;
  vf.search.max_subtree_items = 16;
  vf.violation_priors = {Interleaving{{10, 9, 7, 8, 6, 3, 4, 5, 0, 1, 2}}};
  const ReplayReport vf_report = run_guided(std::move(vf));
  ASSERT_TRUE(vf_report.reproduced);
  EXPECT_EQ(vf_report.first_violation_index, 1u);
  // The ISSUE's acceptance gate: >= 10x fewer interleavings than lex.
  EXPECT_LE(vf_report.first_violation_index * 10, lex_report.first_violation_index);
  ASSERT_TRUE(vf_report.first_violation.has_value());
  EXPECT_EQ(vf_report.first_violation->order.front(), 10);
}

TEST(GuidedSearch, ExplorerStatsOmittedByDefaultRecordedWhenEnabled) {
  // Default: no telemetry, no "explorer" key — reports stay byte-stable.
  const ReplayReport quiet = run_guided(guided_config(4, 16));
  EXPECT_FALSE(quiet.explorer.any());
  EXPECT_EQ(quiet.to_json().dump().find("\"explorer\""), std::string::npos);

  // Streaming engine with stats: the chosen batch size is recorded.
  Session::Config streaming = guided_config(4, 16);
  streaming.collect_explorer_stats = true;
  const ReplayReport streamed = run_guided(std::move(streaming));
  EXPECT_GT(streamed.explorer.batch_size, 0u);
  EXPECT_NE(streamed.to_json().dump().find("\"explorer\""), std::string::npos);

  // Guided engine with stats: the frontier shape is recorded.
  Session::Config guided = guided_config(4, 16);
  guided.collect_explorer_stats = true;
  guided.search.strategy = SearchStrategy::RandomPath;
  const ReplayReport ranked = run_guided(std::move(guided));
  EXPECT_GT(ranked.explorer.subtrees, 0u);
  EXPECT_NE(ranked.to_json().dump().find("\"explorer\""), std::string::npos);
}

TEST(GuidedSearch, GuardsRejectSharedAssertionsAndJournalResume) {
  {
    subjects::TownApp town(2);
    proxy::RdlProxy proxy(town);
    Session::Config config = guided_config(1, 16);
    config.search.strategy = SearchStrategy::RandomPath;
    Session session(proxy, std::move(config));
    session.start();
    stress_workload(proxy);
    // Shared assertion instances cannot be handed to the frontier workers.
    EXPECT_THROW(session.end(core::AssertionList{}), std::invalid_argument);
  }
  {
    subjects::TownApp town(2);
    proxy::RdlProxy proxy(town);
    Session::Config config = guided_config(4, 16);
    config.search.strategy = SearchStrategy::RandomPath;
    config.resume_journal =
        (std::filesystem::temp_directory_path() / "erpi-guided-journal.jsonl").string();
    Session session(proxy, std::move(config));
    session.start();
    stress_workload(proxy);
    // Journal skip-and-merge assumes stream order; a searcher reorders it.
    EXPECT_THROW(session.end(planted_assertions()), std::invalid_argument);
  }
}

// ---------------------------------------------------------------------------
// Guided engine under fault plans
// ---------------------------------------------------------------------------

void fault_workload(proxy::RdlProxy& proxy) {
  (void)proxy.update(0, "report", problem("lamp"));  // e0
  (void)proxy.sync_req(0, 1);                        // e1
  (void)proxy.exec_sync(0, 1);                       // e2
  (void)proxy.update(1, "report", problem("ph"));    // e3
  (void)proxy.sync_req(1, 0);                        // e4
  (void)proxy.exec_sync(1, 0);                       // e5
  (void)proxy.update(0, "report", problem("otb"));   // e6
  (void)proxy.sync_req(0, 1);                        // e7
  (void)proxy.exec_sync(0, 1);                       // e8
}

ReplayReport run_guided_faults(int parallelism, SearchStrategy strategy) {
  Session::Config config;
  config.generation_order = core::GroupedEnumerator::Order::Lexicographic;
  config.spec_groups = {{0, 1, 2}, {3, 4, 5}, {6, 7, 8}};
  config.replay.stop_on_violation = false;
  config.replay.max_interleavings = 100'000;
  config.max_snapshot_depth = 16;
  config.parallelism = parallelism;
  config.subject_factory = [] { return std::make_unique<subjects::TownApp>(2); };
  config.search.strategy = strategy;
  config.search.seed = 5;

  subjects::TownApp town(2);
  proxy::RdlProxy proxy(town);
  Session session(proxy, std::move(config));
  session.start();
  fault_workload(proxy);
  faults::FaultExplorer explorer(session);
  return explorer.run([](proxy::Rdl&) -> core::AssertionList {
    return {core::replicas_converge({0, 1})};
  });
}

TEST(GuidedSearch, FaultPlanSweepsIdenticalAcrossParallelism) {
  for (const SearchStrategy strategy :
       {SearchStrategy::RandomPath, SearchStrategy::ViolationFirst}) {
    const ReplayReport sequential = run_guided_faults(1, strategy);
    ASSERT_GT(sequential.plans_explored, 1u);
    ASSERT_GT(sequential.explored, sequential.plans_explored);
    const ReplayReport parallel = run_guided_faults(4, strategy);
    expect_reports_equal(parallel, sequential,
                         std::string("faults ") + core::search_strategy_name(strategy));
    EXPECT_EQ(parallel.plans_explored, sequential.plans_explored);
    EXPECT_EQ(parallel.first_violation_plan, sequential.first_violation_plan);
    EXPECT_EQ(parallel.first_violation_plan_interleaving,
              sequential.first_violation_plan_interleaving);
  }
}

// ---------------------------------------------------------------------------
// Corpus violation priors
// ---------------------------------------------------------------------------

TEST(CorpusPriors, LoadsDistinctViolationsAcrossFingerprintsAndPlans) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "erpi-priors-store").string();
  std::filesystem::remove_all(dir);
  {
    corpus::Store store = corpus::Store::open(dir);
    corpus::Record violation;
    violation.fingerprint = 1;
    violation.plan = "none";
    violation.il = "2,1,0";
    violation.kind = corpus::OutcomeKind::Violation;
    violation.violations = {{"planted", "boom"}};
    store.append(violation);

    violation.fingerprint = 2;  // same interleaving, other fingerprint: dedup
    store.append(violation);

    violation.plan = "drop:1";  // same interleaving, other plan: dedup
    store.append(violation);

    corpus::Record pass = violation;
    pass.il = "0,1,2";
    pass.kind = corpus::OutcomeKind::Pass;
    pass.violations.clear();
    store.append(pass);

    corpus::Record other = violation;
    other.il = "1,0,2";
    store.append(other);
  }

  const auto priors = corpus::violation_priors(dir);
  ASSERT_EQ(priors.size(), 2u);
  EXPECT_EQ(priors[0].key(), "2,1,0");
  EXPECT_EQ(priors[1].key(), "1,0,2");
  std::filesystem::remove_all(dir);

  EXPECT_TRUE(corpus::violation_priors("").empty());
  EXPECT_TRUE(corpus::violation_priors("/nonexistent/erpi-priors").empty());
}

TEST(CorpusPriors, InterleavingKeyRoundTrips) {
  const Interleaving il{{10, 9, 7, 8, 6, 3, 4, 5, 0, 1, 2}};
  EXPECT_EQ(Interleaving::from_key(il.key()), il);
  EXPECT_EQ(Interleaving::from_key("3,0,1,2").order, (std::vector<int>{3, 0, 1, 2}));
  EXPECT_THROW(Interleaving::from_key("3,x,1"), std::exception);
}

}  // namespace
}  // namespace erpi::sched
