// The paper's motivating example (§2.3) as a runnable walkthrough: a town
// issue-reporting app on a replicated OR-Set. Resident A reports an
// overturned trash bin, Resident B reports a pothole and later removes the
// (fixed) trash-bin report; Resident A finally transmits the set of open
// problems to the municipality.
//
// The app developer assumed eventual consistency makes coordination before
// transmission unnecessary — ER-pi finds the interleavings in which the
// municipality receives stale data.
#include <cstdio>

#include "core/session.hpp"
#include "subjects/town.hpp"

using namespace erpi;

namespace {
constexpr net::ReplicaId kResidentA = 0;
constexpr net::ReplicaId kResidentB = 1;

util::Json problem(const char* name) {
  util::Json j = util::Json::object();
  j["problem"] = name;
  return j;
}
}  // namespace

int main() {
  subjects::TownApp app(2);
  proxy::RdlProxy proxy(app);

  core::Session::Config config;
  // reproduce the paper's exhaustive counting exactly: deterministic sweep,
  // sync events grouped with their updates, replica-specific pruning around
  // the transmission (§3.1)
  config.generation_order = core::GroupedEnumerator::Order::Lexicographic;
  config.spec_groups = {{0, 1, 2}, {3, 4, 5}, {6, 7, 8}};
  core::ReplicaSpecificPruner::Options rs;
  rs.replica = kResidentA;
  rs.observation_event = 9;  // the transmission
  rs.conservative = true;    // the paper's merge (24 -> 19)
  config.replica_specific = rs;
  config.replay.max_interleavings = 10'000;
  config.replay.stop_on_violation = false;  // find every bad interleaving

  core::Session session(proxy, config);
  session.start();
  proxy.update(kResidentA, "report", problem("otb"), "overturned trash bin");  // ev_I
  proxy.sync_req(kResidentA, kResidentB);                                      // sync(ev_I)
  proxy.exec_sync(kResidentA, kResidentB);
  proxy.update(kResidentB, "report", problem("ph"), "pothole");                // ev_II
  proxy.sync_req(kResidentB, kResidentA);                                      // sync(ev_II)
  proxy.exec_sync(kResidentB, kResidentA);
  proxy.update(kResidentB, "resolve", problem("otb"), "trash bin fixed");      // ev_III
  proxy.sync_req(kResidentB, kResidentA);                                      // sync(ev_III)
  proxy.exec_sync(kResidentB, kResidentA);
  proxy.query(kResidentA, "transmit", util::Json::object(), "to municipality");  // ev_IV

  util::Json expected = util::Json::array();
  expected.push_back("ph");
  const auto report = session.end({core::query_result_equals(9, expected)});
  const auto pruning = session.pruning_report();

  std::printf("Town issue-reporting app — exhaustive integration test\n");
  std::printf("------------------------------------------------------\n");
  std::printf("captured events:          %llu (paper-level: 7)\n",
              static_cast<unsigned long long>(pruning.event_count));
  std::printf("raw interleavings (7!):   5040\n");
  std::printf("after Event Grouping:     %llu units -> %llu interleavings\n",
              static_cast<unsigned long long>(pruning.unit_count),
              static_cast<unsigned long long>(pruning.unit_universe));
  std::printf("after Replica-Specific:   %llu interleavings replayed (paper: 19)\n\n",
              static_cast<unsigned long long>(report.explored));

  std::printf("invariant: the municipality receives exactly {pothole}\n");
  std::printf("violated in %llu of %llu interleavings, first at #%llu\n",
              static_cast<unsigned long long>(report.violations),
              static_cast<unsigned long long>(report.explored),
              static_cast<unsigned long long>(report.first_violation_index));
  if (!report.messages.empty()) {
    std::printf("example violation: %s\n", report.messages.front().c_str());
  }
  std::printf("\nlesson: eventual consistency does not make coordination before an\n"
              "observable action (here: transmitting the data) unnecessary.\n");
  return 0;
}
