// Quickstart: integration-testing a replicated set with ER-pi.
//
// The pattern is always the same:
//   1. wrap your replicated-data library (anything implementing proxy::Rdl)
//      in an RdlProxy,
//   2. bracket the workload with Session::start() / Session::end(...),
//   3. hand end() the invariants to check after every interleaving.
//
// ER-pi captures the RDL calls as events, generates the possible
// interleavings (pruned by its four algorithms), replays each one from a
// fresh state, and reports the first invariant violation.
#include <cstdio>

#include "core/session.hpp"
#include "subjects/crdt_collection.hpp"

using namespace erpi;

namespace {
util::Json arg(const char* key, util::Json value) {
  util::Json j = util::Json::object();
  j[key] = std::move(value);
  return j;
}
}  // namespace

int main() {
  // Two replicas of a small CRDT library (an OR-Set among other structures).
  subjects::CrdtCollection library(2);
  proxy::RdlProxy proxy(library);

  core::Session::Config config;
  config.replay.max_interleavings = 1000;
  core::Session session(proxy, config);

  // --- the workload under test -------------------------------------------
  session.start();
  proxy.update(0, "set_add", arg("element", "apple"));
  proxy.update(1, "set_add", arg("element", "banana"));
  proxy.sync(0, 1);  // replica 0 ships its updates; replica 1 applies them
  proxy.sync(1, 0);
  proxy.update(1, "set_remove", arg("element", "apple"));
  proxy.sync(1, 0);
  // -------------------------------------------------------------------------

  const auto report = session.end({
      // replicas that saw the same operations must agree on the set
      core::converge_if_same_witness({0, 1}, {"seen"}, {"set"}),
  });

  std::printf("explored %llu interleavings (universe: %llu unit orderings)\n",
              static_cast<unsigned long long>(report.explored),
              static_cast<unsigned long long>(session.pruning_report().unit_universe));
  if (report.reproduced) {
    std::printf("invariant violated at interleaving #%llu:\n  %s\n",
                static_cast<unsigned long long>(report.first_violation_index),
                report.messages.front().c_str());
  } else {
    std::printf("no violation found — the OR-Set integration held up under every "
                "explored interleaving.\n");
  }
  return 0;
}
