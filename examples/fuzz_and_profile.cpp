// The paper's future-work directions (§8) as a runnable demo: fuzz random
// workloads against the CRDT-collection library, then resource-profile the
// interleavings of one workload to find the orderings that cost the most
// network traffic and state.
#include <cstdio>

#include "core/fuzz.hpp"
#include "core/profile.hpp"
#include "subjects/crdt_collection.hpp"

using namespace erpi;

int main() {
  std::printf("=== Part 1: workload fuzzing ===\n");
  core::FuzzConfig config;
  config.workloads = 20;
  config.min_ops = 4;
  config.max_ops = 9;
  config.max_interleavings = 250;

  // fuzz the naive-move misconception: moving list items must not duplicate.
  // Bias the stock schema toward list churn so concurrent moves are common.
  auto schema = core::WorkloadFuzzer::crdt_collection_schema();
  for (auto& op : schema) {
    if (op.op == "list_insert") op.weight = 4.0;
    if (op.op == "list_naive_move") op.weight = 6.0;
  }
  core::WorkloadFuzzer fuzzer(
      [] { return std::make_unique<subjects::CrdtCollection>(2); }, std::move(schema),
      [] {
        return core::AssertionList{core::no_duplicates({0, 1}, {"list"})};
      },
      config);
  const auto report = fuzzer.run();
  std::printf("fuzzed %d workloads, replayed %llu interleavings, %zu findings\n",
              report.workloads_run,
              static_cast<unsigned long long>(report.interleavings_replayed),
              report.findings.size());
  if (!report.findings.empty()) {
    const auto& finding = report.findings.front();
    std::printf("\nfirst finding (workload #%d, seed %llu):\n", finding.workload_index,
                static_cast<unsigned long long>(finding.workload_seed));
    for (const auto& step : finding.workload) std::printf("  %s\n", step.c_str());
    std::printf("violating interleaving: %s\n", finding.interleaving.key().c_str());
    std::printf("%s\n", finding.message.c_str());
  }

  std::printf("\n=== Part 2: resource profiling ===\n");
  subjects::CrdtCollection app(2);
  proxy::RdlProxy proxy(app);
  core::Session::Config session_config;
  session_config.replay.stop_on_violation = false;
  session_config.replay.max_interleavings = 300;
  core::Session session(proxy, session_config);
  session.start();
  util::Json e = util::Json::object();
  e["element"] = "x";
  proxy.update(0, "set_add", e);
  e["element"] = "y";
  proxy.update(1, "set_add", e);
  proxy.sync(0, 1);
  proxy.sync(1, 0);
  e["element"] = "x";
  proxy.update(1, "set_remove", e);
  proxy.sync(1, 0);

  auto profiler = std::make_shared<core::ResourceProfiler>(&app.network());
  (void)session.end({profiler});
  const auto summary = profiler->summary();
  std::printf("profiled %llu interleavings\n",
              static_cast<unsigned long long>(summary.interleavings));
  std::printf("ops: %llu total, %llu failed (impossible orders surface as failed ops)\n",
              static_cast<unsigned long long>(summary.total_ops),
              static_cast<unsigned long long>(summary.total_failed_ops));
  std::printf("final state size: min %llu, mean %.1f, max %llu bytes\n",
              static_cast<unsigned long long>(summary.min_state_bytes),
              summary.mean_state_bytes,
              static_cast<unsigned long long>(summary.max_state_bytes));
  std::printf("network: mean %.1f messages per interleaving, max %llu\n",
              summary.mean_messages, static_cast<unsigned long long>(summary.max_messages));
  if (summary.heaviest_state) {
    std::printf("heaviest-state interleaving: %s\n",
                summary.heaviest_state->interleaving.key().c_str());
  }
  return 0;
}
