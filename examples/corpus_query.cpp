// corpus_query: open a persistent outcome corpus, export it into the Datalog
// engine through corpus::DatalogBridge, and answer questions about it.
//
//   corpus_query DIR                      per-fingerprint summary (run_meta/3)
//   corpus_query DIR violations           every violation/4 fact
//   corpus_query DIR part REPLICA         violations under partition plans
//                                         involving REPLICA (the DESIGN.md §11
//                                         worked query)
//   corpus_query DIR eval "RULES" PRED    evaluate user-supplied Datalog rules
//                                         over the bridge relations and dump
//                                         the PRED relation
//
// The bridge schema: outcome(Fp, Plan, Il, Kind, Signal),
// violation(Fp, Plan, Il, Assertion), plan_fault(Plan, FaultKind, Replica),
// run_meta(Fp, Key, Value).
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <string>

#include "corpus/bridge.hpp"
#include "corpus/store.hpp"
#include "datalog/evaluator.hpp"
#include "datalog/parser.hpp"

using namespace erpi;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: corpus_query DIR [violations | part REPLICA | eval RULES PRED]\n");
  return 2;
}

void dump_relation(const datalog::Database& db, const std::string& predicate) {
  const datalog::Relation* rel = db.find(predicate);
  if (rel == nullptr || rel->empty()) {
    std::printf("  (no %s facts)\n", predicate.c_str());
    return;
  }
  for (const auto& tuple : rel->tuples()) {
    std::printf("  %s%s\n", predicate.c_str(), db.render(tuple).c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string dir = argv[1];
  const std::string command = argc > 2 ? argv[2] : "summary";

  corpus::Store store = corpus::Store::open(dir);
  datalog::Database db;
  corpus::DatalogBridge bridge(db);
  const auto stats = bridge.export_store(store);
  std::printf("corpus %s: %zu records -> %" PRIu64 " outcome, %" PRIu64
              " violation, %" PRIu64 " plan_fault, %" PRIu64 " run_meta facts\n\n",
              dir.c_str(), store.size(), static_cast<uint64_t>(stats.outcome_facts),
              static_cast<uint64_t>(stats.violation_facts),
              static_cast<uint64_t>(stats.plan_fault_facts),
              static_cast<uint64_t>(stats.run_meta_facts));

  if (command == "summary") {
    dump_relation(db, "run_meta");
    return 0;
  }
  if (command == "violations") {
    dump_relation(db, "violation");
    return 0;
  }
  if (command == "part") {
    if (argc < 4) return usage();
    const std::string rule = "part_viol(Plan, Il, Assertion) :- "
                             "violation(Fp, Plan, Il, Assertion), "
                             "plan_fault(Plan, part, " +
                             std::string(argv[3]) + ").";
    auto program = datalog::parse_program(rule, db.symbols());
    if (!program.has_value()) {
      std::fprintf(stderr, "corpus_query: %s\n", program.error().message.c_str());
      return 1;
    }
    datalog::evaluate(db, program.value());
    std::printf("violations under partition plans involving replica %s:\n", argv[3]);
    dump_relation(db, "part_viol");
    return 0;
  }
  if (command == "eval") {
    if (argc < 5) return usage();
    auto program = datalog::parse_program(argv[3], db.symbols());
    if (!program.has_value()) {
      std::fprintf(stderr, "corpus_query: %s\n", program.error().message.c_str());
      return 1;
    }
    datalog::evaluate(db, program.value());
    dump_relation(db, argv[4]);
    return 0;
  }
  return usage();
}
