// A collaborative to-do editor on the Yorkie-style JSON document store:
// two clients push items into a shared list and concurrently move the same
// item. Runs the replay twice — once against the fixed library and once
// against the historical Array.MoveAfter defect (issue #676) — and uses the
// *threaded* replay mode, where one worker thread per replica executes its
// events under the Redlock-style distributed mutex hosted by the mini-Redis
// server (the deployment shape of the paper's testbed).
#include <cstdio>

#include "core/session.hpp"
#include "kvstore/server.hpp"
#include "subjects/yorkie.hpp"

using namespace erpi;

namespace {

util::Json jobj(std::initializer_list<std::pair<const char*, util::Json>> kv) {
  util::Json out = util::Json::object();
  for (const auto& [k, v] : kv) out[k] = std::move(const_cast<util::Json&>(v));
  return out;
}

core::ReplayReport run(bool fixed_library, kv::Server& lock_server) {
  subjects::Yorkie::Flags flags;
  flags.move_after_fixed = fixed_library;
  subjects::Yorkie editor(2, flags);
  proxy::RdlProxy proxy(editor);

  core::Session::Config config;
  config.replay.max_interleavings = 300;
  config.replay.threaded = true;  // per-replica workers + distributed lock
  config.replay.lock_server = &lock_server;
  core::Session session(proxy, config);

  session.start();
  proxy.update(0, "list_push", jobj({{"key", "todo"}, {"value", "buy milk"}}));
  proxy.update(0, "list_push", jobj({{"key", "todo"}, {"value", "fix bike"}}));
  proxy.update(0, "list_push", jobj({{"key", "todo"}, {"value", "call mom"}}));
  proxy.sync(0, 1);
  // both clients drag "buy milk" to a new position at the same time
  proxy.update(0, "move_after", jobj({{"key", "todo"}, {"from", 0}, {"to", 2}}));
  proxy.update(1, "move_after", jobj({{"key", "todo"}, {"from", 0}, {"to", 1}}));
  proxy.sync(0, 1);
  proxy.sync(1, 0);

  return session.end({core::converge_if_same_witness({0, 1}, {"seen"}, {"doc"})});
}

}  // namespace

int main() {
  kv::Server lock_server;  // the shared mini-Redis hosting the replay lock

  std::printf("Collaborative to-do editor — concurrent MoveAfter test\n");
  std::printf("(threaded replay: one worker per replica, ordered via the\n");
  std::printf(" distributed lock on the embedded mini-Redis server)\n\n");

  const auto buggy = run(/*fixed_library=*/false, lock_server);
  if (buggy.reproduced) {
    std::printf("arrival-order MoveAfter (issue #676): diverged at interleaving #%llu\n",
                static_cast<unsigned long long>(buggy.first_violation_index));
    std::printf("  %s\n\n", buggy.messages.front().c_str());
  } else {
    std::printf("arrival-order MoveAfter: no divergence found within the cap\n\n");
  }

  const auto fixed = run(/*fixed_library=*/true, lock_server);
  if (fixed.reproduced) {
    std::printf("LWW MoveAfter (the fix): survives the simple concurrent-move race,\n"
                "but exhaustive replay still finds a deeper corner case at\n"
                "interleaving #%llu — an *insert* interleaving with the concurrent\n"
                "moves lands on different sides of the moved element on each\n"
                "replica (the hazard analyzed by Kleppmann, \"Moving Elements in\n"
                "List CRDTs\", 2020):\n  %s\n",
                static_cast<unsigned long long>(fixed.first_violation_index),
                fixed.messages.front().c_str());
  } else {
    std::printf("LWW MoveAfter (the fix): documents converged in every explored\n"
                "interleaving.\n");
  }
  return 0;
}
