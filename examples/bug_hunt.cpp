// Bug hunting with runtime constraints: replays the OrbitDB-5 benchmark and
// demonstrates the constraints-directory workflow of paper §5.2 — while the
// replay is running, a JSON file dropped into the watched directory adds
// Event-Independence constraints that ER-pi picks up between interleavings
// and folds into its pruning pipeline.
//
// Usage: bug_hunt [bug-name]     (default: OrbitDB-5; see bench_table1 for names)
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "bugs/registry.hpp"
#include "core/session.hpp"
#include "faults/explorer.hpp"

using namespace erpi;

int main(int argc, char** argv) {
  const std::string name = argc > 1 ? argv[1] : "OrbitDB-5";
  const auto& bug = bugs::find_bug(name);

  const auto dir = std::filesystem::temp_directory_path() / "erpi-constraints";
  std::filesystem::create_directories(dir);
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    std::filesystem::remove(entry.path());
  }

  auto subject = bug.make_subject();
  proxy::RdlProxy proxy(*subject);

  core::Session::Config config;
  config.constraints_dir = dir.string();
  config.replay.max_interleavings = 10'000;
  if (bug.configure) bug.configure(config);
  // strip statically configured constraints — this example supplies them at
  // runtime through the watched directory instead
  config.independence.clear();

  bool constraints_dropped = false;
  config.replay.on_interleaving_done = [&](uint64_t index, const core::Interleaving&) {
    if (index == 3 && !constraints_dropped) {
      constraints_dropped = true;
      std::ofstream file(dir / "independence.json");
      file << "{\n"
              "  \"independent_events\": [0, 1, 2],\n"
              "  \"neutral_events\": []\n"
              "}\n";
      std::printf("[after interleaving 3] dropped %s/independence.json — ER-pi will\n"
                  "pick it up and extend its pruning pipeline\n\n",
                  dir.string().c_str());
    }
  };

  if (bug.storage_catalog) {
    // Storage scenarios replay through the fault explorer's worker pool,
    // which clones the fixture from the factory even at parallelism 1.
    config.subject_factory = bug.make_subject;
  }

  core::Session session(proxy, config);
  session.start();
  bug.workload(proxy);
  const auto report =
      bug.storage_catalog
          ? faults::explore_with_faults(
                session, [&](proxy::Rdl&) { return bug.assertions(); },
                *bug.storage_catalog)
          : session.end(bug.assertions());
  const auto pruning = session.pruning_report();

  std::printf("bug %s (#%d, %d events, %s)\n", bug.name.c_str(), bug.issue_number,
              bug.event_count, bug.reason.c_str());
  if (report.reproduced) {
    std::printf("reproduced after %llu interleavings\n",
                static_cast<unsigned long long>(report.first_violation_index));
    std::printf("violating interleaving: %s\n", report.first_violation->key().c_str());
    std::printf("violation: %s\n", report.messages.front().c_str());
  } else {
    std::printf("not reproduced within the cap\n");
  }
  std::printf("\npruning: %llu admitted, %llu pruned (pipeline of %s constraints)\n",
              static_cast<unsigned long long>(pruning.pipeline.admitted),
              static_cast<unsigned long long>(pruning.pipeline.pruned),
              constraints_dropped ? "static + runtime" : "static");
  for (const auto& [algorithm, count] : pruning.pipeline.pruned_by) {
    std::printf("  %s contributed to %llu pruned interleavings\n", algorithm.c_str(),
                static_cast<unsigned long long>(count));
  }
  return report.reproduced ? 0 : 1;
}
