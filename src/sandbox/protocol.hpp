// IPC wire format for the crash-isolated replay sandbox (DESIGN.md §9).
//
// Two channels per worker, both AF_UNIX stream socketpairs created before the
// fork server is spawned:
//
//  * control — parent <-> fork server. Parent sends single-byte commands
//    (kSpawnCommand / kQuitCommand); the server answers with framed JSON
//    notices: {"spawned": pid} right after forking a runner, and
//    {"exited": pid, "status": wait_status} once waitpid reaps it. Every
//    runner produces exactly one exited notice, which is how the supervisor
//    learns a child died (the server keeps the runner end of the data socket
//    open for future runners, so the parent never sees EOF there).
//
//  * data — parent <-> current runner. Framed JSON work items flow down
//    ({"order": [event ids...]}) and framed JSON outcomes flow back
//    ({"status": "ok" | "oom" | "error", "violations": [...], "prefix":
//    {cumulative counters}, "cache_bytes": n}). A runner that trips the
//    memory cap best-effort writes the "oom" response and exits with
//    kOomExitCode so the parent learns the reason even when the write loses
//    the race with the exit.
//
// Framing is the shared 4-byte little-endian length prefix from
// util/frame.hpp (also used by the exploration-service daemon). All
// parent-side writes use send(MSG_NOSIGNAL) so a dead peer surfaces as an
// error return instead of SIGPIPE.
#pragma once

#include <sys/types.h>

#include <cstdint>
#include <optional>
#include <string>

#include "core/interleaving.hpp"
#include "core/prefix_cache.hpp"
#include "core/replay.hpp"
#include "util/frame.hpp"

namespace erpi::sandbox {

/// Control-channel command bytes (parent -> fork server).
inline constexpr char kSpawnCommand = 'S';
inline constexpr char kQuitCommand = 'Q';

/// Exit code a runner uses for a structured out-of-memory death (RLIMIT_AS
/// tripped -> std::bad_alloc reached the child loop).
inline constexpr int kOomExitCode = 66;

// ---- framing ---------------------------------------------------------------
// Re-exported from util/frame.hpp so existing sandbox call sites keep their
// unqualified names; the implementations live in src/util/frame.cpp.

using util::drain_nonblocking;
using util::read_frame;
using util::wait_readable;
using util::wait_readable2;
using util::write_frame;

// ---- work items ------------------------------------------------------------

std::string encode_request(const core::Interleaving& il);
std::optional<core::Interleaving> decode_request(const std::string& payload);

// ---- outcomes --------------------------------------------------------------

struct WorkResponse {
  enum class Status { Ok, Oom, Error };

  Status status = Status::Ok;
  std::string error;  // Status::Error only
  std::vector<core::InterleavingOutcome::Violation> violations;
  /// Storage-fault replays: the durable-log recovery verdict the child's
  /// observer attached to the outcome. Absent for non-storage plans, so
  /// network/crash responses serialize exactly as before.
  std::optional<core::RecoveryVerdict> recovery;
  /// Cumulative for the runner's lifetime; the supervisor folds the last
  /// value into its per-worker tally when the runner dies.
  core::PrefixReplayStats prefix;
  /// Live snapshot-cache bytes, for the dispatcher's shared-budget polls.
  uint64_t cache_bytes = 0;
};

std::string encode_response(const WorkResponse& response);
std::optional<WorkResponse> decode_response(const std::string& payload);

// ---- fork-server notices ---------------------------------------------------

struct SpawnNotice {
  pid_t pid = -1;
};
struct ExitNotice {
  pid_t pid = -1;
  int wait_status = 0;  // waitpid status, classify with WIFSIGNALED/WIFEXITED
};
/// fork() itself failed inside the server (EAGAIN under pid pressure, ...).
/// The server stays alive and the supervisor decides whether to retry with
/// backoff or give up — this replaces the old behaviour of the server
/// _exit(1)-ing and taking the whole channel down with it.
struct SpawnFailedNotice {
  int err = 0;  // errno from the failed fork()
};

std::string encode_spawn_notice(const SpawnNotice& notice);
std::string encode_exit_notice(const ExitNotice& notice);
std::string encode_spawn_failed_notice(const SpawnFailedNotice& notice);

/// Decode any notice kind; exactly one optional is set on success.
struct ControlNotice {
  std::optional<SpawnNotice> spawned;
  std::optional<ExitNotice> exited;
  std::optional<SpawnFailedNotice> spawn_failed;
};
std::optional<ControlNotice> decode_notice(const std::string& payload);

}  // namespace erpi::sandbox
