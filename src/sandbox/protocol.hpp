// IPC wire format for the crash-isolated replay sandbox (DESIGN.md §9).
//
// Two channels per worker, both AF_UNIX stream socketpairs created before the
// fork server is spawned:
//
//  * control — parent <-> fork server. Parent sends single-byte commands
//    (kSpawnCommand / kQuitCommand); the server answers with framed JSON
//    notices: {"spawned": pid} right after forking a runner, and
//    {"exited": pid, "status": wait_status} once waitpid reaps it. Every
//    runner produces exactly one exited notice, which is how the supervisor
//    learns a child died (the server keeps the runner end of the data socket
//    open for future runners, so the parent never sees EOF there).
//
//  * data — parent <-> current runner. Framed JSON work items flow down
//    ({"order": [event ids...]}) and framed JSON outcomes flow back
//    ({"status": "ok" | "oom" | "error", "violations": [...], "prefix":
//    {cumulative counters}, "cache_bytes": n}). A runner that trips the
//    memory cap best-effort writes the "oom" response and exits with
//    kOomExitCode so the parent learns the reason even when the write loses
//    the race with the exit.
//
// Framing is a 4-byte little-endian payload length followed by the payload.
// All parent-side writes use send(MSG_NOSIGNAL) so a dead peer surfaces as
// an error return instead of SIGPIPE.
#pragma once

#include <sys/types.h>

#include <cstdint>
#include <optional>
#include <string>

#include "core/interleaving.hpp"
#include "core/prefix_cache.hpp"
#include "core/replay.hpp"

namespace erpi::sandbox {

/// Control-channel command bytes (parent -> fork server).
inline constexpr char kSpawnCommand = 'S';
inline constexpr char kQuitCommand = 'Q';

/// Exit code a runner uses for a structured out-of-memory death (RLIMIT_AS
/// tripped -> std::bad_alloc reached the child loop).
inline constexpr int kOomExitCode = 66;

// ---- framing ---------------------------------------------------------------

/// Write one length-prefixed frame. False on any error (peer gone, ...).
bool write_frame(int fd, const std::string& payload);

/// Read one complete frame; nullopt on EOF, error, or a torn frame.
std::optional<std::string> read_frame(int fd);

/// poll() for readability. Returns 1 when readable, 0 on timeout, -1 on
/// error. `timeout_ms` < 0 blocks indefinitely.
int wait_readable(int fd, int timeout_ms);

/// poll() two fds at once (the supervisor watches data + control together).
/// Sets the out-flags for whichever became readable; same return convention
/// as wait_readable.
int wait_readable2(int fd_a, int fd_b, int timeout_ms, bool& a_ready, bool& b_ready);

/// Throw away any buffered bytes without blocking (partial frames a killed
/// runner left in the data socket).
void drain_nonblocking(int fd);

// ---- work items ------------------------------------------------------------

std::string encode_request(const core::Interleaving& il);
std::optional<core::Interleaving> decode_request(const std::string& payload);

// ---- outcomes --------------------------------------------------------------

struct WorkResponse {
  enum class Status { Ok, Oom, Error };

  Status status = Status::Ok;
  std::string error;  // Status::Error only
  std::vector<core::InterleavingOutcome::Violation> violations;
  /// Storage-fault replays: the durable-log recovery verdict the child's
  /// observer attached to the outcome. Absent for non-storage plans, so
  /// network/crash responses serialize exactly as before.
  std::optional<core::RecoveryVerdict> recovery;
  /// Cumulative for the runner's lifetime; the supervisor folds the last
  /// value into its per-worker tally when the runner dies.
  core::PrefixReplayStats prefix;
  /// Live snapshot-cache bytes, for the dispatcher's shared-budget polls.
  uint64_t cache_bytes = 0;
};

std::string encode_response(const WorkResponse& response);
std::optional<WorkResponse> decode_response(const std::string& payload);

// ---- fork-server notices ---------------------------------------------------

struct SpawnNotice {
  pid_t pid = -1;
};
struct ExitNotice {
  pid_t pid = -1;
  int wait_status = 0;  // waitpid status, classify with WIFSIGNALED/WIFEXITED
};

std::string encode_spawn_notice(const SpawnNotice& notice);
std::string encode_exit_notice(const ExitNotice& notice);

/// Decode either notice kind; exactly one optional is set on success.
struct ControlNotice {
  std::optional<SpawnNotice> spawned;
  std::optional<ExitNotice> exited;
};
std::optional<ControlNotice> decode_notice(const std::string& payload);

}  // namespace erpi::sandbox
