#include "sandbox/supervisor.hpp"

#include <errno.h>
#include <signal.h>
#include <sys/prctl.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "kvstore/server.hpp"
#include "proxy/proxy.hpp"
#include "util/json.hpp"

namespace erpi::sandbox {

namespace {

/// Parent-side fds of every live ForkServer. A newly forked server child
/// closes the *siblings'* fds so it never holds their sockets open (which
/// would defeat peer-death detection and leak descriptors into long-lived
/// children). Guarded by a mutex only for registry bookkeeping — forks
/// themselves always happen while the process is single-threaded.
std::mutex registry_mu;
std::vector<int>& fd_registry() {
  static std::vector<int> fds;
  return fds;
}

std::vector<int> registry_snapshot() {
  std::lock_guard lock(registry_mu);
  return fd_registry();
}

void registry_add(int fd) {
  std::lock_guard lock(registry_mu);
  fd_registry().push_back(fd);
}

void registry_remove(int fd) {
  std::lock_guard lock(registry_mu);
  auto& fds = fd_registry();
  fds.erase(std::remove(fds.begin(), fds.end(), fd), fds.end());
}

/// Everything a runner needs to serve replays. Lives in the server process's
/// (copy-on-write) address space; each forked runner uses its own copy.
struct RunnerConfig {
  core::SubjectFactory subject_factory;
  core::AssertionFactory assertion_factory;
  core::ReplayOptions options;  // scrubbed: no callbacks/budget, no recursion
  uint64_t memory_limit_bytes = 0;
  core::EventSet events;
};

std::string ready_payload() {
  util::Json j = util::Json::object();
  j["ready"] = true;
  return j.dump();
}

bool is_ready_payload(const std::string& payload) {
  const auto parsed = util::Json::parse(payload);
  return parsed && parsed.value().is_object() && parsed.value().contains("ready");
}

/// The per-worker sandbox child: builds a private subject fixture exactly
/// like sched::WorkerContext does in-process, then serves work items until
/// the supervisor goes away. Never returns.
[[noreturn]] void run_runner_loop(int data_fd, const RunnerConfig& config) {
  ::prctl(PR_SET_PDEATHSIG, SIGKILL);  // never outlive the exploration
  if (config.memory_limit_bytes > 0) {
    struct rlimit limit;
    limit.rlim_cur = config.memory_limit_bytes;
    limit.rlim_max = config.memory_limit_bytes;
    ::setrlimit(RLIMIT_AS, &limit);
  }

  // Pre-encoded so the oom path can still report after allocation starts
  // failing.
  WorkResponse oom_template;
  oom_template.status = WorkResponse::Status::Oom;
  const std::string oom_fallback = encode_response(oom_template);

  std::unique_ptr<proxy::Rdl> subject;
  std::unique_ptr<kv::Server> lock_server;
  std::unique_ptr<proxy::RdlProxy> rdl_proxy;
  core::AssertionList assertions;
  std::unique_ptr<core::ReplayEngine> engine;
  try {
    subject = config.subject_factory();
    if (subject == nullptr) {
      throw std::invalid_argument("subject factory returned a null fixture");
    }
    rdl_proxy = std::make_unique<proxy::RdlProxy>(*subject);
    if (config.assertion_factory) assertions = config.assertion_factory(*subject);
    core::ReplayOptions options = config.options;
    if (options.threaded) {
      lock_server = std::make_unique<kv::Server>();
      options.lock_server = lock_server.get();
    }
    engine = std::make_unique<core::ReplayEngine>(*rdl_proxy, std::move(options));
    for (const auto& assertion : assertions) assertion->on_run_start();
  } catch (const std::bad_alloc&) {
    write_frame(data_fd, oom_fallback);
    ::_exit(kOomExitCode);
  } catch (const std::exception& e) {
    WorkResponse response;
    response.status = WorkResponse::Status::Error;
    response.error = std::string("sandbox fixture build failed: ") + e.what();
    write_frame(data_fd, encode_response(response));
    ::_exit(1);
  }

  // Handshake: the supervisor only ships work to a runner that reached here,
  // so a consumed request always produces either a response or a death — no
  // stale request can linger in the socket for the next runner.
  if (!write_frame(data_fd, ready_payload())) ::_exit(0);

  for (;;) {
    const auto frame = read_frame(data_fd);
    if (!frame) ::_exit(0);  // supervisor gone
    const auto il = decode_request(*frame);
    if (!il) ::_exit(1);

    WorkResponse response;
    try {
      const core::InterleavingOutcome outcome =
          engine->replay_one(*il, config.events, assertions);
      response.violations = outcome.violations;
      response.recovery = outcome.recovery;
      response.prefix = engine->prefix_stats();
      response.cache_bytes = engine->snapshot_cache_bytes();
    } catch (const std::bad_alloc&) {
      response = WorkResponse{};
      response.status = WorkResponse::Status::Oom;
      std::string payload;
      try {
        response.prefix = engine->prefix_stats();
        payload = encode_response(response);
      } catch (...) {
        payload = oom_fallback;
      }
      write_frame(data_fd, payload);
      ::_exit(kOomExitCode);
    } catch (const std::exception& e) {
      response = WorkResponse{};
      response.status = WorkResponse::Status::Error;
      response.error = e.what();
      response.prefix = engine->prefix_stats();
      response.cache_bytes = engine->snapshot_cache_bytes();
    }
    if (!write_frame(data_fd, encode_response(response))) ::_exit(0);
  }
}

/// The fork server: a single-threaded child that forks runners on command
/// and reports their deaths. All runner forks happen here, so they are safe
/// no matter how many threads the exploring process runs.
[[noreturn]] void run_server_loop(int control_fd, int data_fd,
                                  const RunnerConfig& config) {
  ::prctl(PR_SET_PDEATHSIG, SIGKILL);
  ::signal(SIGPIPE, SIG_IGN);
  for (;;) {
    char command = 0;
    ssize_t n;
    do {
      n = ::recv(control_fd, &command, 1, 0);
    } while (n < 0 && errno == EINTR);
    if (n <= 0 || command == kQuitCommand) ::_exit(0);
    if (command != kSpawnCommand) ::_exit(1);

    const pid_t pid = ::fork();
    if (pid < 0) {
      // Transient fork failure (EAGAIN under pid/memory pressure): report it
      // and keep serving — the supervisor owns the backoff-and-retry policy.
      // Exiting here would take the whole channel down over a blip.
      if (!write_frame(control_fd, encode_spawn_failed_notice({errno}))) ::_exit(0);
      continue;
    }
    if (pid == 0) {
      ::close(control_fd);
      run_runner_loop(data_fd, config);
    }
    if (!write_frame(control_fd, encode_spawn_notice({pid}))) {
      ::kill(pid, SIGKILL);
      ::_exit(0);
    }
    int status = 0;
    pid_t reaped;
    do {
      reaped = ::waitpid(pid, &status, 0);
    } while (reaped < 0 && errno == EINTR);
    if (reaped < 0) status = 0;
    if (!write_frame(control_fd, encode_exit_notice({pid, status}))) ::_exit(0);
  }
}

/// Fold one dead runner's final tally into the worker's total: counters sum,
/// but the cache-bytes peak takes the max — generations are sequential, never
/// concurrently resident (unlike the cross-worker merge, which sums peaks).
void fold_generation(core::PrefixReplayStats& total,
                     const core::PrefixReplayStats& generation) {
  const uint64_t peak = std::max(total.cache_bytes_peak, generation.cache_bytes_peak);
  total.merge(generation);
  total.cache_bytes_peak = peak;
}

}  // namespace

ForkServer::ForkServer(core::SubjectFactory subject_factory,
                       core::AssertionFactory assertion_factory,
                       core::ReplayOptions base, const core::EventSet& events)
    : options_(base) {
  if (!subject_factory) {
    throw std::invalid_argument("process isolation requires a subject factory");
  }

  RunnerConfig config;
  config.subject_factory = std::move(subject_factory);
  config.assertion_factory = std::move(assertion_factory);
  config.memory_limit_bytes = base.sandbox_memory_limit_bytes;
  config.events = events;
  // The child replays on its own thread with no watchdog (the supervisor
  // enforces deadlines externally), no shared budget (the dispatcher accounts
  // for everything parent-side) and no callbacks (delivery is the explorer's
  // job). observer_factory survives: fault-schedule hooks must fire inside
  // the child, where the subject lives.
  config.options = std::move(base);
  config.options.budget = nullptr;
  config.options.resource_budget_bytes = UINT64_MAX;
  config.options.extra_cache_bytes = nullptr;
  config.options.on_outcome = nullptr;
  config.options.on_interleaving_done = nullptr;
  config.options.watchdog_timeout_ms = 0;
  config.options.isolation = core::Isolation::None;
  config.options.lock_server = nullptr;  // the runner builds its own

  int control[2];
  int data[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, control) != 0) {
    throw std::runtime_error("sandbox: control socketpair failed");
  }
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, data) != 0) {
    ::close(control[0]);
    ::close(control[1]);
    throw std::runtime_error("sandbox: data socketpair failed");
  }

  const std::vector<int> sibling_fds = registry_snapshot();
  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(control[0]);
    ::close(control[1]);
    ::close(data[0]);
    ::close(data[1]);
    throw std::runtime_error("sandbox: fork server fork failed");
  }
  if (pid == 0) {
    ::close(control[0]);
    ::close(data[0]);
    for (const int fd : sibling_fds) ::close(fd);
    run_server_loop(control[1], data[1], config);
  }
  ::close(control[1]);
  ::close(data[1]);
  control_fd_ = control[0];
  data_fd_ = data[0];
  server_pid_ = pid;
  registry_add(control_fd_);
  registry_add(data_fd_);

  // Eager first spawn so every worker's fixture starts building right away;
  // the ready handshake is consumed by the first replay_one.
  spawn_runner();
}

ForkServer::~ForkServer() {
  if (server_pid_ > 0) {
    if (runner_pid_ > 0) {
      ::kill(runner_pid_, SIGKILL);
      try {
        reap_runner();
      } catch (...) {
        // Shutdown is best-effort; the server dies with us via PDEATHSIG.
      }
    }
    const char command = kQuitCommand;
    ::send(control_fd_, &command, 1, MSG_NOSIGNAL);
    int status = 0;
    pid_t reaped;
    do {
      reaped = ::waitpid(server_pid_, &status, 0);
    } while (reaped < 0 && errno == EINTR);
  }
  if (control_fd_ >= 0) {
    registry_remove(control_fd_);
    ::close(control_fd_);
  }
  if (data_fd_ >= 0) {
    registry_remove(data_fd_);
    ::close(data_fd_);
  }
}

void ForkServer::throw_server_lost(const char* where) const {
  throw std::runtime_error(std::string("sandbox fork server lost (") + where + ")");
}

void ForkServer::spawn_backoff_sleep(int streak) const {
  uint64_t delay = options_.sandbox_spawn_backoff_ms;
  for (int i = 1; i < streak && delay < options_.sandbox_spawn_backoff_cap_ms; ++i) {
    delay *= 2;
  }
  delay = std::min(delay, options_.sandbox_spawn_backoff_cap_ms);
  if (delay == 0) return;
  std::this_thread::sleep_for(std::chrono::milliseconds(delay));
}

void ForkServer::spawn_runner() {
  // fork() failures inside the server come back as structured spawn_failed
  // notices; back off exponentially and retry instead of hot-looping the
  // spawn command against a box that just ran out of pids.
  for (;;) {
    const char command = kSpawnCommand;
    if (::send(control_fd_, &command, 1, MSG_NOSIGNAL) != 1) {
      throw_server_lost("spawn command");
    }
    const auto frame = read_frame(control_fd_);
    if (!frame) throw_server_lost("spawn notice");
    const auto notice = decode_notice(*frame);
    if (!notice) throw_server_lost("spawn notice decode");
    if (notice->spawn_failed) {
      ++stats_.respawn_failures;
      if (++spawn_failure_streak_ > std::max(0, options_.sandbox_spawn_max_retries)) {
        throw std::runtime_error("sandbox: runner spawn failed after " +
                                 std::to_string(spawn_failure_streak_) + " attempts (errno " +
                                 std::to_string(notice->spawn_failed->err) + ")");
      }
      spawn_backoff_sleep(spawn_failure_streak_);
      continue;
    }
    if (!notice->spawned) throw_server_lost("spawn notice decode");
    runner_pid_ = notice->spawned->pid;
    ready_pending_ = true;
    if (spawned_once_) ++stats_.respawns;
    spawned_once_ = true;
    return;
  }
}

int ForkServer::reap_runner() {
  const auto frame = read_frame(control_fd_);
  if (!frame) throw_server_lost("exit notice");
  const auto notice = decode_notice(*frame);
  if (!notice || !notice->exited) throw_server_lost("exit notice decode");
  // The dead runner's last reported tally becomes final; clear any torn
  // response bytes it left behind so the next runner starts on a clean
  // socket.
  fold_generation(prefix_dead_, prefix_live_);
  prefix_live_ = core::PrefixReplayStats{};
  cache_bytes_.store(0, std::memory_order_relaxed);
  drain_nonblocking(data_fd_);
  runner_pid_ = -1;
  ready_pending_ = false;
  return notice->exited->wait_status;
}

core::PrefixReplayStats ForkServer::prefix_stats() const {
  core::PrefixReplayStats out = prefix_dead_;
  fold_generation(out, prefix_live_);
  return out;
}

/// waitpid-status → attempt classification for a dead runner.
ForkServer::AttemptKind ForkServer::classify_exit(int wait_status, int& signal) {
  if (WIFSIGNALED(wait_status)) {
    signal = WTERMSIG(wait_status);
    return AttemptKind::Crashed;
  }
  if (WIFEXITED(wait_status) && WEXITSTATUS(wait_status) == kOomExitCode) {
    return AttemptKind::Oom;
  }
  // Unexpected clean exit (e.g. the runner hit a socket error): treat as a
  // crash with no signal so the retry/quarantine machinery still applies.
  signal = 0;
  return AttemptKind::Crashed;
}

std::optional<ForkServer::Attempt> ForkServer::await_ready(int deadline_ms) {
  for (;;) {
    bool data_ready = false;
    bool control_ready = false;
    const int rc =
        wait_readable2(data_fd_, control_fd_, deadline_ms, data_ready, control_ready);
    if (rc < 0) throw_server_lost("await ready");
    if (rc == 0) {
      ::kill(runner_pid_, SIGKILL);
      reap_runner();
      Attempt attempt;
      attempt.kind = AttemptKind::TimedOut;
      return attempt;
    }
    if (data_ready) {
      const auto frame = read_frame(data_fd_);
      if (!frame) throw_server_lost("read ready");
      if (is_ready_payload(*frame)) {
        ready_pending_ = false;
        spawn_failure_streak_ = 0;  // a healthy runner ends the streak
        return std::nullopt;  // runner is live and idle
      }
      const auto response = decode_response(*frame);
      if (!response) throw_server_lost("decode ready");
      if (response->status == WorkResponse::Status::Error) {
        // Fixture build failed and the runner is exiting. Transient factory
        // failures (resource spikes, dependency warm-up) heal under the same
        // backoff-and-respawn policy as fork failures; a deterministic one
        // exhausts the retries and surfaces as the original error.
        reap_runner();
        ++stats_.respawn_failures;
        if (++spawn_failure_streak_ > std::max(0, options_.sandbox_spawn_max_retries)) {
          throw std::runtime_error("sandbox child error: " + response->error);
        }
        spawn_backoff_sleep(spawn_failure_streak_);
        spawn_runner();
        continue;
      }
      // Fixture build blew the memory cap: the runner is exiting.
      prefix_live_ = response->prefix;
      reap_runner();
      Attempt attempt;
      attempt.kind = AttemptKind::Oom;
      return attempt;
    }
    if (control_ready) {
      const int status = reap_runner();
      Attempt attempt;
      attempt.kind = classify_exit(status, attempt.signal);
      return attempt;
    }
  }
}

ForkServer::Attempt ForkServer::attempt_once(const core::Interleaving& il) {
  const int deadline_ms =
      options_.watchdog_timeout_ms > 0 ? static_cast<int>(options_.watchdog_timeout_ms) : -1;

  if (runner_pid_ < 0) spawn_runner();
  if (ready_pending_) {
    // Fixture building gets its own deadline, mirroring the in-process
    // watchdog (which times the replay, not WorkerContext::build_fixture).
    if (auto failed = await_ready(deadline_ms)) return *failed;
  }

  if (!write_frame(data_fd_, encode_request(il))) throw_server_lost("send work item");

  for (;;) {
    bool data_ready = false;
    bool control_ready = false;
    const int rc =
        wait_readable2(data_fd_, control_fd_, deadline_ms, data_ready, control_ready);
    if (rc < 0) throw_server_lost("await outcome");
    if (rc == 0) {
      // Deadline blown: escalate to SIGKILL. Unlike the in-process watchdog's
      // cooperative cancel, this reclaims a replay stuck inside subject code.
      ::kill(runner_pid_, SIGKILL);
      reap_runner();
      Attempt attempt;
      attempt.kind = AttemptKind::TimedOut;
      return attempt;
    }
    if (data_ready) {
      const auto frame = read_frame(data_fd_);
      if (!frame) throw_server_lost("read outcome");
      const auto response = decode_response(*frame);
      if (!response) throw_server_lost("decode outcome");
      switch (response->status) {
        case WorkResponse::Status::Ok: {
          prefix_live_ = response->prefix;
          cache_bytes_.store(response->cache_bytes, std::memory_order_relaxed);
          Attempt attempt;
          attempt.kind = AttemptKind::Ok;
          attempt.response = std::move(*response);
          return attempt;
        }
        case WorkResponse::Status::Oom: {
          prefix_live_ = response->prefix;
          reap_runner();  // the runner exits right after reporting
          Attempt attempt;
          attempt.kind = AttemptKind::Oom;
          return attempt;
        }
        case WorkResponse::Status::Error:
          throw std::runtime_error("sandbox child error: " + response->error);
      }
    }
    if (control_ready) {
      const int status = reap_runner();
      Attempt attempt;
      attempt.kind = classify_exit(status, attempt.signal);
      return attempt;
    }
  }
}

core::InterleavingOutcome ForkServer::replay_one(const core::Interleaving& il) {
  const int max_attempts = 1 + std::max(0, options_.sandbox_max_retries);
  Attempt last;
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    if (attempt > 0) ++stats_.retries;
    last = attempt_once(il);
    switch (last.kind) {
      case AttemptKind::Ok: {
        if (attempt > 0) ++stats_.retry_successes;  // collateral, not deterministic
        core::InterleavingOutcome outcome;
        outcome.violations = std::move(last.response.violations);
        outcome.recovery = last.response.recovery;
        return outcome;
      }
      case AttemptKind::TimedOut: {
        // No retry: watchdog timeouts quarantine immediately, matching the
        // in-process watchdog semantics.
        ++stats_.timeouts;
        core::InterleavingOutcome outcome;
        outcome.timed_out = true;
        return outcome;
      }
      case AttemptKind::Crashed:
        ++stats_.crashes;
        break;  // respawn happens lazily on the next attempt
      case AttemptKind::Oom:
        ++stats_.oom_kills;
        break;
    }
  }
  // Every attempt ran in a fresh child and failed the same way: the failure
  // is deterministic for this (plan, interleaving); quarantine it.
  core::InterleavingOutcome outcome;
  if (last.kind == AttemptKind::Crashed) {
    outcome.crashed = true;
    outcome.term_signal = last.signal;
  } else {
    outcome.oom = true;
  }
  return outcome;
}

}  // namespace erpi::sandbox
