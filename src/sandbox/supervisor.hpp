// Crash-isolated replay sandbox: an AFL-style fork server per parallel
// worker (DESIGN.md §9).
//
// Process layout (one ForkServer per worker):
//
//   explorer process ──control socket──> fork server S (single-threaded)
//          │                                  │ fork-per-respawn
//          └───────data socket───────> runner R (builds the subject fixture,
//                                      loops: read work item → replay →
//                                      write outcome)
//
// Why two levels: fork() from a multi-threaded process is only safe for
// async-signal-safe code, and respawns happen while the worker pool is
// running. So the explorer forks each server S exactly once, on the control
// thread, *before* any pool thread exists; S stays single-threaded forever
// and performs every runner fork on command. Respawning after a crash is
// therefore always a fork from a single-threaded process, no matter how many
// worker threads the parent runs.
//
// Outcome taxonomy (ISSUE 4):
//   * crashed   — R died on a signal (SIGSEGV, SIGABRT, SIGKILL...). The item
//                 is retried once in a fresh child; a second death means the
//                 crash is deterministic and the item is quarantined with the
//                 signal number. A retry that comes back clean is collateral
//                 damage from an earlier item and is only counted.
//   * oom       — R tripped RLIMIT_AS: the child catches std::bad_alloc,
//                 best-effort writes a structured "oom" response, and exits
//                 with kOomExitCode so the reason survives even if the write
//                 loses the race. Same retry-once policy as crashes.
//   * timed_out — R blew the watchdog deadline; the supervisor SIGKILLs it.
//                 Matches the in-process watchdog semantics (PR 3): no retry,
//                 quarantined immediately.
//
// The supervisor never reads the data socket for liveness: S keeps the runner
// end open for future runners, so runner death is detected via S's framed
// {"exited", status} notice on the control socket (S sits in waitpid while a
// runner lives). replay_one polls data + control together.
#pragma once

#include <sys/types.h>

#include <atomic>
#include <cstdint>
#include <string>

#include "core/replay.hpp"
#include "sandbox/protocol.hpp"

namespace erpi::sandbox {

/// One worker's fork server + current runner. Not thread-safe: owned and
/// driven by exactly one worker thread (construction and destruction happen
/// on the explorer's control thread while the pool is quiescent — that is
/// what keeps every fork single-threaded). Only snapshot_cache_bytes() may be
/// called concurrently (the dispatcher's budget polls).
class ForkServer {
 public:
  /// Forks the server process and spawns the first runner (which builds its
  /// fixture from `subject_factory`/`assertion_factory` inside the child).
  /// `base` carries the run-wide replay options; the supervisor owns the
  /// watchdog (base.watchdog_timeout_ms) and the retry policy
  /// (base.sandbox_max_retries), the child gets a scrubbed copy (no
  /// callbacks, no budget, Isolation::None). `events` must outlive this
  /// object. MUST be constructed while the calling process is
  /// single-threaded.
  ForkServer(core::SubjectFactory subject_factory,
             core::AssertionFactory assertion_factory, core::ReplayOptions base,
             const core::EventSet& events);

  /// Kills the current runner, shuts the server down and reaps it.
  ~ForkServer();

  ForkServer(const ForkServer&) = delete;
  ForkServer& operator=(const ForkServer&) = delete;

  /// Ship one interleaving to the runner and wait for its outcome, enforcing
  /// the watchdog deadline and the crash/oom respawn-and-retry-once policy.
  /// Throws on supervisor-level failures (fork server died, child reported a
  /// structured error) — mirroring how an in-process replay exception aborts
  /// the run.
  core::InterleavingOutcome replay_one(const core::Interleaving& il);

  /// Anomaly counters for this worker's sandbox (read after the pool joins).
  const core::SandboxStats& stats() const noexcept { return stats_; }

  /// Cumulative incremental-replay counters: dead runners' final tallies plus
  /// the live runner's latest report (read after the pool joins).
  core::PrefixReplayStats prefix_stats() const;

  /// Live runner's snapshot-cache bytes as of its last response. Thread-safe;
  /// the dispatcher polls it for shared-budget checks.
  uint64_t snapshot_cache_bytes() const noexcept {
    return cache_bytes_.load(std::memory_order_relaxed);
  }

 private:
  enum class AttemptKind { Ok, Crashed, Oom, TimedOut };

  struct Attempt {
    AttemptKind kind = AttemptKind::Ok;
    int signal = 0;  // Crashed only
    WorkResponse response;  // Ok only
  };

  void spawn_runner();
  /// Exponential-backoff sleep for the current spawn-failure streak:
  /// sandbox_spawn_backoff_ms doubled per consecutive failure, capped at
  /// sandbox_spawn_backoff_cap_ms. Keeps fork-EAGAIN storms from hot-looping.
  void spawn_backoff_sleep(int streak) const;
  Attempt attempt_once(const core::Interleaving& il);
  /// Consume the runner's ready handshake (nullopt) or its build-time
  /// failure (the classified attempt).
  std::optional<Attempt> await_ready(int deadline_ms);
  /// Consume the server's {"exited"} notice for the current runner, fold its
  /// prefix stats and clear the data socket. Returns the waitpid status.
  int reap_runner();
  static AttemptKind classify_exit(int wait_status, int& signal);
  [[noreturn]] void throw_server_lost(const char* where) const;

  core::ReplayOptions options_;  // supervisor's view (watchdog, retries)
  int control_fd_ = -1;  // to the fork server
  int data_fd_ = -1;     // to the current runner
  pid_t server_pid_ = -1;
  pid_t runner_pid_ = -1;
  bool spawned_once_ = false;  // distinguishes first spawn from respawns
  bool ready_pending_ = true;  // handshake not yet consumed for this runner
  /// Consecutive failed spawn attempts (fork failure or fixture-build error)
  /// since the last healthy runner; drives the exponential backoff and the
  /// give-up threshold (options_.sandbox_spawn_max_retries).
  int spawn_failure_streak_ = 0;

  core::SandboxStats stats_;
  core::PrefixReplayStats prefix_dead_;  // folded from dead runners
  core::PrefixReplayStats prefix_live_;  // live runner's latest cumulative
  std::atomic<uint64_t> cache_bytes_{0};
};

}  // namespace erpi::sandbox
