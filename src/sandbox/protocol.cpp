#include "sandbox/protocol.hpp"

#include <cstring>

#include "util/json.hpp"

namespace erpi::sandbox {

// Framing lives in src/util/frame.cpp (shared with the exploration service);
// this file only knows the sandbox message vocabulary.

// ---- work items ------------------------------------------------------------

std::string encode_request(const core::Interleaving& il) {
  util::Json j = util::Json::object();
  util::Json order = util::Json::array();
  for (const int event : il.order) order.push_back(static_cast<int64_t>(event));
  j["order"] = std::move(order);
  return j.dump();
}

std::optional<core::Interleaving> decode_request(const std::string& payload) {
  const auto parsed = util::Json::parse(payload);
  if (!parsed) return std::nullopt;
  const util::Json& j = parsed.value();
  if (!j.is_object() || !j.contains("order") || !j["order"].is_array()) {
    return std::nullopt;
  }
  core::Interleaving il;
  il.order.reserve(j["order"].size());
  for (const auto& e : j["order"].as_array()) {
    if (!e.is_int()) return std::nullopt;
    il.order.push_back(static_cast<int>(e.as_int()));
  }
  return il;
}

// ---- outcomes --------------------------------------------------------------

namespace {

const char* status_name(WorkResponse::Status status) {
  switch (status) {
    case WorkResponse::Status::Ok: return "ok";
    case WorkResponse::Status::Oom: return "oom";
    case WorkResponse::Status::Error: return "error";
  }
  return "error";
}

std::optional<WorkResponse::Status> parse_status(const std::string& name) {
  if (name == "ok") return WorkResponse::Status::Ok;
  if (name == "oom") return WorkResponse::Status::Oom;
  if (name == "error") return WorkResponse::Status::Error;
  return std::nullopt;
}

bool read_u64(const util::Json& j, const char* key, uint64_t& out) {
  if (!j.contains(key) || !j[key].is_int()) return false;
  out = static_cast<uint64_t>(j[key].as_int());
  return true;
}

}  // namespace

std::string encode_response(const WorkResponse& response) {
  util::Json j = util::Json::object();
  j["status"] = status_name(response.status);
  if (!response.error.empty()) j["message"] = response.error;
  util::Json violations = util::Json::array();
  for (const auto& violation : response.violations) {
    util::Json v = util::Json::object();
    v["assertion"] = violation.assertion;
    v["message"] = violation.message;
    violations.push_back(std::move(v));
  }
  j["violations"] = std::move(violations);
  if (response.recovery) {
    util::Json recovery = util::Json::object();
    recovery["status"] = std::string(core::recovery_status_name(response.recovery->status));
    recovery["first"] = static_cast<int64_t>(response.recovery->first_missing);
    recovery["count"] = static_cast<int64_t>(response.recovery->missing_count);
    j["recovery"] = std::move(recovery);
  }
  util::Json prefix = util::Json::object();
  prefix["events_executed"] = static_cast<int64_t>(response.prefix.events_executed);
  prefix["events_skipped"] = static_cast<int64_t>(response.prefix.events_skipped);
  prefix["snapshots_taken"] = static_cast<int64_t>(response.prefix.snapshots_taken);
  prefix["snapshots_restored"] = static_cast<int64_t>(response.prefix.snapshots_restored);
  prefix["snapshots_evicted"] = static_cast<int64_t>(response.prefix.snapshots_evicted);
  prefix["snapshot_alloc_failures"] =
      static_cast<int64_t>(response.prefix.snapshot_alloc_failures);
  prefix["cache_bytes_peak"] = static_cast<int64_t>(response.prefix.cache_bytes_peak);
  j["prefix"] = std::move(prefix);
  j["cache_bytes"] = static_cast<int64_t>(response.cache_bytes);
  return j.dump();
}

std::optional<WorkResponse> decode_response(const std::string& payload) {
  const auto parsed = util::Json::parse(payload);
  if (!parsed) return std::nullopt;
  const util::Json& j = parsed.value();
  if (!j.is_object() || !j.contains("status") || !j["status"].is_string()) {
    return std::nullopt;
  }
  WorkResponse response;
  const auto status = parse_status(j["status"].as_string());
  if (!status) return std::nullopt;
  response.status = *status;
  if (j.contains("message")) {
    if (!j["message"].is_string()) return std::nullopt;
    response.error = j["message"].as_string();
  }
  if (!j.contains("violations") || !j["violations"].is_array()) return std::nullopt;
  for (const auto& v : j["violations"].as_array()) {
    if (!v.is_object() || !v.contains("assertion") || !v["assertion"].is_string() ||
        !v.contains("message") || !v["message"].is_string()) {
      return std::nullopt;
    }
    response.violations.push_back({v["assertion"].as_string(), v["message"].as_string()});
  }
  if (j.contains("recovery")) {
    const util::Json& recovery = j["recovery"];
    if (!recovery.is_object() || !recovery.contains("status") ||
        !recovery["status"].is_string()) {
      return std::nullopt;
    }
    const auto status = core::recovery_status_from_name(recovery["status"].as_string());
    if (!status) return std::nullopt;
    core::RecoveryVerdict verdict;
    verdict.status = *status;
    if (!read_u64(recovery, "first", verdict.first_missing) ||
        !read_u64(recovery, "count", verdict.missing_count)) {
      return std::nullopt;
    }
    response.recovery = verdict;
  }
  if (!j.contains("prefix") || !j["prefix"].is_object()) return std::nullopt;
  const util::Json& prefix = j["prefix"];
  if (!read_u64(prefix, "events_executed", response.prefix.events_executed) ||
      !read_u64(prefix, "events_skipped", response.prefix.events_skipped) ||
      !read_u64(prefix, "snapshots_taken", response.prefix.snapshots_taken) ||
      !read_u64(prefix, "snapshots_restored", response.prefix.snapshots_restored) ||
      !read_u64(prefix, "snapshots_evicted", response.prefix.snapshots_evicted) ||
      !read_u64(prefix, "snapshot_alloc_failures",
                response.prefix.snapshot_alloc_failures) ||
      !read_u64(prefix, "cache_bytes_peak", response.prefix.cache_bytes_peak)) {
    return std::nullopt;
  }
  if (!read_u64(j, "cache_bytes", response.cache_bytes)) return std::nullopt;
  return response;
}

// ---- fork-server notices ---------------------------------------------------

std::string encode_spawn_notice(const SpawnNotice& notice) {
  util::Json j = util::Json::object();
  j["spawned"] = static_cast<int64_t>(notice.pid);
  return j.dump();
}

std::string encode_exit_notice(const ExitNotice& notice) {
  util::Json j = util::Json::object();
  j["exited"] = static_cast<int64_t>(notice.pid);
  j["status"] = static_cast<int64_t>(notice.wait_status);
  return j.dump();
}

std::string encode_spawn_failed_notice(const SpawnFailedNotice& notice) {
  util::Json j = util::Json::object();
  j["spawn_failed"] = static_cast<int64_t>(notice.err);
  return j.dump();
}

std::optional<ControlNotice> decode_notice(const std::string& payload) {
  const auto parsed = util::Json::parse(payload);
  if (!parsed) return std::nullopt;
  const util::Json& j = parsed.value();
  if (!j.is_object()) return std::nullopt;
  ControlNotice notice;
  if (j.contains("spawned")) {
    if (!j["spawned"].is_int()) return std::nullopt;
    notice.spawned = SpawnNotice{static_cast<pid_t>(j["spawned"].as_int())};
    return notice;
  }
  if (j.contains("exited")) {
    if (!j["exited"].is_int() || !j.contains("status") || !j["status"].is_int()) {
      return std::nullopt;
    }
    notice.exited = ExitNotice{static_cast<pid_t>(j["exited"].as_int()),
                               static_cast<int>(j["status"].as_int())};
    return notice;
  }
  if (j.contains("spawn_failed")) {
    if (!j["spawn_failed"].is_int()) return std::nullopt;
    notice.spawn_failed = SpawnFailedNotice{static_cast<int>(j["spawn_failed"].as_int())};
    return notice;
  }
  return std::nullopt;
}

}  // namespace erpi::sandbox
