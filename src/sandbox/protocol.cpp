#include "sandbox/protocol.hpp"

#include <errno.h>
#include <poll.h>
#include <sys/socket.h>

#include <cstring>

#include "util/json.hpp"

namespace erpi::sandbox {

namespace {

/// Upper bound on a frame payload. Responses carry at most a few violations
/// plus fixed counters; anything bigger means a corrupted length prefix from
/// a torn write, and treating it as an error beats a multi-gigabyte alloc.
constexpr uint32_t kMaxFrameBytes = 16u * 1024u * 1024u;

bool send_all(int fd, const void* data, size_t len) {
  const char* p = static_cast<const char*>(data);
  while (len > 0) {
    const ssize_t n = ::send(fd, p, len, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += n;
    len -= static_cast<size_t>(n);
  }
  return true;
}

bool recv_all(int fd, void* data, size_t len) {
  char* p = static_cast<char*>(data);
  while (len > 0) {
    const ssize_t n = ::recv(fd, p, len, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;  // EOF mid-frame
    p += n;
    len -= static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

bool write_frame(int fd, const std::string& payload) {
  if (payload.size() > kMaxFrameBytes) return false;
  const uint32_t len = static_cast<uint32_t>(payload.size());
  unsigned char header[4] = {
      static_cast<unsigned char>(len & 0xff),
      static_cast<unsigned char>((len >> 8) & 0xff),
      static_cast<unsigned char>((len >> 16) & 0xff),
      static_cast<unsigned char>((len >> 24) & 0xff),
  };
  return send_all(fd, header, sizeof(header)) &&
         send_all(fd, payload.data(), payload.size());
}

std::optional<std::string> read_frame(int fd) {
  unsigned char header[4];
  if (!recv_all(fd, header, sizeof(header))) return std::nullopt;
  const uint32_t len = static_cast<uint32_t>(header[0]) |
                       (static_cast<uint32_t>(header[1]) << 8) |
                       (static_cast<uint32_t>(header[2]) << 16) |
                       (static_cast<uint32_t>(header[3]) << 24);
  if (len > kMaxFrameBytes) return std::nullopt;
  std::string payload(len, '\0');
  if (len > 0 && !recv_all(fd, payload.data(), len)) return std::nullopt;
  return payload;
}

int wait_readable(int fd, int timeout_ms) {
  struct pollfd pfd;
  pfd.fd = fd;
  pfd.events = POLLIN;
  pfd.revents = 0;
  for (;;) {
    const int rc = ::poll(&pfd, 1, timeout_ms);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return -1;
    }
    return rc > 0 ? 1 : 0;
  }
}

int wait_readable2(int fd_a, int fd_b, int timeout_ms, bool& a_ready, bool& b_ready) {
  a_ready = false;
  b_ready = false;
  struct pollfd pfds[2];
  pfds[0].fd = fd_a;
  pfds[0].events = POLLIN;
  pfds[0].revents = 0;
  pfds[1].fd = fd_b;
  pfds[1].events = POLLIN;
  pfds[1].revents = 0;
  for (;;) {
    const int rc = ::poll(pfds, 2, timeout_ms);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return -1;
    }
    if (rc == 0) return 0;
    // POLLHUP/POLLERR count as readable: the subsequent read reports the
    // condition (EOF / error) instead of this poll loop spinning on it.
    a_ready = (pfds[0].revents & (POLLIN | POLLHUP | POLLERR)) != 0;
    b_ready = (pfds[1].revents & (POLLIN | POLLHUP | POLLERR)) != 0;
    return 1;
  }
}

void drain_nonblocking(int fd) {
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), MSG_DONTWAIT);
    if (n > 0) continue;
    if (n < 0 && errno == EINTR) continue;
    return;  // EAGAIN (empty), EOF, or error — nothing left to discard
  }
}

// ---- work items ------------------------------------------------------------

std::string encode_request(const core::Interleaving& il) {
  util::Json j = util::Json::object();
  util::Json order = util::Json::array();
  for (const int event : il.order) order.push_back(static_cast<int64_t>(event));
  j["order"] = std::move(order);
  return j.dump();
}

std::optional<core::Interleaving> decode_request(const std::string& payload) {
  const auto parsed = util::Json::parse(payload);
  if (!parsed) return std::nullopt;
  const util::Json& j = parsed.value();
  if (!j.is_object() || !j.contains("order") || !j["order"].is_array()) {
    return std::nullopt;
  }
  core::Interleaving il;
  il.order.reserve(j["order"].size());
  for (const auto& e : j["order"].as_array()) {
    if (!e.is_int()) return std::nullopt;
    il.order.push_back(static_cast<int>(e.as_int()));
  }
  return il;
}

// ---- outcomes --------------------------------------------------------------

namespace {

const char* status_name(WorkResponse::Status status) {
  switch (status) {
    case WorkResponse::Status::Ok: return "ok";
    case WorkResponse::Status::Oom: return "oom";
    case WorkResponse::Status::Error: return "error";
  }
  return "error";
}

std::optional<WorkResponse::Status> parse_status(const std::string& name) {
  if (name == "ok") return WorkResponse::Status::Ok;
  if (name == "oom") return WorkResponse::Status::Oom;
  if (name == "error") return WorkResponse::Status::Error;
  return std::nullopt;
}

bool read_u64(const util::Json& j, const char* key, uint64_t& out) {
  if (!j.contains(key) || !j[key].is_int()) return false;
  out = static_cast<uint64_t>(j[key].as_int());
  return true;
}

}  // namespace

std::string encode_response(const WorkResponse& response) {
  util::Json j = util::Json::object();
  j["status"] = status_name(response.status);
  if (!response.error.empty()) j["message"] = response.error;
  util::Json violations = util::Json::array();
  for (const auto& violation : response.violations) {
    util::Json v = util::Json::object();
    v["assertion"] = violation.assertion;
    v["message"] = violation.message;
    violations.push_back(std::move(v));
  }
  j["violations"] = std::move(violations);
  if (response.recovery) {
    util::Json recovery = util::Json::object();
    recovery["status"] = std::string(core::recovery_status_name(response.recovery->status));
    recovery["first"] = static_cast<int64_t>(response.recovery->first_missing);
    recovery["count"] = static_cast<int64_t>(response.recovery->missing_count);
    j["recovery"] = std::move(recovery);
  }
  util::Json prefix = util::Json::object();
  prefix["events_executed"] = static_cast<int64_t>(response.prefix.events_executed);
  prefix["events_skipped"] = static_cast<int64_t>(response.prefix.events_skipped);
  prefix["snapshots_taken"] = static_cast<int64_t>(response.prefix.snapshots_taken);
  prefix["snapshots_restored"] = static_cast<int64_t>(response.prefix.snapshots_restored);
  prefix["snapshots_evicted"] = static_cast<int64_t>(response.prefix.snapshots_evicted);
  prefix["snapshot_alloc_failures"] =
      static_cast<int64_t>(response.prefix.snapshot_alloc_failures);
  prefix["cache_bytes_peak"] = static_cast<int64_t>(response.prefix.cache_bytes_peak);
  j["prefix"] = std::move(prefix);
  j["cache_bytes"] = static_cast<int64_t>(response.cache_bytes);
  return j.dump();
}

std::optional<WorkResponse> decode_response(const std::string& payload) {
  const auto parsed = util::Json::parse(payload);
  if (!parsed) return std::nullopt;
  const util::Json& j = parsed.value();
  if (!j.is_object() || !j.contains("status") || !j["status"].is_string()) {
    return std::nullopt;
  }
  WorkResponse response;
  const auto status = parse_status(j["status"].as_string());
  if (!status) return std::nullopt;
  response.status = *status;
  if (j.contains("message")) {
    if (!j["message"].is_string()) return std::nullopt;
    response.error = j["message"].as_string();
  }
  if (!j.contains("violations") || !j["violations"].is_array()) return std::nullopt;
  for (const auto& v : j["violations"].as_array()) {
    if (!v.is_object() || !v.contains("assertion") || !v["assertion"].is_string() ||
        !v.contains("message") || !v["message"].is_string()) {
      return std::nullopt;
    }
    response.violations.push_back({v["assertion"].as_string(), v["message"].as_string()});
  }
  if (j.contains("recovery")) {
    const util::Json& recovery = j["recovery"];
    if (!recovery.is_object() || !recovery.contains("status") ||
        !recovery["status"].is_string()) {
      return std::nullopt;
    }
    const auto status = core::recovery_status_from_name(recovery["status"].as_string());
    if (!status) return std::nullopt;
    core::RecoveryVerdict verdict;
    verdict.status = *status;
    if (!read_u64(recovery, "first", verdict.first_missing) ||
        !read_u64(recovery, "count", verdict.missing_count)) {
      return std::nullopt;
    }
    response.recovery = verdict;
  }
  if (!j.contains("prefix") || !j["prefix"].is_object()) return std::nullopt;
  const util::Json& prefix = j["prefix"];
  if (!read_u64(prefix, "events_executed", response.prefix.events_executed) ||
      !read_u64(prefix, "events_skipped", response.prefix.events_skipped) ||
      !read_u64(prefix, "snapshots_taken", response.prefix.snapshots_taken) ||
      !read_u64(prefix, "snapshots_restored", response.prefix.snapshots_restored) ||
      !read_u64(prefix, "snapshots_evicted", response.prefix.snapshots_evicted) ||
      !read_u64(prefix, "snapshot_alloc_failures",
                response.prefix.snapshot_alloc_failures) ||
      !read_u64(prefix, "cache_bytes_peak", response.prefix.cache_bytes_peak)) {
    return std::nullopt;
  }
  if (!read_u64(j, "cache_bytes", response.cache_bytes)) return std::nullopt;
  return response;
}

// ---- fork-server notices ---------------------------------------------------

std::string encode_spawn_notice(const SpawnNotice& notice) {
  util::Json j = util::Json::object();
  j["spawned"] = static_cast<int64_t>(notice.pid);
  return j.dump();
}

std::string encode_exit_notice(const ExitNotice& notice) {
  util::Json j = util::Json::object();
  j["exited"] = static_cast<int64_t>(notice.pid);
  j["status"] = static_cast<int64_t>(notice.wait_status);
  return j.dump();
}

std::optional<ControlNotice> decode_notice(const std::string& payload) {
  const auto parsed = util::Json::parse(payload);
  if (!parsed) return std::nullopt;
  const util::Json& j = parsed.value();
  if (!j.is_object()) return std::nullopt;
  ControlNotice notice;
  if (j.contains("spawned")) {
    if (!j["spawned"].is_int()) return std::nullopt;
    notice.spawned = SpawnNotice{static_cast<pid_t>(j["spawned"].as_int())};
    return notice;
  }
  if (j.contains("exited")) {
    if (!j["exited"].is_int() || !j.contains("status") || !j["status"].is_int()) {
      return std::nullopt;
    }
    notice.exited = ExitNotice{static_cast<pid_t>(j["exited"].as_int()),
                               static_cast<int>(j["status"].as_int())};
    return notice;
  }
  return std::nullopt;
}

}  // namespace erpi::sandbox
