// Fact database: relations of ground tuples with hash-based dedup and
// first-column indexes for join acceleration.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "datalog/ast.hpp"

namespace erpi::datalog {

using Tuple = std::vector<Value>;

struct TupleHash {
  size_t operator()(const Tuple& t) const noexcept {
    uint64_t h = 0xcbf29ce484222325ULL;
    for (const auto& v : t) {
      h ^= static_cast<uint64_t>(v.kind) + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
      h ^= static_cast<uint64_t>(v.payload) + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    }
    return static_cast<size_t>(h);
  }
};

/// One relation: a deduplicated set of same-arity tuples, with insertion
/// order preserved (so query output is deterministic) and an index keyed on
/// each column to make selective scans cheap.
class Relation {
 public:
  explicit Relation(size_t arity) : arity_(arity) {}

  size_t arity() const noexcept { return arity_; }
  size_t size() const noexcept { return tuples_.size(); }
  bool empty() const noexcept { return tuples_.empty(); }

  /// Returns true if the tuple was newly inserted.
  bool insert(Tuple t);
  bool contains(const Tuple& t) const { return set_.count(t) > 0; }

  const std::vector<Tuple>& tuples() const noexcept { return tuples_; }

  /// Row indices whose column `col` equals `v`. Builds the column index lazily.
  const std::vector<size_t>& rows_with(size_t col, const Value& v) const;

 private:
  struct ValueKey {
    Value::Kind kind;
    int64_t payload;
    bool operator==(const ValueKey&) const = default;
  };
  struct ValueKeyHash {
    size_t operator()(const ValueKey& k) const noexcept {
      return std::hash<int64_t>()(k.payload * 2 + static_cast<int64_t>(k.kind));
    }
  };

  size_t arity_;
  std::vector<Tuple> tuples_;
  std::unordered_set<Tuple, TupleHash> set_;
  // per-column value -> row ids; built on first use, extended on insert
  mutable std::vector<std::unordered_map<ValueKey, std::vector<size_t>, ValueKeyHash>> indexes_;
  mutable std::vector<bool> index_built_;
  static const std::vector<size_t> kEmptyRows;
};

/// Named relations plus the shared symbol table.
class Database {
 public:
  SymbolTable& symbols() noexcept { return symbols_; }
  const SymbolTable& symbols() const noexcept { return symbols_; }

  /// Get or create a relation. Throws std::invalid_argument on arity clash.
  Relation& relation(const std::string& predicate, size_t arity);
  const Relation* find(const std::string& predicate) const;

  bool insert_fact(const std::string& predicate, Tuple t);

  /// All relation names in creation order.
  std::vector<std::string> predicates() const;

  size_t total_facts() const noexcept;

  /// Convenience builders for mixed int/string facts.
  Value sym(const std::string& name) { return Value::symbol(symbols_.intern(name)); }
  static Value num(int64_t v) { return Value::integer(v); }

  /// Render a value for reports/tests.
  std::string render(const Value& v) const;
  std::string render(const Tuple& t) const;

 private:
  SymbolTable symbols_;
  std::vector<std::string> order_;
  std::unordered_map<std::string, Relation> relations_;
};

}  // namespace erpi::datalog
