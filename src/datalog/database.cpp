#include "datalog/database.hpp"

#include <stdexcept>

namespace erpi::datalog {

const std::vector<size_t> Relation::kEmptyRows{};

bool Relation::insert(Tuple t) {
  if (t.size() != arity_) {
    throw std::invalid_argument("tuple arity " + std::to_string(t.size()) +
                                " does not match relation arity " + std::to_string(arity_));
  }
  if (!set_.insert(t).second) return false;
  const size_t row = tuples_.size();
  tuples_.push_back(std::move(t));
  // extend any already-built column indexes
  for (size_t col = 0; col < index_built_.size(); ++col) {
    if (index_built_[col]) {
      const Value& v = tuples_.back()[col];
      indexes_[col][ValueKey{v.kind, v.payload}].push_back(row);
    }
  }
  return true;
}

const std::vector<size_t>& Relation::rows_with(size_t col, const Value& v) const {
  if (col >= arity_) throw std::out_of_range("column out of range");
  if (indexes_.size() < arity_) {
    indexes_.resize(arity_);
    index_built_.resize(arity_, false);
  }
  if (!index_built_[col]) {
    for (size_t row = 0; row < tuples_.size(); ++row) {
      const Value& cell = tuples_[row][col];
      indexes_[col][ValueKey{cell.kind, cell.payload}].push_back(row);
    }
    index_built_[col] = true;
  }
  const auto it = indexes_[col].find(ValueKey{v.kind, v.payload});
  return it == indexes_[col].end() ? kEmptyRows : it->second;
}

Relation& Database::relation(const std::string& predicate, size_t arity) {
  const auto it = relations_.find(predicate);
  if (it != relations_.end()) {
    if (it->second.arity() != arity) {
      throw std::invalid_argument("predicate '" + predicate + "' redeclared with arity " +
                                  std::to_string(arity) + " (was " +
                                  std::to_string(it->second.arity()) + ")");
    }
    return it->second;
  }
  order_.push_back(predicate);
  return relations_.emplace(predicate, Relation(arity)).first->second;
}

const Relation* Database::find(const std::string& predicate) const {
  const auto it = relations_.find(predicate);
  return it == relations_.end() ? nullptr : &it->second;
}

bool Database::insert_fact(const std::string& predicate, Tuple t) {
  return relation(predicate, t.size()).insert(std::move(t));
}

std::vector<std::string> Database::predicates() const { return order_; }

size_t Database::total_facts() const noexcept {
  size_t n = 0;
  for (const auto& [name, rel] : relations_) n += rel.size();
  return n;
}

std::string Database::render(const Value& v) const {
  if (v.kind == Value::Kind::Int) return std::to_string(v.payload);
  return symbols_.name(v.payload);
}

std::string Database::render(const Tuple& t) const {
  std::string out = "(";
  for (size_t i = 0; i < t.size(); ++i) {
    if (i > 0) out += ", ";
    out += render(t[i]);
  }
  out += ")";
  return out;
}

}  // namespace erpi::datalog
