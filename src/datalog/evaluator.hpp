// Semi-naive bottom-up Datalog evaluation.
//
// Rules are compiled to a left-to-right join plan with variable slots; each
// fixpoint iteration re-derives only tuples that depend on the previous
// iteration's delta, which keeps recursive rules (e.g. reachability over the
// happens-before relation) near-linear in output size.
#pragma once

#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "datalog/ast.hpp"
#include "datalog/database.hpp"

namespace erpi::datalog {

/// Evaluation statistics, exposed for the micro-benchmarks.
struct EvalStats {
  size_t iterations = 0;
  size_t derived_tuples = 0;
  size_t join_probes = 0;
};

class Evaluator {
 public:
  Evaluator(Database& db, const Program& program);

  /// Run to fixpoint. Facts in the program (empty-body rules with ground
  /// heads) are inserted first. Returns statistics of the run.
  EvalStats run();

 private:
  struct CompiledTerm {
    bool is_constant = false;
    Value constant;
    int slot = -1;         // variable slot id
    bool first_binding = false;  // this occurrence binds the slot
  };

  struct CompiledAtom {
    std::string predicate;
    std::vector<CompiledTerm> terms;
    // column to use for indexed lookup when its variable is already bound,
    // or the column holding a constant; -1 means full scan.
    int probe_column = -1;
  };

  struct CompiledConstraint {
    Constraint::Op op;
    CompiledTerm lhs;
    CompiledTerm rhs;
    int earliest_atom;  // body position after which both sides are bound
  };

  struct CompiledRule {
    CompiledAtom head;
    std::vector<CompiledAtom> body;
    std::vector<CompiledAtom> negated;  // checked once the body is matched
    std::vector<CompiledConstraint> constraints;
    int slot_count = 0;
  };

  CompiledRule compile(const Rule& rule) const;

  /// Join the rule body; `delta_position` selects which body atom must range
  /// over the delta relation (-1 = all-full evaluation for the first round).
  void evaluate_rule(const CompiledRule& rule, int delta_position,
                     const std::unordered_map<std::string, Relation>& delta,
                     std::vector<Tuple>& out);

  void join_from(const CompiledRule& rule, size_t atom_index, int delta_position,
                 const std::unordered_map<std::string, Relation>& delta,
                 std::vector<Value>& slots, std::vector<bool>& bound,
                 std::vector<Tuple>& out);

  bool match_atom(const CompiledAtom& atom, const Tuple& tuple, std::vector<Value>& slots,
                  std::vector<bool>& bound, std::vector<int>& newly_bound);

  bool constraints_satisfied(const CompiledRule& rule, size_t after_atom,
                             const std::vector<Value>& slots,
                             const std::vector<bool>& bound) const;

  bool negations_satisfied(const CompiledRule& rule, const std::vector<Value>& slots) const;

  Database& db_;
  std::vector<CompiledRule> rules_;
  std::unordered_set<std::string> idb_;  // predicates appearing in a rule head
  EvalStats stats_;
};

/// One-shot convenience: evaluate `program` against `db` to fixpoint.
/// Programs with negated body atoms are stratified first (each negated
/// predicate must be fully computable in a strictly lower stratum); a cycle
/// through negation throws std::invalid_argument.
EvalStats evaluate(Database& db, const Program& program);

/// Assign a stratum to every IDB predicate of `program` (exposed for tests).
std::unordered_map<std::string, int> stratify(const Program& program);

/// Match a single (possibly non-ground) atom against the database, returning
/// one binding row per matching fact. Variables repeat-match (joins within
/// the atom) as expected.
std::vector<std::unordered_map<std::string, Value>> query(const Database& db,
                                                          const Atom& pattern);

}  // namespace erpi::datalog
