// Parser for a Souffle-flavoured Datalog surface syntax.
//
//   edge(1, 2).
//   path(X, Z) :- edge(X, Y), path(Y, Z), X != Z.
//   % line comment        // line comment
//
// Conventions: UPPERCASE-initial (or '_') identifiers are variables,
// lowercase-initial identifiers and "quoted strings" are symbol constants,
// [-]digits are integers. Constraint operators: = != < <= > >=.
#pragma once

#include <string_view>

#include "datalog/ast.hpp"
#include "datalog/database.hpp"
#include "util/result.hpp"

namespace erpi::datalog {

/// Parse a whole program. Symbols are interned into `symbols`.
util::Result<Program> parse_program(std::string_view source, SymbolTable& symbols);

/// Parse a single atom (handy for queries), e.g. "path(X, 3)".
util::Result<Atom> parse_atom(std::string_view source, SymbolTable& symbols);

}  // namespace erpi::datalog
