#include "datalog/evaluator.hpp"

#include <algorithm>
#include <stdexcept>

namespace erpi::datalog {

Evaluator::Evaluator(Database& db, const Program& program) : db_(db) {
  for (const auto& rule : program.rules) {
    if (rule.is_fact()) {
      Tuple t;
      t.reserve(rule.head.terms.size());
      for (const auto& term : rule.head.terms) {
        if (term.is_variable()) {
          throw std::invalid_argument("fact '" + rule.head.predicate +
                                      "' contains variable " + term.variable);
        }
        t.push_back(term.constant);
      }
      db_.insert_fact(rule.head.predicate, std::move(t));
      continue;
    }
    idb_.insert(rule.head.predicate);
    rules_.push_back(compile(rule));
  }
  // Ensure head relations exist even if no tuple is ever derived.
  for (const auto& rule : rules_) {
    db_.relation(rule.head.predicate, rule.head.terms.size());
  }
}

Evaluator::CompiledRule Evaluator::compile(const Rule& rule) const {
  CompiledRule out;
  std::unordered_map<std::string, int> slots;

  const auto compile_term = [&](const Term& term, bool binding_context) {
    CompiledTerm ct;
    if (!term.is_variable()) {
      ct.is_constant = true;
      ct.constant = term.constant;
      return ct;
    }
    const auto it = slots.find(term.variable);
    if (it != slots.end()) {
      ct.slot = it->second;
      return ct;
    }
    if (!binding_context) {
      throw std::invalid_argument("variable " + term.variable +
                                  " is unbound where a bound term is required");
    }
    ct.slot = static_cast<int>(slots.size());
    ct.first_binding = true;
    slots.emplace(term.variable, ct.slot);
    return ct;
  };

  for (const auto& atom : rule.body) {
    CompiledAtom ca;
    ca.predicate = atom.predicate;
    for (const auto& term : atom.terms) ca.terms.push_back(compile_term(term, true));
    // prefer probing on a constant column; else on an already-bound variable
    for (size_t col = 0; col < ca.terms.size(); ++col) {
      if (ca.terms[col].is_constant) {
        ca.probe_column = static_cast<int>(col);
        break;
      }
      if (!ca.terms[col].first_binding && ca.probe_column < 0) {
        ca.probe_column = static_cast<int>(col);
      }
    }
    out.body.push_back(std::move(ca));
  }

  // Constraints must reference only variables bound by the body.
  for (const auto& c : rule.constraints) {
    CompiledConstraint cc;
    cc.op = c.op;
    cc.lhs = compile_term(c.lhs, false);
    cc.rhs = compile_term(c.rhs, false);
    // find the earliest body prefix after which both sides are bound
    cc.earliest_atom = 0;
    const auto slot_bound_at = [&](const CompiledTerm& t) -> int {
      if (t.is_constant) return -1;
      for (size_t i = 0; i < out.body.size(); ++i) {
        for (const auto& bt : out.body[i].terms) {
          if (bt.first_binding && bt.slot == t.slot) return static_cast<int>(i);
        }
      }
      return static_cast<int>(out.body.size()) - 1;
    };
    cc.earliest_atom = std::max(slot_bound_at(cc.lhs), slot_bound_at(cc.rhs));
    out.constraints.push_back(cc);
  }

  // Negated atoms: every variable must already be bound by the positive
  // body (safety), so compile in non-binding context.
  for (const auto& atom : rule.negated_body) {
    CompiledAtom ca;
    ca.predicate = atom.predicate;
    for (const auto& term : atom.terms) ca.terms.push_back(compile_term(term, false));
    out.negated.push_back(std::move(ca));
  }

  out.head.predicate = rule.head.predicate;
  for (const auto& term : rule.head.terms) {
    // head variables must be bound by body (range restriction)
    out.head.terms.push_back(compile_term(term, false));
  }
  out.slot_count = static_cast<int>(slots.size());
  return out;
}

bool Evaluator::negations_satisfied(const CompiledRule& rule,
                                    const std::vector<Value>& slots) const {
  for (const auto& atom : rule.negated) {
    const Relation* rel = db_.find(atom.predicate);
    if (rel == nullptr) continue;  // empty relation: negation holds
    Tuple probe;
    probe.reserve(atom.terms.size());
    for (const auto& term : atom.terms) {
      probe.push_back(term.is_constant ? term.constant
                                       : slots[static_cast<size_t>(term.slot)]);
    }
    if (rel->contains(probe)) return false;
  }
  return true;
}

bool Evaluator::match_atom(const CompiledAtom& atom, const Tuple& tuple,
                           std::vector<Value>& slots, std::vector<bool>& bound,
                           std::vector<int>& newly_bound) {
  ++stats_.join_probes;
  for (size_t col = 0; col < atom.terms.size(); ++col) {
    const CompiledTerm& t = atom.terms[col];
    if (t.is_constant) {
      if (tuple[col] != t.constant) return false;
      continue;
    }
    if (bound[static_cast<size_t>(t.slot)]) {
      if (slots[static_cast<size_t>(t.slot)] != tuple[col]) return false;
    } else {
      slots[static_cast<size_t>(t.slot)] = tuple[col];
      bound[static_cast<size_t>(t.slot)] = true;
      newly_bound.push_back(t.slot);
    }
  }
  return true;
}

bool Evaluator::constraints_satisfied(const CompiledRule& rule, size_t after_atom,
                                      const std::vector<Value>& slots,
                                      const std::vector<bool>& bound) const {
  for (const auto& c : rule.constraints) {
    if (static_cast<size_t>(c.earliest_atom) != after_atom) continue;
    const auto value_of = [&](const CompiledTerm& t) -> const Value& {
      return t.is_constant ? t.constant : slots[static_cast<size_t>(t.slot)];
    };
    if (!c.lhs.is_constant && !bound[static_cast<size_t>(c.lhs.slot)]) continue;
    if (!c.rhs.is_constant && !bound[static_cast<size_t>(c.rhs.slot)]) continue;
    if (!Constraint::eval(c.op, value_of(c.lhs), value_of(c.rhs))) return false;
  }
  return true;
}

void Evaluator::join_from(const CompiledRule& rule, size_t atom_index, int delta_position,
                          const std::unordered_map<std::string, Relation>& delta,
                          std::vector<Value>& slots, std::vector<bool>& bound,
                          std::vector<Tuple>& out) {
  if (atom_index == rule.body.size()) {
    if (!negations_satisfied(rule, slots)) return;
    Tuple head;
    head.reserve(rule.head.terms.size());
    for (const auto& t : rule.head.terms) {
      head.push_back(t.is_constant ? t.constant : slots[static_cast<size_t>(t.slot)]);
    }
    out.push_back(std::move(head));
    return;
  }

  const CompiledAtom& atom = rule.body[atom_index];
  const Relation* rel = nullptr;
  if (static_cast<int>(atom_index) == delta_position) {
    const auto it = delta.find(atom.predicate);
    if (it == delta.end()) return;
    rel = &it->second;
  } else {
    rel = db_.find(atom.predicate);
    if (rel == nullptr) return;
  }

  const auto try_tuple = [&](const Tuple& tuple) {
    std::vector<int> newly_bound;
    if (match_atom(atom, tuple, slots, bound, newly_bound)) {
      if (constraints_satisfied(rule, atom_index, slots, bound)) {
        join_from(rule, atom_index + 1, delta_position, delta, slots, bound, out);
      }
    }
    for (const int s : newly_bound) bound[static_cast<size_t>(s)] = false;
  };

  // Indexed probe when the chosen column is ground at this point.
  if (atom.probe_column >= 0) {
    const CompiledTerm& pt = atom.terms[static_cast<size_t>(atom.probe_column)];
    const bool ground =
        pt.is_constant || (pt.slot >= 0 && bound[static_cast<size_t>(pt.slot)]);
    if (ground) {
      const Value key = pt.is_constant ? pt.constant : slots[static_cast<size_t>(pt.slot)];
      for (const size_t row : rel->rows_with(static_cast<size_t>(atom.probe_column), key)) {
        try_tuple(rel->tuples()[row]);
      }
      return;
    }
  }
  for (const auto& tuple : rel->tuples()) try_tuple(tuple);
}

void Evaluator::evaluate_rule(const CompiledRule& rule, int delta_position,
                              const std::unordered_map<std::string, Relation>& delta,
                              std::vector<Tuple>& out) {
  std::vector<Value> slots(static_cast<size_t>(rule.slot_count));
  std::vector<bool> bound(static_cast<size_t>(rule.slot_count), false);
  join_from(rule, 0, delta_position, delta, slots, bound, out);
}

EvalStats Evaluator::run() {
  stats_ = EvalStats{};

  // Round 0: naive evaluation of every rule over the full database.
  std::unordered_map<std::string, Relation> delta;
  for (const auto& rule : rules_) {
    std::vector<Tuple> derived;
    evaluate_rule(rule, -1, delta, derived);
    for (auto& t : derived) {
      Tuple copy = t;
      if (db_.relation(rule.head.predicate, rule.head.terms.size()).insert(std::move(t))) {
        ++stats_.derived_tuples;
        delta.try_emplace(rule.head.predicate, rule.head.terms.size());
        delta.at(rule.head.predicate).insert(std::move(copy));
      }
    }
  }
  stats_.iterations = 1;

  // Semi-naive rounds: one body atom ranges over the previous delta.
  while (!delta.empty()) {
    std::unordered_map<std::string, Relation> next_delta;
    for (const auto& rule : rules_) {
      for (size_t pos = 0; pos < rule.body.size(); ++pos) {
        if (idb_.count(rule.body[pos].predicate) == 0) continue;
        if (delta.find(rule.body[pos].predicate) == delta.end()) continue;
        std::vector<Tuple> derived;
        evaluate_rule(rule, static_cast<int>(pos), delta, derived);
        for (auto& t : derived) {
          Tuple copy = t;
          if (db_.relation(rule.head.predicate, rule.head.terms.size())
                  .insert(std::move(t))) {
            ++stats_.derived_tuples;
            next_delta.try_emplace(rule.head.predicate, rule.head.terms.size());
            next_delta.at(rule.head.predicate).insert(std::move(copy));
          }
        }
      }
    }
    ++stats_.iterations;
    delta = std::move(next_delta);
  }
  return stats_;
}

std::unordered_map<std::string, int> stratify(const Program& program) {
  std::unordered_map<std::string, int> stratum;
  std::unordered_set<std::string> idb;
  for (const auto& rule : program.rules) {
    if (!rule.is_fact()) {
      idb.insert(rule.head.predicate);
      stratum.emplace(rule.head.predicate, 0);
    }
  }
  const int limit = static_cast<int>(idb.size()) + 1;
  bool changed = true;
  while (changed) {
    changed = false;
    for (const auto& rule : program.rules) {
      if (rule.is_fact()) continue;
      int& head_stratum = stratum[rule.head.predicate];
      for (const auto& atom : rule.body) {
        if (idb.count(atom.predicate) == 0) continue;
        if (stratum[atom.predicate] > head_stratum) {
          head_stratum = stratum[atom.predicate];
          changed = true;
        }
      }
      for (const auto& atom : rule.negated_body) {
        if (idb.count(atom.predicate) == 0) continue;  // EDB: stratum 0
        if (stratum[atom.predicate] + 1 > head_stratum) {
          head_stratum = stratum[atom.predicate] + 1;
          changed = true;
        }
      }
      if (head_stratum > limit) {
        throw std::invalid_argument("program is not stratifiable (cycle through negation"
                                    " involving '" + rule.head.predicate + "')");
      }
    }
  }
  return stratum;
}

EvalStats evaluate(Database& db, const Program& program) {
  bool has_negation = false;
  for (const auto& rule : program.rules) {
    if (!rule.negated_body.empty()) {
      has_negation = true;
      break;
    }
  }
  if (!has_negation) {
    Evaluator ev(db, program);
    return ev.run();
  }

  // Stratified evaluation: facts + stratum-0 rules first, then each higher
  // stratum over the (now complete) lower ones.
  const auto strata = stratify(program);
  int max_stratum = 0;
  for (const auto& [predicate, level] : strata) max_stratum = std::max(max_stratum, level);

  EvalStats total;
  for (int level = 0; level <= max_stratum; ++level) {
    Program slice;
    for (const auto& rule : program.rules) {
      if (rule.is_fact()) {
        if (level == 0) slice.rules.push_back(rule);
      } else if (strata.at(rule.head.predicate) == level) {
        slice.rules.push_back(rule);
      }
    }
    if (slice.rules.empty()) continue;
    Evaluator ev(db, slice);
    const auto stats = ev.run();
    total.iterations += stats.iterations;
    total.derived_tuples += stats.derived_tuples;
    total.join_probes += stats.join_probes;
  }
  return total;
}

std::vector<std::unordered_map<std::string, Value>> query(const Database& db,
                                                          const Atom& pattern) {
  std::vector<std::unordered_map<std::string, Value>> out;
  const Relation* rel = db.find(pattern.predicate);
  if (rel == nullptr) return out;
  if (rel->arity() != pattern.terms.size()) {
    throw std::invalid_argument("query arity mismatch for '" + pattern.predicate + "'");
  }
  for (const auto& tuple : rel->tuples()) {
    std::unordered_map<std::string, Value> binding;
    bool ok = true;
    for (size_t col = 0; col < tuple.size() && ok; ++col) {
      const Term& t = pattern.terms[col];
      if (!t.is_variable()) {
        ok = tuple[col] == t.constant;
      } else if (t.variable == "_") {
        // wildcard
      } else {
        const auto it = binding.find(t.variable);
        if (it == binding.end()) {
          binding.emplace(t.variable, tuple[col]);
        } else {
          ok = it->second == tuple[col];
        }
      }
    }
    if (ok) out.push_back(std::move(binding));
  }
  return out;
}

}  // namespace erpi::datalog
