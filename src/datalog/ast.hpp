// Datalog abstract syntax: values, terms, atoms, rules, programs.
//
// ER-pi persists the interleaving universe as Datalog facts (paper §5.1 uses
// the Souffle dialect) and expresses pruning-support queries as rules. This
// engine substitutes for Souffle: positive Datalog with built-in comparison
// constraints, evaluated bottom-up semi-naively (see evaluator.hpp).
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace erpi::datalog {

/// Interns strings so facts are tuples of fixed-width ids — cheap to hash,
/// compare, and index. Symbol 0 is reserved and never handed out.
class SymbolTable {
 public:
  SymbolTable() { names_.emplace_back(""); }

  int64_t intern(const std::string& name) {
    const auto it = ids_.find(name);
    if (it != ids_.end()) return it->second;
    const int64_t id = static_cast<int64_t>(names_.size());
    names_.push_back(name);
    ids_.emplace(name, id);
    return id;
  }

  const std::string& name(int64_t id) const { return names_.at(static_cast<size_t>(id)); }
  bool contains(const std::string& name) const { return ids_.count(name) > 0; }
  size_t size() const noexcept { return names_.size(); }

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, int64_t> ids_;
};

/// A ground value: either a signed integer or an interned symbol.
struct Value {
  enum class Kind : uint8_t { Int, Symbol };

  Kind kind = Kind::Int;
  int64_t payload = 0;

  static Value integer(int64_t v) { return Value{Kind::Int, v}; }
  static Value symbol(int64_t id) { return Value{Kind::Symbol, id}; }

  bool operator==(const Value&) const = default;
  auto operator<=>(const Value&) const = default;
};

/// A term in an atom: a ground value or a named variable.
struct Term {
  enum class Kind : uint8_t { Constant, Variable };

  Kind kind = Kind::Constant;
  Value constant;      // when kind == Constant
  std::string variable;  // when kind == Variable

  static Term constant_int(int64_t v) { return Term{Kind::Constant, Value::integer(v), {}}; }
  static Term constant_sym(int64_t id) { return Term{Kind::Constant, Value::symbol(id), {}}; }
  static Term var(std::string name) { return Term{Kind::Variable, {}, std::move(name)}; }

  bool is_variable() const noexcept { return kind == Kind::Variable; }
};

/// predicate(t1, ..., tn)
struct Atom {
  std::string predicate;
  std::vector<Term> terms;

  size_t arity() const noexcept { return terms.size(); }
};

/// Built-in constraint between two terms: X < Y, X != c, ...
struct Constraint {
  enum class Op : uint8_t { Eq, Ne, Lt, Le, Gt, Ge };

  Op op = Op::Eq;
  Term lhs;
  Term rhs;

  static bool eval(Op op, const Value& a, const Value& b) noexcept {
    switch (op) {
      case Op::Eq: return a == b;
      case Op::Ne: return a != b;
      case Op::Lt: return a < b;
      case Op::Le: return a <= b;
      case Op::Gt: return a > b;
      case Op::Ge: return a >= b;
    }
    return false;
  }
};

/// head :- body_1, ..., body_n, !neg_1, ..., constraint_1, ...
/// A rule with an empty body is a fact declaration. Negated atoms are
/// evaluated under stratified negation: the negated predicate must be fully
/// computed in a strictly lower stratum, and every variable of a negated
/// atom must be bound by the positive body (safety).
struct Rule {
  Atom head;
  std::vector<Atom> body;
  std::vector<Atom> negated_body;
  std::vector<Constraint> constraints;

  bool is_fact() const noexcept {
    return body.empty() && negated_body.empty() && constraints.empty();
  }
};

struct Program {
  std::vector<Rule> rules;
};

}  // namespace erpi::datalog
