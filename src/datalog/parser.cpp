#include "datalog/parser.hpp"

#include <cctype>
#include <cstdlib>

namespace erpi::datalog {

namespace {

struct Token {
  enum class Kind {
    Ident,    // variable or symbol depending on first char
    Integer,
    String,
    LParen,
    RParen,
    Comma,
    Period,
    Implies,  // :-
    Op,       // comparison operator, text in `text`
    Bang,     // '!' prefixing a negated atom
    End,
  };
  Kind kind = Kind::End;
  std::string text;
  int64_t integer = 0;
  size_t line = 1;
};

class Lexer {
 public:
  explicit Lexer(std::string_view src) : src_(src) {}

  util::Result<Token> next() {
    skip_trivia();
    Token tok;
    tok.line = line_;
    if (pos_ >= src_.size()) return tok;  // End

    const char c = src_[pos_];
    if (c == '(') { ++pos_; tok.kind = Token::Kind::LParen; return tok; }
    if (c == ')') { ++pos_; tok.kind = Token::Kind::RParen; return tok; }
    if (c == ',') { ++pos_; tok.kind = Token::Kind::Comma; return tok; }
    if (c == '.') { ++pos_; tok.kind = Token::Kind::Period; return tok; }
    if (c == ':') {
      if (pos_ + 1 < src_.size() && src_[pos_ + 1] == '-') {
        pos_ += 2;
        tok.kind = Token::Kind::Implies;
        return tok;
      }
      return fail("stray ':'");
    }
    if (c == '!' || c == '<' || c == '>' || c == '=') {
      tok.text.push_back(c);
      ++pos_;
      if (pos_ < src_.size() && src_[pos_] == '=') {
        tok.text.push_back('=');
        ++pos_;
      }
      if (tok.text == "!") {
        tok.kind = Token::Kind::Bang;  // negated body atom follows
        return tok;
      }
      tok.kind = Token::Kind::Op;
      return tok;
    }
    if (c == '"') {
      ++pos_;
      tok.kind = Token::Kind::String;
      while (pos_ < src_.size() && src_[pos_] != '"') {
        if (src_[pos_] == '\n') return fail("newline in string literal");
        if (src_[pos_] == '\\' && pos_ + 1 < src_.size()) ++pos_;
        tok.text.push_back(src_[pos_++]);
      }
      if (pos_ >= src_.size()) return fail("unterminated string literal");
      ++pos_;
      return tok;
    }
    if (c == '-' || std::isdigit(static_cast<unsigned char>(c))) {
      const size_t start = pos_;
      if (c == '-') ++pos_;
      if (pos_ >= src_.size() || !std::isdigit(static_cast<unsigned char>(src_[pos_]))) {
        return fail("malformed integer");
      }
      while (pos_ < src_.size() && std::isdigit(static_cast<unsigned char>(src_[pos_]))) ++pos_;
      tok.kind = Token::Kind::Integer;
      tok.integer = std::strtoll(std::string(src_.substr(start, pos_ - start)).c_str(),
                                 nullptr, 10);
      return tok;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      const size_t start = pos_;
      while (pos_ < src_.size() &&
             (std::isalnum(static_cast<unsigned char>(src_[pos_])) || src_[pos_] == '_')) {
        ++pos_;
      }
      tok.kind = Token::Kind::Ident;
      tok.text = std::string(src_.substr(start, pos_ - start));
      return tok;
    }
    return fail(std::string("unexpected character '") + c + "'");
  }

  size_t line() const noexcept { return line_; }

 private:
  util::Error fail(const std::string& what) const {
    return util::Error{"datalog lex error at line " + std::to_string(line_) + ": " + what};
  }

  void skip_trivia() {
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
      } else if (c == ' ' || c == '\t' || c == '\r') {
        ++pos_;
      } else if (c == '%' || (c == '/' && pos_ + 1 < src_.size() && src_[pos_ + 1] == '/')) {
        while (pos_ < src_.size() && src_[pos_] != '\n') ++pos_;
      } else {
        break;
      }
    }
  }

  std::string_view src_;
  size_t pos_ = 0;
  size_t line_ = 1;
};

class ProgramParser {
 public:
  ProgramParser(std::string_view src, SymbolTable& symbols) : lexer_(src), symbols_(symbols) {}

  util::Result<Program> parse() {
    Program program;
    if (auto st = advance(); !st) return util::Error{st.error()};
    while (current_.kind != Token::Kind::End) {
      Rule rule;
      if (auto st = parse_rule(rule); !st) return util::Error{st.error()};
      program.rules.push_back(std::move(rule));
    }
    return program;
  }

  util::Result<Atom> parse_single_atom() {
    if (auto st = advance(); !st) return util::Error{st.error()};
    Atom atom;
    if (auto st = parse_atom_body(atom); !st) return util::Error{st.error()};
    if (current_.kind != Token::Kind::End) return fail_atom("trailing tokens after atom");
    return atom;
  }

 private:
  util::Status advance() {
    auto tok = lexer_.next();
    if (!tok) return util::Status::fail(tok.error().message);
    current_ = std::move(tok).take();
    return util::Status::ok();
  }

  util::Status fail(const std::string& what) const {
    return util::Status::fail("datalog parse error at line " + std::to_string(current_.line) +
                              ": " + what);
  }
  util::Error fail_atom(const std::string& what) const {
    return util::Error{"datalog parse error at line " + std::to_string(current_.line) + ": " +
                       what};
  }

  util::Status parse_rule(Rule& out) {
    if (auto st = parse_atom_body(out.head); !st) return st;
    if (current_.kind == Token::Kind::Period) return advance();
    if (current_.kind != Token::Kind::Implies) return fail("expected '.' or ':-'");
    if (auto st = advance(); !st) return st;
    while (true) {
      if (current_.kind == Token::Kind::Bang) {
        if (auto st = advance(); !st) return st;
        Atom atom;
        if (auto st = parse_atom_body(atom); !st) return st;
        out.negated_body.push_back(std::move(atom));
      } else
      // lookahead: ident '(' -> atom; otherwise it is a constraint
      if (current_.kind == Token::Kind::Ident || current_.kind == Token::Kind::Integer ||
          current_.kind == Token::Kind::String) {
        Term lhs;
        std::string maybe_predicate;
        const bool was_ident = current_.kind == Token::Kind::Ident;
        if (was_ident) maybe_predicate = current_.text;
        if (auto st = parse_term(lhs); !st) return st;
        if (was_ident && current_.kind == Token::Kind::LParen) {
          Atom atom;
          atom.predicate = maybe_predicate;
          if (auto st = parse_term_list(atom); !st) return st;
          out.body.push_back(std::move(atom));
        } else if (current_.kind == Token::Kind::Op) {
          Constraint c;
          if (auto st = parse_constraint_tail(lhs, c); !st) return st;
          out.constraints.push_back(std::move(c));
        } else {
          return fail("expected '(' (atom) or comparison operator (constraint)");
        }
      } else {
        return fail("expected body atom or constraint");
      }
      if (current_.kind == Token::Kind::Comma) {
        if (auto st = advance(); !st) return st;
        continue;
      }
      if (current_.kind == Token::Kind::Period) return advance();
      return fail("expected ',' or '.' in rule body");
    }
  }

  util::Status parse_atom_body(Atom& out) {
    if (current_.kind != Token::Kind::Ident) return fail("expected predicate name");
    out.predicate = current_.text;
    if (auto st = advance(); !st) return st;
    if (current_.kind != Token::Kind::LParen) return fail("expected '(' after predicate");
    return parse_term_list(out);
  }

  // current_ is '('; consumes through ')'
  util::Status parse_term_list(Atom& out) {
    if (auto st = advance(); !st) return st;  // consume '('
    if (current_.kind == Token::Kind::RParen) return fail("empty term list");
    while (true) {
      Term t;
      if (auto st = parse_term(t); !st) return st;
      out.terms.push_back(std::move(t));
      if (current_.kind == Token::Kind::Comma) {
        if (auto st = advance(); !st) return st;
        continue;
      }
      if (current_.kind == Token::Kind::RParen) return advance();
      return fail("expected ',' or ')' in term list");
    }
  }

  util::Status parse_term(Term& out) {
    switch (current_.kind) {
      case Token::Kind::Integer:
        out = Term::constant_int(current_.integer);
        return advance();
      case Token::Kind::String:
        out = Term::constant_sym(symbols_.intern(current_.text));
        return advance();
      case Token::Kind::Ident: {
        const char first = current_.text[0];
        if (std::isupper(static_cast<unsigned char>(first)) || first == '_') {
          out = Term::var(current_.text);
        } else {
          out = Term::constant_sym(symbols_.intern(current_.text));
        }
        return advance();
      }
      default: return fail("expected term");
    }
  }

  util::Status parse_constraint_tail(Term lhs, Constraint& out) {
    const std::string op = current_.text;
    if (op == "=") {
      out.op = Constraint::Op::Eq;
    } else if (op == "!=") {
      out.op = Constraint::Op::Ne;
    } else if (op == "<") {
      out.op = Constraint::Op::Lt;
    } else if (op == "<=") {
      out.op = Constraint::Op::Le;
    } else if (op == ">") {
      out.op = Constraint::Op::Gt;
    } else if (op == ">=") {
      out.op = Constraint::Op::Ge;
    } else {
      return fail("unknown operator '" + op + "'");
    }
    if (auto st = advance(); !st) return st;
    out.lhs = std::move(lhs);
    return parse_term(out.rhs);
  }

  Lexer lexer_;
  SymbolTable& symbols_;
  Token current_;
};

}  // namespace

util::Result<Program> parse_program(std::string_view source, SymbolTable& symbols) {
  ProgramParser p(source, symbols);
  return p.parse();
}

util::Result<Atom> parse_atom(std::string_view source, SymbolTable& symbols) {
  ProgramParser p(source, symbols);
  return p.parse_single_atom();
}

}  // namespace erpi::datalog
