#include "kvstore/server.hpp"

#include <chrono>

namespace erpi::kv {

namespace {
int64_t steady_now_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
}  // namespace

Server::Server(ClockFn clock) {
  if (!clock) clock = steady_now_ms;
  store_ = std::make_unique<Store>(std::move(clock));
  thread_ = std::thread([this] { serve(); });
}

Server::~Server() { stop(); }

void Server::stop() {
  {
    std::lock_guard lock(queue_mu_);
    if (stopping_) return;
    stopping_ = true;
  }
  queue_cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

Response Server::call(Request request) {
  auto pending = std::make_shared<PendingCall>();
  pending->request = std::move(request);
  {
    std::lock_guard lock(queue_mu_);
    if (stopping_) return Response::err("server stopped");
    queue_.push_back(pending);
  }
  queue_cv_.notify_one();
  std::unique_lock lock(pending->mu);
  pending->cv.wait(lock, [&] { return pending->done; });
  return pending->response;
}

void Server::serve() {
  while (true) {
    std::shared_ptr<PendingCall> pending;
    {
      std::unique_lock lock(queue_mu_);
      queue_cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stopping_) return;
        continue;
      }
      pending = queue_.front();
      queue_.pop_front();
    }
    Response response = store_->execute(pending->request);
    served_.fetch_add(1, std::memory_order_relaxed);
    {
      std::lock_guard lock(pending->mu);
      pending->response = std::move(response);
      pending->done = true;
    }
    pending->cv.notify_one();
  }
}

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

std::optional<std::string> Client::get(const std::string& key) {
  const Response r = server_->call({"GET", {key}});
  if (!r.ok || !r.found) return std::nullopt;
  return r.value;
}

void Client::set(const std::string& key, const std::string& value) {
  server_->call({"SET", {key, value}});
}

bool Client::set_nx_px(const std::string& key, const std::string& value, int64_t ttl_ms) {
  const Response r = server_->call({"SET", {key, value, "NX", "PX", std::to_string(ttl_ms)}});
  return r.ok && r.found;
}

bool Client::del(const std::string& key) {
  return server_->call({"DEL", {key}}).integer == 1;
}

bool Client::compare_and_delete(const std::string& key, const std::string& expected) {
  return server_->call({"CAD", {key, expected}}).integer == 1;
}

int64_t Client::incr(const std::string& key) { return server_->call({"INCR", {key}}).integer; }

bool Client::exists(const std::string& key) {
  return server_->call({"EXISTS", {key}}).integer == 1;
}

std::vector<std::string> Client::keys_with_prefix(const std::string& prefix) {
  return server_->call({"KEYS", {prefix}}).values;
}

bool Client::zadd(const std::string& key, double score, const std::string& member) {
  return server_->call({"ZADD", {key, std::to_string(score), member}}).integer == 1;
}

bool Client::zrem(const std::string& key, const std::string& member) {
  return server_->call({"ZREM", {key, member}}).integer == 1;
}

std::optional<double> Client::zscore(const std::string& key, const std::string& member) {
  const Response r = server_->call({"ZSCORE", {key, member}});
  if (!r.ok || !r.found) return std::nullopt;
  return std::strtod(r.value.c_str(), nullptr);
}

std::vector<std::string> Client::zrange(const std::string& key, int64_t start, int64_t stop) {
  return server_->call({"ZRANGE", {key, std::to_string(start), std::to_string(stop)}}).values;
}

int64_t Client::zcard(const std::string& key) {
  return server_->call({"ZCARD", {key}}).integer;
}

void Client::flush_all() { server_->call({"FLUSHALL", {}}); }

}  // namespace erpi::kv
