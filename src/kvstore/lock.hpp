// Redlock-style distributed mutex over the mini-Redis server.
//
// The paper's replay engine enforces each interleaving's event order with "a
// mutex with a shared key managed by a Redis server" (§4.3). This is that
// mutex: acquire = SET key <unique-token> NX PX <ttl>; release = atomic
// compare-and-delete of the token (so an expired holder cannot release a
// later holder's lock). The TTL guards against a crashed holder wedging the
// replay forever.
#pragma once

#include <chrono>
#include <string>

#include "kvstore/server.hpp"
#include "util/rng.hpp"

namespace erpi::kv {

class DistributedMutex {
 public:
  struct Options {
    int64_t ttl_ms = 30'000;          // lock lease length
    int64_t retry_delay_us = 50;      // backoff between acquisition attempts
    int64_t acquire_timeout_ms = 60'000;  // give up after this long
  };

  DistributedMutex(Server& server, std::string key)
      : DistributedMutex(server, std::move(key), Options()) {}
  DistributedMutex(Server& server, std::string key, Options options,
                   uint64_t token_seed = 0x10c7Ull);

  /// Non-blocking attempt. Returns true on acquisition.
  bool try_lock();

  /// Blocking acquisition with retry/backoff. Returns false on timeout.
  bool lock();

  /// Release if we still hold the lease. Returns true if the key was deleted
  /// by us (false: lease expired and possibly re-acquired by someone else).
  bool unlock();

  bool held() const noexcept { return held_; }
  const std::string& key() const noexcept { return key_; }

 private:
  Client client_;
  std::string key_;
  Options options_;
  util::Rng rng_;
  std::string token_;
  bool held_ = false;
};

}  // namespace erpi::kv
