// In-memory key-value store modelled after the subset of Redis that ER-pi and
// the Roshi subject depend on: strings (GET/SET/SETNX/DEL/INCR/EXPIRE) and
// sorted sets (ZADD/ZREM/ZSCORE/ZRANGE/ZCARD), plus CAD (compare-and-delete),
// the server-side primitive a Redlock release needs to be atomic.
//
// The store itself is single-threaded state — all concurrency is handled by
// the Server that owns it (see server.hpp), exactly as in Redis.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace erpi::kv {

/// Wire-level request: a verb plus string arguments.
struct Request {
  std::string verb;
  std::vector<std::string> args;
};

/// Wire-level response.
struct Response {
  bool ok = true;           // false => protocol/command error, see `error`
  bool found = true;        // GET/ZSCORE on a missing key: ok but !found
  std::string value;        // single-value results
  std::vector<std::string> values;  // multi-value results (KEYS, ZRANGE)
  int64_t integer = 0;      // integer results (INCR, DEL count, ZCARD)
  std::string error;

  static Response err(std::string message) {
    Response r;
    r.ok = false;
    r.error = std::move(message);
    return r;
  }
};

/// Millisecond clock injected for TTL handling; tests use a fake.
using ClockFn = std::function<int64_t()>;

class Store {
 public:
  explicit Store(ClockFn clock);

  /// Dispatch a wire request. Unknown verbs produce an error response.
  Response execute(const Request& request);

  // ---- typed string commands ----
  std::optional<std::string> get(const std::string& key);
  void set(const std::string& key, std::string value,
           std::optional<int64_t> ttl_ms = std::nullopt);
  /// SET key value NX [PX ttl]; returns true if the key was absent and is now set.
  bool setnx(const std::string& key, std::string value,
             std::optional<int64_t> ttl_ms = std::nullopt);
  bool del(const std::string& key);
  /// Compare-and-delete: delete only if current value equals `expected`.
  bool compare_and_delete(const std::string& key, const std::string& expected);
  int64_t incr(const std::string& key);  // missing key counts as 0
  bool expire(const std::string& key, int64_t ttl_ms);
  bool exists(const std::string& key);
  std::vector<std::string> keys_with_prefix(const std::string& prefix);

  // ---- typed sorted-set commands ----
  /// Returns true if the member was newly added (false = score updated).
  bool zadd(const std::string& key, double score, const std::string& member);
  bool zrem(const std::string& key, const std::string& member);
  std::optional<double> zscore(const std::string& key, const std::string& member);
  /// Members ordered by (score, member), ranks [start, stop] inclusive;
  /// negative ranks count from the end, Redis-style.
  std::vector<std::string> zrange(const std::string& key, int64_t start, int64_t stop);
  int64_t zcard(const std::string& key);

  void flush_all();
  size_t key_count();

 private:
  struct StringEntry {
    std::string value;
    std::optional<int64_t> expires_at_ms;
  };
  struct ZSetEntry {
    // member -> score, plus an ordered view for range queries
    std::unordered_map<std::string, double> scores;
    std::map<std::pair<double, std::string>, bool> ordered;
  };

  bool expired(const std::optional<int64_t>& deadline) const;
  void purge_if_expired(const std::string& key);

  ClockFn clock_;
  std::unordered_map<std::string, StringEntry> strings_;
  std::unordered_map<std::string, ZSetEntry> zsets_;
};

}  // namespace erpi::kv
