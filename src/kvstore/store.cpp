#include "kvstore/store.hpp"

#include <algorithm>
#include <cstdlib>

#include "util/strings.hpp"

namespace erpi::kv {

Store::Store(ClockFn clock) : clock_(std::move(clock)) {}

bool Store::expired(const std::optional<int64_t>& deadline) const {
  return deadline.has_value() && clock_() >= *deadline;
}

void Store::purge_if_expired(const std::string& key) {
  const auto it = strings_.find(key);
  if (it != strings_.end() && expired(it->second.expires_at_ms)) strings_.erase(it);
}

std::optional<std::string> Store::get(const std::string& key) {
  purge_if_expired(key);
  const auto it = strings_.find(key);
  if (it == strings_.end()) return std::nullopt;
  return it->second.value;
}

void Store::set(const std::string& key, std::string value, std::optional<int64_t> ttl_ms) {
  StringEntry entry;
  entry.value = std::move(value);
  if (ttl_ms) entry.expires_at_ms = clock_() + *ttl_ms;
  strings_[key] = std::move(entry);
}

bool Store::setnx(const std::string& key, std::string value, std::optional<int64_t> ttl_ms) {
  purge_if_expired(key);
  if (strings_.count(key) > 0) return false;
  set(key, std::move(value), ttl_ms);
  return true;
}

bool Store::del(const std::string& key) {
  const bool had_string = strings_.erase(key) > 0;
  const bool had_zset = zsets_.erase(key) > 0;
  return had_string || had_zset;
}

bool Store::compare_and_delete(const std::string& key, const std::string& expected) {
  purge_if_expired(key);
  const auto it = strings_.find(key);
  if (it == strings_.end() || it->second.value != expected) return false;
  strings_.erase(it);
  return true;
}

int64_t Store::incr(const std::string& key) {
  purge_if_expired(key);
  auto it = strings_.find(key);
  int64_t current = 0;
  std::optional<int64_t> deadline;
  if (it != strings_.end()) {
    current = std::strtoll(it->second.value.c_str(), nullptr, 10);
    deadline = it->second.expires_at_ms;
  }
  ++current;
  strings_[key] = StringEntry{std::to_string(current), deadline};
  return current;
}

bool Store::expire(const std::string& key, int64_t ttl_ms) {
  purge_if_expired(key);
  const auto it = strings_.find(key);
  if (it == strings_.end()) return false;
  it->second.expires_at_ms = clock_() + ttl_ms;
  return true;
}

bool Store::exists(const std::string& key) {
  purge_if_expired(key);
  return strings_.count(key) > 0 || zsets_.count(key) > 0;
}

std::vector<std::string> Store::keys_with_prefix(const std::string& prefix) {
  std::vector<std::string> out;
  for (const auto& [key, entry] : strings_) {
    if (!expired(entry.expires_at_ms) && util::starts_with(key, prefix)) out.push_back(key);
  }
  for (const auto& [key, entry] : zsets_) {
    if (util::starts_with(key, prefix)) out.push_back(key);
  }
  std::sort(out.begin(), out.end());
  return out;
}

bool Store::zadd(const std::string& key, double score, const std::string& member) {
  auto& zset = zsets_[key];
  const auto it = zset.scores.find(member);
  if (it != zset.scores.end()) {
    zset.ordered.erase({it->second, member});
    it->second = score;
    zset.ordered[{score, member}] = true;
    return false;
  }
  zset.scores.emplace(member, score);
  zset.ordered[{score, member}] = true;
  return true;
}

bool Store::zrem(const std::string& key, const std::string& member) {
  const auto zit = zsets_.find(key);
  if (zit == zsets_.end()) return false;
  auto& zset = zit->second;
  const auto it = zset.scores.find(member);
  if (it == zset.scores.end()) return false;
  zset.ordered.erase({it->second, member});
  zset.scores.erase(it);
  if (zset.scores.empty()) zsets_.erase(zit);
  return true;
}

std::optional<double> Store::zscore(const std::string& key, const std::string& member) {
  const auto zit = zsets_.find(key);
  if (zit == zsets_.end()) return std::nullopt;
  const auto it = zit->second.scores.find(member);
  if (it == zit->second.scores.end()) return std::nullopt;
  return it->second;
}

std::vector<std::string> Store::zrange(const std::string& key, int64_t start, int64_t stop) {
  std::vector<std::string> out;
  const auto zit = zsets_.find(key);
  if (zit == zsets_.end()) return out;
  const auto n = static_cast<int64_t>(zit->second.ordered.size());
  if (start < 0) start = std::max<int64_t>(0, n + start);
  if (stop < 0) stop = n + stop;
  stop = std::min(stop, n - 1);
  if (start > stop) return out;
  int64_t rank = 0;
  for (const auto& [score_member, unused] : zit->second.ordered) {
    if (rank > stop) break;
    if (rank >= start) out.push_back(score_member.second);
    ++rank;
  }
  return out;
}

int64_t Store::zcard(const std::string& key) {
  const auto zit = zsets_.find(key);
  return zit == zsets_.end() ? 0 : static_cast<int64_t>(zit->second.scores.size());
}

void Store::flush_all() {
  strings_.clear();
  zsets_.clear();
}

size_t Store::key_count() {
  // purge lazily so the count reflects live keys
  std::vector<std::string> dead;
  for (const auto& [key, entry] : strings_) {
    if (expired(entry.expires_at_ms)) dead.push_back(key);
  }
  for (const auto& key : dead) strings_.erase(key);
  return strings_.size() + zsets_.size();
}

Response Store::execute(const Request& request) {
  const auto& verb = request.verb;
  const auto& args = request.args;
  const auto need = [&](size_t n) { return args.size() == n; };
  Response r;

  if (verb == "GET") {
    if (!need(1)) return Response::err("GET expects 1 arg");
    const auto v = get(args[0]);
    r.found = v.has_value();
    if (v) r.value = *v;
    return r;
  }
  if (verb == "SET") {
    // SET key value [NX] [PX ttl]
    if (args.size() < 2) return Response::err("SET expects at least 2 args");
    bool nx = false;
    std::optional<int64_t> ttl;
    for (size_t i = 2; i < args.size(); ++i) {
      if (args[i] == "NX") {
        nx = true;
      } else if (args[i] == "PX") {
        if (i + 1 >= args.size()) return Response::err("PX requires a value");
        ttl = std::strtoll(args[++i].c_str(), nullptr, 10);
      } else {
        return Response::err("unknown SET option " + args[i]);
      }
    }
    if (nx) {
      r.found = setnx(args[0], args[1], ttl);
    } else {
      set(args[0], args[1], ttl);
    }
    return r;
  }
  if (verb == "DEL") {
    if (!need(1)) return Response::err("DEL expects 1 arg");
    r.integer = del(args[0]) ? 1 : 0;
    return r;
  }
  if (verb == "CAD") {
    if (!need(2)) return Response::err("CAD expects 2 args");
    r.integer = compare_and_delete(args[0], args[1]) ? 1 : 0;
    return r;
  }
  if (verb == "INCR") {
    if (!need(1)) return Response::err("INCR expects 1 arg");
    r.integer = incr(args[0]);
    return r;
  }
  if (verb == "EXPIRE") {
    if (!need(2)) return Response::err("EXPIRE expects 2 args");
    r.integer = expire(args[0], std::strtoll(args[1].c_str(), nullptr, 10)) ? 1 : 0;
    return r;
  }
  if (verb == "EXISTS") {
    if (!need(1)) return Response::err("EXISTS expects 1 arg");
    r.integer = exists(args[0]) ? 1 : 0;
    return r;
  }
  if (verb == "KEYS") {
    if (!need(1)) return Response::err("KEYS expects 1 arg (prefix)");
    r.values = keys_with_prefix(args[0]);
    return r;
  }
  if (verb == "ZADD") {
    if (!need(3)) return Response::err("ZADD expects 3 args");
    r.integer = zadd(args[0], std::strtod(args[1].c_str(), nullptr), args[2]) ? 1 : 0;
    return r;
  }
  if (verb == "ZREM") {
    if (!need(2)) return Response::err("ZREM expects 2 args");
    r.integer = zrem(args[0], args[1]) ? 1 : 0;
    return r;
  }
  if (verb == "ZSCORE") {
    if (!need(2)) return Response::err("ZSCORE expects 2 args");
    const auto score = zscore(args[0], args[1]);
    r.found = score.has_value();
    if (score) r.value = std::to_string(*score);
    return r;
  }
  if (verb == "ZRANGE") {
    if (!need(3)) return Response::err("ZRANGE expects 3 args");
    r.values = zrange(args[0], std::strtoll(args[1].c_str(), nullptr, 10),
                      std::strtoll(args[2].c_str(), nullptr, 10));
    return r;
  }
  if (verb == "ZCARD") {
    if (!need(1)) return Response::err("ZCARD expects 1 arg");
    r.integer = zcard(args[0]);
    return r;
  }
  if (verb == "FLUSHALL") {
    flush_all();
    return r;
  }
  if (verb == "DBSIZE") {
    r.integer = static_cast<int64_t>(key_count());
    return r;
  }
  if (verb == "PING") {
    r.value = "PONG";
    return r;
  }
  return Response::err("unknown command " + verb);
}

}  // namespace erpi::kv
