#include "kvstore/lock.hpp"

#include <thread>

#include "util/stopwatch.hpp"

namespace erpi::kv {

DistributedMutex::DistributedMutex(Server& server, std::string key, Options options,
                                   uint64_t token_seed)
    : client_(server), key_(std::move(key)), options_(options), rng_(token_seed) {}

bool DistributedMutex::try_lock() {
  if (held_) return true;
  // Fresh random token per acquisition so unlock can verify ownership.
  token_ = std::to_string(rng_.next()) + "-" + std::to_string(rng_.next());
  held_ = client_.set_nx_px(key_, token_, options_.ttl_ms);
  return held_;
}

bool DistributedMutex::lock() {
  if (held_) return true;
  util::Stopwatch watch;
  while (!try_lock()) {
    if (watch.elapsed_seconds() * 1000.0 > static_cast<double>(options_.acquire_timeout_ms)) {
      return false;
    }
    std::this_thread::sleep_for(std::chrono::microseconds(options_.retry_delay_us));
  }
  return true;
}

bool DistributedMutex::unlock() {
  if (!held_) return false;
  held_ = false;
  return client_.compare_and_delete(key_, token_);
}

}  // namespace erpi::kv
