// Single-threaded command server over a Store, mirroring Redis's execution
// model: many clients, one command at a time, total order over commands.
//
// Clients enqueue requests and block for the response; the server thread
// drains the queue in FIFO order. This total order is what makes SETNX-based
// distributed locking sound, so the replay engine's lock (see lock.hpp)
// inherits the same guarantee as the paper's Redis deployment.
#pragma once

#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>

#include "kvstore/store.hpp"

namespace erpi::kv {

class Server {
 public:
  /// Starts the server thread. `clock` defaults to steady_clock milliseconds.
  explicit Server(ClockFn clock = nullptr);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Send a request and wait for its response. Thread-safe.
  Response call(Request request);

  /// Stop accepting requests and join the server thread. Idempotent.
  void stop();

  /// Commands served so far (for tests/benchmarks).
  uint64_t commands_served() const noexcept { return served_.load(); }

 private:
  struct PendingCall {
    Request request;
    Response response;
    bool done = false;
    std::mutex mu;
    std::condition_variable cv;
  };

  void serve();

  std::unique_ptr<Store> store_;
  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<std::shared_ptr<PendingCall>> queue_;
  bool stopping_ = false;
  std::atomic<uint64_t> served_{0};
  std::thread thread_;
};

/// Typed convenience wrapper over Server::call.
class Client {
 public:
  explicit Client(Server& server) : server_(&server) {}

  std::optional<std::string> get(const std::string& key);
  void set(const std::string& key, const std::string& value);
  bool set_nx_px(const std::string& key, const std::string& value, int64_t ttl_ms);
  bool del(const std::string& key);
  bool compare_and_delete(const std::string& key, const std::string& expected);
  int64_t incr(const std::string& key);
  bool exists(const std::string& key);
  std::vector<std::string> keys_with_prefix(const std::string& prefix);

  bool zadd(const std::string& key, double score, const std::string& member);
  bool zrem(const std::string& key, const std::string& member);
  std::optional<double> zscore(const std::string& key, const std::string& member);
  std::vector<std::string> zrange(const std::string& key, int64_t start, int64_t stop);
  int64_t zcard(const std::string& key);

  void flush_all();

 private:
  Server* server_;
};

}  // namespace erpi::kv
