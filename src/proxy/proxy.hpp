// RdlProxy — the language binding stand-in.
//
// Application code calls RDL functions through this object. In capture mode
// every call is recorded as an Event (and still forwarded, so the capture run
// behaves like a normal run). During replay the engine calls `invoke(event)`
// to re-issue recorded calls in the interleaving's order.
#pragma once

#include <vector>

#include "proxy/event.hpp"
#include "proxy/rdl.hpp"

namespace erpi::proxy {

class RdlProxy {
 public:
  explicit RdlProxy(Rdl& target) : target_(&target) {}

  Rdl& target() noexcept { return *target_; }
  const Rdl& target() const noexcept { return *target_; }

  // ---- capture control (driven by Session::start/end) ----
  void start_capture();
  EventSet end_capture();
  bool capturing() const noexcept { return capturing_; }
  const EventSet& captured() const noexcept { return events_; }

  // ---- interception points used by application code ----
  /// A state-mutating RDL call on `replica`.
  util::Result<util::Json> update(net::ReplicaId replica, const std::string& op,
                                  util::Json args, std::string label = "");
  /// Send a synchronization request from -> to.
  util::Result<util::Json> sync_req(net::ReplicaId from, net::ReplicaId to,
                                    util::Json args = util::Json::object());
  /// Execute the received synchronization at `to` (from -> to channel).
  util::Result<util::Json> exec_sync(net::ReplicaId from, net::ReplicaId to,
                                     util::Json args = util::Json::object());
  /// Convenience: sync_req immediately followed by exec_sync.
  util::Result<util::Json> sync(net::ReplicaId from, net::ReplicaId to);
  /// A read-only observation of `replica` (recorded, so it interleaves too —
  /// cf. the motivating example's transmission event).
  util::Result<util::Json> query(net::ReplicaId replica, const std::string& op,
                                 util::Json args = util::Json::object(),
                                 std::string label = "");

  // ---- replay path ----
  /// Re-invoke a previously captured event against the target RDL.
  util::Result<util::Json> invoke(const Event& event);

 private:
  util::Result<util::Json> record_and_forward(Event event);

  Rdl* target_;
  bool capturing_ = false;
  EventSet events_;
};

}  // namespace erpi::proxy
