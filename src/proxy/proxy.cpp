#include "proxy/proxy.hpp"

namespace erpi::proxy {

void RdlProxy::start_capture() {
  events_.clear();
  capturing_ = true;
}

EventSet RdlProxy::end_capture() {
  capturing_ = false;
  return std::move(events_);
}

util::Result<util::Json> RdlProxy::record_and_forward(Event event) {
  if (capturing_) {
    event.id = static_cast<int>(events_.size());
    events_.push_back(event);
  }
  return target_->invoke(event.replica, event.op, event.args);
}

util::Result<util::Json> RdlProxy::update(net::ReplicaId replica, const std::string& op,
                                          util::Json args, std::string label) {
  Event event;
  event.kind = EventKind::Update;
  event.replica = replica;
  event.op = op;
  event.args = std::move(args);
  event.label = std::move(label);
  return record_and_forward(std::move(event));
}

util::Result<util::Json> RdlProxy::sync_req(net::ReplicaId from, net::ReplicaId to,
                                            util::Json args) {
  Event event;
  event.kind = EventKind::SyncReq;
  event.replica = from;  // sending executes at the sender
  event.from = from;
  event.to = to;
  event.op = kSyncReqOp;
  args["peer"] = static_cast<int64_t>(to);
  event.args = std::move(args);
  return record_and_forward(std::move(event));
}

util::Result<util::Json> RdlProxy::exec_sync(net::ReplicaId from, net::ReplicaId to,
                                             util::Json args) {
  Event event;
  event.kind = EventKind::ExecSync;
  event.replica = to;  // executing the sync happens at the receiver
  event.from = from;
  event.to = to;
  event.op = kExecSyncOp;
  args["peer"] = static_cast<int64_t>(from);
  event.args = std::move(args);
  return record_and_forward(std::move(event));
}

util::Result<util::Json> RdlProxy::sync(net::ReplicaId from, net::ReplicaId to) {
  auto sent = sync_req(from, to);
  if (!sent) return sent;
  return exec_sync(from, to);
}

util::Result<util::Json> RdlProxy::query(net::ReplicaId replica, const std::string& op,
                                         util::Json args, std::string label) {
  Event event;
  event.kind = EventKind::Query;
  event.replica = replica;
  event.op = op;
  event.args = std::move(args);
  event.label = std::move(label);
  return record_and_forward(std::move(event));
}

util::Result<util::Json> RdlProxy::invoke(const Event& event) {
  return target_->invoke(event.replica, event.op, event.args);
}

}  // namespace erpi::proxy
