// The distributed-event model shared by the proxy (which captures events) and
// the core middleware (which interleaves and replays them).
//
// An event is one RDL function invocation observed between ER-pi.Start() and
// ER-pi.End(): a local update, the sending of a synchronization request, the
// execution of a received synchronization, or a query/observation. Sync sends
// and executions carry (from, to) endpoints — Event Grouping pruning pairs
// them per channel (paper §3.2).
#pragma once

#include <string>
#include <vector>

#include "net/network.hpp"
#include "util/json.hpp"

namespace erpi::proxy {

enum class EventKind {
  Update,    // state mutation local to `replica`
  SyncReq,   // replica `from` sends a sync request to `to` (executes at from)
  ExecSync,  // replica `to` executes the sync received from `from`
  Query,     // observation of replica state (e.g. the motivating example's
             // "transmit the set to the municipality")
};

const char* event_kind_name(EventKind kind) noexcept;

struct Event {
  int id = -1;                 // dense index in the captured trace
  EventKind kind = EventKind::Update;
  net::ReplicaId replica = -1;  // executing replica
  net::ReplicaId from = -1;     // sync endpoints (from/to); -1 otherwise
  net::ReplicaId to = -1;
  std::string op;              // RDL function name the proxy intercepted
  util::Json args;             // arguments to re-invoke with during replay
  std::string label;           // human-readable, for reports

  bool is_sync_req() const noexcept { return kind == EventKind::SyncReq; }
  bool is_exec_sync() const noexcept { return kind == EventKind::ExecSync; }

  util::Json to_json() const;
  static Event from_json(const util::Json& j);

  /// Display string such as "ev3:Update@r0:add(otb)".
  std::string describe() const;
};

/// The immutable set of captured events a replay session works over.
using EventSet = std::vector<Event>;

}  // namespace erpi::proxy
