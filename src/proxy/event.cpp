#include "proxy/event.hpp"

namespace erpi::proxy {

const char* event_kind_name(EventKind kind) noexcept {
  switch (kind) {
    case EventKind::Update: return "update";
    case EventKind::SyncReq: return "sync_req";
    case EventKind::ExecSync: return "exec_sync";
    case EventKind::Query: return "query";
  }
  return "?";
}

namespace {
EventKind kind_from_name(const std::string& name) {
  if (name == "update") return EventKind::Update;
  if (name == "sync_req") return EventKind::SyncReq;
  if (name == "exec_sync") return EventKind::ExecSync;
  if (name == "query") return EventKind::Query;
  throw std::invalid_argument("unknown event kind " + name);
}
}  // namespace

util::Json Event::to_json() const {
  util::Json j = util::Json::object();
  j["id"] = static_cast<int64_t>(id);
  j["kind"] = event_kind_name(kind);
  j["replica"] = static_cast<int64_t>(replica);
  j["from"] = static_cast<int64_t>(from);
  j["to"] = static_cast<int64_t>(to);
  j["op"] = op;
  j["args"] = args;
  j["label"] = label;
  return j;
}

Event Event::from_json(const util::Json& j) {
  Event e;
  e.id = static_cast<int>(j["id"].as_int());
  e.kind = kind_from_name(j["kind"].as_string());
  e.replica = static_cast<net::ReplicaId>(j["replica"].as_int());
  e.from = static_cast<net::ReplicaId>(j["from"].as_int());
  e.to = static_cast<net::ReplicaId>(j["to"].as_int());
  e.op = j["op"].as_string();
  e.args = j["args"];
  e.label = j["label"].as_string();
  return e;
}

std::string Event::describe() const {
  std::string out = "ev" + std::to_string(id) + ":" + event_kind_name(kind);
  if (kind == EventKind::SyncReq || kind == EventKind::ExecSync) {
    out += "(" + std::to_string(from) + "->" + std::to_string(to) + ")";
  } else {
    out += "@r" + std::to_string(replica);
  }
  out += ":" + op;
  if (!label.empty()) out += "[" + label + "]";
  return out;
}

}  // namespace erpi::proxy
