// The Replicated Data Library integration surface.
//
// The paper intercepts RDL functions via language-specific techniques (Go AST
// rewriting, JS monkey patching, Java dynamic proxies). In this C++
// reproduction every subject implements `Rdl`, and `RdlProxy` (proxy.hpp)
// plays the role of those bindings: application code calls the RDL *through
// the proxy*, which records each call as an Event in capture mode and
// re-invokes recorded calls during replay.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "net/network.hpp"
#include "util/json.hpp"
#include "util/result.hpp"

namespace erpi::core {
class FootprintRecorder;  // core/dpor.hpp — per-event state footprints
}  // namespace erpi::core

namespace erpi::proxy {

/// Opaque checkpoint of a subject system's full state: every replica plus any
/// in-flight synchronization traffic. `state` is whatever the producing
/// subject's snapshot() stored — only the same subject instance's restore()
/// interprets it. `bytes` approximates the heap footprint of the checkpoint,
/// which the replay engine charges against the Fig. 10 resource budget.
struct Snapshot {
  std::shared_ptr<const void> state;
  uint64_t bytes = 0;

  bool valid() const noexcept { return state != nullptr; }
};

class Rdl {
 public:
  virtual ~Rdl() = default;

  /// Library name for reports ("roshi", "orbitdb", ...).
  virtual std::string name() const = 0;

  virtual int replica_count() const = 0;

  /// Invoke the RDL function `op` with `args` on `replica`. Sync operations
  /// use the reserved names "sync_req" / "exec_sync" with args {"peer": id}.
  /// A failed Result models an RDL error (failed op, access denied, ...);
  /// the replay engine records but tolerates these.
  virtual util::Result<util::Json> invoke(net::ReplicaId replica, const std::string& op,
                                          const util::Json& args) = 0;

  /// Serializable view of one replica's current state; assertions compare
  /// these across replicas and across interleavings.
  virtual util::Json replica_state(net::ReplicaId replica) const = 0;

  /// Return every replica (and any in-flight messages) to the initial state.
  /// Called before each interleaving so replays cannot affect each other.
  virtual void reset() = 0;

  /// Checkpoint the current state so a later restore() resumes mid-stream
  /// instead of replaying from position 0 (incremental prefix replay).
  /// Default: snapshots unsupported (invalid Snapshot) — the replay engine
  /// then falls back to the full reset() path.
  virtual Snapshot snapshot() { return {}; }

  /// Return to a previously captured state. Must leave the subject untouched
  /// and return false when the snapshot is invalid or was produced by a
  /// different subject instance.
  virtual bool restore(const Snapshot& snap) {
    (void)snap;
    return false;
  }

  /// Install (or clear, with nullptr) the dynamic-pruning footprint recorder
  /// (DESIGN.md §15). The recorder is owned by the replay engine and is
  /// *wiring*, not state: snapshot()/restore() must leave it untouched.
  /// Default: footprints unsupported — dynamic pruning then learns nothing
  /// from this subject and never cuts.
  virtual void set_footprint_recorder(core::FootprintRecorder* recorder) { (void)recorder; }
};

/// Reserved op names for synchronization traffic.
inline constexpr const char* kSyncReqOp = "sync_req";
inline constexpr const char* kExecSyncOp = "exec_sync";

}  // namespace erpi::proxy
