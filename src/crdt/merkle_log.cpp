#include "crdt/merkle_log.hpp"

#include <algorithm>

#include "util/hash.hpp"

namespace erpi::crdt {

util::Json LogEntry::to_json() const {
  util::Json j = util::Json::object();
  j["hash"] = hash;
  j["clock"] = clock;
  j["id"] = identity;
  j["payload"] = payload;
  util::Json parents_json = util::Json::array();
  for (const auto& p : parents) parents_json.push_back(p);
  j["parents"] = std::move(parents_json);
  return j;
}

MerkleLog::MerkleLog(std::string identity, Flags flags)
    : identity_(std::move(identity)), flags_(flags) {}

void MerkleLog::grant(const std::string& identity) { grants_.insert(identity); }
void MerkleLog::revoke(const std::string& identity) { grants_.erase(identity); }

bool MerkleLog::can_write(const std::string& identity) const {
  return grants_.empty() || grants_.count(identity) > 0;
}

std::string MerkleLog::compute_hash(const LogEntry& entry) const {
  std::string material = std::to_string(entry.clock) + "|" + entry.identity + "|" +
                         entry.payload;
  if (flags_.hash_includes_parents) {
    for (const auto& parent : entry.parents) material += "|" + parent;
  }
  return util::Sha1::hex(material);
}

util::Result<LogEntry> MerkleLog::append(std::string payload) {
  return append_internal(std::move(payload), clock_ + 1);
}

util::Result<LogEntry> MerkleLog::append_with_clock(std::string payload, int64_t clock) {
  return append_internal(std::move(payload), clock);
}

util::Result<LogEntry> MerkleLog::append_internal(std::string payload, int64_t clock) {
  if (!can_write(identity_)) {
    return util::Error{"could not append entry: write access denied for " + identity_};
  }
  LogEntry entry;
  entry.clock = clock;
  entry.identity = identity_;
  entry.payload = std::move(payload);
  entry.parents = heads();
  entry.hash = compute_hash(entry);
  if (clock > clock_) clock_ = clock;
  if (entries_.emplace(entry.hash, entry).second) arrival_order_.push_back(entry.hash);
  return entry;
}

util::Status MerkleLog::apply(const LogEntry& entry) {
  if (entries_.count(entry.hash) > 0) return util::Status::ok();  // idempotent
  if (!can_write(entry.identity)) {
    return util::Status::fail("could not append entry: write access denied for " +
                              entry.identity);
  }
  if (flags_.reject_future_clocks && entry.clock > clock_ + flags_.max_clock_drift) {
    // Issue #512 behaviour: refusing drifted clocks wedges replication.
    return util::Status::fail("entry clock " + std::to_string(entry.clock) +
                              " too far ahead of local clock " + std::to_string(clock_));
  }
  entries_.emplace(entry.hash, entry);
  arrival_order_.push_back(entry.hash);
  if (entry.clock > clock_) clock_ = entry.clock;
  return util::Status::ok();
}

util::Status MerkleLog::join(const MerkleLog& other) {
  // deterministic apply order: the other log's total order
  std::string first_error;
  for (const auto& entry : other.traverse()) {
    if (const auto st = apply(entry); !st && first_error.empty()) {
      first_error = st.error().message;
    }
  }
  if (!first_error.empty()) return util::Status::fail(first_error);
  return util::Status::ok();
}

std::vector<LogEntry> MerkleLog::traverse() const {
  std::vector<LogEntry> out;
  out.reserve(entries_.size());
  if (flags_.identity_tiebreak) {
    for (const auto& [hash, entry] : entries_) out.push_back(entry);
    std::sort(out.begin(), out.end(), [](const LogEntry& a, const LogEntry& b) {
      if (a.clock != b.clock) return a.clock < b.clock;
      if (a.identity != b.identity) return a.identity < b.identity;
      return a.hash < b.hash;
    });
  } else {
    // Issue #513 behaviour: ties keep arrival order, which differs per replica.
    std::vector<std::pair<size_t, const LogEntry*>> staged;
    staged.reserve(arrival_order_.size());
    for (size_t i = 0; i < arrival_order_.size(); ++i) {
      const auto it = entries_.find(arrival_order_[i]);
      if (it != entries_.end()) staged.emplace_back(i, &it->second);
    }
    std::stable_sort(staged.begin(), staged.end(), [](const auto& a, const auto& b) {
      return a.second->clock < b.second->clock;
    });
    for (const auto& [pos, entry] : staged) out.push_back(*entry);
  }
  return out;
}

std::vector<std::string> MerkleLog::payloads() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& entry : traverse()) out.push_back(entry.payload);
  return out;
}

std::vector<std::string> MerkleLog::heads() const {
  std::set<std::string> referenced;
  for (const auto& [hash, entry] : entries_) {
    for (const auto& parent : entry.parents) referenced.insert(parent);
  }
  std::vector<std::string> out;
  for (const auto& [hash, entry] : entries_) {
    if (referenced.count(hash) == 0) out.push_back(hash);
  }
  std::sort(out.begin(), out.end());
  return out;
}

bool MerkleLog::verify() const {
  // Always verify against the full-content hash: with hash_includes_parents
  // disabled the stored hashes were minted from partial content, and two
  // entries at different DAG positions can collide — exactly the corruption
  // reported as "head hash didn't match the contents".
  for (const auto& [hash, entry] : entries_) {
    std::string material =
        std::to_string(entry.clock) + "|" + entry.identity + "|" + entry.payload;
    for (const auto& parent : entry.parents) material += "|" + parent;
    if (util::Sha1::hex(material) != hash) return false;
  }
  return true;
}

util::Json MerkleLog::to_json() const {
  util::Json arr = util::Json::array();
  for (const auto& entry : traverse()) arr.push_back(entry.to_json());
  return arr;
}

}  // namespace erpi::crdt
