#include "crdt/counters.hpp"

#include <stdexcept>

namespace erpi::crdt {

void GCounter::increment(ReplicaId replica, int64_t by) {
  if (by < 0) throw std::invalid_argument("GCounter cannot decrease");
  components_[replica] += by;
}

int64_t GCounter::value() const {
  int64_t total = 0;
  for (const auto& [replica, count] : components_) total += count;
  return total;
}

void GCounter::merge(const GCounter& other) {
  for (const auto& [replica, count] : other.components_) {
    auto& mine = components_[replica];
    if (count > mine) mine = count;
  }
}

util::Json GCounter::to_json() const {
  util::Json j = util::Json::object();
  for (const auto& [replica, count] : components_) j[std::to_string(replica)] = count;
  return j;
}

GCounter GCounter::from_json(const util::Json& j) {
  GCounter c;
  for (const auto& [key, value] : j.as_object()) {
    c.components_[static_cast<ReplicaId>(std::stoi(key))] = value.as_int();
  }
  return c;
}

void PNCounter::increment(ReplicaId replica, int64_t by) { increments_.increment(replica, by); }
void PNCounter::decrement(ReplicaId replica, int64_t by) { decrements_.increment(replica, by); }

int64_t PNCounter::value() const { return increments_.value() - decrements_.value(); }

void PNCounter::merge(const PNCounter& other) {
  increments_.merge(other.increments_);
  decrements_.merge(other.decrements_);
}

util::Json PNCounter::to_json() const {
  util::Json j = util::Json::object();
  j["inc"] = increments_.to_json();
  j["dec"] = decrements_.to_json();
  return j;
}

PNCounter PNCounter::from_json(const util::Json& j) {
  PNCounter c;
  c.increments_ = GCounter::from_json(j["inc"]);
  c.decrements_ = GCounter::from_json(j["dec"]);
  return c;
}

}  // namespace erpi::crdt
