// RGA (Replicated Growable Array) — the list CRDT used by the collaborative
// list/document subjects.
//
// Elements carry unique ids (timestamp, replica); insertion is anchored
// "after" an existing element (or the head), and siblings order by id
// descending, which makes concurrent inserts at the same anchor converge.
// Removal tombstones the node.
//
// Moves are modelled two ways, reflecting the paper's misconception #3:
//  * naive_move — delete + re-insert, as an application developer would write
//    it. Concurrent naive moves of the same element DUPLICATE it (each side
//    mints a new insert id). This is also the root cause of the class of bug
//    behind Yorkie #676 (Array.MoveAfter divergence).
//  * MoveOp — a proper CRDT move: a per-element LWW "position register" whose
//    highest-timestamp destination wins (Kleppmann, "Moving Elements in List
//    CRDTs").
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "crdt/common.hpp"
#include "util/json.hpp"

namespace erpi::crdt {

class Rga {
 public:
  /// Node id: (logical time, replica). Head anchor is the zero id.
  using Id = Dot;  // reuse Dot{replica, counter}; ordering (replica, counter)

  struct InsertOp {
    Id id;
    Id after;  // zero id = head
    std::string value;
  };
  struct RemoveOp {
    Id target;
  };
  struct MoveOp {
    Id target;
    Id after;          // new anchor
    Timestamp stamp;   // LWW arbitration between concurrent moves
  };

  // ---- local operations (return the op to broadcast) ----
  InsertOp insert_at(ReplicaId replica, size_t index, std::string value);
  std::optional<RemoveOp> remove_at(size_t index);
  /// CRDT move of the element at `from` so it lands at visible index `to`.
  std::optional<MoveOp> move(ReplicaId replica, size_t from, size_t to);
  /// Application-style move: remove + fresh insert. Returns both ops.
  std::optional<std::pair<RemoveOp, InsertOp>> naive_move(ReplicaId replica, size_t from,
                                                          size_t to);

  // ---- op application (local ops are already applied) ----
  void apply(const InsertOp& op);
  void apply(const RemoveOp& op);
  void apply(const MoveOp& op);

  /// When disabled, apply(MoveOp) skips the LWW stamp comparison and always
  /// repositions — concurrent moves then resolve by arrival order and
  /// replicas diverge. This reproduces the class of bug behind Yorkie #676.
  void set_lww_moves(bool enabled) noexcept { lww_moves_ = enabled; }
  bool lww_moves() const noexcept { return lww_moves_; }

  /// State-based merge: union nodes and tombstones; for nodes present on
  /// both sides the higher move stamp decides the anchor (or arrival order
  /// when LWW moves are disabled — the divergent mode).
  void merge(const Rga& other);

  // ---- queries ----
  std::vector<std::string> values() const;
  size_t size() const;
  std::optional<Id> id_at(size_t index) const;
  std::optional<std::string> value_of(Id id) const;

  util::Json to_json() const;

 private:
  struct Node {
    Id id;
    std::string value;
    bool tombstone = false;
    Id anchor;               // current effective anchor
    Timestamp move_stamp;    // LWW stamp of the winning position
  };

  static constexpr Id kHead{0, 0};

  /// Insert `id` after `anchor` in the flat sequence, applying the RGA skip
  /// rule so concurrent same-anchor inserts converge.
  void place_after(Id anchor, Id id, bool skip_rule = true);
  void detach(Id id);
  size_t sequence_index(Id id) const;
  const Node* find(Id id) const;
  Node* find(Id id);
  std::vector<const Node*> visible() const;
  Id fresh_id(ReplicaId replica);

  std::map<Id, Node> nodes_;
  std::vector<Id> sequence_;  // flat linearization (tombstones included)
  int64_t clock_ = 0;  // per-object Lamport time for id minting
  bool lww_moves_ = true;
};

/// A deliberately non-convergent list: appends in arrival order with no ids
/// or merge function. Used to *seed* misconception #2 ("the order of List
/// elements is always consistent") — replicas that apply the same updates in
/// different orders end up with different sequences.
class NaiveList {
 public:
  void append(std::string value) { items_.push_back(std::move(value)); }
  void remove_value(const std::string& value);
  const std::vector<std::string>& values() const noexcept { return items_; }
  util::Json to_json() const;

 private:
  std::vector<std::string> items_;
};

}  // namespace erpi::crdt
