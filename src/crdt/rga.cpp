#include "crdt/rga.hpp"

#include <algorithm>
#include <stdexcept>

namespace erpi::crdt {

namespace {
/// Priority order for the RGA skip rule: a "newer" id (higher counter, then
/// higher replica) takes the earlier position among concurrent inserts at
/// the same anchor.
bool id_priority_less(const Rga::Id& a, const Rga::Id& b) {
  if (a.counter != b.counter) return a.counter < b.counter;
  return a.replica < b.replica;
}
}  // namespace

Rga::Id Rga::fresh_id(ReplicaId replica) { return Id{replica, ++clock_}; }

const Rga::Node* Rga::find(Id id) const {
  const auto it = nodes_.find(id);
  return it == nodes_.end() ? nullptr : &it->second;
}

Rga::Node* Rga::find(Id id) {
  const auto it = nodes_.find(id);
  return it == nodes_.end() ? nullptr : &it->second;
}

size_t Rga::sequence_index(Id id) const {
  const auto it = std::find(sequence_.begin(), sequence_.end(), id);
  return static_cast<size_t>(it - sequence_.begin());
}

void Rga::place_after(Id anchor, Id id, bool skip_rule) {
  // Start just after the anchor (or at the head). For inserts, skip over any
  // element whose id outranks ours — the classic RGA rule that makes
  // concurrent inserts at the same anchor converge. Moves place directly:
  // their convergence comes from the LWW move stamp instead.
  size_t pos = 0;
  if (anchor != kHead) {
    const size_t anchor_pos = sequence_index(anchor);
    pos = anchor_pos >= sequence_.size() ? sequence_.size() : anchor_pos + 1;
  }
  if (skip_rule) {
    while (pos < sequence_.size() && id_priority_less(id, sequence_[pos])) ++pos;
  }
  sequence_.insert(sequence_.begin() + static_cast<std::ptrdiff_t>(pos), id);
}

void Rga::detach(Id id) {
  const auto it = std::find(sequence_.begin(), sequence_.end(), id);
  if (it != sequence_.end()) sequence_.erase(it);
}

std::vector<const Rga::Node*> Rga::visible() const {
  std::vector<const Node*> out;
  out.reserve(sequence_.size());
  for (const Id id : sequence_) {
    const Node* node = find(id);
    if (node != nullptr && !node->tombstone) out.push_back(node);
  }
  return out;
}

Rga::InsertOp Rga::insert_at(ReplicaId replica, size_t index, std::string value) {
  const auto vis = visible();
  if (index > vis.size()) throw std::out_of_range("Rga::insert_at index out of range");
  const Id anchor = index == 0 ? kHead : vis[index - 1]->id;
  InsertOp op{fresh_id(replica), anchor, std::move(value)};
  apply(op);
  return op;
}

std::optional<Rga::RemoveOp> Rga::remove_at(size_t index) {
  const auto vis = visible();
  if (index >= vis.size()) return std::nullopt;
  RemoveOp op{vis[index]->id};
  apply(op);
  return op;
}

std::optional<Rga::MoveOp> Rga::move(ReplicaId replica, size_t from, size_t to) {
  auto vis = visible();
  if (from >= vis.size()) return std::nullopt;
  const Id target = vis[from]->id;
  vis.erase(vis.begin() + static_cast<std::ptrdiff_t>(from));
  if (to > vis.size()) to = vis.size();
  const Id anchor = to == 0 ? kHead : vis[to - 1]->id;
  MoveOp op{target, anchor, Timestamp{++clock_, replica}};
  apply(op);
  return op;
}

std::optional<std::pair<Rga::RemoveOp, Rga::InsertOp>> Rga::naive_move(ReplicaId replica,
                                                                       size_t from, size_t to) {
  const auto vis = visible();
  if (from >= vis.size()) return std::nullopt;
  const std::string value = vis[from]->value;
  auto removed = remove_at(from);
  if (!removed) return std::nullopt;
  // indices shift after the removal
  if (to > from) --to;
  InsertOp inserted = insert_at(replica, std::min(to, size()), value);
  return std::make_pair(*removed, inserted);
}

void Rga::apply(const InsertOp& op) {
  if (op.id.counter > clock_) clock_ = op.id.counter;
  if (nodes_.count(op.id) > 0) return;  // duplicate delivery
  Node node;
  node.id = op.id;
  node.value = op.value;
  node.anchor = op.after;
  nodes_.emplace(op.id, node);
  place_after(op.after, op.id);
}

void Rga::apply(const RemoveOp& op) {
  Node* node = find(op.target);
  if (node != nullptr) node->tombstone = true;
}

void Rga::apply(const MoveOp& op) {
  if (op.stamp.time > clock_) clock_ = op.stamp.time;
  Node* node = find(op.target);
  if (node == nullptr) return;
  if (op.target == op.after) return;  // degenerate self-move
  if (lww_moves_ && !(op.stamp > node->move_stamp)) return;  // later move wins
  detach(op.target);
  node->anchor = op.after;
  node->move_stamp = op.stamp;
  place_after(op.after, op.target, /*skip_rule=*/false);
}

void Rga::merge(const Rga& other) {
  if (other.clock_ > clock_) clock_ = other.clock_;
  // Insert unknown nodes in the other's sequence order so anchors are
  // already present when their dependants arrive.
  for (const Id id : other.sequence_) {
    const Node* theirs = other.find(id);
    if (theirs == nullptr || nodes_.count(id) > 0) continue;
    Node copy = *theirs;
    nodes_.emplace(id, copy);
    place_after(nodes_.count(copy.anchor) > 0 || copy.anchor == kHead ? copy.anchor : kHead,
                id, copy.move_stamp == Timestamp{});
  }
  // Reconcile nodes known to both sides: tombstones are permanent and the
  // higher move stamp (or, in the divergent arrival-order mode, any
  // differing stamp) decides the position.
  for (const auto& [id, theirs] : other.nodes_) {
    Node* mine = find(id);
    if (mine == nullptr) continue;
    if (theirs.tombstone) mine->tombstone = true;
    const bool reposition = lww_moves_ ? theirs.move_stamp > mine->move_stamp
                                       : theirs.move_stamp != mine->move_stamp;
    if (reposition) {
      detach(id);
      mine->anchor = theirs.anchor;
      mine->move_stamp = theirs.move_stamp;
      place_after(nodes_.count(mine->anchor) > 0 || mine->anchor == kHead ? mine->anchor
                                                                          : kHead,
                  id, /*skip_rule=*/false);
    }
  }
}

std::vector<std::string> Rga::values() const {
  std::vector<std::string> out;
  for (const Node* n : visible()) out.push_back(n->value);
  return out;
}

size_t Rga::size() const { return visible().size(); }

std::optional<Rga::Id> Rga::id_at(size_t index) const {
  const auto vis = visible();
  if (index >= vis.size()) return std::nullopt;
  return vis[index]->id;
}

std::optional<std::string> Rga::value_of(Id id) const {
  const Node* node = find(id);
  if (node == nullptr || node->tombstone) return std::nullopt;
  return node->value;
}

util::Json Rga::to_json() const {
  util::Json arr = util::Json::array();
  for (const auto& v : values()) arr.push_back(v);
  return arr;
}

void NaiveList::remove_value(const std::string& value) {
  const auto it = std::find(items_.begin(), items_.end(), value);
  if (it != items_.end()) items_.erase(it);
}

util::Json NaiveList::to_json() const {
  util::Json arr = util::Json::array();
  for (const auto& v : items_) arr.push_back(v);
  return arr;
}

}  // namespace erpi::crdt
