// Merkle-DAG append-only log, the CRDT underlying the OrbitDB subject
// (Merkle-CRDTs: content-addressed entries; each append references the
// current heads; join = DAG union; total order by Lamport clock).
//
// Three historical OrbitDB defects are reproducible behind flags:
//  * identity_tiebreak = false  — entries with equal Lamport clocks order by
//    arrival, so replicas disagree (issue #513: "ordering tie breaker can
//    cause undefined ordering with the same identity").
//  * reject_future_clocks = true — joins reject entries whose clock is more
//    than max_clock_drift ahead of the local clock, so one poisoned clock
//    halts progress (issue #512: "Lamport clock can be set far into future
//    making db progress halt"). The shipped fix is clamping, not rejecting.
//  * hash_includes_parents = false — the entry hash omits the parent links,
//    so two different DAG positions can carry the same hash and verification
//    fails (issue #583: "Head hash didn't match the contents").
#pragma once

#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "util/json.hpp"
#include "util/result.hpp"

namespace erpi::crdt {

struct LogEntry {
  std::string hash;
  int64_t clock = 0;
  std::string identity;
  std::string payload;
  std::vector<std::string> parents;

  util::Json to_json() const;
};

class MerkleLog {
 public:
  struct Flags {
    bool identity_tiebreak = true;
    bool reject_future_clocks = false;
    int64_t max_clock_drift = 1000;
    bool hash_includes_parents = true;
  };

  explicit MerkleLog(std::string identity) : MerkleLog(std::move(identity), Flags()) {}
  MerkleLog(std::string identity, Flags flags);

  const std::string& identity() const noexcept { return identity_; }
  const Flags& flags() const noexcept { return flags_; }

  // ---- access control (replicated by the subject layer as grant events) ----
  /// With no grants recorded, the log is open to all writers.
  void grant(const std::string& identity);
  void revoke(const std::string& identity);
  bool can_write(const std::string& identity) const;

  // ---- writes ----
  util::Result<LogEntry> append(std::string payload);
  /// Append with an explicit clock value (used to model the poisoned-clock
  /// scenario of issue #512). The local clock still ratchets to max.
  util::Result<LogEntry> append_with_clock(std::string payload, int64_t clock);

  /// Apply a single remote entry (op-based sync). Fails when access control
  /// or clock validation rejects it.
  util::Status apply(const LogEntry& entry);

  /// State-based merge of another log's DAG.
  util::Status join(const MerkleLog& other);

  // ---- queries ----
  /// Entries in the log's total order (clock, then tie-break).
  std::vector<LogEntry> traverse() const;
  std::vector<std::string> payloads() const;
  /// Hashes never referenced as a parent — the DAG frontier.
  std::vector<std::string> heads() const;
  size_t length() const noexcept { return entries_.size(); }
  int64_t clock() const noexcept { return clock_; }

  /// Recompute every entry's hash from its contents; false = corruption
  /// (reproduces the detection side of issue #583).
  bool verify() const;

  util::Json to_json() const;

 private:
  std::string compute_hash(const LogEntry& entry) const;
  util::Result<LogEntry> append_internal(std::string payload, int64_t clock);

  std::string identity_;
  Flags flags_;
  int64_t clock_ = 0;
  std::map<std::string, LogEntry> entries_;   // hash -> entry
  std::vector<std::string> arrival_order_;    // used when tie-break is off
  std::set<std::string> grants_;              // empty = open access
};

}  // namespace erpi::crdt
