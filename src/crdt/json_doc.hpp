// JSON document CRDT, modelled on Yorkie's document type: a tree of objects
// (LWW per key), lists (RGA), and primitive registers, mutated through
// serializable operations so replicas can exchange and replay them.
//
// Two historical Yorkie defects are reproducible behind flags:
//  * replace_nested_on_set = false — a Set whose value is an object merges
//    into an existing object at the remote instead of replacing it, while
//    the local replica replaced it; replicas diverge depending on op order
//    (issue #663: "Modify the set operation to handle nested object values").
//  * lww_move = false — Array.MoveAfter repositions by arrival order instead
//    of LWW arbitration, so concurrent moves of the same element leave
//    different orders on different replicas (issue #676: "Document doesn't
//    converge when using Array.MoveAfter").
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "crdt/common.hpp"
#include "crdt/rga.hpp"
#include "util/json.hpp"
#include "util/result.hpp"

namespace erpi::crdt {

/// Path to a container in the document: a sequence of object keys.
using DocPath = std::vector<std::string>;

class JsonDoc {
 public:
  struct Flags {
    bool replace_nested_on_set = true;
    bool lww_move = true;
  };

  /// A serializable mutation. Produced by local edits, applied remotely.
  struct Op {
    enum class Kind { Set, Delete, ListPush, ListInsert, ListRemove, ListMove };

    Kind kind = Kind::Set;
    DocPath path;          // container the op addresses
    std::string key;       // object ops
    util::Json value;      // Set / ListPush / ListInsert payload
    Timestamp stamp;       // LWW arbitration
    // list sub-ops (populated for List* kinds)
    Rga::InsertOp list_insert;
    Rga::RemoveOp list_remove;
    Rga::MoveOp list_move;

    util::Json to_json() const;
    static util::Result<Op> from_json(const util::Json& j);
  };

  explicit JsonDoc(ReplicaId replica) : JsonDoc(replica, Flags()) {}
  JsonDoc(ReplicaId replica, Flags flags);

  JsonDoc(const JsonDoc&) = delete;
  JsonDoc& operator=(const JsonDoc&) = delete;
  JsonDoc(JsonDoc&&) = default;
  JsonDoc& operator=(JsonDoc&&) = default;

  /// Deep copy of the whole document (node tree, clock, flags) — the
  /// explicit-copy escape hatch the deleted copy constructor forces callers
  /// through. Subject snapshots use it to checkpoint replica state.
  JsonDoc clone() const;

  ReplicaId replica() const noexcept { return replica_; }

  // ---- local edits; the returned op must be broadcast to peers ----
  /// Set `key` in the object at `path` to a JSON value (primitive or object).
  Op set(const DocPath& path, const std::string& key, util::Json value);
  Op erase(const DocPath& path, const std::string& key);
  /// Append to (or create) the list at path/key.
  Op list_push(const DocPath& path, const std::string& key, const util::Json& value);
  Op list_insert(const DocPath& path, const std::string& key, size_t index,
                 const util::Json& value);
  std::optional<Op> list_remove(const DocPath& path, const std::string& key, size_t index);
  /// Yorkie's Array.MoveAfter: reposition element `from` to sit at index `to`.
  std::optional<Op> list_move(const DocPath& path, const std::string& key, size_t from,
                              size_t to);

  /// Apply a remote op. Idempotence is inherited from the underlying CRDTs.
  void apply(const Op& op);

  // ---- queries ----
  /// Materialize the whole document as plain JSON (lists as arrays).
  util::Json snapshot() const;
  std::optional<util::Json> get(const DocPath& path, const std::string& key) const;
  std::vector<std::string> list_values(const DocPath& path, const std::string& key) const;

 private:
  struct Node {
    enum class Kind { Primitive, Object, List };

    Kind kind = Kind::Primitive;
    util::Json primitive;
    Timestamp stamp;  // stamp of the Set that created/overwrote this slot
    std::map<std::string, std::unique_ptr<Node>> fields;  // Object
    Rga list;                                             // List
    bool erased = false;
  };

  Timestamp next_stamp();
  Node* resolve(const DocPath& path, bool create);
  const Node* resolve(const DocPath& path) const;
  Node* resolve_list(const DocPath& path, const std::string& key, bool create);
  void set_in(Node& object, const std::string& key, const util::Json& value, Timestamp stamp,
              bool is_remote);
  static void build_from_json(Node& node, const util::Json& value, Timestamp stamp,
                              bool lww_move);
  static util::Json node_to_json(const Node& node);
  static std::unique_ptr<Node> clone_node(const Node& node);

  ReplicaId replica_;
  Flags flags_;
  LamportClock clock_;
  std::unique_ptr<Node> root_;
};

}  // namespace erpi::crdt
