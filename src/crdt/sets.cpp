#include "crdt/sets.hpp"

#include <algorithm>

namespace erpi::crdt {

// ---------------------------------------------------------------------------
// LwwSet
// ---------------------------------------------------------------------------

bool LwwSet::wins(const Cell& current, Timestamp at, bool incoming_is_add) const {
  if (!strict_tiebreak_) {
    // Arrival order decides ties — the Roshi #11 violation.
    return at.time >= current.timestamp.time;
  }
  if (at.time != current.timestamp.time) return at.time > current.timestamp.time;
  // Same logical instant: remove beats add (Roshi's remove bias), then the
  // higher replica id wins so the outcome is replica-order independent.
  if (incoming_is_add != current.is_add) return !incoming_is_add;
  return at.replica > current.timestamp.replica;
}

bool LwwSet::add(const std::string& element, Timestamp at) {
  const auto it = cells_.find(element);
  if (it == cells_.end()) {
    cells_[element] = Cell{at, true};
    return true;
  }
  if (!wins(it->second, at, true)) return false;
  it->second = Cell{at, true};
  return true;
}

bool LwwSet::remove(const std::string& element, Timestamp at) {
  const auto it = cells_.find(element);
  if (it == cells_.end()) {
    cells_[element] = Cell{at, false};
    return true;
  }
  if (!wins(it->second, at, false)) return false;
  it->second = Cell{at, false};
  return true;
}

bool LwwSet::contains(const std::string& element) const {
  const auto it = cells_.find(element);
  return it != cells_.end() && it->second.is_add;
}

std::optional<Timestamp> LwwSet::last_op(const std::string& element) const {
  const auto it = cells_.find(element);
  if (it == cells_.end()) return std::nullopt;
  return it->second.timestamp;
}

bool LwwSet::deleted(const std::string& element) const {
  const auto it = cells_.find(element);
  return it != cells_.end() && !it->second.is_add;
}

std::vector<std::string> LwwSet::elements() const {
  std::vector<std::string> out;
  for (const auto& [element, cell] : cells_) {
    if (cell.is_add) out.push_back(element);
  }
  return out;  // std::map iteration is already sorted
}

size_t LwwSet::size() const {
  size_t n = 0;
  for (const auto& [element, cell] : cells_) n += cell.is_add ? 1 : 0;
  return n;
}

void LwwSet::merge(const LwwSet& other) {
  for (const auto& [element, cell] : other.cells_) {
    if (cell.is_add) {
      add(element, cell.timestamp);
    } else {
      remove(element, cell.timestamp);
    }
  }
}

util::Json LwwSet::to_json() const {
  util::Json j = util::Json::object();
  for (const auto& [element, cell] : cells_) {
    util::Json c = util::Json::object();
    c["ts"] = cell.timestamp.to_json();
    c["add"] = cell.is_add;
    j[element] = std::move(c);
  }
  return j;
}

// ---------------------------------------------------------------------------
// OrSet
// ---------------------------------------------------------------------------

OrSet::AddOp OrSet::add(ReplicaId replica, const std::string& element) {
  AddOp op{element, Dot{replica, ++next_counter_[replica]}};
  apply(op);
  return op;
}

std::optional<OrSet::RemoveOp> OrSet::remove(const std::string& element) {
  const auto it = live_.find(element);
  if (it == live_.end() || it->second.empty()) return std::nullopt;
  RemoveOp op;
  op.element = element;
  op.observed_tags.assign(it->second.begin(), it->second.end());
  apply(op);
  return op;
}

void OrSet::apply(const AddOp& op) {
  if (tombstones_.count(op.tag) > 0) return;  // already removed downstream
  live_[op.element].insert(op.tag);
  // keep counters ahead of any tag we have seen from that replica, so local
  // adds after a merge still mint fresh dots
  auto& counter = next_counter_[op.tag.replica];
  if (op.tag.counter > counter) counter = op.tag.counter;
}

void OrSet::apply(const RemoveOp& op) {
  const auto it = live_.find(op.element);
  for (const Dot& tag : op.observed_tags) {
    tombstones_.insert(tag);
    if (it != live_.end()) it->second.erase(tag);
  }
  if (it != live_.end() && it->second.empty()) live_.erase(it);
}

bool OrSet::contains(const std::string& element) const {
  const auto it = live_.find(element);
  return it != live_.end() && !it->second.empty();
}

std::vector<std::string> OrSet::elements() const {
  std::vector<std::string> out;
  for (const auto& [element, tags] : live_) {
    if (!tags.empty()) out.push_back(element);
  }
  return out;
}

size_t OrSet::size() const { return elements().size(); }

void OrSet::merge(const OrSet& other) {
  // union tombstones first so dead incoming tags stay dead
  tombstones_.insert(other.tombstones_.begin(), other.tombstones_.end());
  for (const auto& [element, tags] : other.live_) {
    for (const Dot& tag : tags) {
      if (tombstones_.count(tag) == 0) live_[element].insert(tag);
      auto& counter = next_counter_[tag.replica];
      if (tag.counter > counter) counter = tag.counter;
    }
  }
  // purge any of our live tags that the other side has tombstoned
  for (auto it = live_.begin(); it != live_.end();) {
    auto& tags = it->second;
    for (auto tag_it = tags.begin(); tag_it != tags.end();) {
      if (tombstones_.count(*tag_it) > 0) {
        tag_it = tags.erase(tag_it);
      } else {
        ++tag_it;
      }
    }
    it = tags.empty() ? live_.erase(it) : std::next(it);
  }
}

util::Json OrSet::to_json() const {
  util::Json arr = util::Json::array();
  for (const auto& e : elements()) arr.push_back(e);
  return arr;
}

// ---------------------------------------------------------------------------
// TwoPSet
// ---------------------------------------------------------------------------

bool TwoPSet::add(const std::string& element) {
  if (removed_.count(element) > 0 || added_.count(element) > 0) return false;
  added_.insert(element);
  return true;
}

bool TwoPSet::remove(const std::string& element) {
  if (!contains(element)) return false;
  removed_.insert(element);
  return true;
}

bool TwoPSet::contains(const std::string& element) const {
  return added_.count(element) > 0 && removed_.count(element) == 0;
}

std::vector<std::string> TwoPSet::elements() const {
  std::vector<std::string> out;
  for (const auto& e : added_) {
    if (removed_.count(e) == 0) out.push_back(e);
  }
  return out;
}

size_t TwoPSet::size() const { return elements().size(); }

void TwoPSet::merge(const TwoPSet& other) {
  added_.insert(other.added_.begin(), other.added_.end());
  removed_.insert(other.removed_.begin(), other.removed_.end());
}

util::Json TwoPSet::to_json() const {
  util::Json arr = util::Json::array();
  for (const auto& e : elements()) arr.push_back(e);
  return arr;
}

}  // namespace erpi::crdt
