// Register CRDTs: LWW-Register (last-writer-wins with replica tie-break) and
// MV-Register (multi-value, keeps all concurrent writes).
#pragma once

#include <string>
#include <vector>

#include "crdt/common.hpp"
#include "util/json.hpp"

namespace erpi::crdt {

/// Last-writer-wins register over string values.
///
/// `strict_tiebreak` reproduces the class of bug behind Roshi issue #11
/// ("CRDT semantics violated if same timestamp"): when false, a write with a
/// timestamp *equal* to the current one wins unconditionally, making merge
/// order-dependent for equal timestamps — replicas can disagree. When true
/// (the fix), ties are broken by replica id, restoring a total order.
class LwwRegister {
 public:
  explicit LwwRegister(bool strict_tiebreak = true) : strict_tiebreak_(strict_tiebreak) {}

  void set(std::string value, Timestamp at);
  const std::string& value() const noexcept { return value_; }
  Timestamp timestamp() const noexcept { return timestamp_; }
  bool empty() const noexcept { return timestamp_ == Timestamp{}; }

  void merge(const LwwRegister& other);

  bool operator==(const LwwRegister& other) const {
    return value_ == other.value_ && timestamp_ == other.timestamp_;
  }

  util::Json to_json() const;
  static LwwRegister from_json(const util::Json& j, bool strict_tiebreak = true);

 private:
  bool wins(Timestamp incoming) const noexcept;

  bool strict_tiebreak_;
  std::string value_;
  Timestamp timestamp_;
};

/// Multi-value register: concurrent writes are all retained until a later
/// write (in vector-clock order) subsumes them.
class MvRegister {
 public:
  struct Entry {
    std::string value;
    VectorClock clock;
  };

  /// Write from `replica`: advances the writer's clock past everything seen.
  /// Returns the entry's vector clock (ship it with op-based sync).
  VectorClock set(ReplicaId replica, std::string value);

  /// Downstream application of a replicated write with its original clock.
  void apply_remote(const std::string& value, const VectorClock& clock);

  /// All currently concurrent values (deterministically sorted).
  std::vector<std::string> values() const;
  size_t conflict_count() const noexcept { return entries_.size(); }

  void merge(const MvRegister& other);

  util::Json to_json() const;

 private:
  void insert_entry(Entry incoming);

  std::vector<Entry> entries_;
  VectorClock observed_;  // union of all clocks ever seen here
};

}  // namespace erpi::crdt
