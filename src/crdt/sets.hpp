// Set CRDTs: LWW-Element-Set (Roshi's semantics), OR-Set (observed-remove),
// and 2P-Set (two-phase: removed elements can never return).
#pragma once

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "crdt/common.hpp"
#include "util/json.hpp"

namespace erpi::crdt {

/// Last-write-wins element set. Each element carries the latest (add or
/// remove) timestamp; membership = the latest operation was an add.
///
/// `strict_tiebreak` mirrors LwwRegister: when false, equal-timestamp
/// operations apply in arrival order (Roshi #11 semantics violation); when
/// true, ties resolve deterministically — remove wins over add at the same
/// instant, then replica id decides (Roshi's documented "remove bias").
class LwwSet {
 public:
  explicit LwwSet(bool strict_tiebreak = true) : strict_tiebreak_(strict_tiebreak) {}

  /// Returns true if the operation took effect (was not superseded).
  bool add(const std::string& element, Timestamp at);
  bool remove(const std::string& element, Timestamp at);

  bool contains(const std::string& element) const;
  /// The timestamp of the winning operation for this element, if any op seen.
  std::optional<Timestamp> last_op(const std::string& element) const;
  /// Was the last winning op on this element a remove? (Roshi exposes this as
  /// the "deleted" field in query responses — issue #18.)
  bool deleted(const std::string& element) const;

  std::vector<std::string> elements() const;  // sorted, members only
  size_t size() const;

  void merge(const LwwSet& other);

  util::Json to_json() const;

 private:
  struct Cell {
    Timestamp timestamp;
    bool is_add = false;
  };

  /// Does (at, incoming_is_add) win over the existing cell?
  bool wins(const Cell& current, Timestamp at, bool incoming_is_add) const;

  bool strict_tiebreak_;
  std::map<std::string, Cell> cells_;
};

/// Observed-remove set: adds are tagged with unique dots; removing an element
/// removes exactly the tags observed at the remover, so concurrent re-adds
/// survive (add-wins).
class OrSet {
 public:
  struct AddOp {
    std::string element;
    Dot tag;
  };
  struct RemoveOp {
    std::string element;
    std::vector<Dot> observed_tags;
  };

  /// Local add: mint a fresh dot for this replica.
  AddOp add(ReplicaId replica, const std::string& element);
  /// Local remove: captures the currently observed tags. Returns nullopt when
  /// the element is not present (the op would be a no-op everywhere).
  std::optional<RemoveOp> remove(const std::string& element);

  /// Apply a (possibly remote) operation.
  void apply(const AddOp& op);
  void apply(const RemoveOp& op);

  bool contains(const std::string& element) const;
  std::vector<std::string> elements() const;  // sorted
  size_t size() const;

  /// State-based merge (union of live tags, union of tombstones).
  void merge(const OrSet& other);

  util::Json to_json() const;

 private:
  std::map<std::string, std::set<Dot>> live_;   // element -> visible tags
  std::set<Dot> tombstones_;                    // removed tags
  std::map<ReplicaId, int64_t> next_counter_;
};

/// Two-phase set: membership = added && !removed. Removal is permanent, and
/// re-adding a removed element fails — the data-structure constraint that
/// drives Failed-Ops pruning examples in the paper (§3.5).
class TwoPSet {
 public:
  /// Returns false (failed op) when the element was already added or removed.
  bool add(const std::string& element);
  /// Returns false (failed op) when not currently a member.
  bool remove(const std::string& element);

  /// Downstream application of a replicated add/remove: unconditional union
  /// into the respective phase set (merge semantics for op-based sync).
  void merge_add(const std::string& element) { added_.insert(element); }
  void merge_remove(const std::string& element) { removed_.insert(element); }

  bool contains(const std::string& element) const;
  std::vector<std::string> elements() const;
  size_t size() const;

  void merge(const TwoPSet& other);

  util::Json to_json() const;

 private:
  std::set<std::string> added_;
  std::set<std::string> removed_;
};

}  // namespace erpi::crdt
