// State-based counter CRDTs: G-Counter (grow-only) and PN-Counter
// (increment/decrement as two G-Counters).
#pragma once

#include <map>

#include "crdt/common.hpp"
#include "util/json.hpp"

namespace erpi::crdt {

/// Grow-only counter: per-replica monotone components, merge = pointwise max.
class GCounter {
 public:
  void increment(ReplicaId replica, int64_t by = 1);
  int64_t value() const;
  void merge(const GCounter& other);

  bool operator==(const GCounter&) const = default;

  util::Json to_json() const;
  static GCounter from_json(const util::Json& j);

 private:
  std::map<ReplicaId, int64_t> components_;
};

/// Increment/decrement counter: value = inc.value() - dec.value().
class PNCounter {
 public:
  void increment(ReplicaId replica, int64_t by = 1);
  void decrement(ReplicaId replica, int64_t by = 1);
  int64_t value() const;
  void merge(const PNCounter& other);

  bool operator==(const PNCounter&) const = default;

  util::Json to_json() const;
  static PNCounter from_json(const util::Json& j);

 private:
  GCounter increments_;
  GCounter decrements_;
};

}  // namespace erpi::crdt
