#include "crdt/json_doc.hpp"

#include <stdexcept>

namespace erpi::crdt {

namespace {

util::Json id_to_json(const Rga::Id& id) {
  util::Json j = util::Json::object();
  j["r"] = static_cast<int64_t>(id.replica);
  j["c"] = id.counter;
  return j;
}

Rga::Id id_from_json(const util::Json& j) {
  return Rga::Id{static_cast<ReplicaId>(j["r"].as_int()), j["c"].as_int()};
}

const char* kind_name(JsonDoc::Op::Kind kind) {
  switch (kind) {
    case JsonDoc::Op::Kind::Set: return "set";
    case JsonDoc::Op::Kind::Delete: return "delete";
    case JsonDoc::Op::Kind::ListPush: return "list_push";
    case JsonDoc::Op::Kind::ListInsert: return "list_insert";
    case JsonDoc::Op::Kind::ListRemove: return "list_remove";
    case JsonDoc::Op::Kind::ListMove: return "list_move";
  }
  return "?";
}

util::Result<JsonDoc::Op::Kind> kind_from_name(const std::string& name) {
  using Kind = JsonDoc::Op::Kind;
  if (name == "set") return Kind::Set;
  if (name == "delete") return Kind::Delete;
  if (name == "list_push") return Kind::ListPush;
  if (name == "list_insert") return Kind::ListInsert;
  if (name == "list_remove") return Kind::ListRemove;
  if (name == "list_move") return Kind::ListMove;
  return util::Error{"unknown op kind " + name};
}

}  // namespace

util::Json JsonDoc::Op::to_json() const {
  util::Json j = util::Json::object();
  j["kind"] = kind_name(kind);
  util::Json path_json = util::Json::array();
  for (const auto& component : path) path_json.push_back(component);
  j["path"] = std::move(path_json);
  j["key"] = key;
  j["value"] = value;
  j["stamp"] = stamp.to_json();
  switch (kind) {
    case Kind::ListPush:
    case Kind::ListInsert: {
      util::Json li = util::Json::object();
      li["id"] = id_to_json(list_insert.id);
      li["after"] = id_to_json(list_insert.after);
      li["value"] = list_insert.value;
      j["list_insert"] = std::move(li);
      break;
    }
    case Kind::ListRemove:
      j["list_remove_target"] = id_to_json(list_remove.target);
      break;
    case Kind::ListMove: {
      util::Json lm = util::Json::object();
      lm["target"] = id_to_json(list_move.target);
      lm["after"] = id_to_json(list_move.after);
      lm["stamp"] = list_move.stamp.to_json();
      j["list_move"] = std::move(lm);
      break;
    }
    default: break;
  }
  return j;
}

util::Result<JsonDoc::Op> JsonDoc::Op::from_json(const util::Json& j) {
  Op op;
  auto kind = kind_from_name(j["kind"].as_string());
  if (!kind) return util::Error{kind.error()};
  op.kind = kind.value();
  for (const auto& component : j["path"].as_array()) op.path.push_back(component.as_string());
  op.key = j["key"].as_string();
  op.value = j["value"];
  op.stamp = Timestamp::from_json(j["stamp"]);
  switch (op.kind) {
    case Kind::ListPush:
    case Kind::ListInsert:
      op.list_insert.id = id_from_json(j["list_insert"]["id"]);
      op.list_insert.after = id_from_json(j["list_insert"]["after"]);
      op.list_insert.value = j["list_insert"]["value"].as_string();
      break;
    case Kind::ListRemove:
      op.list_remove.target = id_from_json(j["list_remove_target"]);
      break;
    case Kind::ListMove:
      op.list_move.target = id_from_json(j["list_move"]["target"]);
      op.list_move.after = id_from_json(j["list_move"]["after"]);
      op.list_move.stamp = Timestamp::from_json(j["list_move"]["stamp"]);
      break;
    default: break;
  }
  return op;
}

JsonDoc::JsonDoc(ReplicaId replica, Flags flags)
    : replica_(replica), flags_(flags), root_(std::make_unique<Node>()) {
  root_->kind = Node::Kind::Object;
}

JsonDoc JsonDoc::clone() const {
  JsonDoc copy(replica_, flags_);
  copy.clock_ = clock_;
  copy.root_ = clone_node(*root_);
  return copy;
}

std::unique_ptr<JsonDoc::Node> JsonDoc::clone_node(const Node& node) {
  auto copy = std::make_unique<Node>();
  copy->kind = node.kind;
  copy->primitive = node.primitive;
  copy->stamp = node.stamp;
  copy->list = node.list;  // Rga is value-semantic
  copy->erased = node.erased;
  for (const auto& [key, child] : node.fields) {
    copy->fields.emplace(key, clone_node(*child));
  }
  return copy;
}

Timestamp JsonDoc::next_stamp() { return Timestamp{clock_.tick(), replica_}; }

JsonDoc::Node* JsonDoc::resolve(const DocPath& path, bool create) {
  Node* node = root_.get();
  for (const auto& component : path) {
    if (node->kind != Node::Kind::Object) return nullptr;
    auto it = node->fields.find(component);
    if (it == node->fields.end() || it->second->erased) {
      if (!create) return nullptr;
      auto child = std::make_unique<Node>();
      child->kind = Node::Kind::Object;
      it = node->fields.insert_or_assign(component, std::move(child)).first;
    } else if (it->second->kind != Node::Kind::Object) {
      if (!create) return nullptr;
      it->second->kind = Node::Kind::Object;
      it->second->fields.clear();
    }
    node = it->second.get();
  }
  return node;
}

const JsonDoc::Node* JsonDoc::resolve(const DocPath& path) const {
  return const_cast<JsonDoc*>(this)->resolve(path, false);
}

JsonDoc::Node* JsonDoc::resolve_list(const DocPath& path, const std::string& key,
                                     bool create) {
  Node* object = resolve(path, create);
  if (object == nullptr || object->kind != Node::Kind::Object) return nullptr;
  auto it = object->fields.find(key);
  if (it == object->fields.end() || it->second->erased ||
      it->second->kind != Node::Kind::List) {
    if (!create) return nullptr;
    auto list_node = std::make_unique<Node>();
    list_node->kind = Node::Kind::List;
    list_node->list.set_lww_moves(flags_.lww_move);
    it = object->fields.insert_or_assign(key, std::move(list_node)).first;
  }
  return it->second.get();
}

void JsonDoc::build_from_json(Node& node, const util::Json& value, Timestamp stamp,
                              bool lww_move) {
  node.stamp = stamp;
  node.erased = false;
  if (value.is_object()) {
    node.kind = Node::Kind::Object;
    node.fields.clear();
    for (const auto& [k, v] : value.as_object()) {
      auto child = std::make_unique<Node>();
      build_from_json(*child, v, stamp, lww_move);
      node.fields.insert_or_assign(k, std::move(child));
    }
  } else if (value.is_array()) {
    node.kind = Node::Kind::List;
    node.list = Rga();
    node.list.set_lww_moves(lww_move);
    for (size_t i = 0; i < value.size(); ++i) {
      node.list.insert_at(stamp.replica, i, value.at(i).dump());
    }
  } else {
    node.kind = Node::Kind::Primitive;
    node.primitive = value;
    node.fields.clear();
  }
}

void JsonDoc::set_in(Node& object, const std::string& key, const util::Json& value,
                     Timestamp stamp, bool is_remote) {
  auto it = object.fields.find(key);
  if (it != object.fields.end()) {
    Node& existing = *it->second;
    if (!(stamp > existing.stamp)) return;  // LWW: older op loses
    if (is_remote && !flags_.replace_nested_on_set && value.is_object() &&
        existing.kind == Node::Kind::Object && !existing.erased) {
      // Issue #663 behaviour: the remote side *merges* the object instead of
      // replacing the subtree, unlike the originating replica.
      existing.stamp = stamp;
      for (const auto& [k, v] : value.as_object()) {
        set_in(existing, k, v, stamp, is_remote);
      }
      return;
    }
    build_from_json(existing, value, stamp, flags_.lww_move);
    return;
  }
  auto child = std::make_unique<Node>();
  build_from_json(*child, value, stamp, flags_.lww_move);
  object.fields.insert_or_assign(key, std::move(child));
}

JsonDoc::Op JsonDoc::set(const DocPath& path, const std::string& key, util::Json value) {
  Op op;
  op.kind = Op::Kind::Set;
  op.path = path;
  op.key = key;
  op.value = std::move(value);
  op.stamp = next_stamp();
  Node* object = resolve(path, true);
  set_in(*object, key, op.value, op.stamp, /*is_remote=*/false);
  return op;
}

JsonDoc::Op JsonDoc::erase(const DocPath& path, const std::string& key) {
  Op op;
  op.kind = Op::Kind::Delete;
  op.path = path;
  op.key = key;
  op.stamp = next_stamp();
  if (Node* object = resolve(path, false); object != nullptr) {
    const auto it = object->fields.find(key);
    if (it != object->fields.end() && op.stamp > it->second->stamp) {
      it->second->erased = true;
      it->second->stamp = op.stamp;
    }
  }
  return op;
}

JsonDoc::Op JsonDoc::list_push(const DocPath& path, const std::string& key,
                               const util::Json& value) {
  Node* list_node = resolve_list(path, key, true);
  Op op;
  op.kind = Op::Kind::ListPush;
  op.path = path;
  op.key = key;
  op.value = value;
  op.stamp = next_stamp();
  op.list_insert = list_node->list.insert_at(replica_, list_node->list.size(), value.dump());
  return op;
}

JsonDoc::Op JsonDoc::list_insert(const DocPath& path, const std::string& key, size_t index,
                                 const util::Json& value) {
  Node* list_node = resolve_list(path, key, true);
  Op op;
  op.kind = Op::Kind::ListInsert;
  op.path = path;
  op.key = key;
  op.value = value;
  op.stamp = next_stamp();
  op.list_insert = list_node->list.insert_at(replica_, index, value.dump());
  return op;
}

std::optional<JsonDoc::Op> JsonDoc::list_remove(const DocPath& path, const std::string& key,
                                                size_t index) {
  Node* list_node = resolve_list(path, key, false);
  if (list_node == nullptr) return std::nullopt;
  const auto removed = list_node->list.remove_at(index);
  if (!removed) return std::nullopt;
  Op op;
  op.kind = Op::Kind::ListRemove;
  op.path = path;
  op.key = key;
  op.stamp = next_stamp();
  op.list_remove = *removed;
  return op;
}

std::optional<JsonDoc::Op> JsonDoc::list_move(const DocPath& path, const std::string& key,
                                              size_t from, size_t to) {
  Node* list_node = resolve_list(path, key, false);
  if (list_node == nullptr) return std::nullopt;
  const auto moved = list_node->list.move(replica_, from, to);
  if (!moved) return std::nullopt;
  Op op;
  op.kind = Op::Kind::ListMove;
  op.path = path;
  op.key = key;
  op.stamp = next_stamp();
  op.list_move = *moved;
  return op;
}

void JsonDoc::apply(const Op& op) {
  clock_.receive(op.stamp.time);
  switch (op.kind) {
    case Op::Kind::Set: {
      Node* object = resolve(op.path, true);
      set_in(*object, op.key, op.value, op.stamp, /*is_remote=*/true);
      break;
    }
    case Op::Kind::Delete: {
      Node* object = resolve(op.path, false);
      if (object == nullptr) break;
      const auto it = object->fields.find(op.key);
      if (it != object->fields.end() && op.stamp > it->second->stamp) {
        it->second->erased = true;
        it->second->stamp = op.stamp;
      }
      break;
    }
    case Op::Kind::ListPush:
    case Op::Kind::ListInsert: {
      Node* list_node = resolve_list(op.path, op.key, true);
      list_node->list.apply(op.list_insert);
      break;
    }
    case Op::Kind::ListRemove: {
      Node* list_node = resolve_list(op.path, op.key, true);
      list_node->list.apply(op.list_remove);
      break;
    }
    case Op::Kind::ListMove: {
      Node* list_node = resolve_list(op.path, op.key, true);
      list_node->list.apply(op.list_move);
      break;
    }
  }
}

util::Json JsonDoc::node_to_json(const Node& node) {
  switch (node.kind) {
    case Node::Kind::Primitive: return node.primitive;
    case Node::Kind::Object: {
      util::Json j = util::Json::object();
      for (const auto& [key, child] : node.fields) {
        if (!child->erased) j[key] = node_to_json(*child);
      }
      return j;
    }
    case Node::Kind::List: {
      util::Json arr = util::Json::array();
      for (const auto& item : node.list.values()) {
        auto parsed = util::Json::parse(item);
        arr.push_back(parsed ? std::move(parsed).take() : util::Json(item));
      }
      return arr;
    }
  }
  return util::Json();
}

util::Json JsonDoc::snapshot() const { return node_to_json(*root_); }

std::optional<util::Json> JsonDoc::get(const DocPath& path, const std::string& key) const {
  const Node* object = resolve(path);
  if (object == nullptr || object->kind != Node::Kind::Object) return std::nullopt;
  const auto it = object->fields.find(key);
  if (it == object->fields.end() || it->second->erased) return std::nullopt;
  return node_to_json(*it->second);
}

std::vector<std::string> JsonDoc::list_values(const DocPath& path,
                                              const std::string& key) const {
  const Node* object = resolve(path);
  if (object == nullptr) return {};
  const auto it = object->fields.find(key);
  if (it == object->fields.end() || it->second->erased ||
      it->second->kind != Node::Kind::List) {
    return {};
  }
  return it->second->list.values();
}

}  // namespace erpi::crdt
