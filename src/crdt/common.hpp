// Shared CRDT machinery: replica identity, Lamport clocks, timestamps with
// replica tie-break, vector clocks, and dots (replica, counter) for unique
// tagging in observed-remove designs.
#pragma once

#include <compare>
#include <cstdint>
#include <map>
#include <string>

#include "util/json.hpp"

namespace erpi::crdt {

using ReplicaId = int32_t;

/// Lamport logical clock (paper §4.2: replay order is defined by Lamport
/// timestamps assigned to each event).
class LamportClock {
 public:
  explicit LamportClock(int64_t initial = 0) noexcept : time_(initial) {}

  /// Local event: advance and return the new time.
  int64_t tick() noexcept { return ++time_; }

  /// Incorporate a received timestamp: max(local, remote) + 1.
  int64_t receive(int64_t remote) noexcept {
    time_ = (remote > time_ ? remote : time_) + 1;
    return time_;
  }

  int64_t now() const noexcept { return time_; }
  void reset(int64_t t = 0) noexcept { time_ = t; }

 private:
  int64_t time_;
};

/// Totally ordered timestamp: Lamport time with replica id as tie-break.
/// Ordering is (time, replica) lexicographic — the standard LWW arbitration.
struct Timestamp {
  int64_t time = 0;
  ReplicaId replica = 0;

  auto operator<=>(const Timestamp&) const = default;

  util::Json to_json() const {
    util::Json j = util::Json::object();
    j["t"] = time;
    j["r"] = static_cast<int64_t>(replica);
    return j;
  }
  static Timestamp from_json(const util::Json& j) {
    return Timestamp{j["t"].as_int(), static_cast<ReplicaId>(j["r"].as_int())};
  }

  std::string str() const {
    return std::to_string(time) + "@" + std::to_string(replica);
  }
};

/// A dot uniquely identifies one operation issued by one replica.
struct Dot {
  ReplicaId replica = 0;
  int64_t counter = 0;

  auto operator<=>(const Dot&) const = default;

  std::string str() const {
    return std::to_string(replica) + ":" + std::to_string(counter);
  }
  util::Json to_json() const {
    util::Json j = util::Json::object();
    j["r"] = static_cast<int64_t>(replica);
    j["c"] = counter;
    return j;
  }
  static Dot from_json(const util::Json& j) {
    return Dot{static_cast<ReplicaId>(j["r"].as_int()), j["c"].as_int()};
  }
};

/// Vector clock over replica ids; partial order drives MV-Register semantics.
class VectorClock {
 public:
  void tick(ReplicaId replica) { ++entries_[replica]; }
  int64_t get(ReplicaId replica) const {
    const auto it = entries_.find(replica);
    return it == entries_.end() ? 0 : it->second;
  }
  void merge(const VectorClock& other) {
    for (const auto& [replica, count] : other.entries_) {
      auto& mine = entries_[replica];
      if (count > mine) mine = count;
    }
  }

  /// this happens-before other: every component <=, at least one <.
  bool before(const VectorClock& other) const {
    bool strictly = false;
    for (const auto& [replica, count] : entries_) {
      const int64_t theirs = other.get(replica);
      if (count > theirs) return false;
      if (count < theirs) strictly = true;
    }
    for (const auto& [replica, count] : other.entries_) {
      if (get(replica) < count) strictly = true;
    }
    return strictly;
  }
  bool concurrent(const VectorClock& other) const {
    return !before(other) && !other.before(*this) && !(*this == other);
  }

  bool operator==(const VectorClock& other) const {
    // equal iff same non-zero components
    for (const auto& [replica, count] : entries_) {
      if (count != other.get(replica)) return false;
    }
    for (const auto& [replica, count] : other.entries_) {
      if (count != get(replica)) return false;
    }
    return true;
  }

  util::Json to_json() const {
    util::Json j = util::Json::object();
    for (const auto& [replica, count] : entries_) {
      if (count != 0) j[std::to_string(replica)] = count;
    }
    return j;
  }
  static VectorClock from_json(const util::Json& j) {
    VectorClock vc;
    for (const auto& [key, value] : j.as_object()) {
      vc.entries_[static_cast<ReplicaId>(std::stoi(key))] = value.as_int();
    }
    return vc;
  }

 private:
  std::map<ReplicaId, int64_t> entries_;
};

}  // namespace erpi::crdt
