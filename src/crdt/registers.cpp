#include "crdt/registers.hpp"

#include <algorithm>

namespace erpi::crdt {

bool LwwRegister::wins(Timestamp incoming) const noexcept {
  if (strict_tiebreak_) return incoming > timestamp_;
  // Buggy semantics: equal timestamps always overwrite, so the outcome
  // depends on arrival order (Roshi #11).
  return incoming.time >= timestamp_.time;
}

void LwwRegister::set(std::string value, Timestamp at) {
  if (empty() || wins(at)) {
    value_ = std::move(value);
    timestamp_ = at;
  }
}

void LwwRegister::merge(const LwwRegister& other) {
  if (other.empty()) return;
  set(other.value_, other.timestamp_);
}

util::Json LwwRegister::to_json() const {
  util::Json j = util::Json::object();
  j["v"] = value_;
  j["ts"] = timestamp_.to_json();
  return j;
}

LwwRegister LwwRegister::from_json(const util::Json& j, bool strict_tiebreak) {
  LwwRegister r(strict_tiebreak);
  r.value_ = j["v"].as_string();
  r.timestamp_ = Timestamp::from_json(j["ts"]);
  return r;
}

// ---------------------------------------------------------------------------
// MvRegister
// ---------------------------------------------------------------------------

VectorClock MvRegister::set(ReplicaId replica, std::string value) {
  Entry entry;
  entry.clock = observed_;
  entry.clock.tick(replica);
  entry.value = std::move(value);
  VectorClock clock = entry.clock;
  // a local write subsumes every current entry
  entries_.clear();
  insert_entry(std::move(entry));
  return clock;
}

void MvRegister::apply_remote(const std::string& value, const VectorClock& clock) {
  insert_entry(Entry{value, clock});
}

void MvRegister::insert_entry(Entry incoming) {
  // drop existing entries dominated by the incoming clock; skip the incoming
  // entry if it is dominated by (or equal to) an existing one
  for (const auto& e : entries_) {
    if (incoming.clock.before(e.clock) || incoming.clock == e.clock) {
      observed_.merge(incoming.clock);
      return;
    }
  }
  std::erase_if(entries_, [&](const Entry& e) { return e.clock.before(incoming.clock); });
  observed_.merge(incoming.clock);
  entries_.push_back(std::move(incoming));
}

std::vector<std::string> MvRegister::values() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& e : entries_) out.push_back(e.value);
  std::sort(out.begin(), out.end());
  return out;
}

void MvRegister::merge(const MvRegister& other) {
  for (const auto& e : other.entries_) insert_entry(e);
  observed_.merge(other.observed_);
}

util::Json MvRegister::to_json() const {
  util::Json arr = util::Json::array();
  for (const auto& v : values()) arr.push_back(v);
  return arr;
}

}  // namespace erpi::crdt
