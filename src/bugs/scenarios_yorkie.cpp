// Yorkie bug benchmarks (Table 1: Yorkie-1/#676, Yorkie-2/#663).
#include "subjects/yorkie.hpp"

#include "bugs/scenarios.hpp"

namespace erpi::bugs::detail {

namespace {
constexpr net::ReplicaId A = 0;
constexpr net::ReplicaId B = 1;
}  // namespace

std::vector<BugScenario> yorkie_bugs() {
  std::vector<BugScenario> out;

  // -------------------------------------------------------------------------
  // Yorkie-1 (issue #676): "Document doesn't converge when using
  // Array.MoveAfter" — 17 events. Concurrent MoveAfter ops on the same
  // element resolve by arrival order instead of LWW, so the replicas' lists
  // end up in different orders despite having applied the same operations.
  // -------------------------------------------------------------------------
  {
    BugScenario bug;
    bug.name = "Yorkie-1";
    bug.issue_number = 676;
    bug.event_count = 17;
    bug.status = "open";
    bug.reason = "-";
    bug.make_subject = [] {
      subjects::Yorkie::Flags flags;
      flags.move_after_fixed = false;
      return std::make_unique<subjects::Yorkie>(2, flags);
    };
    bug.workload = [](proxy::RdlProxy& p) {
      const auto push = [&](net::ReplicaId r, const char* v) {
        p.update(r, "list_push", jobj({{"key", "items"}, {"value", v}}));
      };
      push(A, "a");       // e0
      push(A, "b");       // e1
      push(A, "c");       // e2
      push(A, "d");       // e3
      p.sync_req(A, B);   // e4
      p.exec_sync(A, B);  // e5
      push(A, "e");       // e6
      p.sync_req(A, B);   // e7
      p.exec_sync(A, B);  // e8
      p.query(A, "snapshot", util::Json::object());  // e9
      p.update(A, "move_after",
               jobj({{"key", "items"}, {"from", 0}, {"to", 2}}));  // e10
      p.sync_req(A, B);                                            // e11
      p.exec_sync(A, B);                                           // e12
      p.update(B, "move_after",
               jobj({{"key", "items"}, {"from", 0}, {"to", 3}}));  // e13
      p.sync_req(B, A);                                            // e14
      p.exec_sync(B, A);                                           // e15
      p.query(B, "snapshot", util::Json::object());                // e16
    };
    bug.assertions = [] {
      return core::AssertionList{
          core::converge_if_same_witness({A, B}, {"seen"}, {"doc"}),
          core::consistent_across_interleavings_if_same_witness(B, {"seen"}, {"doc"})};
    };
    bug.configure = [](core::Session::Config& config) {
      core::ReplicaSpecificPruner::Options rs;
      rs.replica = B;
      rs.observation_event = 16;
      config.replica_specific = rs;
    };
    out.push_back(std::move(bug));
  }

  // -------------------------------------------------------------------------
  // Yorkie-2 (issue #663): "Modify the set operation to handle nested object
  // values" — 22 events. A remote Set whose value is an object *merges* into
  // an existing object instead of replacing it; a read that lands inside the
  // window between the merge and the next overwrite observes a document
  // state that no correct LWW execution could produce (keys from both
  // writers combined).
  // -------------------------------------------------------------------------
  {
    BugScenario bug;
    bug.name = "Yorkie-2";
    bug.issue_number = 663;
    bug.event_count = 22;
    bug.status = "closed";
    bug.reason = "misconception";
    bug.make_subject = [] {
      subjects::Yorkie::Flags flags;
      flags.nested_set_fixed = false;
      return std::make_unique<subjects::Yorkie>(2, flags);
    };
    bug.workload = [](proxy::RdlProxy& p) {
      util::Json objY = util::Json::object();
      objY["y"] = 2;
      util::Json objX = util::Json::object();
      objX["x"] = 1;
      const auto noise = [&](net::ReplicaId r, const char* key, int v) {
        p.update(r, "set", jobj({{"key", key}, {"value", v}}));
      };
      p.update(B, "set", jobj({{"key", "k"}, {"value", objY}}));       // e0
      p.sync_req(B, A);                                                // e1
      p.exec_sync(B, A);                                               // e2
      p.update(A, "set", jobj({{"key", "other"}, {"value", "pad"}}));  // e3
      p.update(A, "set", jobj({{"key", "k"}, {"value", objX}}));       // e4
      noise(B, "n1", 1);                                               // e5
      noise(B, "n2", 2);                                               // e6
      noise(B, "n3", 3);                                               // e7
      noise(A, "n4", 4);                                               // e8
      noise(A, "n5", 5);                                               // e9
      noise(B, "n6", 6);                                               // e10
      noise(A, "n7", 7);                                               // e11
      noise(B, "n8", 8);                                               // e12
      p.sync_req(A, B);                                                // e13
      p.exec_sync(A, B);  // e14: B merges {x:1} into {y:2} (the bug)
      // the app settles "k" through a short sequence of rewrites; a read
      // only observes the merge if it lands before all of them
      p.update(B, "set", jobj({{"key", "k"}, {"value", "settle1"}}));  // e15
      p.update(B, "set", jobj({{"key", "k"}, {"value", "settle2"}}));  // e16
      p.update(B, "set", jobj({{"key", "k"}, {"value", "settled"}}));  // e17
      p.sync_req(B, A);                                                // e18
      p.exec_sync(B, A);                                               // e19
      p.query(A, "get", jobj({{"key", "k"}}));                         // e20
      p.query(B, "get", jobj({{"key", "k"}}));                         // e21
    };
    bug.assertions = [] {
      // The reported symptom: a fully synchronized document in which a read
      // observed a "k" combining both writers' keys — a state no correct
      // LWW-replace execution can produce.
      return core::AssertionList{core::custom(
          "nested_set_replaces", [](const core::TestContext& ctx) {
            // only consider executions that ended fully delivered, like the
            // user's report (both replicas saw every operation)
            const util::Json sa = ctx.rdl.replica_state(A);
            const util::Json sb = ctx.rdl.replica_state(B);
            if (!(core::json_at(sa, {"seen"}) == core::json_at(sb, {"seen"}))) {
              return util::Status::ok();
            }
            const auto check = [](const util::Json& k,
                                  const std::string& where) -> util::Status {
              if (!k.is_object()) return util::Status::ok();
              if (k.contains("x") && k.contains("y")) {
                return util::Status::fail("nested Set merged instead of replacing at " +
                                          where + ": " + k.dump());
              }
              return util::Status::ok();
            };
            for (const int query_event : {20, 21}) {
              const auto pos = ctx.interleaving.position_of(query_event);
              if (!pos || !ctx.results[*pos]) continue;
              if (auto st = check(ctx.results[*pos].value(),
                                  "query ev" + std::to_string(query_event));
                  !st) {
                return st;
              }
            }
            for (const net::ReplicaId replica : {A, B}) {
              const util::Json state = ctx.rdl.replica_state(replica);
              if (auto st = check(core::json_at(state, {"doc", "k"}),
                                  "replica " + std::to_string(replica));
                  !st) {
                return st;
              }
            }
            return util::Status::ok();
          })};
    };
    bug.configure = [](core::Session::Config& config) {
      core::ReplicaSpecificPruner::Options rs;
      rs.replica = B;
      rs.observation_event = 21;
      config.replica_specific = rs;
      // the noise writes touch distinct keys and commute
      config.independence.push_back({{5, 6, 7}, {}});
      config.independence.push_back({{8, 9}, {}});
      config.independence.push_back({{10, 11, 12}, {}});
    };
    out.push_back(std::move(bug));
  }

  return out;
}

}  // namespace erpi::bugs::detail
