#include "bugs/registry.hpp"

#include <stdexcept>

#include "bugs/scenarios.hpp"
#include "faults/explorer.hpp"

namespace erpi::bugs {

const std::vector<BugScenario>& all_bugs() {
  static const std::vector<BugScenario> bugs = [] {
    std::vector<BugScenario> out;
    for (auto&& bug : detail::roshi_bugs()) out.push_back(std::move(bug));
    for (auto&& bug : detail::orbitdb_bugs()) out.push_back(std::move(bug));
    for (auto&& bug : detail::replicadb_bugs()) out.push_back(std::move(bug));
    for (auto&& bug : detail::yorkie_bugs()) out.push_back(std::move(bug));
    return out;
  }();
  return bugs;
}

const std::vector<BugScenario>& storage_bugs() {
  static const std::vector<BugScenario> bugs = detail::storage_bugs();
  return bugs;
}

const BugScenario& find_bug(const std::string& name) {
  for (const auto& bug : all_bugs()) {
    if (bug.name == name) return bug;
  }
  for (const auto& bug : storage_bugs()) {
    if (bug.name == name) return bug;
  }
  throw std::invalid_argument("unknown bug scenario: " + name);
}

BugRunResult run_bug(const BugScenario& bug, core::ExplorationMode mode,
                     uint64_t max_interleavings, uint64_t random_seed,
                     uint64_t resource_budget_bytes, uint64_t dfs_branch_seed) {
  auto subject = bug.make_subject();
  proxy::RdlProxy proxy(*subject);

  core::Session::Config config;
  config.mode = mode;
  config.replay.max_interleavings = max_interleavings;
  config.replay.stop_on_violation = true;
  config.replay.resource_budget_bytes = resource_budget_bytes;
  config.random_seed = random_seed;
  config.dfs_branch_seed = dfs_branch_seed;
  if (bug.configure) bug.configure(config);
  if (mode != core::ExplorationMode::ErPi) {
    // Baselines explore the raw n! universe with no pruning (paper §6.3).
    config.replica_specific.reset();
    config.independence.clear();
    config.failed_ops.clear();
    config.spec_groups.clear();
  }
  if (bug.storage_catalog) {
    // Fault sweeps run through the parallel scheduler, whose worker pool
    // clones the fixture from the factory even at parallelism 1.
    config.subject_factory = bug.make_subject;
  }

  core::Session session(proxy, config);
  session.start();
  bug.workload(proxy);

  BugRunResult result;
  if (bug.storage_catalog) {
    result.report = faults::explore_with_faults(
        session,
        [&bug](proxy::Rdl&) {
          return bug.assertions ? bug.assertions() : core::AssertionList{};
        },
        *bug.storage_catalog);
  } else {
    result.report = session.end(bug.assertions());
  }
  result.pruning = session.pruning_report();
  return result;
}

}  // namespace erpi::bugs
