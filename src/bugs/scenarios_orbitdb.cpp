// OrbitDB bug benchmarks (Table 1: OrbitDB-1/#513, -2/#512, -3/#1153,
// -4/#583, -5/#557).
#include "subjects/orbitdb.hpp"

#include "bugs/scenarios.hpp"

namespace erpi::bugs::detail {

namespace {
constexpr net::ReplicaId A = 0;
constexpr net::ReplicaId B = 1;

util::Json heads_mode() { return jobj({{"mode", "heads"}}); }
util::Json entries_mode() { return jobj({{"mode", "entries"}}); }
}  // namespace

std::vector<BugScenario> orbitdb_bugs() {
  std::vector<BugScenario> out;

  // -------------------------------------------------------------------------
  // OrbitDB-1 (issue #513): "Ordering tie breaker can cause undefined
  // ordering" — 12 events. Without the identity tie-break, entries appended
  // concurrently at equal Lamport clocks order by arrival and the replicas'
  // logs diverge.
  // -------------------------------------------------------------------------
  {
    BugScenario bug;
    bug.name = "OrbitDB-1";
    bug.issue_number = 513;
    bug.event_count = 12;
    bug.status = "open";
    bug.reason = "-";
    bug.make_subject = [] {
      subjects::OrbitDb::Flags flags;
      flags.log_flags.identity_tiebreak = false;
      return std::make_unique<subjects::OrbitDb>(2, flags);
    };
    bug.workload = [](proxy::RdlProxy& p) {
      p.update(A, "add", jobj({{"payload", "p1"}}));  // e0
      p.sync_req(A, B);                               // e1
      p.exec_sync(A, B);                              // e2
      p.update(B, "add", jobj({{"payload", "q1"}}));  // e3
      p.sync_req(B, A);                               // e4
      p.exec_sync(B, A);                              // e5
      p.update(A, "add", jobj({{"payload", "p2"}}));  // e6
      p.sync_req(A, B);                               // e7
      p.exec_sync(A, B);                              // e8
      p.update(B, "add", jobj({{"payload", "q2"}}));  // e9
      p.sync_req(B, A);                               // e10
      p.exec_sync(B, A);                              // e11
    };
    bug.assertions = [] {
      return core::AssertionList{
          core::converge_if_same_witness({A, B}, {"seen"}, {"log"}),
          core::consistent_across_interleavings_if_same_witness(A, {"seen"}, {"log"}),
          core::consistent_across_interleavings_if_same_witness(B, {"seen"}, {"log"})};
    };
    bug.configure = [](core::Session::Config& config) {
      core::ReplicaSpecificPruner::Options rs;
      rs.replica = A;
      config.replica_specific = rs;
    };
    out.push_back(std::move(bug));
  }

  // -------------------------------------------------------------------------
  // OrbitDB-2 (issue #512): "Lamport clock can be set far into future making
  // db progress halt" — 8 events. A poisoned far-future clock is rejected by
  // the receiver's drift validation, wedging replication — but only in
  // interleavings where the poisoned append slips in front of the sync.
  // -------------------------------------------------------------------------
  {
    BugScenario bug;
    bug.name = "OrbitDB-2";
    bug.issue_number = 512;
    bug.event_count = 8;
    bug.status = "open";
    bug.reason = "-";
    bug.make_subject = [] {
      subjects::OrbitDb::Flags flags;
      flags.log_flags.reject_future_clocks = true;
      flags.log_flags.max_clock_drift = 1000;
      return std::make_unique<subjects::OrbitDb>(2, flags);
    };
    bug.workload = [](proxy::RdlProxy& p) {
      p.update(A, "add", jobj({{"payload", "x"}}));                                  // e0
      p.sync_req(A, B);                                                              // e1
      p.exec_sync(A, B);                                                             // e2
      p.update(A, "add_with_clock",
               jobj({{"payload", "poison"}, {"clock", int64_t{1'000'000'000}}}));    // e3
      p.update(B, "add", jobj({{"payload", "y"}}));                                  // e4
      p.sync_req(B, A);                                                              // e5
      p.exec_sync(B, A);                                                             // e6
      p.query(A, "get", jobj({{"key", "unused"}}));                                  // e7
    };
    bug.assertions = [] {
      return core::AssertionList{core::no_failure_matching("too far ahead")};
    };
    bug.configure = [](core::Session::Config& config) {
      core::ReplicaSpecificPruner::Options rs;
      rs.replica = B;
      config.replica_specific = rs;
    };
    out.push_back(std::move(bug));
  }

  // -------------------------------------------------------------------------
  // OrbitDB-3 (issue #1153): "Could not append entry: although write access
  // is granted" — 15 events. Entries from a newly granted writer are
  // rejected at replicas that have not yet executed the grant locally.
  // -------------------------------------------------------------------------
  {
    BugScenario bug;
    bug.name = "OrbitDB-3";
    bug.issue_number = 1153;
    bug.event_count = 15;
    bug.status = "closed";
    bug.reason = "misuse";
    bug.make_subject = [] {
      subjects::OrbitDb::Flags flags;
      flags.buffer_unauthorized = false;
      return std::make_unique<subjects::OrbitDb>(2, flags);
    };
    bug.workload = [](proxy::RdlProxy& p) {
      const std::string idA = subjects::OrbitDb::identity_of(A);
      const std::string idB = subjects::OrbitDb::identity_of(B);
      p.update(A, "grant", jobj({{"identity", idA}}));  // e0
      p.update(B, "grant", jobj({{"identity", idA}}));  // e1
      p.update(A, "add", jobj({{"payload", "p1"}}));    // e2
      p.sync_req(A, B);                                 // e3
      p.exec_sync(A, B);                                // e4
      p.update(A, "add", jobj({{"payload", "p2"}}));    // e5
      p.sync_req(A, B);                                 // e6
      p.exec_sync(A, B);                                // e7
      p.update(A, "grant", jobj({{"identity", idB}}));  // e8
      p.update(B, "grant", jobj({{"identity", idB}}));  // e9
      p.update(B, "add", jobj({{"payload", "q1"}}));    // e10
      p.sync_req(B, A);                                 // e11
      p.exec_sync(B, A);                                // e12
      p.query(A, "verify", util::Json::object());       // e13
      p.query(B, "verify", util::Json::object());       // e14
    };
    bug.assertions = [] {
      return core::AssertionList{core::custom(
          "granted_writer_can_append", [](const core::TestContext& ctx) {
            // the report is about a *replicating* database denying a granted
            // writer: require A's entries to have reached B
            const util::Json state = ctx.rdl.replica_state(B);
            const util::Json& log = core::json_at(state, {"log"});
            bool has_p1 = false;
            bool has_p2 = false;
            if (log.is_array()) {
              for (const auto& payload : log.as_array()) {
                if (payload.as_string().find("p1") != std::string::npos) has_p1 = true;
                if (payload.as_string().find("p2") != std::string::npos) has_p2 = true;
              }
            }
            if (!has_p1 || !has_p2) return util::Status::ok();
            for (size_t pos = 0; pos < ctx.results.size(); ++pos) {
              if (ctx.results[pos]) continue;
              const std::string& message = ctx.results[pos].error().message;
              if (message.find("write access denied for id1") != std::string::npos) {
                return util::Status::fail(message);
              }
            }
            return util::Status::ok();
          })};
    };
    bug.configure = [](core::Session::Config& config) {
      core::ReplicaSpecificPruner::Options rs;
      rs.replica = B;
      config.replica_specific = rs;
    };
    out.push_back(std::move(bug));
  }

  // -------------------------------------------------------------------------
  // OrbitDB-4 (issue #583): "Head hash didn't match the contents" — 18
  // events, three replicas. Head announcements and entry shipment travel as
  // separate messages on the C -> A hop; when an append at C slips between
  // the entry snapshot and the head announcement, A ends up holding a head
  // hash that resolves to nothing. The symptom only counts once the ring
  // (A -> B -> C) has actually replicated the upstream entries — matching
  // the reported scenario of an otherwise-healthy database.
  // -------------------------------------------------------------------------
  {
    BugScenario bug;
    bug.name = "OrbitDB-4";
    bug.issue_number = 583;
    bug.event_count = 18;
    bug.status = "closed";
    bug.reason = "misconception";
    bug.make_subject = [] {
      return std::make_unique<subjects::OrbitDb>(3, subjects::OrbitDb::Flags());
    };
    bug.workload = [](proxy::RdlProxy& p) {
      constexpr net::ReplicaId C = 2;
      p.update(A, "add", jobj({{"payload", "x1"}}));  // e0
      p.sync_req(A, B);                               // e1
      p.exec_sync(A, B);                              // e2
      p.update(A, "add", jobj({{"payload", "x2"}}));  // e3
      p.sync_req(A, B);                               // e4
      p.exec_sync(A, B);                              // e5
      p.update(C, "add", jobj({{"payload", "z1"}}));  // e6
      p.update(C, "add", jobj({{"payload", "z2"}}));  // e7
      p.update(B, "add", jobj({{"payload", "y1"}}));  // e8
      p.update(B, "add", jobj({{"payload", "y2"}}));  // e9
      p.sync_req(B, C);                               // e10  ring: B -> C
      p.exec_sync(B, C);                              // e11
      p.sync_req(C, A, heads_mode());                 // e12
      p.sync_req(C, A, entries_mode());               // e13
      p.exec_sync(C, A);                              // e14
      p.exec_sync(C, A);                              // e15
      p.query(A, "check_head", jobj({{"peer", int64_t{2}}}));  // e16
      p.query(C, "verify", util::Json::object());     // e17
    };
    bug.assertions = [] {
      return core::AssertionList{core::custom(
          "head_resolves_on_healthy_db", [](const core::TestContext& ctx) {
            // The reported failure is a *persistent* mismatch on a database
            // that had been replicating normally: at the end of the
            // execution, every head a peer announced to A must resolve to an
            // entry A actually holds. (A transient miss that later entries
            // repair is not the bug.)
            const util::Json state = ctx.rdl.replica_state(A);
            const util::Json& log = core::json_at(state, {"log"});
            if (!log.is_array() || log.size() < 5) return util::Status::ok();
            const util::Json& hashes = core::json_at(state, {"hashes"});
            const util::Json& announced = core::json_at(state, {"announced"});
            if (!announced.is_object()) return util::Status::ok();
            for (const auto& [peer, heads] : announced.as_object()) {
              for (const auto& head : heads.as_array()) {
                bool found = false;
                for (const auto& hash : hashes.as_array()) {
                  if (hash == head) {
                    found = true;
                    break;
                  }
                }
                if (!found) {
                  return util::Status::fail(
                      "head hash " + head.as_string().substr(0, 8) +
                      " announced by replica " + peer +
                      " didn't match the contents (entry missing)");
                }
              }
            }
            return util::Status::ok();
          })};
    };
    bug.configure = [](core::Session::Config& config) {
      core::ReplicaSpecificPruner::Options rs;
      rs.replica = A;
      rs.observation_event = 14;
      config.replica_specific = rs;
    };
    out.push_back(std::move(bug));
  }

  // -------------------------------------------------------------------------
  // OrbitDB-5 (issue #557): "repo folder keeps getting locked" — 24 events.
  // Replication that repeatedly delivers fresh entries while the db is open
  // makes the close path leak the repo lock; a later open then fails on the
  // stale lock file. Counting only fully synchronized executions mirrors
  // the reports (databases that replicated normally yet stayed locked).
  // -------------------------------------------------------------------------
  {
    BugScenario bug;
    bug.name = "OrbitDB-5";
    bug.issue_number = 557;
    bug.event_count = 24;
    bug.status = "closed";
    bug.reason = "misconception";
    bug.make_subject = [] {
      subjects::OrbitDb::Flags flags;
      flags.release_lock_on_sync_fixed = false;
      return std::make_unique<subjects::OrbitDb>(2, flags);
    };
    bug.workload = [](proxy::RdlProxy& p) {
      p.update(A, "add", jobj({{"payload", "a1"}}));  // e0
      p.update(A, "add", jobj({{"payload", "a2"}}));  // e1
      p.update(A, "add", jobj({{"payload", "a3"}}));  // e2
      p.sync_req(A, B);                               // e3
      p.exec_sync(A, B);                              // e4
      p.update(B, "add", jobj({{"payload", "b1"}}));  // e5
      p.sync_req(A, B);                               // e6   (no fresh news)
      p.exec_sync(A, B);                              // e7
      p.update(B, "open", util::Json::object());      // e8
      p.update(B, "add", jobj({{"payload", "b2"}}));  // e9
      p.update(B, "close", util::Json::object());     // e10
      p.update(A, "add", jobj({{"payload", "a4"}}));  // e11
      p.sync_req(A, B);                               // e12  (carries a4)
      p.exec_sync(A, B);                              // e13
      p.update(B, "add", jobj({{"payload", "b3"}}));  // e14
      p.update(B, "add", jobj({{"payload", "b4"}}));  // e15
      p.sync_req(B, A);                               // e16
      p.exec_sync(B, A);                              // e17
      p.update(A, "add", jobj({{"payload", "a5"}}));  // e18
      p.sync_req(A, B);                               // e19
      p.exec_sync(A, B);                              // e20
      p.sync_req(B, A);                               // e21
      p.exec_sync(B, A);                              // e22
      p.update(B, "open", util::Json::object());      // e23  fails if leaked
    };
    bug.assertions = [] {
      return core::AssertionList{core::custom(
          "open_succeeds_after_replication", [](const core::TestContext& ctx) {
            // count the stale-lock symptom only on executions that ended
            // fully replicated, like the user reports
            const util::Json sa = ctx.rdl.replica_state(A);
            const util::Json sb = ctx.rdl.replica_state(B);
            if (!(core::json_at(sa, {"seen"}) == core::json_at(sb, {"seen"}))) {
              return util::Status::ok();
            }
            for (size_t pos = 0; pos < ctx.results.size(); ++pos) {
              if (ctx.results[pos]) continue;
              const std::string& message = ctx.results[pos].error().message;
              if (message.find("stale lock file") != std::string::npos) {
                return util::Status::fail(message);
              }
            }
            return util::Status::ok();
          })};
    };
    bug.configure = [](core::Session::Config& config) {
      core::ReplicaSpecificPruner::Options rs;
      rs.replica = B;
      rs.observation_event = 23;
      config.replica_specific = rs;
      // A's initial appends commute w.r.t. the lock-leak detector
      config.independence.push_back({{0, 1, 2}, {}});
      config.independence.push_back({{14, 15}, {}});
    };
    out.push_back(std::move(bug));
  }

  return out;
}

}  // namespace erpi::bugs::detail
