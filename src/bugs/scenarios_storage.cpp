// Planted durable-log recovery bugs (DESIGN.md §13). Unlike the Table 1
// scenarios these carry no assertions: detection is the "durable-log-recovery"
// violation the fault runtime pushes when a replica silently diverges while
// recovering from a damaged log. Each scenario's storage_catalog enables
// exactly one damage sweep, so the bug reproduces only when storage plans are
// in the catalog — under the fault-free baseline (or any network/crash plan)
// the same workload is clean.
#include "bugs/scenarios.hpp"
#include "subjects/orbitdb.hpp"
#include "subjects/roshi.hpp"

namespace erpi::bugs::detail {

namespace {
constexpr net::ReplicaId A = 0;
constexpr net::ReplicaId B = 1;

/// A catalog with every network/crash sweep off: baseline "none" plan plus
/// only the storage sweep the scenario turns on.
faults::CatalogOptions storage_only_catalog() {
  faults::CatalogOptions catalog;
  catalog.max_drops = 0;
  catalog.max_duplicates = 0;
  catalog.max_partition_windows = 0;
  catalog.max_crash_restarts = 0;
  return catalog;
}
}  // namespace

std::vector<BugScenario> storage_bugs() {
  std::vector<BugScenario> out;

  // -------------------------------------------------------------------------
  // Roshi-S1: duplicated WAL segment replayed non-idempotently — 4 events.
  // A inserts then deletes the same member; a DuplicateSegment plan re-appends
  // the insert record after the delete in file order. The honest recovery
  // policy skips the duplicate seqno; the buggy replay applies it again and,
  // without the LWW guard, the stale insert wins and the member resurrects.
  // -------------------------------------------------------------------------
  {
    BugScenario bug;
    bug.name = "Roshi-S1";
    bug.issue_number = 0;
    bug.event_count = 4;
    bug.status = "planted";
    bug.reason = "storage";
    bug.make_subject = [] {
      subjects::Roshi::Flags flags;
      flags.idempotent_wal_replay = false;
      return std::make_unique<subjects::Roshi>(2, flags);
    };
    bug.workload = [](proxy::RdlProxy& p) {
      p.update(A, "insert", jobj({{"key", "s"}, {"member", "x"}, {"ts", 1.0}}));  // e0
      p.update(A, "delete", jobj({{"key", "s"}, {"member", "x"}, {"ts", 2.0}}));  // e1
      p.sync_req(A, B);                                                           // e2
      p.exec_sync(A, B);                                                          // e3
    };
    bug.assertions = [] { return core::AssertionList{}; };
    auto catalog = storage_only_catalog();
    catalog.max_duplicate_segments = 2;
    catalog.duplicate_segment_entries = 1;
    bug.storage_catalog = catalog;
    out.push_back(std::move(bug));
  }

  // -------------------------------------------------------------------------
  // OrbitDB-S1: torn log tail accepted as complete — 4 events. A appends two
  // entries; a TornTail plan truncates the last log record. The honest policy
  // trusts the committed high-water mark and reports the gap as
  // missing_entries; the buggy recovery trusts only the entries present, so
  // the shortened log replays "cleanly" into a silently diverged head.
  // -------------------------------------------------------------------------
  {
    BugScenario bug;
    bug.name = "OrbitDB-S1";
    bug.issue_number = 0;
    bug.event_count = 4;
    bug.status = "planted";
    bug.reason = "storage";
    bug.make_subject = [] {
      subjects::OrbitDb::Flags flags;
      flags.recovery_checks_committed = false;
      return std::make_unique<subjects::OrbitDb>(2, flags);
    };
    bug.workload = [](proxy::RdlProxy& p) {
      p.update(A, "add", jobj({{"payload", "p1"}}));  // e0
      p.update(A, "add", jobj({{"payload", "p2"}}));  // e1
      p.sync_req(A, B);                               // e2
      p.exec_sync(A, B);                              // e3
    };
    bug.assertions = [] { return core::AssertionList{}; };
    auto catalog = storage_only_catalog();
    catalog.max_torn_tails = 2;
    catalog.torn_tail_entries = 1;
    bug.storage_catalog = catalog;
    out.push_back(std::move(bug));
  }

  return out;
}

}  // namespace erpi::bugs::detail
