#include "bugs/misconceptions.hpp"

#include "bugs/scenarios.hpp"
#include "subjects/crdt_collection.hpp"
#include "subjects/orbitdb.hpp"
#include "subjects/replicadb.hpp"
#include "subjects/roshi.hpp"
#include "subjects/yorkie.hpp"

namespace erpi::bugs {

namespace {

using detail::jobj;

constexpr net::ReplicaId A = 0;
constexpr net::ReplicaId B = 1;

MisconceptionScenario cell(std::string subject, int id, BugScenario scenario) {
  MisconceptionScenario out;
  out.subject = std::move(subject);
  out.misconception = id;
  out.scenario = std::move(scenario);
  return out;
}

// ---------------------------------------------------------------------------
// Roshi
// ---------------------------------------------------------------------------

BugScenario roshi_m1() {
  BugScenario s;
  s.name = "Roshi-m1";
  s.make_subject = [] {
    // Seed #1: conflict resolution disabled — same-timestamp operations
    // apply in arrival order, as if the network's delivery order were
    // trusted to be causal.
    subjects::Roshi::Flags flags;
    flags.lww_tiebreak_fixed = false;
    return std::make_unique<subjects::Roshi>(2, flags);
  };
  s.workload = [](proxy::RdlProxy& p) {
    p.update(A, "insert", jobj({{"key", "k"}, {"member", "x"}, {"ts", 5.0}}));
    p.update(B, "delete", jobj({{"key", "k"}, {"member", "x"}, {"ts", 5.0}}));
    p.sync(A, B);
    p.sync(B, A);
  };
  s.assertions = [] {
    return core::AssertionList{
        core::consistent_across_interleavings_if_same_witness(B, {"history"}, {}),
        core::converge_if_same_witness({A, B}, {"history"}, {})};
  };
  return s;
}

BugScenario roshi_m2() {
  BugScenario s;
  s.name = "Roshi-m2";
  s.make_subject = [] {
    subjects::Roshi::Flags flags;
    flags.stable_select_order = false;  // Go-map iteration order
    return std::make_unique<subjects::Roshi>(2, flags);
  };
  s.workload = [](proxy::RdlProxy& p) {
    p.update(A, "insert", jobj({{"key", "k1"}, {"member", "a"}, {"ts", 1.0}}));
    p.update(B, "insert", jobj({{"key", "k2"}, {"member", "b"}, {"ts", 2.0}}));
    p.sync(A, B);
    p.sync(B, A);
    p.update(A, "insert", jobj({{"key", "k3"}, {"member", "c"}, {"ts", 3.0}}));
    p.sync(A, B);
    p.query(A, "select_all", util::Json::object());  // event 9
  };
  s.assertions = [] {
    return core::AssertionList{core::query_stable_given_witness(9, A, {"history"})};
  };
  return s;
}

BugScenario roshi_m3() {
  BugScenario s;
  s.name = "Roshi-m3";
  s.make_subject = [] { return std::make_unique<subjects::Roshi>(2); };
  s.workload = [](proxy::RdlProxy& p) {
    // item "m" lives in stream k1; both residents concurrently "move" it
    // (delete + re-insert) to different streams
    p.update(A, "insert", jobj({{"key", "k1"}, {"member", "m"}, {"ts", 1.0}}));
    p.sync(A, B);
    p.update(A, "delete", jobj({{"key", "k1"}, {"member", "m"}, {"ts", 2.0}}));
    p.update(A, "insert", jobj({{"key", "k2"}, {"member", "m"}, {"ts", 3.0}}));
    p.update(B, "delete", jobj({{"key", "k1"}, {"member", "m"}, {"ts", 2.5}}));
    p.update(B, "insert", jobj({{"key", "k3"}, {"member", "m"}, {"ts", 3.5}}));
    p.sync(A, B);
    p.sync(B, A);
  };
  s.assertions = [] {
    return core::AssertionList{core::custom("no_cross_stream_duplication",
                                            [](const core::TestContext& ctx) {
      for (const net::ReplicaId replica : {A, B}) {
        const util::Json state = ctx.rdl.replica_state(replica);
        int live_streams = 0;
        for (const auto& [key, entry] : state.as_object()) {
          if (key == "history" || key == "order") continue;
          const util::Json& adds = entry["adds"];
          const util::Json& dels = entry["dels"];
          const bool live = adds.contains("m") &&
                            (!dels.contains("m") ||
                             adds["m"].as_double() >= dels["m"].as_double());
          if (live) ++live_streams;
        }
        if (live_streams > 1) {
          return util::Status::fail("item 'm' duplicated across " +
                                    std::to_string(live_streams) + " streams at replica " +
                                    std::to_string(replica));
        }
      }
      return util::Status::ok();
    })};
  };
  return s;
}

BugScenario roshi_m5() {
  BugScenario s;
  s.name = "Roshi-m5";
  s.make_subject = [] { return std::make_unique<subjects::Roshi>(2); };
  s.workload = [](proxy::RdlProxy& p) {
    // Seed #5: coordination stops after one round; the transmitted state
    // then depends on the interleaving.
    p.update(A, "insert", jobj({{"key", "k"}, {"member", "otb"}, {"ts", 1.0}}));
    p.sync(A, B);
    p.update(B, "delete", jobj({{"key", "k"}, {"member", "otb"}, {"ts", 2.0}}));
    p.sync(B, A);
    p.query(A, "select", jobj({{"key", "k"}}));
  };
  s.assertions = [] {
    return core::AssertionList{core::state_consistent_across_interleavings(A)};
  };
  return s;
}

// ---------------------------------------------------------------------------
// OrbitDB
// ---------------------------------------------------------------------------

BugScenario orbitdb_m1() {
  BugScenario s;
  s.name = "OrbitDB-m1";
  s.make_subject = [] {
    subjects::OrbitDb::Flags flags;
    flags.log_flags.identity_tiebreak = false;  // arrival-ordered ties
    return std::make_unique<subjects::OrbitDb>(2, flags);
  };
  s.workload = [](proxy::RdlProxy& p) {
    p.update(A, "add", jobj({{"payload", "p"}}));
    p.update(B, "add", jobj({{"payload", "q"}}));
    p.sync(A, B);
    p.sync(B, A);
  };
  s.assertions = [] {
    return core::AssertionList{
        core::converge_if_same_witness({A, B}, {"seen"}, {"log"}),
        core::consistent_across_interleavings_if_same_witness(A, {"seen"}, {"log"})};
  };
  return s;
}

BugScenario orbitdb_m5() {
  BugScenario s;
  s.name = "OrbitDB-m5";
  s.make_subject = [] { return std::make_unique<subjects::OrbitDb>(2); };
  s.workload = [](proxy::RdlProxy& p) {
    p.update(A, "add", jobj({{"payload", "p1"}}));
    p.update(B, "add", jobj({{"payload", "q1"}}));
    p.sync_req(A, B);
    p.exec_sync(A, B);
    p.update(A, "add", jobj({{"payload", "p2"}}));
    // coordination stops here: B never ships its state back, and A's p2
    // never leaves A — B's view now depends on when the one sync ran
  };
  s.assertions = [] {
    return core::AssertionList{core::state_consistent_across_interleavings(B)};
  };
  return s;
}

// ---------------------------------------------------------------------------
// ReplicaDB
// ---------------------------------------------------------------------------

BugScenario replicadb_m1() {
  BugScenario s;
  s.name = "ReplicaDB-m1";
  s.make_subject = [] {
    subjects::ReplicaDb::Flags flags;
    flags.version_resolution = false;  // arrival order decides
    return std::make_unique<subjects::ReplicaDb>(2, flags);
  };
  s.workload = [](proxy::RdlProxy& p) {
    p.update(A, "insert_source", jobj({{"id", "r"}, {"value", "va"}, {"ts", 1}}));
    p.update(B, "insert_source", jobj({{"id", "r"}, {"value", "vb"}, {"ts", 2}}));
    p.sync(A, B);
    p.sync(B, A);
  };
  s.assertions = [] {
    return core::AssertionList{
        core::converge_if_same_witness({A, B}, {"history"}, {"source"}),
        core::consistent_across_interleavings_if_same_witness(A, {"history"}, {"source"})};
  };
  return s;
}

// ---------------------------------------------------------------------------
// Yorkie
// ---------------------------------------------------------------------------

BugScenario yorkie_m1() {
  BugScenario s;
  s.name = "Yorkie-m1";
  s.make_subject = [] {
    subjects::Yorkie::Flags flags;
    flags.move_after_fixed = false;  // arrival-ordered concurrent moves
    return std::make_unique<subjects::Yorkie>(2, flags);
  };
  s.workload = [](proxy::RdlProxy& p) {
    p.update(A, "list_push", jobj({{"key", "l"}, {"value", "a"}}));
    p.update(A, "list_push", jobj({{"key", "l"}, {"value", "b"}}));
    p.update(A, "list_push", jobj({{"key", "l"}, {"value", "c"}}));
    p.sync(A, B);
    p.update(A, "move_after", jobj({{"key", "l"}, {"from", 0}, {"to", 2}}));
    p.update(B, "move_after", jobj({{"key", "l"}, {"from", 0}, {"to", 1}}));
    p.sync(A, B);
    p.sync(B, A);
  };
  s.assertions = [] {
    return core::AssertionList{core::converge_if_same_witness({A, B}, {"seen"}, {"doc"})};
  };
  return s;
}

BugScenario yorkie_m5() {
  BugScenario s;
  s.name = "Yorkie-m5";
  s.make_subject = [] { return std::make_unique<subjects::Yorkie>(2); };
  s.workload = [](proxy::RdlProxy& p) {
    p.update(A, "set", jobj({{"key", "title"}, {"value", "draft-A"}}));
    p.update(B, "set", jobj({{"key", "title"}, {"value", "draft-B"}}));
    p.sync_req(A, B);
    p.exec_sync(A, B);
    p.update(A, "set", jobj({{"key", "title"}, {"value", "final-A"}}));
    // no further coordination: B's title depends on the interleaving
  };
  s.assertions = [] {
    return core::AssertionList{core::state_consistent_across_interleavings(B)};
  };
  return s;
}

// ---------------------------------------------------------------------------
// CRDTs collection
// ---------------------------------------------------------------------------

BugScenario crdts_m1() {
  BugScenario s;
  s.name = "CRDTs-m1";
  s.make_subject = [] { return std::make_unique<subjects::CrdtCollection>(2); };
  s.workload = [](proxy::RdlProxy& p) {
    // the naive (resolution-free) list applies updates in arrival order
    p.update(A, "naive_append", jobj({{"value", "a"}}));
    p.update(B, "naive_append", jobj({{"value", "b"}}));
    p.sync(A, B);
    p.sync(B, A);
  };
  s.assertions = [] {
    return core::AssertionList{
        core::consistent_across_interleavings_if_same_witness(A, {"seen"},
                                                              {"naive_list"})};
  };
  return s;
}

BugScenario crdts_m2() {
  BugScenario s;
  s.name = "CRDTs-m2";
  s.make_subject = [] { return std::make_unique<subjects::CrdtCollection>(2); };
  s.workload = [](proxy::RdlProxy& p) {
    p.update(A, "naive_append", jobj({{"value", "x"}}));
    p.update(B, "naive_append", jobj({{"value", "y"}}));
    p.update(A, "naive_append", jobj({{"value", "z"}}));
    p.sync(A, B);
    p.sync(B, A);
  };
  s.assertions = [] {
    return core::AssertionList{core::list_order_consistent({A, B}, {"naive_list"})};
  };
  return s;
}

BugScenario crdts_m3() {
  BugScenario s;
  s.name = "CRDTs-m3";
  s.make_subject = [] { return std::make_unique<subjects::CrdtCollection>(2); };
  s.workload = [](proxy::RdlProxy& p) {
    p.update(A, "list_insert", jobj({{"index", 0}, {"value", "a"}}));
    p.update(A, "list_insert", jobj({{"index", 1}, {"value", "b"}}));
    p.update(A, "list_insert", jobj({{"index", 2}, {"value", "c"}}));
    p.sync(A, B);
    // both replicas naive-move "a" (delete + insert) concurrently
    p.update(A, "list_naive_move", jobj({{"from", 0}, {"to", 2}}));
    p.update(B, "list_naive_move", jobj({{"from", 0}, {"to", 1}}));
    p.sync(A, B);
    p.sync(B, A);
  };
  s.assertions = [] {
    return core::AssertionList{core::no_duplicates({A, B}, {"list"})};
  };
  return s;
}

BugScenario crdts_m4() {
  BugScenario s;
  s.name = "CRDTs-m4";
  s.make_subject = [] {
    subjects::CrdtCollection::Flags flags;
    flags.random_todo_ids = false;  // sequential max+1 minting
    return std::make_unique<subjects::CrdtCollection>(2, flags);
  };
  s.workload = [](proxy::RdlProxy& p) {
    p.update(A, "todo_create", jobj({{"text", "buy milk"}}));
    p.sync(A, B);
    p.update(B, "todo_create", jobj({{"text", "walk dog"}}));
    p.sync(B, A);
    p.update(A, "todo_create", jobj({{"text", "write tests"}}));
    p.sync(A, B);
  };
  s.assertions = [] {
    return core::AssertionList{core::custom("todo_ids_do_not_clash",
                                            [](const core::TestContext& ctx) {
      // a clash = the same id bound to different texts on different replicas
      const util::Json sa = ctx.rdl.replica_state(A);
      const util::Json sb = ctx.rdl.replica_state(B);
      const util::Json& ta = core::json_at(sa, {"todos"});
      const util::Json& tb = core::json_at(sb, {"todos"});
      if (!ta.is_object() || !tb.is_object()) return util::Status::ok();
      for (const auto& [id, text] : ta.as_object()) {
        if (tb.contains(id) && !(tb[id] == text)) {
          return util::Status::fail("to-do id " + id + " clashes: \"" +
                                    text.as_string() + "\" vs \"" +
                                    tb[id].as_string() + "\"");
        }
      }
      return util::Status::ok();
    })};
  };
  return s;
}

BugScenario crdts_m5() {
  BugScenario s;
  s.name = "CRDTs-m5";
  s.make_subject = [] { return std::make_unique<subjects::CrdtCollection>(2); };
  s.workload = [](proxy::RdlProxy& p) {
    // the motivating example's shape on the OR-set: report, report, resolve,
    // and a transmission whose content depends on coordination timing
    p.update(A, "set_add", jobj({{"element", "otb"}}));
    p.sync(A, B);
    p.update(B, "set_add", jobj({{"element", "ph"}}));
    p.sync(B, A);
    p.update(B, "set_remove", jobj({{"element", "otb"}}));
    p.sync(B, A);
    // A transmits (observed via final state); no further coordination
  };
  s.assertions = [] {
    return core::AssertionList{core::state_consistent_across_interleavings(A)};
  };
  return s;
}

}  // namespace

const std::vector<MisconceptionScenario>& all_misconceptions() {
  static const std::vector<MisconceptionScenario> cells = [] {
    std::vector<MisconceptionScenario> out;
    out.push_back(cell("Roshi", 1, roshi_m1()));
    out.push_back(cell("Roshi", 2, roshi_m2()));
    out.push_back(cell("Roshi", 3, roshi_m3()));
    out.push_back(cell("Roshi", 5, roshi_m5()));
    out.push_back(cell("OrbitDB", 1, orbitdb_m1()));
    out.push_back(cell("OrbitDB", 5, orbitdb_m5()));
    out.push_back(cell("ReplicaDB", 1, replicadb_m1()));
    out.push_back(cell("Yorkie", 1, yorkie_m1()));
    out.push_back(cell("Yorkie", 5, yorkie_m5()));
    out.push_back(cell("CRDTs", 1, crdts_m1()));
    out.push_back(cell("CRDTs", 2, crdts_m2()));
    out.push_back(cell("CRDTs", 3, crdts_m3()));
    out.push_back(cell("CRDTs", 4, crdts_m4()));
    out.push_back(cell("CRDTs", 5, crdts_m5()));
    return out;
  }();
  return cells;
}

bool detect_misconception(const MisconceptionScenario& cell, uint64_t max_interleavings) {
  auto subject = cell.scenario.make_subject();
  proxy::RdlProxy proxy(*subject);
  core::Session::Config config;
  config.mode = core::ExplorationMode::ErPi;
  config.replay.max_interleavings = max_interleavings;
  config.replay.stop_on_violation = true;
  if (cell.scenario.configure) cell.scenario.configure(config);

  core::Session session(proxy, config);
  session.start();
  cell.scenario.workload(proxy);
  const auto report = session.end(cell.scenario.assertions());
  return report.reproduced;
}

}  // namespace erpi::bugs
