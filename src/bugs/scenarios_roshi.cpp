// Roshi bug benchmarks (Table 1: Roshi-1/#18, Roshi-2/#11, Roshi-3/#40).
#include "subjects/roshi.hpp"

#include "bugs/scenarios.hpp"

namespace erpi::bugs::detail {

namespace {
constexpr net::ReplicaId A = 0;
constexpr net::ReplicaId B = 1;
}  // namespace

std::vector<BugScenario> roshi_bugs() {
  std::vector<BugScenario> out;

  // -------------------------------------------------------------------------
  // Roshi-1 (issue #18): "Incorrect deleted field in response" — 9 events.
  // A reports an issue, B deletes it; if the deletion synchronizes into A
  // before A's select, the buggy select still reports the member as live.
  // -------------------------------------------------------------------------
  {
    BugScenario bug;
    bug.name = "Roshi-1";
    bug.issue_number = 18;
    bug.event_count = 9;
    bug.status = "closed";
    bug.reason = "misconception";
    bug.make_subject = [] {
      subjects::Roshi::Flags flags;
      flags.deleted_field_fixed = false;
      return std::make_unique<subjects::Roshi>(2, flags);
    };
    bug.workload = [](proxy::RdlProxy& p) {
      p.update(A, "insert", jobj({{"key", "issues"}, {"member", "x"}, {"ts", 1.0}}));  // e0
      p.sync_req(A, B);                                                                // e1
      p.exec_sync(A, B);                                                               // e2
      p.update(B, "delete", jobj({{"key", "issues"}, {"member", "x"}, {"ts", 2.0}}));  // e3
      p.sync_req(B, A);                                                                // e4
      p.query(A, "select", jobj({{"key", "issues"}}));                                 // e5
      p.exec_sync(B, A);                                                               // e6
      p.update(A, "insert", jobj({{"key", "issues"}, {"member", "y"}, {"ts", 3.0}}));  // e7
      p.sync_req(A, B);                                                                // e8
    };
    bug.assertions = [] {
      return core::AssertionList{core::custom(
          "select_deleted_field_correct", [](const core::TestContext& ctx) {
            // If the delete (e6) executed at A before the select (e5), then
            // the select response must not list "x" as live.
            const auto exec_pos = ctx.interleaving.position_of(6);
            const auto sel_pos = ctx.interleaving.position_of(5);
            if (!exec_pos || !sel_pos || *exec_pos > *sel_pos) return util::Status::ok();
            const auto& result = ctx.results[*sel_pos];
            if (!result) return util::Status::ok();  // select itself failed
            for (const auto& row : result.value().as_array()) {
              if (row["member"].as_string() == "x" && !row["deleted"].as_bool()) {
                return util::Status::fail(
                    "select reported deleted member 'x' as live (deleted=false)");
              }
            }
            return util::Status::ok();
          })};
    };
    bug.configure = [](core::Session::Config& config) {
      core::ReplicaSpecificPruner::Options rs;
      rs.replica = A;
      rs.observation_event = 5;  // the select
      config.replica_specific = rs;
    };
    out.push_back(std::move(bug));
  }

  // -------------------------------------------------------------------------
  // Roshi-2 (issue #11): "CRDT semantics violated if same timestamp?" —
  // 10 events. Equal-timestamp insert/delete resolve by arrival order, so
  // the same delivered operations can leave a replica in different states
  // depending on the interleaving.
  // -------------------------------------------------------------------------
  {
    BugScenario bug;
    bug.name = "Roshi-2";
    bug.issue_number = 11;
    bug.event_count = 10;
    bug.status = "closed";
    bug.reason = "RDL issue";
    bug.make_subject = [] {
      subjects::Roshi::Flags flags;
      flags.lww_tiebreak_fixed = false;
      return std::make_unique<subjects::Roshi>(2, flags);
    };
    bug.workload = [](proxy::RdlProxy& p) {
      p.update(A, "insert", jobj({{"key", "s"}, {"member", "x"}, {"ts", 5.0}}));  // e0
      p.sync_req(A, B);                                                           // e1
      p.exec_sync(A, B);                                                          // e2
      p.update(B, "delete", jobj({{"key", "s"}, {"member", "x"}, {"ts", 5.0}}));  // e3
      p.sync_req(B, A);                                                           // e4
      p.exec_sync(B, A);                                                          // e5
      p.update(A, "insert", jobj({{"key", "s"}, {"member", "z"}, {"ts", 7.0}}));  // e6
      p.sync_req(A, B);                                                           // e7
      p.exec_sync(A, B);                                                          // e8
      p.query(B, "select", jobj({{"key", "s"}}));                                 // e9
    };
    bug.assertions = [] {
      return core::AssertionList{
          core::consistent_across_interleavings_if_same_witness(B, {"history"}, {}),
          core::consistent_across_interleavings_if_same_witness(A, {"history"}, {}),
          core::converge_if_same_witness({A, B}, {"history"}, {})};
    };
    bug.configure = [](core::Session::Config& config) {
      core::ReplicaSpecificPruner::Options rs;
      rs.replica = B;
      rs.observation_event = 9;
      config.replica_specific = rs;
    };
    out.push_back(std::move(bug));
  }

  // -------------------------------------------------------------------------
  // Roshi-3 (issue #40): "roshi-server golang app select and map order?" —
  // 21 events, three replicas synchronized in a ring (A -> B -> C -> A).
  // The buggy select_all assembles its response in a Go-map-like order that
  // is sensitive to each replica's arrival history: a key first written
  // locally *after* a remote merge hashes into a different bucket region.
  // Two replicas holding identical data can therefore report different
  // stream orders — but only in interleavings where a local insert slips
  // between two legs of the ring, which additionally requires the whole
  // ring chain to have functioned (so the data actually matches).
  // -------------------------------------------------------------------------
  {
    BugScenario bug;
    bug.name = "Roshi-3";
    bug.issue_number = 40;
    bug.event_count = 21;
    bug.status = "closed";
    bug.reason = "misconception";
    bug.make_subject = [] {
      subjects::Roshi::Flags flags;
      flags.stable_select_order = false;
      return std::make_unique<subjects::Roshi>(3, flags);
    };
    bug.workload = [](proxy::RdlProxy& p) {
      constexpr net::ReplicaId C = 2;
      const auto ins = [&](net::ReplicaId r, const char* key, double ts) {
        p.update(r, "insert", jobj({{"key", key}, {"member", "v"}, {"ts", ts}}));
      };
      ins(A, "a1", 1.0);   // e0
      ins(A, "a2", 2.0);   // e1
      ins(A, "a3", 3.0);   // e2
      ins(A, "a4", 4.0);   // e3
      ins(A, "a5", 5.0);   // e4
      ins(B, "b1", 6.0);   // e5
      ins(B, "b2", 7.0);   // e6
      ins(B, "b3", 8.0);   // e7
      ins(B, "b4", 9.0);   // e8
      ins(C, "c1", 10.0);  // e9
      ins(C, "c2", 11.0);  // e10
      ins(C, "c3", 12.0);  // e11
      ins(C, "c4", 13.0);  // e12
      p.sync_req(A, B);    // e13  ring: A -> B
      p.exec_sync(A, B);   // e14
      p.sync_req(B, C);    // e15  ring: B -> C (carries A's keys too)
      p.exec_sync(B, C);   // e16
      p.sync_req(C, A);    // e17  ring: C -> A (carries everyone's keys)
      p.exec_sync(C, A);   // e18
      p.query(A, "select_all", util::Json::object());  // e19
      p.query(C, "select_all", util::Json::object());  // e20
    };
    bug.assertions = [] {
      // When A and C hold the same data (the ring delivered everything),
      // their ordered reports must match.
      constexpr net::ReplicaId C = 2;
      return core::AssertionList{
          core::converge_if_same_witness({A, C}, {"history"}, {"order"})};
    };
    bug.configure = [](core::Session::Config& config) {
      core::ReplicaSpecificPruner::Options rs;
      rs.replica = A;
      rs.observation_event = 19;
      config.replica_specific = rs;
    };
    out.push_back(std::move(bug));
  }

  return out;
}

}  // namespace erpi::bugs::detail
