// ReplicaDB bug benchmarks (Table 1: ReplicaDB-1/#79, ReplicaDB-2/#23).
#include "subjects/replicadb.hpp"

#include "bugs/scenarios.hpp"

namespace erpi::bugs::detail {

namespace {
constexpr net::ReplicaId A = 0;
constexpr net::ReplicaId B = 1;
}  // namespace

std::vector<BugScenario> replicadb_bugs() {
  std::vector<BugScenario> out;

  // -------------------------------------------------------------------------
  // ReplicaDB-1 (issue #79): "Out of memory error" — 10 events. The buggy
  // transfer buffers the whole result set; when enough inserts interleave in
  // front of the transfer, it blows the memory budget.
  // -------------------------------------------------------------------------
  {
    BugScenario bug;
    bug.name = "ReplicaDB-1";
    bug.issue_number = 79;
    bug.event_count = 10;
    bug.status = "closed";
    bug.reason = "misuse";
    bug.make_subject = [] {
      subjects::ReplicaDb::Flags flags;
      flags.streaming_fetch_fixed = false;
      flags.memory_budget_rows = 4;
      return std::make_unique<subjects::ReplicaDb>(2, flags);
    };
    bug.workload = [](proxy::RdlProxy& p) {
      const auto ins = [&](net::ReplicaId r, const char* id, int64_t ts) {
        p.update(r, "insert_source", jobj({{"id", id}, {"value", id}, {"ts", ts}}));
      };
      ins(A, "r1", 1);                                                   // e0
      ins(A, "r2", 2);                                                   // e1
      ins(A, "r3", 3);                                                   // e2
      p.update(A, "transfer", jobj({{"mode", "complete"}}));             // e3
      ins(A, "r4", 4);                                                   // e4
      ins(A, "r5", 5);                                                   // e5
      p.sync_req(A, B);                                                  // e6
      p.exec_sync(A, B);                                                 // e7
      p.query(A, "sink_count", util::Json::object());                    // e8
      ins(A, "r6", 6);                                                   // e9
    };
    bug.assertions = [] {
      return core::AssertionList{core::custom(
          "transfer_within_memory", [](const core::TestContext& ctx) {
            // the reported OOM happened on a normally replicating deployment:
            // only count executions where B received A's source rows
            const util::Json sa = ctx.rdl.replica_state(A);
            const util::Json sb = ctx.rdl.replica_state(B);
            if (!(core::json_at(sa, {"seen"}) == core::json_at(sb, {"seen"}))) {
              return util::Status::ok();
            }
            for (size_t pos = 0; pos < ctx.results.size(); ++pos) {
              if (ctx.results[pos]) continue;
              const std::string& message = ctx.results[pos].error().message;
              if (message.find("OutOfMemoryError") != std::string::npos) {
                return util::Status::fail(message);
              }
            }
            return util::Status::ok();
          })};
    };
    bug.configure = [](core::Session::Config& config) {
      core::ReplicaSpecificPruner::Options rs;
      rs.replica = A;
      rs.observation_event = 8;
      config.replica_specific = rs;
    };
    out.push_back(std::move(bug));
  }

  // -------------------------------------------------------------------------
  // ReplicaDB-2 (issue #23): "deleted records aren't getting deleted from
  // the sink tables" — 14 events. The buggy incremental transfer skips
  // tombstones; a delete that slips in front of a later incremental transfer
  // leaves the deleted row in the sink forever.
  // -------------------------------------------------------------------------
  {
    BugScenario bug;
    bug.name = "ReplicaDB-2";
    bug.issue_number = 23;
    bug.event_count = 14;
    bug.status = "closed";
    bug.reason = "misconception";
    bug.make_subject = [] {
      subjects::ReplicaDb::Flags flags;
      flags.incremental_deletes_fixed = false;
      return std::make_unique<subjects::ReplicaDb>(2, flags);
    };
    bug.workload = [](proxy::RdlProxy& p) {
      const auto ins = [&](net::ReplicaId r, const char* id, int64_t ts) {
        p.update(r, "insert_source", jobj({{"id", id}, {"value", id}, {"ts", ts}}));
      };
      ins(A, "r1", 1);                                              // e0
      ins(A, "r2", 2);                                              // e1
      p.update(A, "transfer", jobj({{"mode", "incremental"}}));     // e2
      ins(A, "r3", 3);                                              // e3
      p.sync_req(A, B);                                             // e4
      p.exec_sync(A, B);                                            // e5
      ins(B, "r4", 4);                                              // e6
      p.update(A, "transfer", jobj({{"mode", "incremental"}}));     // e7
      p.sync_req(B, A);                                             // e8
      p.exec_sync(B, A);                                            // e9
      p.update(A, "transfer", jobj({{"mode", "incremental"}}));     // e10
      p.update(A, "delete_source", jobj({{"id", "r1"}, {"ts", 9}}));  // e11
      p.query(A, "sink_count", util::Json::object());               // e12
      p.query(B, "sink_count", util::Json::object());               // e13
    };
    bug.assertions = [] {
      // A row tombstoned at or below the transferred version must be gone
      // from the sink.
      return core::AssertionList{core::custom(
          "sink_respects_deletes", [](const core::TestContext& ctx) {
            for (const net::ReplicaId replica : {A, B}) {
              const util::Json state = ctx.rdl.replica_state(replica);
              const util::Json& seen = core::json_at(state, {"seen"});
              const util::Json& sink = core::json_at(state, {"sink"});
              const util::Json& last = core::json_at(state, {"last_transfer"});
              if (!seen.is_object() || !sink.is_object() || !last.is_int()) continue;
              for (const auto& [id, version] : seen.as_object()) {
                const std::string& v = version.as_string();
                const auto bar = v.find("|del");
                if (bar == std::string::npos) continue;  // live row
                const int64_t deleted_at = std::stoll(v.substr(0, bar));
                // a tombstone already covered by a transfer must be gone
                if (deleted_at <= last.as_int() && sink.contains(id)) {
                  return util::Status::fail("replica " + std::to_string(replica) +
                                            " sink still holds deleted row " + id +
                                            " (deleted at v" + std::to_string(deleted_at) +
                                            ", transferred through v" +
                                            std::to_string(last.as_int()) + ")");
                }
              }
            }
            return util::Status::ok();
          })};
    };
    bug.configure = [](core::Session::Config& config) {
      core::ReplicaSpecificPruner::Options rs;
      rs.replica = A;
      rs.observation_event = 12;
      config.replica_specific = rs;
    };
    out.push_back(std::move(bug));
  }

  return out;
}

}  // namespace erpi::bugs::detail
