// Internal helpers shared by the per-subject bug-scenario definitions.
#pragma once

#include <initializer_list>
#include <utility>

#include "bugs/registry.hpp"

namespace erpi::bugs::detail {

/// Terse JSON object builder for workload arguments.
inline util::Json jobj(std::initializer_list<std::pair<const char*, util::Json>> kv) {
  util::Json out = util::Json::object();
  for (const auto& [key, value] : kv) out[key] = value;
  return out;
}

inline util::Json jarr(std::initializer_list<util::Json> items) {
  util::Json out = util::Json::array();
  for (const auto& item : items) out.push_back(item);
  return out;
}

std::vector<BugScenario> roshi_bugs();
std::vector<BugScenario> orbitdb_bugs();
std::vector<BugScenario> replicadb_bugs();
std::vector<BugScenario> yorkie_bugs();
/// Planted durable-log recovery bugs (not part of Table 1).
std::vector<BugScenario> storage_bugs();

}  // namespace erpi::bugs::detail
