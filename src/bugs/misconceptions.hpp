// Misconception seeding and detection (paper §6.2, Table 2).
//
// Five common misconceptions about RDL integration:
//   #1 The underlying network ensures causal delivery.
//   #2 The order of List elements is always consistent.
//   #3 Moving items in a List doesn't cause duplication.
//   #4 Sequential IDs are always suitable for creating new to-do items.
//   #5 Multiple replicas in different regions mathematically resolve to the
//      same state without coordination.
//
// Each (subject, misconception) cell the paper marks as detected is encoded
// as a seeded scenario: the misconception is planted (per the seeding
// strategy of §6.2), and ER-pi's exhaustive replay detects it when some
// interleaving violates the scenario's assertion.
#pragma once

#include <string>
#include <vector>

#include "bugs/registry.hpp"

namespace erpi::bugs {

struct MisconceptionScenario {
  std::string subject;     // "Roshi", "OrbitDB", "ReplicaDB", "Yorkie", "CRDTs"
  int misconception = 0;   // 1..5
  BugScenario scenario;    // seeded workload + detector (Table-1 metadata unused)
};

/// All detected cells of Table 2, row-major.
const std::vector<MisconceptionScenario>& all_misconceptions();

/// Run one cell; returns true when the misconception was recognized (some
/// interleaving violated the detector).
bool detect_misconception(const MisconceptionScenario& cell,
                          uint64_t max_interleavings = 10'000);

}  // namespace erpi::bugs
