// The bug benchmark registry (paper Table 1).
//
// Each scenario re-creates one previously reported RDL-integration bug: it
// instantiates the subject with the historical defect re-seeded behind a
// flag, drives the workload that captures the scenario's events through the
// proxy, and supplies the invariant whose violation constitutes "bug
// reproduced". The #Events column of Table 1 is matched exactly.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/assertions.hpp"
#include "core/session.hpp"
#include "faults/plan.hpp"
#include "proxy/proxy.hpp"

namespace erpi::bugs {

struct BugScenario {
  // ---- Table 1 metadata ----
  std::string name;        // e.g. "Roshi-1"
  int issue_number = 0;    // upstream issue id
  int event_count = 0;     // "#Events" column
  std::string status;      // "closed" / "open"
  std::string reason;      // "misconception" / "RDL issue" / "misuse" / "-"

  /// Construct the subject with the bug seeded.
  std::function<std::unique_ptr<proxy::Rdl>()> make_subject;
  /// Run the workload through the proxy (capturing the scenario's events).
  std::function<void(proxy::RdlProxy&)> workload;
  /// Invariants violated exactly when the bug manifests.
  std::function<core::AssertionList()> assertions;
  /// Session tweaks ER-pi mode uses for this scenario: explored replica for
  /// Replica-Specific pruning, plus any independence/failed-ops constraints
  /// the paper's developer would supply.
  std::function<void(core::Session::Config&)> configure;
  /// Storage-fault scenarios (DESIGN.md §13): when set, run_bug routes the
  /// replay through faults::explore_with_faults with this catalog instead of
  /// Session::end, so the bug only manifests when the catalog's durable-log
  /// damage plans are swept. Unset for the Table 1 network-interleaving bugs.
  std::optional<faults::CatalogOptions> storage_catalog;
};

/// All 12 scenarios, in Table 1 order.
const std::vector<BugScenario>& all_bugs();

/// The planted durable-log recovery bugs (storage_catalog set on each).
/// Kept out of all_bugs() so Table 1 tooling keeps its exact row set.
const std::vector<BugScenario>& storage_bugs();

/// Lookup by name ("Roshi-1" ... "Yorkie-2", plus the storage scenarios
/// "Roshi-S1" / "OrbitDB-S1"); throws if unknown.
const BugScenario& find_bug(const std::string& name);

/// Run one scenario end-to-end in the given exploration mode. Returns the
/// replay report plus the session (for pruning stats) via out-params.
struct BugRunResult {
  core::ReplayReport report;
  core::Session::PruningReport pruning;
  uint64_t rand_shuffles = 0;  // populated in Rand mode
};
BugRunResult run_bug(const BugScenario& bug, core::ExplorationMode mode,
                     uint64_t max_interleavings = 10'000, uint64_t random_seed = 42,
                     uint64_t resource_budget_bytes = UINT64_MAX,
                     uint64_t dfs_branch_seed = 0);

}  // namespace erpi::bugs
