// Content hashing used across ER-pi.
//
// Two distinct needs:
//  * fast non-cryptographic hashing (FNV-1a) for dedup caches, interleaving
//    fingerprints, and equivalence-class keys in the pruners;
//  * content-addressed digests (SHA-1) for the Merkle-DAG log substrate
//    (OrbitDB-style entries are addressed by the hash of their contents).
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace erpi::util {

/// 64-bit FNV-1a over a byte view.
constexpr uint64_t fnv1a64(std::string_view data,
                           uint64_t seed = 0xcbf29ce484222325ULL) noexcept {
  uint64_t h = seed;
  for (const char c : data) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Incrementally combinable hasher for composite keys.
class Fnv1aHasher {
 public:
  Fnv1aHasher& bytes(std::string_view data) noexcept {
    h_ = fnv1a64(data, h_);
    return *this;
  }
  Fnv1aHasher& u64(uint64_t v) noexcept {
    for (int i = 0; i < 8; ++i) {
      h_ ^= static_cast<unsigned char>(v >> (i * 8));
      h_ *= 0x100000001b3ULL;
    }
    return *this;
  }
  Fnv1aHasher& i64(int64_t v) noexcept { return u64(static_cast<uint64_t>(v)); }
  uint64_t digest() const noexcept { return h_; }

 private:
  uint64_t h_ = 0xcbf29ce484222325ULL;
};

/// SHA-1 digest (20 bytes). Not for security — for content addressing in the
/// Merkle log, where we need a stable, collision-resistant-enough identifier.
class Sha1 {
 public:
  Sha1() noexcept { reset(); }

  void reset() noexcept;
  void update(std::string_view data) noexcept;
  std::array<uint8_t, 20> finish() noexcept;

  /// One-shot convenience returning a lowercase hex string.
  static std::string hex(std::string_view data);

 private:
  void process_block(const uint8_t* block) noexcept;

  uint32_t h_[5] = {};
  uint64_t length_ = 0;  // total bytes seen
  uint8_t buffer_[64] = {};
  size_t buffered_ = 0;
};

/// Lowercase hex encoding of arbitrary bytes.
std::string to_hex(std::span<const uint8_t> bytes);

}  // namespace erpi::util
