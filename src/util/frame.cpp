#include "util/frame.hpp"

#include <errno.h>
#include <poll.h>
#include <sys/socket.h>

#include <cstdint>

namespace erpi::util {

namespace {

bool send_all(int fd, const void* data, size_t len) {
  const char* p = static_cast<const char*>(data);
  while (len > 0) {
    const ssize_t n = ::send(fd, p, len, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += n;
    len -= static_cast<size_t>(n);
  }
  return true;
}

bool recv_all(int fd, void* data, size_t len) {
  char* p = static_cast<char*>(data);
  while (len > 0) {
    const ssize_t n = ::recv(fd, p, len, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;  // EOF mid-frame
    p += n;
    len -= static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

bool write_frame(int fd, const std::string& payload) {
  if (payload.size() > kMaxFrameBytes) return false;
  const uint32_t len = static_cast<uint32_t>(payload.size());
  unsigned char header[4] = {
      static_cast<unsigned char>(len & 0xff),
      static_cast<unsigned char>((len >> 8) & 0xff),
      static_cast<unsigned char>((len >> 16) & 0xff),
      static_cast<unsigned char>((len >> 24) & 0xff),
  };
  return send_all(fd, header, sizeof(header)) &&
         send_all(fd, payload.data(), payload.size());
}

std::optional<std::string> read_frame(int fd) {
  unsigned char header[4];
  if (!recv_all(fd, header, sizeof(header))) return std::nullopt;
  const uint32_t len = static_cast<uint32_t>(header[0]) |
                       (static_cast<uint32_t>(header[1]) << 8) |
                       (static_cast<uint32_t>(header[2]) << 16) |
                       (static_cast<uint32_t>(header[3]) << 24);
  if (len > kMaxFrameBytes) return std::nullopt;
  std::string payload(len, '\0');
  if (len > 0 && !recv_all(fd, payload.data(), len)) return std::nullopt;
  return payload;
}

int wait_readable(int fd, int timeout_ms) {
  struct pollfd pfd;
  pfd.fd = fd;
  pfd.events = POLLIN;
  pfd.revents = 0;
  for (;;) {
    const int rc = ::poll(&pfd, 1, timeout_ms);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return -1;
    }
    return rc > 0 ? 1 : 0;
  }
}

int wait_readable2(int fd_a, int fd_b, int timeout_ms, bool& a_ready, bool& b_ready) {
  a_ready = false;
  b_ready = false;
  struct pollfd pfds[2];
  pfds[0].fd = fd_a;
  pfds[0].events = POLLIN;
  pfds[0].revents = 0;
  pfds[1].fd = fd_b;
  pfds[1].events = POLLIN;
  pfds[1].revents = 0;
  for (;;) {
    const int rc = ::poll(pfds, 2, timeout_ms);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return -1;
    }
    if (rc == 0) return 0;
    // POLLHUP/POLLERR count as readable: the subsequent read reports the
    // condition (EOF / error) instead of this poll loop spinning on it.
    a_ready = (pfds[0].revents & (POLLIN | POLLHUP | POLLERR)) != 0;
    b_ready = (pfds[1].revents & (POLLIN | POLLHUP | POLLERR)) != 0;
    return 1;
  }
}

void drain_nonblocking(int fd) {
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), MSG_DONTWAIT);
    if (n > 0) continue;
    if (n < 0 && errno == EINTR) continue;
    return;  // EAGAIN (empty), EOF, or error — nothing left to discard
  }
}

}  // namespace erpi::util
