// Length-prefixed JSON framing shared by every socket protocol in the tree:
// the sandbox fork-server channels (src/sandbox/protocol.cpp) and the
// exploration-service daemon (src/service/daemon.cpp) speak the same wire
// format — a 4-byte little-endian payload length followed by the payload.
//
// All writes use send(MSG_NOSIGNAL) so a dead peer surfaces as an error
// return instead of SIGPIPE; reads and polls retry EINTR internally.
#pragma once

#include <optional>
#include <string>

namespace erpi::util {

/// Upper bound on a frame payload. Frames carry job specs, report deltas, or
/// replay outcomes — a length beyond this means a corrupted prefix from a
/// torn write, and treating it as an error beats a multi-gigabyte alloc.
inline constexpr uint32_t kMaxFrameBytes = 16u * 1024u * 1024u;

/// Write one length-prefixed frame. False on any error (peer gone, payload
/// over kMaxFrameBytes, ...).
bool write_frame(int fd, const std::string& payload);

/// Read one complete frame; nullopt on EOF, error, oversized length, or a
/// torn frame (EOF mid-payload).
std::optional<std::string> read_frame(int fd);

/// poll() for readability. Returns 1 when readable, 0 on timeout, -1 on
/// error. `timeout_ms` < 0 blocks indefinitely.
int wait_readable(int fd, int timeout_ms);

/// poll() two fds at once (a supervisor watching data + control together).
/// Sets the out-flags for whichever became readable; same return convention
/// as wait_readable. POLLHUP/POLLERR count as readable so the subsequent
/// read reports the condition instead of the poll loop spinning on it.
int wait_readable2(int fd_a, int fd_b, int timeout_ms, bool& a_ready, bool& b_ready);

/// Throw away any buffered bytes without blocking (partial frames a killed
/// peer left in the socket).
void drain_nonblocking(int fd);

}  // namespace erpi::util
