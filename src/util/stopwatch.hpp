// Wall-clock stopwatch for experiment timing (Fig. 8b reproduction).
#pragma once

#include <chrono>
#include <cstdint>

namespace erpi::util {

class Stopwatch {
 public:
  Stopwatch() noexcept : start_(Clock::now()) {}

  void restart() noexcept { start_ = Clock::now(); }

  double elapsed_seconds() const noexcept {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  uint64_t elapsed_micros() const noexcept {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() - start_).count());
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace erpi::util
