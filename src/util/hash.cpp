#include "util/hash.hpp"

#include <cstring>

namespace erpi::util {

namespace {
constexpr uint32_t rotl32(uint32_t x, int k) noexcept {
  return (x << k) | (x >> (32 - k));
}
}  // namespace

void Sha1::reset() noexcept {
  h_[0] = 0x67452301u;
  h_[1] = 0xEFCDAB89u;
  h_[2] = 0x98BADCFEu;
  h_[3] = 0x10325476u;
  h_[4] = 0xC3D2E1F0u;
  length_ = 0;
  buffered_ = 0;
}

void Sha1::update(std::string_view data) noexcept {
  const auto* p = reinterpret_cast<const uint8_t*>(data.data());
  size_t n = data.size();
  length_ += n;
  if (buffered_ > 0) {
    const size_t take = std::min(n, sizeof(buffer_) - buffered_);
    std::memcpy(buffer_ + buffered_, p, take);
    buffered_ += take;
    p += take;
    n -= take;
    if (buffered_ == sizeof(buffer_)) {
      process_block(buffer_);
      buffered_ = 0;
    }
  }
  while (n >= 64) {
    process_block(p);
    p += 64;
    n -= 64;
  }
  if (n > 0) {
    std::memcpy(buffer_, p, n);
    buffered_ = n;
  }
}

std::array<uint8_t, 20> Sha1::finish() noexcept {
  const uint64_t bit_length = length_ * 8;
  const uint8_t pad = 0x80;
  update(std::string_view(reinterpret_cast<const char*>(&pad), 1));
  static constexpr uint8_t zeros[64] = {};
  while (buffered_ != 56) {
    const size_t want = buffered_ < 56 ? 56 - buffered_ : 64 - buffered_ + 56;
    const size_t take = std::min<size_t>(want, 64);
    update(std::string_view(reinterpret_cast<const char*>(zeros), take));
  }
  uint8_t len_be[8];
  for (int i = 0; i < 8; ++i) len_be[i] = static_cast<uint8_t>(bit_length >> ((7 - i) * 8));
  update(std::string_view(reinterpret_cast<const char*>(len_be), 8));

  std::array<uint8_t, 20> out{};
  for (int i = 0; i < 5; ++i) {
    out[i * 4 + 0] = static_cast<uint8_t>(h_[i] >> 24);
    out[i * 4 + 1] = static_cast<uint8_t>(h_[i] >> 16);
    out[i * 4 + 2] = static_cast<uint8_t>(h_[i] >> 8);
    out[i * 4 + 3] = static_cast<uint8_t>(h_[i]);
  }
  return out;
}

void Sha1::process_block(const uint8_t* block) noexcept {
  uint32_t w[80];
  for (int i = 0; i < 16; ++i) {
    w[i] = (static_cast<uint32_t>(block[i * 4]) << 24) |
           (static_cast<uint32_t>(block[i * 4 + 1]) << 16) |
           (static_cast<uint32_t>(block[i * 4 + 2]) << 8) |
           static_cast<uint32_t>(block[i * 4 + 3]);
  }
  for (int i = 16; i < 80; ++i) {
    w[i] = rotl32(w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16], 1);
  }

  uint32_t a = h_[0], b = h_[1], c = h_[2], d = h_[3], e = h_[4];
  for (int i = 0; i < 80; ++i) {
    uint32_t f;
    uint32_t k;
    if (i < 20) {
      f = (b & c) | (~b & d);
      k = 0x5A827999u;
    } else if (i < 40) {
      f = b ^ c ^ d;
      k = 0x6ED9EBA1u;
    } else if (i < 60) {
      f = (b & c) | (b & d) | (c & d);
      k = 0x8F1BBCDCu;
    } else {
      f = b ^ c ^ d;
      k = 0xCA62C1D6u;
    }
    const uint32_t tmp = rotl32(a, 5) + f + e + k + w[i];
    e = d;
    d = c;
    c = rotl32(b, 30);
    b = a;
    a = tmp;
  }
  h_[0] += a;
  h_[1] += b;
  h_[2] += c;
  h_[3] += d;
  h_[4] += e;
}

std::string Sha1::hex(std::string_view data) {
  Sha1 s;
  s.update(data);
  const auto digest = s.finish();
  return to_hex(digest);
}

std::string to_hex(std::span<const uint8_t> bytes) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2);
  for (const uint8_t b : bytes) {
    out.push_back(kDigits[b >> 4]);
    out.push_back(kDigits[b & 0xF]);
  }
  return out;
}

}  // namespace erpi::util
