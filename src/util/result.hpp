// Result<T> — lightweight expected-style error handling used across ER-pi.
//
// The middleware runs user workloads and replays thousands of interleavings;
// a failure in one interleaving (a failed op, a resource cap, a lock timeout)
// must not abort the whole replay loop. Modules therefore return Result<T>
// for recoverable conditions and reserve exceptions for programming errors.
#pragma once

#include <stdexcept>
#include <string>
#include <utility>
#include <variant>

namespace erpi::util {

/// Error payload carried by a failed Result.
struct Error {
  std::string message;

  bool operator==(const Error&) const = default;
};

/// A value-or-error sum type. `T` must be move-constructible.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Error err) : repr_(std::move(err)) {}  // NOLINT(google-explicit-constructor)

  static Result ok(T value) { return Result(std::move(value)); }
  static Result fail(std::string message) { return Result(Error{std::move(message)}); }

  bool has_value() const noexcept { return std::holds_alternative<T>(repr_); }
  explicit operator bool() const noexcept { return has_value(); }

  /// Access the value; throws std::logic_error if this holds an error.
  const T& value() const& {
    if (!has_value()) throw std::logic_error("Result::value() on error: " + error().message);
    return std::get<T>(repr_);
  }
  T& value() & {
    if (!has_value()) throw std::logic_error("Result::value() on error: " + error().message);
    return std::get<T>(repr_);
  }
  T&& take() && {
    if (!has_value()) throw std::logic_error("Result::take() on error: " + error().message);
    return std::get<T>(std::move(repr_));
  }

  const Error& error() const {
    if (has_value()) throw std::logic_error("Result::error() on value");
    return std::get<Error>(repr_);
  }

  T value_or(T fallback) const& { return has_value() ? std::get<T>(repr_) : std::move(fallback); }

 private:
  std::variant<T, Error> repr_;
};

/// Specialization-free helper for operations that yield no value.
class [[nodiscard]] Status {
 public:
  Status() = default;
  Status(Error err) : err_(std::move(err)), failed_(true) {}  // NOLINT

  static Status ok() { return Status(); }
  static Status fail(std::string message) { return Status(Error{std::move(message)}); }

  bool is_ok() const noexcept { return !failed_; }
  explicit operator bool() const noexcept { return is_ok(); }
  const Error& error() const {
    if (!failed_) throw std::logic_error("Status::error() on ok");
    return err_;
  }

 private:
  Error err_;
  bool failed_ = false;
};

}  // namespace erpi::util
