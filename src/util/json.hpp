// Minimal self-contained JSON value / parser / serializer.
//
// ER-pi consumes developer-provided runtime constraints from JSON files in a
// watched directory (paper §5.2) and persists experiment reports as JSON.
// No third-party JSON library is assumed in the target environment, so the
// middleware carries its own implementation. The dialect is strict RFC 8259
// JSON with one extension: integers are kept exact as int64 when possible.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/result.hpp"

namespace erpi::util {

/// A JSON document node. Value-semantic; copies are deep.
class Json {
 public:
  enum class Type { Null, Bool, Int, Double, String, Array, Object };

  using Array = std::vector<Json>;
  // std::map keeps keys ordered, which gives deterministic serialization —
  // important because serialized states are compared across interleavings.
  using Object = std::map<std::string, Json>;

  Json() noexcept : type_(Type::Null) {}
  Json(std::nullptr_t) noexcept : type_(Type::Null) {}              // NOLINT
  Json(bool b) noexcept : type_(Type::Bool), bool_(b) {}            // NOLINT
  Json(int v) noexcept : type_(Type::Int), int_(v) {}               // NOLINT
  Json(int64_t v) noexcept : type_(Type::Int), int_(v) {}           // NOLINT
  Json(uint64_t v) noexcept : type_(Type::Int), int_(static_cast<int64_t>(v)) {}  // NOLINT
  Json(double v) noexcept : type_(Type::Double), double_(v) {}      // NOLINT
  Json(const char* s) : type_(Type::String), string_(s) {}          // NOLINT
  Json(std::string s) : type_(Type::String), string_(std::move(s)) {}  // NOLINT
  Json(Array a) : type_(Type::Array), array_(std::move(a)) {}       // NOLINT
  Json(Object o) : type_(Type::Object), object_(std::move(o)) {}    // NOLINT

  static Json array() { return Json(Array{}); }
  static Json object() { return Json(Object{}); }

  Type type() const noexcept { return type_; }
  bool is_null() const noexcept { return type_ == Type::Null; }
  bool is_bool() const noexcept { return type_ == Type::Bool; }
  bool is_int() const noexcept { return type_ == Type::Int; }
  bool is_double() const noexcept { return type_ == Type::Double; }
  bool is_number() const noexcept { return is_int() || is_double(); }
  bool is_string() const noexcept { return type_ == Type::String; }
  bool is_array() const noexcept { return type_ == Type::Array; }
  bool is_object() const noexcept { return type_ == Type::Object; }

  bool as_bool() const { ensure(Type::Bool); return bool_; }
  int64_t as_int() const { ensure(Type::Int); return int_; }
  double as_double() const {
    if (type_ == Type::Int) return static_cast<double>(int_);
    ensure(Type::Double);
    return double_;
  }
  const std::string& as_string() const { ensure(Type::String); return string_; }
  const Array& as_array() const { ensure(Type::Array); return array_; }
  Array& as_array() { ensure(Type::Array); return array_; }
  const Object& as_object() const { ensure(Type::Object); return object_; }
  Object& as_object() { ensure(Type::Object); return object_; }

  /// Object member access. Non-const inserts a null member if missing.
  Json& operator[](const std::string& key);
  /// Const lookup; returns a shared null node if absent.
  const Json& operator[](const std::string& key) const;
  bool contains(const std::string& key) const;

  /// Array element access (bounds-checked).
  Json& at(size_t index);
  const Json& at(size_t index) const;
  size_t size() const noexcept;

  void push_back(Json v);

  bool operator==(const Json& other) const;

  /// Compact single-line serialization.
  std::string dump() const;
  /// Indented multi-line serialization.
  std::string pretty(int indent = 2) const;

  /// Parse a complete JSON document. Trailing garbage is an error.
  static Result<Json> parse(std::string_view text);

 private:
  void ensure(Type t) const;
  void write(std::string& out, int indent, int depth) const;
  static void write_string(std::string& out, const std::string& s);

  Type type_;
  bool bool_ = false;
  int64_t int_ = 0;
  double double_ = 0;
  std::string string_;
  Array array_;
  Object object_;
};

}  // namespace erpi::util
