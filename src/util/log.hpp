// Leveled, thread-safe logging.
//
// Replay runs are long and multi-threaded (one worker per replica); log lines
// carry a monotonic sequence number so interleaved output from concurrent
// replicas can be totally ordered post-hoc when debugging a replay.
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <sstream>
#include <string>

namespace erpi::util {

enum class LogLevel : int { Trace = 0, Debug = 1, Info = 2, Warn = 3, Error = 4, Off = 5 };

const char* log_level_name(LogLevel level) noexcept;

/// Process-wide logger. Sink defaults to stderr; tests may capture output.
class Logger {
 public:
  using Sink = std::function<void(LogLevel, const std::string&)>;

  static Logger& instance();

  void set_level(LogLevel level) noexcept { level_ = level; }
  LogLevel level() const noexcept { return level_; }
  bool enabled(LogLevel level) const noexcept { return level >= level_; }

  /// Replace the sink; returns the previous one (for restoration in tests).
  Sink set_sink(Sink sink);

  void log(LogLevel level, const std::string& component, const std::string& message);

 private:
  Logger();

  std::mutex mu_;
  LogLevel level_ = LogLevel::Warn;
  uint64_t sequence_ = 0;
  Sink sink_;
};

/// Stream-style helper: LogStream(LogLevel::Info, "replay") << "x=" << x;
class LogStream {
 public:
  LogStream(LogLevel level, std::string component)
      : level_(level), component_(std::move(component)) {}
  ~LogStream() {
    if (Logger::instance().enabled(level_)) {
      Logger::instance().log(level_, component_, stream_.str());
    }
  }
  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;

  template <typename T>
  LogStream& operator<<(const T& v) {
    if (Logger::instance().enabled(level_)) stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::string component_;
  std::ostringstream stream_;
};

#define ERPI_LOG(level, component) ::erpi::util::LogStream((level), (component))
#define ERPI_TRACE(component) ERPI_LOG(::erpi::util::LogLevel::Trace, (component))
#define ERPI_DEBUG(component) ERPI_LOG(::erpi::util::LogLevel::Debug, (component))
#define ERPI_INFO(component) ERPI_LOG(::erpi::util::LogLevel::Info, (component))
#define ERPI_WARN(component) ERPI_LOG(::erpi::util::LogLevel::Warn, (component))
#define ERPI_ERROR(component) ERPI_LOG(::erpi::util::LogLevel::Error, (component))

}  // namespace erpi::util
