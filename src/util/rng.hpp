// Deterministic pseudo-random number generation.
//
// Replay experiments must be reproducible run-to-run: the Random enumerator,
// fault injection, and workload generators all draw from an explicitly seeded
// xoshiro256** stream rather than std::random_device. xoshiro256** is chosen
// for speed and statistical quality; determinism across platforms matters more
// here than cryptographic strength.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

namespace erpi::util {

/// SplitMix64 — used to expand a single 64-bit seed into xoshiro state.
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) noexcept : state_(seed) {}

  uint64_t next() noexcept {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  uint64_t state_;
};

/// xoshiro256** generator. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = uint64_t;

  explicit Rng(uint64_t seed = 0x5eed0f00d5eed0f0ULL) noexcept { reseed(seed); }

  void reseed(uint64_t seed) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<uint64_t>::max();
  }

  result_type operator()() noexcept { return next(); }

  uint64_t next() noexcept {
    const uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  uint64_t below(uint64_t bound) noexcept {
    // Lemire's nearly-divisionless method with rejection for exact uniformity.
    uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<uint64_t>(m);
    if (lo < bound) {
      const uint64_t threshold = -bound % bound;
      while (lo < threshold) {
        x = next();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t range(int64_t lo, int64_t hi) noexcept {
    return lo + static_cast<int64_t>(below(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double uniform01() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// True with probability p.
  bool chance(double p) noexcept { return uniform01() < p; }

  /// In-place Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    for (size_t i = v.size(); i > 1; --i) {
      using std::swap;
      swap(v[i - 1], v[below(i)]);
    }
  }

 private:
  static constexpr uint64_t rotl(uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4] = {};
};

}  // namespace erpi::util
