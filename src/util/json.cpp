#include "util/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace erpi::util {

namespace {
const Json kNullJson{};
}  // namespace

void Json::ensure(Type t) const {
  if (type_ != t) {
    static constexpr const char* kNames[] = {"null",   "bool",  "int",   "double",
                                             "string", "array", "object"};
    throw std::logic_error(std::string("Json type mismatch: expected ") +
                           kNames[static_cast<int>(t)] + ", have " +
                           kNames[static_cast<int>(type_)]);
  }
}

Json& Json::operator[](const std::string& key) {
  if (type_ == Type::Null) type_ = Type::Object;  // convenient building
  ensure(Type::Object);
  return object_[key];
}

const Json& Json::operator[](const std::string& key) const {
  ensure(Type::Object);
  const auto it = object_.find(key);
  return it == object_.end() ? kNullJson : it->second;
}

bool Json::contains(const std::string& key) const {
  return type_ == Type::Object && object_.count(key) > 0;
}

Json& Json::at(size_t index) {
  ensure(Type::Array);
  return array_.at(index);
}

const Json& Json::at(size_t index) const {
  ensure(Type::Array);
  return array_.at(index);
}

size_t Json::size() const noexcept {
  switch (type_) {
    case Type::Array: return array_.size();
    case Type::Object: return object_.size();
    default: return 0;
  }
}

void Json::push_back(Json v) {
  if (type_ == Type::Null) type_ = Type::Array;
  ensure(Type::Array);
  array_.push_back(std::move(v));
}

bool Json::operator==(const Json& other) const {
  if (type_ != other.type_) {
    // ints and doubles compare numerically across representation
    if (is_number() && other.is_number()) return as_double() == other.as_double();
    return false;
  }
  switch (type_) {
    case Type::Null: return true;
    case Type::Bool: return bool_ == other.bool_;
    case Type::Int: return int_ == other.int_;
    case Type::Double: return double_ == other.double_;
    case Type::String: return string_ == other.string_;
    case Type::Array: return array_ == other.array_;
    case Type::Object: return object_ == other.object_;
  }
  return false;
}

void Json::write_string(std::string& out, const std::string& s) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void Json::write(std::string& out, int indent, int depth) const {
  const std::string nl = indent > 0 ? "\n" : "";
  const std::string pad = indent > 0 ? std::string(static_cast<size_t>(indent) * (depth + 1), ' ') : "";
  const std::string pad_close =
      indent > 0 ? std::string(static_cast<size_t>(indent) * depth, ' ') : "";
  switch (type_) {
    case Type::Null: out += "null"; break;
    case Type::Bool: out += bool_ ? "true" : "false"; break;
    case Type::Int: out += std::to_string(int_); break;
    case Type::Double: {
      if (std::isfinite(double_)) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.17g", double_);
        out += buf;
      } else {
        out += "null";  // RFC 8259 has no NaN/Inf
      }
      break;
    }
    case Type::String: write_string(out, string_); break;
    case Type::Array: {
      if (array_.empty()) {
        out += "[]";
        break;
      }
      out.push_back('[');
      bool first = true;
      for (const auto& v : array_) {
        if (!first) out.push_back(',');
        first = false;
        out += nl + pad;
        v.write(out, indent, depth + 1);
      }
      out += nl + pad_close;
      out.push_back(']');
      break;
    }
    case Type::Object: {
      if (object_.empty()) {
        out += "{}";
        break;
      }
      out.push_back('{');
      bool first = true;
      for (const auto& [k, v] : object_) {
        if (!first) out.push_back(',');
        first = false;
        out += nl + pad;
        write_string(out, k);
        out.push_back(':');
        if (indent > 0) out.push_back(' ');
        v.write(out, indent, depth + 1);
      }
      out += nl + pad_close;
      out.push_back('}');
      break;
    }
  }
}

std::string Json::dump() const {
  std::string out;
  write(out, 0, 0);
  return out;
}

std::string Json::pretty(int indent) const {
  std::string out;
  write(out, indent, 0);
  return out;
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<Json> parse_document() {
    skip_ws();
    Json value;
    if (auto st = parse_value(value); !st) return Error{st.error()};
    skip_ws();
    if (pos_ != text_.size()) return fail("trailing characters after document");
    return value;
  }

 private:
  Error fail(const std::string& what) const {
    size_t line = 1;
    size_t col = 1;
    for (size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
    return Error{"json parse error at line " + std::to_string(line) + ", col " +
                 std::to_string(col) + ": " + what};
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  bool eof() const { return pos_ >= text_.size(); }
  char peek() const { return text_[pos_]; }

  bool consume(char c) {
    if (!eof() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) == lit) {
      pos_ += lit.size();
      return true;
    }
    return false;
  }

  Status parse_value(Json& out) {
    if (eof()) return Status::fail(fail("unexpected end of input").message);
    switch (peek()) {
      case '{': return parse_object(out);
      case '[': return parse_array(out);
      case '"': return parse_string_value(out);
      case 't':
        if (consume_literal("true")) {
          out = Json(true);
          return Status::ok();
        }
        return Status::fail(fail("invalid literal").message);
      case 'f':
        if (consume_literal("false")) {
          out = Json(false);
          return Status::ok();
        }
        return Status::fail(fail("invalid literal").message);
      case 'n':
        if (consume_literal("null")) {
          out = Json(nullptr);
          return Status::ok();
        }
        return Status::fail(fail("invalid literal").message);
      default: return parse_number(out);
    }
  }

  Status parse_object(Json& out) {
    ++pos_;  // '{'
    Json::Object obj;
    skip_ws();
    if (consume('}')) {
      out = Json(std::move(obj));
      return Status::ok();
    }
    while (true) {
      skip_ws();
      if (eof() || peek() != '"') return Status::fail(fail("expected object key").message);
      std::string key;
      if (auto st = parse_raw_string(key); !st) return st;
      skip_ws();
      if (!consume(':')) return Status::fail(fail("expected ':' after key").message);
      skip_ws();
      Json value;
      if (auto st = parse_value(value); !st) return st;
      obj[std::move(key)] = std::move(value);
      skip_ws();
      if (consume(',')) continue;
      if (consume('}')) break;
      return Status::fail(fail("expected ',' or '}' in object").message);
    }
    out = Json(std::move(obj));
    return Status::ok();
  }

  Status parse_array(Json& out) {
    ++pos_;  // '['
    Json::Array arr;
    skip_ws();
    if (consume(']')) {
      out = Json(std::move(arr));
      return Status::ok();
    }
    while (true) {
      skip_ws();
      Json value;
      if (auto st = parse_value(value); !st) return st;
      arr.push_back(std::move(value));
      skip_ws();
      if (consume(',')) continue;
      if (consume(']')) break;
      return Status::fail(fail("expected ',' or ']' in array").message);
    }
    out = Json(std::move(arr));
    return Status::ok();
  }

  Status parse_string_value(Json& out) {
    std::string s;
    if (auto st = parse_raw_string(s); !st) return st;
    out = Json(std::move(s));
    return Status::ok();
  }

  Status parse_raw_string(std::string& out) {
    ++pos_;  // opening quote
    out.clear();
    while (true) {
      if (eof()) return Status::fail(fail("unterminated string").message);
      const char c = text_[pos_++];
      if (c == '"') return Status::ok();
      if (static_cast<unsigned char>(c) < 0x20) {
        return Status::fail(fail("raw control character in string").message);
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (eof()) return Status::fail(fail("unterminated escape").message);
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          uint32_t cp = 0;
          if (auto st = parse_hex4(cp); !st) return st;
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // surrogate pair
            if (!consume_literal("\\u")) {
              return Status::fail(fail("lone high surrogate").message);
            }
            uint32_t low = 0;
            if (auto st = parse_hex4(low); !st) return st;
            if (low < 0xDC00 || low > 0xDFFF) {
              return Status::fail(fail("invalid low surrogate").message);
            }
            cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
          }
          append_utf8(out, cp);
          break;
        }
        default: return Status::fail(fail("invalid escape character").message);
      }
    }
  }

  Status parse_hex4(uint32_t& out) {
    if (pos_ + 4 > text_.size()) return Status::fail(fail("truncated \\u escape").message);
    out = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      out <<= 4;
      if (c >= '0' && c <= '9') {
        out |= static_cast<uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        out |= static_cast<uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        out |= static_cast<uint32_t>(c - 'A' + 10);
      } else {
        return Status::fail(fail("invalid hex digit in \\u escape").message);
      }
    }
    return Status::ok();
  }

  static void append_utf8(std::string& out, uint32_t cp) {
    if (cp < 0x80) {
      out.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  Status parse_number(Json& out) {
    const size_t start = pos_;
    if (consume('-')) {
      // sign consumed
    }
    if (eof() || peek() < '0' || peek() > '9') {
      return Status::fail(fail("invalid number").message);
    }
    while (!eof() && peek() >= '0' && peek() <= '9') ++pos_;
    bool is_double = false;
    if (!eof() && peek() == '.') {
      is_double = true;
      ++pos_;
      if (eof() || peek() < '0' || peek() > '9') {
        return Status::fail(fail("digits required after decimal point").message);
      }
      while (!eof() && peek() >= '0' && peek() <= '9') ++pos_;
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      is_double = true;
      ++pos_;
      if (!eof() && (peek() == '+' || peek() == '-')) ++pos_;
      if (eof() || peek() < '0' || peek() > '9') {
        return Status::fail(fail("digits required in exponent").message);
      }
      while (!eof() && peek() >= '0' && peek() <= '9') ++pos_;
    }
    const std::string token(text_.substr(start, pos_ - start));
    if (!is_double) {
      errno = 0;
      char* end = nullptr;
      const long long v = std::strtoll(token.c_str(), &end, 10);
      if (errno == 0 && end == token.c_str() + token.size()) {
        out = Json(static_cast<int64_t>(v));
        return Status::ok();
      }
      // fall through to double on overflow
    }
    char* end = nullptr;
    const double d = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) {
      return Status::fail(fail("malformed number").message);
    }
    out = Json(d);
    return Status::ok();
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Result<Json> Json::parse(std::string_view text) {
  Parser p(text);
  return p.parse_document();
}

}  // namespace erpi::util
