#include "util/strings.hpp"

namespace erpi::util {

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    const size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string_view trim(std::string_view s) {
  const auto is_space = [](char c) {
    return c == ' ' || c == '\t' || c == '\n' || c == '\r';
  };
  size_t begin = 0;
  size_t end = s.size();
  while (begin < end && is_space(s[begin])) ++begin;
  while (end > begin && is_space(s[end - 1])) --end;
  return s.substr(begin, end - begin);
}

bool starts_with(std::string_view s, std::string_view prefix) noexcept {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) noexcept {
  return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

std::string pad_number(uint64_t value, int width) {
  std::string digits = std::to_string(value);
  if (digits.size() < static_cast<size_t>(width)) {
    digits.insert(0, static_cast<size_t>(width) - digits.size(), '0');
  }
  return digits;
}

}  // namespace erpi::util
