#include "util/log.hpp"

#include <cstdio>

namespace erpi::util {

const char* log_level_name(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::Trace: return "TRACE";
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

Logger::Logger() {
  sink_ = [](LogLevel level, const std::string& line) {
    std::fprintf(stderr, "[%s] %s\n", log_level_name(level), line.c_str());
  };
}

Logger::Sink Logger::set_sink(Sink sink) {
  std::lock_guard lock(mu_);
  std::swap(sink_, sink);
  return sink;
}

void Logger::log(LogLevel level, const std::string& component, const std::string& message) {
  std::lock_guard lock(mu_);
  const uint64_t seq = sequence_++;
  if (sink_) sink_(level, "#" + std::to_string(seq) + " " + component + ": " + message);
}

}  // namespace erpi::util
