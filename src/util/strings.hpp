// Small string utilities shared across modules.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace erpi::util {

/// Split on a single-character delimiter. Empty fields are preserved.
std::vector<std::string> split(std::string_view s, char delim);

/// Join with a separator.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// Strip leading/trailing ASCII whitespace.
std::string_view trim(std::string_view s);

bool starts_with(std::string_view s, std::string_view prefix) noexcept;
bool ends_with(std::string_view s, std::string_view suffix) noexcept;

/// Zero-padded decimal rendering, e.g. pad_number(7, 3) == "007".
std::string pad_number(uint64_t value, int width);

}  // namespace erpi::util
