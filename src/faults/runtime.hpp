// PlanRuntime — executes one FaultPlan's scheduled actions against a live
// replay via the core::ReplayObserver hooks.
//
// One instance is bound to one subject fixture (the engine's observer_factory
// builds it), so per-plan mutable state (the crash checkpoint) is per-fixture
// and needs no locking. Determinism with the prefix cache holds because every
// action fires in before_event(pos), i.e. strictly before the event at pos
// executes: the snapshot taken at depth pos+1 captures the post-action state,
// and a replay resuming at depth > pos inherits the action from the restored
// checkpoint instead of re-firing it.
#pragma once

#include <optional>

#include "core/replay.hpp"
#include "faults/plan.hpp"
#include "subjects/subject_base.hpp"

namespace erpi::faults {

class PlanRuntime : public core::ReplayObserver {
 public:
  /// Binds the plan to `subject`'s fixture. Drop/duplicate plans install
  /// their SimNetwork::Script here, once — the script survives the per-
  /// interleaving reset() (which only rewinds the send ordinal) and rides
  /// through prefix-cache restores inside SimNetwork::State.
  PlanRuntime(FaultPlan plan, proxy::Rdl& subject);

  void on_replay_begin(proxy::Rdl& subject, const core::Interleaving& il,
                       size_t resume_depth) override;
  void before_event(proxy::Rdl& subject, const core::Interleaving& il,
                    size_t pos) override;
  /// Storage plans attach the retained recovery verdict to the outcome and,
  /// on divergence, push the "durable-log-recovery" violation — a subject
  /// must never silently reconcile past damaged history.
  void finish_outcome(proxy::Rdl& subject, const core::Interleaving& il,
                      core::InterleavingOutcome& outcome) override;

  const FaultPlan& plan() const noexcept { return plan_; }

 private:
  /// Damage the target replica's durable log per the plan, drive recovery,
  /// and classify the result into verdict_ (reset on unsupported subjects).
  void damage_and_recover();

  FaultPlan plan_;
  /// Crash/partition actions need SubjectBase machinery; for foreign Rdl
  /// implementations those plans degrade to no-ops (deterministically so).
  subjects::SubjectBase* base_ = nullptr;
  subjects::SubjectBase::ReplicaSnapshotState saved_;  // CrashRestart checkpoint
  /// Storage plans: verdict of the recovery injected at the damage position,
  /// retained across prefix-cache resumes past it (same guard discipline as
  /// saved_ — a resume at depth > damage position shares the prefix that
  /// produced it).
  std::optional<core::RecoveryVerdict> verdict_;
  /// StaleSnapshotRecovery: log length recorded at snapshot_pos (the "old
  /// checkpoint's" coverage of the log).
  std::optional<size_t> saved_log_len_;
};

}  // namespace erpi::faults
