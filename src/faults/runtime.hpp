// PlanRuntime — executes one FaultPlan's scheduled actions against a live
// replay via the core::ReplayObserver hooks.
//
// One instance is bound to one subject fixture (the engine's observer_factory
// builds it), so per-plan mutable state (the crash checkpoint) is per-fixture
// and needs no locking. Determinism with the prefix cache holds because every
// action fires in before_event(pos), i.e. strictly before the event at pos
// executes: the snapshot taken at depth pos+1 captures the post-action state,
// and a replay resuming at depth > pos inherits the action from the restored
// checkpoint instead of re-firing it.
#pragma once

#include "core/replay.hpp"
#include "faults/plan.hpp"
#include "subjects/subject_base.hpp"

namespace erpi::faults {

class PlanRuntime : public core::ReplayObserver {
 public:
  /// Binds the plan to `subject`'s fixture. Drop/duplicate plans install
  /// their SimNetwork::Script here, once — the script survives the per-
  /// interleaving reset() (which only rewinds the send ordinal) and rides
  /// through prefix-cache restores inside SimNetwork::State.
  PlanRuntime(FaultPlan plan, proxy::Rdl& subject);

  void on_replay_begin(proxy::Rdl& subject, const core::Interleaving& il,
                       size_t resume_depth) override;
  void before_event(proxy::Rdl& subject, const core::Interleaving& il,
                    size_t pos) override;

  const FaultPlan& plan() const noexcept { return plan_; }

 private:
  FaultPlan plan_;
  /// Crash/partition actions need SubjectBase machinery; for foreign Rdl
  /// implementations those plans degrade to no-ops (deterministically so).
  subjects::SubjectBase* base_ = nullptr;
  subjects::SubjectBase::ReplicaSnapshotState saved_;  // CrashRestart checkpoint
};

}  // namespace erpi::faults
