#include "faults/runtime.hpp"

#include <algorithm>
#include <string>

namespace erpi::faults {

PlanRuntime::PlanRuntime(FaultPlan plan, proxy::Rdl& subject) : plan_(plan) {
  base_ = dynamic_cast<subjects::SubjectBase*>(&subject);
  if (base_ == nullptr) return;
  // Scripted network faults are installed once per fixture; the per-
  // interleaving reset() rewinds the send ordinal but keeps the script.
  net::SimNetwork::Script script;
  if (plan_.kind == FaultPlan::Kind::DropSync) script.drop.insert(plan_.sync_index);
  if (plan_.kind == FaultPlan::Kind::DuplicateSync) {
    script.duplicate.insert(plan_.sync_index);
  }
  if (!script.empty()) base_->network().set_script(std::move(script));
  // Durable logging is enabled exactly for storage plans (and disabled
  // otherwise, so a reused fixture never carries a stale flag into another
  // plan): non-storage replays log nothing, snapshot the same bytes, and
  // serialize the same reports as before the storage family existed.
  base_->set_durable_logging(plan_.is_storage());
}

void PlanRuntime::on_replay_begin(proxy::Rdl& subject, const core::Interleaving& il,
                                  size_t resume_depth) {
  (void)subject;
  (void)il;
  if (plan_.kind == FaultPlan::Kind::CrashRestart) {
    // The retained checkpoint is valid only while the replay shares the
    // prefix it was taken in. Resuming at depth > snapshot_pos means
    // positions 0..snapshot_pos-1 (and so the pre-snapshot_pos state) are
    // identical to the replay that took it — keep it. Resuming at or before
    // snapshot_pos means before_event(snapshot_pos) will run again and
    // retake it; clear the stale one so a failed retake cannot restore
    // across interleavings.
    if (resume_depth <= plan_.snapshot_pos) {
      saved_ = subjects::SubjectBase::ReplicaSnapshotState{};
    }
  }
  if (plan_.is_storage()) {
    // Same guard discipline for the retained recovery verdict: a resume past
    // the damage position shares the prefix that produced it; a resume at or
    // before it will re-run the damage + recovery in before_event.
    const size_t arm_pos = plan_.kind == FaultPlan::Kind::StaleSnapshotRecovery
                               ? plan_.crash_pos
                               : plan_.damage_pos;
    if (resume_depth <= arm_pos) verdict_.reset();
    if (plan_.kind == FaultPlan::Kind::StaleSnapshotRecovery &&
        resume_depth <= plan_.snapshot_pos) {
      saved_log_len_.reset();
    }
  }
}

void PlanRuntime::before_event(proxy::Rdl& subject, const core::Interleaving& il,
                               size_t pos) {
  (void)subject;
  (void)il;
  if (base_ == nullptr) return;
  switch (plan_.kind) {
    case FaultPlan::Kind::None:
    case FaultPlan::Kind::DropSync:
    case FaultPlan::Kind::DuplicateSync:
      break;  // script-driven; nothing positional to do
    case FaultPlan::Kind::PartitionWindow:
      if (pos == plan_.window_begin) {
        base_->network().partition(plan_.replica_a, plan_.replica_b);
      }
      if (pos == plan_.window_end) {
        base_->network().heal(plan_.replica_a, plan_.replica_b);
      }
      break;
    case FaultPlan::Kind::CrashRestart:
      if (pos == plan_.snapshot_pos) {
        saved_ = base_->snapshot_replica(plan_.replica_a);
      }
      if (pos == plan_.crash_pos && saved_.valid()) {
        base_->crash_restore_replica(plan_.replica_a, saved_);
      }
      break;
    case FaultPlan::Kind::TornTail:
    case FaultPlan::Kind::DropLogEntry:
    case FaultPlan::Kind::DuplicateSegment:
      if (pos == plan_.damage_pos) damage_and_recover();
      break;
    case FaultPlan::Kind::StaleSnapshotRecovery:
      if (pos == plan_.snapshot_pos) {
        // The "old checkpoint" covers the log as written so far; everything
        // after it (minus suffix_keep survivors) dies with the crash.
        if (base_->durable_logging()) saved_log_len_ = base_->log_length(plan_.replica_a);
      }
      if (pos == plan_.crash_pos && saved_log_len_) {
        base_->splice_log_suffix(plan_.replica_a, *saved_log_len_, plan_.suffix_keep);
        base_->network().drop_inbound(plan_.replica_a);
        damage_and_recover();
      }
      break;
  }
}

void PlanRuntime::damage_and_recover() {
  if (!base_->durable_logging()) {
    // Subject never opted into the durable-log model: the plan degrades to a
    // deterministic no-op with no verdict (not a silent "recovered").
    verdict_.reset();
    return;
  }
  const auto replica = plan_.replica_a;
  // Reference state captured before damage: a recovery that claims full
  // success must reproduce it bit-for-bit, else it silently diverged.
  const std::string reference = base_->replica_state(replica).dump();

  switch (plan_.kind) {
    case FaultPlan::Kind::TornTail:
      base_->truncate_log(replica, plan_.entry_count);
      break;
    case FaultPlan::Kind::DropLogEntry: {
      const size_t len = base_->log_length(replica);
      if (len > 0) base_->drop_log_entry(replica, len / 2);
      break;
    }
    case FaultPlan::Kind::DuplicateSegment: {
      const size_t len = base_->log_length(replica);
      const size_t count = std::min(plan_.entry_count, len);
      if (count > 0) base_->duplicate_log_segment(replica, (len - count) / 2, count);
      break;
    }
    case FaultPlan::Kind::StaleSnapshotRecovery:
      break;  // the splice already happened in before_event
    default:
      break;
  }

  const auto result = base_->recover_from_log(replica);
  core::RecoveryVerdict verdict;
  switch (result.status) {
    case subjects::SubjectBase::RecoveryResult::Status::Unsupported:
      verdict_.reset();
      return;
    case subjects::SubjectBase::RecoveryResult::Status::MissingEntries:
      verdict.status = core::RecoveryVerdict::Status::MissingEntries;
      verdict.first_missing = result.first_missing;
      verdict.missing_count = result.missing_count;
      break;
    case subjects::SubjectBase::RecoveryResult::Status::Ok:
      // The subject claims a complete recovery: hold it to that. Anything
      // short of the exact pre-damage state is a silent divergence.
      verdict.status = base_->replica_state(replica).dump() == reference
                           ? core::RecoveryVerdict::Status::Recovered
                           : core::RecoveryVerdict::Status::Diverged;
      break;
  }
  verdict_ = verdict;
}

void PlanRuntime::finish_outcome(proxy::Rdl& subject, const core::Interleaving& il,
                                 core::InterleavingOutcome& outcome) {
  (void)subject;
  if (!plan_.is_storage() || !verdict_) return;
  outcome.recovery = *verdict_;
  if (verdict_->status == core::RecoveryVerdict::Status::Diverged) {
    std::string key;
    il.append_key(key);
    outcome.violations.push_back(
        {"durable-log-recovery",
         "plan " + plan_.key() + ": replica " + std::to_string(plan_.replica_a) +
             " silently diverged recovering from a damaged durable log (interleaving " +
             key + ")"});
  }
}

}  // namespace erpi::faults
