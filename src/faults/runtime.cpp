#include "faults/runtime.hpp"

namespace erpi::faults {

PlanRuntime::PlanRuntime(FaultPlan plan, proxy::Rdl& subject) : plan_(plan) {
  base_ = dynamic_cast<subjects::SubjectBase*>(&subject);
  if (base_ == nullptr) return;
  // Scripted network faults are installed once per fixture; the per-
  // interleaving reset() rewinds the send ordinal but keeps the script.
  net::SimNetwork::Script script;
  if (plan_.kind == FaultPlan::Kind::DropSync) script.drop.insert(plan_.sync_index);
  if (plan_.kind == FaultPlan::Kind::DuplicateSync) {
    script.duplicate.insert(plan_.sync_index);
  }
  if (!script.empty()) base_->network().set_script(std::move(script));
}

void PlanRuntime::on_replay_begin(proxy::Rdl& subject, const core::Interleaving& il,
                                  size_t resume_depth) {
  (void)subject;
  (void)il;
  if (plan_.kind != FaultPlan::Kind::CrashRestart) return;
  // The retained checkpoint is valid only while the replay shares the prefix
  // it was taken in. Resuming at depth > snapshot_pos means positions
  // 0..snapshot_pos-1 (and so the pre-snapshot_pos state) are identical to
  // the replay that took it — keep it. Resuming at or before snapshot_pos
  // means before_event(snapshot_pos) will run again and retake it; clear the
  // stale one so a failed retake cannot restore across interleavings.
  if (resume_depth <= plan_.snapshot_pos) {
    saved_ = subjects::SubjectBase::ReplicaSnapshotState{};
  }
}

void PlanRuntime::before_event(proxy::Rdl& subject, const core::Interleaving& il,
                               size_t pos) {
  (void)subject;
  (void)il;
  if (base_ == nullptr) return;
  switch (plan_.kind) {
    case FaultPlan::Kind::None:
    case FaultPlan::Kind::DropSync:
    case FaultPlan::Kind::DuplicateSync:
      break;  // script-driven; nothing positional to do
    case FaultPlan::Kind::PartitionWindow:
      if (pos == plan_.window_begin) {
        base_->network().partition(plan_.replica_a, plan_.replica_b);
      }
      if (pos == plan_.window_end) {
        base_->network().heal(plan_.replica_a, plan_.replica_b);
      }
      break;
    case FaultPlan::Kind::CrashRestart:
      if (pos == plan_.snapshot_pos) {
        saved_ = base_->snapshot_replica(plan_.replica_a);
      }
      if (pos == plan_.crash_pos && saved_.valid()) {
        base_->crash_restore_replica(plan_.replica_a, saved_);
      }
      break;
  }
}

}  // namespace erpi::faults
