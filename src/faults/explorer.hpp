// FaultExplorer — the fault-schedule exploration driver (DESIGN.md §8).
//
// Composes the bounded plan catalog with the Session's interleaving stream,
// plan-major: for each plan, the configured enumerator is rebuilt and its
// full surviving stream is replayed under that plan through the parallel
// scheduler (workers = max(1, Session::Config::parallelism); one worker is
// the degenerate deterministic case). Outcomes are committed in (plan,
// interleaving) order, so the merged report — explored pairs, violations,
// first (interleaving, plan) violation, quarantine list — is identical at
// any parallelism and any snapshot depth.
//
// Robustness mechanisms wired here:
//  * run journal (core::RunJournal): when Session::Config::resume_journal is
//    set, every committed pair is journaled; a killed run resumed with the
//    same configuration skips the journaled prefix of each plan's sweep and
//    merges the recorded outcomes, reproducing the uninterrupted report.
//  * replay watchdog: ReplayOptions::watchdog_timeout_ms applies per replay
//    via the worker pool; timed-out pairs are quarantined as "plan/il-key".
//  * budget: one shared BudgetAccount spans all plans; exhaustion surfaces
//    as report.budget_exhausted with partial results, never as a throw.
//
// Deliberately NOT wired for fault runs: per-pair Datalog persistence and
// runtime-constraint polling (Session::end's on_interleaving_done plumbing).
// A fault sweep replays the same interleavings once per plan; persisting
// every pair would multiply the store by the catalog size.
#pragma once

#include <vector>

#include "core/session.hpp"
#include "corpus/diff.hpp"
#include "corpus/store.hpp"
#include "faults/plan.hpp"

namespace erpi::faults {

/// What a run-configuration fingerprint guards. Both hash everything that
/// shapes the (interleaving, plan) stream and its outcomes — events, units,
/// enumerator configuration, caps, catalog options — and neither hashes
/// parallelism or the watchdog deadline. They differ on snapshot depth:
///   Journal — includes max_snapshot_depth (a resumed run must recreate the
///             exact budget trajectory, which snapshot caches feed into).
///   Corpus  — excludes it: replay outcomes are depth-independent, so a
///             depth-0 sweep may reuse classes proven by a depth-16 sweep.
enum class FingerprintPurpose { Journal, Corpus };

/// The fingerprint namespacing journal resumes and corpus records. Exposed
/// for tests and tooling; session must have finished capture.
uint64_t run_fingerprint(const core::Session& session,
                         const std::vector<FaultPlan>& plans,
                         const CatalogOptions& catalog,
                         const core::ReplayOptions& replay,
                         FingerprintPurpose purpose);

class FaultExplorer {
 public:
  /// `session` must outlive the explorer. Catalog options bound the plan
  /// sweeps (see CatalogOptions); the rest of the run configuration comes
  /// from the session's Config (parallelism, replay options, snapshot depth,
  /// resume_journal).
  explicit FaultExplorer(core::Session& session, CatalogOptions catalog = {});

  /// Finish the capture, build the catalog, and replay every surviving
  /// interleaving under every plan. Requires Config::subject_factory (the
  /// worker pool clones fixtures even at parallelism 1).
  core::ReplayReport run(const core::AssertionFactory& assertion_factory);

  /// The composed catalog (valid after run()).
  const std::vector<FaultPlan>& catalog() const noexcept { return plans_; }

  /// Every worker's assertion instances across all plan runs, for merging
  /// observer state (core::collect_profiles). Workers abandoned to hung
  /// replays are not included.
  const std::vector<core::AssertionList>& worker_assertions() const noexcept {
    return worker_assertions_;
  }

  /// Corpus reuse accounting for the last run() (zeroes when no corpus is
  /// configured). Kept out of the ReplayReport on purpose: a warm run's
  /// report stays byte-identical to a cold run's.
  const corpus::ReuseStats& corpus_stats() const noexcept { return corpus_stats_; }

  /// Diff-mode result of the last run() (empty in reuse mode / no corpus):
  /// every (interleaving, plan) class whose live outcome differs from the
  /// corpus record, plus compared/unchanged/missing totals.
  const corpus::OutcomeDiff& outcome_diff() const noexcept { return outcome_diff_; }

  /// Write-fault injection seams (tests only): substitute the stream the run
  /// journal / corpus store writes through, to drive the graceful
  /// ENOSPC/EIO degradation (report.journal_degraded / corpus_degraded).
  void set_journal_stream_factory(core::RunJournal::StreamFactory factory) {
    journal_stream_factory_ = std::move(factory);
  }
  void set_corpus_stream_factory(corpus::Store::StreamFactory factory) {
    corpus_stream_factory_ = std::move(factory);
  }

 private:
  core::Session* session_;
  CatalogOptions catalog_options_;
  std::vector<FaultPlan> plans_;
  std::vector<core::AssertionList> worker_assertions_;
  corpus::ReuseStats corpus_stats_;
  corpus::OutcomeDiff outcome_diff_;
  core::RunJournal::StreamFactory journal_stream_factory_;
  corpus::Store::StreamFactory corpus_stream_factory_;
};

/// One-call convenience mirroring Session::end_with_factory:
///   session.start(factory); ... workload ...;
///   auto report = faults::explore_with_faults(session, assertion_factory);
core::ReplayReport explore_with_faults(core::Session& session,
                                       const core::AssertionFactory& assertion_factory,
                                       const CatalogOptions& catalog = {});

}  // namespace erpi::faults
