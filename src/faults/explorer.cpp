#include "faults/explorer.hpp"

#include <map>
#include <stdexcept>
#include <unordered_set>
#include <utility>

#include "core/dpor.hpp"
#include "core/persist.hpp"
#include "corpus/footprints.hpp"
#include "faults/runtime.hpp"
#include "sched/explorer.hpp"
#include "util/hash.hpp"
#include "util/log.hpp"
#include "util/stopwatch.hpp"

namespace erpi::faults {

namespace {

/// Footprints are keyed per plan *kind* ("none", "drop", ...), not per plan
/// instance — "drop:3" and "drop:5" perturb events in the same way, and
/// per-instance contexts would never accumulate kSyncTrustRuns confirmations.
std::string plan_kind_context(const FaultPlan& plan) {
  const std::string key = plan.key();
  const auto colon = key.find(':');
  return colon == std::string::npos ? key : key.substr(0, colon);
}

}  // namespace

uint64_t run_fingerprint(const core::Session& session,
                         const std::vector<FaultPlan>& plans,
                         const CatalogOptions& catalog,
                         const core::ReplayOptions& replay,
                         FingerprintPurpose purpose) {
  util::Fnv1aHasher hasher;
  const auto& config = session.config();
  hasher.bytes(core::exploration_mode_name(config.mode));
  hasher.u64(static_cast<uint64_t>(config.generation_order));
  hasher.u64(config.random_seed);
  hasher.u64(config.dfs_branch_seed);
  hasher.u64(replay.max_interleavings);
  hasher.u64(replay.stop_on_violation ? 1 : 0);
  // Snapshot depth shapes the budget trajectory a resumed run must recreate,
  // but not replay outcomes — the corpus namespace drops it so sweeps at
  // different depths share proven classes.
  if (purpose == FingerprintPurpose::Journal) hasher.u64(replay.max_snapshot_depth);
  hasher.u64(replay.threaded ? 1 : 0);
  for (const auto& event : session.events()) hasher.bytes(event.to_json().dump());
  for (const auto& unit : session.units()) {
    for (const int id : unit.events) hasher.i64(id);
    hasher.bytes("/");
  }
  for (const auto& plan : plans) hasher.bytes(plan.key());
  // Catalog options are hashed even though the plan keys already are:
  // two option sets can compose the *same* catalog today (e.g.
  // partition_window_length with max_partition_windows == 0) yet diverge on
  // the next capture, and a stale journal/corpus entry under the old options
  // must never be silently reused.
  hasher.u64(catalog.baseline ? 1 : 0);
  hasher.u64(catalog.max_drops);
  hasher.u64(catalog.max_duplicates);
  hasher.u64(catalog.max_partition_windows);
  hasher.u64(catalog.partition_window_length);
  hasher.u64(catalog.max_crash_restarts);
  hasher.u64(catalog.max_torn_tails);
  hasher.u64(catalog.torn_tail_entries);
  hasher.u64(catalog.max_drop_log_entries);
  hasher.u64(catalog.max_duplicate_segments);
  hasher.u64(catalog.duplicate_segment_entries);
  hasher.u64(catalog.max_stale_snapshot_recoveries);
  hasher.u64(catalog.stale_suffix_keep);
  hasher.u64(catalog.max_plans);
  // Dynamic pruning reshapes which interleavings are generated at all, so
  // both namespaces hash its options; the journal additionally pins the
  // learned relation itself — a resumed run must regenerate the exact same
  // stream to merge the journaled prefix soundly.
  hasher.u64(config.dynamic_pruning.enabled ? 1 : 0);
  hasher.u64(config.dynamic_pruning.paranoid ? 1 : 0);
  hasher.u64(config.dynamic_pruning.footprint_schema);
  if (purpose == FingerprintPurpose::Journal && session.dpor_learner() != nullptr) {
    hasher.u64(session.dpor_learner()->relation_digest());
  }
  return hasher.digest();
}

FaultExplorer::FaultExplorer(core::Session& session, CatalogOptions catalog)
    : session_(&session), catalog_options_(catalog) {}

core::ReplayReport FaultExplorer::run(const core::AssertionFactory& assertion_factory) {
  session_->finish_capture();
  const auto& config = session_->config();
  if (!config.subject_factory) {
    throw std::invalid_argument(
        "fault-schedule exploration requires a subject factory "
        "(Session::start(factory) or Config::subject_factory)");
  }

  // Effective replay options, resolved the way Session::prepare_run does.
  core::ReplayOptions replay = config.replay;
  if (config.max_snapshot_depth) replay.max_snapshot_depth = *config.max_snapshot_depth;
  if (config.isolation != core::Isolation::None) replay.isolation = config.isolation;

  const bool guided = config.search.guided();
  if (guided && !config.resume_journal.empty()) {
    throw std::invalid_argument(
        "guided search cannot resume from a journal: journal skip-and-merge "
        "assumes the enumerator's stream order, which a searcher reorders");
  }

  // The catalog needs the replica count; probe one fixture for it.
  int replica_count = 0;
  {
    const auto probe = config.subject_factory();
    if (probe == nullptr) {
      throw std::invalid_argument("subject factory returned a null fixture");
    }
    replica_count = probe->replica_count();
  }
  plans_ = build_catalog(session_->events(), replica_count, catalog_options_);
  worker_assertions_.clear();

  // ---- dynamic pruning: warm-start and prime before fingerprinting --------
  // The journal fingerprint pins the learned relation (see run_fingerprint),
  // so the learner must reach its frozen-input state — corpus seed plus the
  // priming replay — before fingerprints are computed.
  std::optional<corpus::FootprintBank> footprint_bank;
  uint64_t footprint_fp = 0;
  if (config.dynamic_pruning.enabled && !config.corpus_path.empty()) {
    footprint_bank.emplace(corpus::FootprintBank::load(config.corpus_path));
    footprint_fp = core::dpor_context_fingerprint(session_->events(),
                                                  config.dynamic_pruning.footprint_schema);
    session_->prepare_dynamic_pruning([&](core::IndependenceLearner& learner) {
      footprint_bank->seed_learner(learner, footprint_fp);
    });
  } else {
    session_->prepare_dynamic_pruning();  // no-op unless enabled
  }

  util::Stopwatch watch;
  core::ReplayReport report;

  // One budget spans the whole sweep, like one sequential run would charge.
  core::BudgetAccount local_budget(replay.resource_budget_bytes);
  core::BudgetAccount* budget = replay.budget != nullptr ? replay.budget : &local_budget;

  // ---- crash-safe journal: load what a killed run already explored --------
  const size_t checkpoint_every =
      config.journal_checkpoint_every < 1 ? 1 : config.journal_checkpoint_every;
  const uint64_t fingerprint = run_fingerprint(*session_, plans_, catalog_options_, replay,
                                               FingerprintPurpose::Journal);
  std::map<std::string, std::vector<core::RunJournal::Record>> journaled;
  if (!config.resume_journal.empty()) {
    if (auto loaded = core::RunJournal::load(config.resume_journal)) {
      if (loaded->fingerprint == fingerprint) {
        for (auto& record : loaded->records) {
          journaled[record.plan].push_back(std::move(record));
        }
      } else {
        ERPI_INFO("faults") << "resume journal fingerprint mismatch, starting fresh: "
                            << config.resume_journal;
      }
    }
  }
  std::optional<core::RunJournal> journal;
  if (!config.resume_journal.empty()) {
    journal = core::RunJournal::create(config.resume_journal, fingerprint, checkpoint_every,
                                       journal_stream_factory_);
    // Re-seed the fresh journal with the resumed prefix so a second kill
    // resumes from at least this far, then compact it in one atomic rename.
    for (const auto& plan : plans_) {
      const auto it = journaled.find(plan.key());
      if (it == journaled.end()) continue;
      for (const auto& record : it->second) journal->append(record);
    }
    journal->checkpoint();
  }

  // ---- cross-run outcome corpus (DESIGN.md §11) ---------------------------
  corpus_stats_ = {};
  outcome_diff_ = {};
  std::optional<corpus::Store> store;
  uint64_t corpus_fp = 0;
  if (!config.corpus_path.empty()) {
    corpus::StoreOptions store_options;
    store_options.segment_roll_records = checkpoint_every;
    store.emplace(corpus::Store::open(config.corpus_path, store_options,
                                      corpus_stream_factory_));
    store->begin_run();
    corpus_fp = run_fingerprint(*session_, plans_, catalog_options_, replay,
                                FingerprintPurpose::Corpus);
  }
  const bool reuse = store && config.corpus_mode == core::CorpusMode::Reuse;

  // ---- guided-search inputs, shared across the whole plan sweep -----------
  // ViolationFirst priors: explicit config priors plus every distinct
  // violating interleaving the corpus has recorded under ANY fingerprint or
  // plan — a violation's neighborhood transfers across configurations even
  // when outcome reuse must not (the violation/4 relation's corpus-side view).
  std::shared_ptr<const std::vector<core::Interleaving>> priors;
  std::shared_ptr<sched::CoverageState> coverage;
  if (guided) {
    auto combined = std::make_shared<std::vector<core::Interleaving>>(
        config.violation_priors);
    if (store) {
      std::unordered_set<std::string> seen;
      for (const auto& prior : *combined) seen.insert(prior.key());
      store->for_each_sorted([&](const corpus::Record& record) {
        if (record.kind != corpus::OutcomeKind::Violation) return;
        if (!seen.insert(record.il).second) return;
        combined->push_back(core::Interleaving::from_key(record.il));
      });
    }
    if (!combined->empty()) priors = std::move(combined);
    // One CoverageState across every plan's sweep: later plans' searchers
    // rank still-uncovered fault-plan × operation pairs first.
    coverage = std::make_shared<sched::CoverageState>();
  }

  // Offer one committed outcome to the corpus — live replays, cache hits and
  // journal-merged pairs all pass through here (on the control threads, under
  // the explorer's enumerator mutex while a plan run is live). Reuse mode
  // proves new classes; diff mode compares against the stored record and
  // persists last-wins so the corpus tracks the current library behavior.
  const auto offer_to_corpus = [&](const std::string& plan_key, const std::string& il_key,
                                   const core::InterleavingOutcome& outcome) {
    if (!store) return;
    const corpus::Record* prior = store->lookup(corpus_fp, plan_key, il_key);
    if (reuse) {
      if (prior != nullptr) return;  // already proven (a cache hit lands here)
      store->append(corpus::Record::from_outcome(corpus_fp, plan_key, il_key, outcome));
      ++corpus_stats_.appended;
      return;
    }
    corpus::Record live = corpus::Record::from_outcome(corpus_fp, plan_key, il_key, outcome);
    if (prior == nullptr) {
      ++outcome_diff_.missing;
      store->append(std::move(live));
      return;
    }
    ++outcome_diff_.compared;
    if (prior->same_outcome(live)) {
      ++outcome_diff_.unchanged;  // the lookup above refreshed its recency
      return;
    }
    outcome_diff_.changed.push_back({plan_key, il_key, *prior, live});
    store->append(std::move(live));
  };

  // ---- plan-major sweep ----------------------------------------------------
  bool stopped = false;         // stop_on_violation hit
  bool all_exhausted = true;    // every plan's stream ran dry
  bool any_hit_cap = false;

  // The caller's outcome tap survives the per-plan overwrite below: the
  // commit lambda re-delivers every pair — live, cache-hit and
  // journal-merged alike — with the *global* pair index, which is what a
  // streaming consumer (the service daemon's progress deltas) wants.
  const auto user_on_outcome = replay.on_outcome;

  // Commit one (interleaving, plan) pair into the run report — the single
  // aggregation point both live outcomes and journal-merged outcomes go
  // through, so resumed and uninterrupted runs produce identical reports.
  const auto commit = [&](const FaultPlan& plan, uint64_t plan_ordinal,
                          const core::Interleaving& il,
                          const core::InterleavingOutcome& outcome, bool from_journal) {
    ++report.explored;
    if (from_journal) ++report.pairs_skipped_from_journal;
    if (outcome.quarantine()) {
      if (outcome.timed_out) {
        ++report.timed_out;
      } else if (outcome.crashed) {
        ++report.crashed_replays;
      } else {
        ++report.oom_replays;
      }
      std::string qkey = plan.key();
      qkey += '/';
      il.append_key(qkey);
      report.quarantine_records.push_back(
          {qkey, outcome.quarantine_reason(), outcome.term_signal});
      report.quarantined.push_back(std::move(qkey));
    }
    core::count_recovery(report, outcome);
    for (const auto& violation : outcome.violations) {
      ++report.violations;
      if (report.messages.size() < 16) {
        report.messages.push_back("[plan " + plan.key() + "] " + violation.message);
      }
      if (!report.reproduced) {
        report.reproduced = true;
        report.first_violation_index = report.explored;
        report.first_violation_assertion = violation.assertion;
        report.first_violation = il;
        report.first_violation_plan = plan.key();
        report.first_violation_plan_interleaving = plan_ordinal;
      }
    }
    if (!outcome.violations.empty() && replay.stop_on_violation) stopped = true;
    if (user_on_outcome) user_on_outcome(report.explored, il, outcome);
  };

  for (const auto& plan : plans_) {
    if (stopped || budget->crashed()) break;
    // Cooperative cancel between plans (the per-plan explorer checks the
    // same token between interleavings).
    if (replay.cancel && replay.cancel->load(std::memory_order_relaxed)) {
      report.cancelled = true;
      break;
    }
    ++report.plans_explored;

    // Merge the journaled prefix of this plan's sweep (an ascending 1..m
    // prefix, because the committer journals in commit order).
    uint64_t skip = 0;
    if (const auto it = journaled.find(plan.key()); it != journaled.end()) {
      for (const auto& record : it->second) {
        core::InterleavingOutcome outcome;
        outcome.timed_out = record.timed_out;
        // Sandbox outcomes resume as-recorded: a known-crashing pair is
        // quarantined again without re-executing it.
        if (record.crash_signal != 0) {
          outcome.crashed = true;
          outcome.term_signal = record.crash_signal;
        }
        outcome.oom = record.oom;
        for (const auto& violation : record.violations) {
          outcome.violations.push_back({violation.assertion, violation.message});
        }
        if (!record.recovery.empty()) {
          if (const auto status = core::recovery_status_from_name(record.recovery)) {
            core::RecoveryVerdict verdict;
            verdict.status = *status;
            verdict.first_missing = record.recovery_first;
            verdict.missing_count = record.recovery_count;
            outcome.recovery = verdict;
          }
        }
        // Journal-merged pairs are proven outcomes of this configuration —
        // the corpus learns them (or diffs against them) like live commits.
        offer_to_corpus(plan.key(), record.key, outcome);
        commit(plan, record.interleaving, core::Interleaving::from_key(record.key),
               outcome, /*from_journal=*/true);
        skip = record.interleaving;
        if (stopped) break;
      }
    }
    if (stopped) break;

    // Rebuild the enumerator for this plan and drain the journaled prefix,
    // charging the explored-interleaving budget exactly as the dispatcher
    // would have — so a resumed run's budget trajectory matches.
    auto enumerator = session_->make_enumerator();
    if (plan.kind != FaultPlan::Kind::None) {
      // Footprints were learned under the unfaulted ("none") context; a fault
      // plan changes what events touch, so dynamic cuts stay off for faulted
      // plans and their replays instead train the plan kind's context for
      // future (union-across-contexts, conservative) queries.
      if (auto* pruned = dynamic_cast<core::PrunedEnumerator*>(enumerator.get())) {
        pruned->set_dynamic_pruning(false);
      }
    }
    bool drained_dry = false;
    for (uint64_t i = 0; i < skip; ++i) {
      const auto il = enumerator->next();
      if (!il) {
        drained_dry = true;
        break;
      }
      budget->charge(core::explored_log_entry_bytes(*il));
    }
    if (drained_dry) continue;  // journal covered the whole (short) stream

    const uint64_t cap = replay.max_interleavings;
    sched::ExplorerOptions options;
    options.parallelism = std::max(1, config.parallelism);
    options.replay = replay;
    options.replay.budget = budget;
    options.replay.max_interleavings = cap > skip ? cap - skip : 0;
    options.replay.extra_cache_bytes = nullptr;
    options.replay.on_interleaving_done = nullptr;
    if (session_->dpor_learner() != nullptr) {
      options.replay.footprint_learner = session_->dpor_learner();
      options.replay.footprint_context = plan_kind_context(plan);
    }
    options.replay.observer_factory = [plan](proxy::Rdl& subject) {
      return std::make_shared<PlanRuntime>(plan, subject);
    };
    options.replay.on_outcome = [&](uint64_t index, const core::Interleaving& il,
                                    const core::InterleavingOutcome& outcome) {
      const uint64_t plan_ordinal = skip + index;
      std::string il_key;
      il.append_key(il_key);
      if (journal) {
        core::RunJournal::Record record;
        record.plan = plan.key();
        record.interleaving = plan_ordinal;
        record.key = il_key;
        record.timed_out = outcome.timed_out;
        if (outcome.crashed) record.crash_signal = outcome.term_signal;
        record.oom = outcome.oom;
        for (const auto& violation : outcome.violations) {
          record.violations.push_back({violation.assertion, violation.message});
        }
        if (outcome.recovery) {
          record.recovery = core::recovery_status_name(outcome.recovery->status);
          record.recovery_first = outcome.recovery->first_missing;
          record.recovery_count = outcome.recovery->missing_count;
        }
        journal->append(record);
      }
      offer_to_corpus(plan.key(), il_key, outcome);
      commit(plan, plan_ordinal, il, outcome, /*from_journal=*/false);
    };
    options.subject_factory = config.subject_factory;
    options.assertion_factory = assertion_factory;
    options.search = config.search;
    options.collect_stats = config.collect_explorer_stats;
    options.violation_priors = priors;
    options.coverage = coverage;
    options.context_key = plan.key();
    if (reuse) {
      // The dispatcher resolves already-proven classes straight from the
      // corpus; misses replay normally and are appended via offer_to_corpus.
      options.outcome_cache = [&, plan_key = plan.key()](const core::Interleaving& il)
          -> std::optional<core::InterleavingOutcome> {
        std::string il_key;
        il.append_key(il_key);
        const corpus::Record* record = store->lookup(corpus_fp, plan_key, il_key);
        if (record != nullptr && record->kind != corpus::OutcomeKind::BudgetExhausted) {
          ++corpus_stats_.hits;
          return record->to_outcome();
        }
        ++corpus_stats_.misses;
        return std::nullopt;
      };
    }

    sched::ParallelExplorer explorer(std::move(options));
    const core::ReplayReport plan_report = explorer.run(*enumerator, session_->events());
    for (const auto& assertions : explorer.worker_assertions()) {
      worker_assertions_.push_back(assertions);
    }
    report.prefix.merge(plan_report.prefix);
    report.sandbox.merge(plan_report.sandbox);
    report.explorer.merge(plan_report.explorer);
    if (!plan_report.exhausted) all_exhausted = false;
    if (plan_report.hit_cap) any_hit_cap = true;
    if (plan_report.crashed) {
      report.crashed = true;
      report.budget_exhausted = true;
      break;
    }
    if (plan_report.cancelled) {
      report.cancelled = true;
      break;
    }
  }

  if (journal) journal->checkpoint();
  // Fold this run's segments into the sorted index when they have piled up
  // (persisting recency refreshes along the way); cheap runs skip the rewrite.
  if (store) store->maybe_compact();
  // Persist what this run learned about event footprints so the next run
  // starts warm (and the kSyncTrustRuns gate can open).
  if (footprint_bank && session_->dpor_learner() != nullptr &&
      footprint_bank->absorb(*session_->dpor_learner(), footprint_fp) &&
      !footprint_bank->save(config.corpus_path)) {
    report.corpus_degraded = true;
  }

  // Mid-run write failures degrade instead of throwing (satellite: graceful
  // ENOSPC/EIO): the sweep completed, the flags tell the caller that resume /
  // reuse coverage is partial.
  if (journal && journal->degraded()) report.journal_degraded = true;
  if (store && store->degraded()) report.corpus_degraded = true;

  if (!stopped && !report.crashed && !report.cancelled) {
    report.exhausted = all_exhausted;
    report.hit_cap = any_hit_cap;
  }
  report.elapsed_seconds = watch.elapsed_seconds();
  return report;
}

core::ReplayReport explore_with_faults(core::Session& session,
                                       const core::AssertionFactory& assertion_factory,
                                       const CatalogOptions& catalog) {
  FaultExplorer explorer(session, catalog);
  return explorer.run(assertion_factory);
}

}  // namespace erpi::faults
