// Deterministic fault plans (DESIGN.md §8).
//
// A FaultPlan is a small value type of scheduled fault actions keyed to
// interleaving positions — not probabilities. Where SimNetwork::Faults makes
// the k-th send fail *sometimes*, a plan makes exactly the k-th sync send
// fail on *every* replay, which is what turns network/replica faults into an
// explored dimension: the fault layer replays each surviving interleaving
// under each plan of a bounded catalog, and a violation is named by its
// (interleaving, plan) pair.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/interleaving.hpp"

namespace erpi::faults {

struct FaultPlan {
  enum class Kind {
    None,             // fault-free baseline
    DropSync,         // drop the k-th sync send of the interleaving
    DuplicateSync,    // duplicate the k-th sync send
    PartitionWindow,  // sever one link for positions [window_begin, window_end)
    CrashRestart,     // snapshot a replica, later crash + restore it
    // Storage faults (DESIGN.md §13): damage a replica's durable log at an
    // exact interleaving position, then drive recovery from the damaged log
    // and classify the result (recovered / missing_entries / diverged).
    TornTail,               // truncate the last entry_count log entries
    DropLogEntry,           // hide one middle log entry
    DuplicateSegment,       // re-append a copied entry range
    StaleSnapshotRecovery,  // old checkpoint + partial log suffix
  };

  /// True for the durable-log damage kinds (TornTail, DropLogEntry,
  /// DuplicateSegment, StaleSnapshotRecovery) — the plans that require the
  /// subject's opt-in durable-log model.
  bool is_storage() const {
    return kind == Kind::TornTail || kind == Kind::DropLogEntry ||
           kind == Kind::DuplicateSegment || kind == Kind::StaleSnapshotRecovery;
  }

  Kind kind = Kind::None;
  /// DropSync / DuplicateSync: 1-based ordinal of the targeted send, counted
  /// over sync_req executions in interleaving order (SimNetwork::Script).
  uint64_t sync_index = 0;
  /// PartitionWindow: the link (replica_a, replica_b) is severed immediately
  /// before position window_begin executes and healed immediately before
  /// position window_end executes (window_end == interleaving size means the
  /// window never closes; reset() between interleavings heals it).
  size_t window_begin = 0;
  size_t window_end = 0;
  net::ReplicaId replica_a = -1;
  net::ReplicaId replica_b = -1;  // PartitionWindow only
  /// CrashRestart: replica_a's state is checkpointed immediately before
  /// position snapshot_pos executes, then immediately before position
  /// crash_pos the replica crashes: its state reverts to the checkpoint and
  /// its queued inbox is discarded (SubjectBase::crash_restore_replica).
  size_t snapshot_pos = 0;
  size_t crash_pos = 0;
  /// Storage kinds: the durable log of replica_a is damaged immediately
  /// before position damage_pos executes, then recovery runs from the
  /// damaged log. StaleSnapshotRecovery instead uses snapshot_pos (record
  /// log length) and crash_pos (splice + recover), with suffix_keep as the
  /// number of post-checkpoint entries that survive.
  size_t damage_pos = 0;
  /// TornTail: entries truncated; DuplicateSegment: entries copied.
  size_t entry_count = 0;
  /// StaleSnapshotRecovery: log entries past the checkpoint that survive.
  size_t suffix_keep = 0;

  bool operator==(const FaultPlan&) const = default;

  /// Stable id used in reports and the run journal: "none", "drop:2",
  /// "dup:1", "part:0-1@2..4", "crash:r1@1->3", "torn:r0@3-2",
  /// "droplog:r1@2", "dupseg:r0@3x1", "stale:r1@1->3+1".
  std::string key() const;

  /// Inverse of key(): parses any id key() can produce (all kinds, old and
  /// new) back into the plan, so persisted plan keys — journal records,
  /// corpus entries, Datalog facts — decompose without ad-hoc string
  /// splitting. Returns nullopt for malformed input.
  static std::optional<FaultPlan> parse(std::string_view key);
};

/// Bounded catalog composition. Every knob caps one sweep; the catalog stays
/// small by construction (|catalog| <= 1 + max_drops + max_duplicates +
/// max_partition_windows + max_crash_restarts + the storage sweeps, then
/// clipped to max_plans).
struct CatalogOptions {
  bool baseline = true;  /// include the fault-free "none" plan first
  /// Single-drop sweep: plans drop:1 .. drop:k, bounded by the number of
  /// sync_req events captured.
  size_t max_drops = 4;
  /// Single-duplicate sweep, same bounds as drops.
  size_t max_duplicates = 4;
  /// Partition windows starting at positions 0, 1, ..., cycling through the
  /// replica pairs, each window partition_window_length positions long.
  size_t max_partition_windows = 4;
  size_t partition_window_length = 2;
  /// Crash-restart plans, one per replica (cycling) at positions derived
  /// from the event count.
  size_t max_crash_restarts = 2;
  /// Storage-fault sweeps (all off by default: they require the subject's
  /// opt-in durable-log model, and enabling them changes the catalog and so
  /// the journal/corpus fingerprint). Each sweep cycles replicas and slides
  /// the damage position backwards from the end of the interleaving, where
  /// the log has the most to lose.
  size_t max_torn_tails = 0;
  size_t torn_tail_entries = 2;  /// entries truncated per TornTail plan
  size_t max_drop_log_entries = 0;
  size_t max_duplicate_segments = 0;
  size_t duplicate_segment_entries = 1;  /// entries copied per DuplicateSegment
  size_t max_stale_snapshot_recoveries = 0;
  size_t stale_suffix_keep = 1;  /// post-checkpoint entries that survive
  /// Hard cap on the composed catalog.
  size_t max_plans = 32;

  bool operator==(const CatalogOptions&) const = default;
};

/// Deterministically compose the plan catalog for a captured event set: same
/// events + same options -> same plans in the same order, which is what makes
/// the (interleaving, plan) exploration space stable across runs, worker
/// counts, and journal resumes.
std::vector<FaultPlan> build_catalog(const core::EventSet& events, int replica_count,
                                     const CatalogOptions& options = {});

}  // namespace erpi::faults
