#include "faults/plan.hpp"

#include <algorithm>

namespace erpi::faults {

std::string FaultPlan::key() const {
  switch (kind) {
    case Kind::None:
      return "none";
    case Kind::DropSync:
      return "drop:" + std::to_string(sync_index);
    case Kind::DuplicateSync:
      return "dup:" + std::to_string(sync_index);
    case Kind::PartitionWindow:
      return "part:" + std::to_string(replica_a) + "-" + std::to_string(replica_b) + "@" +
             std::to_string(window_begin) + ".." + std::to_string(window_end);
    case Kind::CrashRestart:
      return "crash:r" + std::to_string(replica_a) + "@" + std::to_string(snapshot_pos) +
             "->" + std::to_string(crash_pos);
  }
  return "?";
}

std::vector<FaultPlan> build_catalog(const core::EventSet& events, int replica_count,
                                     const CatalogOptions& options) {
  std::vector<FaultPlan> plans;
  const size_t n = events.size();
  size_t sync_sends = 0;
  for (const auto& event : events) {
    if (event.is_sync_req()) ++sync_sends;
  }

  if (options.baseline) plans.push_back(FaultPlan{});

  // Single-drop / single-duplicate sweeps over the sync sends. The ordinal is
  // interleaving-relative (the k-th send *executed*), so one plan targets a
  // different physical message in each interleaving — a sweep over k plus a
  // sweep over interleavings covers every (message, ordering) combination the
  // caps allow.
  for (uint64_t k = 1; k <= std::min<uint64_t>(sync_sends, options.max_drops); ++k) {
    FaultPlan plan;
    plan.kind = FaultPlan::Kind::DropSync;
    plan.sync_index = k;
    plans.push_back(plan);
  }
  for (uint64_t k = 1; k <= std::min<uint64_t>(sync_sends, options.max_duplicates); ++k) {
    FaultPlan plan;
    plan.kind = FaultPlan::Kind::DuplicateSync;
    plan.sync_index = k;
    plans.push_back(plan);
  }

  // Partition windows: slide the window start across positions, cycling the
  // replica pairs so every link gets exercised as the cap allows.
  if (n > 0 && replica_count >= 2) {
    std::vector<std::pair<net::ReplicaId, net::ReplicaId>> pairs;
    for (net::ReplicaId a = 0; a < replica_count; ++a) {
      for (net::ReplicaId b = a + 1; b < replica_count; ++b) pairs.emplace_back(a, b);
    }
    size_t made = 0;
    for (size_t begin = 0; begin < n && made < options.max_partition_windows;
         ++begin, ++made) {
      FaultPlan plan;
      plan.kind = FaultPlan::Kind::PartitionWindow;
      plan.window_begin = begin;
      plan.window_end = std::min(begin + std::max<size_t>(1, options.partition_window_length), n);
      const auto& pair = pairs[made % pairs.size()];
      plan.replica_a = pair.first;
      plan.replica_b = pair.second;
      plans.push_back(plan);
    }
  }

  // Crash-restart: snapshot early, crash late — the positions sit at n/3 and
  // 2n/3 so the checkpoint predates real work and the crash discards some.
  if (n >= 2 && replica_count >= 1) {
    for (size_t c = 0; c < options.max_crash_restarts; ++c) {
      FaultPlan plan;
      plan.kind = FaultPlan::Kind::CrashRestart;
      plan.replica_a = static_cast<net::ReplicaId>(c % static_cast<size_t>(replica_count));
      plan.snapshot_pos = n / 3;
      plan.crash_pos = std::min(n - 1, std::max(plan.snapshot_pos + 1, (2 * n) / 3));
      if (plan.crash_pos <= plan.snapshot_pos) continue;
      // Successive crash plans with identical positions differ only by
      // replica; with one replica the sweep degenerates to a single plan.
      if (std::find(plans.begin(), plans.end(), plan) != plans.end()) continue;
      plans.push_back(plan);
    }
  }

  if (plans.size() > options.max_plans) plans.resize(options.max_plans);
  return plans;
}

}  // namespace erpi::faults
