#include "faults/plan.hpp"

#include <algorithm>
#include <charconv>

namespace erpi::faults {

std::string FaultPlan::key() const {
  switch (kind) {
    case Kind::None:
      return "none";
    case Kind::DropSync:
      return "drop:" + std::to_string(sync_index);
    case Kind::DuplicateSync:
      return "dup:" + std::to_string(sync_index);
    case Kind::PartitionWindow:
      return "part:" + std::to_string(replica_a) + "-" + std::to_string(replica_b) + "@" +
             std::to_string(window_begin) + ".." + std::to_string(window_end);
    case Kind::CrashRestart:
      return "crash:r" + std::to_string(replica_a) + "@" + std::to_string(snapshot_pos) +
             "->" + std::to_string(crash_pos);
    case Kind::TornTail:
      return "torn:r" + std::to_string(replica_a) + "@" + std::to_string(damage_pos) + "-" +
             std::to_string(entry_count);
    case Kind::DropLogEntry:
      return "droplog:r" + std::to_string(replica_a) + "@" + std::to_string(damage_pos);
    case Kind::DuplicateSegment:
      return "dupseg:r" + std::to_string(replica_a) + "@" + std::to_string(damage_pos) + "x" +
             std::to_string(entry_count);
    case Kind::StaleSnapshotRecovery:
      return "stale:r" + std::to_string(replica_a) + "@" + std::to_string(snapshot_pos) +
             "->" + std::to_string(crash_pos) + "+" + std::to_string(suffix_keep);
  }
  return "?";
}

namespace {

/// Consume an unsigned decimal number from the front of `s`. Returns false on
/// empty/non-numeric input; on success advances `s` past the digits.
bool eat_number(std::string_view& s, uint64_t& out) {
  const auto* begin = s.data();
  const auto* end = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(begin, end, out);
  if (ec != std::errc{} || ptr == begin) return false;
  s.remove_prefix(static_cast<size_t>(ptr - begin));
  return true;
}

/// Consume a literal prefix. Returns false (leaving `s` untouched) otherwise.
bool eat(std::string_view& s, std::string_view literal) {
  if (!s.starts_with(literal)) return false;
  s.remove_prefix(literal.size());
  return true;
}

}  // namespace

std::optional<FaultPlan> FaultPlan::parse(std::string_view key) {
  FaultPlan plan;
  uint64_t a = 0;
  uint64_t b = 0;
  uint64_t c = 0;
  if (key == "none") return plan;
  if (eat(key, "drop:")) {
    if (!eat_number(key, a) || !key.empty()) return std::nullopt;
    plan.kind = Kind::DropSync;
    plan.sync_index = a;
    return plan;
  }
  if (eat(key, "dup:")) {
    if (!eat_number(key, a) || !key.empty()) return std::nullopt;
    plan.kind = Kind::DuplicateSync;
    plan.sync_index = a;
    return plan;
  }
  if (eat(key, "part:")) {
    uint64_t d = 0;
    if (!eat_number(key, a) || !eat(key, "-") || !eat_number(key, b) || !eat(key, "@") ||
        !eat_number(key, c) || !eat(key, "..") || !eat_number(key, d) || !key.empty()) {
      return std::nullopt;
    }
    plan.kind = Kind::PartitionWindow;
    plan.replica_a = static_cast<net::ReplicaId>(a);
    plan.replica_b = static_cast<net::ReplicaId>(b);
    plan.window_begin = static_cast<size_t>(c);
    plan.window_end = static_cast<size_t>(d);
    return plan;
  }
  if (eat(key, "crash:r")) {
    if (!eat_number(key, a) || !eat(key, "@") || !eat_number(key, b) || !eat(key, "->") ||
        !eat_number(key, c) || !key.empty()) {
      return std::nullopt;
    }
    plan.kind = Kind::CrashRestart;
    plan.replica_a = static_cast<net::ReplicaId>(a);
    plan.snapshot_pos = static_cast<size_t>(b);
    plan.crash_pos = static_cast<size_t>(c);
    return plan;
  }
  if (eat(key, "torn:r")) {
    if (!eat_number(key, a) || !eat(key, "@") || !eat_number(key, b) || !eat(key, "-") ||
        !eat_number(key, c) || !key.empty()) {
      return std::nullopt;
    }
    plan.kind = Kind::TornTail;
    plan.replica_a = static_cast<net::ReplicaId>(a);
    plan.damage_pos = static_cast<size_t>(b);
    plan.entry_count = static_cast<size_t>(c);
    return plan;
  }
  if (eat(key, "droplog:r")) {
    if (!eat_number(key, a) || !eat(key, "@") || !eat_number(key, b) || !key.empty()) {
      return std::nullopt;
    }
    plan.kind = Kind::DropLogEntry;
    plan.replica_a = static_cast<net::ReplicaId>(a);
    plan.damage_pos = static_cast<size_t>(b);
    return plan;
  }
  if (eat(key, "dupseg:r")) {
    if (!eat_number(key, a) || !eat(key, "@") || !eat_number(key, b) || !eat(key, "x") ||
        !eat_number(key, c) || !key.empty()) {
      return std::nullopt;
    }
    plan.kind = Kind::DuplicateSegment;
    plan.replica_a = static_cast<net::ReplicaId>(a);
    plan.damage_pos = static_cast<size_t>(b);
    plan.entry_count = static_cast<size_t>(c);
    return plan;
  }
  if (eat(key, "stale:r")) {
    uint64_t d = 0;
    if (!eat_number(key, a) || !eat(key, "@") || !eat_number(key, b) || !eat(key, "->") ||
        !eat_number(key, c) || !eat(key, "+") || !eat_number(key, d) || !key.empty()) {
      return std::nullopt;
    }
    plan.kind = Kind::StaleSnapshotRecovery;
    plan.replica_a = static_cast<net::ReplicaId>(a);
    plan.snapshot_pos = static_cast<size_t>(b);
    plan.crash_pos = static_cast<size_t>(c);
    plan.suffix_keep = static_cast<size_t>(d);
    return plan;
  }
  return std::nullopt;
}

std::vector<FaultPlan> build_catalog(const core::EventSet& events, int replica_count,
                                     const CatalogOptions& options) {
  std::vector<FaultPlan> plans;
  const size_t n = events.size();
  size_t sync_sends = 0;
  for (const auto& event : events) {
    if (event.is_sync_req()) ++sync_sends;
  }

  if (options.baseline) plans.push_back(FaultPlan{});

  // Single-drop / single-duplicate sweeps over the sync sends. The ordinal is
  // interleaving-relative (the k-th send *executed*), so one plan targets a
  // different physical message in each interleaving — a sweep over k plus a
  // sweep over interleavings covers every (message, ordering) combination the
  // caps allow.
  for (uint64_t k = 1; k <= std::min<uint64_t>(sync_sends, options.max_drops); ++k) {
    FaultPlan plan;
    plan.kind = FaultPlan::Kind::DropSync;
    plan.sync_index = k;
    plans.push_back(plan);
  }
  for (uint64_t k = 1; k <= std::min<uint64_t>(sync_sends, options.max_duplicates); ++k) {
    FaultPlan plan;
    plan.kind = FaultPlan::Kind::DuplicateSync;
    plan.sync_index = k;
    plans.push_back(plan);
  }

  // Partition windows: slide the window start across positions, cycling the
  // replica pairs so every link gets exercised as the cap allows.
  if (n > 0 && replica_count >= 2) {
    std::vector<std::pair<net::ReplicaId, net::ReplicaId>> pairs;
    for (net::ReplicaId a = 0; a < replica_count; ++a) {
      for (net::ReplicaId b = a + 1; b < replica_count; ++b) pairs.emplace_back(a, b);
    }
    size_t made = 0;
    for (size_t begin = 0; begin < n && made < options.max_partition_windows;
         ++begin, ++made) {
      FaultPlan plan;
      plan.kind = FaultPlan::Kind::PartitionWindow;
      plan.window_begin = begin;
      plan.window_end = std::min(begin + std::max<size_t>(1, options.partition_window_length), n);
      const auto& pair = pairs[made % pairs.size()];
      plan.replica_a = pair.first;
      plan.replica_b = pair.second;
      plans.push_back(plan);
    }
  }

  // Crash-restart: snapshot early, crash late — the positions sit at n/3 and
  // 2n/3 so the checkpoint predates real work and the crash discards some.
  if (n >= 2 && replica_count >= 1) {
    for (size_t c = 0; c < options.max_crash_restarts; ++c) {
      FaultPlan plan;
      plan.kind = FaultPlan::Kind::CrashRestart;
      plan.replica_a = static_cast<net::ReplicaId>(c % static_cast<size_t>(replica_count));
      plan.snapshot_pos = n / 3;
      plan.crash_pos = std::min(n - 1, std::max(plan.snapshot_pos + 1, (2 * n) / 3));
      if (plan.crash_pos <= plan.snapshot_pos) continue;
      // Successive crash plans with identical positions differ only by
      // replica; with one replica the sweep degenerates to a single plan.
      if (std::find(plans.begin(), plans.end(), plan) != plans.end()) continue;
      plans.push_back(plan);
    }
  }

  // Storage sweeps: damage the durable log late in the interleaving (where it
  // has the most to lose) and walk the position backwards, cycling replicas,
  // so raising a cap adds earlier damage points on other replicas. damage_pos
  // >= 1 keeps at least one logged event before the damage. Plans that
  // collide after position clamping dedupe via find, like crash-restart.
  if (n >= 2 && replica_count >= 1) {
    const auto replicas = static_cast<size_t>(replica_count);
    auto sweep = [&](size_t cap, FaultPlan::Kind kind, size_t entries) {
      for (size_t i = 0; i < cap; ++i) {
        FaultPlan plan;
        plan.kind = kind;
        plan.replica_a = static_cast<net::ReplicaId>(i % replicas);
        plan.damage_pos = std::max<size_t>(1, n - 1 - i / replicas);
        plan.entry_count = entries;
        if (std::find(plans.begin(), plans.end(), plan) != plans.end()) continue;
        plans.push_back(plan);
      }
    };
    sweep(options.max_torn_tails, FaultPlan::Kind::TornTail,
          std::max<size_t>(1, options.torn_tail_entries));
    sweep(options.max_drop_log_entries, FaultPlan::Kind::DropLogEntry, 0);
    sweep(options.max_duplicate_segments, FaultPlan::Kind::DuplicateSegment,
          std::max<size_t>(1, options.duplicate_segment_entries));

    // Stale-snapshot recovery reuses the crash-restart geometry (checkpoint
    // at n/3, damage at 2n/3): the checkpoint predates real work, the splice
    // discards most of what followed, and suffix_keep entries survive — the
    // classic "old backup plus a partial WAL tail" restore.
    for (size_t c = 0; c < options.max_stale_snapshot_recoveries; ++c) {
      FaultPlan plan;
      plan.kind = FaultPlan::Kind::StaleSnapshotRecovery;
      plan.replica_a = static_cast<net::ReplicaId>(c % replicas);
      plan.snapshot_pos = n / 3;
      plan.crash_pos = std::min(n - 1, std::max(plan.snapshot_pos + 1, (2 * n) / 3));
      plan.suffix_keep = options.stale_suffix_keep;
      if (plan.crash_pos <= plan.snapshot_pos) continue;
      if (std::find(plans.begin(), plans.end(), plan) != plans.end()) continue;
      plans.push_back(plan);
    }
  }

  if (plans.size() > options.max_plans) plans.resize(options.max_plans);
  return plans;
}

}  // namespace erpi::faults
