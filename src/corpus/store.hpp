// Cross-run persistent outcome corpus (DESIGN.md §11).
//
// A corpus::Store remembers what prior explorations proved: one Record per
// (run-configuration fingerprint, fault-plan key, interleaving key) class,
// carrying the replay outcome — pass, violation (with the assertion
// messages), crashed{signal}, oom, timed_out, or budget_exhausted. Where the
// PR 3 RunJournal survives a single resumed run, the corpus survives across
// runs and machines: CI fleets and nightly sweeps that re-explore the same
// universe skip already-proven classes (reuse mode) or detect regressions as
// outcome *diffs* against the accumulated history (diff mode) instead of
// re-proving millions of pairs from scratch.
//
// On-disk layout (a directory):
//   seg-000001.jsonl ...  append-only segment files. Line 1 is a header
//                         {"erpi_corpus_segment":1,"created_seq":N}; every
//                         further line is one Record, written and flushed
//                         per append (a SIGKILL can at worst tear the
//                         trailing line of the newest segment). A segment
//                         rolls over after `segment_roll_records` appends —
//                         the same knob as the RunJournal checkpoint
//                         interval (Session::Config::journal_checkpoint_every).
//   index.jsonl           the compacted form: all records, deduplicated
//                         last-wins and sorted by (fingerprint, plan, il),
//                         written to a temp file and atomically renamed.
//                         compact() folds every segment into the index and
//                         deletes the segments, so the directory stays
//                         O(index + recent appends) even after millions of
//                         records.
//
// Recency + eviction: every record carries the sequence number of the last
// run that proved or re-confirmed it (lookup hits refresh it in memory;
// compaction persists the refresh). When the store exceeds `max_records`,
// compaction evicts least-recently-confirmed records first — outcomes for
// run configurations nobody sweeps anymore age out, the live fleet's
// namespaces survive.
//
// Thread contract: a Store is confined to the exploration control threads —
// the scheduler's dispatcher consults lookup() and the committer appends,
// both under the explorer's enumerator mutex (see sched::ExplorerOptions::
// outcome_cache). The Store itself takes no locks.
#pragma once

#include <cstdint>
#include <fstream>
#include <functional>
#include <memory>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/replay.hpp"

namespace erpi::corpus {

/// The outcome taxonomy persisted per (fingerprint, plan, interleaving)
/// class. The first five mirror core::InterleavingOutcome; BudgetExhausted is
/// the run-level sentinel for pairs a caller had to abandon when the Fig. 10
/// budget latched mid-pair (the fault explorer never commits such pairs, so
/// it never writes this kind — it exists for drivers that do, and round-trips
/// through the store and the Datalog bridge like any other kind).
enum class OutcomeKind { Pass, Violation, Crashed, Oom, TimedOut, BudgetExhausted };

const char* outcome_kind_name(OutcomeKind kind) noexcept;
std::optional<OutcomeKind> outcome_kind_from_name(std::string_view name) noexcept;

/// One proven (interleaving, plan) class under one run-configuration
/// fingerprint.
struct Record {
  struct Violation {
    std::string assertion;
    std::string message;

    bool operator==(const Violation&) const = default;
  };

  uint64_t fingerprint = 0;  // corpus fingerprint (faults::run_fingerprint)
  std::string plan;          // FaultPlan::key()
  std::string il;            // Interleaving::key()
  OutcomeKind kind = OutcomeKind::Pass;
  int signal = 0;                     // Crashed only (SIGSEGV, SIGABRT, ...)
  std::vector<Violation> violations;  // Violation only
  /// Storage-fault pairs: the durable-log recovery verdict (absent for
  /// network/crash plans and for records written before the storage family).
  std::optional<core::RecoveryVerdict> recovery;
  /// Sequence of the run that last proved or re-confirmed this record
  /// (eviction recency; see Store::begin_run).
  uint64_t seq = 0;

  bool operator==(const Record&) const = default;

  /// Outcome equality, ignoring recency: kind, signal, and the violation
  /// list. This is what diff mode compares.
  bool same_outcome(const Record& other) const noexcept;

  /// Rebuild the replay outcome a reuse-mode run commits instead of
  /// re-executing the pair (exact inverse of from_outcome for the five
  /// per-pair kinds).
  core::InterleavingOutcome to_outcome() const;

  static Record from_outcome(uint64_t fingerprint, std::string plan, std::string il,
                             const core::InterleavingOutcome& outcome);
};

struct StoreOptions {
  /// Records per segment before rolling to a fresh file. Shares the
  /// RunJournal checkpoint knob (Session::Config::journal_checkpoint_every).
  size_t segment_roll_records = 64;
  /// Eviction cap enforced at compaction (0 = unbounded): when the store
  /// holds more records, the least-recently-confirmed are dropped first.
  size_t max_records = 1'000'000;
  /// open() compacts eagerly when the directory has accumulated at least
  /// this many segments, so repeated short runs cannot grow the directory
  /// without bound. 0 disables auto-compaction on open.
  size_t auto_compact_segments = 8;
};

struct StoreStats {
  uint64_t loaded = 0;     // records read back at open()
  uint64_t appended = 0;   // records written this session
  uint64_t evicted = 0;    // records dropped by compaction eviction
  uint64_t compactions = 0;
  uint64_t torn_lines = 0;  // malformed tails skipped at open()
  uint64_t dropped_writes = 0;  // appends swallowed after the store degraded
};

class Store {
 public:
  /// Test seam for write-fault injection: builds the segment stream appends
  /// go through. The default opens a real std::ofstream; tests substitute a
  /// stream whose writes start failing after N bytes (ENOSPC/EIO stand-in).
  using StreamFactory = std::function<std::unique_ptr<std::ostream>(const std::string& path)>;

  /// Open (creating the directory if needed) and load the index plus every
  /// segment, last-wins. Auto-compacts per StoreOptions::auto_compact_segments.
  static Store open(std::string dir, StoreOptions options = {},
                    StreamFactory stream_factory = {});

  Store(Store&&) = default;
  Store& operator=(Store&&) = default;
  Store(const Store&) = delete;
  Store& operator=(const Store&) = delete;

  /// Start a run epoch: returns a fresh sequence number stamped on every
  /// record appended or re-confirmed (lookup hit) until the next begin_run.
  /// Opening a store starts an implicit first epoch.
  uint64_t begin_run();

  /// The proven record for this class, or nullptr. A hit refreshes the
  /// record's recency to the current epoch (persisted at the next
  /// compaction), which is what keeps actively-reused namespaces out of the
  /// eviction shortlist.
  const Record* lookup(uint64_t fingerprint, const std::string& plan,
                       const std::string& il);

  /// Insert or overwrite (last-wins) the class's record, stamped with the
  /// current epoch, written and flushed to the active segment before
  /// returning. A segment write failure (ENOSPC, EIO, ...) does NOT throw:
  /// the store flips to degraded, keeps serving the in-memory map for the
  /// rest of the run, and stops persisting — the disk keeps whatever prefix
  /// made it out. The fault explorer surfaces this as
  /// ReplayReport::corpus_degraded.
  void append(Record record);

  /// True once any segment or index write failed; persistence is off.
  bool degraded() const noexcept { return degraded_; }

  /// Fold index + segments into a fresh sorted index.jsonl (atomic rename),
  /// evict past max_records, delete the segments.
  void compact();

  /// compact() only when the segment count or record count warrants it —
  /// the end-of-run call sites use this so short runs don't rewrite a large
  /// index every time.
  void maybe_compact();

  /// Visit every record sorted by (fingerprint, plan, il) — the
  /// deterministic order the Datalog bridge exports in.
  void for_each_sorted(const std::function<void(const Record&)>& fn) const;

  size_t size() const noexcept { return records_.size(); }
  /// Segment files currently on disk (the active one included once it has a
  /// record).
  size_t segment_count() const;
  const std::string& dir() const noexcept { return dir_; }
  const StoreOptions& options() const noexcept { return options_; }
  const StoreStats& stats() const noexcept { return stats_; }
  uint64_t current_seq() const noexcept { return current_seq_; }

 private:
  Store(std::string dir, StoreOptions options, StreamFactory stream_factory);

  void load();
  size_t load_file(const std::string& path, bool is_index);
  void roll_segment();
  void write_record(const Record& record);
  std::string index_path() const;
  std::vector<std::string> segment_paths() const;

  std::string dir_;
  StoreOptions options_;
  StreamFactory stream_factory_;  // empty = real std::ofstream
  std::unordered_map<std::string, Record> records_;  // key: fp-hex/plan/il
  uint64_t next_seq_ = 1;     // next begin_run epoch
  uint64_t current_seq_ = 0;  // active epoch
  uint64_t next_segment_ = 1;
  std::unique_ptr<std::ostream> active_;
  std::string active_path_;
  size_t active_records_ = 0;
  StoreStats stats_;
  bool degraded_ = false;
};

/// Load the distinct violating interleavings recorded anywhere in the corpus
/// at `dir` (every fingerprint and plan — a violation's *neighborhood* in the
/// interleaving tree transfers across configurations even when outcome reuse
/// must not), in deterministic (fingerprint, plan, il) order. These seed the
/// ViolationFirst searcher's priors — the corpus-side view of the Datalog
/// bridge's violation/4 relation. Returns empty when the directory does not
/// exist or holds no violations.
std::vector<core::Interleaving> violation_priors(const std::string& dir);

/// Reuse-mode accounting the fault explorer keeps *outside* the
/// ReplayReport, so warm and cold reports stay byte-identical
/// (FaultExplorer::corpus_stats).
struct ReuseStats {
  uint64_t hits = 0;      // pairs resolved from the corpus without replaying
  uint64_t misses = 0;    // pairs replayed and newly proven
  uint64_t appended = 0;  // records written this run (== misses in reuse mode)

  bool operator==(const ReuseStats&) const = default;
};

}  // namespace erpi::corpus
