// OutcomeDiff — the regression-detection primitive (DESIGN.md §11).
//
// Diff mode replays every (interleaving, plan) pair of a sweep and compares
// each live outcome against the corpus record proven by earlier runs under
// the same fingerprint. A pair whose outcome *changed* — pass turned
// violation after a library upgrade, a crash signal moved, a violation
// message shifted — is a regression (or a fix) surfaced directly, without a
// human eyeballing two multi-thousand-line reports.
#pragma once

#include <string>
#include <vector>

#include "corpus/store.hpp"
#include "util/json.hpp"

namespace erpi::corpus {

struct OutcomeDiff {
  /// One pair whose outcome differs from the corpus. `before` is the stored
  /// record, `after` the live one (both carry kind/signal/violations; seq is
  /// recency bookkeeping and not part of the comparison).
  struct Change {
    std::string plan;
    std::string il;
    Record before;
    Record after;

    bool operator==(const Change&) const = default;
  };

  std::vector<Change> changed;  // in commit (plan-major, ascending) order
  uint64_t compared = 0;   // replayed pairs that had a corpus record
  uint64_t unchanged = 0;  // compared pairs whose outcome matched
  uint64_t missing = 0;    // replayed pairs with no corpus record (new classes)

  bool any() const noexcept { return !changed.empty(); }

  /// Serializable form (CI artifacts, corpus_query tooling).
  util::Json to_json() const;
};

}  // namespace erpi::corpus
