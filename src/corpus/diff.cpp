#include "corpus/diff.hpp"

namespace erpi::corpus {

namespace {

util::Json record_side_json(const Record& record) {
  util::Json j = util::Json::object();
  j["outcome"] = std::string(outcome_kind_name(record.kind));
  if (record.signal != 0) j["signal"] = static_cast<int64_t>(record.signal);
  if (!record.violations.empty()) {
    util::Json violations = util::Json::array();
    for (const auto& violation : record.violations) {
      util::Json v = util::Json::object();
      v["assertion"] = violation.assertion;
      v["message"] = violation.message;
      violations.push_back(std::move(v));
    }
    j["violations"] = std::move(violations);
  }
  return j;
}

}  // namespace

util::Json OutcomeDiff::to_json() const {
  util::Json j = util::Json::object();
  j["compared"] = static_cast<int64_t>(compared);
  j["unchanged"] = static_cast<int64_t>(unchanged);
  j["missing"] = static_cast<int64_t>(missing);
  util::Json changes = util::Json::array();
  for (const auto& change : changed) {
    util::Json c = util::Json::object();
    c["plan"] = change.plan;
    c["il"] = change.il;
    c["before"] = record_side_json(change.before);
    c["after"] = record_side_json(change.after);
    changes.push_back(std::move(c));
  }
  j["changed"] = std::move(changes);
  return j;
}

}  // namespace erpi::corpus
