#include "corpus/bridge.hpp"

#include <cctype>
#include <cstdio>
#include <map>

namespace erpi::corpus {

namespace {

std::string fingerprint_symbol(uint64_t fingerprint) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(fingerprint));
  return std::string(buf);
}

/// Parse the decimal integer at `pos`; returns nullopt (leaving pos alone)
/// when no digit is present.
std::optional<int> parse_int(const std::string& s, size_t& pos) {
  size_t start = pos;
  int value = 0;
  while (pos < s.size() && std::isdigit(static_cast<unsigned char>(s[pos]))) {
    value = value * 10 + (s[pos] - '0');
    ++pos;
  }
  if (pos == start) return std::nullopt;
  return value;
}

}  // namespace

DatalogBridge::DatalogBridge(datalog::Database& db) : db_(&db) {
  db_->relation("outcome", 5);
  db_->relation("violation", 4);
  db_->relation("plan_fault", 3);
  db_->relation("run_meta", 3);
}

std::vector<std::pair<std::string, int>> DatalogBridge::plan_fault_entries(
    const std::string& plan_key) {
  // FaultPlan::key() grammar (src/faults/plan.cpp):
  //   "none" | "drop:K" | "dup:K" | "part:A-B@I..J" | "crash:rN@S->C"
  // drop/dup target a message ordinal, not a replica, so they carry -1;
  // partitions involve both endpoints, one row each.
  if (plan_key == "none") return {{"none", -1}};
  size_t colon = plan_key.find(':');
  if (colon == std::string::npos || colon == 0) return {{"unknown", -1}};
  std::string kind = plan_key.substr(0, colon);
  std::string rest = plan_key.substr(colon + 1);
  if (kind == "drop" || kind == "dup") {
    size_t pos = 0;
    if (parse_int(rest, pos) && pos == rest.size()) return {{kind, -1}};
    return {{"unknown", -1}};
  }
  if (kind == "part") {
    // A-B@I..J → {(part, A), (part, B)}
    size_t pos = 0;
    auto a = parse_int(rest, pos);
    if (!a || pos >= rest.size() || rest[pos] != '-') return {{"unknown", -1}};
    ++pos;
    auto b = parse_int(rest, pos);
    if (!b || pos >= rest.size() || rest[pos] != '@') return {{"unknown", -1}};
    return {{"part", *a}, {"part", *b}};
  }
  if (kind == "crash") {
    // rN@S->C → {(crash, N)}
    if (rest.empty() || rest[0] != 'r') return {{"unknown", -1}};
    size_t pos = 1;
    auto n = parse_int(rest, pos);
    if (!n || pos >= rest.size() || rest[pos] != '@') return {{"unknown", -1}};
    return {{"crash", *n}};
  }
  return {{"unknown", -1}};
}

DatalogBridge::Stats DatalogBridge::export_store(
    const Store& store, std::optional<uint64_t> fingerprint) {
  Stats stats;
  // Per-fingerprint aggregates, keyed by hex symbol so the map iterates in
  // the same lexicographic order for_each_sorted visits fingerprints in.
  struct Meta {
    int64_t records = 0;
    int64_t violations = 0;
    int64_t last_seq = 0;
  };
  std::map<std::string, Meta> meta;

  store.for_each_sorted([&](const Record& record) {
    if (fingerprint && record.fingerprint != *fingerprint) return;
    std::string fp = fingerprint_symbol(record.fingerprint);
    datalog::Value fp_sym = db_->sym(fp);
    datalog::Value plan_sym = db_->sym(record.plan);
    datalog::Value il_sym = db_->sym(record.il);
    if (db_->insert_fact("outcome",
                         {fp_sym, plan_sym, il_sym,
                          db_->sym(outcome_kind_name(record.kind)),
                          datalog::Database::num(record.signal)})) {
      ++stats.outcome_facts;
    }
    for (const auto& violation : record.violations) {
      if (db_->insert_fact("violation",
                           {fp_sym, plan_sym, il_sym,
                            db_->sym(violation.assertion)})) {
        ++stats.violation_facts;
      }
    }
    for (const auto& [kind, replica] : plan_fault_entries(record.plan)) {
      if (db_->insert_fact("plan_fault",
                           {plan_sym, db_->sym(kind),
                            datalog::Database::num(replica)})) {
        ++stats.plan_fault_facts;
      }
    }
    Meta& m = meta[fp];
    ++m.records;
    if (record.kind == OutcomeKind::Violation) ++m.violations;
    if (static_cast<int64_t>(record.seq) > m.last_seq) {
      m.last_seq = static_cast<int64_t>(record.seq);
    }
  });

  for (const auto& [fp, m] : meta) {
    datalog::Value fp_sym = db_->sym(fp);
    if (db_->insert_fact("run_meta", {fp_sym, db_->sym("records"),
                                      datalog::Database::num(m.records)})) {
      ++stats.run_meta_facts;
    }
    if (db_->insert_fact("run_meta", {fp_sym, db_->sym("violations"),
                                      datalog::Database::num(m.violations)})) {
      ++stats.run_meta_facts;
    }
    if (db_->insert_fact("run_meta", {fp_sym, db_->sym("last_seq"),
                                      datalog::Database::num(m.last_seq)})) {
      ++stats.run_meta_facts;
    }
  }
  return stats;
}

}  // namespace erpi::corpus
