#include "corpus/bridge.hpp"

#include <cstdio>
#include <map>

#include "faults/plan.hpp"

namespace erpi::corpus {

namespace {

std::string fingerprint_symbol(uint64_t fingerprint) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(fingerprint));
  return std::string(buf);
}

}  // namespace

DatalogBridge::DatalogBridge(datalog::Database& db) : db_(&db) {
  db_->relation("outcome", 5);
  db_->relation("violation", 4);
  db_->relation("plan_fault", 3);
  db_->relation("run_meta", 3);
}

std::vector<std::pair<std::string, int>> DatalogBridge::plan_fault_entries(
    const std::string& plan_key) {
  // Decomposed via FaultPlan::parse — the exact inverse of FaultPlan::key()
  // — instead of re-implementing the key grammar here. Drop/dup target a
  // message ordinal, not a replica, so they carry -1; partitions involve
  // both endpoints, one row each; crash and the storage kinds carry the
  // damaged replica.
  const auto plan = faults::FaultPlan::parse(plan_key);
  if (!plan) return {{"unknown", -1}};
  using Kind = faults::FaultPlan::Kind;
  switch (plan->kind) {
    case Kind::None:
      return {{"none", -1}};
    case Kind::DropSync:
      return {{"drop", -1}};
    case Kind::DuplicateSync:
      return {{"dup", -1}};
    case Kind::PartitionWindow:
      return {{"part", static_cast<int>(plan->replica_a)},
              {"part", static_cast<int>(plan->replica_b)}};
    case Kind::CrashRestart:
      return {{"crash", static_cast<int>(plan->replica_a)}};
    case Kind::TornTail:
      return {{"torn", static_cast<int>(plan->replica_a)}};
    case Kind::DropLogEntry:
      return {{"droplog", static_cast<int>(plan->replica_a)}};
    case Kind::DuplicateSegment:
      return {{"dupseg", static_cast<int>(plan->replica_a)}};
    case Kind::StaleSnapshotRecovery:
      return {{"stale", static_cast<int>(plan->replica_a)}};
  }
  return {{"unknown", -1}};
}

DatalogBridge::Stats DatalogBridge::export_store(
    const Store& store, std::optional<uint64_t> fingerprint) {
  Stats stats;
  // Per-fingerprint aggregates, keyed by hex symbol so the map iterates in
  // the same lexicographic order for_each_sorted visits fingerprints in.
  struct Meta {
    int64_t records = 0;
    int64_t violations = 0;
    int64_t last_seq = 0;
  };
  std::map<std::string, Meta> meta;

  store.for_each_sorted([&](const Record& record) {
    if (fingerprint && record.fingerprint != *fingerprint) return;
    std::string fp = fingerprint_symbol(record.fingerprint);
    datalog::Value fp_sym = db_->sym(fp);
    datalog::Value plan_sym = db_->sym(record.plan);
    datalog::Value il_sym = db_->sym(record.il);
    if (db_->insert_fact("outcome",
                         {fp_sym, plan_sym, il_sym,
                          db_->sym(outcome_kind_name(record.kind)),
                          datalog::Database::num(record.signal)})) {
      ++stats.outcome_facts;
    }
    for (const auto& violation : record.violations) {
      if (db_->insert_fact("violation",
                           {fp_sym, plan_sym, il_sym,
                            db_->sym(violation.assertion)})) {
        ++stats.violation_facts;
      }
    }
    for (const auto& [kind, replica] : plan_fault_entries(record.plan)) {
      if (db_->insert_fact("plan_fault",
                           {plan_sym, db_->sym(kind),
                            datalog::Database::num(replica)})) {
        ++stats.plan_fault_facts;
      }
    }
    Meta& m = meta[fp];
    ++m.records;
    if (record.kind == OutcomeKind::Violation) ++m.violations;
    if (static_cast<int64_t>(record.seq) > m.last_seq) {
      m.last_seq = static_cast<int64_t>(record.seq);
    }
  });

  for (const auto& [fp, m] : meta) {
    datalog::Value fp_sym = db_->sym(fp);
    if (db_->insert_fact("run_meta", {fp_sym, db_->sym("records"),
                                      datalog::Database::num(m.records)})) {
      ++stats.run_meta_facts;
    }
    if (db_->insert_fact("run_meta", {fp_sym, db_->sym("violations"),
                                      datalog::Database::num(m.violations)})) {
      ++stats.run_meta_facts;
    }
    if (db_->insert_fact("run_meta", {fp_sym, db_->sym("last_seq"),
                                      datalog::Database::num(m.last_seq)})) {
      ++stats.run_meta_facts;
    }
  }
  return stats;
}

}  // namespace erpi::corpus
