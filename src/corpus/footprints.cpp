#include "corpus/footprints.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "util/json.hpp"

namespace erpi::corpus {
namespace fs = std::filesystem;

namespace {

std::string fingerprint_hex(uint64_t fingerprint) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(fingerprint));
  return std::string(buf);
}

util::Json keys_json(const std::vector<std::string>& keys) {
  util::Json arr = util::Json::array();
  for (const auto& key : keys) arr.push_back(key);
  return arr;
}

bool parse_keys(const util::Json& j, std::vector<std::string>& out) {
  if (!j.is_array()) return false;
  for (const auto& key : j.as_array()) {
    if (!key.is_string()) return false;
    core::Footprint::insert_key(out, key.as_string());
  }
  return true;
}

bool parse_fingerprint(const util::Json& j, uint64_t& out) {
  if (!j.is_string()) return false;
  try {
    out = std::stoull(j.as_string(), nullptr, 16);
  } catch (const std::exception&) {
    return false;
  }
  return true;
}

}  // namespace

std::string FootprintBank::path_in(const std::string& dir) {
  return (fs::path(dir) / "footprints.jsonl").string();
}

FootprintBank FootprintBank::load(const std::string& dir) {
  FootprintBank bank;
  std::ifstream in(path_in(dir));
  if (!in.is_open()) return bank;
  std::string line;
  bool first = true;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const auto parsed = util::Json::parse(line);
    if (!parsed || !parsed.value().is_object()) {
      ++bank.torn_lines_;
      continue;
    }
    const util::Json& j = parsed.value();
    if (first) {
      first = false;
      if (j.contains("erpi_footprints")) continue;  // header
    }
    uint64_t fingerprint = 0;
    if (!j.contains("fp") || !parse_fingerprint(j["fp"], fingerprint)) {
      ++bank.torn_lines_;
      continue;
    }
    if (j.contains("ev")) {
      if (!j.contains("ctx") || !j["ctx"].is_string() || !j["ev"].is_int() ||
          !j.contains("runs") || !j["runs"].is_int() || j["runs"].as_int() < 0) {
        ++bank.torn_lines_;
        continue;
      }
      Entry entry;
      entry.context = j["ctx"].as_string();
      entry.event = static_cast<int>(j["ev"].as_int());
      entry.runs = static_cast<uint32_t>(j["runs"].as_int());
      if (j.contains("r") && !parse_keys(j["r"], entry.fp.reads)) {
        ++bank.torn_lines_;
        continue;
      }
      if (j.contains("w") && !parse_keys(j["w"], entry.fp.writes)) {
        ++bank.torn_lines_;
        continue;
      }
      entry.fp.sync = j.contains("sync") && j["sync"].is_bool() && j["sync"].as_bool();
      // Last-wins on duplicate keys, like the store's segment replay.
      std::tuple<uint64_t, std::string, int> key{fingerprint, entry.context, entry.event};
      bank.entries_.insert_or_assign(std::move(key), std::move(entry));
      continue;
    }
    if (j.contains("a") && j.contains("b")) {
      if (!j["a"].is_int() || !j["b"].is_int() || !j.contains("indep") ||
          !j["indep"].is_bool()) {
        ++bank.torn_lines_;
        continue;
      }
      const int a = static_cast<int>(j["a"].as_int());
      const int b = static_cast<int>(j["b"].as_int());
      bank.verdicts_.insert_or_assign({fingerprint, std::min(a, b), std::max(a, b)},
                                      j["indep"].as_bool());
      continue;
    }
    ++bank.torn_lines_;
  }
  return bank;
}

size_t FootprintBank::seed_learner(core::IndependenceLearner& learner,
                                   uint64_t fingerprint) const {
  size_t seeded = 0;
  for (const auto& [key, entry] : entries_) {
    if (std::get<0>(key) != fingerprint) continue;
    learner.seed(entry.context, entry.event, entry.fp, entry.runs);
    ++seeded;
  }
  for (const auto& [key, independent] : verdicts_) {
    if (std::get<0>(key) != fingerprint) continue;
    learner.seed_verdict(std::get<1>(key), std::get<2>(key), independent);
  }
  return seeded;
}

bool FootprintBank::absorb(const core::IndependenceLearner& learner, uint64_t fingerprint) {
  const auto exported = learner.export_state();
  bool changed = false;
  for (const auto& entry : exported.footprints) {
    const std::tuple<uint64_t, std::string, int> key{fingerprint, entry.context, entry.event};
    auto it = entries_.find(key);
    if (it == entries_.end()) {
      entries_.emplace(key, Entry{entry.context, entry.event, entry.runs, entry.fp});
      changed = true;
      continue;
    }
    if (it->second.fp.merge(entry.fp)) changed = true;
    // The export's run count already includes the seeded baseline, so max()
    // (not sum) is the monotone merge.
    if (entry.runs > it->second.runs) {
      it->second.runs = entry.runs;
      changed = true;
    }
  }
  for (const auto& verdict : exported.verdicts) {
    const std::tuple<uint64_t, int, int> key{fingerprint, std::min(verdict.a, verdict.b),
                                             std::max(verdict.a, verdict.b)};
    auto it = verdicts_.find(key);
    if (it == verdicts_.end() || it->second != verdict.independent) {
      verdicts_.insert_or_assign(key, verdict.independent);
      changed = true;
    }
  }
  return changed;
}

bool FootprintBank::save(const std::string& dir) const {
  std::error_code ec;
  fs::create_directories(dir, ec);
  const std::string path = path_in(dir);
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out.is_open()) return false;
    out << "{\"erpi_footprints\":1}\n";
    for (const auto& [key, entry] : entries_) {
      util::Json j = util::Json::object();
      j["fp"] = fingerprint_hex(std::get<0>(key));
      j["ctx"] = entry.context;
      j["ev"] = static_cast<int64_t>(entry.event);
      j["runs"] = static_cast<int64_t>(entry.runs);
      j["r"] = keys_json(entry.fp.reads);
      j["w"] = keys_json(entry.fp.writes);
      if (entry.fp.sync) j["sync"] = true;
      out << j.dump() << '\n';
    }
    for (const auto& [key, independent] : verdicts_) {
      util::Json j = util::Json::object();
      j["fp"] = fingerprint_hex(std::get<0>(key));
      j["a"] = static_cast<int64_t>(std::get<1>(key));
      j["b"] = static_cast<int64_t>(std::get<2>(key));
      j["indep"] = independent;
      out << j.dump() << '\n';
    }
    out.flush();
    if (!out) return false;
  }
  fs::rename(tmp, path, ec);
  return !ec;
}

}  // namespace erpi::corpus
