// DatalogBridge — the corpus as a deductive database (DESIGN.md §11).
//
// Exports the persistent outcome store into the src/datalog engine as ground
// relations, so months of accumulated sweeps answer logic queries ("all
// violations involving replica 2 under partition plans") instead of needing
// ad-hoc report scraping:
//
//   outcome(Fp, Plan, Il, Kind, Signal)   every record; Kind is one of
//                                         "pass" / "violation" / "crashed" /
//                                         "oom" / "timed_out" /
//                                         "budget_exhausted", Signal is the
//                                         terminating signal (0 unless
//                                         crashed).
//   violation(Fp, Plan, Il, Assertion)    one fact per violated assertion of
//                                         a violation record.
//   plan_fault(Plan, Kind, Replica)       structural decomposition of the
//                                         plan key: Kind in "none" / "drop" /
//                                         "dup" / "part" / "crash"; Replica
//                                         is an involved replica id or -1
//                                         when the fault is not
//                                         replica-targeted (partitions emit
//                                         one fact per endpoint).
//   run_meta(Fp, Key, Value)              per-fingerprint aggregates:
//                                         "records", "violations",
//                                         "last_seq".
//
// Fingerprints and keys are interned symbols (Fp as 16-digit hex); facts are
// inserted in sorted (Fp, Plan, Il) order so query output is deterministic.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "corpus/store.hpp"
#include "datalog/database.hpp"

namespace erpi::corpus {

class DatalogBridge {
 public:
  struct Stats {
    size_t outcome_facts = 0;
    size_t violation_facts = 0;
    size_t plan_fault_facts = 0;
    size_t run_meta_facts = 0;

    bool operator==(const Stats&) const = default;
  };

  /// Declares the four relations on `db` (arity-checked against any existing
  /// relations of the same name). `db` must outlive the bridge.
  explicit DatalogBridge(datalog::Database& db);

  /// Export every record of `store` (or only one fingerprint namespace) as
  /// facts. Re-exporting is idempotent — the relations deduplicate.
  Stats export_store(const Store& store,
                     std::optional<uint64_t> fingerprint = std::nullopt);

  /// Structural decomposition of a FaultPlan::key() string into
  /// (fault-kind, replica) rows — the plan_fault/3 payload. Exposed for
  /// tests, which cross-check it against real catalog keys. Unrecognized
  /// keys decompose to {("unknown", -1)} so exports stay total.
  static std::vector<std::pair<std::string, int>> plan_fault_entries(
      const std::string& plan_key);

 private:
  datalog::Database* db_;
};

}  // namespace erpi::corpus
