#include "corpus/store.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <stdexcept>
#include <unordered_set>

#include "util/json.hpp"

namespace erpi::corpus {
namespace fs = std::filesystem;

namespace {

constexpr char kKeySep = '/';

std::string fingerprint_hex(uint64_t fingerprint) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(fingerprint));
  return std::string(buf);
}

std::string record_map_key(uint64_t fingerprint, const std::string& plan,
                           const std::string& il) {
  std::string key = fingerprint_hex(fingerprint);
  key += kKeySep;
  key += plan;
  key += kKeySep;
  key += il;
  return key;
}

std::string record_line(const Record& record) {
  util::Json j = util::Json::object();
  j["fp"] = fingerprint_hex(record.fingerprint);
  j["plan"] = record.plan;
  j["il"] = record.il;
  j["o"] = std::string(outcome_kind_name(record.kind));
  j["seq"] = static_cast<int64_t>(record.seq);
  // Kind-specific payloads are only written when set, so pass records — the
  // overwhelming majority — stay one short line each.
  if (record.signal != 0) j["sig"] = static_cast<int64_t>(record.signal);
  if (!record.violations.empty()) {
    util::Json violations = util::Json::array();
    for (const auto& violation : record.violations) {
      util::Json v = util::Json::object();
      v["a"] = violation.assertion;
      v["m"] = violation.message;
      violations.push_back(std::move(v));
    }
    j["v"] = std::move(violations);
  }
  if (record.recovery) {
    j["rk"] = std::string(core::recovery_status_name(record.recovery->status));
    if (record.recovery->first_missing != 0) {
      j["rf"] = static_cast<int64_t>(record.recovery->first_missing);
    }
    if (record.recovery->missing_count != 0) {
      j["rc"] = static_cast<int64_t>(record.recovery->missing_count);
    }
  }
  return j.dump();
}

std::optional<Record> parse_record_line(const std::string& line) {
  const auto parsed = util::Json::parse(line);
  if (!parsed) return std::nullopt;
  const util::Json& j = parsed.value();
  if (!j.is_object()) return std::nullopt;
  if (!j.contains("fp") || !j["fp"].is_string()) return std::nullopt;
  if (!j.contains("plan") || !j["plan"].is_string()) return std::nullopt;
  if (!j.contains("il") || !j["il"].is_string()) return std::nullopt;
  if (!j.contains("o") || !j["o"].is_string()) return std::nullopt;
  if (!j.contains("seq") || !j["seq"].is_int()) return std::nullopt;
  Record record;
  try {
    record.fingerprint = std::stoull(j["fp"].as_string(), nullptr, 16);
  } catch (const std::exception&) {
    return std::nullopt;
  }
  record.plan = j["plan"].as_string();
  record.il = j["il"].as_string();
  const auto kind = outcome_kind_from_name(j["o"].as_string());
  if (!kind) return std::nullopt;
  record.kind = *kind;
  const int64_t seq = j["seq"].as_int();
  if (seq < 0) return std::nullopt;
  record.seq = static_cast<uint64_t>(seq);
  if (j.contains("sig")) {
    if (!j["sig"].is_int()) return std::nullopt;
    record.signal = static_cast<int>(j["sig"].as_int());
  }
  if (j.contains("v")) {
    if (!j["v"].is_array()) return std::nullopt;
    for (const auto& v : j["v"].as_array()) {
      if (!v.is_object() || !v.contains("a") || !v["a"].is_string() || !v.contains("m") ||
          !v["m"].is_string()) {
        return std::nullopt;
      }
      record.violations.push_back({v["a"].as_string(), v["m"].as_string()});
    }
  }
  if (j.contains("rk")) {
    if (!j["rk"].is_string()) return std::nullopt;
    const auto status = core::recovery_status_from_name(j["rk"].as_string());
    if (!status) return std::nullopt;
    core::RecoveryVerdict verdict;
    verdict.status = *status;
    if (j.contains("rf")) {
      if (!j["rf"].is_int() || j["rf"].as_int() < 0) return std::nullopt;
      verdict.first_missing = static_cast<uint64_t>(j["rf"].as_int());
    }
    if (j.contains("rc")) {
      if (!j["rc"].is_int() || j["rc"].as_int() < 0) return std::nullopt;
      verdict.missing_count = static_cast<uint64_t>(j["rc"].as_int());
    }
    record.recovery = verdict;
  }
  return record;
}

std::string segment_name(uint64_t number) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "seg-%06llu.jsonl",
                static_cast<unsigned long long>(number));
  return std::string(buf);
}

}  // namespace

const char* outcome_kind_name(OutcomeKind kind) noexcept {
  switch (kind) {
    case OutcomeKind::Pass: return "pass";
    case OutcomeKind::Violation: return "violation";
    case OutcomeKind::Crashed: return "crashed";
    case OutcomeKind::Oom: return "oom";
    case OutcomeKind::TimedOut: return "timed_out";
    case OutcomeKind::BudgetExhausted: return "budget_exhausted";
  }
  return "?";
}

std::optional<OutcomeKind> outcome_kind_from_name(std::string_view name) noexcept {
  if (name == "pass") return OutcomeKind::Pass;
  if (name == "violation") return OutcomeKind::Violation;
  if (name == "crashed") return OutcomeKind::Crashed;
  if (name == "oom") return OutcomeKind::Oom;
  if (name == "timed_out") return OutcomeKind::TimedOut;
  if (name == "budget_exhausted") return OutcomeKind::BudgetExhausted;
  return std::nullopt;
}

bool Record::same_outcome(const Record& other) const noexcept {
  return kind == other.kind && signal == other.signal &&
         violations == other.violations && recovery == other.recovery;
}

core::InterleavingOutcome Record::to_outcome() const {
  core::InterleavingOutcome outcome;
  switch (kind) {
    case OutcomeKind::Pass:
      break;
    case OutcomeKind::Violation:
      for (const auto& violation : violations) {
        outcome.violations.push_back({violation.assertion, violation.message});
      }
      break;
    case OutcomeKind::Crashed:
      outcome.crashed = true;
      outcome.term_signal = signal;
      break;
    case OutcomeKind::Oom:
      outcome.oom = true;
      break;
    case OutcomeKind::TimedOut:
      outcome.timed_out = true;
      break;
    case OutcomeKind::BudgetExhausted:
      // A budget-abandoned pair carries no replay result; reconstructing it
      // as an outcome is a caller error.
      throw std::logic_error("corpus: budget_exhausted records carry no replay outcome");
  }
  outcome.recovery = recovery;
  return outcome;
}

Record Record::from_outcome(uint64_t fingerprint, std::string plan, std::string il,
                            const core::InterleavingOutcome& outcome) {
  Record record;
  record.fingerprint = fingerprint;
  record.plan = std::move(plan);
  record.il = std::move(il);
  if (outcome.timed_out) {
    record.kind = OutcomeKind::TimedOut;
  } else if (outcome.crashed) {
    record.kind = OutcomeKind::Crashed;
    record.signal = outcome.term_signal;
  } else if (outcome.oom) {
    record.kind = OutcomeKind::Oom;
  } else if (!outcome.violations.empty()) {
    record.kind = OutcomeKind::Violation;
    for (const auto& violation : outcome.violations) {
      record.violations.push_back({violation.assertion, violation.message});
    }
  } else {
    record.kind = OutcomeKind::Pass;
  }
  record.recovery = outcome.recovery;
  return record;
}

// ---------------------------------------------------------------------------
// Store

Store::Store(std::string dir, StoreOptions options, StreamFactory stream_factory)
    : dir_(std::move(dir)), options_(options), stream_factory_(std::move(stream_factory)) {
  if (options_.segment_roll_records == 0) options_.segment_roll_records = 1;
}

Store Store::open(std::string dir, StoreOptions options, StreamFactory stream_factory) {
  fs::create_directories(dir);
  Store store(std::move(dir), options, std::move(stream_factory));
  store.load();
  if (options.auto_compact_segments != 0 &&
      store.segment_paths().size() >= options.auto_compact_segments) {
    store.compact();
  }
  store.begin_run();
  return store;
}

std::string Store::index_path() const { return dir_ + "/index.jsonl"; }

std::vector<std::string> Store::segment_paths() const {
  std::vector<std::string> paths;
  for (const auto& entry : fs::directory_iterator(dir_)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    if (name.rfind("seg-", 0) == 0 && name.size() > 10 &&
        name.substr(name.size() - 6) == ".jsonl") {
      paths.push_back(entry.path().string());
    }
  }
  // Filename order == creation order (zero-padded numbers), which makes the
  // last-wins merge deterministic.
  std::sort(paths.begin(), paths.end());
  return paths;
}

size_t Store::segment_count() const { return segment_paths().size(); }

size_t Store::load_file(const std::string& path, bool is_index) {
  std::ifstream in(path);
  if (!in) return 0;
  std::string line;
  if (!std::getline(in, line)) return 0;
  const auto header = util::Json::parse(line);
  const char* expect = is_index ? "erpi_corpus_index" : "erpi_corpus_segment";
  if (!header || !header.value().is_object() || !header.value().contains(expect)) {
    ++stats_.torn_lines;
    return 0;
  }
  if (is_index && header.value().contains("next_seq") &&
      header.value()["next_seq"].is_int()) {
    next_seq_ = std::max<uint64_t>(
        next_seq_, static_cast<uint64_t>(header.value()["next_seq"].as_int()));
  }
  size_t loaded = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    auto record = parse_record_line(line);
    if (!record) {
      // Stop at the first malformed line: only a SIGKILL-torn tail produces
      // one, and everything after a tear is untrustworthy.
      ++stats_.torn_lines;
      break;
    }
    next_seq_ = std::max(next_seq_, record->seq + 1);
    std::string key = record_map_key(record->fingerprint, record->plan, record->il);
    records_.insert_or_assign(std::move(key), std::move(*record));
    ++loaded;
  }
  return loaded;
}

void Store::load() {
  size_t loaded = load_file(index_path(), /*is_index=*/true);
  uint64_t max_segment = 0;
  for (const auto& path : segment_paths()) {
    loaded += load_file(path, /*is_index=*/false);
    const std::string name = fs::path(path).filename().string();
    max_segment = std::max<uint64_t>(max_segment, std::stoull(name.substr(4, 6)));
  }
  next_segment_ = max_segment + 1;
  stats_.loaded = loaded;
}

uint64_t Store::begin_run() {
  current_seq_ = next_seq_++;
  return current_seq_;
}

const Record* Store::lookup(uint64_t fingerprint, const std::string& plan,
                            const std::string& il) {
  const auto it = records_.find(record_map_key(fingerprint, plan, il));
  if (it == records_.end()) return nullptr;
  // Recency refresh: re-confirmed records move to the current epoch so
  // eviction targets namespaces nobody sweeps anymore. Persisted at the next
  // compaction; losing an un-compacted refresh costs recency, never data.
  if (it->second.seq < current_seq_) it->second.seq = current_seq_;
  return &it->second;
}

void Store::roll_segment() {
  active_.reset();
  active_path_.clear();
  active_records_ = 0;
}

void Store::write_record(const Record& record) {
  // A degraded store stops persisting: the in-memory map still serves this
  // run, the disk keeps whatever prefix made it out before the failure.
  if (degraded_) {
    ++stats_.dropped_writes;
    return;
  }
  if (!active_) {
    active_path_ = dir_ + "/" + segment_name(next_segment_++);
    if (stream_factory_) {
      active_ = stream_factory_(active_path_);
    } else {
      active_ = std::make_unique<std::ofstream>(active_path_,
                                                std::ios::out | std::ios::trunc);
    }
    if (!active_ || !*active_) {
      degraded_ = true;
      active_.reset();
      ++stats_.dropped_writes;
      return;
    }
    util::Json header = util::Json::object();
    header["erpi_corpus_segment"] = static_cast<int64_t>(1);
    header["created_seq"] = static_cast<int64_t>(current_seq_);
    *active_ << header.dump() << '\n';
  }
  *active_ << record_line(record) << '\n';
  active_->flush();
  if (!*active_) {
    degraded_ = true;
    active_.reset();
    ++stats_.dropped_writes;
    return;
  }
  if (++active_records_ >= options_.segment_roll_records) roll_segment();
}

void Store::append(Record record) {
  record.seq = current_seq_;
  write_record(record);
  std::string key = record_map_key(record.fingerprint, record.plan, record.il);
  records_.insert_or_assign(std::move(key), std::move(record));
  ++stats_.appended;
}

void Store::compact() {
  roll_segment();

  // Evict past the cap, least-recently-confirmed first (ties broken by key
  // for determinism).
  if (options_.max_records != 0 && records_.size() > options_.max_records) {
    std::vector<std::pair<uint64_t, const std::string*>> by_age;
    by_age.reserve(records_.size());
    for (const auto& [key, record] : records_) by_age.emplace_back(record.seq, &key);
    std::sort(by_age.begin(), by_age.end(),
              [](const auto& a, const auto& b) {
                return a.first != b.first ? a.first < b.first : *a.second < *b.second;
              });
    const size_t drop = records_.size() - options_.max_records;
    std::vector<std::string> doomed;
    doomed.reserve(drop);
    for (size_t i = 0; i < drop; ++i) doomed.push_back(*by_age[i].second);
    for (const auto& key : doomed) records_.erase(key);
    stats_.evicted += drop;
  }

  std::vector<const std::string*> keys;
  keys.reserve(records_.size());
  for (const auto& [key, record] : records_) keys.push_back(&key);
  std::sort(keys.begin(), keys.end(),
            [](const std::string* a, const std::string* b) { return *a < *b; });

  const std::string tmp = index_path() + ".tmp";
  {
    std::ofstream out(tmp, std::ios::out | std::ios::trunc);
    if (!out) {
      degraded_ = true;
      return;
    }
    util::Json header = util::Json::object();
    header["erpi_corpus_index"] = static_cast<int64_t>(1);
    header["next_seq"] = static_cast<int64_t>(next_seq_);
    out << header.dump() << '\n';
    for (const std::string* key : keys) out << record_line(records_.at(*key)) << '\n';
    out.flush();
    if (!out) {
      // The half-written tmp never replaces the index; the rename below is
      // what commits, so skipping it leaves the last good index in place.
      degraded_ = true;
      return;
    }
  }
  if (std::rename(tmp.c_str(), index_path().c_str()) != 0) {
    degraded_ = true;
    return;
  }
  // The rename is the commit point; a crash before these unlinks only leaves
  // segments whose records the next open() re-merges (last-wins, same data).
  for (const auto& path : segment_paths()) fs::remove(path);
  next_segment_ = 1;
  ++stats_.compactions;
}

void Store::maybe_compact() {
  const size_t segments = segment_paths().size();
  const bool too_many_segments =
      options_.auto_compact_segments != 0 && segments >= options_.auto_compact_segments;
  const bool over_cap = options_.max_records != 0 && records_.size() > options_.max_records;
  if (too_many_segments || over_cap) compact();
}

void Store::for_each_sorted(const std::function<void(const Record&)>& fn) const {
  std::vector<const std::string*> keys;
  keys.reserve(records_.size());
  for (const auto& [key, record] : records_) keys.push_back(&key);
  std::sort(keys.begin(), keys.end(),
            [](const std::string* a, const std::string* b) { return *a < *b; });
  for (const std::string* key : keys) fn(records_.at(*key));
}

std::vector<core::Interleaving> violation_priors(const std::string& dir) {
  std::vector<core::Interleaving> priors;
  if (dir.empty() || !fs::exists(dir)) return priors;
  Store store = Store::open(dir);
  std::unordered_set<std::string> seen;  // dedup across fingerprints/plans
  store.for_each_sorted([&](const Record& record) {
    if (record.kind != OutcomeKind::Violation) return;
    if (!seen.insert(record.il).second) return;
    priors.push_back(core::Interleaving::from_key(record.il));
  });
  return priors;
}

}  // namespace erpi::corpus
