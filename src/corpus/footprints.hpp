// Cross-run footprint persistence for dynamic pruning (DESIGN.md §15.5).
//
// A FootprintBank is a `footprints.jsonl` sidecar living in the outcome
// corpus directory. Where the Store remembers *outcomes* per (fingerprint,
// plan, interleaving) class, the bank remembers what each event *touched* —
// the learned read/write footprints plus paranoid pair verdicts — keyed by
// core::dpor_context_fingerprint(events, schema). A warm run seeds its
// IndependenceLearner from the bank before enumeration, so the sync-trust
// gate (core::kSyncTrustRuns) opens and the dynamic oracle cuts the full
// relation instead of the cold, conservative one.
//
// File layout: line 1 is a header {"erpi_footprints":1}; every further line
// is either a footprint entry ({"fp","ctx","ev","runs","r","w"[,"sync"]}) or
// a pair verdict ({"fp","a","b","indep"}). The whole bank is rewritten
// atomically (temp file + rename) at save() — banks are small (events ×
// contexts lines), so segment rolling is not worth its complexity here.
// Malformed lines are skipped at load (same torn-tail tolerance as the
// store's segments).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <tuple>

#include "core/dpor.hpp"

namespace erpi::corpus {

class FootprintBank {
 public:
  struct Entry {
    std::string context;  // fault-plan kind the footprint was observed under
    int event = -1;
    uint32_t runs = 0;  // distinct training runs that confirmed it
    core::Footprint fp;
  };

  /// Read the bank at `dir` (missing file = empty bank; malformed lines are
  /// counted in torn_lines and skipped).
  static FootprintBank load(const std::string& dir);

  /// Seed `learner` with every footprint and verdict recorded under
  /// `fingerprint`. Returns the number of footprints seeded.
  size_t seed_learner(core::IndependenceLearner& learner, uint64_t fingerprint) const;

  /// Merge the learner's exported state into the bank under `fingerprint`:
  /// footprints union-widen, run counts keep the maximum (the export already
  /// includes the seeded baseline), verdicts overwrite last-wins. Returns
  /// true when anything changed (save() can be skipped otherwise).
  bool absorb(const core::IndependenceLearner& learner, uint64_t fingerprint);

  /// Atomically rewrite `dir`/footprints.jsonl (temp + rename), creating the
  /// directory if needed. Returns false on any write failure — callers treat
  /// that like a degraded corpus store: the run's results stand, persistence
  /// is lost.
  bool save(const std::string& dir) const;

  size_t entry_count() const noexcept { return entries_.size(); }
  size_t verdict_count() const noexcept { return verdicts_.size(); }
  uint64_t torn_lines() const noexcept { return torn_lines_; }

  static std::string path_in(const std::string& dir);

 private:
  // (fingerprint, context, event) -> entry; deterministic iteration order is
  // also the on-disk order, so saves are byte-stable.
  std::map<std::tuple<uint64_t, std::string, int>, Entry> entries_;
  // (fingerprint, a, b) with a < b -> independent.
  std::map<std::tuple<uint64_t, int, int>, bool> verdicts_;
  uint64_t torn_lines_ = 0;
};

}  // namespace erpi::corpus
