// Simulated distributed environment.
//
// The paper evaluates on three physical replicas; here each replica is a
// context attached to a SimNetwork. The network holds every sent message in a
// per-(sender, receiver) FIFO channel and only delivers when told to — which
// is exactly the control ER-pi's replay engine needs: a sync_req event maps
// to send(), the paired exec_sync event maps to deliver_next(). Fault
// injection (drop / duplicate / partition) is available for robustness tests.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace erpi::net {

using ReplicaId = int32_t;

struct Message {
  ReplicaId from = -1;
  ReplicaId to = -1;
  std::string topic;    // e.g. "sync", "op", subject-specific kinds
  std::string payload;  // serialized body (JSON or subject-specific)
  uint64_t seq = 0;     // global send sequence, unique per send
};

struct NetworkStats {
  uint64_t sent = 0;
  uint64_t delivered = 0;
  uint64_t dropped = 0;
  uint64_t duplicated = 0;
};

class SimNetwork {
 public:
  struct Faults {
    double drop_probability = 0.0;
    double duplicate_probability = 0.0;

    bool operator==(const Faults&) const = default;
  };

  /// Deterministic scripted faults (the fault-schedule exploration layer,
  /// src/faults): sends are counted 1, 2, 3, ... from the last reset() /
  /// set_script(), and a send whose ordinal appears in `drop` is dropped,
  /// in `duplicate` duplicated. Unlike the probabilistic Faults above, a
  /// script makes the exact same message fail on every replay of the same
  /// interleaving — which is what lets a FaultPlan be an explored dimension
  /// rather than noise.
  struct Script {
    std::set<uint64_t> drop;
    std::set<uint64_t> duplicate;

    bool empty() const noexcept { return drop.empty() && duplicate.empty(); }
    bool operator==(const Script&) const = default;
  };

  explicit SimNetwork(int replica_count, uint64_t seed = 0xbeef);

  int replica_count() const noexcept { return replica_count_; }

  void set_faults(Faults faults);

  /// Install a scripted fault schedule and restart the send ordinal at 1.
  /// The script survives reset() (reset only rewinds the ordinal), so one
  /// installation covers every interleaving replayed under the same plan.
  void set_script(Script script);
  Script script() const;

  /// Sever the link between two replicas (both directions). Messages sent
  /// across a partition are dropped.
  void partition(ReplicaId a, ReplicaId b);
  void heal(ReplicaId a, ReplicaId b);
  void heal_all();
  bool partitioned(ReplicaId a, ReplicaId b) const;

  /// Queue a message. Returns the send sequence number, or nullopt if the
  /// message was dropped (fault or partition).
  std::optional<uint64_t> send(ReplicaId from, ReplicaId to, std::string topic,
                               std::string payload);

  /// Deliver the oldest message on channel (from -> to), invoking the
  /// receiver's handler if one is registered. FIFO per channel.
  std::optional<Message> deliver_next(ReplicaId from, ReplicaId to);

  /// Deliver the oldest message destined to `to` from any sender
  /// (lowest-seq first, i.e. global send order).
  std::optional<Message> deliver_any(ReplicaId to);

  /// Deliver everything currently queued (in global send order).
  size_t deliver_all();

  size_t pending(ReplicaId from, ReplicaId to) const;
  size_t total_pending() const;

  /// Handler invoked (outside the network lock) when a message is delivered
  /// to this replica.
  void set_handler(ReplicaId replica, std::function<void(const Message&)> handler);

  NetworkStats stats() const;

  /// Drop all in-flight messages and reset statistics (between
  /// interleavings). Keeps the scripted fault schedule but rewinds its send
  /// ordinal to the beginning, so every interleaving sees the same script.
  void reset();

  /// Crash-fault support: discard every queued message destined to `to`
  /// (the crashed replica's inbox dies with its process). The discarded
  /// messages count as dropped in stats(). Returns how many were discarded.
  size_t drop_inbound(ReplicaId to);

  /// Value-semantic checkpoint of the network: queued messages, partitions,
  /// fault configuration, the fault RNG stream, sequence counter and stats.
  /// Handlers are wiring, not state, and are excluded. Subjects embed this in
  /// their proxy::Snapshot so incremental replay restores in-flight sync
  /// traffic along with replica state.
  struct State {
    util::Rng rng;
    Faults faults;
    Script script;
    uint64_t script_sends_seen = 0;
    uint64_t next_seq = 1;
    std::map<std::pair<ReplicaId, ReplicaId>, std::deque<Message>> channels;
    std::set<std::pair<ReplicaId, ReplicaId>> partitions;
    NetworkStats stats;

    /// Approximate heap bytes (payloads + per-message overhead).
    uint64_t bytes() const noexcept;
  };

  State save_state() const;
  void restore_state(const State& state);

 private:
  void check_replica(ReplicaId id) const;
  std::optional<Message> pop_locked(ReplicaId from, ReplicaId to);
  void dispatch(const Message& message);

  const int replica_count_;
  mutable std::mutex mu_;
  util::Rng rng_;
  Faults faults_;
  Script script_;
  uint64_t script_sends_seen_ = 0;
  uint64_t next_seq_ = 1;
  std::map<std::pair<ReplicaId, ReplicaId>, std::deque<Message>> channels_;
  std::set<std::pair<ReplicaId, ReplicaId>> partitions_;  // normalized (min,max)
  std::vector<std::function<void(const Message&)>> handlers_;
  NetworkStats stats_;
};

}  // namespace erpi::net
