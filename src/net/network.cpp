#include "net/network.hpp"

#include <stdexcept>

namespace erpi::net {

SimNetwork::SimNetwork(int replica_count, uint64_t seed)
    : replica_count_(replica_count), rng_(seed), handlers_(static_cast<size_t>(replica_count)) {
  if (replica_count <= 0) throw std::invalid_argument("replica_count must be positive");
}

void SimNetwork::check_replica(ReplicaId id) const {
  if (id < 0 || id >= replica_count_) {
    throw std::out_of_range("replica id " + std::to_string(id) + " out of range");
  }
}

void SimNetwork::set_faults(Faults faults) {
  std::lock_guard lock(mu_);
  faults_ = faults;
}

void SimNetwork::set_script(Script script) {
  std::lock_guard lock(mu_);
  script_ = std::move(script);
  script_sends_seen_ = 0;
}

SimNetwork::Script SimNetwork::script() const {
  std::lock_guard lock(mu_);
  return script_;
}

void SimNetwork::partition(ReplicaId a, ReplicaId b) {
  check_replica(a);
  check_replica(b);
  std::lock_guard lock(mu_);
  partitions_.insert({std::min(a, b), std::max(a, b)});
}

void SimNetwork::heal(ReplicaId a, ReplicaId b) {
  std::lock_guard lock(mu_);
  partitions_.erase({std::min(a, b), std::max(a, b)});
}

void SimNetwork::heal_all() {
  std::lock_guard lock(mu_);
  partitions_.clear();
}

bool SimNetwork::partitioned(ReplicaId a, ReplicaId b) const {
  std::lock_guard lock(mu_);
  return partitions_.count({std::min(a, b), std::max(a, b)}) > 0;
}

std::optional<uint64_t> SimNetwork::send(ReplicaId from, ReplicaId to, std::string topic,
                                         std::string payload) {
  check_replica(from);
  check_replica(to);
  std::lock_guard lock(mu_);
  ++stats_.sent;
  ++script_sends_seen_;
  const bool severed = partitions_.count({std::min(from, to), std::max(from, to)}) > 0;
  // Both fault chances are drawn on every send, even across a severed link:
  // the fault RNG stream must advance exactly one (drop, duplicate) pair per
  // send so that save_state()/restore_state() round-trips and fault-schedule
  // replays see the same stream regardless of partition timing.
  const bool fault_drop = rng_.chance(faults_.drop_probability);
  const bool fault_dup = rng_.chance(faults_.duplicate_probability);
  const bool script_drop = script_.drop.count(script_sends_seen_) > 0;
  const bool script_dup = script_.duplicate.count(script_sends_seen_) > 0;
  if (severed || fault_drop || script_drop) {
    // However many causes coincide (probability drop on a severed link, a
    // scripted drop on top of either), the message is one loss: count it
    // exactly once, and never duplicate what was never delivered.
    ++stats_.dropped;
    return std::nullopt;
  }
  Message m{from, to, std::move(topic), std::move(payload), next_seq_++};
  auto& channel = channels_[{from, to}];
  channel.push_back(m);
  if (fault_dup || script_dup) {
    Message dup = channel.back();
    dup.seq = next_seq_++;
    channel.push_back(std::move(dup));
    ++stats_.duplicated;
  }
  return channel.back().seq;
}

std::optional<Message> SimNetwork::pop_locked(ReplicaId from, ReplicaId to) {
  const auto it = channels_.find({from, to});
  if (it == channels_.end() || it->second.empty()) return std::nullopt;
  Message m = std::move(it->second.front());
  it->second.pop_front();
  if (it->second.empty()) channels_.erase(it);
  ++stats_.delivered;
  return m;
}

void SimNetwork::dispatch(const Message& message) {
  std::function<void(const Message&)> handler;
  {
    std::lock_guard lock(mu_);
    handler = handlers_[static_cast<size_t>(message.to)];
  }
  if (handler) handler(message);
}

std::optional<Message> SimNetwork::deliver_next(ReplicaId from, ReplicaId to) {
  check_replica(from);
  check_replica(to);
  std::optional<Message> m;
  {
    std::lock_guard lock(mu_);
    m = pop_locked(from, to);
  }
  if (m) dispatch(*m);
  return m;
}

std::optional<Message> SimNetwork::deliver_any(ReplicaId to) {
  check_replica(to);
  std::optional<Message> m;
  {
    std::lock_guard lock(mu_);
    // lowest global seq among channels destined to `to`
    const std::pair<ReplicaId, ReplicaId>* best = nullptr;
    uint64_t best_seq = 0;
    for (const auto& [key, queue] : channels_) {
      if (key.second != to || queue.empty()) continue;
      if (best == nullptr || queue.front().seq < best_seq) {
        best = &key;
        best_seq = queue.front().seq;
      }
    }
    if (best != nullptr) m = pop_locked(best->first, best->second);
  }
  if (m) dispatch(*m);
  return m;
}

size_t SimNetwork::deliver_all() {
  size_t count = 0;
  while (true) {
    std::optional<Message> m;
    {
      std::lock_guard lock(mu_);
      const std::pair<ReplicaId, ReplicaId>* best = nullptr;
      uint64_t best_seq = 0;
      for (const auto& [key, queue] : channels_) {
        if (queue.empty()) continue;
        if (best == nullptr || queue.front().seq < best_seq) {
          best = &key;
          best_seq = queue.front().seq;
        }
      }
      if (best != nullptr) m = pop_locked(best->first, best->second);
    }
    if (!m) return count;
    dispatch(*m);
    ++count;
  }
}

size_t SimNetwork::pending(ReplicaId from, ReplicaId to) const {
  std::lock_guard lock(mu_);
  const auto it = channels_.find({from, to});
  return it == channels_.end() ? 0 : it->second.size();
}

size_t SimNetwork::total_pending() const {
  std::lock_guard lock(mu_);
  size_t n = 0;
  for (const auto& [key, queue] : channels_) n += queue.size();
  return n;
}

void SimNetwork::set_handler(ReplicaId replica, std::function<void(const Message&)> handler) {
  check_replica(replica);
  std::lock_guard lock(mu_);
  handlers_[static_cast<size_t>(replica)] = std::move(handler);
}

NetworkStats SimNetwork::stats() const {
  std::lock_guard lock(mu_);
  return stats_;
}

void SimNetwork::reset() {
  std::lock_guard lock(mu_);
  channels_.clear();
  stats_ = NetworkStats{};
  next_seq_ = 1;
  script_sends_seen_ = 0;  // the script itself survives across interleavings
}

size_t SimNetwork::drop_inbound(ReplicaId to) {
  check_replica(to);
  std::lock_guard lock(mu_);
  size_t discarded = 0;
  for (auto it = channels_.begin(); it != channels_.end();) {
    if (it->first.second == to) {
      discarded += it->second.size();
      it = channels_.erase(it);
    } else {
      ++it;
    }
  }
  stats_.dropped += discarded;
  return discarded;
}

uint64_t SimNetwork::State::bytes() const noexcept {
  uint64_t total = sizeof(State);
  for (const auto& [key, queue] : channels) {
    for (const auto& message : queue) {
      total += sizeof(Message) + message.topic.size() + message.payload.size();
    }
  }
  total += partitions.size() * sizeof(std::pair<ReplicaId, ReplicaId>);
  total += (script.drop.size() + script.duplicate.size()) * sizeof(uint64_t);
  return total;
}

SimNetwork::State SimNetwork::save_state() const {
  std::lock_guard lock(mu_);
  State state;
  state.rng = rng_;
  state.faults = faults_;
  state.next_seq = next_seq_;
  state.channels = channels_;
  state.partitions = partitions_;
  state.stats = stats_;
  state.script = script_;
  state.script_sends_seen = script_sends_seen_;
  return state;
}

void SimNetwork::restore_state(const State& state) {
  std::lock_guard lock(mu_);
  rng_ = state.rng;
  faults_ = state.faults;
  next_seq_ = state.next_seq;
  channels_ = state.channels;
  partitions_ = state.partitions;
  stats_ = state.stats;
  script_ = state.script;
  script_sends_seen_ = state.script_sends_seen;
}

}  // namespace erpi::net
