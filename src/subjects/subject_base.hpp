// Shared machinery for the evaluation subjects (paper §6).
//
// Every subject models one third-party replicated data system re-implemented
// in C++: N replica contexts attached to a SimNetwork, with synchronization
// expressed as the reserved "sync_req"/"exec_sync" operations. A sync_req
// serializes the sender's sync payload onto the network channel; the paired
// exec_sync pops it at the receiver and applies it — so the interleaving
// fully controls when replication happens, which is what ER-pi replays.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "net/network.hpp"
#include "proxy/rdl.hpp"

namespace erpi::subjects {

class SubjectBase : public proxy::Rdl {
 public:
  SubjectBase(std::string name, int replica_count);

  std::string name() const override { return name_; }
  int replica_count() const override { return replica_count_; }

  util::Result<util::Json> invoke(net::ReplicaId replica, const std::string& op,
                                  const util::Json& args) final;

  void reset() final;

  /// Incremental-replay checkpoint: replica state (via clone_replicas) plus
  /// the simulated network (in-flight sync traffic, partitions, fault RNG).
  /// Returns an invalid Snapshot when the subject does not override
  /// clone_replicas/adopt_replicas; the replay engine then falls back to the
  /// full reset() path.
  proxy::Snapshot snapshot() final;

  /// Restore a checkpoint produced by *this* subject's snapshot(). Snapshots
  /// from another instance (or an invalid one) are rejected with false and
  /// leave the state untouched.
  bool restore(const proxy::Snapshot& snap) final;

  net::SimNetwork& network() noexcept { return *network_; }

  /// Dynamic-pruning wiring (DESIGN.md §15). The recorder is owned by the
  /// replay engine; it is deliberately *not* part of SnapshotState, so
  /// snapshot()/restore() round-trips leave the installed recorder intact
  /// and recording continues seamlessly after a prefix-cache resume.
  void set_footprint_recorder(core::FootprintRecorder* recorder) final;

  // ---- crash-fault support (faults:: CrashRestart plans) ------------------

  /// A single replica's checkpoint, taken by snapshot_replica(). Invalid
  /// (valid() == false) when the subject does not override the per-replica
  /// clone/adopt hooks; the fault layer then reports the plan's crash action
  /// as unsupported instead of faulting the process.
  struct ReplicaSnapshotState {
    const SubjectBase* owner = nullptr;  // guards against cross-subject restore
    net::ReplicaId replica = -1;
    std::shared_ptr<const void> saved;

    bool valid() const noexcept { return owner != nullptr && saved != nullptr; }
  };

  /// Checkpoint one replica's state (the "periodic durable snapshot" a real
  /// deployment would restart from).
  ReplicaSnapshotState snapshot_replica(net::ReplicaId replica) const;

  /// Crash the replica and restart it from `snap`: its live state is replaced
  /// by the checkpoint and every queued network message addressed to it is
  /// discarded (the crashed process's inbox dies with it, counted as dropped
  /// in network stats). Returns false when the snapshot does not belong to
  /// this subject/replica or per-replica hooks are unsupported.
  bool crash_restore_replica(net::ReplicaId replica, const ReplicaSnapshotState& snap);

  // ---- durable-log model (faults:: storage plans, DESIGN.md §13) ----------

  /// A replica's write-ahead log. The entry file models the bytes on disk —
  /// storage damage mutates it freely — while `committed` is the durable
  /// high-water mark a journal header would carry: damage never touches it,
  /// so recovery can tell "the log claims 5 entries but holds 3".
  struct DurableLog {
    struct Entry {
      uint64_t seqno = 0;   // commit order; gaps reveal missing entries
      std::string record;   // self-describing JSON replay record
      bool operator==(const Entry&) const = default;
    };
    std::vector<Entry> entries;
    uint64_t committed = 0;

    bool operator==(const DurableLog&) const = default;
    uint64_t bytes() const noexcept;
  };

  /// Structured recovery verdict. Unsupported = the subject does not opt in
  /// (or logging is off); Ok = the full committed history replayed;
  /// MissingEntries = the log is damaged and recovery stopped at the first
  /// seqno gap, reporting exactly what is lost — never a silent guess.
  struct RecoveryResult {
    enum class Status { Unsupported, Ok, MissingEntries };
    Status status = Status::Unsupported;
    uint64_t first_missing = 0;
    uint64_t missing_count = 0;
  };

  /// Opt-in durable logging: when enabled (and the subject implements the
  /// recovery hooks), every successful mutating operation and every applied
  /// sync payload is appended to the acting replica's log. Off by default —
  /// plain replays carry no logging cost and snapshot byte-identically to
  /// prior releases. Toggling clears the logs.
  void set_durable_logging(bool on);
  bool durable_logging() const noexcept { return durable_logging_; }
  /// Non-mutating probe: true when the subject implements the recovery hooks.
  bool durable_log_supported() const { return supports_durable_log(); }

  const DurableLog& durable_log(net::ReplicaId replica) const;
  size_t log_length(net::ReplicaId replica) const;
  uint64_t log_committed(net::ReplicaId replica) const;

  // Damage primitives (the fault layer's storage injections). They mutate
  // the entry file only, never the committed mark — like disk corruption
  // under a journal header that still claims the full history.

  /// Remove the last `count` entries (torn tail). Returns entries removed.
  size_t truncate_log(net::ReplicaId replica, size_t count);
  /// Hide one entry by file index. Returns false when out of range.
  bool drop_log_entry(net::ReplicaId replica, size_t index);
  /// Re-append a copy of entries [first, first+count), clamped to the file.
  /// Returns entries appended.
  size_t duplicate_log_segment(net::ReplicaId replica, size_t first, size_t count);
  /// Stale-snapshot restore shape: keep the prefix [0, from_length) plus the
  /// next `keep` entries, discard the rest. Returns entries removed.
  size_t splice_log_suffix(net::ReplicaId replica, size_t from_length, size_t keep);

  /// Rebuild the replica from its (possibly damaged) durable log: reset it
  /// to initial state, then replay entries in file order up to the first
  /// seqno gap, deduping duplicates per the subject's recovery policy. The
  /// caller compares the rebuilt state against a pre-damage reference to
  /// rule out silent divergence.
  RecoveryResult recover_from_log(net::ReplicaId replica);

 protected:
  /// Subject-specific operation dispatch (sync ops are handled by the base).
  virtual util::Result<util::Json> do_invoke(net::ReplicaId replica, const std::string& op,
                                             const util::Json& args) = 0;

  /// Produce the payload a sync_req from -> to puts on the wire. `args` are
  /// the sync_req's arguments (subjects may support modes, e.g. OrbitDB's
  /// separate head announcement vs entry shipment).
  virtual util::Result<std::string> make_sync_payload(net::ReplicaId from, net::ReplicaId to,
                                                      const util::Json& args) = 0;

  /// Apply a delivered payload at the receiver.
  virtual util::Status apply_sync_payload(net::ReplicaId from, net::ReplicaId to,
                                          const std::string& payload) = 0;

  /// Rebuild all replica state from scratch.
  virtual void do_reset() = 0;

  // ---- snapshot hooks (incremental prefix replay) -------------------------
  //
  // A subject that wants snapshot support returns a type-erased deep copy of
  // its replica contexts from clone_replicas() and replaces the live contexts
  // from that copy in adopt_replicas(). Every subject in src/subjects/ does;
  // the base defaults keep snapshots *unsupported* (nullptr / false), because
  // replica state cannot be rebuilt generically — only sized: the default
  // replica_state_bytes() serializes each replica_state() through the
  // existing JSON machinery to estimate the checkpoint's budget charge.

  /// Deep copy of all replica state. nullptr = snapshots unsupported.
  virtual std::shared_ptr<const void> clone_replicas() const { return nullptr; }

  /// Replace the live replica state with a copy previously produced by
  /// clone_replicas(). Must deep-copy (a snapshot may be restored many
  /// times). Returns false when unsupported.
  virtual bool adopt_replicas(const void* saved) {
    (void)saved;
    return false;
  }

  /// Approximate heap bytes of the current replica state, charged against
  /// the resource budget per retained snapshot. Default: total length of
  /// every replica's JSON-rendered state.
  virtual uint64_t replica_state_bytes() const;

  /// Deep copy of one replica's state (crash-restart support). nullptr =
  /// per-replica snapshots unsupported; crash plans degrade gracefully.
  virtual std::shared_ptr<const void> clone_replica(net::ReplicaId replica) const {
    (void)replica;
    return nullptr;
  }

  /// Replace one replica's live state with a copy previously produced by
  /// clone_replica() for the same replica. Must deep-copy. Returns false
  /// when unsupported.
  virtual bool adopt_replica(net::ReplicaId replica, const void* saved) {
    (void)replica;
    (void)saved;
    return false;
  }

  /// Boilerplate for the common `std::vector<ReplicaCtx>` subject layout.
  template <typename Ctx>
  static std::shared_ptr<const void> clone_ctx_vector(const std::vector<Ctx>& contexts) {
    return std::make_shared<const std::vector<Ctx>>(contexts);
  }
  template <typename Ctx>
  static bool adopt_ctx_vector(std::vector<Ctx>& contexts, const void* saved) {
    contexts = *static_cast<const std::vector<Ctx>*>(saved);
    return true;
  }
  template <typename Ctx>
  static std::shared_ptr<const void> clone_ctx_at(const std::vector<Ctx>& contexts,
                                                  net::ReplicaId replica) {
    return std::make_shared<const Ctx>(contexts.at(static_cast<size_t>(replica)));
  }
  template <typename Ctx>
  static bool adopt_ctx_at(std::vector<Ctx>& contexts, net::ReplicaId replica,
                           const void* saved) {
    contexts.at(static_cast<size_t>(replica)) = *static_cast<const Ctx*>(saved);
    return true;
  }

  // ---- durable-log hooks --------------------------------------------------

  /// Opt-in probe; must not mutate. A subject returning true must also
  /// implement reset_replica_state() and is_readonly_op().
  virtual bool supports_durable_log() const { return false; }

  /// Rebuild one replica to its post-reset() initial state (recovery starts
  /// here before replaying the log). Returns false when unsupported, without
  /// mutating anything.
  virtual bool reset_replica_state(net::ReplicaId replica) {
    (void)replica;
    return false;
  }

  /// Operations that never mutate replica state; they are not logged.
  virtual bool is_readonly_op(const std::string& op) const {
    (void)op;
    return false;
  }

  /// How recover_from_log() trusts the damaged file.
  struct RecoveryPolicy {
    /// Trust the committed high-water mark: a log shorter than it claims is
    /// reported as missing entries. A subject that only trusts the entries
    /// present (false) accepts torn tails silently — and diverges, which the
    /// fault layer flags as a violation.
    bool check_committed = true;
    /// Skip entries whose seqno already replayed. A subject replaying
    /// duplicated segments non-idempotently (false) sees every copy.
    bool dedup_duplicates = true;
  };
  virtual RecoveryPolicy recovery_policy() const { return {}; }

  // ---- footprint hooks (core/dpor.hpp) ------------------------------------
  //
  // invoke() records sync traffic at the base (channel keys + conservative
  // whole-replica payload effects); subjects refine do_invoke coverage with
  // these helpers. When a do_invoke records nothing, invoke() falls back to
  // a conservative whole-replica footprint ("rN/*"), so uninstrumented ops
  // conflict with everything on their replica and stay sound.

  core::FootprintRecorder* footprint_recorder() const noexcept { return recorder_; }
  /// Record "r<replica>/<field>" into the current event's read/write set.
  /// No-ops when no recorder is installed or no event is being replayed.
  void note_read(net::ReplicaId replica, std::string_view field);
  void note_write(net::ReplicaId replica, std::string_view field);

  /// True while recover_from_log() is replaying entries.
  bool recovering() const noexcept { return recovering_; }
  /// True while the entry being replayed is a duplicate the policy chose not
  /// to dedup — the hook where non-idempotent-replay bugs live.
  bool replaying_duplicate() const noexcept { return replaying_duplicate_; }

  void check_replica(net::ReplicaId replica) const;

 private:
  struct SnapshotState {
    const SubjectBase* owner = nullptr;  // guards against cross-subject restore
    std::shared_ptr<const void> replicas;
    net::SimNetwork::State network;
    // Durable logs ride along in prefix-cache snapshots so a resume at any
    // depth sees exactly the log a from-scratch replay would have written.
    // Empty (zero bytes) when logging is off.
    std::vector<DurableLog> logs;
    bool logging = false;
  };

  void append_log(net::ReplicaId replica, std::string record);
  void replay_log_record(net::ReplicaId replica, const std::string& record);
  DurableLog& log_at(net::ReplicaId replica);
  const DurableLog& log_at(net::ReplicaId replica) const;

  std::string name_;
  int replica_count_;
  std::unique_ptr<net::SimNetwork> network_;
  core::FootprintRecorder* recorder_ = nullptr;  // wiring, not state (see above)
  bool durable_logging_ = false;
  bool recovering_ = false;
  bool replaying_duplicate_ = false;
  std::vector<DurableLog> logs_;
};

}  // namespace erpi::subjects
