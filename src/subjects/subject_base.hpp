// Shared machinery for the evaluation subjects (paper §6).
//
// Every subject models one third-party replicated data system re-implemented
// in C++: N replica contexts attached to a SimNetwork, with synchronization
// expressed as the reserved "sync_req"/"exec_sync" operations. A sync_req
// serializes the sender's sync payload onto the network channel; the paired
// exec_sync pops it at the receiver and applies it — so the interleaving
// fully controls when replication happens, which is what ER-pi replays.
#pragma once

#include <memory>
#include <string>

#include "net/network.hpp"
#include "proxy/rdl.hpp"

namespace erpi::subjects {

class SubjectBase : public proxy::Rdl {
 public:
  SubjectBase(std::string name, int replica_count);

  std::string name() const override { return name_; }
  int replica_count() const override { return replica_count_; }

  util::Result<util::Json> invoke(net::ReplicaId replica, const std::string& op,
                                  const util::Json& args) final;

  void reset() final;

  net::SimNetwork& network() noexcept { return *network_; }

 protected:
  /// Subject-specific operation dispatch (sync ops are handled by the base).
  virtual util::Result<util::Json> do_invoke(net::ReplicaId replica, const std::string& op,
                                             const util::Json& args) = 0;

  /// Produce the payload a sync_req from -> to puts on the wire. `args` are
  /// the sync_req's arguments (subjects may support modes, e.g. OrbitDB's
  /// separate head announcement vs entry shipment).
  virtual util::Result<std::string> make_sync_payload(net::ReplicaId from, net::ReplicaId to,
                                                      const util::Json& args) = 0;

  /// Apply a delivered payload at the receiver.
  virtual util::Status apply_sync_payload(net::ReplicaId from, net::ReplicaId to,
                                          const std::string& payload) = 0;

  /// Rebuild all replica state from scratch.
  virtual void do_reset() = 0;

  void check_replica(net::ReplicaId replica) const;

 private:
  std::string name_;
  int replica_count_;
  std::unique_ptr<net::SimNetwork> network_;
};

}  // namespace erpi::subjects
