// Shared machinery for the evaluation subjects (paper §6).
//
// Every subject models one third-party replicated data system re-implemented
// in C++: N replica contexts attached to a SimNetwork, with synchronization
// expressed as the reserved "sync_req"/"exec_sync" operations. A sync_req
// serializes the sender's sync payload onto the network channel; the paired
// exec_sync pops it at the receiver and applies it — so the interleaving
// fully controls when replication happens, which is what ER-pi replays.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "net/network.hpp"
#include "proxy/rdl.hpp"

namespace erpi::subjects {

class SubjectBase : public proxy::Rdl {
 public:
  SubjectBase(std::string name, int replica_count);

  std::string name() const override { return name_; }
  int replica_count() const override { return replica_count_; }

  util::Result<util::Json> invoke(net::ReplicaId replica, const std::string& op,
                                  const util::Json& args) final;

  void reset() final;

  /// Incremental-replay checkpoint: replica state (via clone_replicas) plus
  /// the simulated network (in-flight sync traffic, partitions, fault RNG).
  /// Returns an invalid Snapshot when the subject does not override
  /// clone_replicas/adopt_replicas; the replay engine then falls back to the
  /// full reset() path.
  proxy::Snapshot snapshot() final;

  /// Restore a checkpoint produced by *this* subject's snapshot(). Snapshots
  /// from another instance (or an invalid one) are rejected with false and
  /// leave the state untouched.
  bool restore(const proxy::Snapshot& snap) final;

  net::SimNetwork& network() noexcept { return *network_; }

  // ---- crash-fault support (faults:: CrashRestart plans) ------------------

  /// A single replica's checkpoint, taken by snapshot_replica(). Invalid
  /// (valid() == false) when the subject does not override the per-replica
  /// clone/adopt hooks; the fault layer then reports the plan's crash action
  /// as unsupported instead of faulting the process.
  struct ReplicaSnapshotState {
    const SubjectBase* owner = nullptr;  // guards against cross-subject restore
    net::ReplicaId replica = -1;
    std::shared_ptr<const void> saved;

    bool valid() const noexcept { return owner != nullptr && saved != nullptr; }
  };

  /// Checkpoint one replica's state (the "periodic durable snapshot" a real
  /// deployment would restart from).
  ReplicaSnapshotState snapshot_replica(net::ReplicaId replica) const;

  /// Crash the replica and restart it from `snap`: its live state is replaced
  /// by the checkpoint and every queued network message addressed to it is
  /// discarded (the crashed process's inbox dies with it, counted as dropped
  /// in network stats). Returns false when the snapshot does not belong to
  /// this subject/replica or per-replica hooks are unsupported.
  bool crash_restore_replica(net::ReplicaId replica, const ReplicaSnapshotState& snap);

 protected:
  /// Subject-specific operation dispatch (sync ops are handled by the base).
  virtual util::Result<util::Json> do_invoke(net::ReplicaId replica, const std::string& op,
                                             const util::Json& args) = 0;

  /// Produce the payload a sync_req from -> to puts on the wire. `args` are
  /// the sync_req's arguments (subjects may support modes, e.g. OrbitDB's
  /// separate head announcement vs entry shipment).
  virtual util::Result<std::string> make_sync_payload(net::ReplicaId from, net::ReplicaId to,
                                                      const util::Json& args) = 0;

  /// Apply a delivered payload at the receiver.
  virtual util::Status apply_sync_payload(net::ReplicaId from, net::ReplicaId to,
                                          const std::string& payload) = 0;

  /// Rebuild all replica state from scratch.
  virtual void do_reset() = 0;

  // ---- snapshot hooks (incremental prefix replay) -------------------------
  //
  // A subject that wants snapshot support returns a type-erased deep copy of
  // its replica contexts from clone_replicas() and replaces the live contexts
  // from that copy in adopt_replicas(). Every subject in src/subjects/ does;
  // the base defaults keep snapshots *unsupported* (nullptr / false), because
  // replica state cannot be rebuilt generically — only sized: the default
  // replica_state_bytes() serializes each replica_state() through the
  // existing JSON machinery to estimate the checkpoint's budget charge.

  /// Deep copy of all replica state. nullptr = snapshots unsupported.
  virtual std::shared_ptr<const void> clone_replicas() const { return nullptr; }

  /// Replace the live replica state with a copy previously produced by
  /// clone_replicas(). Must deep-copy (a snapshot may be restored many
  /// times). Returns false when unsupported.
  virtual bool adopt_replicas(const void* saved) {
    (void)saved;
    return false;
  }

  /// Approximate heap bytes of the current replica state, charged against
  /// the resource budget per retained snapshot. Default: total length of
  /// every replica's JSON-rendered state.
  virtual uint64_t replica_state_bytes() const;

  /// Deep copy of one replica's state (crash-restart support). nullptr =
  /// per-replica snapshots unsupported; crash plans degrade gracefully.
  virtual std::shared_ptr<const void> clone_replica(net::ReplicaId replica) const {
    (void)replica;
    return nullptr;
  }

  /// Replace one replica's live state with a copy previously produced by
  /// clone_replica() for the same replica. Must deep-copy. Returns false
  /// when unsupported.
  virtual bool adopt_replica(net::ReplicaId replica, const void* saved) {
    (void)replica;
    (void)saved;
    return false;
  }

  /// Boilerplate for the common `std::vector<ReplicaCtx>` subject layout.
  template <typename Ctx>
  static std::shared_ptr<const void> clone_ctx_vector(const std::vector<Ctx>& contexts) {
    return std::make_shared<const std::vector<Ctx>>(contexts);
  }
  template <typename Ctx>
  static bool adopt_ctx_vector(std::vector<Ctx>& contexts, const void* saved) {
    contexts = *static_cast<const std::vector<Ctx>*>(saved);
    return true;
  }
  template <typename Ctx>
  static std::shared_ptr<const void> clone_ctx_at(const std::vector<Ctx>& contexts,
                                                  net::ReplicaId replica) {
    return std::make_shared<const Ctx>(contexts.at(static_cast<size_t>(replica)));
  }
  template <typename Ctx>
  static bool adopt_ctx_at(std::vector<Ctx>& contexts, net::ReplicaId replica,
                           const void* saved) {
    contexts.at(static_cast<size_t>(replica)) = *static_cast<const Ctx*>(saved);
    return true;
  }

  void check_replica(net::ReplicaId replica) const;

 private:
  struct SnapshotState {
    const SubjectBase* owner = nullptr;  // guards against cross-subject restore
    std::shared_ptr<const void> replicas;
    net::SimNetwork::State network;
  };

  std::string name_;
  int replica_count_;
  std::unique_ptr<net::SimNetwork> network_;
};

}  // namespace erpi::subjects
