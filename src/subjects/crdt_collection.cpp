#include "subjects/crdt_collection.hpp"

#include "util/hash.hpp"

#include <algorithm>

namespace erpi::subjects {

namespace {

util::Json dot_json(const crdt::Dot& dot) {
  util::Json j = util::Json::object();
  j["r"] = static_cast<int64_t>(dot.replica);
  j["c"] = dot.counter;
  return j;
}

crdt::Dot dot_from(const util::Json& j) {
  return crdt::Dot{static_cast<crdt::ReplicaId>(j["r"].as_int()), j["c"].as_int()};
}

}  // namespace

CrdtCollection::CrdtCollection(int replica_count, Flags flags)
    : SubjectBase("crdts", replica_count), flags_(flags) {
  init_replicas();
}

void CrdtCollection::init_replicas() {
  replicas_.clear();
  replicas_.resize(static_cast<size_t>(replica_count()));
  for (int r = 0; r < replica_count(); ++r) {
    // deterministic per-replica RNG for random to-do ids
    replicas_[static_cast<size_t>(r)].rng.reseed(0xfeedULL + static_cast<uint64_t>(r));
  }
}

void CrdtCollection::do_reset() { init_replicas(); }

std::shared_ptr<const void> CrdtCollection::clone_replicas() const {
  return clone_ctx_vector(replicas_);
}

bool CrdtCollection::adopt_replicas(const void* saved) {
  return adopt_ctx_vector(replicas_, saved);
}

std::shared_ptr<const void> CrdtCollection::clone_replica(net::ReplicaId replica) const {
  return clone_ctx_at(replicas_, replica);
}

bool CrdtCollection::adopt_replica(net::ReplicaId replica, const void* saved) {
  return adopt_ctx_at(replicas_, replica, saved);
}

void CrdtCollection::record(ReplicaCtx& ctx, net::ReplicaId origin, util::Json op_json) {
  StampedOp stamped{origin, ctx.next_local_seq++, std::move(op_json)};
  ctx.applied.insert({stamped.origin, stamped.seq});
  ctx.known_ops.push_back(std::move(stamped));
}

util::Result<util::Json> CrdtCollection::apply_op(ReplicaCtx& ctx, net::ReplicaId replica,
                                                  const std::string& op, util::Json args,
                                                  bool remote) {
  if (op == "set_add") {
    if (remote) {
      ctx.orset.apply(crdt::OrSet::AddOp{args["element"].as_string(), dot_from(args["tag"])});
      return args;
    }
    const auto produced =
        ctx.orset.add(static_cast<crdt::ReplicaId>(replica), args["element"].as_string());
    args["tag"] = dot_json(produced.tag);
    return args;
  }
  if (op == "set_remove") {
    if (remote) {
      crdt::OrSet::RemoveOp removal;
      removal.element = args["element"].as_string();
      for (const auto& tag : args["tags"].as_array()) {
        removal.observed_tags.push_back(dot_from(tag));
      }
      ctx.orset.apply(removal);
      return args;
    }
    const auto produced = ctx.orset.remove(args["element"].as_string());
    if (!produced) return util::Error{"crdts: set_remove of absent element"};
    util::Json tags = util::Json::array();
    for (const auto& tag : produced->observed_tags) tags.push_back(dot_json(tag));
    args["tags"] = std::move(tags);
    return args;
  }
  if (op == "twopset_add") {
    if (remote) {
      ctx.twopset.merge_add(args["element"].as_string());
      return args;
    }
    if (!ctx.twopset.add(args["element"].as_string())) {
      return util::Error{"crdts: twopset_add failed (already added or removed)"};
    }
    return args;
  }
  if (op == "twopset_remove") {
    if (remote) {
      ctx.twopset.merge_remove(args["element"].as_string());
      return args;
    }
    if (!ctx.twopset.remove(args["element"].as_string())) {
      return util::Error{"crdts: twopset_remove failed (not a member)"};
    }
    return args;
  }
  if (op == "counter_inc" || op == "counter_dec") {
    const int64_t by = args.contains("by") ? args["by"].as_int() : 1;
    const auto owner = static_cast<crdt::ReplicaId>(
        remote ? args["origin"].as_int() : static_cast<int64_t>(replica));
    if (op == "counter_inc") {
      ctx.counter.increment(owner, by);
    } else {
      ctx.counter.decrement(owner, by);
    }
    if (!remote) args["origin"] = static_cast<int64_t>(replica);
    return args;
  }
  if (op == "list_insert") {
    if (remote) {
      ctx.list.apply(crdt::Rga::InsertOp{dot_from(args["id"]), dot_from(args["after"]),
                                         args["value"].as_string()});
      return args;
    }
    const auto index = static_cast<size_t>(args["index"].as_int());
    if (index > ctx.list.size()) {
      return util::Error{"crdts: list_insert index out of range"};
    }
    const auto produced =
        ctx.list.insert_at(static_cast<crdt::ReplicaId>(replica), index,
                           args["value"].as_string());
    args["id"] = dot_json(produced.id);
    args["after"] = dot_json(produced.after);
    return args;
  }
  if (op == "list_remove") {
    if (remote) {
      ctx.list.apply(crdt::Rga::RemoveOp{dot_from(args["target"])});
      return args;
    }
    const auto produced = ctx.list.remove_at(static_cast<size_t>(args["index"].as_int()));
    if (!produced) return util::Error{"crdts: list_remove index out of range"};
    args["target"] = dot_json(produced->target);
    return args;
  }
  if (op == "list_move") {
    if (remote) {
      crdt::Rga::MoveOp move;
      move.target = dot_from(args["target"]);
      move.after = dot_from(args["after"]);
      move.stamp = crdt::Timestamp::from_json(args["stamp"]);
      ctx.list.apply(move);
      return args;
    }
    const auto produced = ctx.list.move(static_cast<crdt::ReplicaId>(replica),
                                        static_cast<size_t>(args["from"].as_int()),
                                        static_cast<size_t>(args["to"].as_int()));
    if (!produced) return util::Error{"crdts: list_move index out of range"};
    args["target"] = dot_json(produced->target);
    args["after"] = dot_json(produced->after);
    args["stamp"] = produced->stamp.to_json();
    return args;
  }
  if (op == "list_naive_move") {
    // Application-style move: delete + re-insert. Concurrent naive moves of
    // the same element duplicate it — misconception #3.
    if (remote) {
      ctx.list.apply(crdt::Rga::RemoveOp{dot_from(args["target"])});
      ctx.list.apply(crdt::Rga::InsertOp{dot_from(args["id"]), dot_from(args["after"]),
                                         args["value"].as_string()});
      return args;
    }
    const auto produced = ctx.list.naive_move(static_cast<crdt::ReplicaId>(replica),
                                              static_cast<size_t>(args["from"].as_int()),
                                              static_cast<size_t>(args["to"].as_int()));
    if (!produced) return util::Error{"crdts: list_naive_move index out of range"};
    args["target"] = dot_json(produced->first.target);
    args["id"] = dot_json(produced->second.id);
    args["after"] = dot_json(produced->second.after);
    args["value"] = produced->second.value;
    return args;
  }
  if (op == "naive_append") {
    ctx.naive_list.append(args["value"].as_string());
    return args;
  }
  if (op == "reg_set") {
    const auto owner = static_cast<crdt::ReplicaId>(
        remote ? args["origin"].as_int() : static_cast<int64_t>(replica));
    ctx.reg.set(args["value"].as_string(), crdt::Timestamp{args["ts"].as_int(), owner});
    if (!remote) args["origin"] = static_cast<int64_t>(replica);
    return args;
  }
  if (op == "mv_set") {
    if (remote) {
      ctx.mvreg.apply_remote(args["value"].as_string(),
                             crdt::VectorClock::from_json(args["clock"]));
      return args;
    }
    const auto clock =
        ctx.mvreg.set(static_cast<crdt::ReplicaId>(replica), args["value"].as_string());
    args["clock"] = clock.to_json();
    return args;
  }
  if (op == "todo_create") {
    int64_t id;
    if (remote) {
      id = args["id"].as_int();
    } else if (flags_.random_todo_ids) {
      id = static_cast<int64_t>(ctx.rng.below(1'000'000'000));
    } else {
      // sequential max+1 minting — misconception #4
      id = ctx.todos.empty() ? 1 : ctx.todos.rbegin()->first + 1;
    }
    // first writer wins locally; a concurrent clash leaves replicas divergent
    ctx.todos.emplace(id, args["text"].as_string());
    if (!remote) args["id"] = id;
    return args;
  }
  return util::Error{"crdts: unknown op " + op};
}

util::Result<util::Json> CrdtCollection::do_invoke(net::ReplicaId replica,
                                                   const std::string& op,
                                                   const util::Json& args) {
  auto& ctx = replicas_[static_cast<size_t>(replica)];
  if (op == "todo_ids") {
    note_read(replica, "todos");
    util::Json ids = util::Json::array();
    for (const auto& [id, text] : ctx.todos) ids.push_back(id);
    return ids;
  }
  if (op == "list_values") {
    note_read(replica, "list");
    util::Json values = util::Json::array();
    for (const auto& v : ctx.list.values()) values.push_back(v);
    return values;
  }
  // Each mutating op touches exactly one CRDT structure plus the op-log that
  // record() appends to; unknown ops record nothing and fall back to the
  // conservative whole-replica footprint in SubjectBase::invoke.
  const auto structure_of = [](const std::string& o) -> std::string_view {
    if (o == "set_add" || o == "set_remove") return "set";
    if (o == "twopset_add" || o == "twopset_remove") return "twopset";
    if (o == "counter_inc" || o == "counter_dec") return "counter";
    if (o == "list_insert" || o == "list_remove" || o == "list_move" ||
        o == "list_naive_move") {
      return "list";
    }
    if (o == "naive_append") return "naive_list";
    if (o == "reg_set") return "reg";
    if (o == "mv_set") return "mvreg";
    if (o == "todo_create") return "todos";
    return {};
  };
  if (const auto structure = structure_of(op); !structure.empty()) {
    note_read(replica, structure);
    note_write(replica, structure);
    note_write(replica, "oplog");
  }
  auto produced = apply_op(ctx, replica, op, args, /*remote=*/false);
  if (!produced) return produced;
  util::Json op_json = util::Json::object();
  op_json["op"] = op;
  op_json["args"] = produced.value();
  record(ctx, replica, std::move(op_json));
  return util::Json(true);
}

util::Result<std::string> CrdtCollection::make_sync_payload(net::ReplicaId from,
                                                             net::ReplicaId,
                                                             const util::Json&) {
  auto& ctx = replicas_[static_cast<size_t>(from)];
  util::Json ops = util::Json::array();
  for (const auto& stamped : ctx.known_ops) {
    util::Json row = util::Json::object();
    row["origin"] = static_cast<int64_t>(stamped.origin);
    row["seq"] = stamped.seq;
    row["op"] = stamped.op_json;
    ops.push_back(std::move(row));
  }
  return ops.dump();
}

util::Status CrdtCollection::apply_sync_payload(net::ReplicaId, net::ReplicaId to,
                                                const std::string& payload) {
  auto doc = util::Json::parse(payload);
  if (!doc) return util::Status::fail("crdts sync payload: " + doc.error().message);
  auto& ctx = replicas_[static_cast<size_t>(to)];
  for (const auto& row : doc.value().as_array()) {
    const auto origin = static_cast<net::ReplicaId>(row["origin"].as_int());
    const int64_t seq = row["seq"].as_int();
    if (!ctx.applied.insert({origin, seq}).second) continue;
    const auto& op_json = row["op"];
    auto applied = apply_op(ctx, origin, op_json["op"].as_string(), op_json["args"],
                            /*remote=*/true);
    if (!applied) return util::Status::fail(applied.error().message);
    ctx.known_ops.push_back(StampedOp{origin, seq, op_json});
  }
  return util::Status::ok();
}

util::Json CrdtCollection::replica_state(net::ReplicaId replica) const {
  const auto& ctx = replicas_[static_cast<size_t>(replica)];
  util::Json out = util::Json::object();
  out["set"] = ctx.orset.to_json();
  out["twopset"] = ctx.twopset.to_json();
  out["counter"] = ctx.counter.value();
  out["list"] = ctx.list.to_json();
  out["naive_list"] = ctx.naive_list.to_json();
  out["reg"] = ctx.reg.empty() ? util::Json() : util::Json(ctx.reg.value());
  out["mvreg"] = ctx.mvreg.to_json();
  util::Json todos = util::Json::object();
  util::Json todo_ids = util::Json::array();
  for (const auto& [id, text] : ctx.todos) {
    todos[std::to_string(id)] = text;
    todo_ids.push_back(id);
  }
  out["todos"] = std::move(todos);
  out["todo_ids"] = std::move(todo_ids);
  std::vector<std::string> seen_list;
  for (const auto& stamped : ctx.known_ops) {
    seen_list.push_back(std::to_string(stamped.origin) + ":" + std::to_string(stamped.seq) +
                        ":" + std::to_string(util::fnv1a64(stamped.op_json.dump())));
  }
  std::sort(seen_list.begin(), seen_list.end());
  util::Json seen = util::Json::array();
  for (const auto& entry : seen_list) seen.push_back(entry);
  out["seen"] = std::move(seen);
  return out;
}

}  // namespace erpi::subjects
