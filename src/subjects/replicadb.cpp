#include "subjects/replicadb.hpp"

namespace erpi::subjects {

ReplicaDb::ReplicaDb(int replica_count, Flags flags)
    : SubjectBase("replicadb", replica_count), flags_(flags) {
  replicas_.resize(static_cast<size_t>(replica_count));
}

void ReplicaDb::do_reset() {
  replicas_.clear();
  replicas_.resize(static_cast<size_t>(replica_count()));
}

bool ReplicaDb::reset_replica_state(net::ReplicaId replica) {
  replicas_[static_cast<size_t>(replica)] = ReplicaCtx{};
  return true;
}

bool ReplicaDb::is_readonly_op(const std::string& op) const { return op == "sink_count"; }

std::shared_ptr<const void> ReplicaDb::clone_replicas() const {
  return clone_ctx_vector(replicas_);
}

bool ReplicaDb::adopt_replicas(const void* saved) {
  return adopt_ctx_vector(replicas_, saved);
}

std::shared_ptr<const void> ReplicaDb::clone_replica(net::ReplicaId replica) const {
  return clone_ctx_at(replicas_, replica);
}

bool ReplicaDb::adopt_replica(net::ReplicaId replica, const void* saved) {
  return adopt_ctx_at(replicas_, replica, saved);
}

void ReplicaDb::upsert(std::map<std::string, Row>& table, const std::string& id, Row row) {
  const auto it = table.find(id);
  if (it == table.end() || row.version > it->second.version ||
      !flags_.version_resolution) {
    table[id] = std::move(row);
  }
}

util::Result<util::Json> ReplicaDb::transfer(ReplicaCtx& ctx, const std::string& mode,
                                             int64_t fetch_size) {
  if (mode == "complete") {
    // Complete mode truncates and reloads the sink from live source rows.
    if (!flags_.streaming_fetch_fixed &&
        static_cast<int64_t>(ctx.source.size()) > flags_.memory_budget_rows) {
      return util::Error{"replicadb: OutOfMemoryError buffering " +
                         std::to_string(ctx.source.size()) + " rows (budget " +
                         std::to_string(flags_.memory_budget_rows) + ")"};  // issue #79
    }
    ctx.sink.clear();
    int64_t transferred = 0;
    int64_t chunk = 0;
    for (const auto& [id, row] : ctx.source) {
      if (row.deleted) continue;
      ctx.sink[id] = row;
      ++transferred;
      // streaming fetch: rows move in fetch_size chunks, bounding memory
      if (flags_.streaming_fetch_fixed && ++chunk >= fetch_size) chunk = 0;
      if (row.version > ctx.last_transfer_version) ctx.last_transfer_version = row.version;
    }
    return util::Json(transferred);
  }
  if (mode == "incremental") {
    int64_t transferred = 0;
    int64_t max_version = ctx.last_transfer_version;
    for (const auto& [id, row] : ctx.source) {
      if (row.version <= ctx.last_transfer_version) continue;
      if (row.deleted) {
        if (flags_.incremental_deletes_fixed) {
          ctx.sink.erase(id);
          ++transferred;
        }
        // issue #23: the buggy incremental path ignores tombstones, so the
        // sink keeps rows that were deleted at the source
      } else {
        ctx.sink[id] = row;
        ++transferred;
      }
      if (row.version > max_version) max_version = row.version;
    }
    ctx.last_transfer_version = max_version;
    return util::Json(transferred);
  }
  return util::Error{"replicadb: unknown transfer mode " + mode};
}

util::Result<util::Json> ReplicaDb::do_invoke(net::ReplicaId replica, const std::string& op,
                                              const util::Json& args) {
  auto& ctx = replicas_[static_cast<size_t>(replica)];
  if (op == "insert_source" || op == "update_source") {
    note_read(replica, "source/" + args["id"].as_string());
    note_write(replica, "source/" + args["id"].as_string());
    note_write(replica, "history");
    Row row;
    row.value = args["value"].dump();
    row.version = args["ts"].as_int();
    ctx.history.insert(args["id"].as_string() + "|" + std::to_string(row.version));
    upsert(ctx.source, args["id"].as_string(), std::move(row));
    return util::Json(true);
  }
  if (op == "delete_source") {
    note_read(replica, "source/" + args["id"].as_string());
    note_write(replica, "source/" + args["id"].as_string());
    note_write(replica, "history");
    Row row;
    row.version = args["ts"].as_int();
    row.deleted = true;
    ctx.history.insert(args["id"].as_string() + "|" + std::to_string(row.version) + "|del");
    upsert(ctx.source, args["id"].as_string(), std::move(row));
    return util::Json(true);
  }
  if (op == "transfer") {
    note_read(replica, "source/*");
    note_read(replica, "last_transfer");
    note_write(replica, "last_transfer");
    note_write(replica, "sink");
    const std::string mode =
        args.contains("mode") ? args["mode"].as_string() : std::string("complete");
    const int64_t fetch_size = args.contains("fetch_size") ? args["fetch_size"].as_int() : 100;
    return transfer(ctx, mode, fetch_size);
  }
  if (op == "sink_count") {
    note_read(replica, "sink");
    return util::Json(static_cast<int64_t>(ctx.sink.size()));
  }
  return util::Error{"replicadb: unknown op " + op};
}

util::Result<std::string> ReplicaDb::make_sync_payload(net::ReplicaId from, net::ReplicaId,
                                                        const util::Json&) {
  auto& ctx = replicas_[static_cast<size_t>(from)];
  util::Json payload = util::Json::object();
  util::Json rows = util::Json::object();
  for (const auto& [id, row] : ctx.source) {
    util::Json r = util::Json::object();
    r["v"] = row.value;
    r["ver"] = row.version;
    r["del"] = row.deleted;
    rows[id] = std::move(r);
  }
  payload["rows"] = std::move(rows);
  util::Json history = util::Json::array();
  for (const auto& h : ctx.history) history.push_back(h);
  payload["history"] = std::move(history);
  return payload.dump();
}

util::Status ReplicaDb::apply_sync_payload(net::ReplicaId, net::ReplicaId to,
                                           const std::string& payload) {
  auto doc = util::Json::parse(payload);
  if (!doc) return util::Status::fail("replicadb sync payload: " + doc.error().message);
  auto& ctx = replicas_[static_cast<size_t>(to)];
  for (const auto& [id, r] : doc.value()["rows"].as_object()) {
    Row row;
    row.value = r["v"].as_string();
    row.version = r["ver"].as_int();
    row.deleted = r["del"].as_bool();
    upsert(ctx.source, id, std::move(row));
  }
  for (const auto& h : doc.value()["history"].as_array()) {
    ctx.history.insert(h.as_string());
  }
  return util::Status::ok();
}

util::Json ReplicaDb::replica_state(net::ReplicaId replica) const {
  const auto& ctx = replicas_[static_cast<size_t>(replica)];
  util::Json out = util::Json::object();
  util::Json source = util::Json::object();
  for (const auto& [id, row] : ctx.source) {
    if (!row.deleted) source[id] = row.value;
  }
  util::Json sink = util::Json::object();
  for (const auto& [id, row] : ctx.sink) sink[id] = row.value;
  out["source"] = std::move(source);
  out["sink"] = std::move(sink);
  out["last_transfer"] = ctx.last_transfer_version;
  // the versioned source table (used by the ReplicaDB-2 detector) ...
  util::Json seen = util::Json::object();
  for (const auto& [id, row] : ctx.source) {
    seen[id] = std::to_string(row.version) + (row.deleted ? "|del" : "");
  }
  out["seen"] = std::move(seen);
  // ... and the causal-knowledge witness (all row versions ever observed)
  util::Json history = util::Json::array();
  for (const auto& h : ctx.history) history.push_back(h);
  out["history"] = std::move(history);
  return out;
}

}  // namespace erpi::subjects
