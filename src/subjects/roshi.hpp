// Subject 1 — Roshi: SoundCloud's LWW-element-set time-series event database
// layered on Redis (paper §6, [13]). Each replica holds an independent
// mini-Redis store; a stream key K keeps its adds in zset "K+" and its
// deletes in zset "K-" with the operation timestamp as the score — the same
// data layout the real Roshi uses.
//
// Operations: insert(key, member, ts), delete(key, member, ts),
// select(key, offset, limit), select_all(). Sync is state-based: the full
// add/delete zsets are shipped and merged member-wise under LWW.
//
// Historical bugs behind flags (all off = faithful fixed Roshi):
//  * !lww_tiebreak_fixed — equal-timestamp writes apply in arrival order, so
//    replicas disagree (issue #11, "CRDT semantics violated if same
//    timestamp?").
//  * !deleted_field_fixed — select reads only the add-set and reports
//    deleted members as live (issue #18, "Incorrect deleted field in
//    response").
//  * !stable_select_order — select_all assembles its response by iterating a
//    hash map seeded by key-arrival order, like a Go map, so the stream
//    order varies between replicas/interleavings (issue #40, "roshi-server
//    golang app select and map order?").
//  * !idempotent_wal_replay — planted log-recovery bug (storage-fault
//    family, DESIGN.md §13): WAL replay applies a duplicated log segment
//    verbatim, skipping the LWW guard, so the second copy of an
//    already-settled write wins again and the replica silently diverges.
#pragma once

#include <set>
#include <vector>

#include "kvstore/store.hpp"
#include "subjects/subject_base.hpp"

namespace erpi::subjects {

class Roshi : public SubjectBase {
 public:
  struct Flags {
    bool lww_tiebreak_fixed = true;
    bool deleted_field_fixed = true;
    bool stable_select_order = true;
    bool idempotent_wal_replay = true;
  };

  explicit Roshi(int replica_count) : Roshi(replica_count, Flags()) {}
  Roshi(int replica_count, Flags flags);

  util::Json replica_state(net::ReplicaId replica) const override;

 protected:
  util::Result<util::Json> do_invoke(net::ReplicaId replica, const std::string& op,
                                     const util::Json& args) override;
  util::Result<std::string> make_sync_payload(net::ReplicaId from, net::ReplicaId to,
                                                                const util::Json& args) override;
  util::Status apply_sync_payload(net::ReplicaId from, net::ReplicaId to,
                                  const std::string& payload) override;
  void do_reset() override;
  std::shared_ptr<const void> clone_replicas() const override;
  bool adopt_replicas(const void* saved) override;
  std::shared_ptr<const void> clone_replica(net::ReplicaId replica) const override;
  bool adopt_replica(net::ReplicaId replica, const void* saved) override;
  bool supports_durable_log() const override { return true; }
  bool reset_replica_state(net::ReplicaId replica) override;
  bool is_readonly_op(const std::string& op) const override;
  RecoveryPolicy recovery_policy() const override {
    return {true, flags_.idempotent_wal_replay};
  }

 private:
  struct ReplicaCtx {
    kv::Store store;
    std::vector<std::string> key_arrival;  // key first-write order (bug #40)
    // every (key, member, ts, kind) operation ever observed here — the
    // causal-history witness used by conditional convergence assertions
    std::set<std::string> history;
    bool received_any = false;              // has any sync been applied here
    std::set<std::string> flagged_keys;     // local first-writes post-delivery

    explicit ReplicaCtx() : store([] { return int64_t{0}; }) {}
  };

  /// Apply one LWW write (add or delete) at a replica; returns whether the
  /// write won.
  bool lww_write(ReplicaCtx& ctx, const std::string& key, const std::string& member,
                 double ts, bool is_delete, bool from_sync);
  std::vector<std::string> ordered_keys(const ReplicaCtx& ctx) const;
  util::Json select(const ReplicaCtx& ctx, const std::string& key, int64_t offset,
                    int64_t limit) const;

  Flags flags_;
  std::vector<ReplicaCtx> replicas_;
};

}  // namespace erpi::subjects
