#include "subjects/orbitdb.hpp"

namespace erpi::subjects {

std::string OrbitDb::identity_of(net::ReplicaId replica) {
  return "id" + std::to_string(replica);
}

OrbitDb::OrbitDb(int replica_count, Flags flags)
    : SubjectBase("orbitdb", replica_count), flags_(flags) {
  init_replicas();
}

void OrbitDb::init_replicas() {
  replicas_.clear();
  replicas_.resize(static_cast<size_t>(replica_count()));
  for (int r = 0; r < replica_count(); ++r) {
    replicas_[static_cast<size_t>(r)].log.emplace(identity_of(r), flags_.log_flags);
  }
}

void OrbitDb::do_reset() { init_replicas(); }

bool OrbitDb::reset_replica_state(net::ReplicaId replica) {
  auto& ctx = replicas_[static_cast<size_t>(replica)];
  ctx = ReplicaCtx{};
  ctx.log.emplace(identity_of(replica), flags_.log_flags);
  return true;
}

bool OrbitDb::is_readonly_op(const std::string& op) const {
  return op == "get" || op == "verify" || op == "check_head";
}

std::shared_ptr<const void> OrbitDb::clone_replicas() const {
  return clone_ctx_vector(replicas_);
}

bool OrbitDb::adopt_replicas(const void* saved) {
  return adopt_ctx_vector(replicas_, saved);
}

std::shared_ptr<const void> OrbitDb::clone_replica(net::ReplicaId replica) const {
  return clone_ctx_at(replicas_, replica);
}

bool OrbitDb::adopt_replica(net::ReplicaId replica, const void* saved) {
  return adopt_ctx_at(replicas_, replica, saved);
}

util::Status OrbitDb::apply_entry(ReplicaCtx& ctx, const crdt::LogEntry& entry) {
  ctx.seen_hashes.insert(entry.hash);
  const auto st = ctx.log->apply(entry);
  if (!st && !ctx.log->can_write(entry.identity) && flags_.buffer_unauthorized) {
    // Fixed behaviour for issue #1153: park the entry until the grant that
    // authorizes its writer is executed locally.
    ctx.pending.push_back(entry);
    return util::Status::ok();
  }
  return st;
}

void OrbitDb::retry_pending(ReplicaCtx& ctx) {
  std::vector<crdt::LogEntry> still_pending;
  for (const auto& entry : ctx.pending) {
    if (!ctx.log->apply(entry)) still_pending.push_back(entry);
  }
  ctx.pending = std::move(still_pending);
}

util::Result<util::Json> OrbitDb::do_invoke(net::ReplicaId replica, const std::string& op,
                                            const util::Json& args) {
  auto& ctx = replicas_[static_cast<size_t>(replica)];
  if (op == "add") {
    note_read(replica, "oplog");
    note_write(replica, "oplog");
    auto entry = ctx.log->append(args["payload"].dump());
    if (!entry) return util::Error{entry.error()};
    ctx.seen_hashes.insert(entry.value().hash);
    return util::Json(entry.value().hash);
  }
  if (op == "add_with_clock") {
    // poisoned-clock write used to seed issue #512
    note_read(replica, "oplog");
    note_write(replica, "oplog");
    auto entry = ctx.log->append_with_clock(args["payload"].dump(), args["clock"].as_int());
    if (!entry) return util::Error{entry.error()};
    ctx.seen_hashes.insert(entry.value().hash);
    return util::Json(entry.value().hash);
  }
  if (op == "put") {
    note_read(replica, "oplog");
    note_write(replica, "oplog");
    util::Json record = util::Json::object();
    record["k"] = args["key"].as_string();
    record["v"] = args["value"];
    auto entry = ctx.log->append(record.dump());
    if (!entry) return util::Error{entry.error()};
    ctx.seen_hashes.insert(entry.value().hash);
    return util::Json(entry.value().hash);
  }
  if (op == "get") {
    // key-value view: the latest put (in the log's total order) wins
    note_read(replica, "oplog");
    const auto& key = args["key"].as_string();
    util::Json value;
    for (const auto& entry : ctx.log->traverse()) {
      auto doc = util::Json::parse(entry.payload);
      if (doc && doc.value().is_object() && doc.value().contains("k") &&
          doc.value()["k"].as_string() == key) {
        value = doc.value()["v"];
      }
    }
    return value;
  }
  if (op == "grant") {
    note_read(replica, "oplog");
    note_write(replica, "oplog");
    note_write(replica, "acl");
    ctx.log->grant(args["identity"].as_string());
    retry_pending(ctx);
    return util::Json(true);
  }
  if (op == "open") {
    note_read(replica, "repo");
    note_write(replica, "repo");
    if (ctx.is_open) return util::Json(false);  // benign re-open while open
    if (ctx.repo_locked) {
      // stale lock file left behind by a leaked close — issue #557 symptom
      return util::Error{"orbitdb: repo folder is locked (stale lock file)"};
    }
    ctx.repo_locked = true;
    ctx.is_open = true;
    ctx.synced_while_open_count = 0;
    return util::Json(true);
  }
  if (op == "close") {
    note_read(replica, "repo");
    note_write(replica, "repo");
    if (!ctx.is_open) return util::Json(false);  // benign double close
    ctx.is_open = false;
    if (!flags_.release_lock_on_sync_fixed && ctx.synced_while_open_count >= 2) {
      // Issue #557: replication re-entered the repo repeatedly while it was
      // open; the teardown path skips the unlock and the lock file stays.
      return util::Json(false);
    }
    ctx.repo_locked = false;
    return util::Json(true);
  }
  if (op == "verify") {
    note_read(replica, "oplog");
    return util::Json(ctx.log->verify());
  }
  if (op == "check_head") {
    // Resolve every head a peer has announced against the local entry set;
    // an unresolvable head is the "Head hash didn't match the contents"
    // failure of issue #583.
    note_read(replica, "oplog");
    note_read(replica, "heads");
    const auto peer = static_cast<net::ReplicaId>(args["peer"].as_int());
    const auto it = ctx.announced_heads.find(peer);
    if (it == ctx.announced_heads.end()) return util::Json(true);  // nothing announced
    const auto local = ctx.log->traverse();
    for (const auto& head : it->second) {
      bool found = false;
      for (const auto& entry : local) {
        if (entry.hash == head) {
          found = true;
          break;
        }
      }
      if (!found) {
        return util::Error{"orbitdb: head hash " + head.substr(0, 8) +
                           " didn't match the contents (entry missing)"};
      }
    }
    return util::Json(true);
  }
  return util::Error{"orbitdb: unknown op " + op};
}

util::Result<std::string> OrbitDb::make_sync_payload(net::ReplicaId from, net::ReplicaId,
                                                      const util::Json& args) {
  auto& ctx = replicas_[static_cast<size_t>(from)];
  const std::string mode =
      args.contains("mode") ? args["mode"].as_string() : std::string("full");
  util::Json payload = util::Json::object();
  payload["mode"] = mode;
  payload["from"] = static_cast<int64_t>(from);
  if (mode == "heads" || mode == "full") {
    util::Json heads = util::Json::array();
    for (const auto& head : ctx.log->heads()) heads.push_back(head);
    payload["heads"] = std::move(heads);
  }
  if (mode == "entries" || mode == "full") {
    util::Json entries = util::Json::array();
    for (const auto& entry : ctx.log->traverse()) entries.push_back(entry.to_json());
    payload["entries"] = std::move(entries);
  }
  return payload.dump();
}

util::Status OrbitDb::apply_sync_payload(net::ReplicaId, net::ReplicaId to,
                                         const std::string& payload) {
  auto doc = util::Json::parse(payload);
  if (!doc) return util::Status::fail("orbitdb sync payload: " + doc.error().message);
  auto& ctx = replicas_[static_cast<size_t>(to)];
  const size_t entries_before = ctx.log->length();

  const auto& body = doc.value();
  if (body.contains("heads") && body["heads"].is_array()) {
    std::vector<std::string> heads;
    for (const auto& head : body["heads"].as_array()) heads.push_back(head.as_string());
    ctx.announced_heads[static_cast<net::ReplicaId>(body["from"].as_int())] =
        std::move(heads);
  }
  if (!body.contains("entries")) return util::Status::ok();  // heads-only sync

  std::string first_error;
  for (const auto& entry_json : body["entries"].as_array()) {
    crdt::LogEntry entry;
    entry.hash = entry_json["hash"].as_string();
    entry.clock = entry_json["clock"].as_int();
    entry.identity = entry_json["id"].as_string();
    entry.payload = entry_json["payload"].as_string();
    for (const auto& parent : entry_json["parents"].as_array()) {
      entry.parents.push_back(parent.as_string());
    }
    if (const auto st = apply_entry(ctx, entry); !st && first_error.empty()) {
      first_error = st.error().message;
    }
  }
  // Issue #557: only replication that actually touched the repo (delivered
  // fresh entries) re-enters the lock path while the db is open.
  if (ctx.is_open && ctx.log->length() > entries_before) ++ctx.synced_while_open_count;
  if (!first_error.empty()) return util::Status::fail(first_error);
  return util::Status::ok();
}

util::Json OrbitDb::replica_state(net::ReplicaId replica) const {
  const auto& ctx = replicas_[static_cast<size_t>(replica)];
  util::Json out = util::Json::object();
  util::Json payloads = util::Json::array();
  for (const auto& entry : ctx.log->traverse()) payloads.push_back(entry.payload);
  out["log"] = std::move(payloads);
  out["clock"] = ctx.log->clock();
  out["verified"] = ctx.log->verify();
  out["locked"] = ctx.repo_locked;
  out["pending"] = static_cast<int64_t>(ctx.pending.size());
  util::Json seen = util::Json::array();
  for (const auto& hash : ctx.seen_hashes) seen.push_back(hash);
  out["seen"] = std::move(seen);
  util::Json hashes = util::Json::array();
  for (const auto& entry : ctx.log->traverse()) hashes.push_back(entry.hash);
  out["hashes"] = std::move(hashes);
  util::Json announced = util::Json::object();
  for (const auto& [peer, heads] : ctx.announced_heads) {
    util::Json arr = util::Json::array();
    for (const auto& head : heads) arr.push_back(head);
    announced[std::to_string(peer)] = std::move(arr);
  }
  out["announced"] = std::move(announced);
  return out;
}

}  // namespace erpi::subjects
