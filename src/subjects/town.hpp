// The motivating example (paper §2.3): a town's issue-reporting app. Reported
// problems live in a replicated OR-Set; residents report and resolve issues
// on their own replicas, and one resident eventually transmits the current
// set to the municipality (a Query event whose outcome the test checks).
//
// Operations: report{problem}, resolve{problem}, transmit (query).
// Sync is op-based (add/remove ops with OR-Set tags).
#pragma once

#include <set>
#include <vector>

#include "crdt/sets.hpp"
#include "subjects/subject_base.hpp"

namespace erpi::subjects {

class TownApp : public SubjectBase {
 public:
  explicit TownApp(int replica_count);

  util::Json replica_state(net::ReplicaId replica) const override;

 protected:
  util::Result<util::Json> do_invoke(net::ReplicaId replica, const std::string& op,
                                     const util::Json& args) override;
  util::Result<std::string> make_sync_payload(net::ReplicaId from, net::ReplicaId to,
                                                                const util::Json& args) override;
  util::Status apply_sync_payload(net::ReplicaId from, net::ReplicaId to,
                                  const std::string& payload) override;
  void do_reset() override;
  std::shared_ptr<const void> clone_replicas() const override;
  bool adopt_replicas(const void* saved) override;
  std::shared_ptr<const void> clone_replica(net::ReplicaId replica) const override;
  bool adopt_replica(net::ReplicaId replica, const void* saved) override;

 private:
  struct StampedOp {
    net::ReplicaId origin;
    int64_t seq;
    util::Json op_json;
  };
  struct ReplicaCtx {
    crdt::OrSet problems;
    std::vector<StampedOp> known_ops;
    std::set<std::pair<int32_t, int64_t>> applied;
    int64_t next_local_seq = 0;
  };

  std::vector<ReplicaCtx> replicas_;
};

}  // namespace erpi::subjects
