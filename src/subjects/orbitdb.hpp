// Subject 2 — OrbitDB: serverless peer-to-peer database over a Merkle-CRDT
// log (paper §6, [59]). Each replica holds a MerkleLog plus a key-value view
// derived from it; sync ships the full DAG state.
//
// Historical bugs behind flags (all fixed = faithful current OrbitDB):
//  * log_flags.identity_tiebreak = false — issue #513 (undefined ordering on
//    equal Lamport clocks).
//  * log_flags.reject_future_clocks = true — issue #512 (a far-future clock
//    halts replication).
//  * log_flags.hash_includes_parents = false — issue #583 ("Head hash didn't
//    match the contents").
//  * !buffer_unauthorized — issue #1153: entries from a writer whose access
//    grant has not yet been executed locally are rejected outright instead
//    of buffered, so "Could not append entry although write access is
//    granted" depending on the interleaving.
//  * !release_lock_on_sync_fixed — issue #557: executing a sync between
//    open() and close() leaves the repo lock held, wedging the next open().
//  * !recovery_checks_committed — planted log-recovery bug (storage-fault
//    family, DESIGN.md §13): head reconciliation trusts whatever entries the
//    on-disk Merkle log holds and never checks the committed high-water mark,
//    so a torn tail replays as a shorter-but-"complete" history — the replica
//    silently diverges instead of reporting missing entries.
#pragma once

#include <map>
#include <optional>
#include <set>
#include <vector>

#include "crdt/merkle_log.hpp"
#include "subjects/subject_base.hpp"

namespace erpi::subjects {

class OrbitDb : public SubjectBase {
 public:
  struct Flags {
    crdt::MerkleLog::Flags log_flags;
    bool buffer_unauthorized = true;
    bool release_lock_on_sync_fixed = true;
    bool recovery_checks_committed = true;
  };

  explicit OrbitDb(int replica_count) : OrbitDb(replica_count, Flags()) {}
  OrbitDb(int replica_count, Flags flags);

  util::Json replica_state(net::ReplicaId replica) const override;

  /// Identity string used by replica r ("id<r>").
  static std::string identity_of(net::ReplicaId replica);

 protected:
  util::Result<util::Json> do_invoke(net::ReplicaId replica, const std::string& op,
                                     const util::Json& args) override;
  util::Result<std::string> make_sync_payload(net::ReplicaId from, net::ReplicaId to,
                                                                const util::Json& args) override;
  util::Status apply_sync_payload(net::ReplicaId from, net::ReplicaId to,
                                  const std::string& payload) override;
  void do_reset() override;
  std::shared_ptr<const void> clone_replicas() const override;
  bool adopt_replicas(const void* saved) override;
  std::shared_ptr<const void> clone_replica(net::ReplicaId replica) const override;
  bool adopt_replica(net::ReplicaId replica, const void* saved) override;
  bool supports_durable_log() const override { return true; }
  bool reset_replica_state(net::ReplicaId replica) override;
  bool is_readonly_op(const std::string& op) const override;
  RecoveryPolicy recovery_policy() const override {
    return {flags_.recovery_checks_committed, true};
  }

 private:
  struct ReplicaCtx {
    std::optional<crdt::MerkleLog> log;
    std::vector<crdt::LogEntry> pending;  // buffered unauthorized entries
    std::set<std::string> seen_hashes;    // every entry hash ever delivered
    // head hashes most recently announced by each peer ("heads" sync mode);
    // consulted by the check_head op (issue #583 scenario)
    std::map<int32_t, std::vector<std::string>> announced_heads;
    bool repo_locked = false;
    int synced_while_open_count = 0;
    bool is_open = false;
  };

  void init_replicas();
  util::Status apply_entry(ReplicaCtx& ctx, const crdt::LogEntry& entry);
  void retry_pending(ReplicaCtx& ctx);

  Flags flags_;
  std::vector<ReplicaCtx> replicas_;
};

}  // namespace erpi::subjects
