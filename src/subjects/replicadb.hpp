// Subject 3 — ReplicaDB: bulk data replication between a source and a sink
// table (paper §6, [41]), with complete and incremental transfer modes and
// chunked parallel fetch. Each replica holds its own source and sink; source
// tables synchronize across replicas row-wise under LWW (by row version), and
// transfer() replicates source -> sink locally.
//
// Historical bugs behind flags:
//  * !incremental_deletes_fixed — issue #23: incremental transfers skip
//    tombstoned rows, so "deleted records aren't getting deleted from the
//    sink tables".
//  * !streaming_fetch_fixed — issue #79: the transfer buffers the entire
//    result set instead of streaming it in fetch-size chunks; once the
//    source has grown past the configured memory budget the transfer dies
//    with an out-of-memory error — whether it does depends on how inserts
//    interleave with the transfer.
#pragma once

#include <map>
#include <set>
#include <vector>

#include "subjects/subject_base.hpp"

namespace erpi::subjects {

class ReplicaDb : public SubjectBase {
 public:
  struct Flags {
    bool incremental_deletes_fixed = true;
    bool streaming_fetch_fixed = true;
    /// Rows the buggy buffered transfer can hold before "OOM".
    int64_t memory_budget_rows = 8;
    /// Misconception #1 seeding: skip version-based conflict resolution so
    /// incoming rows apply in arrival order.
    bool version_resolution = true;
  };

  explicit ReplicaDb(int replica_count) : ReplicaDb(replica_count, Flags()) {}
  ReplicaDb(int replica_count, Flags flags);

  util::Json replica_state(net::ReplicaId replica) const override;

 protected:
  util::Result<util::Json> do_invoke(net::ReplicaId replica, const std::string& op,
                                     const util::Json& args) override;
  util::Result<std::string> make_sync_payload(net::ReplicaId from, net::ReplicaId to,
                                                                const util::Json& args) override;
  util::Status apply_sync_payload(net::ReplicaId from, net::ReplicaId to,
                                  const std::string& payload) override;
  void do_reset() override;
  std::shared_ptr<const void> clone_replicas() const override;
  bool adopt_replicas(const void* saved) override;
  std::shared_ptr<const void> clone_replica(net::ReplicaId replica) const override;
  bool adopt_replica(net::ReplicaId replica, const void* saved) override;
  bool supports_durable_log() const override { return true; }
  bool reset_replica_state(net::ReplicaId replica) override;
  bool is_readonly_op(const std::string& op) const override;

 private:
  struct Row {
    std::string value;
    int64_t version = 0;
    bool deleted = false;
  };
  struct ReplicaCtx {
    std::map<std::string, Row> source;
    std::map<std::string, Row> sink;
    int64_t last_transfer_version = 0;
    // every (id, version, tombstone) row version ever observed here — the
    // causal-knowledge witness for conditional convergence assertions
    std::set<std::string> history;
  };

  void upsert(std::map<std::string, Row>& table, const std::string& id, Row row);
  util::Result<util::Json> transfer(ReplicaCtx& ctx, const std::string& mode,
                                    int64_t fetch_size);

  Flags flags_;
  std::vector<ReplicaCtx> replicas_;
};

}  // namespace erpi::subjects
