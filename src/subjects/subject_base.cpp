#include "subjects/subject_base.hpp"

#include <stdexcept>

namespace erpi::subjects {

SubjectBase::SubjectBase(std::string name, int replica_count)
    : name_(std::move(name)),
      replica_count_(replica_count),
      network_(std::make_unique<net::SimNetwork>(replica_count)) {}

void SubjectBase::check_replica(net::ReplicaId replica) const {
  if (replica < 0 || replica >= replica_count_) {
    throw std::out_of_range("replica " + std::to_string(replica) + " out of range for " +
                            name_);
  }
}

util::Result<util::Json> SubjectBase::invoke(net::ReplicaId replica, const std::string& op,
                                             const util::Json& args) {
  check_replica(replica);
  if (op == proxy::kSyncReqOp) {
    const auto to = static_cast<net::ReplicaId>(args["peer"].as_int());
    check_replica(to);
    auto payload = make_sync_payload(replica, to, args);
    if (!payload) return util::Error{payload.error()};
    if (!network_->send(replica, to, "sync", std::move(payload).take())) {
      return util::Error{"sync request dropped by network (partition or fault)"};
    }
    return util::Json(true);
  }
  if (op == proxy::kExecSyncOp) {
    const auto from = static_cast<net::ReplicaId>(args["peer"].as_int());
    check_replica(from);
    const auto message = network_->deliver_next(from, replica);
    if (!message) {
      return util::Error{"no pending sync request from replica " + std::to_string(from)};
    }
    if (auto st = apply_sync_payload(from, replica, message->payload); !st) {
      return util::Error{st.error()};
    }
    return util::Json(true);
  }
  return do_invoke(replica, op, args);
}

void SubjectBase::reset() {
  network_->reset();
  network_->heal_all();
  do_reset();
}

}  // namespace erpi::subjects
