#include "subjects/subject_base.hpp"

#include <stdexcept>

namespace erpi::subjects {

SubjectBase::SubjectBase(std::string name, int replica_count)
    : name_(std::move(name)),
      replica_count_(replica_count),
      network_(std::make_unique<net::SimNetwork>(replica_count)) {}

void SubjectBase::check_replica(net::ReplicaId replica) const {
  if (replica < 0 || replica >= replica_count_) {
    throw std::out_of_range("replica " + std::to_string(replica) + " out of range for " +
                            name_);
  }
}

util::Result<util::Json> SubjectBase::invoke(net::ReplicaId replica, const std::string& op,
                                             const util::Json& args) {
  check_replica(replica);
  if (op == proxy::kSyncReqOp) {
    const auto to = static_cast<net::ReplicaId>(args["peer"].as_int());
    check_replica(to);
    auto payload = make_sync_payload(replica, to, args);
    if (!payload) return util::Error{payload.error()};
    if (!network_->send(replica, to, "sync", std::move(payload).take())) {
      return util::Error{"sync request dropped by network (partition or fault)"};
    }
    return util::Json(true);
  }
  if (op == proxy::kExecSyncOp) {
    const auto from = static_cast<net::ReplicaId>(args["peer"].as_int());
    check_replica(from);
    const auto message = network_->deliver_next(from, replica);
    if (!message) {
      return util::Error{"no pending sync request from replica " + std::to_string(from)};
    }
    if (auto st = apply_sync_payload(from, replica, message->payload); !st) {
      return util::Error{st.error()};
    }
    return util::Json(true);
  }
  return do_invoke(replica, op, args);
}

void SubjectBase::reset() {
  network_->reset();
  network_->heal_all();
  do_reset();
}

uint64_t SubjectBase::replica_state_bytes() const {
  uint64_t total = 0;
  for (int r = 0; r < replica_count_; ++r) {
    total += replica_state(static_cast<net::ReplicaId>(r)).dump().size();
  }
  return total;
}

proxy::Snapshot SubjectBase::snapshot() {
  auto replicas = clone_replicas();
  if (replicas == nullptr) return {};
  auto state = std::make_shared<SnapshotState>();
  state->owner = this;
  state->replicas = std::move(replicas);
  state->network = network_->save_state();
  proxy::Snapshot snap;
  snap.bytes = replica_state_bytes() + state->network.bytes();
  snap.state = std::move(state);
  return snap;
}

bool SubjectBase::restore(const proxy::Snapshot& snap) {
  if (!snap.valid()) return false;
  const auto* state = static_cast<const SnapshotState*>(snap.state.get());
  if (state->owner != this) return false;
  if (!adopt_replicas(state->replicas.get())) return false;
  network_->restore_state(state->network);
  return true;
}

SubjectBase::ReplicaSnapshotState SubjectBase::snapshot_replica(net::ReplicaId replica) const {
  check_replica(replica);
  ReplicaSnapshotState snap;
  snap.saved = clone_replica(replica);
  if (snap.saved == nullptr) return snap;  // unsupported — invalid snapshot
  snap.owner = this;
  snap.replica = replica;
  return snap;
}

bool SubjectBase::crash_restore_replica(net::ReplicaId replica,
                                        const ReplicaSnapshotState& snap) {
  check_replica(replica);
  if (!snap.valid() || snap.owner != this || snap.replica != replica) return false;
  if (!adopt_replica(replica, snap.saved.get())) return false;
  network_->drop_inbound(replica);
  return true;
}

}  // namespace erpi::subjects
