#include "subjects/subject_base.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "core/dpor.hpp"

namespace erpi::subjects {

SubjectBase::SubjectBase(std::string name, int replica_count)
    : name_(std::move(name)),
      replica_count_(replica_count),
      network_(std::make_unique<net::SimNetwork>(replica_count)),
      logs_(static_cast<size_t>(replica_count)) {}

void SubjectBase::check_replica(net::ReplicaId replica) const {
  if (replica < 0 || replica >= replica_count_) {
    throw std::out_of_range("replica " + std::to_string(replica) + " out of range for " +
                            name_);
  }
}

util::Result<util::Json> SubjectBase::invoke(net::ReplicaId replica, const std::string& op,
                                             const util::Json& args) {
  check_replica(replica);
  if (op == proxy::kSyncReqOp) {
    const auto to = static_cast<net::ReplicaId>(args["peer"].as_int());
    check_replica(to);
    if (recorder_ != nullptr) {
      // The payload is composed from the sender's full state and serialized
      // onto the from->to channel; the channel key also carries FIFO
      // happens-before (two ops on one channel never commute).
      recorder_->note_sync();
      recorder_->note_read(static_cast<int>(replica), "*");
      recorder_->note_channel_write(static_cast<int>(replica), static_cast<int>(to));
    }
    auto payload = make_sync_payload(replica, to, args);
    if (!payload) return util::Error{payload.error()};
    if (!network_->send(replica, to, "sync", std::move(payload).take())) {
      return util::Error{"sync request dropped by network (partition or fault)"};
    }
    return util::Json(true);
  }
  if (op == proxy::kExecSyncOp) {
    const auto from = static_cast<net::ReplicaId>(args["peer"].as_int());
    check_replica(from);
    if (recorder_ != nullptr) {
      // Pops the channel (read + write) and merges the payload into the
      // receiver, conservatively the whole replica.
      recorder_->note_sync();
      recorder_->note_channel_read(static_cast<int>(from), static_cast<int>(replica));
      recorder_->note_channel_write(static_cast<int>(from), static_cast<int>(replica));
      recorder_->note_read(static_cast<int>(replica), "*");
      recorder_->note_write(static_cast<int>(replica), "*");
    }
    const auto message = network_->deliver_next(from, replica);
    if (!message) {
      return util::Error{"no pending sync request from replica " + std::to_string(from)};
    }
    auto st = apply_sync_payload(from, replica, message->payload);
    if (durable_logging_) {
      // Logged whether or not the apply succeeded: a real WAL records the
      // received update before the outcome is known, and a deterministic
      // apply fails the same way on recovery replay.
      util::Json::Object record;
      record["t"] = "sync";
      record["f"] = static_cast<int64_t>(from);
      record["p"] = message->payload;
      append_log(replica, util::Json(std::move(record)).dump());
      note_write(replica, "log");
    }
    if (!st) return util::Error{st.error()};
    return util::Json(true);
  }
  const size_t notes_before = recorder_ != nullptr ? recorder_->note_count() : 0;
  auto result = do_invoke(replica, op, args);
  if (recorder_ != nullptr && recorder_->recording() &&
      recorder_->note_count() == notes_before) {
    // Uninstrumented op: conservative whole-replica footprint so it conflicts
    // with every other op on this replica (sound, never cuts too much).
    recorder_->note_read(static_cast<int>(replica), "*");
    if (!is_readonly_op(op)) recorder_->note_write(static_cast<int>(replica), "*");
  }
  if (durable_logging_ && result && !is_readonly_op(op)) {
    util::Json::Object record;
    record["t"] = "op";
    record["op"] = op;
    record["a"] = args;
    append_log(replica, util::Json(std::move(record)).dump());
    note_write(replica, "log");
  }
  return result;
}

void SubjectBase::set_footprint_recorder(core::FootprintRecorder* recorder) {
  recorder_ = recorder;
}

void SubjectBase::note_read(net::ReplicaId replica, std::string_view field) {
  if (recorder_ != nullptr) recorder_->note_read(static_cast<int>(replica), field);
}

void SubjectBase::note_write(net::ReplicaId replica, std::string_view field) {
  if (recorder_ != nullptr) recorder_->note_write(static_cast<int>(replica), field);
}

void SubjectBase::reset() {
  network_->reset();
  network_->heal_all();
  do_reset();
  for (auto& log : logs_) log = DurableLog{};
  recovering_ = false;
  replaying_duplicate_ = false;
}

uint64_t SubjectBase::replica_state_bytes() const {
  uint64_t total = 0;
  for (int r = 0; r < replica_count_; ++r) {
    total += replica_state(static_cast<net::ReplicaId>(r)).dump().size();
  }
  return total;
}

proxy::Snapshot SubjectBase::snapshot() {
  auto replicas = clone_replicas();
  if (replicas == nullptr) return {};
  auto state = std::make_shared<SnapshotState>();
  state->owner = this;
  state->replicas = std::move(replicas);
  state->network = network_->save_state();
  state->logs = logs_;
  state->logging = durable_logging_;
  uint64_t log_bytes = 0;
  for (const auto& log : logs_) log_bytes += log.bytes();
  proxy::Snapshot snap;
  snap.bytes = replica_state_bytes() + state->network.bytes() + log_bytes;
  snap.state = std::move(state);
  return snap;
}

bool SubjectBase::restore(const proxy::Snapshot& snap) {
  if (!snap.valid()) return false;
  const auto* state = static_cast<const SnapshotState*>(snap.state.get());
  if (state->owner != this) return false;
  if (!adopt_replicas(state->replicas.get())) return false;
  network_->restore_state(state->network);
  logs_ = state->logs;
  durable_logging_ = state->logging;
  return true;
}

SubjectBase::ReplicaSnapshotState SubjectBase::snapshot_replica(net::ReplicaId replica) const {
  check_replica(replica);
  ReplicaSnapshotState snap;
  snap.saved = clone_replica(replica);
  if (snap.saved == nullptr) return snap;  // unsupported — invalid snapshot
  snap.owner = this;
  snap.replica = replica;
  return snap;
}

bool SubjectBase::crash_restore_replica(net::ReplicaId replica,
                                        const ReplicaSnapshotState& snap) {
  check_replica(replica);
  if (!snap.valid() || snap.owner != this || snap.replica != replica) return false;
  if (!adopt_replica(replica, snap.saved.get())) return false;
  network_->drop_inbound(replica);
  // The durable log survives the crash untouched: it is the disk, not the
  // process. Storage plans damage it separately.
  return true;
}

uint64_t SubjectBase::DurableLog::bytes() const noexcept {
  uint64_t total = 0;
  for (const auto& entry : entries) total += entry.record.size() + sizeof(entry.seqno);
  return total;
}

void SubjectBase::set_durable_logging(bool on) {
  durable_logging_ = on && supports_durable_log();
  for (auto& log : logs_) log = DurableLog{};
}

SubjectBase::DurableLog& SubjectBase::log_at(net::ReplicaId replica) {
  check_replica(replica);
  return logs_[static_cast<size_t>(replica)];
}

const SubjectBase::DurableLog& SubjectBase::log_at(net::ReplicaId replica) const {
  check_replica(replica);
  return logs_[static_cast<size_t>(replica)];
}

const SubjectBase::DurableLog& SubjectBase::durable_log(net::ReplicaId replica) const {
  return log_at(replica);
}

size_t SubjectBase::log_length(net::ReplicaId replica) const {
  return log_at(replica).entries.size();
}

uint64_t SubjectBase::log_committed(net::ReplicaId replica) const {
  return log_at(replica).committed;
}

void SubjectBase::append_log(net::ReplicaId replica, std::string record) {
  auto& log = log_at(replica);
  log.entries.push_back({log.committed, std::move(record)});
  ++log.committed;
}

size_t SubjectBase::truncate_log(net::ReplicaId replica, size_t count) {
  auto& entries = log_at(replica).entries;
  const size_t removed = std::min(count, entries.size());
  entries.resize(entries.size() - removed);
  return removed;
}

bool SubjectBase::drop_log_entry(net::ReplicaId replica, size_t index) {
  auto& entries = log_at(replica).entries;
  if (index >= entries.size()) return false;
  entries.erase(entries.begin() + static_cast<ptrdiff_t>(index));
  return true;
}

size_t SubjectBase::duplicate_log_segment(net::ReplicaId replica, size_t first, size_t count) {
  auto& entries = log_at(replica).entries;
  if (first >= entries.size()) return 0;
  const size_t copied = std::min(count, entries.size() - first);
  // Copy out before appending: push_back into the source vector invalidates
  // the range being copied.
  const std::vector<DurableLog::Entry> segment(
      entries.begin() + static_cast<ptrdiff_t>(first),
      entries.begin() + static_cast<ptrdiff_t>(first + copied));
  entries.insert(entries.end(), segment.begin(), segment.end());
  return copied;
}

size_t SubjectBase::splice_log_suffix(net::ReplicaId replica, size_t from_length, size_t keep) {
  auto& entries = log_at(replica).entries;
  const size_t keep_end = std::min(entries.size(), from_length + keep);
  const size_t removed = entries.size() - keep_end;
  entries.resize(keep_end);
  return removed;
}

void SubjectBase::replay_log_record(net::ReplicaId replica, const std::string& record) {
  auto parsed = util::Json::parse(record);
  if (!parsed) return;
  const auto doc = std::move(parsed).take();
  if (!doc.is_object() || !doc["t"].is_string()) return;
  const auto& type = doc["t"].as_string();
  if (type == "op" && doc["op"].is_string()) {
    (void)do_invoke(replica, doc["op"].as_string(), doc["a"]);
  } else if (type == "sync" && doc["f"].is_int() && doc["p"].is_string()) {
    (void)apply_sync_payload(static_cast<net::ReplicaId>(doc["f"].as_int()), replica,
                             doc["p"].as_string());
  }
}

SubjectBase::RecoveryResult SubjectBase::recover_from_log(net::ReplicaId replica) {
  check_replica(replica);
  RecoveryResult result;
  if (!durable_logging_ || !supports_durable_log()) return result;  // Unsupported

  const auto policy = recovery_policy();
  const auto& log = log_at(replica);

  // What history does the log claim? An honest subject trusts the committed
  // mark; a buggy one trusts only the entries present, so a torn tail looks
  // complete.
  uint64_t limit = 0;
  if (policy.check_committed) {
    limit = log.committed;
  } else {
    for (const auto& entry : log.entries) limit = std::max(limit, entry.seqno + 1);
  }

  std::vector<bool> present(static_cast<size_t>(limit), false);
  for (const auto& entry : log.entries) {
    if (entry.seqno < limit) present[static_cast<size_t>(entry.seqno)] = true;
  }
  uint64_t first_missing = limit;
  uint64_t missing_count = 0;
  for (uint64_t s = 0; s < limit; ++s) {
    if (!present[static_cast<size_t>(s)]) {
      if (missing_count == 0) first_missing = s;
      ++missing_count;
    }
  }

  if (!reset_replica_state(replica)) return result;  // Unsupported

  // Replay in file order. Everything at or past the first gap is untrusted —
  // the recovered prefix is exactly [0, first_missing) — and duplicates are
  // skipped or replayed per the subject's policy.
  recovering_ = true;
  std::vector<bool> applied(static_cast<size_t>(limit), false);
  for (const auto& entry : log.entries) {
    if (missing_count > 0 && entry.seqno >= first_missing) continue;
    const bool duplicate =
        entry.seqno < limit && applied[static_cast<size_t>(entry.seqno)];
    if (entry.seqno < limit) applied[static_cast<size_t>(entry.seqno)] = true;
    if (duplicate && policy.dedup_duplicates) continue;
    replaying_duplicate_ = duplicate;
    replay_log_record(replica, entry.record);
    replaying_duplicate_ = false;
  }
  recovering_ = false;

  result.status = missing_count > 0 ? RecoveryResult::Status::MissingEntries
                                    : RecoveryResult::Status::Ok;
  result.first_missing = missing_count > 0 ? first_missing : 0;
  result.missing_count = missing_count;
  return result;
}

}  // namespace erpi::subjects
