#include "subjects/yorkie.hpp"

#include "util/hash.hpp"

namespace erpi::subjects {

Yorkie::Yorkie(int replica_count, Flags flags)
    : SubjectBase("yorkie", replica_count), flags_(flags) {
  init_replicas();
}

void Yorkie::init_replicas() {
  replicas_.clear();
  replicas_.resize(static_cast<size_t>(replica_count()));
  crdt::JsonDoc::Flags doc_flags;
  doc_flags.lww_move = flags_.move_after_fixed;
  doc_flags.replace_nested_on_set = flags_.nested_set_fixed;
  for (int r = 0; r < replica_count(); ++r) {
    replicas_[static_cast<size_t>(r)].doc =
        std::make_unique<crdt::JsonDoc>(static_cast<crdt::ReplicaId>(r), doc_flags);
  }
}

void Yorkie::do_reset() { init_replicas(); }

std::shared_ptr<const void> Yorkie::clone_replicas() const {
  // ReplicaCtx is not copyable (unique_ptr<JsonDoc>), so build the deep copy
  // by hand via JsonDoc::clone.
  auto copy = std::make_shared<std::vector<ReplicaCtx>>();
  copy->reserve(replicas_.size());
  for (const auto& src : replicas_) {
    ReplicaCtx ctx;
    ctx.doc = std::make_unique<crdt::JsonDoc>(src.doc->clone());
    ctx.known_ops = src.known_ops;
    ctx.applied = src.applied;
    ctx.next_local_seq = src.next_local_seq;
    copy->push_back(std::move(ctx));
  }
  return copy;
}

bool Yorkie::adopt_replicas(const void* saved) {
  // Deep-copy back out of the snapshot: the same snapshot may be restored
  // multiple times, so the saved contexts must stay untouched.
  const auto& contexts = *static_cast<const std::vector<ReplicaCtx>*>(saved);
  std::vector<ReplicaCtx> fresh;
  fresh.reserve(contexts.size());
  for (const auto& src : contexts) {
    ReplicaCtx ctx;
    ctx.doc = std::make_unique<crdt::JsonDoc>(src.doc->clone());
    ctx.known_ops = src.known_ops;
    ctx.applied = src.applied;
    ctx.next_local_seq = src.next_local_seq;
    fresh.push_back(std::move(ctx));
  }
  replicas_ = std::move(fresh);
  return true;
}

std::shared_ptr<const void> Yorkie::clone_replica(net::ReplicaId replica) const {
  const auto& src = replicas_.at(static_cast<size_t>(replica));
  auto copy = std::make_shared<ReplicaCtx>();
  copy->doc = std::make_unique<crdt::JsonDoc>(src.doc->clone());
  copy->known_ops = src.known_ops;
  copy->applied = src.applied;
  copy->next_local_seq = src.next_local_seq;
  return copy;
}

bool Yorkie::adopt_replica(net::ReplicaId replica, const void* saved) {
  const auto& src = *static_cast<const ReplicaCtx*>(saved);
  ReplicaCtx fresh;
  fresh.doc = std::make_unique<crdt::JsonDoc>(src.doc->clone());
  fresh.known_ops = src.known_ops;
  fresh.applied = src.applied;
  fresh.next_local_seq = src.next_local_seq;
  replicas_.at(static_cast<size_t>(replica)) = std::move(fresh);
  return true;
}

crdt::DocPath Yorkie::parse_path(const util::Json& args) {
  crdt::DocPath path;
  if (args.contains("path")) {
    for (const auto& component : args["path"].as_array()) {
      path.push_back(component.as_string());
    }
  }
  return path;
}

void Yorkie::record_local(ReplicaCtx& ctx, net::ReplicaId replica,
                          const crdt::JsonDoc::Op& op) {
  StampedOp stamped{replica, ctx.next_local_seq++, op.to_json()};
  ctx.applied.insert({stamped.origin, stamped.seq});
  ctx.known_ops.push_back(std::move(stamped));
}

util::Result<util::Json> Yorkie::do_invoke(net::ReplicaId replica, const std::string& op,
                                           const util::Json& args) {
  auto& ctx = replicas_[static_cast<size_t>(replica)];
  const crdt::DocPath path = parse_path(args);

  // Mutating doc ops read the document (path resolution, index checks) and
  // write both the document and the op-log record_local() appends to.
  if (op == "set" || op == "delete" || op == "list_push" || op == "list_insert" ||
      op == "list_remove" || op == "move_after") {
    note_read(replica, "doc");
    note_write(replica, "doc");
    note_write(replica, "oplog");
  } else if (op == "get" || op == "snapshot") {
    note_read(replica, "doc");
  }

  if (op == "set") {
    const auto produced = ctx.doc->set(path, args["key"].as_string(), args["value"]);
    record_local(ctx, replica, produced);
    return util::Json(true);
  }
  if (op == "delete") {
    const auto produced = ctx.doc->erase(path, args["key"].as_string());
    record_local(ctx, replica, produced);
    return util::Json(true);
  }
  if (op == "list_push") {
    const auto produced = ctx.doc->list_push(path, args["key"].as_string(), args["value"]);
    record_local(ctx, replica, produced);
    return util::Json(true);
  }
  if (op == "list_insert") {
    const auto index = static_cast<size_t>(args["index"].as_int());
    if (index > ctx.doc->list_values(path, args["key"].as_string()).size()) {
      return util::Error{"yorkie: list_insert index out of range"};
    }
    const auto produced =
        ctx.doc->list_insert(path, args["key"].as_string(), index, args["value"]);
    record_local(ctx, replica, produced);
    return util::Json(true);
  }
  if (op == "list_remove") {
    const auto produced = ctx.doc->list_remove(path, args["key"].as_string(),
                                               static_cast<size_t>(args["index"].as_int()));
    if (!produced) return util::Error{"yorkie: list_remove index out of range"};
    record_local(ctx, replica, *produced);
    return util::Json(true);
  }
  if (op == "move_after") {
    const auto produced = ctx.doc->list_move(path, args["key"].as_string(),
                                             static_cast<size_t>(args["from"].as_int()),
                                             static_cast<size_t>(args["to"].as_int()));
    if (!produced) return util::Error{"yorkie: move_after index out of range"};
    record_local(ctx, replica, *produced);
    return util::Json(true);
  }
  if (op == "get") {
    const auto value = ctx.doc->get(path, args["key"].as_string());
    return value ? *value : util::Json();
  }
  if (op == "snapshot") {
    return ctx.doc->snapshot();
  }
  return util::Error{"yorkie: unknown op " + op};
}

util::Result<std::string> Yorkie::make_sync_payload(net::ReplicaId from, net::ReplicaId,
                                                     const util::Json&) {
  auto& ctx = replicas_[static_cast<size_t>(from)];
  util::Json ops = util::Json::array();
  for (const auto& stamped : ctx.known_ops) {
    util::Json row = util::Json::object();
    row["origin"] = static_cast<int64_t>(stamped.origin);
    row["seq"] = stamped.seq;
    row["op"] = stamped.op_json;
    ops.push_back(std::move(row));
  }
  return ops.dump();
}

util::Status Yorkie::apply_sync_payload(net::ReplicaId, net::ReplicaId to,
                                        const std::string& payload) {
  auto doc = util::Json::parse(payload);
  if (!doc) return util::Status::fail("yorkie sync payload: " + doc.error().message);
  auto& ctx = replicas_[static_cast<size_t>(to)];
  for (const auto& row : doc.value().as_array()) {
    const auto origin = static_cast<net::ReplicaId>(row["origin"].as_int());
    const int64_t seq = row["seq"].as_int();
    if (!ctx.applied.insert({origin, seq}).second) continue;  // already applied
    auto op = crdt::JsonDoc::Op::from_json(row["op"]);
    if (!op) return util::Status::fail("yorkie op decode: " + op.error().message);
    ctx.doc->apply(op.value());
    ctx.known_ops.push_back(StampedOp{origin, seq, row["op"]});
  }
  return util::Status::ok();
}

util::Json Yorkie::replica_state(net::ReplicaId replica) const {
  const auto& ctx = replicas_[static_cast<size_t>(replica)];
  util::Json out = util::Json::object();
  out["doc"] = ctx.doc->snapshot();
  // witness entries carry a content digest so two different local ops that
  // happen to receive the same (origin, seq) at replay never alias
  std::vector<std::string> seen_list;
  for (const auto& stamped : ctx.known_ops) {
    seen_list.push_back(std::to_string(stamped.origin) + ":" + std::to_string(stamped.seq) +
                        ":" +
                        std::to_string(util::fnv1a64(stamped.op_json["kind"].as_string() +
                                                     stamped.op_json["key"].as_string() +
                                                     stamped.op_json["value"].dump())));
  }
  std::sort(seen_list.begin(), seen_list.end());
  util::Json seen = util::Json::array();
  for (const auto& entry : seen_list) seen.push_back(entry);
  out["seen"] = std::move(seen);
  return out;
}

}  // namespace erpi::subjects
