// Subject 5 — "CRDTs": a collection of replicated data structures (paper §6,
// [25]) with a thin application layer. Each replica exposes an OR-Set, a
// 2P-Set (whose constraints feed Failed-Ops pruning), a PN-Counter, an RGA
// list (with both CRDT move and the application-style naive move), a naive
// unordered list (misconception #2 seeding), an LWW register, an MV register,
// and a to-do map whose IDs are minted sequentially (misconception #4) or
// randomly (the fix).
//
// Synchronization is op-based with (origin, seq) dedup, like Yorkie: replicas
// exchange every operation they know and apply the unseen ones.
#pragma once

#include <map>
#include <set>
#include <vector>

#include "crdt/counters.hpp"
#include "crdt/registers.hpp"
#include "crdt/rga.hpp"
#include "crdt/sets.hpp"
#include "subjects/subject_base.hpp"
#include "util/rng.hpp"

namespace erpi::subjects {

class CrdtCollection : public SubjectBase {
 public:
  struct Flags {
    /// true = the fix for misconception #4 (random IDs); false = sequential
    /// max+1 IDs that clash when minted concurrently.
    bool random_todo_ids = false;
  };

  explicit CrdtCollection(int replica_count) : CrdtCollection(replica_count, Flags()) {}
  CrdtCollection(int replica_count, Flags flags);

  util::Json replica_state(net::ReplicaId replica) const override;

 protected:
  util::Result<util::Json> do_invoke(net::ReplicaId replica, const std::string& op,
                                     const util::Json& args) override;
  util::Result<std::string> make_sync_payload(net::ReplicaId from, net::ReplicaId to,
                                                                const util::Json& args) override;
  util::Status apply_sync_payload(net::ReplicaId from, net::ReplicaId to,
                                  const std::string& payload) override;
  void do_reset() override;
  std::shared_ptr<const void> clone_replicas() const override;
  bool adopt_replicas(const void* saved) override;
  std::shared_ptr<const void> clone_replica(net::ReplicaId replica) const override;
  bool adopt_replica(net::ReplicaId replica, const void* saved) override;

 private:
  struct StampedOp {
    net::ReplicaId origin;
    int64_t seq;
    util::Json op_json;
  };
  struct ReplicaCtx {
    crdt::OrSet orset;
    crdt::TwoPSet twopset;
    crdt::PNCounter counter;
    crdt::Rga list;
    crdt::NaiveList naive_list;
    crdt::LwwRegister reg;
    crdt::MvRegister mvreg;
    std::map<int64_t, std::string> todos;
    util::Rng rng{0xfeedULL};

    std::vector<StampedOp> known_ops;
    std::set<std::pair<int32_t, int64_t>> applied;
    int64_t next_local_seq = 0;
  };

  void init_replicas();
  /// Execute one operation; `remote` ops reuse the embedded tags/ids instead
  /// of minting new ones. Returns the (possibly augmented) op json to relay.
  util::Result<util::Json> apply_op(ReplicaCtx& ctx, net::ReplicaId replica,
                                    const std::string& op, util::Json args, bool remote);
  void record(ReplicaCtx& ctx, net::ReplicaId origin, util::Json op_json);

  Flags flags_;
  std::vector<ReplicaCtx> replicas_;
};

}  // namespace erpi::subjects
