// Subject 4 — Yorkie: a replicated JSON document store (paper §6, [23]).
// Each replica holds a JsonDoc CRDT; synchronization is op-based — every
// replica keeps all operations it has seen, tagged (origin, seq), and sync
// ships the ones the receiver has not applied yet (so delivery is transitive
// across replicas).
//
// Historical bugs behind flags:
//  * !move_after_fixed — issue #676: Array.MoveAfter resolves concurrent
//    moves by arrival order, so documents do not converge.
//  * !nested_set_fixed — issue #663: a Set whose value is a nested object is
//    merged (not replaced) on the remote side, diverging from the local
//    replace semantics.
#pragma once

#include <set>
#include <vector>

#include "crdt/json_doc.hpp"
#include "subjects/subject_base.hpp"

namespace erpi::subjects {

class Yorkie : public SubjectBase {
 public:
  struct Flags {
    bool move_after_fixed = true;
    bool nested_set_fixed = true;
  };

  explicit Yorkie(int replica_count) : Yorkie(replica_count, Flags()) {}
  Yorkie(int replica_count, Flags flags);

  util::Json replica_state(net::ReplicaId replica) const override;

 protected:
  util::Result<util::Json> do_invoke(net::ReplicaId replica, const std::string& op,
                                     const util::Json& args) override;
  util::Result<std::string> make_sync_payload(net::ReplicaId from, net::ReplicaId to,
                                                                const util::Json& args) override;
  util::Status apply_sync_payload(net::ReplicaId from, net::ReplicaId to,
                                  const std::string& payload) override;
  void do_reset() override;
  std::shared_ptr<const void> clone_replicas() const override;
  bool adopt_replicas(const void* saved) override;
  std::shared_ptr<const void> clone_replica(net::ReplicaId replica) const override;
  bool adopt_replica(net::ReplicaId replica, const void* saved) override;

 private:
  struct StampedOp {
    net::ReplicaId origin;
    int64_t seq;  // per-origin sequence
    util::Json op_json;
  };
  struct ReplicaCtx {
    std::unique_ptr<crdt::JsonDoc> doc;
    std::vector<StampedOp> known_ops;       // everything seen, any origin
    std::set<std::pair<int32_t, int64_t>> applied;  // (origin, seq)
    int64_t next_local_seq = 0;
  };

  void init_replicas();
  void record_local(ReplicaCtx& ctx, net::ReplicaId replica, const crdt::JsonDoc::Op& op);
  static crdt::DocPath parse_path(const util::Json& args);

  Flags flags_;
  std::vector<ReplicaCtx> replicas_;
};

}  // namespace erpi::subjects
